package gmt

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func testScale() Scale {
	return Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2}
}

func testConfig(p Policy) Config {
	cfg := DefaultConfig()
	cfg.Policy = p
	cfg.Tier1Pages = 256
	cfg.Tier2Pages = 1024
	cfg.Warps = 64
	return cfg
}

func TestSuiteHasNineApps(t *testing.T) {
	ws := Suite(testScale())
	if len(ws) != 9 {
		t.Fatalf("suite = %d apps", len(ws))
	}
	names := WorkloadNames()
	for i, w := range ws {
		if w.Name() != names[i] {
			t.Fatalf("app %d = %s, want %s", i, w.Name(), names[i])
		}
		if w.Pages() <= 0 {
			t.Fatalf("%s: no pages", w.Name())
		}
	}
}

func TestRunAllPolicies(t *testing.T) {
	w := Suite(testScale())[1] // Pathfinder: cheap
	for _, p := range []Policy{BaM, TierOrder, Random, Reuse, HMM} {
		res := Run(testConfig(p), w)
		if res.Policy != p.String() {
			t.Fatalf("policy label %q != %q", res.Policy, p.String())
		}
		if res.WallTime <= 0 || res.Accesses == 0 {
			t.Fatalf("%v: empty result %+v", p, res)
		}
		if res.Tier1Hits+res.Tier2Hits+res.SSDFills+res.InFlightJoins != res.Accesses {
			t.Fatalf("%v: access breakdown broken", p)
		}
	}
}

func TestHeadlineThroughPublicAPI(t *testing.T) {
	ws := Suite(testScale())
	var srad Workload
	for _, w := range ws {
		if w.Name() == "Srad" {
			srad = w
		}
	}
	bam := Run(testConfig(BaM), srad)
	reuse := Run(testConfig(Reuse), srad)
	hmm := Run(testConfig(HMM), srad)
	if sp := reuse.Speedup(bam); sp < 1.2 {
		t.Fatalf("GMT-Reuse speedup on Srad = %.2f, want > 1.2", sp)
	}
	if sp := hmm.Speedup(bam); sp >= 1.0 {
		t.Fatalf("HMM speedup = %.2f, want < 1.0", sp)
	}
}

func TestRunTraceCustom(t *testing.T) {
	// Cyclic scan over 300 pages with 64-page Tier-1 and 512-page
	// Tier-2: the 3-tier run must hit Tier-2.
	var trace []Access
	for round := 0; round < 20; round++ {
		for p := int64(0); p < 300; p++ {
			trace = append(trace, Access{Page: p})
		}
	}
	cfg := testConfig(Reuse)
	cfg.Tier1Pages = 64
	cfg.Tier2Pages = 512
	res := RunTrace(cfg, "scan", trace)
	if res.App != "scan" {
		t.Fatalf("app = %q", res.App)
	}
	if res.Tier2Hits == 0 {
		t.Fatal("no Tier-2 hits on cyclic scan")
	}
	bam := cfg
	bam.Policy = BaM
	if RunTrace(bam, "scan", trace).Tier2Hits != 0 {
		t.Fatal("BaM hit Tier-2")
	}
}

func TestBackfillDisable(t *testing.T) {
	var trace []Access
	for round := 0; round < 15; round++ {
		for p := int64(0); p < 1200; p++ { // beyond Tier-1+Tier-2
			trace = append(trace, Access{Page: p})
		}
	}
	cfg := testConfig(Reuse)
	cfg.Tier1Pages = 64
	cfg.Tier2Pages = 256
	on := RunTrace(cfg, "scan", trace)
	cfg.BackfillThreshold = 2 // disabled
	off := RunTrace(cfg, "scan", trace)
	if on.BackfillPlaced == 0 || off.BackfillPlaced != 0 {
		t.Fatalf("backfill control broken: on=%d off=%d", on.BackfillPlaced, off.BackfillPlaced)
	}
	if on.Tier2Hits <= off.Tier2Hits {
		t.Fatal("backfill did not improve Tier-2 hits on a scan")
	}
}

func TestAnalyzePublic(t *testing.T) {
	s := testScale()
	for _, w := range Suite(s) {
		if w.Name() != "Hotspot" {
			continue
		}
		c := Analyze(w, s)
		if c.EvictTier3 < 0.99 {
			t.Fatalf("Hotspot Tier-3 bias = %.2f", c.EvictTier3)
		}
		if c.ReusePct < 0.7 || c.ReusePct > 0.9 {
			t.Fatalf("Hotspot reuse = %.2f", c.ReusePct)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	w := Suite(testScale())[1]
	a := Run(testConfig(Reuse), w)
	b := Run(testConfig(Reuse), w)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs diverged")
	}
}

func TestHistoryThroughFacade(t *testing.T) {
	cfg := testConfig(Reuse)
	cfg.HistorySample = 500
	w := Suite(testScale())[4] // Srad
	res := Run(cfg, w)
	if len(res.History) < 10 {
		t.Fatalf("history points = %d, want >= 10", len(res.History))
	}
	last := res.History[len(res.History)-1]
	if last.Accesses > res.Accesses || last.SSDReads > res.SSDReads {
		t.Fatal("history exceeds final totals")
	}
	// No history without the knob.
	cfg.HistorySample = 0
	if r := Run(cfg, w); len(r.History) != 0 {
		t.Fatal("history recorded without HistorySample")
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		BaM: "BaM", TierOrder: "GMT-TierOrder", Random: "GMT-Random",
		Reuse: "GMT-Reuse", HMM: "HMM",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d -> %q, want %q", p, p.String(), s)
		}
	}
}

func TestOraclePolicyThroughFacade(t *testing.T) {
	w := Suite(testScale())[4] // Srad
	bam := Run(testConfig(BaM), w)
	oracle := Run(testConfig(Oracle), w)
	if oracle.Policy != "GMT-Oracle" {
		t.Fatalf("policy = %q", oracle.Policy)
	}
	if oracle.SSDReads >= bam.SSDReads {
		t.Fatalf("oracle reads %d >= BaM reads %d", oracle.SSDReads, bam.SSDReads)
	}
}

func TestExtensionKnobsThroughFacade(t *testing.T) {
	var trace []Access
	for p := int64(0); p < 2000; p++ {
		trace = append(trace, Access{Page: p})
	}
	cfg := testConfig(BaM)
	cfg.Warps = 4
	cfg.PrefetchDegree = 4
	res := RunTrace(cfg, "stream", trace)
	// Prefetch stats surface through the public Result... via fewer
	// stalls: compare against no prefetch.
	base := cfg
	base.PrefetchDegree = 0
	if res.WallTime >= RunTrace(base, "stream", trace).WallTime {
		t.Fatal("prefetch knob had no effect")
	}
	async := testConfig(TierOrder)
	async.AsyncEviction = true
	w := Suite(testScale())[4]
	if Run(async, w).WallTime >= Run(testConfig(TierOrder), w).WallTime {
		t.Fatal("async-eviction knob had no effect on TierOrder")
	}
}

func TestTraceIORoundTripFacade(t *testing.T) {
	trace := []Access{{Page: 1}, {Page: 2, Write: true}}
	var buf strings.Builder
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != trace[0] || got[1] != trace[1] {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestSyntheticWorkloadsThroughFacade(t *testing.T) {
	cases := []Workload{
		NewStrided(500, 7, 2),
		NewUniformRandom(500, 3000, 0.1, 4),
		NewPointerChase(500, 2, 4),
	}
	cfg := testConfig(Reuse)
	for _, w := range cases {
		if w.Pages() != 500 {
			t.Fatalf("%s: pages = %d", w.Name(), w.Pages())
		}
		res := Run(cfg, w)
		if res.Accesses == 0 || res.WallTime <= 0 {
			t.Fatalf("%s: empty run", w.Name())
		}
		if res.Tier1Hits+res.Tier2Hits+res.SSDFills+res.InFlightJoins != res.Accesses {
			t.Fatalf("%s: breakdown broken", w.Name())
		}
	}
	// Pointer-chase over a Tier-2-sized cycle: the 3-tier runtime must
	// serve the second round largely from host memory.
	chase := NewPointerChase(700, 3, 9) // 700 pages between T1 (256) and T1+T2 (1280)
	res := Run(cfg, chase)
	if res.Tier2Hits == 0 {
		t.Fatal("pointer chase never hit Tier-2")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Tier1Pages <= 0 || cfg.Tier2Pages != 4*cfg.Tier1Pages {
		t.Fatalf("default tiers %d/%d, want 4x ratio", cfg.Tier1Pages, cfg.Tier2Pages)
	}
	if cfg.ComputePerAccess <= 0 || cfg.ComputePerAccess > time.Microsecond {
		t.Fatalf("compute per access = %v", cfg.ComputePerAccess)
	}
}
