module github.com/gmtsim/gmt

go 1.22
