package gmt

import (
	"math/rand"
	"testing"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
)

// fuzzTrace derives a random access sequence from rng: a hot set for
// long Tier-1 hit streaks (the batch path's bread and butter), uniform
// cold traffic for misses and evictions, occasional writes (dirty-bit
// replay) and kernel-wide barriers (negative-ID sentinels the batch
// scan must refuse).
func fuzzTrace(rng *rand.Rand, n, footprint int) []gpu.Access {
	hot := footprint / 8
	if hot < 4 {
		hot = 4
	}
	tr := make([]gpu.Access, 0, n)
	for i := 0; i < n; i++ {
		switch r := rng.Intn(100); {
		case r < 2:
			tr = append(tr, gpu.Barrier)
		case r < 60:
			tr = append(tr, gpu.Access{
				Page:  tier.PageID(rng.Intn(hot)),
				Write: rng.Intn(8) == 0,
			})
		default:
			tr = append(tr, gpu.Access{
				Page:  tier.PageID(rng.Intn(footprint)),
				Write: rng.Intn(8) == 0,
			})
		}
	}
	return tr
}

// diffBatchScalar runs one randomly-derived configuration through the
// full runtime twice — once with batched hit replay, once with the
// batch interface hidden so the GPU falls back to scalar AccessSync —
// and requires identical final clocks, identical dispatched-event
// counts (the batch path must preserve the event schedule exactly, per
// the determinism contract), and an identical metrics snapshot.
func diffBatchScalar(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pol := []core.PolicyKind{core.PolicyBaM, core.PolicyTierOrder, core.PolicyReuse}[rng.Intn(3)]
	t1 := 64 << rng.Intn(3)
	foot := t1 * (1 + rng.Intn(4))
	warps := 1 << rng.Intn(6)
	trace := fuzzTrace(rng, 2000+rng.Intn(2000), foot)

	run := func(scalar bool) (sim.Time, int64, stats.Run) {
		eng := sim.NewEngine()
		cfg := core.DefaultConfig()
		cfg.Policy = pol
		cfg.Tier1Pages = t1
		cfg.FootprintPages = foot
		rt := core.NewRuntime(eng, cfg)
		var mm gpu.MemoryManager = rt
		if scalar {
			mm = scalarRuntime{rt}
		}
		gcfg := gpu.DefaultConfig()
		gcfg.Warps = warps
		g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: trace}, mm)
		g.Launch()
		eng.Run()
		if !g.Done() {
			t.Fatalf("seed %d (%v, t1=%d, foot=%d, warps=%d): kernel did not finish",
				seed, pol, t1, foot, warps)
		}
		return eng.Now(), eng.Steps(), rt.Snapshot()
	}

	bnow, bsteps, bm := run(false)
	snow, ssteps, sm := run(true)
	if bnow != snow {
		t.Errorf("seed %d (%v, t1=%d, foot=%d, warps=%d): wall time: batch %d, scalar %d",
			seed, pol, t1, foot, warps, bnow, snow)
	}
	if bsteps != ssteps {
		t.Errorf("seed %d (%v, t1=%d, foot=%d, warps=%d): dispatched events: batch %d, scalar %d",
			seed, pol, t1, foot, warps, bsteps, ssteps)
	}
	if bm != sm {
		t.Errorf("seed %d (%v, t1=%d, foot=%d, warps=%d): metrics diverged:\nbatch:  %+v\nscalar: %+v",
			seed, pol, t1, foot, warps, bm, sm)
	}
}

// TestBatchScalarDifferential sweeps a fixed seed range so plain
// `go test` exercises the differential without a fuzzing engine.
func TestBatchScalarDifferential(t *testing.T) {
	n := int64(24)
	if testing.Short() {
		n = 6
	}
	for seed := int64(1); seed <= n; seed++ {
		diffBatchScalar(t, seed)
	}
}

// FuzzBatchScalarEquivalence lets `go test -fuzz` explore seeds beyond
// the fixed sweep; the corpus seeds below run on every plain `go test`.
func FuzzBatchScalarEquivalence(f *testing.F) {
	for seed := int64(100); seed < 108; seed++ {
		f.Add(seed)
	}
	f.Fuzz(diffBatchScalar)
}
