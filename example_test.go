package gmt_test

import (
	"fmt"

	"github.com/gmtsim/gmt"
)

// Run a small cyclic workload under the 2-tier baseline and GMT-Reuse
// and compare SSD traffic.
func ExampleRun() {
	chase := gmt.NewPointerChase(700, 3, 9)

	cfg := gmt.DefaultConfig()
	cfg.Tier1Pages = 256
	cfg.Tier2Pages = 1024

	cfg.Policy = gmt.BaM
	bam := gmt.Run(cfg, chase)
	cfg.Policy = gmt.Reuse
	reuse := gmt.Run(cfg, chase)

	fmt.Printf("accesses: %d\n", bam.Accesses)
	fmt.Printf("BaM SSD reads: %d\n", bam.SSDReads)
	fmt.Printf("GMT-Reuse reads fewer pages from SSD: %v\n", reuse.SSDReads < bam.SSDReads)
	fmt.Printf("GMT-Reuse hits Tier-2: %v\n", reuse.Tier2Hits > 0)
	// Output:
	// accesses: 2100
	// BaM SSD reads: 2100
	// GMT-Reuse reads fewer pages from SSD: true
	// GMT-Reuse hits Tier-2: true
}

// Drive the runtime with a custom trace.
func ExampleRunTrace() {
	var trace []gmt.Access
	for round := 0; round < 3; round++ {
		for p := int64(0); p < 400; p++ {
			trace = append(trace, gmt.Access{Page: p, Write: round == 2})
		}
	}
	cfg := gmt.DefaultConfig()
	cfg.Policy = gmt.Reuse
	cfg.Tier1Pages = 64
	cfg.Tier2Pages = 512
	res := gmt.RunTrace(cfg, "my-kernel", trace)
	fmt.Printf("app=%s policy=%s accesses=%d\n", res.App, res.Policy, res.Accesses)
	fmt.Printf("breakdown conserved: %v\n",
		res.Tier1Hits+res.Tier2Hits+res.SSDFills+res.InFlightJoins == res.Accesses)
	// Output:
	// app=my-kernel policy=GMT-Reuse accesses=1200
	// breakdown conserved: true
}

// Inspect a workload's reuse characteristics the way the paper's
// Table 2 / Figure 7 do.
func ExampleAnalyze() {
	scale := gmt.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2}
	for _, w := range gmt.Suite(scale) {
		if w.Name() != "Hotspot" {
			continue
		}
		c := gmt.Analyze(w, scale)
		fmt.Printf("%s: all eviction RRDs beyond Tier-1+Tier-2: %v\n",
			c.App, c.EvictTier3 > 0.99)
	}
	// Output:
	// Hotspot: all eviction RRDs beyond Tier-1+Tier-2: true
}
