// Command gmttrace inspects the workload generators: it prints each
// application's characteristics (Table 2 / Figure 7 view) and,
// optionally, the head of its access trace.
//
// Usage:
//
//	gmttrace [flags] [app ...]
//
// Flags:
//
//	-t1, -t2   tier capacities in pages
//	-osf F     oversubscription factor
//	-head N    print the first N accesses of each selected app
//	-out FILE  write the selected app's trace in gmt-trace format
//	           (exactly one app must be selected)
//	-file F    analyze a gmt-trace file instead of the built-in apps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gmtsim/gmt"
	"github.com/gmtsim/gmt/internal/buildinfo"
)

func main() {
	t1 := flag.Int("t1", 1024, "Tier-1 pages")
	t2 := flag.Int("t2", 4096, "Tier-2 pages")
	osf := flag.Float64("osf", 2, "oversubscription factor")
	head := flag.Int("head", 0, "print the first N accesses")
	out := flag.String("out", "", "write the selected app's trace to this file")
	file := flag.String("file", "", "analyze a gmt-trace file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("gmttrace", buildinfo.Version())
		return
	}

	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trace, err := gmt.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		scale := gmt.Scale{Tier1Pages: *t1, Tier2Pages: *t2, Oversubscription: *osf}
		w := &fileWorkload{name: *file, trace: trace}
		c := gmt.Analyze(w, scale)
		fmt.Printf("%-20s %10s %10s %8s   %s\n", "trace", "pages", "accesses", "reuse%", "eviction RRD T1/T2/T3")
		fmt.Printf("%-20s %10d %10d %7.1f%%   %.2f / %.2f / %.2f\n",
			*file, w.Pages(), c.Accesses, 100*c.ReusePct,
			c.EvictTier1, c.EvictTier2, c.EvictTier3)
		return
	}

	if *out != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "-out requires exactly one app argument")
			os.Exit(2)
		}
		scale := gmt.Scale{Tier1Pages: *t1, Tier2Pages: *t2, Oversubscription: *osf}
		for _, w := range gmt.Suite(scale) {
			if !strings.EqualFold(w.Name(), flag.Arg(0)) {
				continue
			}
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			tr := w.Trace()
			if err := gmt.WriteTrace(f, tr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d accesses of %s to %s\n", len(tr), w.Name(), *out)
			return
		}
		fmt.Fprintf(os.Stderr, "unknown app %q\n", flag.Arg(0))
		os.Exit(2)
	}

	scale := gmt.Scale{Tier1Pages: *t1, Tier2Pages: *t2, Oversubscription: *osf}
	selected := flag.Args()
	match := func(name string) bool {
		if len(selected) == 0 {
			return true
		}
		for _, s := range selected {
			if strings.EqualFold(s, name) {
				return true
			}
		}
		return false
	}

	found := false
	fmt.Printf("%-15s %10s %10s %8s   %s\n", "app", "pages", "accesses", "reuse%", "eviction RRD T1/T2/T3")
	for _, w := range gmt.Suite(scale) {
		if !match(w.Name()) {
			continue
		}
		found = true
		c := gmt.Analyze(w, scale)
		fmt.Printf("%-15s %10d %10d %7.1f%%   %.2f / %.2f / %.2f\n",
			c.App, w.Pages(), c.Accesses, 100*c.ReusePct,
			c.EvictTier1, c.EvictTier2, c.EvictTier3)
		if *head > 0 {
			tr := w.Trace()
			n := *head
			if n > len(tr) {
				n = len(tr)
			}
			for i := 0; i < n; i++ {
				op := "R"
				if tr[i].Write {
					op = "W"
				}
				fmt.Printf("    %6d  %s page %d\n", i, op, tr[i].Page)
			}
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "no matching apps; choose from %v\n", gmt.WorkloadNames())
		os.Exit(2)
	}
}

// fileWorkload adapts a loaded trace to gmt.Workload.
type fileWorkload struct {
	name  string
	trace []gmt.Access
}

func (w *fileWorkload) Name() string { return w.name }

func (w *fileWorkload) Pages() int64 {
	var max int64 = -1
	for _, a := range w.trace {
		if a.Page > max {
			max = a.Page
		}
	}
	return max + 1
}

func (w *fileWorkload) Trace() []gmt.Access { return w.trace }
