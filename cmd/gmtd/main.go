// Command gmtd is the simulation-serving daemon: a long-running HTTP
// front end over the same deterministic engine the CLIs drive. It
// accepts single-run jobs (à la gmtsim) and named experiments (à la
// gmtbench -json), executes them on a bounded worker pool, caches
// results by content address, and drains gracefully on SIGTERM.
//
// Usage:
//
//	gmtd [flags]
//
// Flags:
//
//	-addr A          listen address (default 127.0.0.1:8044; port 0
//	                 picks a free port and prints it)
//	-workers N       concurrent job executors (default 2)
//	-queue N         admitted-but-unstarted job bound; beyond it
//	                 submissions get 429 + Retry-After (default 64)
//	-job-parallel N  exp pool workers inside one experiment job (default 1)
//	-cache N         finished jobs retained as the result cache (default 256)
//	-cold-latency D  assumed per-job latency for Retry-After before the
//	                 first job completes (default 2s)
//	-version         print version and exit
//
// API (JSON unless noted):
//
//	POST /v1/jobs                submit; 202 queued, 200 cached/joined,
//	                             429 queue full, 503 draining
//	GET  /v1/jobs/{id}           poll status
//	GET  /v1/jobs/{id}/result    raw result payload — for experiment
//	                             jobs, the exact bytes of
//	                             `gmtbench -json <name>`
//	GET  /healthz                200 serving / 503 draining
//	GET  /metrics                Prometheus text exposition
//
// On SIGTERM/SIGINT the daemon stops admitting, finishes every
// admitted job, keeps poll/result/metrics answering while it does, and
// only then closes the listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/gmtsim/gmt/internal/buildinfo"
	"github.com/gmtsim/gmt/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8044", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 2, "concurrent job executors")
	queue := flag.Int("queue", 64, "admission queue depth")
	jobParallel := flag.Int("job-parallel", 1, "exp pool workers inside one experiment job")
	cache := flag.Int("cache", 256, "finished jobs retained as the result cache")
	coldLatency := flag.Duration("cold-latency", 2*time.Second,
		"assumed per-job latency for Retry-After before the first job completes")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("gmtd", buildinfo.Version())
		return
	}

	// internal/serve is banned from reading wall time (norealtime); the
	// binary injects a monotonic nanosecond clock anchored at startup.
	start := time.Now()
	s := serve.New(serve.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		JobParallelism:   *jobParallel,
		CacheEntries:     *cache,
		ColdStartLatency: *coldLatency,
		Clock:            func() int64 { return int64(time.Since(start)) },
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmtd:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: s}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "gmtd: %v: draining (finishing admitted jobs, rejecting new)\n", sig)
		s.Drain()
		// The listener stays up through the drain so clients can fetch
		// the results of jobs that were in flight; give pollers a grace
		// window, then close.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		close(done)
	}()

	fmt.Printf("gmtd: listening on %s\n", ln.Addr())
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "gmtd:", err)
		os.Exit(1)
	}
	<-done
	fmt.Fprintln(os.Stderr, "gmtd: drained, bye")
}
