// Command gmtsim runs one application under one tiering policy and
// prints the full metric breakdown — the single-run counterpart of
// gmtbench.
//
// Usage:
//
//	gmtsim [flags]
//
// Flags:
//
//	-app NAME      application (Table 2 name; default Srad)
//	-policy NAME   bam | tierorder | random | reuse | hmm (default reuse)
//	-t1, -t2       tier capacities in pages
//	-osf F         oversubscription factor
//	-warps N       concurrent warps
//	-seed N        RNG seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gmtsim/gmt"
	"github.com/gmtsim/gmt/internal/buildinfo"
)

func main() {
	app := flag.String("app", "Srad", "application name")
	policy := flag.String("policy", "reuse", "bam|tierorder|random|reuse|hmm")
	t1 := flag.Int("t1", 1024, "Tier-1 pages")
	t2 := flag.Int("t2", 4096, "Tier-2 pages")
	osf := flag.Float64("osf", 2, "oversubscription factor")
	warps := flag.Int("warps", 256, "concurrent warps")
	seed := flag.Int64("seed", 1, "seed")
	traceFile := flag.String("trace", "", "run a gmt-trace file instead of a named app")
	async := flag.Bool("async-evict", false, "background Tier-1->Tier-2 placements (§5 extension)")
	prefetch := flag.Int("prefetch", 0, "sequential prefetch degree")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("gmtsim", buildinfo.Version())
		return
	}

	p, err := gmt.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	cfg := gmt.DefaultConfig()
	cfg.Policy = p
	cfg.Tier1Pages = *t1
	cfg.Tier2Pages = *t2
	cfg.Warps = *warps
	cfg.Seed = *seed
	cfg.AsyncEviction = *async
	cfg.PrefetchDegree = *prefetch

	var res gmt.Result
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trace, err := gmt.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res = gmt.RunTrace(cfg, *traceFile, trace)
	} else {
		scale := gmt.Scale{Tier1Pages: *t1, Tier2Pages: *t2, Oversubscription: *osf}
		var w gmt.Workload
		for _, cand := range gmt.Suite(scale) {
			if strings.EqualFold(cand.Name(), *app) {
				w = cand
				break
			}
		}
		if w == nil {
			fmt.Fprintf(os.Stderr, "unknown app %q; choose from %v\n", *app, gmt.WorkloadNames())
			os.Exit(2)
		}
		res = gmt.Run(cfg, w)
	}
	fmt.Printf("%s under %s (T1=%d, T2=%d pages, OSF=%.1f, %d warps)\n",
		res.App, res.Policy, *t1, *t2, *osf, *warps)
	fmt.Printf("  virtual wall time : %v\n", res.WallTime)
	fmt.Printf("  accesses          : %d (T1 hits %d, T2 hits %d, SSD fills %d, joins %d)\n",
		res.Accesses, res.Tier1Hits, res.Tier2Hits, res.SSDFills, res.InFlightJoins)
	fmt.Printf("  tier-2 lookups    : %d (%d wasteful)\n", res.Tier2Lookups, res.WastefulLookups)
	fmt.Printf("  evictions         : %d to T2 (%d backfill), %d to SSD, %d dropped\n",
		res.EvictionsToTier2, res.BackfillPlaced, res.EvictionsToSSD, res.EvictionsDropped)
	fmt.Printf("  SSD I/O           : %d reads, %d writes\n", res.SSDReads, res.SSDWrites)
	fmt.Printf("  PCIe page moves   : %d to host, %d to GPU\n", res.PagesToHost, res.PagesToGPU)
	if res.Predictions > 0 {
		fmt.Printf("  prediction acc.   : %.1f%% over %d predictions\n",
			100*res.PredictionAccuracy, res.Predictions)
	}
	fmt.Printf("  tier-2 hit rate   : %.1f%%\n", 100*res.Tier2HitRate)
}
