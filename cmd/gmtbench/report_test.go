package main

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestFinalizeReportSpeedup pins the speedup_vs_sequential math: the
// estimate divides sequential work (prewarm busy + rendering) by the
// wall time of exactly that work (prewarm wall + rendering), nothing
// else.
func TestFinalizeReportSpeedup(t *testing.T) {
	rep := benchReport{
		Experiments: []benchExperiment{
			{Name: "fig8", WallMS: 60},
			{Name: "fig9", WallMS: 40},
		},
		Prewarm: &benchPrewarm{BusyMS: 900, WallMS: 300},
	}
	finalizeReport(&rep)
	if !approx(rep.EstSequentialMS, 1000) {
		t.Fatalf("est_sequential_ms = %v, want 1000 (900 busy + 100 render)", rep.EstSequentialMS)
	}
	// (900+100) sequential over (300+100) parallel = 2.5x.
	if !approx(rep.SpeedupVsSeq, 2.5) {
		t.Fatalf("speedup_vs_sequential = %v, want 2.5", rep.SpeedupVsSeq)
	}
}

// TestFinalizeReportIgnoresHarnessOverhead is the regression for the
// v1 bug where the divisor was total_wall_ms — which also counts
// microbenchmark and report-encoding time, so running -microbench
// alongside a sweep deflated the reported pool speedup.
func TestFinalizeReportIgnoresHarnessOverhead(t *testing.T) {
	rep := benchReport{
		Experiments: []benchExperiment{{Name: "fig8", WallMS: 100}},
		Prewarm:     &benchPrewarm{BusyMS: 900, WallMS: 300},
		// Simulate a run where microbenchmarks added 10 s of harness
		// time on top of the 400 ms of prewarm + rendering.
		TotalWallMS: 10400,
	}
	finalizeReport(&rep)
	if !approx(rep.SpeedupVsSeq, 2.5) {
		t.Fatalf("speedup_vs_sequential = %v, want 2.5 regardless of total_wall_ms", rep.SpeedupVsSeq)
	}
}

// TestFinalizeReportNoPrewarm: a sequential run (no pool) is its own
// baseline — speedup is exactly 1.
func TestFinalizeReportNoPrewarm(t *testing.T) {
	rep := benchReport{
		Experiments: []benchExperiment{{Name: "fig8", WallMS: 100}},
	}
	finalizeReport(&rep)
	if !approx(rep.EstSequentialMS, 100) {
		t.Fatalf("est_sequential_ms = %v, want 100", rep.EstSequentialMS)
	}
	if !approx(rep.SpeedupVsSeq, 1) {
		t.Fatalf("speedup_vs_sequential = %v, want 1.0 without a prewarm pool", rep.SpeedupVsSeq)
	}
}

// TestCommittedBaselineSpeedupConsistent re-derives the committed
// BENCH_suite.json's speedup_vs_sequential from its own measured parts
// and requires it to match the current formula. This is the regression
// gate for the stale-formula bug: a v1 baseline recorded with the old
// est_sequential_ms / total_wall_ms divisor (which counted microbench
// and encoding overhead, deflating the pool speedup below 1) fails here
// until re-recorded.
func TestCommittedBaselineSpeedupConsistent(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_suite.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var committed benchReport
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("BENCH_suite.json: %v", err)
	}
	rederived := committed
	finalizeReport(&rederived)
	if !approx(rederived.EstSequentialMS, committed.EstSequentialMS) {
		t.Errorf("committed est_sequential_ms = %v, formula gives %v — baseline recorded by a stale binary; re-record it",
			committed.EstSequentialMS, rederived.EstSequentialMS)
	}
	if !approx(rederived.SpeedupVsSeq, committed.SpeedupVsSeq) {
		t.Errorf("committed speedup_vs_sequential = %v, formula gives %v — baseline recorded by a stale binary; re-record it",
			committed.SpeedupVsSeq, rederived.SpeedupVsSeq)
	}
}

// TestFinalizeReportEmpty: no experiments and no prewarm must not
// divide by zero.
func TestFinalizeReportEmpty(t *testing.T) {
	var rep benchReport
	finalizeReport(&rep)
	if rep.SpeedupVsSeq != 1 {
		t.Fatalf("speedup_vs_sequential = %v, want 1.0 for an empty report", rep.SpeedupVsSeq)
	}
}

// TestWorkerFairness pins the human-readable pool-fairness line: skew
// is max/min across workers, idle workers are called out instead of a
// divide-by-zero skew, and single-worker pools print nothing.
func TestWorkerFairness(t *testing.T) {
	if got := workerFairness(nil); got != "" {
		t.Errorf("nil profile: got %q, want empty", got)
	}
	if got := workerFairness([]int64{5e6}); got != "" {
		t.Errorf("single worker: got %q, want empty", got)
	}
	got := workerFairness([]int64{10e6, 45e6})
	if want := "  worker busy: 10ms 45ms (skew 4.50x)"; got != want {
		t.Errorf("skew line = %q, want %q", got, want)
	}
	got = workerFairness([]int64{10e6, 0})
	if want := "  worker busy: 10ms 0s (idle worker)"; got != want {
		t.Errorf("idle line = %q, want %q", got, want)
	}
}
