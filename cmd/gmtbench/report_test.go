package main

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestFinalizeReportSpeedup pins the speedup_vs_sequential math: the
// estimate divides sequential work (prewarm busy + rendering) by the
// wall time of exactly that work (prewarm wall + rendering), nothing
// else.
func TestFinalizeReportSpeedup(t *testing.T) {
	rep := benchReport{
		Experiments: []benchExperiment{
			{Name: "fig8", WallMS: 60},
			{Name: "fig9", WallMS: 40},
		},
		Prewarm: &benchPrewarm{BusyMS: 900, WallMS: 300},
	}
	finalizeReport(&rep)
	if !approx(rep.EstSequentialMS, 1000) {
		t.Fatalf("est_sequential_ms = %v, want 1000 (900 busy + 100 render)", rep.EstSequentialMS)
	}
	// (900+100) sequential over (300+100) parallel = 2.5x.
	if !approx(rep.SpeedupVsSeq, 2.5) {
		t.Fatalf("speedup_vs_sequential = %v, want 2.5", rep.SpeedupVsSeq)
	}
}

// TestFinalizeReportIgnoresHarnessOverhead is the regression for the
// v1 bug where the divisor was total_wall_ms — which also counts
// microbenchmark and report-encoding time, so running -microbench
// alongside a sweep deflated the reported pool speedup.
func TestFinalizeReportIgnoresHarnessOverhead(t *testing.T) {
	rep := benchReport{
		Experiments: []benchExperiment{{Name: "fig8", WallMS: 100}},
		Prewarm:     &benchPrewarm{BusyMS: 900, WallMS: 300},
		// Simulate a run where microbenchmarks added 10 s of harness
		// time on top of the 400 ms of prewarm + rendering.
		TotalWallMS: 10400,
	}
	finalizeReport(&rep)
	if !approx(rep.SpeedupVsSeq, 2.5) {
		t.Fatalf("speedup_vs_sequential = %v, want 2.5 regardless of total_wall_ms", rep.SpeedupVsSeq)
	}
}

// TestFinalizeReportNoPrewarm: a sequential run (no pool) is its own
// baseline — speedup is exactly 1.
func TestFinalizeReportNoPrewarm(t *testing.T) {
	rep := benchReport{
		Experiments: []benchExperiment{{Name: "fig8", WallMS: 100}},
	}
	finalizeReport(&rep)
	if !approx(rep.EstSequentialMS, 100) {
		t.Fatalf("est_sequential_ms = %v, want 100", rep.EstSequentialMS)
	}
	if !approx(rep.SpeedupVsSeq, 1) {
		t.Fatalf("speedup_vs_sequential = %v, want 1.0 without a prewarm pool", rep.SpeedupVsSeq)
	}
}

// TestFinalizeReportEmpty: no experiments and no prewarm must not
// divide by zero.
func TestFinalizeReportEmpty(t *testing.T) {
	var rep benchReport
	finalizeReport(&rep)
	if rep.SpeedupVsSeq != 1 {
		t.Fatalf("speedup_vs_sequential = %v, want 1.0 for an empty report", rep.SpeedupVsSeq)
	}
}
