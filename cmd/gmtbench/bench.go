package main

// In-process microbenchmarks and the benchmark regression gate. The
// microbenchmarks mirror the repo's headline `go test -bench` set
// (BenchmarkSingleRun, BenchmarkPerAccessHit, BenchmarkAccessBatch,
// BenchmarkForkedRun, BenchmarkMissPath, BenchmarkEvictStorm) so a
// committed BENCH_suite.json records the perf trajectory the CI gate
// compares against without needing the test binary. The hit- and
// miss-path benches additionally carry a hard 0 allocs/op gate
// (zeroAllocMicro): -microbench itself fails when the steady-state
// per-access path — scalar, batched, forked, missing, or evicting —
// allocates.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
	"github.com/gmtsim/gmt/internal/workload"
)

// benchMicro is one in-process microbenchmark result attached to the
// report under "microbench" (omitted entirely when -microbench is off,
// so default report bytes are unchanged).
type benchMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// zeroAllocMicro names the microbenchmarks whose steady state must be
// allocation-free: the batched hit path (per access and per call) and
// the same path on a forked child. -microbench exits 1 when any of them
// reports a nonzero allocs/op, and -comparebench re-checks the committed
// entries so the gate holds even on runs that skip -microbench locally.
var zeroAllocMicro = map[string]bool{
	"PerAccessHit": true,
	"AccessBatch":  true,
	"ForkedRun":    true,
	"MissPath":     true,
	"EvictStorm":   true,
}

// warmMissMicro builds the miss-path steady state: a 512-page footprint
// over 64 Tier-1 + 128 Tier-2 pages, so a cyclic scan misses on every
// access and each miss cascades an eviction. One warm lap grows every
// pool to capacity; after it the whole miss pipeline must run
// allocation-free (mirrors bench_test.go's warmMissTorture).
func warmMissMicro(eng *sim.Engine, policy core.PolicyKind) (*core.Runtime, func()) {
	cfg := core.DefaultConfig()
	cfg.Policy = policy
	cfg.Tier1Pages = 64
	cfg.Tier2Pages = 128
	cfg.FootprintPages = 512
	rt := core.NewRuntime(eng, cfg)
	done := func() {}
	for p := 0; p < 512; p++ {
		rt.Access(gpu.Access{Page: tier.PageID(p), Write: p%3 == 0}, done)
	}
	eng.Run()
	return rt, done
}

// warmResidentMicro builds the steady state the hit benches replay: a
// BaM runtime with the whole 128-page footprint resident and quiescent,
// plus a 512-access hitting batch over it.
func warmResidentMicro(eng *sim.Engine) (*core.Runtime, core.Config, []gpu.Access) {
	cfg := core.DefaultConfig()
	cfg.Policy = core.PolicyBaM
	cfg.Tier1Pages = 256
	cfg.FootprintPages = 128
	rt := core.NewRuntime(eng, cfg)
	done := func() {}
	for p := 0; p < 128; p++ {
		rt.Access(gpu.Access{Page: tier.PageID(p)}, done)
	}
	eng.Run()
	batch := make([]gpu.Access, 512)
	for i := range batch {
		batch[i] = gpu.Access{Page: tier.PageID(i % 128)}
	}
	return rt, cfg, batch
}

// runMicrobench runs the headline microbenchmarks: one complete
// Figure 8-scale simulation (engine, runtime, GPU, devices; workload
// generation excluded), the steady-state Tier-1 hit path per access and
// per batch call, and the hit path on a forked child runtime.
func runMicrobench() []benchMicro {
	scale := workload.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2}
	trace := workload.NewMultiVectorAdd(scale).Trace()
	single := testing.Benchmark(func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Policy = core.PolicyReuse
		cfg.Tier1Pages = scale.Tier1Pages
		cfg.Tier2Pages = scale.Tier2Pages
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			rt := core.NewRuntime(eng, cfg)
			g := gpu.New(eng, gpu.DefaultConfig(), &gpu.SliceStream{Trace: trace}, rt)
			g.Launch()
			eng.Run()
		}
	})
	// Per-access cost on the batched hit path — the way hitting warps
	// now stream runs through AccessSyncBatch; ns/op is per access.
	hit := testing.Benchmark(func(b *testing.B) {
		rt, _, batch := warmResidentMicro(sim.NewEngine())
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := rt.AccessSyncBatch(batch, len(batch))
			if n != len(batch) {
				b.Fatalf("batch broke after %d of %d resident accesses", n, len(batch))
			}
			done += n
		}
	})
	// Per-call cost of one full 512-access batch.
	accessBatch := testing.Benchmark(func(b *testing.B) {
		rt, _, batch := warmResidentMicro(sim.NewEngine())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n := rt.AccessSyncBatch(batch, len(batch)); n != len(batch) {
				b.Fatalf("batch broke after %d of %d resident accesses", n, len(batch))
			}
		}
	})
	// The same per-access replay on a forked child: copy-on-write
	// directory inheritance must keep the hot path allocation-free.
	forkedRun := testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		parent, cfg, batch := warmResidentMicro(eng)
		child := parent.Fork(sim.NewEngineFrom(eng.Snapshot()), cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := child.AccessSyncBatch(batch, len(batch))
			if n != len(batch) {
				b.Fatalf("forked batch broke after %d of %d resident accesses", n, len(batch))
			}
			done += n
		}
	})
	// Steady-state miss pipeline: every access misses, fetches from
	// Tier-2 or the SSD, and evicts. The gate is 0 allocs/op.
	missPath := testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		rt, done := warmMissMicro(eng, core.PolicyReuse)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Access(gpu.Access{Page: tier.PageID(i % 512)}, done)
			eng.Run()
		}
	})
	// Worst-case dirty eviction cascade: a 256-access write-miss storm
	// per op, each miss spilling dirty victims down the tiers.
	evictStorm := testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		rt, done := warmMissMicro(eng, core.PolicyTierOrder)
		const storm = 256
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < storm; j++ {
				rt.Access(gpu.Access{Page: tier.PageID((i*storm + j) % 512), Write: true}, done)
			}
			eng.Run()
		}
	})
	toMicro := func(name string, r testing.BenchmarkResult) benchMicro {
		return benchMicro{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	return []benchMicro{
		toMicro("SingleRun", single),
		toMicro("PerAccessHit", hit),
		toMicro("AccessBatch", accessBatch),
		toMicro("ForkedRun", forkedRun),
		toMicro("MissPath", missPath),
		toMicro("EvictStorm", evictStorm),
	}
}

// microGate enforces the 0 allocs/op contract on the zeroAllocMicro
// benches of a freshly measured set.
func microGate(micro []benchMicro) []error {
	var errs []error
	for _, m := range micro {
		if zeroAllocMicro[m.Name] && m.AllocsPerOp != 0 {
			errs = append(errs, fmt.Errorf(
				"%s: steady-state access path allocated: %d allocs/op (%d B/op), want 0",
				m.Name, m.AllocsPerOp, m.BytesPerOp))
		}
	}
	return errs
}

// Regression-gate tolerances (-comparebench). Wall clock is noisy across
// runners, so an experiment only fails at >1.25x the baseline plus a
// 100ms absolute floor for sub-second phases. Allocation counts are
// deterministic modulo map growth and slice doubling, so the band is
// tight: +1% plus a 10k-object floor.
const (
	compareWallRatio   = 1.25
	compareWallSlackMS = 100
	compareMallocRatio = 1.01
	compareMallocSlack = 10_000
	// Microbenchmark gate: allocs/op is deterministic and must never
	// exceed the baseline (so a 0 allocs/op entry stays 0 forever);
	// ns/op gets a wide 2x band because single-digit-nanosecond benches
	// swing hard across shared CI runners.
	compareMicroNsRatio = 2.0
)

// compareBench gates the current report against a committed baseline,
// returning one error per regressed experiment.
func compareBench(baselinePath string, cur benchReport) []error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return []error{err}
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return []error{fmt.Errorf("%s: %v", baselinePath, err)}
	}
	baseline := make(map[string]benchExperiment, len(base.Experiments))
	for _, e := range base.Experiments {
		baseline[e.Name] = e
	}
	var errs []error
	for _, e := range cur.Experiments {
		b, ok := baseline[e.Name]
		if !ok {
			continue // new experiment: nothing to regress against
		}
		if maxWall := b.WallMS*compareWallRatio + compareWallSlackMS; e.WallMS > maxWall {
			errs = append(errs, fmt.Errorf(
				"%s: wall clock regressed: %.1fms vs baseline %.1fms (limit %.1fms)",
				e.Name, e.WallMS, b.WallMS, maxWall))
		}
		if maxMallocs := float64(b.Mallocs)*compareMallocRatio + compareMallocSlack; float64(e.Mallocs) > maxMallocs {
			errs = append(errs, fmt.Errorf(
				"%s: allocation count regressed: %d objects vs baseline %d (limit %.0f)",
				e.Name, e.Mallocs, b.Mallocs, maxMallocs))
		}
	}
	// Microbenchmark entries gate only when this run measured them
	// (-microbench); a run without them compares experiments alone.
	baseMicro := make(map[string]benchMicro, len(base.Micro))
	for _, m := range base.Micro {
		baseMicro[m.Name] = m
	}
	for _, m := range cur.Micro {
		b, ok := baseMicro[m.Name]
		if !ok {
			continue // new microbenchmark: nothing to regress against
		}
		if m.AllocsPerOp > b.AllocsPerOp {
			errs = append(errs, fmt.Errorf(
				"%s: allocs/op regressed: %d vs baseline %d",
				m.Name, m.AllocsPerOp, b.AllocsPerOp))
		}
		if maxNs := b.NsPerOp * compareMicroNsRatio; m.NsPerOp > maxNs {
			errs = append(errs, fmt.Errorf(
				"%s: ns/op regressed: %.2f vs baseline %.2f (limit %.2f)",
				m.Name, m.NsPerOp, b.NsPerOp, maxNs))
		}
	}
	return errs
}
