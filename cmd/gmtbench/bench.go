package main

// In-process microbenchmarks and the benchmark regression gate. The
// microbenchmarks mirror the repo's headline `go test -bench` pair
// (BenchmarkSingleRun, BenchmarkPerAccessHit) so a committed
// BENCH_suite.json records the perf trajectory the CI gate compares
// against without needing the test binary.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
	"github.com/gmtsim/gmt/internal/workload"
)

// benchMicro is one in-process microbenchmark result attached to the
// report under "microbench" (omitted entirely when -microbench is off,
// so default report bytes are unchanged).
type benchMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// runMicrobench runs the two headline microbenchmarks: one complete
// Figure 8-scale simulation (engine, runtime, GPU, devices; workload
// generation excluded) and the steady-state Tier-1 hit path.
func runMicrobench() []benchMicro {
	scale := workload.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2}
	trace := workload.NewMultiVectorAdd(scale).Trace()
	single := testing.Benchmark(func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Policy = core.PolicyReuse
		cfg.Tier1Pages = scale.Tier1Pages
		cfg.Tier2Pages = scale.Tier2Pages
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			rt := core.NewRuntime(eng, cfg)
			g := gpu.New(eng, gpu.DefaultConfig(), &gpu.SliceStream{Trace: trace}, rt)
			g.Launch()
			eng.Run()
		}
	})
	hit := testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		cfg := core.DefaultConfig()
		cfg.Policy = core.PolicyBaM
		cfg.Tier1Pages = 256
		cfg.FootprintPages = 128
		rt := core.NewRuntime(eng, cfg)
		done := func() {}
		for p := 0; p < 128; p++ {
			rt.Access(gpu.Access{Page: tier.PageID(p)}, done)
		}
		eng.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !rt.AccessSync(gpu.Access{Page: tier.PageID(i % 128)}, done) {
				b.Fatal("resident access missed")
			}
		}
		b.StopTimer()
		eng.Run()
	})
	toMicro := func(name string, r testing.BenchmarkResult) benchMicro {
		return benchMicro{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	return []benchMicro{
		toMicro("SingleRun", single),
		toMicro("PerAccessHit", hit),
	}
}

// Regression-gate tolerances (-comparebench). Wall clock is noisy across
// runners, so an experiment only fails at >1.25x the baseline plus a
// 100ms absolute floor for sub-second phases. Allocation counts are
// deterministic modulo map growth and slice doubling, so the band is
// tight: +1% plus a 10k-object floor.
const (
	compareWallRatio   = 1.25
	compareWallSlackMS = 100
	compareMallocRatio = 1.01
	compareMallocSlack = 10_000
)

// compareBench gates the current report against a committed baseline,
// returning one error per regressed experiment.
func compareBench(baselinePath string, cur benchReport) []error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return []error{err}
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return []error{fmt.Errorf("%s: %v", baselinePath, err)}
	}
	baseline := make(map[string]benchExperiment, len(base.Experiments))
	for _, e := range base.Experiments {
		baseline[e.Name] = e
	}
	var errs []error
	for _, e := range cur.Experiments {
		b, ok := baseline[e.Name]
		if !ok {
			continue // new experiment: nothing to regress against
		}
		if maxWall := b.WallMS*compareWallRatio + compareWallSlackMS; e.WallMS > maxWall {
			errs = append(errs, fmt.Errorf(
				"%s: wall clock regressed: %.1fms vs baseline %.1fms (limit %.1fms)",
				e.Name, e.WallMS, b.WallMS, maxWall))
		}
		if maxMallocs := float64(b.Mallocs)*compareMallocRatio + compareMallocSlack; float64(e.Mallocs) > maxMallocs {
			errs = append(errs, fmt.Errorf(
				"%s: allocation count regressed: %d objects vs baseline %d (limit %.0f)",
				e.Name, e.Mallocs, b.Mallocs, maxMallocs))
		}
	}
	return errs
}
