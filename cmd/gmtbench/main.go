// Command gmtbench regenerates the paper's tables and figures, plus the
// extension studies. Each experiment prints the same rows/series the
// paper reports, computed from deterministic simulations.
//
// Usage:
//
//	gmtbench [flags] [experiment ...]
//
// Experiments: table1, table2, fig4, fig6, fig7, fig8, fig9, fig10,
// fig11, fig12, fig13, fig14, oracle, ext, ssd, predictors, warmup,
// util, kvserve, and all (the default).
//
// Flags:
//
//	-t1 N        Tier-1 capacity in 64 KiB pages (default 1024 ≈ paper's 16 GB / 256)
//	-t2 N        Tier-2 capacity in pages (default 4096)
//	-osf F       oversubscription factor (default 2)
//	-dataseed N  dataset-synthesis seed for the Kronecker graph and the
//	             KV-serving request mix (default 42)
//	-quick       quarter-scale run (fast smoke of every experiment)
//	-json        emit rows as JSON instead of rendered tables
//	-svg DIR     additionally write SVG figures (fig6, fig8, fig9, fig12,
//	             fig14, ssd, kvserve) into DIR
//	-parallel N  worker goroutines prewarming traces and simulations
//	             (default GOMAXPROCS; 1 = fully sequential). Output is
//	             byte-identical for any N: workers only fill the result
//	             memo, rendering then replays the same sequential reads.
//	-nofork      disable cross-sweep-point sharing (warm-up prefix
//	             forking, canonical BaM run dedup, parent-trace reuse by
//	             the sensitivity sub-suites): every sweep point generates
//	             and simulates independently. Output is byte-identical
//	             either way — the flag exists to measure the sharing
//	             speedup honestly.
//	-benchjson P write a machine-readable benchmark report (schema
//	             gmt-bench-suite/v1: per-experiment wall clock and
//	             allocation deltas, prewarm job/hit counts, estimated
//	             speedup vs sequential) to P
//	-microbench  also run the in-process microbenchmarks (SingleRun,
//	             PerAccessHit, AccessBatch, ForkedRun, MissPath,
//	             EvictStorm) and attach them to the report under
//	             "microbench"; exits 1 when a hit- or miss-path bench
//	             breaks its 0 allocs/op gate
//	-comparebench P  compare this run's report against a committed
//	             gmt-bench-suite/v1 baseline at P and exit 1 on
//	             regression (wall clock beyond 1.25x + 100ms slack,
//	             allocation count beyond +1% + 10k objects; with
//	             -microbench also allocs/op above baseline or ns/op
//	             beyond 2x baseline)
//	-cpuprofile P  write a CPU profile (pprof) to P
//	-memprofile P  write an allocation profile (pprof) to P
//	-trace P       write a runtime execution trace to P
//	-timeout D   deadline for the prewarm phase, observed between pool
//	             jobs (an in-progress simulation finishes); on expiry
//	             gmtbench exits 1 without rendering
//	-version     print the build's module version and VCS info, then exit
//
// Profiles are finalized when the run completes successfully; the
// simulator packages themselves are banned from runtime/pprof (the
// norealtime discipline), so this command is the profiling entry point
// for the whole tree.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"github.com/gmtsim/gmt/internal/buildinfo"
	"github.com/gmtsim/gmt/internal/exp"
	"github.com/gmtsim/gmt/internal/plot"
	"github.com/gmtsim/gmt/internal/workload"
)

// benchReport is the -benchjson output (schema gmt-bench-suite/v1).
type benchReport struct {
	Schema          string            `json:"schema"`
	Scale           workload.Scale    `json:"scale"`
	Parallel        int               `json:"parallel"`
	Prewarm         *benchPrewarm     `json:"prewarm,omitempty"`
	Experiments     []benchExperiment `json:"experiments"`
	Micro           []benchMicro      `json:"microbench,omitempty"`
	TotalWallMS     float64           `json:"total_wall_ms"`
	EstSequentialMS float64           `json:"est_sequential_ms"`
	SpeedupVsSeq    float64           `json:"speedup_vs_sequential"`
}

type benchPrewarm struct {
	Workers   int     `json:"workers"`
	Jobs      int     `json:"jobs"`
	Sims      int64   `json:"simulations"`
	CacheHits int64   `json:"cache_hits"`
	BusyMS    float64 `json:"busy_ms"`
	WallMS    float64 `json:"wall_ms"`
	// WorkerBusyMS is each pool worker's summed job time (len ==
	// workers): a skewed profile exposes a long-tail job pinning one
	// worker while the rest drained the queue and idled.
	WorkerBusyMS []float64    `json:"worker_busy_ms"`
	Phases       []benchPhase `json:"phases"`
	benchMem
}

// benchMem is the allocation and GC accounting attached to each phase
// of the v1 report: bytes and objects allocated during the phase
// (deltas of runtime.MemStats.TotalAlloc/Mallocs), live heap at its
// end, and the GC work the phase induced (deltas of PauseTotalNs and
// NumGC). gc_pauses_ns is the collector-pressure twin of mallocs: an
// allocation-heavy phase shows up in both, and the zero-alloc pipeline
// work is visible as both numbers collapsing together.
type benchMem struct {
	AllocBytes   uint64 `json:"alloc_bytes"`
	Mallocs      uint64 `json:"mallocs"`
	HeapAllocEnd uint64 `json:"heap_alloc_end_bytes"`
	GCPausesNS   uint64 `json:"gc_pauses_ns"`
	NumGC        uint32 `json:"num_gc"`
}

// measureMem runs fn and reports its allocation, heap, and GC deltas.
func measureMem(fn func()) benchMem {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return benchMem{
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		Mallocs:      after.Mallocs - before.Mallocs,
		HeapAllocEnd: after.HeapAlloc,
		GCPausesNS:   after.PauseTotalNs - before.PauseTotalNs,
		NumGC:        after.NumGC - before.NumGC,
	}
}

type benchPhase struct {
	Name   string  `json:"name"`
	Jobs   int     `json:"jobs"`
	WallMS float64 `json:"wall_ms"`
}

type benchExperiment struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	benchMem
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// workerFairness renders the pool's per-worker busy profile for the
// human-readable output (the JSON report carries the same data as
// worker_busy_ms). Skew is max/min busy time — the at-a-glance signal
// that a long-tail job pinned one worker while the rest idled. Empty
// for a single-worker pool, where there is nothing to compare.
func workerFairness(busyNS []int64) string {
	if len(busyNS) < 2 {
		return ""
	}
	min, max := busyNS[0], busyNS[0]
	var b strings.Builder
	b.WriteString("  worker busy:")
	for _, ns := range busyNS {
		if ns < min {
			min = ns
		}
		if ns > max {
			max = ns
		}
		fmt.Fprintf(&b, " %v", time.Duration(ns).Round(time.Millisecond))
	}
	if min <= 0 {
		b.WriteString(" (idle worker)")
	} else {
		fmt.Fprintf(&b, " (skew %.2fx)", float64(max)/float64(min))
	}
	return b.String()
}

// finalizeReport fills the derived fields of a v1 report from its
// measured parts. The sequential estimate is every experiment's wall
// time plus the prewarm pool's busy time (all jobs back to back on one
// worker); the parallel time it is compared against is the prewarm
// wall time plus the same rendering pass. Harness overhead outside
// those two — microbenchmarks, report encoding, flag setup — appears
// in total_wall_ms but must not dilute speedup_vs_sequential: both
// modes pay it equally, so it says nothing about the pool.
func finalizeReport(rep *benchReport) {
	var renderMS float64
	for _, e := range rep.Experiments {
		renderMS += e.WallMS
	}
	rep.EstSequentialMS = renderMS
	parallelMS := renderMS
	if rep.Prewarm != nil {
		rep.EstSequentialMS += rep.Prewarm.BusyMS
		parallelMS += rep.Prewarm.WallMS
	}
	if parallelMS > 0 {
		rep.SpeedupVsSeq = rep.EstSequentialMS / parallelMS
	} else {
		rep.SpeedupVsSeq = 1
	}
}

func main() {
	t1 := flag.Int("t1", 1024, "Tier-1 capacity in 64 KiB pages")
	t2 := flag.Int("t2", 4096, "Tier-2 capacity in 64 KiB pages")
	osf := flag.Float64("osf", 2, "oversubscription factor")
	dataseed := flag.Int64("dataseed", 42, "dataset-synthesis seed (Kronecker graph, KV-serving mix)")
	quick := flag.Bool("quick", false, "quarter-scale fast run")
	jsonOut := flag.Bool("json", false, "emit rows as JSON")
	svgDir := flag.String("svg", "", "directory to write SVG figures into")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines prewarming simulations (1 = sequential)")
	nofork := flag.Bool("nofork", false,
		"disable warm-up prefix forking and cross-sweep-point sharing (byte-identical output, slower)")
	benchjson := flag.String("benchjson", "",
		"write a gmt-bench-suite/v1 JSON report to this path")
	microbench := flag.Bool("microbench", false,
		"also run the in-process microbenchmarks (SingleRun, PerAccessHit, AccessBatch, ForkedRun, MissPath, EvictStorm) and attach them to the report")
	comparebench := flag.String("comparebench", "",
		"compare this run against a committed gmt-bench-suite/v1 baseline and exit 1 on regression")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this path")
	timeout := flag.Duration("timeout", 0,
		"deadline for the prewarm phase; on expiry remaining jobs are skipped and gmtbench exits 1")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("gmtbench", buildinfo.Version())
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err == nil {
			err = trace.Start(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	writeSVG := func(name string, f *plot.Figure) {
		if *svgDir == "" {
			return
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := os.WriteFile(path, []byte(f.SVG()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("wrote %s\n", path)
		}
	}

	scale := workload.Scale{Tier1Pages: *t1, Tier2Pages: *t2, Oversubscription: *osf, DatasetSeed: *dataseed}
	if *quick {
		scale.Tier1Pages = *t1 / 4
		scale.Tier2Pages = *t2 / 4
	}

	var suite *exp.Suite
	getSuite := func() *exp.Suite {
		if suite == nil {
			if !*jsonOut {
				fmt.Printf("building workload suite (T1=%d pages, T2=%d pages, OSF=%.1f)...\n\n",
					scale.Tier1Pages, scale.Tier2Pages, scale.Oversubscription)
			}
			suite = exp.NewSuite(scale)
			suite.NoFork = *nofork
		}
		return suite
	}

	order := exp.ExperimentNames

	// Expand "all" and validate names up front, so the planner sees the
	// complete job set before any worker starts. Dispatch itself lives in
	// exp.RunExperiment, shared with the gmtd daemon.
	var experiments []string
	for _, name := range flag.Args() {
		if name == "all" {
			experiments = append(experiments, order...)
			continue
		}
		if !exp.KnownExperiment(name) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from %v or 'all'\n", name, order)
			os.Exit(2)
		}
		experiments = append(experiments, name)
	}
	if len(experiments) == 0 {
		experiments = order
	}

	// The exp package is banned from reading wall time (the norealtime
	// analyzer covers everything outside cmd/), so inject a monotonic
	// clock for the prewarm report.
	harnessStart := time.Now()
	clock := func() int64 { return int64(time.Since(harnessStart)) }

	needsSuite := false
	for _, name := range experiments {
		if exp.NeedsSuite(name) {
			needsSuite = true
		}
	}

	// -timeout bounds the prewarm phase through the pool's context path:
	// workers observe the deadline between jobs, so expiry stops the run
	// at job granularity. Forcing the prewarm path even at -parallel 1
	// keeps the flag meaningful for sequential runs.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var prewarm *exp.Report
	var prewarmMem benchMem
	if (*parallel > 1 || *timeout > 0) && needsSuite {
		var rep exp.Report
		var perr error
		prewarmMem = measureMem(func() {
			rep, perr = exp.Prewarm(ctx, getSuite(), experiments, *parallel, clock)
		})
		if perr != nil {
			fmt.Fprintf(os.Stderr, "gmtbench: prewarm aborted after %d jobs: %v\n",
				rep.JobsPlanned, perr)
			os.Exit(1)
		}
		prewarm = &rep
		if !*jsonOut {
			fmt.Printf("prewarmed %d jobs on %d workers: %d simulations, %d memo hits [%v]\n",
				rep.JobsPlanned, rep.Workers, rep.Sims, rep.CacheHits,
				time.Duration(rep.WallNS).Round(time.Millisecond))
			if line := workerFairness(rep.WorkerBusyNS); line != "" {
				fmt.Printf("%s\n", line)
			}
			fmt.Println()
		}
	}

	var svgSink exp.SVGSink
	if *svgDir != "" {
		svgSink = writeSVG
	}
	var timings []benchExperiment
	execute := func(name string) {
		start := time.Now()
		var rows interface{}
		var text string
		mem := measureMem(func() { rows, text, _ = exp.RunExperiment(getSuite, name, svgSink) })
		timings = append(timings, benchExperiment{
			Name: name, WallMS: ms(time.Since(start)), benchMem: mem,
		})
		if *jsonOut {
			if err := exp.EncodeExperiment(os.Stdout, name, rows); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(text)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	for _, name := range experiments {
		execute(name)
	}

	var micro []benchMicro
	if *microbench {
		micro = runMicrobench()
		if !*jsonOut {
			for _, m := range micro {
				fmt.Printf("microbench %-14s %12.1f ns/op %8d B/op %6d allocs/op\n",
					m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
			}
			fmt.Println()
		}
		if errs := microGate(micro); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "gmtbench: microbench gate: %v\n", e)
			}
			os.Exit(1)
		}
	}

	if *benchjson != "" || *comparebench != "" {
		rep := benchReport{
			Schema:      "gmt-bench-suite/v1",
			Scale:       scale,
			Parallel:    *parallel,
			Experiments: timings,
			TotalWallMS: ms(time.Since(harnessStart)),
		}
		if prewarm != nil {
			bp := &benchPrewarm{
				Workers:   prewarm.Workers,
				Jobs:      prewarm.JobsPlanned,
				Sims:      prewarm.Sims,
				CacheHits: prewarm.CacheHits,
				BusyMS:    float64(prewarm.BusyNS) / 1e6,
				WallMS:    float64(prewarm.WallNS) / 1e6,
				benchMem:  prewarmMem,
			}
			for _, ns := range prewarm.WorkerBusyNS {
				bp.WorkerBusyMS = append(bp.WorkerBusyMS, float64(ns)/1e6)
			}
			for _, ph := range prewarm.Phases {
				bp.Phases = append(bp.Phases, benchPhase{
					Name: ph.Name, Jobs: ph.Jobs, WallMS: float64(ph.WallNS) / 1e6,
				})
			}
			rep.Prewarm = bp
		}
		finalizeReport(&rep)
		rep.Micro = micro
		if *benchjson != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err == nil {
				err = os.WriteFile(*benchjson, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if !*jsonOut {
				fmt.Printf("wrote %s\n", *benchjson)
			}
		}
		if *comparebench != "" {
			if errs := compareBench(*comparebench, rep); len(errs) > 0 {
				for _, e := range errs {
					fmt.Fprintf(os.Stderr, "gmtbench: regression: %v\n", e)
				}
				os.Exit(1)
			}
			if !*jsonOut {
				fmt.Printf("no benchmark regressions vs %s\n", *comparebench)
			}
		}
	}

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		trace.Stop()
	}
	if *memprofile != "" {
		runtime.GC() // settle the heap so the profile shows live objects accurately
		f, err := os.Create(*memprofile)
		if err == nil {
			err = pprof.Lookup("allocs").WriteTo(f, 0)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
