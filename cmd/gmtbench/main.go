// Command gmtbench regenerates the paper's tables and figures, plus the
// extension studies. Each experiment prints the same rows/series the
// paper reports, computed from deterministic simulations.
//
// Usage:
//
//	gmtbench [flags] [experiment ...]
//
// Experiments: table2, fig4, fig6, fig7, fig8, fig9, fig10, fig11,
// fig12, fig13, fig14, oracle, ext, ssd, predictors, warmup, and all
// (the default).
//
// Flags:
//
//	-t1 N     Tier-1 capacity in 64 KiB pages (default 1024 ≈ paper's 16 GB / 256)
//	-t2 N     Tier-2 capacity in pages (default 4096)
//	-osf F    oversubscription factor (default 2)
//	-quick    quarter-scale run (fast smoke of every experiment)
//	-json     emit rows as JSON instead of rendered tables
//	-svg DIR  additionally write SVG figures (fig6, fig8, fig9, fig12,
//	          fig14, ssd) into DIR
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gmtsim/gmt/internal/exp"
	"github.com/gmtsim/gmt/internal/plot"
	"github.com/gmtsim/gmt/internal/workload"
	"github.com/gmtsim/gmt/internal/xfer"
)

func main() {
	t1 := flag.Int("t1", 1024, "Tier-1 capacity in 64 KiB pages")
	t2 := flag.Int("t2", 4096, "Tier-2 capacity in 64 KiB pages")
	osf := flag.Float64("osf", 2, "oversubscription factor")
	quick := flag.Bool("quick", false, "quarter-scale fast run")
	jsonOut := flag.Bool("json", false, "emit rows as JSON")
	svgDir := flag.String("svg", "", "directory to write SVG figures into")
	flag.Parse()

	writeSVG := func(name string, f *plot.Figure) {
		if *svgDir == "" {
			return
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := os.WriteFile(path, []byte(f.SVG()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("wrote %s\n", path)
		}
	}

	scale := workload.Scale{Tier1Pages: *t1, Tier2Pages: *t2, Oversubscription: *osf}
	if *quick {
		scale.Tier1Pages = *t1 / 4
		scale.Tier2Pages = *t2 / 4
	}

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}

	var suite *exp.Suite
	getSuite := func() *exp.Suite {
		if suite == nil {
			if !*jsonOut {
				fmt.Printf("building workload suite (T1=%d pages, T2=%d pages, OSF=%.1f)...\n\n",
					scale.Tier1Pages, scale.Tier2Pages, scale.Oversubscription)
			}
			suite = exp.NewSuite(scale)
		}
		return suite
	}

	// Each experiment yields its typed rows (for -json) and rendered
	// text.
	run := map[string]func() (interface{}, string){
		"table1": func() (interface{}, string) {
			r, t := exp.Table1(getSuite())
			return r, t.Render()
		},
		"table2": func() (interface{}, string) {
			r, t := exp.Table2(getSuite())
			return r, t.Render()
		},
		"fig4": func() (interface{}, string) {
			r, t := exp.Figure4(getSuite())
			return r, t.Render()
		},
		"fig6": func() (interface{}, string) {
			ra, ta := exp.Figure6a(xfer.DefaultConfig())
			rb, tb := exp.Figure6b(xfer.DefaultConfig())
			writeSVG("fig6b", exp.Figure6bSVG(rb))
			return map[string]interface{}{"a": ra, "b": rb}, ta.Render() + "\n" + tb.Render()
		},
		"fig7": func() (interface{}, string) {
			r, t := exp.Figure7(getSuite())
			return r, t.Render()
		},
		"fig8": func() (interface{}, string) {
			r, t := exp.Figure8(getSuite())
			writeSVG("fig8a", exp.Figure8SVG(r))
			return r, t.Render()
		},
		"fig9": func() (interface{}, string) {
			r, t := exp.Figure9(getSuite())
			writeSVG("fig9", exp.Figure9SVG(r))
			return r, t.Render()
		},
		"fig10": func() (interface{}, string) {
			r, t := exp.Figure10(getSuite())
			return r, t.Render()
		},
		"fig11": func() (interface{}, string) {
			r, t := exp.Figure11(scale)
			return r, t.Render()
		},
		"fig12": func() (interface{}, string) {
			r, t := exp.Figure12(scale)
			writeSVG("fig12", exp.Figure12SVG(r))
			return r, t.Render()
		},
		"fig13": func() (interface{}, string) {
			r, t := exp.Figure13(scale)
			return r, t.Render()
		},
		"fig14": func() (interface{}, string) {
			r, t := exp.Figure14(getSuite())
			writeSVG("fig14", exp.Figure14SVG(r))
			return r, t.Render()
		},
		"oracle": func() (interface{}, string) {
			r, t := exp.OracleGap(getSuite())
			return r, t.Render()
		},
		"ext": func() (interface{}, string) {
			r, t := exp.Extensions(getSuite())
			return r, t.Render()
		},
		"ssd": func() (interface{}, string) {
			rows, t := exp.SSDSensitivity(getSuite())
			counts, t2 := exp.SSDCountSweep(getSuite())
			writeSVG("ssd", exp.SSDSensitivitySVG(rows))
			text := t.Render() + "\n" + exp.SSDScalingChart(rows) + "\n" + t2.Render()
			return map[string]interface{}{"generations": rows, "drives": counts}, text
		},
		"predictors": func() (interface{}, string) {
			r, t := exp.PredictorAblation(getSuite())
			return r, t.Render()
		},
		"warmup": func() (interface{}, string) {
			r, t := exp.RegressionWarmup(getSuite())
			return r, t.Render()
		},
		"util": func() (interface{}, string) {
			r, t := exp.Utilization(getSuite())
			return r, t.Render()
		},
	}
	order := []string{"table1", "table2", "fig4", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "oracle", "ext", "ssd",
		"predictors", "warmup", "util"}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	execute := func(name string, fn func() (interface{}, string)) {
		start := time.Now()
		rows, text := fn()
		if *jsonOut {
			if err := enc.Encode(map[string]interface{}{
				"experiment": name,
				"rows":       rows,
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(text)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	for _, name := range experiments {
		if name == "all" {
			for _, n := range order {
				execute(n, run[n])
			}
			continue
		}
		fn, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from %v or 'all'\n", name, order)
			os.Exit(2)
		}
		execute(name, fn)
	}
}
