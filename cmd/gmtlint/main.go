// Command gmtlint is the determinism & invariant lint suite for the GMT
// simulator: a multichecker enforcing the contract that makes seeded
// runs bit-identical (see HACKING.md, "Determinism rules").
//
// Usage:
//
//	gmtlint [package pattern ...]
//
// Patterns are ./...-style module-relative patterns (default ./...).
// Exit status: 0 clean, 1 findings, 2 load/usage errors.
//
// Analyzers and their scopes:
//
//	norealtime    everything except cmd/ (CLIs may report wall time)
//	noglobalrand  every package
//	maporder      every package
//	nogoroutine   the single-goroutine simulator packages
//	hotclosure    the per-access simulator packages (closure-based
//	              Engine.At/After allocates; use AtCall/AfterCall)
//
// Suppress an individual false positive with a trailing or
// preceding-line comment carrying a mandatory reason:
//
//	//lint:ignore maporder counters are order-independent
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/gmtsim/gmt/internal/buildinfo"
	"github.com/gmtsim/gmt/internal/lint"
)

// simPackages are the single-goroutine packages where nogoroutine
// applies: every component in them runs inside engine callbacks.
var simPackages = map[string]bool{
	"internal/sim":  true,
	"internal/core": true,
	"internal/tier": true,
	"internal/nvme": true,
	"internal/pcie": true,
	"internal/gpu":  true,
	"internal/xfer": true,
}

// hotPackages are the per-access simulator packages where hotclosure
// applies: event scheduling there sits on the hot path, so the typed
// AtCall/AfterCall variants are mandatory (cold exceptions carry a
// //lint:ignore hotclosure reason). internal/sim itself is exempt — it
// defines the closure API and its tests exercise it.
var hotPackages = map[string]bool{
	"internal/core": true,
	"internal/gpu":  true,
	"internal/tier": true,
	"internal/nvme": true,
	"internal/pcie": true,
	"internal/xfer": true,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 1 && (patterns[0] == "-version" || patterns[0] == "--version") {
		fmt.Println("gmtlint", buildinfo.Version())
		return
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fail(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fail(err)
	}
	var selected []*lint.Package
	loadErrors := false
	for _, p := range pkgs {
		if !matchesAny(patterns, loader.Module, p.Path) {
			continue
		}
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "gmtlint: %s: type error: %v\n", p.Path, terr)
			loadErrors = true
		}
		selected = append(selected, p)
	}
	if loadErrors {
		os.Exit(2)
	}
	scope := func(a *lint.Analyzer, pkgPath string) bool {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, loader.Module), "/")
		switch a.Name {
		case "nogoroutine":
			return simPackages[rel]
		case "hotclosure":
			return hotPackages[rel]
		case "norealtime":
			return !strings.HasPrefix(rel, "cmd/")
		default:
			return true
		}
	}
	findings, err := lint.Run(loader.Fset(), selected, lint.All(), scope)
	if err != nil {
		fail(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gmtlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// matchesAny reports whether the import path matches one of the
// ./...-style module-relative patterns.
func matchesAny(patterns []string, module, pkgPath string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, module), "/")
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == rel {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		}
	}
	return false
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("gmtlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
