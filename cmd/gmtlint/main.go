// Command gmtlint is the determinism & invariant lint suite for the GMT
// simulator: a multichecker enforcing the contract that makes seeded
// runs bit-identical (see HACKING.md, "Determinism rules").
//
// Usage:
//
//	gmtlint [flags] [package pattern ...]
//
// Patterns are ./...-style module-relative patterns (default ./...).
// Exit status: 0 clean (or every finding baselined), 1 new findings,
// 2 load/usage errors.
//
// Flags:
//
//	-json           machine-readable output (gmtlint/v1)
//	-explain        print each finding's root→violation call chain
//	-baseline FILE  baseline file (default lint.baseline.json at the
//	                module root, when present); baselined findings are
//	                reported but do not fail the run
//	-writebaseline  rewrite the baseline file with the current findings
//	-factcache DIR  cache per-package phase-1 facts keyed by source hash
//	-version        print version and exit
//
// The analysis is two-phase: per-package analyzers (norealtime,
// noglobalrand, maporder, nogoroutine, hotclosure) run package by
// package, then the whole-program analyzers (detflow, ctxflow,
// hotalloc) propagate facts over the cross-package call graph, so a
// time.Now buried three packages away from an engine callback is still
// caught — and reported with the full call chain.
//
// Suppress an individual false positive with a trailing or
// preceding-line comment naming a known analyzer and carrying a
// mandatory reason:
//
//	//lint:ignore maporder counters are order-independent
//
// Malformed directives and directives that suppress nothing are
// themselves reported (badignore, unusedignore).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/gmtsim/gmt/internal/buildinfo"
	"github.com/gmtsim/gmt/internal/lint"
)

const (
	outputVersion   = "gmtlint/v1"
	baselineVersion = "gmtlint-baseline/v1"
	defaultBaseline = "lint.baseline.json"
)

type jsonFinding struct {
	Analyzer  string           `json:"analyzer"`
	File      string           `json:"file"`
	Line      int              `json:"line"`
	Col       int              `json:"col"`
	Message   string           `json:"message"`
	Chain     []lint.ChainStep `json:"chain,omitempty"`
	Baselined bool             `json:"baselined,omitempty"`
}

type jsonOutput struct {
	Version  string        `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

type baselineFile struct {
	Version string `json:"version"`
	// Findings are stable keys "analyzer|file|message" (no line numbers,
	// so unrelated edits above a grandfathered finding don't churn it).
	Findings []string `json:"findings"`
}

func main() {
	var (
		jsonOut       = flag.Bool("json", false, "machine-readable JSON output")
		explain       = flag.Bool("explain", false, "print root→violation call chains")
		baselinePath  = flag.String("baseline", "", "baseline file (default lint.baseline.json at module root, when present)")
		writeBaseline = flag.Bool("writebaseline", false, "rewrite the baseline file with the current findings")
		factCache     = flag.String("factcache", "", "directory for cached per-package facts")
		version       = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("gmtlint", buildinfo.Version())
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fail(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fail(err)
	}
	var selected []*lint.Package
	loadErrors := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "gmtlint: %s: type error: %v\n", p.Path, terr)
			loadErrors = true
		}
		if matchesAny(patterns, loader.Module, p.Path) {
			selected = append(selected, p)
		}
	}
	if loadErrors {
		os.Exit(2)
	}

	// Phase 1 runs over the whole module regardless of the selected
	// patterns: cross-package propagation needs the full call graph.
	// Findings are filtered back to the selected packages.
	program := buildProgram(loader, pkgs, *factCache)

	findings, err := lint.RunAll(loader.Fset(), selected, lint.RunConfig{
		Analyzers:        lint.All(),
		ProgramAnalyzers: lint.AllProgram(),
		Program:          program,
		Scope:            lint.DefaultScope(loader.Module),
		DetRoot:          lint.DefaultDetRoot(loader.Module),
		ServeRoot:        lint.DefaultServeRoot(loader.Module),
		Hygiene:          true,
	})
	if err != nil {
		fail(err)
	}

	blPath := *baselinePath
	if blPath == "" {
		if p := filepath.Join(root, defaultBaseline); fileExists(p) {
			blPath = p
		}
	}
	if *writeBaseline {
		if blPath == "" {
			blPath = filepath.Join(root, defaultBaseline)
		}
		if err := saveBaseline(blPath, root, findings); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "gmtlint: wrote %d finding(s) to %s\n", len(findings), blPath)
		return
	}
	baselined := make(map[string]bool)
	if blPath != "" {
		bl, err := loadBaseline(blPath)
		if err != nil {
			fail(err)
		}
		for _, key := range bl.Findings {
			baselined[key] = true
		}
	}

	newCount := 0
	out := jsonOutput{Version: outputVersion}
	for _, f := range findings {
		rel := relPath(root, f.Position.Filename)
		isOld := baselined[baselineKey(f.Analyzer, rel, f.Message)]
		if !isOld {
			newCount++
		}
		if *jsonOut {
			out.Findings = append(out.Findings, jsonFinding{
				Analyzer:  f.Analyzer,
				File:      rel,
				Line:      f.Position.Line,
				Col:       f.Position.Column,
				Message:   f.Message,
				Chain:     f.Chain,
				Baselined: isOld,
			})
			continue
		}
		suffix := ""
		if isOld {
			suffix = " (baselined)"
		}
		fmt.Printf("%s:%d:%d: [%s] %s%s\n", rel, f.Position.Line, f.Position.Column, f.Analyzer, f.Message, suffix)
		if *explain {
			for _, step := range f.Chain {
				fmt.Printf("\t%s\n\t\t%s:%d\n", step.Name, relPath(root, step.File), step.Line)
			}
		}
	}
	if *jsonOut {
		if out.Findings == nil {
			out.Findings = []jsonFinding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	}
	if newCount > 0 {
		fmt.Fprintf(os.Stderr, "gmtlint: %d new finding(s), %d baselined\n", newCount, len(findings)-newCount)
		os.Exit(1)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "gmtlint: %d baselined finding(s), none new\n", n)
	}
}

// buildProgram collects (or loads cached) phase-1 facts for every
// package and assembles the whole-program index.
func buildProgram(loader *lint.Loader, pkgs []*lint.Package, cacheDir string) *lint.Program {
	module := loader.Module
	coll := &lint.Collector{
		Fset: loader.Fset(),
		Within: func(path string) bool {
			return path == module || strings.HasPrefix(path, module+"/")
		},
	}
	var all []*lint.PackageFacts
	for _, pkg := range pkgs {
		all = append(all, packageFacts(coll, pkg, cacheDir))
	}
	return lint.BuildProgram(all)
}

func packageFacts(coll *lint.Collector, pkg *lint.Package, cacheDir string) *lint.PackageFacts {
	if cacheDir == "" {
		return coll.Package(pkg)
	}
	sources := make(map[string][]byte)
	for _, f := range pkg.Files {
		name := coll.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			return coll.Package(pkg) // cannot fingerprint: skip the cache
		}
		sources[name] = data
	}
	fp := lint.FactsFingerprint(sources)
	cachePath := filepath.Join(cacheDir, strings.ReplaceAll(pkg.Path, "/", "_")+"-"+fp+".json")
	if data, err := os.ReadFile(cachePath); err == nil {
		if pf, err := lint.DecodeFacts(data); err == nil && pf.Path == pkg.Path {
			return pf
		}
	}
	pf := coll.Package(pkg)
	if data, err := pf.Encode(); err == nil {
		if err := os.MkdirAll(cacheDir, 0o755); err == nil {
			_ = os.WriteFile(cachePath, data, 0o644)
		}
	}
	return pf
}

func baselineKey(analyzer, relFile, message string) string {
	return analyzer + "|" + relFile + "|" + message
}

func loadBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gmtlint: reading baseline: %w", err)
	}
	var bl baselineFile
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("gmtlint: parsing baseline %s: %w", path, err)
	}
	if bl.Version != baselineVersion {
		return nil, fmt.Errorf("gmtlint: baseline %s has version %q, want %q", path, bl.Version, baselineVersion)
	}
	return &bl, nil
}

func saveBaseline(path, root string, findings []lint.Finding) error {
	bl := baselineFile{Version: baselineVersion, Findings: []string{}}
	seen := make(map[string]bool)
	for _, f := range findings {
		key := baselineKey(f.Analyzer, relPath(root, f.Position.Filename), f.Message)
		if !seen[key] {
			seen[key] = true
			bl.Findings = append(bl.Findings, key)
		}
	}
	data, err := json.MarshalIndent(&bl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// matchesAny reports whether the import path matches one of the
// ./...-style module-relative patterns.
func matchesAny(patterns []string, module, pkgPath string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, module), "/")
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == rel {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		}
	}
	return false
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("gmtlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
