// Command gmtfleet simulates a fleet of GPU tiering nodes serving one
// shared open-loop request stream: N nodes instantiated from weighted
// hardware templates, a deterministic router partitioning the stream,
// and fleet-wide hit rates, throughput, and exact latency percentiles
// folded from the per-node runs. Output is byte-identical at any
// -parallel N.
//
// Usage:
//
//	gmtfleet [flags]
//
// Flags:
//
//	-nodes N       fleet size (default 16)
//	-templates S   weighted template mix, e.g. "a100:3,h100:1"
//	-router NAME   hash | wrr (default hash)
//	-requests N    total requests (default 24 per node)
//	-rate R        base arrival rate in req/s (default 8 per node)
//	-seed N        node runtime seed offset
//	-t2policy P    Tier-2 replacement policy: clock|fifo|lru-2|2q
//	-parallel N    worker goroutines simulating nodes (default GOMAXPROCS)
//	-json          emit the canonical JSON result instead of tables
//	-svg DIR       write the fleet-scaling figure into DIR
//	-scaling LIST  sweep fleet sizes (e.g. "4,8,16,32") under the
//	               -nodes stream held fixed, instead of one run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/gmtsim/gmt/internal/buildinfo"
	"github.com/gmtsim/gmt/internal/fleet"
)

func main() {
	nodes := flag.Int("nodes", 16, "fleet size")
	templatesFlag := flag.String("templates", "a100:3,h100:1", "weighted template mix")
	router := flag.String("router", "hash", "request router: hash|wrr")
	requests := flag.Int("requests", 0, "total requests (0 = 24 per node)")
	rate := flag.Float64("rate", 0, "base arrival rate req/s (0 = 8 per node)")
	seed := flag.Int64("seed", 1, "node runtime seed offset")
	t2policy := flag.String("t2policy", "", "Tier-2 replacement policy: clock|fifo|lru-2|2q")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines simulating nodes (1 = fully sequential)")
	jsonOut := flag.Bool("json", false, "emit canonical JSON instead of tables")
	svgDir := flag.String("svg", "", "directory to write the fleet-scaling SVG into")
	scaling := flag.String("scaling", "", "comma-separated fleet sizes to sweep (e.g. 4,8,16,32)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("gmtfleet", buildinfo.Version())
		return
	}

	cfg, err := fleet.FromOptions(fleet.Options{
		Nodes:       *nodes,
		Templates:   *templatesFlag,
		Router:      *router,
		Requests:    *requests,
		Rate:        *rate,
		Seed:        *seed,
		Tier2Policy: *t2policy,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Wall clock is cmd/-only (norealtime); it feeds pool telemetry,
	// never the simulation or the canonical output.
	start := time.Now()
	clock := func() int64 { return int64(time.Since(start)) }
	ctx := context.Background()

	if *scaling != "" {
		sizes, err := parseSizes(*scaling)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		points, err := fleet.ScalingSweep(ctx, cfg, sizes, *parallel, clock)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(fleet.ScalingTable(points).Render())
		if *svgDir != "" {
			writeSVG(*svgDir, "fleet_scaling", fleet.ScalingSVG(points).SVG())
		}
		return
	}

	res, pool, err := fleet.Run(ctx, cfg, *parallel, clock)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := fleet.EncodeResult(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(fleet.Render(res))
	fmt.Printf("\nsimulated %d nodes on %d workers [%v]\n",
		res.Nodes, pool.Workers, time.Duration(pool.BusyNS).Round(time.Millisecond))
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("empty -scaling list")
	}
	return sizes, nil
}

func writeSVG(dir, name, svg string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	path := filepath.Join(dir, name+".svg")
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
