package plot

import (
	"encoding/xml"
	"io"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func sample() *Figure {
	f := NewFigure("Speedup over BaM", "Application", "Speedup (x)")
	f.Labels = []string{"Srad", "Hotspot"}
	f.Add("GMT-TierOrder", []float64{1.03, 0.99})
	f.Add("GMT-Reuse", []float64{1.75, 1.85})
	f.Baseline = 1.0
	return f
}

func TestSVGWellFormed(t *testing.T) {
	out := sample().SVG()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, out)
		}
	}
}

func TestSVGContents(t *testing.T) {
	out := sample().SVG()
	for _, want := range []string{
		"Speedup over BaM", "Srad", "Hotspot", "GMT-Reuse",
		"stroke-dasharray", // baseline
		"<rect",            // bars
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

var rectRe = regexp.MustCompile(`<rect class="bar" x="[0-9.]+" y="[0-9.]+" width="[0-9.]+" height="([0-9.]+)" fill="#`)

func TestSVGBarsProportional(t *testing.T) {
	f := NewFigure("t", "x", "y")
	f.Labels = []string{"a", "b"}
	f.Add("s", []float64{1, 2})
	out := f.SVG()
	var heights []float64
	for _, m := range rectRe.FindAllStringSubmatch(out, -1) {
		h, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		heights = append(heights, h)
	}
	if len(heights) != 2 {
		t.Fatalf("bars = %d, want 2:\n%s", len(heights), out)
	}
	if ratio := heights[1] / heights[0]; ratio < 1.95 || ratio > 2.05 {
		t.Fatalf("bar ratio = %.2f, want 2", ratio)
	}
}

func TestLineChart(t *testing.T) {
	f := NewFigure("trend", "skew", "GB/s")
	f.Labels = []string{"0", "0.5", "1"}
	f.Line = true
	f.Add("zc", []float64{10, 7, 3})
	out := f.SVG()
	if !strings.Contains(out, "<polyline") || !strings.Contains(out, "<circle") {
		t.Fatalf("line chart missing marks:\n%s", out)
	}
}

func TestEmptyFigure(t *testing.T) {
	f := NewFigure("empty", "", "")
	out := f.SVG()
	if !strings.Contains(out, "</svg>") {
		t.Fatal("empty figure did not render")
	}
}

func TestEscape(t *testing.T) {
	f := NewFigure(`a<b & "c"`, "", "")
	out := f.SVG()
	if strings.Contains(out, `a<b`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp; &quot;c&quot;") {
		t.Fatalf("escaped title missing:\n%s", out)
	}
}

func TestZipfLegendColorsCycle(t *testing.T) {
	f := NewFigure("many", "", "")
	f.Labels = []string{"x"}
	for i := 0; i < 8; i++ {
		f.Add("s", []float64{1})
	}
	out := f.SVG()
	// 8 series cycle the 6-color palette without panicking.
	if strings.Count(out, palette[0]) < 2 {
		t.Fatal("palette did not cycle")
	}
}
