// Package plot renders experiment results as standalone SVG figures —
// the graphical counterpart of the stats package's text tables, so
// `gmtbench -svg` can emit actual figures for every reproduced chart.
// Pure stdlib: SVGs are assembled as XML text.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of y-values over shared x-labels.
type Series struct {
	Name   string
	Values []float64
}

// Figure is a grouped bar or line chart over categorical x-labels.
type Figure struct {
	Title  string
	YLabel string
	XLabel string
	Labels []string
	Series []Series
	// Line selects a line chart instead of grouped bars.
	Line bool
	// Baseline draws a horizontal reference (e.g. 1.0 for speedups);
	// NaN disables it.
	Baseline float64
}

// NewFigure returns a figure with no baseline.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel, Baseline: math.NaN()}
}

// Add appends a series; its values align with Labels.
func (f *Figure) Add(name string, values []float64) {
	f.Series = append(f.Series, Series{Name: name, Values: values})
}

// palette holds distinguishable fill colors for up to six series.
var palette = []string{"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c"}

const (
	width   = 840.0
	height  = 480.0
	marginL = 70.0
	marginR = 160.0
	marginT = 50.0
	marginB = 70.0
)

// SVG renders the figure.
func (f *Figure) SVG() string {
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	maxY := 0.0
	for _, s := range f.Series {
		for _, v := range s.Values {
			if v > maxY {
				maxY = v
			}
		}
	}
	if !math.IsNaN(f.Baseline) && f.Baseline > maxY {
		maxY = f.Baseline
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.1

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" font-family="sans-serif">`+"\n", width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%.0f" y="28" font-size="16" text-anchor="middle">%s</text>`+"\n",
		width/2, escape(f.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)

	// Y ticks and gridlines.
	for i := 0; i <= 5; i++ {
		v := maxY * float64(i) / 5
		y := marginT + plotH - plotH*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%.2f</text>`+"\n",
			marginL-6, y+4, v)
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-16, escape(f.XLabel))
	fmt.Fprintf(&b, `<text x="18" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 18 %.1f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(f.YLabel))

	// Baseline.
	if !math.IsNaN(f.Baseline) {
		y := marginT + plotH - plotH*f.Baseline/maxY
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-dasharray="5,4"/>`+"\n",
			marginL, y, marginL+plotW, y)
	}

	n := len(f.Labels)
	if n > 0 {
		slot := plotW / float64(n)
		// X labels.
		for i, l := range f.Labels {
			x := marginL + slot*(float64(i)+0.5)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end" transform="rotate(-30 %.1f %.1f)">%s</text>`+"\n",
				x, marginT+plotH+16, x, marginT+plotH+16, escape(l))
		}
		if f.Line {
			f.drawLines(&b, slot, plotH, maxY)
		} else {
			f.drawBars(&b, slot, plotH, maxY)
		}
	}

	// Legend.
	for si, s := range f.Series {
		y := marginT + 14 + float64(si)*18
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s"/>`+"\n",
			width-marginR+12, y-10, color(si))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12">%s</text>`+"\n",
			width-marginR+30, y, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func (f *Figure) drawBars(b *strings.Builder, slot, plotH, maxY float64) {
	groups := float64(len(f.Series))
	barW := slot * 0.8 / groups
	for si, s := range f.Series {
		for i, v := range s.Values {
			if i >= len(f.Labels) || v <= 0 {
				continue
			}
			h := plotH * v / maxY
			x := marginL + slot*float64(i) + slot*0.1 + barW*float64(si)
			y := marginT + plotH - h
			fmt.Fprintf(b, `<rect class="bar" x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW, h, color(si))
		}
	}
}

func (f *Figure) drawLines(b *strings.Builder, slot, plotH, maxY float64) {
	for si, s := range f.Series {
		var pts []string
		for i, v := range s.Values {
			if i >= len(f.Labels) {
				break
			}
			x := marginL + slot*(float64(i)+0.5)
			y := marginT + plotH - plotH*v/maxY
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color(si))
		for _, p := range pts {
			var x, y float64
			fmt.Sscanf(p, "%f,%f", &x, &y)
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, color(si))
		}
	}
}

func color(i int) string { return palette[i%len(palette)] }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
