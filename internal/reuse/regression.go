package reuse

import "github.com/gmtsim/gmt/internal/tier"

// OLS is an incremental ordinary-least-squares fit of y = m*x + b. The
// host-side sampling thread feeds it (VTD, reuse distance) pairs and the
// GPU reads back coefficients to project RRD = m*RVTD + b (Eq. 2/3).
type OLS struct {
	n, sx, sy, sxx, sxy float64
}

// Add incorporates one sample.
func (o *OLS) Add(x, y float64) {
	o.n++
	o.sx += x
	o.sy += y
	o.sxx += x * x
	o.sxy += x * y
}

// Len reports the sample count.
func (o *OLS) Len() int { return int(o.n) }

// Coefficients reports the current fit. ok is false while the fit is
// degenerate (fewer than two samples, or no variance in x), in which case
// callers should fall back to the identity RRD = RVTD — a safe
// overestimate, since VTD counts non-unique accesses and therefore always
// bounds the reuse distance from above.
func (o *OLS) Coefficients() (m, b float64, ok bool) {
	if o.n < 2 {
		return 1, 0, false
	}
	den := o.n*o.sxx - o.sx*o.sx
	if den <= 1e-9 && den >= -1e-9 {
		return 1, 0, false
	}
	m = (o.n*o.sxy - o.sx*o.sy) / den
	b = (o.sy - m*o.sx) / o.n
	return m, b, true
}

// Coeffs is a published regression snapshot.
type Coeffs struct {
	M, B  float64
	Valid bool
}

// Estimate projects a reuse distance from a VTD. Invalid coefficients
// fall back to the identity.
func (c Coeffs) Estimate(vtd int64) int64 {
	if !c.Valid {
		return vtd
	}
	rrd := c.M*float64(vtd) + c.B
	if rrd < 0 {
		return 0
	}
	return int64(rrd)
}

// Sampler models the GPU→CPU sampling pipeline of §2.1.3: during the
// early part of execution the GPU pushes each coalesced access into a
// queue; a dedicated host thread computes true reuse distances with the
// tree method, accumulates (VTD, RD) pairs, and republishes refined
// regression coefficients after every batch (default every 10 000
// samples) rather than waiting for the full sample target.
type Sampler struct {
	tracker   *DistanceTracker
	ols       OLS
	target    int
	batch     int
	pairs     int
	pending   int
	coeffs    Coeffs
	batches   int
	pipelined bool
}

// NewSampler returns a sampler that stops observing after target sample
// pairs and republishes coefficients every batch pairs.
func NewSampler(target, batch int) *Sampler {
	if batch < 1 {
		batch = 10_000
	}
	return &Sampler{tracker: NewDistanceTracker(), target: target, batch: batch, pipelined: true}
}

// SetPipelined controls whether coefficients are republished per batch
// (the paper's choice) or only once the full sample target is reached
// (the "wait until the end of sampling" strawman of §2.1.3).
func (s *Sampler) SetPipelined(p bool) { s.pipelined = p }

// Done reports whether the sample target has been reached.
func (s *Sampler) Done() bool { return s.pairs >= s.target }

// Observe feeds one access. It is a no-op once the target is reached, so
// the runtime can call it unconditionally on the hot path.
func (s *Sampler) Observe(p tier.PageID) {
	if s.Done() {
		return
	}
	vtd, rd, ok := s.tracker.Observe(p)
	if !ok {
		return
	}
	s.ols.Add(float64(vtd), float64(rd))
	s.pairs++
	s.pending++
	if (s.pipelined && s.pending >= s.batch) || s.Done() {
		s.publish()
	}
}

func (s *Sampler) publish() {
	m, b, ok := s.ols.Coefficients()
	s.coeffs = Coeffs{M: m, B: b, Valid: ok}
	s.pending = 0
	s.batches++
}

// Clone returns a deep copy of the sampler mid-stream: a forked runtime
// continues observing exactly where the parent's prefix left off, with
// its own tracker and accumulator state.
func (s *Sampler) Clone() *Sampler {
	ns := *s
	ns.tracker = s.tracker.Clone()
	return &ns
}

// Coeffs reports the most recently published regression.
func (s *Sampler) Coeffs() Coeffs { return s.coeffs }

// Pairs reports the number of (VTD, RD) pairs collected.
func (s *Sampler) Pairs() int { return s.pairs }

// Batches reports how many coefficient publications have happened.
func (s *Sampler) Batches() int { return s.batches }
