package reuse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gmtsim/gmt/internal/tier"
)

func TestFenwickAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var bit fenwick
		naive := make([]int64, 200)
		for op := 0; op < 300; op++ {
			i := rng.Intn(200)
			d := int64(rng.Intn(5) - 2)
			bit.Add(i, d)
			naive[i] += d
		}
		for q := 0; q < 50; q++ {
			lo, hi := rng.Intn(200), rng.Intn(200)
			if lo > hi {
				lo, hi = hi, lo
			}
			var want int64
			for i := lo; i <= hi; i++ {
				want += naive[i]
			}
			if bit.RangeSum(lo, hi) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// naiveDistances computes VTD and RD for each access by brute force.
func naiveDistances(trace []tier.PageID) (vtds, rds []int64, oks []bool) {
	for i, p := range trace {
		last := -1
		for j := i - 1; j >= 0; j-- {
			if trace[j] == p {
				last = j
				break
			}
		}
		if last < 0 {
			vtds, rds, oks = append(vtds, 0), append(rds, 0), append(oks, false)
			continue
		}
		distinct := map[tier.PageID]struct{}{}
		for j := last + 1; j < i; j++ {
			distinct[trace[j]] = struct{}{}
		}
		vtds = append(vtds, int64(i-last))
		rds = append(rds, int64(len(distinct)))
		oks = append(oks, true)
	}
	return vtds, rds, oks
}

func TestDistanceTrackerMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]tier.PageID, 300)
		for i := range trace {
			trace[i] = tier.PageID(rng.Intn(30))
		}
		wantV, wantR, wantOK := naiveDistances(trace)
		tr := NewDistanceTracker()
		for i, p := range trace {
			v, r, ok := tr.Observe(p)
			if ok != wantOK[i] {
				return false
			}
			if ok && (v != wantV[i] || r != wantR[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDistanceTrackerSimple(t *testing.T) {
	tr := NewDistanceTracker()
	// Trace: A B C A — reuse of A: VTD 3, RD 2 (B and C).
	for _, p := range []tier.PageID{0, 1, 2} {
		if _, _, ok := tr.Observe(p); ok {
			t.Fatal("first access reported a distance")
		}
	}
	v, r, ok := tr.Observe(0)
	if !ok || v != 3 || r != 2 {
		t.Fatalf("A B C A: vtd=%d rd=%d ok=%v, want 3,2,true", v, r, ok)
	}
	// A again immediately: VTD 1, RD 0.
	v, r, _ = tr.Observe(0)
	if v != 1 || r != 0 {
		t.Fatalf("A A: vtd=%d rd=%d, want 1,0", v, r)
	}
}

func TestDistinctInRangesMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]tier.PageID, 200)
		for i := range trace {
			trace[i] = tier.PageID(rng.Intn(25))
		}
		var qs []RangeQuery
		for q := 0; q < 40; q++ {
			from, to := rng.Intn(200)-1, rng.Intn(200)
			if from > to {
				from, to = to, from
			}
			qs = append(qs, RangeQuery{From: from, To: to})
		}
		got := DistinctInRanges(trace, qs)
		for i, q := range qs {
			distinct := map[tier.PageID]struct{}{}
			for j := q.From + 1; j <= q.To; j++ {
				distinct[trace[j]] = struct{}{}
			}
			if got[i] != int64(len(distinct)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDistinctInRangesOutOfBounds(t *testing.T) {
	got := DistinctInRanges([]tier.PageID{1, 2}, []RangeQuery{{From: 0, To: 5}})
	if got[0] != -1 {
		t.Fatalf("out-of-bounds query = %d, want -1", got[0])
	}
}

func TestOLSExactLine(t *testing.T) {
	var o OLS
	// y = 0.5x + 3, exactly.
	for x := 1.0; x <= 100; x++ {
		o.Add(x, 0.5*x+3)
	}
	m, b, ok := o.Coefficients()
	if !ok {
		t.Fatal("fit reported degenerate")
	}
	if math.Abs(m-0.5) > 1e-9 || math.Abs(b-3) > 1e-9 {
		t.Fatalf("m=%g b=%g, want 0.5, 3", m, b)
	}
}

func TestOLSDegenerate(t *testing.T) {
	var o OLS
	if _, _, ok := o.Coefficients(); ok {
		t.Fatal("empty fit reported ok")
	}
	o.Add(5, 1)
	o.Add(5, 9) // no x variance
	if _, _, ok := o.Coefficients(); ok {
		t.Fatal("zero-variance fit reported ok")
	}
}

func TestCoeffsEstimate(t *testing.T) {
	c := Coeffs{M: 0.5, B: -10, Valid: true}
	if got := c.Estimate(100); got != 40 {
		t.Fatalf("estimate(100) = %d, want 40", got)
	}
	if got := c.Estimate(2); got != 0 {
		t.Fatalf("estimate clamped = %d, want 0", got)
	}
	// Invalid coefficients: identity fallback (VTD bounds RD above).
	inv := Coeffs{}
	if got := inv.Estimate(77); got != 77 {
		t.Fatalf("identity fallback = %d, want 77", got)
	}
}

func TestSamplerLearnsLinearRelation(t *testing.T) {
	// A pure cyclic sweep has constant VTD (no x variance), which must
	// be reported as a degenerate fit, not a bogus line.
	s := NewSampler(1000, 100)
	const n = 50
	for round := 0; round < 40; round++ {
		for p := 0; p < n; p++ {
			s.Observe(tier.PageID(p))
		}
	}
	if s.Coeffs().Valid {
		t.Fatal("constant-VTD workload produced a 'valid' fit")
	}
	// Interleaving two loop strides gives VTD variance; the fit must be
	// valid and respect the RD <= VTD bound.
	s2 := NewSampler(10_000, 1000)
	for round := 0; round < 100; round++ {
		for p := 0; p < n; p++ {
			s2.Observe(tier.PageID(p))
		}
		for p := 0; p < n/2; p++ {
			s2.Observe(tier.PageID(p))
		}
	}
	c2 := s2.Coeffs()
	if !c2.Valid {
		t.Fatal("mixed-stride sampler did not publish a valid fit")
	}
	// RD must never exceed VTD: slope at most ~1 with small offset.
	if c2.M > 1.05 {
		t.Fatalf("slope %g > 1: RD cannot exceed VTD", c2.M)
	}
	if got := c2.Estimate(1000); got > 1000 {
		t.Fatalf("estimate(1000) = %d exceeds VTD bound", got)
	}
}

func TestSamplerBatchingAndTarget(t *testing.T) {
	s := NewSampler(10, 4)
	for i := 0; i < 100; i++ {
		s.Observe(tier.PageID(i % 5)) // every access after the first 5 yields a pair
	}
	if !s.Done() {
		t.Fatal("sampler never reached target")
	}
	if s.Pairs() != 10 {
		t.Fatalf("pairs = %d, want exactly target 10", s.Pairs())
	}
	if s.Batches() < 2 {
		t.Fatalf("batches = %d, want >= 2 (pipelined publication)", s.Batches())
	}
}

func TestClassifierBoundaries(t *testing.T) {
	cl := Classifier{Tier1Pages: 100, Tier2Pages: 400}
	cases := []struct {
		rrd  int64
		want Class
	}{
		{0, Short}, {99, Short}, {100, Medium}, {499, Medium}, {500, Long}, {1 << 40, Long},
	}
	for _, c := range cases {
		if got := cl.Classify(c.rrd); got != c.want {
			t.Fatalf("Classify(%d) = %v, want %v", c.rrd, got, c.want)
		}
	}
}

func TestMarkovPersistentPattern(t *testing.T) {
	// MultiVectorAdd-like: every eviction of a page lands in the same
	// class (Fig. 4b).
	var m Markov
	for i := 0; i < 10; i++ {
		m.Update(Medium, Medium)
	}
	if got := m.Predict(Medium); got != Medium {
		t.Fatalf("persistent predict = %v, want Medium", got)
	}
}

func TestMarkovAlternatingPattern(t *testing.T) {
	// PageRank-like: classes alternate between evictions (Fig. 4c).
	var m Markov
	for i := 0; i < 10; i++ {
		m.Update(Medium, Long)
		m.Update(Long, Medium)
	}
	if m.Predict(Medium) != Long || m.Predict(Long) != Medium {
		t.Fatalf("alternating pattern not learned: w=%v", m.Weights())
	}
}

func TestMarkovTieBreaks(t *testing.T) {
	var m Markov
	// Untrained: predict self.
	if m.Predict(Short) != Short || m.Trained(Short) {
		t.Fatal("untrained state should predict self and report untrained")
	}
	// Equal non-self weights: prefer the longer distance.
	m.Update(Short, Medium)
	m.Update(Short, Long)
	if got := m.Predict(Short); got != Long {
		t.Fatalf("tie-break = %v, want Long", got)
	}
	// Self ties beat non-self.
	m.Update(Short, Short)
	m.Update(Short, Short)
	if got := m.Predict(Short); got != Short {
		t.Fatalf("self-tie = %v, want Short", got)
	}
}

func TestClassString(t *testing.T) {
	if Short.String() != "short-reuse" || Medium.String() != "medium-reuse" ||
		Long.String() != "long-reuse" || Class(9).String() != "unknown" {
		t.Fatal("class strings wrong")
	}
}
