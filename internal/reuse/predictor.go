package reuse

// Class is an RRD equivalence class (Eq. 1), naming the tier a page
// should be placed in upon Tier-1 eviction.
type Class uint8

// The three classes of Eq. 1.
const (
	Short  Class = iota // RRD < |Tier-1|: retain in GPU memory
	Medium              // |Tier-1| <= RRD < |Tier-1|+|Tier-2|: host memory
	Long                // otherwise: SSD (or discard if clean)
)

func (c Class) String() string {
	switch c {
	case Short:
		return "short-reuse"
	case Medium:
		return "medium-reuse"
	case Long:
		return "long-reuse"
	default:
		return "unknown"
	}
}

// Classifier maps an RRD (in pages) to its class. The boundaries follow
// Figure 7's demarcation: Tier-1 capacity, and Tier-1+Tier-2 capacity.
type Classifier struct {
	Tier1Pages int64
	Tier2Pages int64
}

// Classify applies Eq. 1.
func (cl Classifier) Classify(rrd int64) Class {
	switch {
	case rrd < cl.Tier1Pages:
		return Short
	case rrd < cl.Tier1Pages+cl.Tier2Pages:
		return Medium
	default:
		return Long
	}
}

// Markov is the 3-state Markov chain predictor of Figure 5. Each page
// carries its last "correct" class (2 bits, the "negligible space" of
// §2.1.3); the transition weights between the 2nd-last and last correct
// classes are accumulated globally. Prediction for a page in state s is
// the highest-weight transition out of s.
type Markov struct {
	w [3][3]int64
}

// Update records that a page whose previous correct class was prev turned
// out to have correct class cur on its latest eviction.
func (m *Markov) Update(prev, cur Class) { m.w[prev][cur]++ }

// Predict reports the most likely next class for a page whose last
// correct class is state. Ties prefer the self-transition (persistent
// behavior like MultiVectorAdd, Fig. 4b), then the longer distance
// (conservative: avoids polluting a nearer tier).
func (m *Markov) Predict(state Class) Class {
	row := m.w[state]
	best := state
	bestW := row[state]
	for c := Long; ; c-- {
		if c != state && row[c] > bestW {
			best, bestW = c, row[c]
		}
		if c == Short {
			break
		}
	}
	return best
}

// Trained reports whether any transition out of state has been observed;
// untrained states fall back to the runtime's default policy.
func (m *Markov) Trained(state Class) bool {
	row := m.w[state]
	return row[0]+row[1]+row[2] > 0
}

// Weights returns a copy of the transition matrix (for introspection and
// tests).
func (m *Markov) Weights() [3][3]int64 { return m.w }
