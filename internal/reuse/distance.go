// Package reuse implements GMT-Reuse's prediction machinery (paper
// §2.1.3): virtual-timestamp distances (VTD) as a cheap proxy for reuse
// distance, an exact reuse-distance tracker ("tree-based method") used by
// the host-side sampling thread, ordinary-least-squares regression
// mapping VTD→RD, the RRD equivalence-class classifier of Eq. 1, and the
// 3-state Markov history predictor of Figure 5.
package reuse

import "github.com/gmtsim/gmt/internal/tier"

// DistanceTracker computes, online, the exact reuse distance (number of
// distinct pages accessed since the previous access of the same page) and
// the VTD (number of accesses, unique or not, since the previous access).
//
// It is the model of the dedicated CPU thread that consumes GPU-pushed
// samples and converts VTDs into true reuse distances.
type DistanceTracker struct {
	// last holds the most recent access position per page, dense-indexed
	// by page ID per the bounded-page-ID contract (-1 = unseen); the rare
	// negative ID (e.g. a barrier marker fed by an offline analysis)
	// falls back to lastNeg.
	last    []int64
	lastNeg map[tier.PageID]int
	bit     fenwick
	pos     int
}

// NewDistanceTracker returns an empty tracker.
func NewDistanceTracker() *DistanceTracker {
	return &DistanceTracker{}
}

// Observe records an access to p and reports its VTD and reuse distance.
// ok is false on the first access to p (no previous access exists).
func (t *DistanceTracker) Observe(p tier.PageID) (vtd, rd int64, ok bool) {
	cur := t.pos
	t.pos++
	lp, seen := t.lookup(p)
	if seen {
		vtd = int64(cur - lp)
		// Distinct pages accessed strictly between the two accesses of
		// p: pages whose most recent access lies in (lp, cur).
		rd = t.bit.RangeSum(lp+1, cur-1)
		ok = true
		t.bit.Add(lp, -1)
	}
	t.bit.Add(cur, 1)
	t.store(p, cur)
	return vtd, rd, ok
}

// lookup reports p's most recent access position.
func (t *DistanceTracker) lookup(p tier.PageID) (int, bool) {
	if p < 0 {
		lp, seen := t.lastNeg[p]
		return lp, seen
	}
	if int64(p) >= int64(len(t.last)) {
		return 0, false
	}
	lp := t.last[p]
	return int(lp), lp >= 0
}

// store records p's access position.
func (t *DistanceTracker) store(p tier.PageID, cur int) {
	if p < 0 {
		if t.lastNeg == nil {
			t.lastNeg = make(map[tier.PageID]int)
		}
		t.lastNeg[p] = cur
		return
	}
	if int64(p) >= int64(len(t.last)) {
		t.grow(int(p))
	}
	t.last[p] = int64(cur)
}

// grow widens the dense position table to cover page ID p.
//
//gmt:coldpath
func (t *DistanceTracker) grow(p int) {
	n := 2 * len(t.last)
	if n < 64 {
		n = 64
	}
	if n <= p {
		n = p + 1
	}
	nv := make([]int64, n)
	copy(nv, t.last)
	for i := len(t.last); i < n; i++ {
		nv[i] = -1
	}
	t.last = nv
}

// Clone returns a deep copy of the tracker.
func (t *DistanceTracker) Clone() *DistanceTracker {
	nt := &DistanceTracker{
		last: append([]int64(nil), t.last...),
		pos:  t.pos,
	}
	if t.lastNeg != nil {
		nt.lastNeg = make(map[tier.PageID]int, len(t.lastNeg))
		for p, v := range t.lastNeg {
			nt.lastNeg[p] = v
		}
	}
	nt.bit = fenwick{
		tree: append([]int64(nil), t.bit.tree...),
		raw:  append([]int64(nil), t.bit.raw...),
	}
	return nt
}

// Accesses reports how many accesses have been observed.
func (t *DistanceTracker) Accesses() int { return t.pos }

// RangeQuery is a half-open distinct-count question over an access trace:
// how many distinct pages appear in positions (From, To]?
type RangeQuery struct {
	From, To int
}

// DistinctInRanges answers distinct-page counts for many (From, To]
// windows over trace in O((N+Q) log N). GMT's experiment drivers use it
// to compute actual Remaining Reuse Distances at Tier-1 eviction points
// (Figures 4b, 4c, and 7): the RRD of an eviction at position e whose
// page is next accessed at position n is the distinct count in (e, n].
func DistinctInRanges(trace []tier.PageID, queries []RangeQuery) []int64 {
	ans := make([]int64, len(queries))
	// Bucket queries by right endpoint.
	byRight := make(map[int][]int)
	for i, q := range queries {
		if q.To >= len(trace) || q.To < 0 {
			ans[i] = -1
			continue
		}
		byRight[q.To] = append(byRight[q.To], i)
	}
	var bit fenwick
	last := make(map[tier.PageID]int, len(trace)/4+1)
	for t, p := range trace {
		if lp, seen := last[p]; seen {
			bit.Add(lp, -1)
		}
		bit.Add(t, 1)
		last[p] = t
		for _, qi := range byRight[t] {
			q := queries[qi]
			ans[qi] = bit.RangeSum(q.From+1, q.To)
		}
	}
	return ans
}
