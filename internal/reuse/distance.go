// Package reuse implements GMT-Reuse's prediction machinery (paper
// §2.1.3): virtual-timestamp distances (VTD) as a cheap proxy for reuse
// distance, an exact reuse-distance tracker ("tree-based method") used by
// the host-side sampling thread, ordinary-least-squares regression
// mapping VTD→RD, the RRD equivalence-class classifier of Eq. 1, and the
// 3-state Markov history predictor of Figure 5.
package reuse

import "github.com/gmtsim/gmt/internal/tier"

// DistanceTracker computes, online, the exact reuse distance (number of
// distinct pages accessed since the previous access of the same page) and
// the VTD (number of accesses, unique or not, since the previous access).
//
// It is the model of the dedicated CPU thread that consumes GPU-pushed
// samples and converts VTDs into true reuse distances.
type DistanceTracker struct {
	last map[tier.PageID]int
	bit  fenwick
	pos  int
}

// NewDistanceTracker returns an empty tracker.
func NewDistanceTracker() *DistanceTracker {
	return &DistanceTracker{last: make(map[tier.PageID]int)}
}

// Observe records an access to p and reports its VTD and reuse distance.
// ok is false on the first access to p (no previous access exists).
func (t *DistanceTracker) Observe(p tier.PageID) (vtd, rd int64, ok bool) {
	cur := t.pos
	t.pos++
	if lp, seen := t.last[p]; seen {
		vtd = int64(cur - lp)
		// Distinct pages accessed strictly between the two accesses of
		// p: pages whose most recent access lies in (lp, cur).
		rd = t.bit.RangeSum(lp+1, cur-1)
		ok = true
		t.bit.Add(lp, -1)
	}
	t.bit.Add(cur, 1)
	t.last[p] = cur
	return vtd, rd, ok
}

// Accesses reports how many accesses have been observed.
func (t *DistanceTracker) Accesses() int { return t.pos }

// RangeQuery is a half-open distinct-count question over an access trace:
// how many distinct pages appear in positions (From, To]?
type RangeQuery struct {
	From, To int
}

// DistinctInRanges answers distinct-page counts for many (From, To]
// windows over trace in O((N+Q) log N). GMT's experiment drivers use it
// to compute actual Remaining Reuse Distances at Tier-1 eviction points
// (Figures 4b, 4c, and 7): the RRD of an eviction at position e whose
// page is next accessed at position n is the distinct count in (e, n].
func DistinctInRanges(trace []tier.PageID, queries []RangeQuery) []int64 {
	ans := make([]int64, len(queries))
	// Bucket queries by right endpoint.
	byRight := make(map[int][]int)
	for i, q := range queries {
		if q.To >= len(trace) || q.To < 0 {
			ans[i] = -1
			continue
		}
		byRight[q.To] = append(byRight[q.To], i)
	}
	var bit fenwick
	last := make(map[tier.PageID]int, len(trace)/4+1)
	for t, p := range trace {
		if lp, seen := last[p]; seen {
			bit.Add(lp, -1)
		}
		bit.Add(t, 1)
		last[p] = t
		for _, qi := range byRight[t] {
			q := queries[qi]
			ans[qi] = bit.RangeSum(q.From+1, q.To)
		}
	}
	return ans
}
