package reuse

// fenwick is a dynamically-growing binary indexed tree over access
// positions, the "tree-based method" (paper §2.1.3, refs [13,17]) used to
// compute exact reuse distances from an access stream. Growth doubles
// capacity and rebuilds in O(n), amortizing to O(log n) per operation.
type fenwick struct {
	tree []int64 // 1-based BIT over raw
	raw  []int64
}

func (f *fenwick) grow(n int) {
	if n <= len(f.raw) {
		return
	}
	capa := len(f.raw)
	if capa == 0 {
		capa = 64
	}
	for capa < n {
		capa *= 2
	}
	raw := make([]int64, capa)
	copy(raw, f.raw)
	f.raw = raw
	// O(n) rebuild: seed leaves, then push partial sums to parents.
	f.tree = make([]int64, capa+1)
	for i, v := range f.raw {
		f.tree[i+1] += v
		if p := (i + 1) + ((i + 1) & -(i + 1)); p <= capa {
			f.tree[p] += f.tree[i+1]
		}
	}
}

// Add adds delta at position i (0-based).
func (f *fenwick) Add(i int, delta int64) {
	f.grow(i + 1)
	f.raw[i] += delta
	for j := i + 1; j < len(f.tree); j += j & (-j) {
		f.tree[j] += delta
	}
}

// PrefixSum reports the sum of positions [0, i].
func (f *fenwick) PrefixSum(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= len(f.raw) {
		i = len(f.raw) - 1
	}
	var s int64
	for j := i + 1; j > 0; j -= j & (-j) {
		s += f.tree[j]
	}
	return s
}

// RangeSum reports the sum of positions [lo, hi].
func (f *fenwick) RangeSum(lo, hi int) int64 {
	if hi < lo {
		return 0
	}
	return f.PrefixSum(hi) - f.PrefixSum(lo-1)
}
