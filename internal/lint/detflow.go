package lint

import "fmt"

// DetFlow is the transitive-determinism analyzer: phase-2 taint
// propagation over the whole-program call graph. Its roots are every
// function in the simulator packages (plus //gmt:detroot-marked
// functions); anything they can reach — across package boundaries,
// through function values, through interface methods — must be free of
// wall-clock reads, global-rand draws, goroutine spawns, and channel
// operations.
//
// Sites inside the root functions themselves are left to the
// per-package analyzers (norealtime, noglobalrand, nogoroutine);
// detflow reports only what those provably cannot see: taint one or
// more call hops away, with the full root→violation chain.
var DetFlow = &ProgramAnalyzer{
	Name: "detflow",
	Doc: "reports wall-clock, global-rand, goroutine, and channel use " +
		"transitively reachable from deterministic simulation roots, " +
		"with the offending call chain",
	Run: runDetFlow,
}

func runDetFlow(pass *ProgramPass) error {
	p := pass.Program
	var roots []FuncID
	for _, id := range p.SortedIDs() {
		f := p.Funcs[id]
		if f.Flags&FactDetRoot != 0 || (pass.DetRoot != nil && pass.DetRoot(f.Pkg)) {
			roots = append(roots, id)
		}
	}
	reach := p.Reach(roots, nil)
	for _, id := range p.SortedIDs() {
		entry, ok := reach[id]
		if !ok || entry.Depth == 0 {
			continue
		}
		f := p.Funcs[id]
		chain := p.Chain(reach, id)
		for _, site := range f.Sites {
			if site.Fact&taintFacts == 0 {
				continue
			}
			pass.Report(ProgramDiagnostic{
				Pos: site.Pos,
				Message: fmt.Sprintf("%s is reachable from deterministic simulation code; call path: %s",
					site.Msg, FormatChain(chain)),
				Chain: chain,
			})
		}
	}
	return nil
}
