package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoGoroutine forbids concurrency primitives inside the simulator's
// single-goroutine packages. The engine's contract is that every
// component runs inside event callbacks on one goroutine; a go statement
// or channel operation reintroduces scheduler nondeterminism that no
// seed can reproduce.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "forbid go statements and channel operations in simulator packages; " +
		"all concurrency is modeled in virtual time via engine events",
	Run: runNoGoroutine,
}

func runNoGoroutine(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in simulator code; schedule an engine event instead")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in simulator code; use engine callbacks instead")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in simulator code; use engine callbacks instead")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in simulator code; use engine callbacks instead")
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel in simulator code; use engine callbacks instead")
					}
				}
			}
			return true
		})
	}
	return nil
}
