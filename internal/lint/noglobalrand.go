package lint

import (
	"fmt"
	"go/ast"
)

// globalRandExempt lists the math/rand package-level functions that do
// NOT draw from the shared global source: constructors for injectable,
// seeded streams.
var globalRandExempt = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// NoGlobalRand forbids math/rand's top-level convenience functions
// (rand.Intn, rand.Float64, rand.Shuffle, ...). They all draw from one
// process-global stream, so any consumer anywhere perturbs every other
// consumer's sequence and seed-reproducibility is lost. Components must
// carry an injected *rand.Rand seeded from their config instead.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc: "forbid math/rand global-stream functions; inject a seeded *rand.Rand " +
		"(rand.New(rand.NewSource(seed))) instead",
	Run: runNoGlobalRand,
}

func runNoGlobalRand(pass *Pass) error {
	// Ident-based matching, like norealtime: catches aliased imports,
	// dot-imports, and method-value references alongside plain
	// rand.Intn(...) calls.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn := pkgLevelFunc(pass.Info, id)
			if fn == nil || !globalRandPkg(fn.Pkg().Path()) || globalRandExempt[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), fmt.Sprintf(
				"rand.%s draws from the process-global stream and breaks seed-reproducibility; "+
					"inject a seeded *rand.Rand", fn.Name()))
			return true
		})
	}
	return nil
}

func globalRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}
