package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the import path; Dir the directory it was loaded from.
	Path string
	Dir  string

	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects type-checking problems. The loader keeps going
	// past them (an analyzer can still inspect the partial package), but
	// the driver treats any as fatal: analyzing a package that does not
	// compile produces unreliable findings.
	TypeErrors []error
}

// Loader loads and type-checks the packages of one module purely from
// source: module-internal imports resolve recursively against the module
// tree, and standard-library imports are type-checked from GOROOT source.
// No export data, module cache, or network is required — the loader works
// in the same environments the build does.
type Loader struct {
	// Root is the module root directory; Module its import path.
	Root   string
	Module string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at dir (the directory
// containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", dir)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    dir,
		Module:  mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Fset reports the shared file set positions resolve against.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadAll loads every package in the module, in import-path order.
// Directories named testdata and hidden/underscore directories are
// skipped, matching the go tool's package walk.
func (l *Loader) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		imp, err := l.importPathFor(path)
		if err != nil {
			return err
		}
		pkg, err := l.load(imp)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks the package at the given module-internal
// import path, memoized across calls.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.Root
	if path != l.Module {
		dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
	}
	// build.ImportDir applies the default build constraints, so the
	// analyzed file set matches what `go build` (untagged) compiles.
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info) // errors collected above
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths load from
// source; everything else (the standard library) defers to the GOROOT
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: no type information for %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
