package lint

import (
	"go/token"
	"reflect"
	"testing"
)

func pos(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// TestSortAndDedupe pins the output contract: findings come out in
// file/line/column/analyzer/message order with exact duplicates (same
// violation surfaced through multiple load paths) collapsed.
func TestSortAndDedupe(t *testing.T) {
	in := []Finding{
		{Analyzer: "norealtime", Position: pos("b.go", 3, 1), Message: "m1"},
		{Analyzer: "detflow", Position: pos("a.go", 9, 2), Message: "m2"},
		{Analyzer: "detflow", Position: pos("a.go", 9, 2), Message: "m2"}, // dup
		{Analyzer: "noglobalrand", Position: pos("a.go", 9, 2), Message: "m3"},
		{Analyzer: "detflow", Position: pos("a.go", 2, 7), Message: "m4"},
		{Analyzer: "detflow", Position: pos("a.go", 9, 2), Message: "m5"}, // same pos+analyzer, new msg
	}
	sortFindings(in)
	got := dedupe(in)
	want := []Finding{
		{Analyzer: "detflow", Position: pos("a.go", 2, 7), Message: "m4"},
		{Analyzer: "detflow", Position: pos("a.go", 9, 2), Message: "m2"},
		{Analyzer: "detflow", Position: pos("a.go", 9, 2), Message: "m5"},
		{Analyzer: "noglobalrand", Position: pos("a.go", 9, 2), Message: "m3"},
		{Analyzer: "norealtime", Position: pos("b.go", 3, 1), Message: "m1"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sort+dedupe mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestKnownAnalyzerNames(t *testing.T) {
	names := KnownAnalyzerNames()
	for _, n := range []string{"norealtime", "noglobalrand", "maporder", "nogoroutine",
		"hotclosure", "detflow", "ctxflow", "hotalloc", BadIgnoreName, UnusedIgnoreName} {
		if !names[n] {
			t.Errorf("KnownAnalyzerNames missing %q", n)
		}
	}
}
