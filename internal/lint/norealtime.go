package lint

import (
	"fmt"
	"go/ast"
)

// wallClockFuncs are the package time functions that read or wait on the
// wall clock. Pure conversions and constants (time.Duration,
// time.Millisecond, ...) remain allowed: they carry no real-time
// dependence.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Sleep":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoRealTime forbids wall-clock time in simulation code. Simulated
// components must advance only the engine's virtual clock (sim.Time via
// Engine.Now/After/At); a single time.Now leaks host timing into a run
// and breaks seed-reproducibility.
var NoRealTime = &Analyzer{
	Name: "norealtime",
	Doc: "forbid time.Now/time.Since/time.Sleep and friends in simulation code; " +
		"use the engine's virtual clock (sim.Time) instead",
	Run: runNoRealTime,
}

func runNoRealTime(pass *Pass) error {
	// Ident-based matching: every use of a package time function is an
	// *ast.Ident resolved through Info.Uses, whether it is spelled
	// time.Now, t.Now (aliased import), Now (dot-import), or referenced
	// as a method value (f := time.Now).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn := pkgLevelFunc(pass.Info, id)
			if fn == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), fmt.Sprintf(
				"wall-clock call time.%s in simulation code; use the virtual clock (sim.Time, Engine.Now/After/At)",
				fn.Name()))
			return true
		})
	}
	return nil
}
