package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Collector is phase 1 of the whole-program analysis: it walks one
// package at a time and produces serializable per-function facts plus
// the package's slice of the cross-package call graph.
//
// Function literals are flattened into their enclosing declared
// function: a closure's facts, allocation sites, and call edges belong
// to the function that created it, which is also the function that
// schedules or stores it — exactly the attribution taint propagation
// needs.
type Collector struct {
	Fset *token.FileSet
	// Within reports whether an import path belongs to the program
	// under analysis; edges are recorded only for in-program callees
	// (standard-library calls contribute facts, not edges).
	Within func(pkgPath string) bool
}

// Package collects facts for one type-checked package.
func (c *Collector) Package(pkg *Package) *PackageFacts {
	pf := &PackageFacts{Version: FactsVersion, Path: pkg.Path}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if ff := c.funcDecl(pkg, fd); ff != nil {
				pf.Funcs = append(pf.Funcs, ff)
			}
		}
	}
	return pf
}

// Directive comments recognized on function declarations.
var funcDirectives = map[string]Fact{
	"//gmt:hotpath":     FactHot,
	"//gmt:coldpath":    FactCold,
	"//gmt:blocking":    FactBlocking,
	"//gmt:detroot":     FactDetRoot,
	"//gmt:requestroot": FactRequestRoot,
}

func (c *Collector) funcDecl(pkg *Package, fd *ast.FuncDecl) *FuncFacts {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	start := c.Fset.Position(fd.Pos())
	end := c.Fset.Position(fd.End())
	ff := &FuncFacts{
		ID:       FuncID(obj.FullName()),
		Pkg:      pkg.Path,
		Name:     prettyFuncName(obj),
		File:     start.Filename,
		Line:     start.Line,
		StartOff: start.Offset,
		EndOff:   end.Offset,
		HasCtx:   hasContextParam(sig),
		ReqRoot:  isHandlerShaped(sig),
	}
	if recv := sig.Recv(); recv != nil && !types.IsInterface(recv.Type()) {
		ff.Method = obj.Name()
		ff.Sig = types.TypeString(sig, nil)
	}
	if fd.Doc != nil {
		for _, cm := range fd.Doc.List {
			text := cm.Text
			if i := strings.IndexAny(text, " \t"); i >= 0 {
				text = text[:i]
			}
			if bit, ok := funcDirectives[text]; ok {
				ff.Flags |= bit
			}
		}
	}
	if fd.Body != nil {
		c.walkBody(pkg, ff, fd)
	}
	return ff
}

// prettyFuncName renders a short display name: Func for package
// functions, (*Recv).Method for methods.
func prettyFuncName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return "(" + types.TypeString(recv.Type(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
	}
	return fn.Name()
}

func hasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHandlerShaped reports the net/http handler signature
// func(http.ResponseWriter, *http.Request).
func isHandlerShaped(sig *types.Signature) bool {
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	isNetHTTP := func(t types.Type, name string) bool {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
	}
	return isNetHTTP(sig.Params().At(0).Type(), "ResponseWriter") &&
		isNetHTTP(sig.Params().At(1).Type(), "Request")
}

// span is a half-open source range used for the guard exclusions.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.lo && p < s.hi }

func inSpans(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

func (c *Collector) walkBody(pkg *Package, ff *FuncFacts, fd *ast.FuncDecl) {
	info := pkg.Info
	body := fd.Body

	// Pre-passes: call positions, selector parents, &composite sites,
	// guard spans, and calls made under a held mutex.
	callFuns := make(map[ast.Node]bool)
	parentSel := make(map[*ast.Ident]*ast.SelectorExpr)
	addrComposite := make(map[*ast.CompositeLit]bool)
	var nilGuardSpans []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callFuns[unparen(n.Fun)] = true
		case *ast.SelectorExpr:
			parentSel[n.Sel] = n
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := unparen(n.X).(*ast.CompositeLit); ok {
					addrComposite[cl] = true
				}
			}
		case *ast.IfStmt:
			if isCtxNilGuard(info, n.Cond) {
				nilGuardSpans = append(nilGuardSpans, span{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})
	locked := lockedCallPositions(info, body)

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			// Code under `if invariant.Enabled` (or raceflag.Enabled) is
			// compiled out of default builds; it contributes nothing to
			// the default-build call graph or allocation profile.
			if isInvariantGuard(info, n.Cond) {
				return false
			}
		case *ast.Ident:
			c.identUse(pkg, ff, n, callFuns, parentSel, locked)
		case *ast.CallExpr:
			c.callSites(pkg, ff, n, nilGuardSpans, body.Pos(), body.End())
		case *ast.GoStmt:
			c.fact(ff, FactGoroutine, n.Pos(), "go statement (goroutine spawn)")
		case *ast.SendStmt:
			c.fact(ff, FactChan, n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.fact(ff, FactChan, n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			c.fact(ff, FactChan, n.Pos(), "select statement")
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					c.fact(ff, FactChan, n.Pos(), "range over channel")
				}
			}
		case *ast.CompositeLit:
			c.compositeAlloc(pkg, ff, n, addrComposite)
		case *ast.FuncLit:
			c.closureAlloc(pkg, ff, fd, n)
		}
		return true
	})
}

func (c *Collector) fact(ff *FuncFacts, bit Fact, pos token.Pos, msg string) {
	ff.Flags |= bit
	ff.Sites = append(ff.Sites, Site{Fact: bit, Pos: c.Fset.Position(pos), Msg: msg})
}

// identUse records stdlib determinism facts and in-program call-graph
// edges for one resolved identifier.
func (c *Collector) identUse(pkg *Package, ff *FuncFacts, id *ast.Ident,
	callFuns map[ast.Node]bool, parentSel map[*ast.Ident]*ast.SelectorExpr,
	locked map[token.Pos]bool) {
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	path := fn.Pkg().Path()
	if sig.Recv() == nil {
		if path == "time" && wallClockFuncs[fn.Name()] {
			c.fact(ff, FactWallClock, id.Pos(), "wall-clock call time."+fn.Name())
		}
		if globalRandPkg(path) && !globalRandExempt[fn.Name()] {
			c.fact(ff, FactGlobalRand, id.Pos(), "global-stream call rand."+fn.Name())
		}
	}
	if c.Within == nil || !c.Within(path) {
		return
	}
	// Call position: the ident itself, or the selector it terminates.
	sel := parentSel[id]
	inCall := callFuns[id] || (sel != nil && callFuns[sel])
	isLocked := locked[id.Pos()] || (sel != nil && locked[sel.Pos()])
	edge := Edge{Pos: c.Fset.Position(id.Pos()), Locked: isLocked}
	if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
		edge.Kind = EdgeIface
		edge.Method = fn.Name()
		edge.Sig = types.TypeString(sig, nil)
	} else {
		edge.Callee = FuncID(fn.FullName())
		if inCall {
			edge.Kind = EdgeStatic
		} else {
			edge.Kind = EdgeRef
		}
	}
	ff.Calls = append(ff.Calls, edge)
}

// callSites records builtin allocations (make/new/append), context
// mints, and interface-boxing argument conversions for one call.
func (c *Collector) callSites(pkg *Package, ff *FuncFacts, call *ast.CallExpr, nilGuards []span, bodyStart, bodyEnd token.Pos) {
	info := pkg.Info
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.alloc(ff, AllocMake, call.Pos(), "make allocates")
			case "new":
				c.alloc(ff, AllocMake, call.Pos(), "new allocates")
			case "append":
				c.appendAlloc(pkg, ff, call, bodyStart, bodyEnd)
			}
			// No boxing check for any builtin: panic's interface{}
			// parameter is a termination path, not steady state.
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			ff.Mints = append(ff.Mints, Site{
				Pos:     c.Fset.Position(call.Pos()),
				Msg:     "context." + fn.Name() + "() minted",
				Guarded: inSpans(nilGuards, call.Pos()),
			})
		}
	}
	c.boxingSites(pkg, ff, call)
}

// appendAlloc flags append whose destination is a bare function-local
// slice: such a slice starts empty on every invocation, so the append
// allocates per call. Appends into fields, parameters, and package
// state (free lists, arenas, accumulators) grow amortized long-lived
// storage and are not per-operation allocations.
func (c *Collector) appendAlloc(pkg *Package, ff *FuncFacts, call *ast.CallExpr, bodyStart, bodyEnd token.Pos) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	// Only variables declared inside the body (not parameters, results,
	// receivers, or package-level state — those hold long-lived storage
	// the append grows amortized).
	if v.Pos() < bodyStart || v.Pos() >= bodyEnd {
		return
	}
	c.alloc(ff, AllocAppend, call.Pos(),
		fmt.Sprintf("append to function-local slice %s allocates per call", id.Name))
}

func (c *Collector) alloc(ff *FuncFacts, kind string, pos token.Pos, msg string) {
	ff.Allocs = append(ff.Allocs, Site{Kind: kind, Pos: c.Fset.Position(pos), Msg: msg})
}

// boxingSites flags non-constant, non-pointer-shaped values passed to
// non-variadic interface parameters: the conversion heap-allocates the
// value. Pointer-shaped kinds (pointers, maps, channels, funcs) ride in
// the interface word; constants are interned by the compiler; variadic
// parameters are skipped because the dominant callers (asserts,
// formatting on panic paths) never execute in steady state.
func (c *Collector) boxingSites(pkg *Package, ff *FuncFacts, call *ast.CallExpr) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		if i >= n || (sig.Variadic() && i >= n-1) {
			break
		}
		pt := sig.Params().At(i).Type()
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Value != nil || at.IsNil() || at.Type == nil {
			continue
		}
		if boxes(at.Type) {
			c.alloc(ff, AllocBox, arg.Pos(), fmt.Sprintf(
				"interface boxing: %s value converted to %s allocates",
				types.TypeString(at.Type, nil), types.TypeString(pt, types.RelativeTo(pkg.Types))))
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// heap-allocates: true for value kinds (basics, strings, structs,
// arrays, slices), false for pointer-shaped kinds and interfaces.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Basic, *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}

func (c *Collector) compositeAlloc(pkg *Package, ff *FuncFacts, cl *ast.CompositeLit, addr map[*ast.CompositeLit]bool) {
	t := pkg.Info.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.alloc(ff, AllocComposite, cl.Pos(), "slice literal allocates")
		return
	case *types.Map:
		c.alloc(ff, AllocComposite, cl.Pos(), "map literal allocates")
		return
	}
	if addr[cl] {
		c.alloc(ff, AllocComposite, cl.Pos(), fmt.Sprintf(
			"&%s composite literal allocates", types.TypeString(t, types.RelativeTo(pkg.Types))))
	}
}

// closureAlloc flags function literals that capture enclosing state: a
// capturing closure allocates its environment at creation. Literals
// referencing only package-level state compile to singletons.
func (c *Collector) closureAlloc(pkg *Package, ff *FuncFacts, fd *ast.FuncDecl, lit *ast.FuncLit) {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			captures = true
		}
		return true
	})
	if captures {
		c.alloc(ff, AllocClosure, lit.Pos(), "capturing closure allocates its environment")
	}
}

// isInvariantGuard recognizes `if invariant.Enabled` (and
// raceflag.Enabled) conditions: the guarded block is compiled out of
// default builds.
func isInvariantGuard(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != "Enabled" {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		base := obj.Pkg().Path()
		if i := strings.LastIndex(base, "/"); i >= 0 {
			base = base[i+1:]
		}
		if base == "invariant" || base == "raceflag" {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCtxNilGuard recognizes `if ctx == nil` where ctx is a
// context.Context: the guarded body is the sanctioned default-context
// idiom, so a context.Background() mint inside it is exempt.
func isCtxNilGuard(info *types.Info, cond ast.Expr) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return false
	}
	check := func(x, y ast.Expr) bool {
		tv, ok := info.Types[y]
		if !ok || !tv.IsNil() {
			return false
		}
		t := info.TypeOf(x)
		return t != nil && isContextType(t)
	}
	return check(bin.X, bin.Y) || check(bin.Y, bin.X)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// lockedCallPositions walks a function body tracking which
// sync.Mutex/RWMutex receivers are held at each statement, and returns
// the positions of every call expression evaluated while at least one
// lock is held. Function literals are skipped: their bodies execute
// later, under their own lock state.
//
// The tracking is a conservative linear walk: branches are analyzed
// with a copy of the held set, and the states are unioned afterwards
// unless a branch provably terminates (ends in return or panic) — the
// `if cond { mu.Unlock(); return }` early-exit idiom therefore does not
// leak an unlocked state into the fallthrough path.
func lockedCallPositions(info *types.Info, body *ast.BlockStmt) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	walkLockStmts(info, body.List, map[string]bool{}, out)
	return out
}

func walkLockStmts(info *types.Info, stmts []ast.Stmt, held map[string]bool, out map[token.Pos]bool) map[string]bool {
	for _, s := range stmts {
		held = walkLockStmt(info, s, held, out)
	}
	return held
}

func walkLockStmt(info *types.Info, s ast.Stmt, held map[string]bool, out map[token.Pos]bool) map[string]bool {
	mark := func(n ast.Node) {
		if n == nil || len(held) == 0 {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				out[m.Pos()] = true
			}
			return true
		})
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockOp(info, s.X); ok {
			if op {
				held[key] = true
			} else {
				delete(held, key)
			}
			return held
		}
		mark(s.X)
	case *ast.DeferStmt:
		if _, op, ok := lockOp(info, s.Call); ok && !op {
			// Deferred unlock: the lock stays held for the remainder of
			// the function body, which is exactly what the held set
			// already says. Nothing to do.
			return held
		}
		mark(s.Call)
	case *ast.BlockStmt:
		return walkLockStmts(info, s.List, held, out)
	case *ast.IfStmt:
		mark(s.Init)
		mark(s.Cond)
		bodyExit := walkLockStmts(info, s.Body.List, copyHeld(held), out)
		elseExit := held
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseExit = walkLockStmts(info, e.List, copyHeld(held), out)
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseExit = walkLockStmt(info, e, copyHeld(held), out)
		}
		switch {
		case terminates(s.Body.List) && elseTerm:
			return held
		case terminates(s.Body.List):
			return elseExit
		case elseTerm:
			return bodyExit
		default:
			return unionHeld(bodyExit, elseExit)
		}
	case *ast.ForStmt:
		mark(s.Init)
		mark(s.Cond)
		mark(s.Post)
		return unionHeld(held, walkLockStmts(info, s.Body.List, copyHeld(held), out))
	case *ast.RangeStmt:
		mark(s.X)
		return unionHeld(held, walkLockStmts(info, s.Body.List, copyHeld(held), out))
	case *ast.SwitchStmt:
		mark(s.Init)
		mark(s.Tag)
		return walkClauses(info, s.Body, held, out)
	case *ast.TypeSwitchStmt:
		mark(s.Init)
		return walkClauses(info, s.Body, held, out)
	case *ast.SelectStmt:
		return walkClauses(info, s.Body, held, out)
	case *ast.LabeledStmt:
		return walkLockStmt(info, s.Stmt, held, out)
	case *ast.GoStmt:
		// The spawned goroutine runs without the caller's locks.
		return held
	default:
		mark(s)
	}
	return held
}

func walkClauses(info *types.Info, body *ast.BlockStmt, held map[string]bool, out map[token.Pos]bool) map[string]bool {
	exit := copyHeld(held)
	for _, cs := range body.List {
		var list []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			list = cs.Body
		case *ast.CommClause:
			list = cs.Body
		}
		ce := walkLockStmts(info, list, copyHeld(held), out)
		if !terminates(list) {
			exit = unionHeld(exit, ce)
		}
	}
	return exit
}

func copyHeld(h map[string]bool) map[string]bool {
	c := make(map[string]bool, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

func unionHeld(a, b map[string]bool) map[string]bool {
	u := copyHeld(a)
	for k := range b {
		u[k] = true
	}
	return u
}

// terminates reports whether a statement list provably does not fall
// through (ends in return, panic, or an unconditional branch).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// lockOp recognizes x.Lock()/x.RLock() (op=true) and
// x.Unlock()/x.RUnlock() (op=false) on sync mutexes, returning a key
// identifying the mutex expression.
func lockOp(info *types.Info, e ast.Expr) (key string, lock bool, ok bool) {
	call, isCall := unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}
