package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/gmtsim/gmt/internal/lint"
	"github.com/gmtsim/gmt/internal/lint/linttest"
)

func TestNoRealTime(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoRealTime, "norealtime")
}

func TestNoGlobalRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoGlobalRand, "noglobalrand")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapOrder, "maporder")
}

func TestNoGoroutine(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoGoroutine, "nogoroutine")
}

func TestHotClosure(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotClosure, "hotclosure")
}

// TestSuppression checks //lint:ignore semantics through the driver: a
// reasoned directive suppresses on its own line and the line below; a
// reasonless directive is inert.
func TestSuppression(t *testing.T) {
	fset, pkg := linttest.Load(t, "testdata", "suppressed")
	findings, err := lint.Run(fset, []*lint.Package{pkg}, []*lint.Analyzer{lint.NoGlobalRand}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 surviving findings (reasonless directive + unsuppressed), got %d: %v",
			len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "noglobalrand" {
			t.Errorf("unexpected analyzer %q", f.Analyzer)
		}
	}
}

// TestScope checks that Run's scope callback gates analyzers per
// package.
func TestScope(t *testing.T) {
	fset, pkg := linttest.Load(t, "testdata", "noglobalrand")
	none := func(a *lint.Analyzer, path string) bool { return false }
	findings, err := lint.Run(fset, []*lint.Package{pkg}, lint.All(), none)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("scope=false must drop all findings, got %v", findings)
	}
}

// TestLoaderLoadsModule loads the enclosing module from source and
// checks that the simulator packages type-check cleanly — the same path
// cmd/gmtlint takes.
func TestLoaderLoadsModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, p := range pkgs {
		seen[strings.TrimPrefix(strings.TrimPrefix(p.Path, loader.Module), "/")] = true
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, terr)
		}
	}
	for _, want := range []string{"", "internal/sim", "internal/core", "internal/tier", "cmd/gmtlint"} {
		if !seen[want] {
			t.Errorf("loader did not find package %q (got %d packages)", want, len(pkgs))
		}
	}
}

// TestModuleClean runs the full two-phase suite over the enclosing
// module exactly as cmd/gmtlint does and requires zero findings. This
// pins the tree's lint-clean state — in particular that the hot paths
// (//gmt:hotpath in core, tier, gpu, sim) carry no statically reachable
// allocation sites and that every //lint:ignore directive still earns
// its keep.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	coll := &lint.Collector{
		Fset: loader.Fset(),
		Within: func(path string) bool {
			return path == loader.Module || strings.HasPrefix(path, loader.Module+"/")
		},
	}
	var facts []*lint.PackageFacts
	for _, p := range pkgs {
		facts = append(facts, coll.Package(p))
	}
	findings, err := lint.RunAll(loader.Fset(), pkgs, lint.RunConfig{
		Analyzers:        lint.All(),
		ProgramAnalyzers: lint.AllProgram(),
		Program:          lint.BuildProgram(facts),
		Scope:            lint.DefaultScope(loader.Module),
		DetRoot:          lint.DefaultDetRoot(loader.Module),
		ServeRoot:        lint.DefaultServeRoot(loader.Module),
		Hygiene:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
	}
}
