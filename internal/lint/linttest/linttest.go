// Package linttest runs lint analyzers against fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixtures live
// under testdata/src/<pkg>/ and annotate the lines where diagnostics are
// expected with
//
//	// want `regexp`
//
// comments. Run fails the test when an expected diagnostic is missing,
// an unexpected one fires, or a message does not match its pattern.
//
// Fixture packages may import each other by bare directory name
// (import "dethelper" resolves to testdata/src/dethelper), which is how
// the whole-program analyzers are exercised: LoadProgram loads a closure
// of fixture packages, RunProgram collects facts, builds the program,
// and checks the cross-package diagnostics against the same // want
// annotations.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/gmtsim/gmt/internal/lint"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Load parses and type-checks the fixture package at
// <testdata>/src/<pkg>, failing the test on any error: fixtures must
// compile. Imports of sibling fixture packages resolve by directory
// name.
func Load(t *testing.T, testdata string, pkg string) (*token.FileSet, *lint.Package) {
	t.Helper()
	fset, pkgs := LoadProgram(t, testdata, pkg)
	for _, p := range pkgs {
		if p.Path == pkg {
			return fset, p
		}
	}
	t.Fatalf("fixture package %q did not load", pkg)
	return nil, nil
}

// LoadProgram loads the named fixture packages plus everything they
// import from testdata/src, returning the full closure (requested
// packages first, transitive fixtures after, each loaded exactly once).
func LoadProgram(t *testing.T, testdata string, pkgs ...string) (*token.FileSet, []*lint.Package) {
	t.Helper()
	l := &fixtureLoader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*lint.Package),
		loading:  make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	for _, pkg := range pkgs {
		if _, err := l.Import(pkg); err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		if !seen[pkg] {
			seen[pkg] = true
			out = append(out, l.pkgs[pkg])
		}
	}
	var rest []string
	for path := range l.pkgs {
		if !seen[path] {
			rest = append(rest, path)
		}
	}
	sort.Strings(rest)
	for _, path := range rest {
		out = append(out, l.pkgs[path])
	}
	return l.fset, out
}

// fixtureLoader resolves imports among fixture packages (by directory
// under testdata/src) and defers everything else to the source importer.
type fixtureLoader struct {
	testdata string
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*lint.Package
	loading  map[string]bool
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	dir := filepath.Join(l.testdata, "src", path)
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return l.std.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle among fixtures at %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	p, err := l.load(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p.Types, nil
}

func (l *fixtureLoader) load(path, dir string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading fixture dir: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing fixture: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	return &lint.Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// Facts collects phase-1 facts for the given fixture packages and
// builds the whole-program index; Within is the fixture package set.
func Facts(fset *token.FileSet, pkgs []*lint.Package) *lint.Program {
	within := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		within[p.Path] = true
	}
	coll := &lint.Collector{Fset: fset, Within: func(path string) bool { return within[path] }}
	var all []*lint.PackageFacts
	for _, p := range pkgs {
		all = append(all, coll.Package(p))
	}
	return lint.BuildProgram(all)
}

// Run loads the fixture package and checks the analyzer's diagnostics
// against its // want annotations.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkg string) {
	t.Helper()
	fset, lpkg := Load(t, testdata, pkg)
	findings, err := lint.Run(fset, []*lint.Package{lpkg}, []*lint.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	CheckWants(t, fset, []*lint.Package{lpkg}, findings)
}

// RunProgram loads the fixture packages (and their fixture imports),
// runs the whole-program analyzers over them, and checks the findings
// against the // want annotations across every loaded file.
func RunProgram(t *testing.T, testdata string, analyzers []*lint.ProgramAnalyzer, pkgs ...string) {
	t.Helper()
	fset, lpkgs := LoadProgram(t, testdata, pkgs...)
	program := Facts(fset, lpkgs)
	findings, err := lint.RunAll(fset, lpkgs, lint.RunConfig{
		ProgramAnalyzers: analyzers,
		Program:          program,
	})
	if err != nil {
		t.Fatalf("running program analyzers: %v", err)
	}
	CheckWants(t, fset, lpkgs, findings)
}

// CheckWants matches findings against the // want annotations in the
// packages' files: every finding must match a want on its line, and
// every want must be matched by some finding.
func CheckWants(t *testing.T, fset *token.FileSet, pkgs []*lint.Package, findings []lint.Finding) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, f.Analyzer, f.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("missing diagnostic at %s: expected message matching %q", key, w.re)
			}
		}
	}
}
