// Package linttest runs lint analyzers against fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixtures live
// under testdata/src/<pkg>/ and annotate the lines where diagnostics are
// expected with
//
//	// want `regexp`
//
// comments. Run fails the test when an expected diagnostic is missing,
// an unexpected one fires, or a message does not match its pattern.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/gmtsim/gmt/internal/lint"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Load parses and type-checks the fixture package at
// <testdata>/src/<pkg>, failing the test on any error: fixtures must
// compile.
func Load(t *testing.T, testdata string, pkg string) (*token.FileSet, *lint.Package) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkg, err)
	}
	return fset, &lint.Package{Path: pkg, Dir: dir, Files: files, Types: tpkg, Info: info}
}

// Run loads the fixture package and checks the analyzer's diagnostics
// against its // want annotations.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkg string) {
	t.Helper()
	fset, lpkg := Load(t, testdata, pkg)

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range lpkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}

	findings, err := lint.Run(fset, []*lint.Package{lpkg}, []*lint.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s: expected message matching %q", key, w.re)
			}
		}
	}
}
