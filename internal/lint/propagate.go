package lint

import (
	"sort"
	"strings"
)

// Program is the phase-2 view: every function's facts from every
// package, indexed for call-graph traversal. Interface call edges are
// resolved class-hierarchy style — an iface edge reaches every concrete
// method in the program with the same name and receiver-less signature.
type Program struct {
	Funcs map[FuncID]*FuncFacts
	// methodImpl maps "name\x00signature" to the concrete methods
	// implementing it, sorted for deterministic traversal.
	methodImpl map[string][]FuncID
	// byFile maps a file path to its functions, sorted by StartOff, for
	// enclosing-function lookup.
	byFile map[string][]*FuncFacts
	// closure caches the transitive fact computation.
	closure map[FuncID]Fact
}

// BuildProgram assembles the whole-program index from per-package fact
// sets (phase-1 output, possibly loaded from cache).
func BuildProgram(all []*PackageFacts) *Program {
	p := &Program{
		Funcs:      make(map[FuncID]*FuncFacts),
		methodImpl: make(map[string][]FuncID),
		byFile:     make(map[string][]*FuncFacts),
	}
	for _, pf := range all {
		for _, f := range pf.Funcs {
			p.Funcs[f.ID] = f
			if f.Method != "" {
				key := f.Method + "\x00" + f.Sig
				p.methodImpl[key] = append(p.methodImpl[key], f.ID)
			}
			p.byFile[f.File] = append(p.byFile[f.File], f)
		}
	}
	for key := range p.methodImpl {
		ids := p.methodImpl[key]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	for file := range p.byFile {
		fns := p.byFile[file]
		sort.Slice(fns, func(i, j int) bool { return fns[i].StartOff < fns[j].StartOff })
	}
	return p
}

// Callees resolves one edge to the in-program functions it can reach.
func (p *Program) Callees(e Edge) []FuncID {
	switch e.Kind {
	case EdgeStatic, EdgeRef:
		if _, ok := p.Funcs[e.Callee]; ok {
			return []FuncID{e.Callee}
		}
	case EdgeIface:
		return p.methodImpl[e.Method+"\x00"+e.Sig]
	}
	return nil
}

// FuncAt returns the innermost function whose source range contains the
// given file offset, or nil.
func (p *Program) FuncAt(file string, offset int) *FuncFacts {
	var best *FuncFacts
	for _, f := range p.byFile[file] {
		if f.StartOff <= offset && offset < f.EndOff {
			best = f // sorted by start; later matches are inner
		}
	}
	return best
}

// SortedIDs returns every function ID in deterministic order.
func (p *Program) SortedIDs() []FuncID {
	ids := make([]FuncID, 0, len(p.Funcs))
	for id := range p.Funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Closure computes, for every function, the union of transitive fact
// bits it can reach through any call path (its own direct bits
// included). The result is cached on the Program.
func (p *Program) Closure() map[FuncID]Fact {
	if p.closure != nil {
		return p.closure
	}
	ids := p.SortedIDs()
	cl := make(map[FuncID]Fact, len(ids))
	for _, id := range ids {
		cl[id] = p.Funcs[id].Flags & transitiveFacts
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			acc := cl[id]
			for _, e := range p.Funcs[id].Calls {
				for _, callee := range p.Callees(e) {
					acc |= cl[callee]
				}
			}
			if acc != cl[id] {
				cl[id] = acc
				changed = true
			}
		}
	}
	p.closure = cl
	return cl
}

// ReachEntry records how BFS first reached a function: the predecessor
// and the edge taken, for chain reconstruction. Roots have Pred "".
type ReachEntry struct {
	Pred  FuncID
	Edge  Edge
	Depth int
}

// Reach runs a deterministic BFS from the given roots. follow filters
// edges (by kind, lock state) and callees (e.g. stop at //gmt:coldpath
// barriers); nil follows everything.
func (p *Program) Reach(roots []FuncID, follow func(e Edge, callee *FuncFacts) bool) map[FuncID]ReachEntry {
	sorted := append([]FuncID(nil), roots...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	reach := make(map[FuncID]ReachEntry)
	var queue []FuncID
	for _, r := range sorted {
		if _, ok := p.Funcs[r]; !ok {
			continue
		}
		if _, seen := reach[r]; seen {
			continue
		}
		reach[r] = ReachEntry{}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		depth := reach[id].Depth
		for _, e := range p.Funcs[id].Calls {
			for _, calleeID := range p.Callees(e) {
				if _, seen := reach[calleeID]; seen {
					continue
				}
				callee := p.Funcs[calleeID]
				if follow != nil && !follow(e, callee) {
					continue
				}
				reach[calleeID] = ReachEntry{Pred: id, Edge: e, Depth: depth + 1}
				queue = append(queue, calleeID)
			}
		}
	}
	return reach
}

// ChainStep is one hop of a reported call chain.
type ChainStep struct {
	Name string `json:"name"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// Chain reconstructs the root→id call path from a Reach result.
func (p *Program) Chain(reach map[FuncID]ReachEntry, id FuncID) []ChainStep {
	var rev []FuncID
	for cur := id; ; {
		rev = append(rev, cur)
		entry, ok := reach[cur]
		if !ok || entry.Pred == "" {
			break
		}
		cur = entry.Pred
	}
	chain := make([]ChainStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		f := p.Funcs[rev[i]]
		chain = append(chain, ChainStep{Name: pkgBase(f.Pkg) + "." + f.Name, File: f.File, Line: f.Line})
	}
	return chain
}

// pkgBase shortens an import path to its final element for display.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// FormatChain renders a chain as "a → b → c" for diagnostics.
func FormatChain(chain []ChainStep) string {
	parts := make([]string, len(chain))
	for i, s := range chain {
		parts[i] = s.Name
	}
	return strings.Join(parts, " → ")
}
