package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// FuncID identifies one function across the whole program. It is the
// type-checker's fully qualified name — "pkg/path.Func" for a package
// function, "(*pkg/path.Recv).Method" for a method — so the same
// function gets the same ID no matter which package's facts mention it.
type FuncID string

// Fact is a bitmask of per-function properties phase 1 records directly
// and phase 2 propagates over the call graph.
type Fact uint32

const (
	// FactWallClock: the function reads or waits on the wall clock
	// (time.Now, time.Sleep, timer constructors, ...).
	FactWallClock Fact = 1 << iota
	// FactGlobalRand: the function draws from math/rand's process-global
	// stream.
	FactGlobalRand
	// FactGoroutine: the function spawns a goroutine.
	FactGoroutine
	// FactChan: the function performs a channel operation (send,
	// receive, select, range over channel).
	FactChan
	// FactBlocking marks a long-running simulation entry point
	// (//gmt:blocking directive): a call that executes simulations and
	// must never happen while holding a serving-layer mutex.
	FactBlocking
	// FactHot marks a hotalloc root (//gmt:hotpath directive): a
	// function gated at 0 allocs/op by the benchmark alloc gates.
	FactHot
	// FactCold marks a hotalloc traversal barrier (//gmt:coldpath
	// directive): a slow path statically reachable from a hot root that
	// is amortized or off the gated steady state.
	FactCold
	// FactDetRoot marks an explicit determinism root (//gmt:detroot
	// directive), in addition to the configured root package set.
	FactDetRoot
	// FactRequestRoot marks an explicit request-path root
	// (//gmt:requestroot directive), in addition to HTTP-handler-shaped
	// functions in the configured serve packages.
	FactRequestRoot
)

// taintFacts are the fact bits detflow treats as determinism taint.
const taintFacts = FactWallClock | FactGlobalRand | FactGoroutine | FactChan

// transitiveFacts are the bits propagated over call edges; marker bits
// (hot/cold/roots) describe a single function and do not spread.
const transitiveFacts = taintFacts | FactBlocking

var factNames = []struct {
	bit  Fact
	name string
}{
	{FactWallClock, "wallclock"},
	{FactGlobalRand, "globalrand"},
	{FactGoroutine, "goroutine"},
	{FactChan, "chan"},
	{FactBlocking, "blocking"},
	{FactHot, "hotpath"},
	{FactCold, "coldpath"},
	{FactDetRoot, "detroot"},
	{FactRequestRoot, "requestroot"},
}

func (f Fact) String() string {
	var parts []string
	for _, fn := range factNames {
		if f&fn.bit != 0 {
			parts = append(parts, fn.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Alloc site kinds recorded by the collector for hotalloc.
const (
	AllocClosure   = "closure"   // capturing function literal
	AllocMake      = "make"      // make(map/slice/chan) or new(T)
	AllocComposite = "composite" // &T{...}, []T{...}, map literal
	AllocAppend    = "append"    // append into a function-local slice
	AllocBox       = "box"       // interface boxing of a non-pointer value
)

// Site is one fact-evidencing source position inside a function: a
// determinism-taint site (Fact set), an allocation site (Kind set), or
// a context mint (neither; see FuncFacts.Mints).
type Site struct {
	Fact Fact           `json:"fact,omitempty"`
	Kind string         `json:"kind,omitempty"`
	Pos  token.Position `json:"pos"`
	Msg  string         `json:"msg"`
	// Guarded marks a context mint sitting inside an `if ctx == nil`
	// default — the sanctioned nil-guard idiom ctxflow does not flag.
	Guarded bool `json:"guarded,omitempty"`
}

// Edge kinds.
const (
	// EdgeStatic is a direct call to a known function or concrete
	// method.
	EdgeStatic = "static"
	// EdgeRef is a reference to a function outside call position (a
	// function value); the referent may be called later, so taint
	// propagation follows it.
	EdgeRef = "ref"
	// EdgeIface is a call through an interface method; phase 2 links it
	// to every concrete method in the program with the same name and
	// signature.
	EdgeIface = "iface"
)

// Edge is one outgoing call-graph edge of a function.
type Edge struct {
	Kind   string         `json:"kind"`
	Callee FuncID         `json:"callee,omitempty"` // static/ref
	Method string         `json:"method,omitempty"` // iface
	Sig    string         `json:"sig,omitempty"`    // iface: receiver-less signature
	Pos    token.Position `json:"pos"`
	// Locked marks a call made while a sync.Mutex/RWMutex is held in
	// the caller.
	Locked bool `json:"locked,omitempty"`
}

// FuncFacts is everything phase 1 records about one function. The
// struct is JSON-serializable so per-package fact sets can be cached
// between runs (phase 1 is per-package and incremental; only phase 2 is
// whole-program).
type FuncFacts struct {
	ID   FuncID `json:"id"`
	Pkg  string `json:"pkg"`  // import path
	Name string `json:"name"` // display name, e.g. (*Runtime).AccessSync

	File     string `json:"file"`
	Line     int    `json:"line"`
	StartOff int    `json:"start"`
	EndOff   int    `json:"end"`

	Flags  Fact `json:"flags,omitempty"`
	HasCtx bool `json:"has_ctx,omitempty"`
	// ReqRoot marks HTTP-handler-shaped functions
	// (func(http.ResponseWriter, *http.Request)); combined with the
	// configured serve package set they are ctxflow roots.
	ReqRoot bool `json:"req_root,omitempty"`

	// Method/Sig are set for concrete methods and used to resolve
	// interface edges: an iface edge links to every method with the
	// same name and receiver-less signature.
	Method string `json:"method,omitempty"`
	Sig    string `json:"sig,omitempty"`

	Sites  []Site `json:"sites,omitempty"`  // determinism-taint sites
	Allocs []Site `json:"allocs,omitempty"` // allocation sites
	Mints  []Site `json:"mints,omitempty"`  // context.Background/TODO sites
	Calls  []Edge `json:"calls,omitempty"`
}

// FactsVersion is the serialization format version; Decode rejects
// anything else so stale caches regenerate instead of mis-parsing.
const FactsVersion = "gmtlint-facts/v1"

// PackageFacts is the phase-1 output for one package.
type PackageFacts struct {
	Version string       `json:"version"`
	Path    string       `json:"path"`
	Funcs   []*FuncFacts `json:"funcs"`
}

// Encode serializes the fact set for caching.
func (pf *PackageFacts) Encode() ([]byte, error) {
	pf.Version = FactsVersion
	return json.MarshalIndent(pf, "", " ")
}

// DecodeFacts parses a serialized fact set, rejecting unknown versions.
func DecodeFacts(data []byte) (*PackageFacts, error) {
	var pf PackageFacts
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("lint: decoding facts: %w", err)
	}
	if pf.Version != FactsVersion {
		return nil, fmt.Errorf("lint: facts version %q, want %q", pf.Version, FactsVersion)
	}
	return &pf, nil
}

// FactsFingerprint hashes a package's source (file names and contents)
// to key the phase-1 fact cache: same sources, same facts.
func FactsFingerprint(files map[string][]byte) string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(files[name]))
		h.Write(files[name])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
