package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotClosure steers hot simulator code away from the closure-based event
// API. Engine.At and Engine.After box their func() argument into the
// event record's any-typed slot, which allocates a closure per event on
// every path the compiler cannot prove non-escaping; the typed variants
// AtCall/AfterCall carry a plain function pointer plus context words and
// ride the engine's free-listed record arena allocation-free. The
// analyzer flags every At/After method call whose receiver is a named
// type Engine; cold paths that genuinely want a capturing closure carry
// a //lint:ignore hotclosure directive with the reason.
var HotClosure = &Analyzer{
	Name: "hotclosure",
	Doc: "forbid closure-based Engine.At/Engine.After in hot simulator packages; " +
		"use the typed AtCall/AfterCall variants (or //lint:ignore a cold path)",
	Run: runHotClosure,
}

// hotClosureMethods maps the flagged methods to their typed replacements.
var hotClosureMethods = map[string]string{
	"At":    "AtCall",
	"After": "AfterCall",
}

func runHotClosure(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			replace, hot := hotClosureMethods[sel.Sel.Name]
			if !hot {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal {
				return true
			}
			if named := namedRecv(selection.Recv()); named == nil || named.Obj().Name() != "Engine" {
				return true
			}
			pass.Reportf(sel.Pos(), fmt.Sprintf(
				"closure-based Engine.%s in hot simulator code; use Engine.%s with a typed event function",
				sel.Sel.Name, replace))
			return true
		})
	}
	return nil
}

// namedRecv unwraps a method receiver type (possibly a pointer) to its
// named type, or nil.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
