// Package lint is a dependency-free static-analysis framework enforcing
// the simulator's determinism contract (see HACKING.md, "Determinism
// rules"). It mirrors the golang.org/x/tools/go/analysis API surface —
// Analyzer, Pass, Diagnostic — but is built entirely on the standard
// library's go/ast and go/types so the repo stays module-dependency-free.
//
// Five analyzers ship with the package:
//
//   - norealtime:   no wall-clock time in simulation code
//   - noglobalrand: no math/rand global-stream functions outside tests
//   - maporder:     no order-sensitive work inside map iteration
//   - nogoroutine:  no goroutines or channels in simulator packages
//   - hotclosure:   no closure-based Engine.At/After in hot simulator
//     packages; use the typed AtCall/AfterCall variants
//
// The driver (cmd/gmtlint) loads packages with Loader, runs analyzers
// through Run, and honors //lint:ignore suppression comments.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. The shape deliberately matches
// x/tools/go/analysis.Analyzer so analyzers could migrate to the real
// multichecker if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass) error
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// All returns every analyzer the suite ships, in stable order.
func All() []*Analyzer {
	return []*Analyzer{NoRealTime, NoGlobalRand, MapOrder, NoGoroutine, HotClosure}
}

// pkgFunc resolves a selector like time.Now to the package-level function
// it names, or nil when the selector is something else (method call,
// field, non-function object).
func pkgFunc(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}
