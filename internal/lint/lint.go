// Package lint is a dependency-free static-analysis framework enforcing
// the simulator's determinism contract (see HACKING.md, "Determinism
// rules"). It mirrors the golang.org/x/tools/go/analysis API surface —
// Analyzer, Pass, Diagnostic — but is built entirely on the standard
// library's go/ast and go/types so the repo stays module-dependency-free.
//
// The analysis runs in two phases. Phase 1 is per-package and
// incremental: the Collector walks each package's AST once and produces
// serializable FuncFacts — direct determinism taint (wall clock, global
// rand, goroutines, channels), allocation sites, context mints, and the
// package's slice of the cross-package call graph. Phase 2 is
// whole-program: BuildProgram indexes every package's facts and the
// ProgramAnalyzers propagate them over the call graph from two root
// sets — the deterministic simulator packages, and the serving layer's
// HTTP handlers.
//
// Five per-package analyzers ship with the package:
//
//   - norealtime:   no wall-clock time in simulation code
//   - noglobalrand: no math/rand global-stream functions outside tests
//   - maporder:     no order-sensitive work inside map iteration
//   - nogoroutine:  no goroutines or channels in simulator packages
//   - hotclosure:   no closure-based Engine.At/After in hot simulator
//     packages; use the typed AtCall/AfterCall variants
//
// plus three whole-program analyzers:
//
//   - detflow:  determinism taint transitively reachable from simulator
//     roots, reported with the full call chain
//   - ctxflow:  context.Background()/TODO() minted on serve request
//     paths, and blocking sim entry points called under a held mutex
//   - hotalloc: allocation sites statically reachable from
//     //gmt:hotpath functions gated at 0 allocs/op
//
// The driver (cmd/gmtlint) loads packages with Loader, runs everything
// through RunAll, and honors //lint:ignore suppression comments (which
// must name a known analyzer and carry a reason; unused directives are
// themselves reported).
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. The shape deliberately matches
// x/tools/go/analysis.Analyzer so analyzers could migrate to the real
// multichecker if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass) error
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// All returns every per-package analyzer the suite ships, in stable
// order.
func All() []*Analyzer {
	return []*Analyzer{NoRealTime, NoGlobalRand, MapOrder, NoGoroutine, HotClosure}
}

// ProgramAnalyzer is a whole-program check: it runs once over the
// phase-2 Program (cross-package call graph plus per-function facts)
// instead of package by package.
type ProgramAnalyzer struct {
	Name string
	Doc  string
	Run  func(pass *ProgramPass) error
}

// ProgramPass hands the assembled program to a whole-program analyzer.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Program  *Program

	// DetRoot reports packages whose every function is a determinism
	// root; ServeRoot reports packages whose HTTP-handler-shaped
	// functions are request-path roots. Either may be nil.
	DetRoot   func(pkgPath string) bool
	ServeRoot func(pkgPath string) bool

	// Report records one diagnostic.
	Report func(ProgramDiagnostic)
}

// ProgramDiagnostic is one whole-program finding: a resolved position
// plus the call chain from the analysis root to the violation.
type ProgramDiagnostic struct {
	Pos     token.Position
	Message string
	Chain   []ChainStep
}

// AllProgram returns every whole-program analyzer, in stable order.
func AllProgram() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{DetFlow, CtxFlow, HotAlloc}
}

// KnownAnalyzerNames returns the set of names //lint:ignore directives
// may reference: every shipped analyzer plus the hygiene checks.
func KnownAnalyzerNames() map[string]bool {
	names := map[string]bool{
		BadIgnoreName:    true,
		UnusedIgnoreName: true,
	}
	for _, a := range All() {
		names[a.Name] = true
	}
	for _, a := range AllProgram() {
		names[a.Name] = true
	}
	return names
}

// pkgLevelFunc resolves an identifier use to the package-level function
// it names, or nil for methods, locals, and non-function objects. Works
// for the Sel of a qualified reference (time.Now, t.Now under an
// aliased import) and for bare identifiers from dot-imports.
func pkgLevelFunc(info *types.Info, id *ast.Ident) *types.Func {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}
