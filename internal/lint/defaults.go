package lint

import "strings"

// SimPackages are the single-goroutine packages where nogoroutine
// applies and whose functions are detflow determinism roots: every
// component in them runs inside engine callbacks.
var SimPackages = map[string]bool{
	"internal/sim":  true,
	"internal/core": true,
	"internal/tier": true,
	"internal/nvme": true,
	"internal/pcie": true,
	"internal/gpu":  true,
	"internal/xfer": true,
}

// HotPackages are the per-access simulator packages where hotclosure
// applies: event scheduling there sits on the hot path, so the typed
// AtCall/AfterCall variants are mandatory (cold exceptions carry a
// //lint:ignore hotclosure reason). internal/sim itself is exempt — it
// defines the closure API and its tests exercise it.
var HotPackages = map[string]bool{
	"internal/core": true,
	"internal/gpu":  true,
	"internal/tier": true,
	"internal/nvme": true,
	"internal/pcie": true,
	"internal/xfer": true,
}

// ServePackages hold the concurrent request-serving layer whose
// HTTP-handler-shaped functions are ctxflow roots.
var ServePackages = map[string]bool{
	"internal/serve": true,
}

// ModuleRel strips the module prefix from an import path, yielding the
// module-relative form the package sets are keyed by.
func ModuleRel(module, pkgPath string) string {
	return strings.TrimPrefix(strings.TrimPrefix(pkgPath, module), "/")
}

// DefaultScope is the analyzer→package scoping the gmtlint driver
// applies; module is the module path packages are relative to. It
// covers per-package and whole-program analyzers by name.
func DefaultScope(module string) func(analyzer, pkgPath string) bool {
	return func(analyzer, pkgPath string) bool {
		rel := ModuleRel(module, pkgPath)
		switch analyzer {
		case "nogoroutine":
			return SimPackages[rel]
		case "hotclosure":
			return HotPackages[rel]
		case "norealtime", "detflow", "ctxflow":
			return !strings.HasPrefix(rel, "cmd/")
		default:
			return true
		}
	}
}

// DefaultDetRoot reports whether every function in the package is a
// determinism root for detflow.
func DefaultDetRoot(module string) func(pkgPath string) bool {
	return func(pkgPath string) bool { return SimPackages[ModuleRel(module, pkgPath)] }
}

// DefaultServeRoot reports whether HTTP-handler-shaped functions in the
// package are request-path roots for ctxflow.
func DefaultServeRoot(module string) func(pkgPath string) bool {
	return func(pkgPath string) bool { return ServePackages[ModuleRel(module, pkgPath)] }
}
