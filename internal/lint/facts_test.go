package lint_test

import (
	"reflect"
	"strings"
	"testing"

	"github.com/gmtsim/gmt/internal/lint"
	"github.com/gmtsim/gmt/internal/lint/linttest"
)

// TestFactsRoundTrip collects facts for a real fixture package and
// checks Encode/DecodeFacts is lossless — the property the gmtlint
// fact cache depends on.
func TestFactsRoundTrip(t *testing.T) {
	fset, pkgs := linttest.LoadProgram(t, "testdata", "detroot", "ctxroot", "hotallocfix")
	for _, pkg := range pkgs {
		coll := &lint.Collector{Fset: fset, Within: func(string) bool { return true }}
		pf := coll.Package(pkg)
		data, err := pf.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", pkg.Path, err)
		}
		back, err := lint.DecodeFacts(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", pkg.Path, err)
		}
		if !reflect.DeepEqual(pf, back) {
			t.Errorf("%s: round trip not lossless:\n got %+v\nwant %+v", pkg.Path, back, pf)
		}
	}
}

func TestDecodeFactsRejectsStaleVersion(t *testing.T) {
	_, err := lint.DecodeFacts([]byte(`{"version":"gmtlint-facts/v0","path":"x","funcs":[]}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version-mismatch error, got %v", err)
	}
}

// TestFactsFingerprint pins the cache-key contract: content- and
// name-sensitive, insertion-order-independent.
func TestFactsFingerprint(t *testing.T) {
	a := lint.FactsFingerprint(map[string][]byte{"a.go": []byte("x"), "b.go": []byte("y")})
	b := lint.FactsFingerprint(map[string][]byte{"b.go": []byte("y"), "a.go": []byte("x")})
	if a != b {
		t.Errorf("fingerprint depends on map order: %s vs %s", a, b)
	}
	c := lint.FactsFingerprint(map[string][]byte{"a.go": []byte("x"), "b.go": []byte("z")})
	if a == c {
		t.Error("fingerprint ignores file contents")
	}
	d := lint.FactsFingerprint(map[string][]byte{"a.go": []byte("x"), "c.go": []byte("y")})
	if a == d {
		t.Error("fingerprint ignores file names")
	}
}
