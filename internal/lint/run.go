package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic resolved to a file position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// Run applies the analyzers to the packages, honoring per-analyzer
// scoping and //lint:ignore suppression. scope may be nil (all analyzers
// apply everywhere). Findings come back sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, scope func(a *Analyzer, pkgPath string) bool) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := ignoreDirectives(fset, pkg)
		for _, a := range analyzers {
			if scope != nil && !scope(a, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if ignores.covers(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ignoreSet records //lint:ignore directives: a directive written as
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses the named analyzers on its own line (trailing comment) and
// on the line immediately below (comment-above style). The reason is
// mandatory so suppressions stay auditable.
type ignoreSet map[string]map[int][]string // filename -> line -> analyzer names

func (s ignoreSet) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

func ignoreDirectives(fset *token.FileSet, pkg *Package) ignoreSet {
	set := make(ignoreSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive is ignored
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], strings.Split(fields[0], ",")...)
			}
		}
	}
	return set
}
