package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Names of the //lint:ignore hygiene checks. They are not analyzers you
// can run; they are emitted by RunAll itself when Hygiene is enabled.
const (
	// BadIgnoreName flags a //lint:ignore directive that is malformed:
	// it names an unknown analyzer or omits the mandatory reason.
	BadIgnoreName = "badignore"
	// UnusedIgnoreName flags a well-formed directive that suppressed
	// nothing, so stale suppressions cannot accumulate.
	UnusedIgnoreName = "unusedignore"
)

// Finding is one diagnostic resolved to a file position.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"-"`
	Message  string         `json:"message"`
	// Chain is the root→violation call path for whole-program findings
	// and for per-package findings whose enclosing function is reachable
	// from a determinism root.
	Chain []ChainStep `json:"chain,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// RunConfig configures one RunAll invocation.
type RunConfig struct {
	// Analyzers are the per-package checks to run (nil: none).
	Analyzers []*Analyzer
	// ProgramAnalyzers are the whole-program checks to run (nil: none);
	// they require Program.
	ProgramAnalyzers []*ProgramAnalyzer
	// Program is the phase-2 index. It may cover more packages than are
	// being linted (the whole module) — program findings are filtered to
	// the selected packages by position.
	Program *Program
	// Scope filters analyzers by name per package; nil means every
	// analyzer applies everywhere.
	Scope func(analyzer, pkgPath string) bool
	// DetRoot/ServeRoot classify root packages for the program
	// analyzers and for the call-chain retrofit on per-package findings.
	DetRoot   func(pkgPath string) bool
	ServeRoot func(pkgPath string) bool
	// Hygiene enables //lint:ignore directive checking (badignore,
	// unusedignore).
	Hygiene bool
}

// RunAll applies per-package and whole-program analyzers to the
// selected packages, honoring //lint:ignore suppression. Findings come
// back sorted by file/line/column/analyzer and deduplicated.
func RunAll(fset *token.FileSet, pkgs []*Package, cfg RunConfig) ([]Finding, error) {
	known := KnownAnalyzerNames()
	dirs := collectDirectives(fset, pkgs, known)
	fileToPkg := make(map[string]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fileToPkg[fset.Position(f.Pos()).Filename] = pkg.Path
		}
	}
	inScope := func(analyzer, pkgPath string) bool {
		return cfg.Scope == nil || cfg.Scope(analyzer, pkgPath)
	}

	var findings []Finding

	// Per-package analyzers.
	for _, pkg := range pkgs {
		for _, a := range cfg.Analyzers {
			if !inScope(a.Name, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if dirs.suppresses(name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: name, Position: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	// Call-chain retrofit: when the whole-program index is available,
	// per-package findings inside functions reachable from a determinism
	// root gain the root→function call path.
	if cfg.Program != nil && cfg.DetRoot != nil {
		reach := detReach(cfg.Program, cfg.DetRoot)
		for i := range findings {
			f := &findings[i]
			ff := cfg.Program.FuncAt(f.Position.Filename, f.Position.Offset)
			if ff == nil {
				continue
			}
			entry, ok := reach[ff.ID]
			if !ok || entry.Depth == 0 {
				continue
			}
			f.Chain = cfg.Program.Chain(reach, ff.ID)
			f.Message += "; call path: " + FormatChain(f.Chain)
		}
	}

	// Whole-program analyzers.
	if cfg.Program != nil {
		for _, a := range cfg.ProgramAnalyzers {
			name := a.Name
			pass := &ProgramPass{
				Analyzer:  a,
				Program:   cfg.Program,
				DetRoot:   cfg.DetRoot,
				ServeRoot: cfg.ServeRoot,
			}
			pass.Report = func(d ProgramDiagnostic) {
				pkgPath, ok := fileToPkg[d.Pos.Filename]
				if !ok {
					return // outside the selected packages
				}
				if !inScope(name, pkgPath) {
					return
				}
				if dirs.suppresses(name, d.Pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: name, Position: d.Pos, Message: d.Message, Chain: d.Chain})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
			}
		}
	}

	// Directive hygiene.
	if cfg.Hygiene {
		for _, d := range dirs.all {
			pkgPath := fileToPkg[d.pos.Filename]
			switch {
			case d.bad != "":
				findings = append(findings, Finding{
					Analyzer: BadIgnoreName,
					Position: d.pos,
					Message:  "malformed //lint:ignore directive: " + d.bad,
				})
			case !d.used && anyInScope(d.names, pkgPath, inScope):
				findings = append(findings, Finding{
					Analyzer: UnusedIgnoreName,
					Position: d.pos,
					Message: fmt.Sprintf("//lint:ignore %s directive suppresses nothing; remove it",
						strings.Join(d.names, ",")),
				})
			}
		}
	}

	sortFindings(findings)
	return dedupe(findings), nil
}

// Run is the legacy per-package entry point, kept for callers that only
// need the five syntactic analyzers.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, scope func(a *Analyzer, pkgPath string) bool) ([]Finding, error) {
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var cfgScope func(string, string) bool
	if scope != nil {
		cfgScope = func(name, pkgPath string) bool {
			a, ok := byName[name]
			return !ok || scope(a, pkgPath)
		}
	}
	return RunAll(fset, pkgs, RunConfig{Analyzers: analyzers, Scope: cfgScope})
}

func anyInScope(names []string, pkgPath string, inScope func(string, string) bool) bool {
	for _, n := range names {
		if inScope(n, pkgPath) {
			return true
		}
	}
	return false
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// dedupe collapses findings that agree on position, analyzer, and
// message (the same violation surfaced through multiple load paths).
// The input must be sorted.
func dedupe(findings []Finding) []Finding {
	out := findings[:0]
	for i, f := range findings {
		if i > 0 {
			p := out[len(out)-1]
			if p.Analyzer == f.Analyzer && p.Message == f.Message &&
				p.Position.Filename == f.Position.Filename &&
				p.Position.Line == f.Position.Line && p.Position.Column == f.Position.Column {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// detReach computes the determinism-root reachability used by the chain
// retrofit (same roots as detflow).
func detReach(p *Program, detRoot func(string) bool) map[FuncID]ReachEntry {
	var roots []FuncID
	for _, id := range p.SortedIDs() {
		f := p.Funcs[id]
		if f.Flags&FactDetRoot != 0 || detRoot(f.Pkg) {
			roots = append(roots, id)
		}
	}
	return p.Reach(roots, nil)
}

// directive is one //lint:ignore comment. A well-formed directive reads
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// and suppresses the named analyzers on its own line (trailing comment)
// and on the line immediately below (comment-above style). The reason
// is mandatory and the analyzers must be known, so suppressions stay
// auditable; malformed directives suppress nothing and are themselves
// reported when hygiene is on.
type directive struct {
	pos   token.Position
	names []string
	used  bool
	bad   string // non-empty: why the directive is malformed
}

type directiveIndex struct {
	all    []*directive
	byLine map[string]map[int][]*directive // filename -> line -> directives
}

func (ix *directiveIndex) suppresses(analyzer string, pos token.Position) bool {
	lines := ix.byLine[pos.Filename]
	hit := false
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[l] {
			if d.bad != "" {
				continue
			}
			for _, name := range d.names {
				if name == analyzer {
					d.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

func collectDirectives(fset *token.FileSet, pkgs []*Package, known map[string]bool) *directiveIndex {
	ix := &directiveIndex{byLine: make(map[string]map[int][]*directive)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					d := &directive{pos: fset.Position(c.Pos())}
					fields := strings.Fields(text)
					switch {
					case len(fields) == 0:
						d.bad = "missing analyzer name and reason"
					case len(fields) == 1:
						d.names = splitNames(fields[0])
						d.bad = "missing reason (write //lint:ignore <analyzer> <why>)"
					default:
						d.names = splitNames(fields[0])
						for _, n := range d.names {
							if !known[n] {
								d.bad = fmt.Sprintf("unknown analyzer %q", n)
								break
							}
						}
					}
					ix.all = append(ix.all, d)
					lines := ix.byLine[d.pos.Filename]
					if lines == nil {
						lines = make(map[int][]*directive)
						ix.byLine[d.pos.Filename] = lines
					}
					lines[d.pos.Line] = append(lines[d.pos.Line], d)
				}
			}
		}
	}
	return ix
}

func splitNames(s string) []string {
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}
