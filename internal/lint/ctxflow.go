package lint

import "fmt"

// CtxFlow checks the concurrent serving shell's request paths. Roots
// are HTTP-handler-shaped functions in the serve packages (plus
// //gmt:requestroot-marked functions). On everything they reach:
//
//   - context.Background()/TODO() must not be minted — the request
//     context must be threaded through (context.WithoutCancel for work
//     that legitimately outlives the request). The one sanctioned
//     exception is the `if ctx == nil { ctx = context.Background() }`
//     nil-guard default.
//   - blocking simulation entry points (//gmt:blocking) must not be
//     called while a sync.Mutex/RWMutex is held.
var CtxFlow = &ProgramAnalyzer{
	Name: "ctxflow",
	Doc: "reports dropped contexts (context.Background/TODO minted on a " +
		"request path) and blocking simulation entry points called under " +
		"a held mutex, with the offending call chain",
	Run: runCtxFlow,
}

func runCtxFlow(pass *ProgramPass) error {
	p := pass.Program
	var roots []FuncID
	for _, id := range p.SortedIDs() {
		f := p.Funcs[id]
		if f.Flags&FactRequestRoot != 0 ||
			(f.ReqRoot && pass.ServeRoot != nil && pass.ServeRoot(f.Pkg)) {
			roots = append(roots, id)
		}
	}
	reach := p.Reach(roots, nil)
	closure := p.Closure()
	for _, id := range p.SortedIDs() {
		if _, ok := reach[id]; !ok {
			continue
		}
		f := p.Funcs[id]
		chain := p.Chain(reach, id)
		for _, m := range f.Mints {
			if m.Guarded {
				continue
			}
			advice := "thread the request context through instead"
			if f.HasCtx {
				advice = "the function already receives a context.Context — pass it on " +
					"(context.WithoutCancel for work that outlives the request)"
			}
			pass.Report(ProgramDiagnostic{
				Pos: m.Pos,
				Message: fmt.Sprintf("%s on a request path; %s; call path: %s",
					m.Msg, advice, FormatChain(chain)),
				Chain: chain,
			})
		}
		for _, e := range f.Calls {
			if !e.Locked {
				continue
			}
			for _, calleeID := range p.Callees(e) {
				if closure[calleeID]&FactBlocking == 0 {
					continue
				}
				pass.Report(ProgramDiagnostic{
					Pos: e.Pos,
					Message: fmt.Sprintf("blocking simulation entry point %s called while holding a mutex "+
						"on a request path; release the lock before running simulations; call path: %s",
						p.Funcs[calleeID].Name, FormatChain(chain)),
					Chain: chain,
				})
				break
			}
		}
	}
	return nil
}
