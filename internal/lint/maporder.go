package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags order-sensitive work performed while iterating a map.
// Go randomizes map iteration order, so a body that appends to a slice,
// schedules a simulation event, or accumulates floating-point state
// (whose addition is not associative) produces run-to-run differences —
// the exact class of bug that silently breaks seed-reproducible replay.
//
// The canonical safe pattern — collecting the keys and sorting them
// before use — is recognized: an append whose target is later passed to
// a sort call in the same function is not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag appends, event scheduling, and floating-point accumulation inside " +
		"map iteration without a subsequent sort; map order is nondeterministic",
	Run: runMapOrder,
}

// scheduleNames are method names treated as event scheduling. They match
// sim.Engine's API; any same-named method is close enough to deserve a
// look (suppress with //lint:ignore when a false positive).
var scheduleNames = map[string]bool{
	"After": true, "At": true, "Schedule": true,
	// The typed zero-allocation scheduling path added with the pooled
	// event engine.
	"AfterCall": true, "AtCall": true,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			reported := make(map[token.Pos]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(pass.Info.TypeOf(rng.X)) {
					return true
				}
				checkMapRangeBody(pass, fn.Body, rng, reported)
				return true
			})
		}
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody walks one map-range body reporting the three
// order-sensitive operation kinds.
func checkMapRangeBody(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, reported map[token.Pos]bool) {
	report := func(pos token.Pos, msg string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, msg)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if isBuiltinAppend(pass.Info, fun) && len(n.Args) > 0 {
					target := rootIdent(n.Args[0])
					if target != nil && sortedAfter(fnBody, rng.End(), target.Name) {
						return true
					}
					name := "slice"
					if target != nil {
						name = target.Name
					}
					report(n.Pos(), fmt.Sprintf(
						"append to %s inside map iteration: element order follows the map's "+
							"randomized order; sort the keys first or sort the result", name))
				}
			case *ast.SelectorExpr:
				if scheduleNames[fun.Sel.Name] {
					report(n.Pos(), fmt.Sprintf(
						"%s call inside map iteration schedules events in the map's randomized "+
							"order; iterate a sorted key slice instead", fun.Sel.Name))
				}
			}
		case *ast.AssignStmt:
			checkFloatAccumulation(pass, n, report)
		}
		return true
	})
}

// checkFloatAccumulation flags x += f and x = x + f forms where x is a
// float: float addition is not associative, so the sum depends on map
// order.
func checkFloatAccumulation(pass *Pass, n *ast.AssignStmt, report func(token.Pos, string)) {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return
	}
	if !isFloat(pass.Info.TypeOf(n.Lhs[0])) {
		return
	}
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		report(n.Pos(), "floating-point accumulation inside map iteration: float arithmetic is "+
			"not associative, so the result depends on map order; iterate a sorted key slice")
	case token.ASSIGN:
		lhs, ok := n.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		bin, ok := n.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return
		}
		if identNamed(bin.X, lhs.Name) || identNamed(bin.Y, lhs.Name) {
			report(n.Pos(), "floating-point accumulation inside map iteration: float arithmetic is "+
				"not associative, so the result depends on map order; iterate a sorted key slice")
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func identNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isBuiltinAppend(info *types.Info, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdent unwraps selectors, indexes, stars, and parens down to the
// leftmost identifier of an lvalue expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, somewhere after pos in the enclosing
// function body, target is passed to (or receives) a sort call — the
// collect-then-sort idiom that makes an in-range append deterministic.
func sortedAfter(fnBody *ast.BlockStmt, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if isSortCall(call, target) {
			found = true
			return false
		}
		return true
	})
	return found
}

var sortFuncNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true, "Ints": true, "Strings": true, "Float64s": true,
}

func isSortCall(call *ast.CallExpr, target string) bool {
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		// target.Sort() style.
		if identNamed(fun.X, target) && strings.Contains(name, "Sort") {
			return true
		}
	case *ast.Ident:
		name = fun.Name
	}
	if !sortFuncNames[name] && !strings.Contains(name, "Sort") {
		return false
	}
	for _, arg := range call.Args {
		if mentionsIdent(arg, target) {
			return true
		}
	}
	return false
}

func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
