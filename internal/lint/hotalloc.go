package lint

import "fmt"

// HotAlloc turns the runtime 0-allocs/op benchmark gates into a static
// check. Roots are //gmt:hotpath-marked functions; traversal follows
// only static call edges (function-value and interface dispatch on a
// hot path is a separate problem the alloc gates catch dynamically) and
// stops at //gmt:coldpath barriers — amortized slow paths like arena
// growth or miss handling. Every allocation site in the remaining
// reachable set is reported with its root→site chain: capturing
// closures, make/new, slice and map literals, address-taken composite
// literals, appends to function-local slices, and interface boxing.
var HotAlloc = &ProgramAnalyzer{
	Name: "hotalloc",
	Doc: "reports allocation sites statically reachable from " +
		"//gmt:hotpath functions gated at 0 allocs/op, excluding " +
		"//gmt:coldpath slow paths",
	Run: runHotAlloc,
}

func runHotAlloc(pass *ProgramPass) error {
	p := pass.Program
	var roots []FuncID
	for _, id := range p.SortedIDs() {
		if p.Funcs[id].Flags&FactHot != 0 {
			roots = append(roots, id)
		}
	}
	reach := p.Reach(roots, func(e Edge, callee *FuncFacts) bool {
		return e.Kind == EdgeStatic && callee.Flags&FactCold == 0
	})
	for _, id := range p.SortedIDs() {
		if _, ok := reach[id]; !ok {
			continue
		}
		f := p.Funcs[id]
		chain := p.Chain(reach, id)
		for _, a := range f.Allocs {
			pass.Report(ProgramDiagnostic{
				Pos: a.Pos,
				Message: fmt.Sprintf("%s on a 0-allocs/op hot path; call path: %s",
					a.Msg, FormatChain(chain)),
				Chain: chain,
			})
		}
	}
	return nil
}
