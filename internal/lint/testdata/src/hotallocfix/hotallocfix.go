// Package hotallocfix exercises hotalloc: every allocation kind on a
// path statically reachable from a //gmt:hotpath root, plus the two
// exemptions (amortized field append, //gmt:coldpath barrier).
package hotallocfix

type pair struct{ a, b int }

type engine struct {
	buf []int
}

// Field appends grow long-lived storage amortized — exempt.
//
//gmt:hotpath
func (e *engine) Step(x int) {
	e.buf = append(e.buf, x)
	work(x)
	slow()
}

func work(x int) {
	m := make([]int, x)          // want `make allocates on a 0-allocs/op hot path; call path: hotallocfix\.\(\*engine\)\.Step → hotallocfix\.work`
	var local []int              //
	local = append(local, x)     // want `append to function-local slice local allocates per call on a 0-allocs/op hot path`
	f := func() int { return x } // want `capturing closure allocates its environment on a 0-allocs/op hot path`
	p := &pair{a: x}             // want `&pair composite literal allocates on a 0-allocs/op hot path`
	sink(x)                      // want `interface boxing: int value converted to interface\{\} allocates on a 0-allocs/op hot path`
	_, _, _, _ = m, local, f, p
}

func sink(v interface{}) { _ = v }

// Amortized growth: allocations behind a coldpath barrier are exempt.
//
//gmt:coldpath
func slow() {
	_ = make([]int, 64)
}
