// Package dethelper is the taint side of the detflow paired fixture:
// per-package analyzers scoped to the root package cannot see these
// sites, but whole-program propagation reports them with the chain.
package dethelper

import (
	"math/rand"
	"time"
)

// Source is dispatched through an interface in the root package.
type Source interface {
	Refresh()
}

// Timer is the one concrete Source in the program.
type Timer struct{}

func (Timer) Refresh() {
	go func() {}() // want `go statement \(goroutine spawn\) is reachable from deterministic simulation code; call path: detroot\.Spawn → dethelper\.\(Timer\)\.Refresh`
}

func Stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock call time\.Now is reachable from deterministic simulation code; call path: detroot\.Tick → dethelper\.Stamp`
}

func Draw() float64 {
	return rand.Float64() // want `global-stream call rand\.Float64 is reachable from deterministic simulation code; call path: detroot\.Sample → dethelper\.Draw`
}

// Pure is deterministic: no findings anywhere on its chain.
func Pure(x int) int {
	return x * x
}
