// Package suppressed exercises //lint:ignore handling: a directive with
// a reason suppresses the named analyzer on its own line and the line
// below; a directive without a reason is inert.
package suppressed

import "math/rand"

//lint:ignore noglobalrand fixture exercises suppression
var suppressedAbove = rand.Int63()

var suppressedTrailing = rand.Int63() //lint:ignore noglobalrand fixture exercises suppression

//lint:ignore noglobalrand
var reasonMissing = rand.Int63()

var unsuppressed = rand.Int63()
