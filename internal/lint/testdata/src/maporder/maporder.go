// Package maporder exercises the maporder analyzer: order-sensitive
// work inside map iteration is flagged unless the collect-then-sort
// idiom is used.
package maporder

import "sort"

type engine struct{}

func (engine) After(d int64, fn func())                          {}
func (engine) AfterCall(d int64, call func(any, int64), ctx any) {}

func badAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append to out inside map iteration`
	}
	return out
}

func badSchedule(m map[int]int, eng engine) {
	for range m {
		eng.After(1, func() {}) // want `After call inside map iteration`
	}
}

func badScheduleTyped(m map[int]int, eng engine) {
	for range m {
		eng.AfterCall(1, nil, nil) // want `AfterCall call inside map iteration`
	}
}

func badFloatCompound(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation inside map iteration`
	}
	return total
}

func badFloatRebind(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation inside map iteration`
	}
	return total
}

func goodSortedKeys(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort: not flagged
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func goodIntCounter(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v // integer accumulation is order-independent
	}
	return n
}

func goodSliceRange(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v // slice iteration order is defined
	}
	return total
}
