// Package nogoroutine exercises the nogoroutine analyzer: goroutines
// and channel operations are flagged in simulator packages.
package nogoroutine

func bad(ch chan int) {
	go func() {}() // want `go statement in simulator code`
	ch <- 1        // want `channel send in simulator code`
	_ = <-ch       // want `channel receive in simulator code`
	select {       // want `select statement in simulator code`
	default:
	}
	for range ch { // want `range over channel in simulator code`
	}
}

func good(events []func()) {
	// Callback-driven code is the sanctioned concurrency model.
	for _, fn := range events {
		fn()
	}
}
