// Package noglobalrand exercises the noglobalrand analyzer: the global
// stream's convenience functions are flagged; injected seeded streams
// are not.
package noglobalrand

import "math/rand"

func bad() {
	_ = rand.Intn(10)    // want `rand\.Intn draws from the process-global stream`
	_ = rand.Float64()   // want `rand\.Float64 draws from the process-global stream`
	_ = rand.Int63()     // want `rand\.Int63 draws from the process-global stream`
	_ = rand.Perm(4)     // want `rand\.Perm draws from the process-global stream`
	rand.Seed(42)        // want `rand\.Seed draws from the process-global stream`
	f := rand.ExpFloat64 // want `rand\.ExpFloat64 draws from the process-global stream`
	_ = f
}

func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Float64()
	z := rand.NewZipf(rng, 1.1, 1, 100)
	_ = z.Uint64()
	return rng.Intn(10)
}
