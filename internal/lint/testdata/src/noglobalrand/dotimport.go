package noglobalrand

import . "math/rand"

// Dot-imports turn qualified calls into bare identifiers; matching is
// object-based, so they are still flagged. Constructor calls for
// injected streams stay exempt even when dot-imported.
func dotted() int {
	rng := New(NewSource(7))
	_ = Float64()                  // want `rand\.Float64 draws from the process-global stream`
	return Intn(10) + rng.Intn(10) // want `rand\.Intn draws from the process-global stream`
}
