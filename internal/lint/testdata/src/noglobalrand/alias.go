package noglobalrand

import mrand "math/rand"

// Aliased imports must not hide global-stream draws.
func aliased() float64 {
	_ = mrand.Intn(3)      // want `rand\.Intn draws from the process-global stream`
	return mrand.Float64() // want `rand\.Float64 draws from the process-global stream`
}
