// Package ctxroot exercises ctxflow: context mints and under-mutex
// blocking calls on paths reachable from a request root.
package ctxroot

import (
	"context"
	"sync"
)

var mu sync.Mutex

//gmt:requestroot
func Handle(ctx context.Context) {
	defaulted(nil)
	drop()
	relay(ctx)
	locked()
	unlocked()
	branchy(true)
}

// The sanctioned nil-guard default: callers that pass a context keep
// it; only a nil caller gets Background. No finding.
func defaulted(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	_ = ctx
}

// Minting with no context in scope.
func drop() {
	ctx := context.Background() // want `context\.Background\(\) minted on a request path; thread the request context through instead; call path: ctxroot\.Handle → ctxroot\.drop`
	_ = ctx
}

// Minting while a context parameter is right there.
func relay(ctx context.Context) {
	ctx2 := context.TODO() // want `context\.TODO\(\) minted on a request path; the function already receives a context\.Context — pass it on \(context\.WithoutCancel for work that outlives the request\); call path: ctxroot\.Handle → ctxroot\.relay`
	_ = ctx
	_ = ctx2
}

// A blocking simulation entry point.
//
//gmt:blocking
func RunSim() {}

func locked() {
	mu.Lock()
	RunSim() // want `blocking simulation entry point RunSim called while holding a mutex on a request path; release the lock before running simulations; call path: ctxroot\.Handle → ctxroot\.locked`
	mu.Unlock()
}

// Lock fully released before the blocking call: clean.
func unlocked() {
	mu.Lock()
	mu.Unlock()
	RunSim()
}

// Early-unlock-and-return branch: by the time RunSim runs, every
// surviving path has released the lock. Clean.
func branchy(x bool) {
	mu.Lock()
	if x {
		mu.Unlock()
		return
	}
	mu.Unlock()
	RunSim()
}
