// Package hotclosure exercises the hotclosure analyzer: closure-based
// Engine.At/Engine.After calls are flagged; the typed AtCall/AfterCall
// variants and same-named methods on other receivers are not.
package hotclosure

type Time int64

// Engine mimics the simulator engine's scheduling surface; the analyzer
// matches on the named receiver type, so a local double suffices.
type Engine struct{}

func (e *Engine) At(t Time, fn func())                                    {}
func (e *Engine) After(d Time, fn func())                                 {}
func (e *Engine) AtCall(t Time, fn func(any, int64), ctx any, a int64)    {}
func (e *Engine) AfterCall(d Time, fn func(any, int64), ctx any, a int64) {}

// Scheduler is the negative case: At/After on a non-Engine receiver are
// someone else's API and stay allowed.
type Scheduler struct{}

func (s *Scheduler) At(t Time, fn func())    {}
func (s *Scheduler) After(d Time, fn func()) {}

func tick(ctx any, _ int64) {}

func bad(e *Engine) {
	e.At(10, func() {})    // want `closure-based Engine\.At in hot simulator code; use Engine\.AtCall`
	e.After(10, func() {}) // want `closure-based Engine\.After in hot simulator code; use Engine\.AfterCall`
}

func good(e *Engine, s *Scheduler) {
	e.AtCall(10, tick, nil, 0)
	e.AfterCall(10, tick, nil, 0)
	s.At(10, func() {})
	s.After(10, func() {})
}
