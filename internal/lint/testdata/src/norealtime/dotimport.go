package norealtime

import . "time"

// Dot-imports turn qualified calls into bare identifiers; matching is
// object-based, so they are still flagged.
func dotted() Duration {
	start := Now()      // want `wall-clock call time\.Now`
	Sleep(1)            // want `wall-clock call time\.Sleep`
	return Since(start) // want `wall-clock call time\.Since`
}
