// Package norealtime exercises the norealtime analyzer: wall-clock
// reads and waits are flagged; pure duration arithmetic is not.
package norealtime

import "time"

func bad() time.Duration {
	time.Sleep(time.Millisecond) // want `wall-clock call time\.Sleep`
	t := time.Now()              // want `wall-clock call time\.Now`
	tick := time.Tick(1)         // want `wall-clock call time\.Tick`
	_ = tick
	_ = time.Until(t)    // want `wall-clock call time\.Until`
	return time.Since(t) // want `wall-clock call time\.Since`
}

func good(d time.Duration) time.Duration {
	// Conversions and constants carry no wall-clock dependence.
	virtual := int64(d) + int64(5*time.Millisecond)
	return time.Duration(virtual)
}
