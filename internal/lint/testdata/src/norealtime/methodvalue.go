package norealtime

import "time"

// A function-value reference smuggles the wall clock just as well as a
// direct call.
func methodValue() time.Time {
	f := time.Now // want `wall-clock call time\.Now`
	return f()
}
