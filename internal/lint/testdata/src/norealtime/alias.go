package norealtime

import t "time"

// Aliased imports must not hide wall-clock calls.
func aliased() t.Time {
	t.Sleep(t.Millisecond) // want `wall-clock call time\.Sleep`
	return t.Now()         // want `wall-clock call time\.Now`
}
