// Package hygiene exercises //lint:ignore directive hygiene: a
// well-formed directive suppresses; a reasonless or unknown-analyzer
// directive is inert and reported by badignore; a directive that
// suppresses nothing is reported by unusedignore.
package hygiene

import (
	"math/rand"
	"time"
)

// Well-formed and load-bearing: suppresses, no hygiene finding.
func ok() int {
	//lint:ignore noglobalrand fixture helper; determinism is irrelevant here
	return rand.Intn(3)
}

// Missing reason: inert, the finding survives, badignore fires.
func reasonless() time.Time {
	//lint:ignore norealtime
	return time.Now()
}

// Unknown analyzer name: inert, the finding survives, badignore fires.
func unknown() time.Time {
	//lint:ignore notananalyzer the analyzer was renamed out from under this
	return time.Now()
}

// Stale: well-formed but suppresses nothing, unusedignore fires.
func stale() int {
	//lint:ignore norealtime leftover from a removed time.Now call
	return 1
}
