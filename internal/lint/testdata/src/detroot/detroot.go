// Package detroot is the root side of the detflow paired fixture: it is
// itself clean — per-package norealtime/noglobalrand find nothing here —
// but every root reaches taint in the dethelper package one hop away.
package detroot

import "dethelper"

// Direct cross-package call chain.
//
//gmt:detroot
func Tick() int64 {
	return dethelper.Stamp()
}

// Chain through a function value: the reference is an edge even though
// the call happens through a local variable.
//
//gmt:detroot
func Sample() float64 {
	f := dethelper.Draw
	return f()
}

// Chain through an interface method: resolved against every concrete
// implementation in the program (here, dethelper.Timer).
//
//gmt:detroot
func Spawn(s dethelper.Source) {
	s.Refresh()
}

// Clean root: calling a clean helper produces nothing.
//
//gmt:detroot
func Quiet() int {
	return dethelper.Pure(2)
}
