package lint_test

import (
	"strings"
	"testing"

	"github.com/gmtsim/gmt/internal/lint"
	"github.com/gmtsim/gmt/internal/lint/linttest"
)

// TestDetFlow checks the three cross-package propagation shapes against
// the detroot/dethelper fixture pair: a direct call, a function-value
// reference, and an interface method dispatch, each reported with the
// full root→violation chain.
func TestDetFlow(t *testing.T) {
	linttest.RunProgram(t, "testdata",
		[]*lint.ProgramAnalyzer{lint.DetFlow}, "detroot")
}

func TestCtxFlow(t *testing.T) {
	linttest.RunProgram(t, "testdata",
		[]*lint.ProgramAnalyzer{lint.CtxFlow}, "ctxroot")
}

func TestHotAlloc(t *testing.T) {
	linttest.RunProgram(t, "testdata",
		[]*lint.ProgramAnalyzer{lint.HotAlloc}, "hotallocfix")
}

// TestDetFlowCatchesWhatPerPackageMisses is the paired blind-spot test:
// the per-package analyzers, scoped to the root package exactly as the
// phase-1-only linter ran them, find nothing in detroot — every
// violation is one call hop away in dethelper. The whole-program pass
// over the same code reports all three, with chains rooted in detroot.
func TestDetFlowCatchesWhatPerPackageMisses(t *testing.T) {
	fset, pkgs := linttest.LoadProgram(t, "testdata", "detroot", "dethelper")
	var root *lint.Package
	for _, p := range pkgs {
		if p.Path == "detroot" {
			root = p
		}
	}
	perPkg, err := lint.Run(fset, []*lint.Package{root}, lint.All(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(perPkg) != 0 {
		t.Fatalf("per-package analyzers should be blind to cross-package taint, got %v", perPkg)
	}
	program := linttest.Facts(fset, pkgs)
	findings, err := lint.RunAll(fset, pkgs, lint.RunConfig{
		ProgramAnalyzers: []*lint.ProgramAnalyzer{lint.DetFlow},
		Program:          program,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("want 3 cross-package findings, got %d: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "detflow" {
			t.Errorf("unexpected analyzer %q", f.Analyzer)
		}
		if len(f.Chain) < 2 {
			t.Errorf("finding at %s has no multi-hop chain: %v", f.Position, f.Chain)
			continue
		}
		if !strings.HasPrefix(f.Chain[0].Name, "detroot.") {
			t.Errorf("chain should be rooted in detroot, got %q", f.Chain[0].Name)
		}
		if f.Chain[0].File == "" || f.Chain[0].Line == 0 {
			t.Errorf("chain step missing position: %+v", f.Chain[0])
		}
	}
}

// TestHygiene checks //lint:ignore hygiene through RunAll: reasonless
// and unknown-analyzer directives are inert (the underlying finding
// survives) and reported by badignore; a well-formed directive that
// suppresses nothing is reported by unusedignore.
func TestHygiene(t *testing.T) {
	fset, pkg := linttest.Load(t, "testdata", "hygiene")
	findings, err := lint.RunAll(fset, []*lint.Package{pkg}, lint.RunConfig{
		Analyzers: lint.All(),
		Hygiene:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, f := range findings {
		got[f.Analyzer]++
	}
	want := map[string]int{
		lint.BadIgnoreName:    2, // reasonless + unknown analyzer
		"norealtime":          2, // the findings those inert directives failed to suppress
		lint.UnusedIgnoreName: 1, // the stale directive
	}
	for a, n := range want {
		if got[a] != n {
			t.Errorf("want %d %s finding(s), got %d (all: %v)", n, a, got[a], findings)
		}
	}
	if len(findings) != 5 {
		t.Errorf("want 5 findings total, got %d: %v", len(findings), findings)
	}
	var sawMissingReason, sawUnknown bool
	for _, f := range findings {
		if f.Analyzer != lint.BadIgnoreName {
			continue
		}
		if strings.Contains(f.Message, "missing reason") {
			sawMissingReason = true
		}
		if strings.Contains(f.Message, "unknown analyzer") {
			sawUnknown = true
		}
	}
	if !sawMissingReason || !sawUnknown {
		t.Errorf("badignore should distinguish missing-reason from unknown-analyzer: %v", findings)
	}
}
