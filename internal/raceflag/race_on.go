//go:build race

// Package raceflag reports whether the race detector is compiled in.
// Allocation-gate tests skip under -race: instrumentation changes
// allocation behavior, and the gates police the default build.
package raceflag

// Enabled reports whether the build is race-instrumented.
const Enabled = true
