//go:build !race

package raceflag

// Enabled reports whether the build is race-instrumented.
const Enabled = false
