package gpu

import (
	"testing"

	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// countingManager records forwarded accesses.
type countingManager struct {
	accesses []Access
}

func (m *countingManager) Access(a Access, done func()) {
	m.accesses = append(m.accesses, a)
	done()
}

func TestCacheAbsorbsRepeatTouches(t *testing.T) {
	eng := sim.NewEngine()
	inner := &countingManager{}
	c := NewCache(eng, CacheConfig{Sets: 4, Ways: 2, HitLatency: 1}, inner)
	trace := []Access{{Page: 1}, {Page: 1}, {Page: 1}, {Page: 2}, {Page: 1}}
	g := New(eng, Config{Warps: 1, ComputePerAccess: 1}, &SliceStream{Trace: trace}, c)
	g.Launch()
	eng.Run()
	if len(inner.accesses) != 2 { // pages 1 and 2, once each
		t.Fatalf("inner saw %d accesses, want 2: %v", len(inner.accesses), inner.accesses)
	}
	if c.Hits() != 3 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	eng := sim.NewEngine()
	inner := &countingManager{}
	// One set, 2 ways: pages 0, 4, 8 (all map to set 0 with 4 sets).
	c := NewCache(eng, CacheConfig{Sets: 4, Ways: 2, HitLatency: 1}, inner)
	trace := []Access{
		{Page: 0}, {Page: 4}, // fill both ways
		{Page: 0}, // touch 0: now 4 is LRU
		{Page: 8}, // evicts 4
		{Page: 0}, // still cached
		{Page: 4}, // miss again
	}
	g := New(eng, Config{Warps: 1, ComputePerAccess: 1}, &SliceStream{Trace: trace}, c)
	g.Launch()
	eng.Run()
	if c.Misses() != 4 { // 0, 4, 8, 4
		t.Fatalf("misses = %d, want 4", c.Misses())
	}
	if c.Hits() != 2 {
		t.Fatalf("hits = %d, want 2", c.Hits())
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	eng := sim.NewEngine()
	inner := &countingManager{}
	c := NewCache(eng, CacheConfig{Sets: 1, Ways: 1, HitLatency: 1}, inner)
	trace := []Access{
		{Page: 0, Write: true}, // dirty line
		{Page: 1},              // evicts 0: must write back
	}
	g := New(eng, Config{Warps: 1, ComputePerAccess: 1}, &SliceStream{Trace: trace}, c)
	g.Launch()
	eng.Run()
	if c.Writebacks() != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks())
	}
	// Inner saw: fill(0,W), fill(1), writeback(0,W).
	found := false
	for _, a := range inner.accesses[1:] {
		if a.Page == 0 && a.Write {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty page never written back: %v", inner.accesses)
	}
}

func TestCacheWriteHitMarksDirty(t *testing.T) {
	eng := sim.NewEngine()
	inner := &countingManager{}
	c := NewCache(eng, CacheConfig{Sets: 1, Ways: 1, HitLatency: 1}, inner)
	trace := []Access{
		{Page: 0},              // clean fill
		{Page: 0, Write: true}, // write hit dirties the line
		{Page: 1},              // eviction must write back
	}
	g := New(eng, Config{Warps: 1, ComputePerAccess: 1}, &SliceStream{Trace: trace}, c)
	g.Launch()
	eng.Run()
	if c.Writebacks() != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks())
	}
}

func TestCacheReducesRuntimePressure(t *testing.T) {
	// A stencil-like trace with tight reuse: the cache should absorb
	// the bulk of accesses before they reach the tiering layer.
	var trace []Access
	for p := tier.PageID(0); p < 200; p++ {
		trace = append(trace, Access{Page: p})
		if p >= 2 {
			trace = append(trace, Access{Page: p - 1}, Access{Page: p - 2})
		}
	}
	eng := sim.NewEngine()
	inner := &countingManager{}
	c := NewCache(eng, DefaultCacheConfig(), inner)
	g := New(eng, Config{Warps: 4, ComputePerAccess: 1}, &SliceStream{Trace: trace}, c)
	g.Launch()
	eng.Run()
	if int64(len(inner.accesses)) > c.Hits() {
		t.Fatalf("cache absorbed too little: %d forwarded vs %d hits",
			len(inner.accesses), c.Hits())
	}
}

func TestCacheValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-way cache did not panic")
		}
	}()
	NewCache(sim.NewEngine(), CacheConfig{Sets: 1}, &countingManager{})
}
