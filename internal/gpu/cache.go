package gpu

import (
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// CacheConfig sizes a page-granular model of the GPU's L2 cache. The
// cache sits between warps and the tiering runtime and absorbs repeat
// touches of recently used pages — the effect the paper's DynaMap
// citation [9] exploits ("pages whose spatial locality can be fulfilled
// by the GPU caches alone"). The workload generators already fold
// warp-level coalescing into their traces, so experiments run without
// it; it is available for library users who feed raw traces.
type CacheConfig struct {
	// Sets and Ways give a set-associative geometry over page IDs;
	// capacity is Sets*Ways pages.
	Sets, Ways int
	// HitLatency is the service time of a cache hit.
	HitLatency sim.Time
}

// DefaultCacheConfig models an A100-class 40 MB L2 at page granularity:
// 640 pages, 16-way.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{Sets: 40, Ways: 16, HitLatency: 200 * sim.Nanosecond}
}

type cacheLine struct {
	page  tier.PageID
	dirty bool
	// lru is a per-set sequence number; higher = more recent.
	lru int64
}

// Cache is a write-back, page-granular L2 model decorating another
// MemoryManager. Dirty line evictions forward a write access to the
// inner manager so page dirty-tracking stays correct.
type Cache struct {
	eng   *sim.Engine
	cfg   CacheConfig
	inner MemoryManager
	sets  [][]cacheLine
	tick  int64

	hits, misses int64
	writebacks   int64
}

var _ MemoryManager = (*Cache)(nil)

// NewCache wraps inner with an L2 model.
func NewCache(eng *sim.Engine, cfg CacheConfig, inner MemoryManager) *Cache {
	if cfg.Sets < 1 || cfg.Ways < 1 {
		panic("gpu: cache needs at least one set and way")
	}
	return &Cache{
		eng:   eng,
		cfg:   cfg,
		inner: inner,
		sets:  make([][]cacheLine, cfg.Sets),
	}
}

// Access implements MemoryManager.
func (c *Cache) Access(a Access, done func()) {
	c.tick++
	si := int(int64(a.Page) % int64(c.cfg.Sets))
	if si < 0 {
		si += c.cfg.Sets
	}
	set := c.sets[si]
	for i := range set {
		if set[i].page == a.Page {
			c.hits++
			set[i].lru = c.tick
			if a.Write {
				set[i].dirty = true
			}
			c.eng.AfterCall(c.cfg.HitLatency, sim.CallFunc, done, 0)
			return
		}
	}
	c.misses++
	// Fill: the inner manager resolves the page; the line is installed
	// when data arrives, possibly writing back a dirty victim.
	c.inner.Access(a, func() {
		c.install(si, a)
		done()
	})
}

func (c *Cache) install(si int, a Access) {
	set := c.sets[si]
	if len(set) < c.cfg.Ways {
		c.sets[si] = append(set, cacheLine{page: a.Page, dirty: a.Write, lru: c.tick})
		return
	}
	victim := 0
	for i := range set {
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].dirty {
		c.writebacks++
		// The dirty page data returns to the memory system; the inner
		// manager sees it as a write access (usually a Tier-1 hit).
		c.inner.Access(Access{Page: set[victim].page, Write: true}, func() {})
	}
	set[victim] = cacheLine{page: a.Page, dirty: a.Write, lru: c.tick}
}

// Hits reports cache hits.
func (c *Cache) Hits() int64 { return c.hits }

// Misses reports cache misses (accesses forwarded to the inner manager).
func (c *Cache) Misses() int64 { return c.misses }

// Writebacks reports dirty-line evictions forwarded as writes.
func (c *Cache) Writebacks() int64 { return c.writebacks }
