package gpu

import (
	"testing"

	"github.com/gmtsim/gmt/internal/invariant"
	"github.com/gmtsim/gmt/internal/raceflag"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// stormStream is an endless barrier-heavy workload: every warp gets one
// resident access per cycle, then the whole grid synchronizes. It is the
// worst case for barrier bookkeeping — the rendezvous fires once per
// compute quantum — and the steady state must not allocate.
type stormStream struct {
	i     int
	warps int
}

func (s *stormStream) Next() (Access, bool) {
	s.i++
	if s.i%(s.warps+1) == 0 {
		return Barrier, true
	}
	return Access{Page: tier.PageID(s.i % 128)}, true
}

// stormWindow is the virtual time one benchmark iteration advances: with
// ComputePerAccess = 100ns every window completes ~100 barriers.
const stormWindow = 10_000 * sim.Nanosecond

func newStorm(warps int) (*sim.Engine, *GPU) {
	eng := sim.NewEngine()
	g := New(eng, Config{Warps: warps, ComputePerAccess: 100 * sim.Nanosecond},
		&stormStream{warps: warps}, ResidentManager{})
	g.Launch()
	eng.RunUntil(stormWindow) // reach steady state before measuring
	return eng, g
}

// BenchmarkBarrierStorm measures the steady-state cost of kernel-wide
// barriers: 64 warps hitting a grid sync every compute quantum. The
// batch release (one event re-stepping arrivals in order, instead of one
// queue entry per warp) is what keeps this path allocation-free; the
// paired TestBarrierStormAllocGate is the CI gate.
func BenchmarkBarrierStorm(b *testing.B) {
	eng, g := newStorm(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunUntil(eng.Now() + stormWindow)
	}
	b.StopTimer()
	if g.Barriers() == 0 {
		b.Fatal("storm completed no barriers")
	}
}

// TestBarrierStormAllocGate pins the barrier rendezvous/release cycle at
// zero steady-state allocations: parked/releasing ping-pong buffers never
// grow past Launch, and the release event rides the engine's free-listed
// record arena.
func TestBarrierStormAllocGate(t *testing.T) {
	if raceflag.Enabled || invariant.Enabled {
		t.Skip("allocation gates run on the default build only")
	}
	eng, g := newStorm(64)
	before := g.Barriers()
	n := testing.AllocsPerRun(100, func() {
		eng.RunUntil(eng.Now() + stormWindow)
	})
	if n != 0 {
		t.Errorf("steady-state barrier storm = %.1f allocs/op, want 0", n)
	}
	if g.Barriers() == before {
		t.Fatal("storm completed no barriers while gating")
	}
}

// asyncOnly hides a manager's AccessSync so the GPU takes the classic
// callback path. Running the same workload through both faces of the
// same manager is the executable form of the fast-path equivalence
// argument (HACKING.md, "Scheduler determinism contract").
type asyncOnly struct{ mm MemoryManager }

func (a asyncOnly) Access(ac Access, done func()) { a.mm.Access(ac, done) }

// mixedManager resolves even pages synchronously and odd pages after a
// page-dependent latency, so hit streaks, misses, and barrier arrivals
// interleave in a nontrivial order.
type mixedManager struct{ eng *sim.Engine }

func (m mixedManager) Access(a Access, done func()) {
	if !m.AccessSync(a, done) {
		return
	}
	done()
}

func (m mixedManager) AccessSync(a Access, done func()) bool {
	if a.Page%2 == 0 {
		return true
	}
	m.eng.After(sim.Time(100+a.Page%7*300), done)
	return false
}

// barrierMixTrace interleaves accesses and grid syncs: phases of 2×warps
// accesses separated by barriers.
func barrierMixTrace(warps, phases int) []Access {
	var tr []Access
	p := tier.PageID(0)
	for k := 0; k < phases; k++ {
		for i := 0; i < 2*warps; i++ {
			tr = append(tr, Access{Page: p})
			p++
		}
		tr = append(tr, Barrier)
	}
	return tr
}

// TestFastPathMatchesQueuedPath runs a barrier-heavy mixed-latency
// workload once with the synchronous fast path and once with it hidden;
// wall time and every GPU-side metric must agree. This exercises the
// streak-breaking rule (a tied event must win the FIFO tie-break over an
// inline advance) and the batching flag that pins the fast path off
// while a barrier release batch is mid-flight.
func TestFastPathMatchesQueuedPath(t *testing.T) {
	run := func(hide bool) (sim.Time, int64, int64, sim.Time, sim.Time) {
		eng := sim.NewEngine()
		var mm MemoryManager = mixedManager{eng}
		if hide {
			mm = asyncOnly{mm}
		}
		g := New(eng, Config{Warps: 8, ComputePerAccess: 50 * sim.Nanosecond},
			&SliceStream{Trace: barrierMixTrace(8, 5)}, mm)
		g.Launch()
		eng.Run()
		if !g.Done() {
			t.Fatal("kernel did not finish")
		}
		return eng.Now(), g.Accesses(), g.Barriers(), g.StallTime(), g.ComputeTime()
	}
	fnow, facc, fbar, fstall, fcomp := run(false)
	qnow, qacc, qbar, qstall, qcomp := run(true)
	if fnow != qnow {
		t.Errorf("wall time: fast path %d, queued path %d", fnow, qnow)
	}
	if facc != qacc || fbar != qbar {
		t.Errorf("accesses/barriers: fast %d/%d, queued %d/%d", facc, fbar, qacc, qbar)
	}
	if fstall != qstall || fcomp != qcomp {
		t.Errorf("stall/compute: fast %d/%d, queued %d/%d", fstall, fcomp, qstall, qcomp)
	}
}

// TestBarrierReleaseDeterministic pins the batch release to a single
// reproducible schedule: two identical storm runs must dispatch the same
// number of events and land on the same clock.
func TestBarrierReleaseDeterministic(t *testing.T) {
	run := func() (sim.Time, int64, int64) {
		eng, g := newStorm(16)
		eng.RunUntil(eng.Now() + 50*stormWindow)
		return eng.Now(), eng.Steps(), g.Barriers()
	}
	n1, s1, b1 := run()
	n2, s2, b2 := run()
	if n1 != n2 || s1 != s2 || b1 != b2 {
		t.Fatalf("storm diverged: (%d,%d,%d) vs (%d,%d,%d)", n1, s1, b1, n2, s2, b2)
	}
}
