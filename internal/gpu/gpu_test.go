package gpu

import (
	"testing"

	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

func trace(n int) []Access {
	t := make([]Access, n)
	for i := range t {
		t[i] = Access{Page: tier.PageID(i)}
	}
	return t
}

func TestAllAccessesProcessed(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, Config{Warps: 4, ComputePerAccess: 10}, &SliceStream{Trace: trace(100)}, ResidentManager{})
	g.Launch()
	eng.Run()
	if !g.Done() {
		t.Fatal("kernel did not finish")
	}
	if g.Accesses() != 100 {
		t.Fatalf("accesses = %d, want 100", g.Accesses())
	}
}

func TestComputeBoundTime(t *testing.T) {
	eng := sim.NewEngine()
	const n, warps, c = 100, 4, sim.Time(10)
	g := New(eng, Config{Warps: warps, ComputePerAccess: c}, &SliceStream{Trace: trace(n)}, ResidentManager{})
	g.Launch()
	eng.Run()
	// All hits: wall time = (n/warps) * compute.
	want := sim.Time(n/warps) * c
	if eng.Now() != want {
		t.Fatalf("compute-bound time = %d, want %d", eng.Now(), want)
	}
	if g.StallTime() != 0 {
		t.Fatalf("stall = %d on all-resident run", g.StallTime())
	}
	if g.ComputeTime() != sim.Time(n)*c {
		t.Fatalf("compute = %d, want %d", g.ComputeTime(), sim.Time(n)*c)
	}
}

// delayManager resolves every access after a fixed latency, with
// unlimited parallelism.
type delayManager struct {
	eng *sim.Engine
	d   sim.Time
}

func (m delayManager) Access(_ Access, done func()) { m.eng.After(m.d, done) }

func TestMissOverlapAcrossWarps(t *testing.T) {
	// 8 warps, 8 accesses, each costing 1000ns of memory latency:
	// with overlap the kernel finishes in ≈1000ns, not 8000.
	eng := sim.NewEngine()
	g := New(eng, Config{Warps: 8, ComputePerAccess: 1}, &SliceStream{Trace: trace(8)}, delayManager{eng, 1000})
	g.Launch()
	eng.Run()
	if eng.Now() > 1100 {
		t.Fatalf("8 overlapped misses took %dns; no overlap", eng.Now())
	}
	if g.StallTime() != 8*1000 {
		t.Fatalf("stall = %d, want 8000 (8 warps x 1000)", g.StallTime())
	}
}

func TestSingleWarpSerializes(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, Config{Warps: 1, ComputePerAccess: 1}, &SliceStream{Trace: trace(8)}, delayManager{eng, 1000})
	g.Launch()
	eng.Run()
	if eng.Now() != 8*1001 {
		t.Fatalf("serial time = %d, want 8008", eng.Now())
	}
}

func TestStreamOrderPreserved(t *testing.T) {
	// Warps pull from a shared stream: with a synchronous manager the
	// issue order must equal the trace order regardless of warp count.
	eng := sim.NewEngine()
	var issued []tier.PageID
	mm := managerFunc(func(a Access, done func()) {
		issued = append(issued, a.Page)
		done()
	})
	g := New(eng, Config{Warps: 7, ComputePerAccess: 3}, &SliceStream{Trace: trace(50)}, mm)
	g.Launch()
	eng.Run()
	for i, p := range issued {
		if p != tier.PageID(i) {
			t.Fatalf("issue order broken at %d: got %d", i, p)
		}
	}
}

type managerFunc func(Access, func())

func (f managerFunc) Access(a Access, done func()) { f(a, done) }

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine()
		g := New(eng, Config{Warps: 16, ComputePerAccess: 7}, &SliceStream{Trace: trace(500)}, delayManager{eng, 333})
		g.Launch()
		eng.Run()
		return eng.Now()
	}
	if run() != run() {
		t.Fatal("identical runs diverged")
	}
}

func TestSliceStreamExhaustion(t *testing.T) {
	s := &SliceStream{Trace: trace(2)}
	if _, ok := s.Next(); !ok {
		t.Fatal("first Next failed")
	}
	s.Next()
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not report exhaustion")
	}
}

func TestBarrierSynchronizesWarps(t *testing.T) {
	// Phase 1 (pages 0..7), barrier, phase 2 (pages 8..15). With a
	// delaying manager, no phase-2 access may issue before every
	// phase-1 access completed.
	var tr []Access
	for p := tier.PageID(0); p < 8; p++ {
		tr = append(tr, Access{Page: p})
	}
	tr = append(tr, Barrier)
	for p := tier.PageID(8); p < 16; p++ {
		tr = append(tr, Access{Page: p})
	}
	eng := sim.NewEngine()
	var phase1Done, phase2First sim.Time
	mm := managerFunc(func(a Access, done func()) {
		if a.Page < 8 {
			eng.After(1000, func() {
				if eng.Now() > phase1Done {
					phase1Done = eng.Now()
				}
				done()
			})
			return
		}
		if phase2First == 0 {
			phase2First = eng.Now()
		}
		done()
	})
	g := New(eng, Config{Warps: 4, ComputePerAccess: 1}, &SliceStream{Trace: tr}, mm)
	g.Launch()
	eng.Run()
	if !g.Done() {
		t.Fatal("kernel did not finish")
	}
	if g.Barriers() != 1 {
		t.Fatalf("barriers = %d, want 1", g.Barriers())
	}
	if phase2First < phase1Done {
		t.Fatalf("phase 2 started at %d before phase 1 finished at %d", phase2First, phase1Done)
	}
	if g.Accesses() != 16 {
		t.Fatalf("accesses = %d, want 16 (barrier not counted)", g.Accesses())
	}
}

func TestConsecutiveBarriers(t *testing.T) {
	tr := []Access{{Page: 1}, Barrier, Barrier, {Page: 2}}
	eng := sim.NewEngine()
	g := New(eng, Config{Warps: 3, ComputePerAccess: 1}, &SliceStream{Trace: tr}, ResidentManager{})
	g.Launch()
	eng.Run()
	if !g.Done() || g.Barriers() != 2 || g.Accesses() != 2 {
		t.Fatalf("done=%v barriers=%d accesses=%d", g.Done(), g.Barriers(), g.Accesses())
	}
}

func TestBarrierWithDrainingWarps(t *testing.T) {
	// More warps than pre-barrier work: extra warps hit the barrier (or
	// stream end) immediately; the rendezvous must still release.
	tr := []Access{{Page: 1}, Barrier, {Page: 2}, {Page: 3}}
	eng := sim.NewEngine()
	g := New(eng, Config{Warps: 16, ComputePerAccess: 5}, &SliceStream{Trace: tr}, delayManager{eng, 100})
	g.Launch()
	eng.Run()
	if !g.Done() {
		t.Fatal("deadlocked on barrier with excess warps")
	}
	if g.Accesses() != 3 {
		t.Fatalf("accesses = %d", g.Accesses())
	}
}

func TestTrailingBarrierTerminates(t *testing.T) {
	tr := []Access{{Page: 1}, Barrier}
	eng := sim.NewEngine()
	g := New(eng, Config{Warps: 2, ComputePerAccess: 1}, &SliceStream{Trace: tr}, ResidentManager{})
	g.Launch()
	eng.Run()
	if !g.Done() {
		t.Fatal("trailing barrier deadlocked")
	}
}

func TestZeroWarpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Warps=0 did not panic")
		}
	}()
	New(sim.NewEngine(), Config{}, &SliceStream{}, ResidentManager{})
}
