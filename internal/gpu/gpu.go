// Package gpu models the SIMT execution of a GPU kernel at the
// granularity GMT operates on: coalesced per-warp accesses to 64 KiB
// pages. Warps issue accesses from a workload stream, perform a fixed
// amount of compute per access, and stall on demand misses until the
// memory manager (BaM, HMM, or GMT) delivers the page. Because many warps
// run concurrently, misses from different warps overlap — the access
// parallelism that GPU-orchestrated tiering exists to serve.
package gpu

import (
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// WarpThreads is the SIMT width: the threads of a warp coalesce into one
// page access and can jointly drive zero-copy transfers.
const WarpThreads = 32

// Access is one coalesced page reference.
type Access struct {
	Page  tier.PageID
	Write bool
}

// BarrierPage is a sentinel: an Access with this page is a kernel-wide
// barrier (a kernel-launch boundary or grid sync). Every warp must
// arrive before any may continue — the synchronization structure of
// iterative kernels (stencil sweeps, BFS levels), which bounds how much
// miss latency can overlap across iterations.
const BarrierPage tier.PageID = -1

// Barrier is the barrier access value.
var Barrier = Access{Page: BarrierPage}

// IsBarrier reports whether a is a barrier token.
func (a Access) IsBarrier() bool { return a.Page == BarrierPage }

// Stream supplies a kernel's coalesced access sequence. Implementations
// are the workload generators; warps consume the stream in order, so the
// global access order (and therefore VTD/RRD semantics) is preserved
// while execution is spread across warps.
type Stream interface {
	// Next reports the next access; ok is false when the kernel is done.
	Next() (a Access, ok bool)
}

// SliceStream adapts a fixed trace to a Stream.
type SliceStream struct {
	Trace []Access
	pos   int
}

// Next implements Stream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.Trace) {
		return Access{}, false
	}
	a := s.Trace[s.pos]
	s.pos++
	return a, true
}

// Pending implements BatchStream: the unconsumed tail of the trace.
func (s *SliceStream) Pending() []Access { return s.Trace[s.pos:] }

// Advance implements BatchStream, consuming n accesses.
func (s *SliceStream) Advance(n int) { s.pos += n }

// BatchStream is the optional batch extension of Stream: a stream that
// can expose its unconsumed tail as a slice lets a hitting warp replay
// whole runs of accesses through AccessSyncBatch without a Next call
// (and an interface dispatch) per access.
type BatchStream interface {
	Stream
	// Pending reports the not-yet-consumed accesses. The slice is only
	// valid until the next Next or Advance call, and callers must not
	// mutate it.
	Pending() []Access
	// Advance consumes the first n pending accesses. n must not exceed
	// len(Pending()).
	Advance(n int)
}

// MemoryManager resolves coalesced accesses. done must be invoked exactly
// once, at the virtual time the data is available to the warp; it may be
// invoked synchronously for resident pages.
type MemoryManager interface {
	Access(a Access, done func())
}

// SyncMemoryManager is the optional fast-path extension of
// MemoryManager. AccessSync resolves a like Access, but reports inline
// completion instead of trampolining through done: a true return means
// the access completed synchronously at the current virtual time and
// done was neither retained nor called; false means the manager took
// the asynchronous path and will invoke done exactly once, later (or
// already has, synchronously — the classic contract). The GPU detects
// the interface at Launch and lets hitting warps consume consecutive
// accesses without touching the event queue (see HACKING.md,
// "Scheduler determinism contract").
type SyncMemoryManager interface {
	MemoryManager
	AccessSync(a Access, done func()) bool
}

// CallSyncMemoryManager is the typed-callback extension of
// SyncMemoryManager. AccessSyncCall resolves a like AccessSync, but the
// asynchronous completion is delivered by invoking call(ctx, arg) — a
// preallocated (sim.EventFunc, ctx) pair — instead of a func() closure.
// The GPU detects the interface at Launch and wakes stalled warps
// through a package-level event function with the *warp as ctx, so a
// miss allocates no completion closure anywhere on its path.
type CallSyncMemoryManager interface {
	SyncMemoryManager
	AccessSyncCall(a Access, call sim.EventFunc, ctx any, arg int64) bool
}

// BatchSyncMemoryManager is the batched extension of SyncMemoryManager.
// AccessSyncBatch consumes a leading run of accs that all complete
// synchronously at the current virtual time (Tier-1 hits), returning how
// many were consumed — at most max. It must stop at the first access it
// cannot complete inline (a miss, a barrier token, anything needing the
// asynchronous path), consume nothing it cannot account exactly as a
// sequence of AccessSync calls would, and must not schedule events,
// advance the clock, or otherwise touch the engine: the caller replays
// the consumed run's timing. A manager may return 0 at any time (the
// caller falls back to per-access AccessSync), so implementations are
// free to refuse configurations whose per-access side effects cannot be
// batched.
type BatchSyncMemoryManager interface {
	SyncMemoryManager
	AccessSyncBatch(accs []Access, max int) int
}

// Config sizes the execution model.
type Config struct {
	// Warps is the number of concurrently resident warps.
	Warps int
	// ComputePerAccess is the busy time a warp spends per coalesced
	// access once its data is resident.
	ComputePerAccess sim.Time
}

// DefaultConfig models a kernel keeping an A100-class GPU busy.
func DefaultConfig() Config {
	return Config{Warps: 256, ComputePerAccess: 200 * sim.Nanosecond}
}

// GPU drives a Stream through a MemoryManager on a simulation engine.
type GPU struct {
	eng    *sim.Engine
	cfg    Config
	stream Stream
	mm     MemoryManager
	// sync is non-nil when mm implements SyncMemoryManager; hitting
	// accesses then complete inline and warps stream through hit chains
	// without scheduling (the streak breaks whenever Peek shows another
	// event due in the compute window).
	sync SyncMemoryManager
	// batch/bstream are non-nil when the manager and stream additionally
	// support batched hit replay: a hitting warp then consumes whole
	// leading hit runs with one AccessSyncBatch call, bounded by the same
	// Peek window the scalar streak obeys one access at a time.
	batch   BatchSyncMemoryManager
	bstream BatchStream
	// syncCall is non-nil when mm additionally supports typed
	// completions; misses then wake warps through warpAccessDoneEvent and
	// no per-warp done closure is ever allocated.
	syncCall CallSyncMemoryManager

	accesses int64
	stall    sim.Time
	compute  sim.Time
	active   int
	finished bool

	// warps is allocated once at Launch; warp pointers are stable and
	// ride the engine's typed event path, so the issue/complete cycle
	// of a resident access allocates nothing.
	warps []warp

	// Barrier state: once one warp consumes the barrier token from the
	// shared stream, barPending parks every other warp as it completes
	// its in-flight work, until all active warps have arrived. parked
	// records arrivals in order; one release event re-steps them in that
	// same order, preserving the stream-consumption sequence. parked and
	// releasing ping-pong: checkBarrier hands the arrivals to the
	// release event by swapping the buffers, so re-parks during a
	// release land in the other buffer and neither ever reallocates.
	barPending bool
	parked     []*warp
	releasing  []*warp
	// batching is true while a barrier release batch still has warps to
	// re-step after the current one; it pins the inline fast path off so
	// a hitting warp cannot advance time past batch-mates that — under
	// the per-warp release events this batch replaces — would have been
	// pending in the queue and broken its streak.
	batching bool
	barriers int64
}

// warp is one resident warp's execution state. A warp has at most one
// access in flight, so a single issue timestamp suffices; done is the
// access-completion callback, allocated once at Launch rather than per
// access.
type warp struct {
	g      *GPU
	issued sim.Time
	done   func()
}

// warpStepEvent is the typed event dispatched for every warp step; ctx
// is the *warp.
//
//gmt:hotpath
func warpStepEvent(ctx any, _ int64) { ctx.(*warp).step() }

// barrierReleaseEvent is the typed event dispatched once per completed
// barrier; ctx is the *GPU.
//
//gmt:hotpath
func barrierReleaseEvent(ctx any, _ int64) { ctx.(*GPU).releaseParked() }

// warpAccessDoneEvent is the typed completion delivered by a
// CallSyncMemoryManager when an asynchronous access lands; ctx is the
// stalled *warp.
//
//gmt:hotpath
func warpAccessDoneEvent(ctx any, _ int64) { ctx.(*warp).accessDone() }

// New returns an unlaunched GPU kernel execution.
func New(eng *sim.Engine, cfg Config, stream Stream, mm MemoryManager) *GPU {
	if cfg.Warps < 1 {
		panic("gpu: need at least one warp")
	}
	return &GPU{eng: eng, cfg: cfg, stream: stream, mm: mm}
}

// Launch schedules all warps at the current virtual time. Run the engine
// to completion afterwards; Done reports kernel completion.
func (g *GPU) Launch() {
	g.sync, _ = g.mm.(SyncMemoryManager)
	if g.sync != nil {
		g.batch, _ = g.mm.(BatchSyncMemoryManager)
		g.bstream, _ = g.stream.(BatchStream)
		g.syncCall, _ = g.mm.(CallSyncMemoryManager)
	}
	g.warps = make([]warp, g.cfg.Warps)
	g.parked = make([]*warp, 0, g.cfg.Warps)
	g.releasing = make([]*warp, 0, g.cfg.Warps)
	for i := range g.warps {
		w := &g.warps[i]
		w.g = g
		if g.syncCall == nil {
			// Typed managers never touch done; skip the per-warp
			// method-value allocation entirely.
			w.done = w.accessDone
		}
		g.active++
		g.eng.AfterCall(0, warpStepEvent, w, 0)
	}
}

//gmt:hotpath
func (w *warp) step() {
	g := w.g
	for {
		if g.barPending {
			g.parked = append(g.parked, w)
			g.checkBarrier()
			return
		}
		// Batched hit replay: consume a whole leading hit run in one
		// manager call. batching pins this off like the scalar streak (a
		// barrier batch-mate's continuation would be pending); a zero
		// compute quantum has no window to batch into.
		if g.batch != nil && g.bstream != nil && !g.batching &&
			g.cfg.ComputePerAccess > 0 && w.stepBatch() {
			return
		}
		a, ok := g.stream.Next()
		if !ok {
			g.active--
			if g.active == 0 {
				g.finished = true
			}
			g.checkBarrier()
			return
		}
		if a.IsBarrier() {
			g.barPending = true
			g.parked = append(g.parked, w)
			g.checkBarrier()
			return
		}
		g.accesses++
		w.issued = g.eng.Now()
		if g.sync == nil {
			g.mm.Access(a, w.done)
			return
		}
		if g.syncCall != nil {
			if !g.syncCall.AccessSyncCall(a, warpAccessDoneEvent, w, 0) {
				// Asynchronous path taken; warpAccessDoneEvent resumes
				// the warp with no closure in flight.
				return
			}
		} else if !g.sync.AccessSync(a, w.done) {
			// Asynchronous path taken; accessDone resumes the warp.
			return
		}
		// Inline completion: account the access exactly as accessDone
		// would (zero stall, one compute quantum), then keep streaming —
		// but only while the queued continuation this advance replaces
		// would have been the next dispatch. A pending event at or
		// before the end of the compute window breaks the streak (a tied
		// event was scheduled earlier, so its lower sequence number wins
		// the FIFO tie-break), as does a barrier release batch with
		// warps still to re-step behind this one.
		g.compute += g.cfg.ComputePerAccess
		next := g.eng.Now() + g.cfg.ComputePerAccess
		if !g.batching {
			if at, ok := g.eng.Peek(); !ok || at > next {
				g.eng.AdvanceTo(next)
				continue
			}
		}
		g.eng.AfterCall(g.cfg.ComputePerAccess, warpStepEvent, w, 0)
		return
	}
}

// stepBatch replays a leading run of Tier-1 hits through the manager's
// batch path. It reports true when the step is finished (a continuation
// event was scheduled); false sends the caller to the scalar loop, with
// the clock already advanced past whatever the batch consumed.
//
// Equivalence with the scalar streak: under the queued rules a warp
// with a pending event at `at` consumes exactly B =
// max(1, ceil((at-now)/ComputePerAccess)) consecutive hits inline — the
// k-th hit's compute window ends at now+k*cpa, and the first window
// that reaches `at` breaks the streak (the tied event was scheduled
// earlier, so its lower sequence number wins the FIFO tie-break; the
// first access always issues because issuing itself is instantaneous).
// The batch consumes j = min(B, leading-hit-run) hits in one call:
// nothing dispatches in between — the batch schedules nothing and the
// clock never passes `at` — so no observer can distinguish the bulk
// update from j scalar iterations.
//
//gmt:hotpath
func (w *warp) stepBatch() bool {
	g := w.g
	pend := g.bstream.Pending()
	if len(pend) == 0 {
		return false
	}
	cpa := g.cfg.ComputePerAccess
	t0 := g.eng.Now()
	budget := len(pend)
	capped := false
	if at, ok := g.eng.Peek(); ok {
		b := int64(at-t0+cpa-1) / int64(cpa)
		if b < 1 {
			b = 1
		}
		if b <= int64(len(pend)) {
			budget, capped = int(b), true
		}
	}
	j := g.batch.AccessSyncBatch(pend, budget)
	if j == 0 {
		return false
	}
	g.bstream.Advance(j)
	g.accesses += int64(j)
	g.compute += cpa * sim.Time(j)
	if capped && j == budget {
		// The run filled the window up to the pending event: the last
		// hit issues at t0+(j-1)*cpa and its continuation queues behind
		// the event, exactly like the scalar streak break.
		if j > 1 {
			g.eng.AdvanceTo(t0 + cpa*sim.Time(j-1))
		}
		g.eng.AfterCall(cpa, warpStepEvent, w, 0)
		return true
	}
	// Streak broken by the access after the run (miss, barrier, or
	// stream end) before the window filled: advance through the consumed
	// hits and let the scalar path handle the breaker.
	g.eng.AdvanceTo(t0 + cpa*sim.Time(j))
	return false
}

// accessDone resumes the warp after its in-flight access lands.
//
//gmt:hotpath
func (w *warp) accessDone() {
	g := w.g
	g.stall += g.eng.Now() - w.issued
	g.compute += g.cfg.ComputePerAccess
	g.eng.AfterCall(g.cfg.ComputePerAccess, warpStepEvent, w, 0)
}

// checkBarrier releases parked warps once every still-active warp has
// arrived. Warps that drained the stream entirely do not count toward
// the rendezvous (a finished thread block never blocks a grid sync).
// The release is one scheduled event re-stepping the arrivals in order,
// not one queue entry per warp: the per-warp events always held
// consecutive sequence numbers at a single instant, so nothing could
// ever interleave between them and the batch dispatches identically.
//
//gmt:hotpath
func (g *GPU) checkBarrier() {
	if !g.barPending || len(g.parked) < g.active {
		return
	}
	g.barriers++
	g.barPending = false
	g.parked, g.releasing = g.releasing[:0], g.parked
	g.eng.AfterCall(0, barrierReleaseEvent, g, 0)
}

// releaseParked re-steps a completed barrier's arrivals in arrival
// order. batching marks every step but the last so hit streaks cannot
// advance time past batch-mates; the last warp sees the true queue
// state — its batch-mates' continuations are already scheduled — so the
// normal streak rule applies unchanged. A warp that parks again during
// the batch (a back-to-back barrier) lands in the other ping-pong
// buffer, and the rendezvous it completes is released by a fresh event.
//
//gmt:hotpath
func (g *GPU) releaseParked() {
	rel := g.releasing
	for i, w := range rel {
		g.batching = i < len(rel)-1
		w.step()
	}
	g.batching = false
}

// Accesses reports coalesced accesses issued so far.
func (g *GPU) Accesses() int64 { return g.accesses }

// StallTime reports cumulative warp time spent waiting on memory.
func (g *GPU) StallTime() sim.Time { return g.stall }

// ComputeTime reports cumulative warp busy time.
func (g *GPU) ComputeTime() sim.Time { return g.compute }

// Done reports whether every warp has drained the stream.
func (g *GPU) Done() bool { return g.finished }

// Barriers reports how many kernel-wide barriers completed.
func (g *GPU) Barriers() int64 { return g.barriers }

// ResidentManager is a trivial MemoryManager where every page is already
// resident: useful for tests and for measuring pure compute time.
type ResidentManager struct{}

// Access implements MemoryManager with zero latency.
func (ResidentManager) Access(_ Access, done func()) { done() }

// AccessSync implements SyncMemoryManager: every access completes inline.
func (ResidentManager) AccessSync(_ Access, _ func()) bool { return true }

var _ SyncMemoryManager = ResidentManager{}
