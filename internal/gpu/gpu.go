// Package gpu models the SIMT execution of a GPU kernel at the
// granularity GMT operates on: coalesced per-warp accesses to 64 KiB
// pages. Warps issue accesses from a workload stream, perform a fixed
// amount of compute per access, and stall on demand misses until the
// memory manager (BaM, HMM, or GMT) delivers the page. Because many warps
// run concurrently, misses from different warps overlap — the access
// parallelism that GPU-orchestrated tiering exists to serve.
package gpu

import (
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// WarpThreads is the SIMT width: the threads of a warp coalesce into one
// page access and can jointly drive zero-copy transfers.
const WarpThreads = 32

// Access is one coalesced page reference.
type Access struct {
	Page  tier.PageID
	Write bool
}

// BarrierPage is a sentinel: an Access with this page is a kernel-wide
// barrier (a kernel-launch boundary or grid sync). Every warp must
// arrive before any may continue — the synchronization structure of
// iterative kernels (stencil sweeps, BFS levels), which bounds how much
// miss latency can overlap across iterations.
const BarrierPage tier.PageID = -1

// Barrier is the barrier access value.
var Barrier = Access{Page: BarrierPage}

// IsBarrier reports whether a is a barrier token.
func (a Access) IsBarrier() bool { return a.Page == BarrierPage }

// Stream supplies a kernel's coalesced access sequence. Implementations
// are the workload generators; warps consume the stream in order, so the
// global access order (and therefore VTD/RRD semantics) is preserved
// while execution is spread across warps.
type Stream interface {
	// Next reports the next access; ok is false when the kernel is done.
	Next() (a Access, ok bool)
}

// SliceStream adapts a fixed trace to a Stream.
type SliceStream struct {
	Trace []Access
	pos   int
}

// Next implements Stream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.Trace) {
		return Access{}, false
	}
	a := s.Trace[s.pos]
	s.pos++
	return a, true
}

// MemoryManager resolves coalesced accesses. done must be invoked exactly
// once, at the virtual time the data is available to the warp; it may be
// invoked synchronously for resident pages.
type MemoryManager interface {
	Access(a Access, done func())
}

// Config sizes the execution model.
type Config struct {
	// Warps is the number of concurrently resident warps.
	Warps int
	// ComputePerAccess is the busy time a warp spends per coalesced
	// access once its data is resident.
	ComputePerAccess sim.Time
}

// DefaultConfig models a kernel keeping an A100-class GPU busy.
func DefaultConfig() Config {
	return Config{Warps: 256, ComputePerAccess: 200 * sim.Nanosecond}
}

// GPU drives a Stream through a MemoryManager on a simulation engine.
type GPU struct {
	eng    *sim.Engine
	cfg    Config
	stream Stream
	mm     MemoryManager

	accesses int64
	stall    sim.Time
	compute  sim.Time
	active   int
	finished bool

	// warps is allocated once at Launch; warp pointers are stable and
	// ride the engine's typed event path, so the issue/complete cycle
	// of a resident access allocates nothing.
	warps []warp

	// Barrier state: once one warp consumes the barrier token from the
	// shared stream, barPending parks every other warp as it completes
	// its in-flight work, until all active warps have arrived. parked
	// records arrivals in order; release re-schedules them in that same
	// order, preserving the stream-consumption sequence.
	barPending bool
	parked     []*warp
	barriers   int64
}

// warp is one resident warp's execution state. A warp has at most one
// access in flight, so a single issue timestamp suffices; done is the
// access-completion callback, allocated once at Launch rather than per
// access.
type warp struct {
	g      *GPU
	issued sim.Time
	done   func()
}

// warpStepEvent is the typed event dispatched for every warp step; ctx
// is the *warp.
func warpStepEvent(ctx any, _ int64) { ctx.(*warp).step() }

// New returns an unlaunched GPU kernel execution.
func New(eng *sim.Engine, cfg Config, stream Stream, mm MemoryManager) *GPU {
	if cfg.Warps < 1 {
		panic("gpu: need at least one warp")
	}
	return &GPU{eng: eng, cfg: cfg, stream: stream, mm: mm}
}

// Launch schedules all warps at the current virtual time. Run the engine
// to completion afterwards; Done reports kernel completion.
func (g *GPU) Launch() {
	g.warps = make([]warp, g.cfg.Warps)
	g.parked = make([]*warp, 0, g.cfg.Warps)
	for i := range g.warps {
		w := &g.warps[i]
		w.g = g
		w.done = w.accessDone
		g.active++
		g.eng.AfterCall(0, warpStepEvent, w, 0)
	}
}

func (w *warp) step() {
	g := w.g
	if g.barPending {
		g.parked = append(g.parked, w)
		g.checkBarrier()
		return
	}
	a, ok := g.stream.Next()
	if !ok {
		g.active--
		if g.active == 0 {
			g.finished = true
		}
		g.checkBarrier()
		return
	}
	if a.IsBarrier() {
		g.barPending = true
		g.parked = append(g.parked, w)
		g.checkBarrier()
		return
	}
	g.accesses++
	w.issued = g.eng.Now()
	g.mm.Access(a, w.done)
}

// accessDone resumes the warp after its in-flight access lands.
func (w *warp) accessDone() {
	g := w.g
	g.stall += g.eng.Now() - w.issued
	g.compute += g.cfg.ComputePerAccess
	g.eng.AfterCall(g.cfg.ComputePerAccess, warpStepEvent, w, 0)
}

// checkBarrier releases parked warps once every still-active warp has
// arrived. Warps that drained the stream entirely do not count toward
// the rendezvous (a finished thread block never blocks a grid sync).
func (g *GPU) checkBarrier() {
	if !g.barPending || len(g.parked) < g.active {
		return
	}
	g.barriers++
	g.barPending = false
	for _, w := range g.parked {
		g.eng.AfterCall(0, warpStepEvent, w, 0)
	}
	g.parked = g.parked[:0]
}

// Accesses reports coalesced accesses issued so far.
func (g *GPU) Accesses() int64 { return g.accesses }

// StallTime reports cumulative warp time spent waiting on memory.
func (g *GPU) StallTime() sim.Time { return g.stall }

// ComputeTime reports cumulative warp busy time.
func (g *GPU) ComputeTime() sim.Time { return g.compute }

// Done reports whether every warp has drained the stream.
func (g *GPU) Done() bool { return g.finished }

// Barriers reports how many kernel-wide barriers completed.
func (g *GPU) Barriers() int64 { return g.barriers }

// ResidentManager is a trivial MemoryManager where every page is already
// resident: useful for tests and for measuring pure compute time.
type ResidentManager struct{}

// Access implements MemoryManager with zero latency.
func (ResidentManager) Access(_ Access, done func()) { done() }
