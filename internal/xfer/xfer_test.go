package xfer

import (
	"testing"

	"github.com/gmtsim/gmt/internal/pcie"
	"github.com/gmtsim/gmt/internal/sim"
)

const x16Bps = 16 * pcie.Gen3LaneBytesPerS

func TestCrossoverNearEightPages(t *testing.T) {
	cfg := DefaultConfig()
	// Figure 6a: DMA wins for small non-contiguous batches, zero-copy
	// (full warp) wins for large ones, crossing over around 8 pages.
	if DMA := cfg.DMATime(2, x16Bps); DMA >= cfg.ZeroCopyTime(2, 32, x16Bps) {
		t.Fatalf("at 2 pages DMA (%d) should beat zero-copy (%d)",
			DMA, cfg.ZeroCopyTime(2, 32, x16Bps))
	}
	if DMA := cfg.DMATime(32, x16Bps); DMA <= cfg.ZeroCopyTime(32, 32, x16Bps) {
		t.Fatalf("at 32 pages zero-copy (%d) should beat DMA (%d)",
			cfg.ZeroCopyTime(32, 32, x16Bps), DMA)
	}
	// Locate the crossover.
	cross := 0
	for n := 1; n <= 64; n++ {
		if cfg.ZeroCopyTime(n, 32, x16Bps) <= cfg.DMATime(n, x16Bps) {
			cross = n
			break
		}
	}
	if cross < 6 || cross > 10 {
		t.Fatalf("crossover at %d pages, want ≈8", cross)
	}
}

func TestZeroCopyScalesWithThreads(t *testing.T) {
	cfg := DefaultConfig()
	t32 := cfg.ZeroCopyTime(64, 32, x16Bps)
	t16 := cfg.ZeroCopyTime(64, 16, x16Bps)
	t8 := cfg.ZeroCopyTime(64, 8, x16Bps)
	if !(t32 < t16 && t16 < t8) {
		t.Fatalf("zero-copy times not monotone in threads: 32T=%d 16T=%d 8T=%d", t32, t16, t8)
	}
	// More than a warp doesn't help (coalesced unit is the warp).
	if cfg.ZeroCopyTime(64, 64, x16Bps) != t32 {
		t.Fatal("threads beyond a warp changed the time")
	}
}

func TestChooseHybridRule(t *testing.T) {
	cfg := DefaultConfig() // Hybrid-32T
	cases := []struct {
		n, threads int
		want       Method
	}{
		{1, 32, DMA},      // too few pages
		{7, 32, DMA},      // below crossover
		{8, 32, ZeroCopy}, // at crossover with a full warp
		{64, 16, DMA},     // not enough threads for Hybrid-32T
		{64, 32, ZeroCopy},
	}
	for _, c := range cases {
		if got := cfg.Choose(c.n, c.threads); got != c.want {
			t.Fatalf("Choose(%d pages, %d threads) = %v, want %v", c.n, c.threads, got, c.want)
		}
	}
}

func TestForcedModes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeDMA
	if cfg.Choose(1000, 32) != DMA {
		t.Fatal("ModeDMA did not force DMA")
	}
	cfg.Mode = ModeZeroCopy
	if cfg.Choose(1, 1) != ZeroCopy {
		t.Fatal("ModeZeroCopy did not force zero-copy")
	}
}

func TestHybridTimeMatchesChosenMethod(t *testing.T) {
	cfg := DefaultConfig()
	tm, m := cfg.HybridTime(64, 32, x16Bps)
	if m != ZeroCopy || tm != cfg.ZeroCopyTime(64, 32, x16Bps) {
		t.Fatalf("HybridTime(64,32) = %d,%v", tm, m)
	}
	tm, m = cfg.HybridTime(2, 32, x16Bps)
	if m != DMA || tm != cfg.DMATime(2, x16Bps) {
		t.Fatalf("HybridTime(2,32) = %d,%v", tm, m)
	}
}

func TestEngineDMASerializesLaunches(t *testing.T) {
	eng := sim.NewEngine()
	link := pcie.NewLink(eng, 16)
	cfg := DefaultConfig()
	cfg.Mode = ModeDMA
	e := NewEngine(eng, link, cfg)
	const n = 10
	doneCount := 0
	for i := 0; i < n; i++ {
		e.MovePage(false, 32, func() { doneCount++ })
	}
	eng.Run()
	if doneCount != n {
		t.Fatalf("completions = %d, want %d", doneCount, n)
	}
	// Launch serialization bounds the batch below the link rate:
	// at least n * DMALaunch.
	if eng.Now() < sim.Time(n)*cfg.DMALaunch {
		t.Fatalf("batch finished in %d < serialized launch floor %d",
			eng.Now(), sim.Time(n)*cfg.DMALaunch)
	}
}

func TestEngineZeroCopyThroughputBeatsDMAUnderLoad(t *testing.T) {
	run := func(mode Mode) sim.Time {
		eng := sim.NewEngine()
		link := pcie.NewLink(eng, 16)
		cfg := DefaultConfig()
		cfg.Mode = mode
		e := NewEngine(eng, link, cfg)
		for i := 0; i < 256; i++ {
			e.MovePage(false, 32, nil)
		}
		eng.Run()
		return eng.Now()
	}
	dma, zc := run(ModeDMA), run(ModeZeroCopy)
	if zc >= dma {
		t.Fatalf("256-page burst: zero-copy (%dµs) should beat DMA (%dµs)",
			zc/sim.Microsecond, dma/sim.Microsecond)
	}
}

func TestEngineOutstandingTracking(t *testing.T) {
	eng := sim.NewEngine()
	link := pcie.NewLink(eng, 16)
	e := NewEngine(eng, link, DefaultConfig())
	for i := 0; i < 5; i++ {
		e.MovePage(i%2 == 0, 32, nil)
	}
	if e.Outstanding() != 5 {
		t.Fatalf("outstanding = %d, want 5", e.Outstanding())
	}
	eng.Run()
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding after drain = %d, want 0", e.Outstanding())
	}
	s := e.Stats()
	if s.PagesUp != 3 || s.PagesDown != 2 {
		t.Fatalf("pagesUp=%d pagesDown=%d, want 3,2", s.PagesUp, s.PagesDown)
	}
	if s.DMATransfers+s.ZeroCopyTransfers != 5 {
		t.Fatalf("method counts don't add up: %+v", s)
	}
}

// TestMovePoolConservation pins the free-listed move records' accounting:
// every record acquired by MovePage is released back to the pool when its
// transfer completes, so a drained engine has acquired == released and a
// long sweep reuses a bounded record set instead of leaking per-move
// allocations. (Under -tags gmtinvariants, Reset re-asserts the same.)
func TestMovePoolConservation(t *testing.T) {
	eng := sim.NewEngine()
	link := pcie.NewLink(eng, 16)
	e := NewEngine(eng, link, DefaultConfig())
	const n = 500
	done := 0
	for i := 0; i < n; i++ {
		// Mix directions, batch sizes (DMA vs zero-copy), and nil vs
		// non-nil completions so every move variant returns its record.
		var fn func()
		if i%3 == 0 {
			fn = func() { done++ }
		}
		e.MovePage(i%2 == 0, 1+i%64, fn)
	}
	acq, rel := e.MoveRecords()
	if acq != n {
		t.Fatalf("acquired = %d, want %d", acq, n)
	}
	if rel != 0 {
		t.Fatalf("released before Run = %d, want 0", rel)
	}
	eng.Run()
	acq, rel = e.MoveRecords()
	if acq != n || rel != n {
		t.Fatalf("after drain acquired=%d released=%d, want %d,%d", acq, rel, n, n)
	}
	if e.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", e.Outstanding())
	}
	// The pool holds every record ever carved: a second burst of the same
	// size must not grow acquisition beyond reuse (acquired counts uses,
	// not allocations — conservation is acquired == released at drain).
	for i := 0; i < n; i++ {
		e.MovePage(false, 8, nil)
	}
	eng.Run()
	acq, rel = e.MoveRecords()
	if acq != 2*n || rel != 2*n {
		t.Fatalf("second burst: acquired=%d released=%d, want %d,%d", acq, rel, 2*n, 2*n)
	}

	// Reset zeroes the conservation counters with the engine quiescent.
	e.Reset()
	if acq, rel := e.MoveRecords(); acq != 0 || rel != 0 {
		t.Fatalf("after Reset acquired=%d released=%d, want 0,0", acq, rel)
	}
	if s := e.Stats(); s.PagesUp != 0 || s.PagesDown != 0 || s.DMATransfers != 0 || s.ZeroCopyTransfers != 0 {
		t.Fatalf("after Reset stats = %+v, want zeroes", s)
	}
}

func TestMethodString(t *testing.T) {
	if DMA.String() != "cudaMemcpyAsync" || ZeroCopy.String() != "zero-copy" {
		t.Fatal("method strings wrong")
	}
}
