// Package xfer implements the GPU-memory ↔ host-memory page transfer
// mechanisms GMT chooses between (paper §2.3, Figure 6):
//
//   - DMA ("cudaMemcpyAsync"): a single GPU thread programs the copy
//     engine per page. Launches serialize on the engine, so throughput is
//     overhead-bound for large numbers of non-contiguous pages.
//   - Zero-copy: the threads of a warp issue load/store instructions
//     against pinned host memory. Pinning costs a fixed setup per batch,
//     and delivered bandwidth scales with the number of threads employed,
//     so it wins once enough non-contiguous pages (and threads) are
//     available.
//   - Hybrid-XT: zero-copy only when the batch has at least
//     CrossoverPages pages and at least X threads can be employed;
//     otherwise DMA. The paper selects Hybrid-32T.
package xfer

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/invariant"
	"github.com/gmtsim/gmt/internal/pcie"
	"github.com/gmtsim/gmt/internal/sim"
)

// Method names a transfer mechanism.
type Method uint8

// The transfer mechanisms of §2.3.
const (
	DMA Method = iota
	ZeroCopy
)

func (m Method) String() string {
	if m == DMA {
		return "cudaMemcpyAsync"
	}
	return "zero-copy"
}

// Mode selects how the engine picks a method per transfer.
type Mode uint8

// Selection modes.
const (
	ModeHybrid   Mode = iota // Hybrid-XT: the paper's choice
	ModeDMA                  // always cudaMemcpyAsync
	ModeZeroCopy             // always zero-copy
)

// Config calibrates the transfer engines.
type Config struct {
	PageSize int64
	// DMALaunch is the per-copy launch/programming overhead, serialized
	// on the copy engine.
	DMALaunch sim.Time
	// PinOverhead is the per-batch cost of pinning pages before
	// zero-copy.
	PinOverhead sim.Time
	// WarpThreads is the thread count that saturates the link with
	// zero-copy (a full warp).
	WarpThreads int
	// CrossoverPages is the batch size above which zero-copy wins
	// (Figure 6a: 8 pages).
	CrossoverPages int
	// HybridX is the X in Hybrid-XT: the minimum threads required to
	// pick zero-copy.
	HybridX int
	// Mode is the selection mode.
	Mode Mode
}

// DefaultConfig reproduces Figure 6's calibration on Gen3 x16.
func DefaultConfig() Config {
	return Config{
		PageSize:       64 * 1024,
		DMALaunch:      12 * sim.Microsecond,
		PinOverhead:    56 * sim.Microsecond,
		WarpThreads:    32,
		CrossoverPages: 8,
		HybridX:        32,
		Mode:           ModeHybrid,
	}
}

// Choose applies the configured selection rule for a batch of n
// non-contiguous pages with the given threads available.
func (c Config) Choose(n, threads int) Method {
	switch c.Mode {
	case ModeDMA:
		return DMA
	case ModeZeroCopy:
		return ZeroCopy
	default:
		if n >= c.CrossoverPages && threads >= c.HybridX {
			return ZeroCopy
		}
		return DMA
	}
}

// pageTime is the unloaded link occupancy of one page.
func (c Config) pageTime(linkBps int64) sim.Time {
	return c.PageSize * sim.Second / linkBps
}

// DMATime is the closed-form unloaded completion time for n
// non-contiguous pages via per-page cudaMemcpyAsync: launches serialize
// on the copy engine; the final page's data trails the final launch.
func (c Config) DMATime(n int, linkBps int64) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(n)*c.DMALaunch + c.pageTime(linkBps)
}

// ZeroCopyTime is the closed-form unloaded completion time for n
// non-contiguous pages moved by `threads` GPU threads after pinning.
func (c Config) ZeroCopyTime(n, threads int, linkBps int64) sim.Time {
	if n <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	if threads > c.WarpThreads {
		threads = c.WarpThreads
	}
	perPage := c.pageTime(linkBps) * sim.Time(c.WarpThreads) / sim.Time(threads)
	return c.PinOverhead + sim.Time(n)*perPage
}

// HybridTime applies Choose and reports the resulting unloaded time.
func (c Config) HybridTime(n, threads int, linkBps int64) (sim.Time, Method) {
	m := c.Choose(n, threads)
	if m == ZeroCopy {
		return c.ZeroCopyTime(n, threads, linkBps), m
	}
	return c.DMATime(n, linkBps), m
}

// Engine performs simulated page transfers between GPU and host memory
// over a PCIe link, tracking outstanding transfers so the Hybrid rule can
// observe batch pressure.
type Engine struct {
	eng  *sim.Engine
	link *pcie.Link
	cfg  Config
	dma  *sim.Server // the single copy engine

	outstanding int
	dmaCount    int64
	zcCount     int64
	pagesUp     int64
	pagesDown   int64

	pool []*move // recycled per-move records

	// Pool conservation counters: every MovePageCall acquires one move
	// record and every completion releases it. They must balance at
	// quiescence (asserted by Reset under -tags gmtinvariants and by the
	// pool-conservation test), so a leaked record fails loudly instead of
	// silently re-growing the pool.
	acquired int64
	released int64
}

// move carries one page transfer through its stages. Moves are pooled on
// the Engine and every stage is a top-level EventFunc with the move as
// context, so steady-state transfers perform no allocation.
type move struct {
	e    *Engine
	pipe *sim.Pipe
	call sim.EventFunc
	ctx  any
	arg  int64
}

// moveEnter runs when the copy engine is granted (DMA path): the launch
// serializes on the engine; data then streams on the link.
//
//gmt:hotpath
func moveEnter(ctx any, _ int64) {
	m := ctx.(*move)
	m.e.eng.AfterCall(m.e.cfg.DMALaunch, moveLaunched, m, 0)
}

// moveLaunched runs after the DMA launch overhead.
//
//gmt:hotpath
func moveLaunched(ctx any, _ int64) {
	m := ctx.(*move)
	m.e.dma.Release()
	m.pipe.TransferCall(m.e.cfg.PageSize, moveFinish, m, 0)
}

// movePinned runs after the zero-copy pin share; arg carries the
// thread-limited byte rate.
//
//gmt:hotpath
func movePinned(ctx any, rate int64) {
	m := ctx.(*move)
	m.pipe.TransferLimitedCall(m.e.cfg.PageSize, rate, moveFinish, m, 0)
}

// moveFinish recycles the move and runs the completion callback.
//
//gmt:hotpath
func moveFinish(ctx any, _ int64) {
	m := ctx.(*move)
	e := m.e
	e.outstanding--
	e.released++
	call, cctx, carg := m.call, m.ctx, m.arg
	m.call, m.ctx, m.pipe = nil, nil, nil
	e.pool = append(e.pool, m)
	if call != nil {
		call(cctx, carg)
	}
}

// moveChunkSize is the pool-miss growth quantum: a miss carves a whole
// chunk of moves so the pool grows in O(peak/chunk) allocations rather
// than one heap object per concurrent transfer.
const moveChunkSize = 16

// newMove pops a pooled move or carves a fresh chunk; pool misses are
// amortized away by reuse.
//
//gmt:coldpath
func (e *Engine) newMove() *move {
	e.acquired++
	n := len(e.pool)
	if n == 0 {
		chunk := make([]move, moveChunkSize)
		for i := range chunk {
			chunk[i].e = e
			e.pool = append(e.pool, &chunk[i])
		}
		n = len(e.pool)
	}
	m := e.pool[n-1]
	e.pool = e.pool[:n-1]
	return m
}

// NewEngine returns a transfer engine over link.
func NewEngine(eng *sim.Engine, link *pcie.Link, cfg Config) *Engine {
	return &Engine{eng: eng, link: link, cfg: cfg, dma: sim.NewServer(eng, 1)}
}

// Config reports the engine calibration.
func (e *Engine) Config() Config { return e.cfg }

// Outstanding reports in-flight Tier-1↔Tier-2 page transfers.
func (e *Engine) Outstanding() int { return e.outstanding }

// MoveRecords reports the pool conservation counters: records acquired
// from and released back to the move pool since construction (or the
// last Reset). At quiescence the two must be equal.
func (e *Engine) MoveRecords() (acquired, released int64) {
	return e.acquired, e.released
}

// Reset returns an idle transfer engine to its freshly constructed
// state, retaining the move pool (moves hold only the engine pointer,
// which is stable). It panics if transfers are outstanding, and asserts
// move-pool conservation under -tags gmtinvariants.
func (e *Engine) Reset() {
	if e.outstanding != 0 {
		panic(fmt.Sprintf("xfer: Reset with %d transfers outstanding", e.outstanding))
	}
	invariant.Assert(e.acquired == e.released,
		"xfer: move pool leak: %d records acquired, %d released", e.acquired, e.released)
	e.dma.Reset()
	e.dmaCount, e.zcCount = 0, 0
	e.pagesUp, e.pagesDown = 0, 0
	e.acquired, e.released = 0, 0
}

// MovePage transfers one page between GPU memory and host memory; up is
// toward the host (a Tier-1 eviction into Tier-2), down is toward the GPU
// (a Tier-2 hit). threads is how many GPU threads the requesting warp can
// devote. The method is chosen per the configured mode, using the current
// outstanding-transfer count as the effective batch size.
func (e *Engine) MovePage(up bool, threads int, done func()) {
	e.MovePageCall(up, threads, sim.CallFunc, done, 0)
}

// MovePageCall is the typed-callback form of MovePage: call(ctx, arg)
// runs when the page lands, with no per-move closure.
func (e *Engine) MovePageCall(up bool, threads int, call sim.EventFunc, ctx any, arg int64) {
	e.outstanding++
	batch := e.outstanding
	method := e.cfg.Choose(batch, threads)
	mv := e.newMove()
	mv.pipe = e.link.Down
	if up {
		mv.pipe = e.link.Up
		e.pagesUp++
	} else {
		e.pagesDown++
	}
	mv.call, mv.ctx, mv.arg = call, ctx, arg
	switch method {
	case DMA:
		e.dmaCount++
		e.dma.AcquireCall(moveEnter, mv, 0)
	case ZeroCopy:
		e.zcCount++
		// Pinning is amortized across the batch driving the link; each
		// member pays its share, then the warp's threads stream the
		// page, at reduced rate if under-provisioned.
		share := e.cfg.PinOverhead / sim.Time(batch)
		rate := e.link.BytesPerSecond() * int64(threads) / int64(e.cfg.WarpThreads)
		e.eng.AfterCall(share, movePinned, mv, rate)
	}
}

// Stats is a snapshot of transfer activity.
type Stats struct {
	DMATransfers      int64
	ZeroCopyTransfers int64
	PagesUp           int64 // Tier-1 -> Tier-2
	PagesDown         int64 // Tier-2 -> Tier-1
}

// Stats reports cumulative engine activity.
func (e *Engine) Stats() Stats {
	return Stats{
		DMATransfers:      e.dmaCount,
		ZeroCopyTransfers: e.zcCount,
		PagesUp:           e.pagesUp,
		PagesDown:         e.pagesDown,
	}
}
