// Package baseline implements the CPU-orchestrated 3-tier comparator of
// the paper's §3.6: Linux HMM extending UVM through the host page cache.
//
// The architectural difference from GMT is who orchestrates: every GPU
// demand fault traps to the host, where a small pool of driver fault
// handlers (UVM services a GPU's fault buffer with very limited
// parallelism) performs the lookup, the SSD I/O through the kernel page
// cache, and the host-programmed DMA to GPU memory — all while holding
// the handler. Hundreds of concurrently faulting warps therefore
// serialize behind a few host threads, which is exactly the bottleneck
// BaM (and GMT) demonstrate against.
//
// The package also provides the "optimistic HMM" of §3.6: HMM granted
// GMT-Reuse's Tier-2 hit rate, with its I/O time lowered accordingly.
package baseline

import (
	"math/rand"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/nvme"
	"github.com/gmtsim/gmt/internal/pcie"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
)

// HMMConfig parameterizes the CPU-orchestrated manager.
type HMMConfig struct {
	Tier1Pages     int
	PageCachePages int // host page cache capacity (the Tier-2 analogue)
	PageSize       int64

	// FaultHandlers is the host-side fault service parallelism; the UVM
	// driver processes a GPU's fault buffer nearly serially.
	FaultHandlers int
	// PrefetchBlock enables UVM's density-based block prefetcher
	// (NVIDIA's oversubscription tuning, paper ref [12]): a fault
	// migrates the whole aligned block of this many pages in one
	// service, amortizing the fault overhead across neighbors. Zero or
	// one disables it.
	PrefetchBlock int
	// FaultOverhead is the host CPU work per fault (fault buffer
	// processing, page table + TLB maintenance).
	FaultOverhead sim.Time
	// DMALaunch is the host cost to program one DMA copy.
	DMALaunch sim.Time

	HostLanes int
	SSD       nvme.Config

	// ForcedHitRate, when in [0,1], overrides page-cache membership with
	// a coin of that bias — the §3.6 "optimistic HMM" device. Negative
	// disables it.
	ForcedHitRate float64
	Seed          int64
}

// DefaultHMMConfig mirrors the paper's platform.
func DefaultHMMConfig() HMMConfig {
	return HMMConfig{
		Tier1Pages:     1024,
		PageCachePages: 4096,
		PageSize:       64 * 1024,
		FaultHandlers:  2,
		FaultOverhead:  30 * sim.Microsecond,
		DMALaunch:      10 * sim.Microsecond,
		HostLanes:      16,
		SSD:            nvme.DefaultConfig(),
		ForcedHitRate:  -1,
		Seed:           1,
	}
}

type hmmLoc uint8

const (
	hmmSSD hmmLoc = iota
	hmmTier1
	hmmInFlight
)

type hmmPage struct {
	loc          hmmLoc
	dirty        bool
	pendingDirty bool
	cached       bool // resident in the host page cache (inclusive)
	cacheDirty   bool
	waiters      []func()
}

// HMM is the CPU-orchestrated 3-tier memory manager.
type HMM struct {
	eng      *sim.Engine
	cfg      HMMConfig
	ssd      *nvme.Disk
	link     *pcie.Link
	handlers *sim.Server
	dma      *sim.Server

	t1    *tier.Clock
	cache *tier.Clock // host page cache, LRU-approximated by clock

	pages    map[tier.PageID]*hmmPage
	reserved int
	rng      *rand.Rand

	m stats.Run
}

var _ gpu.MemoryManager = (*HMM)(nil)

// NewHMM builds the manager and its devices on eng.
func NewHMM(eng *sim.Engine, cfg HMMConfig) *HMM {
	if cfg.Tier1Pages < 1 || cfg.PageCachePages < 1 {
		panic("baseline: tier capacities must be >= 1")
	}
	h := &HMM{
		eng:      eng,
		cfg:      cfg,
		ssd:      nvme.New(eng, cfg.SSD),
		link:     pcie.NewLink(eng, cfg.HostLanes),
		handlers: sim.NewServer(eng, cfg.FaultHandlers),
		dma:      sim.NewServer(eng, 1),
		t1:       tier.NewClock(cfg.Tier1Pages),
		cache:    tier.NewClock(cfg.PageCachePages),
		pages:    make(map[tier.PageID]*hmmPage),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	h.m.Policy = "HMM"
	if cfg.ForcedHitRate >= 0 {
		h.m.Policy = "HMM-optimistic"
	}
	return h
}

// SSD exposes the simulated drive.
func (h *HMM) SSD() *nvme.Disk { return h.ssd }

func (h *HMM) page(p tier.PageID) *hmmPage {
	ps, ok := h.pages[p]
	if !ok {
		ps = &hmmPage{loc: hmmSSD}
		h.pages[p] = ps
	}
	return ps
}

// Access implements gpu.MemoryManager.
func (h *HMM) Access(a gpu.Access, done func()) {
	h.m.Accesses++
	ps := h.page(a.Page)
	switch ps.loc {
	case hmmTier1:
		h.m.Tier1Hits++
		h.t1.Touch(a.Page)
		if a.Write {
			ps.dirty = true
		}
		done()
	case hmmInFlight:
		h.m.InFlightJoins++
		if a.Write {
			ps.pendingDirty = true
		}
		ps.waiters = append(ps.waiters, done)
	case hmmSSD:
		ps.loc = hmmInFlight
		if a.Write {
			ps.pendingDirty = true
		}
		ps.waiters = append(ps.waiters, done)
		h.fault(a.Page, ps)
	}
}

// fault is the host-side service path. The handler is held from fault
// receipt until the migration is mapped on the GPU — the serialization
// that makes CPU orchestration unable to feed a GPU's parallelism. With
// PrefetchBlock set, the whole aligned block migrates in one service
// (UVM's density prefetcher): one fault overhead amortized across
// members, but the handler is held until the full block lands.
func (h *HMM) fault(p tier.PageID, ps *hmmPage) {
	h.handlers.Acquire(func() {
		h.eng.After(h.cfg.FaultOverhead, func() {
			members := h.blockMembers(p)
			remaining := len(members)
			memberDone := func() {
				remaining--
				if remaining == 0 {
					h.handlers.Release()
				}
			}
			for i, q := range members {
				h.servePage(q, h.page(q), i == 0, memberDone)
			}
		})
	})
}

// blockMembers selects the demanded page plus SSD-resident neighbors of
// its aligned block that fit in free Tier-1 capacity.
func (h *HMM) blockMembers(p tier.PageID) []tier.PageID {
	members := []tier.PageID{p}
	if h.cfg.PrefetchBlock <= 1 {
		return members
	}
	b := tier.PageID(h.cfg.PrefetchBlock)
	base := p - p%b
	for q := base; q < base+b; q++ {
		if q == p {
			continue
		}
		qs := h.page(q)
		if qs.loc != hmmSSD {
			continue
		}
		if h.t1.Len()+h.reserved+len(members) >= h.t1.Capacity() {
			break // never evict for speculation
		}
		qs.loc = hmmInFlight
		members = append(members, q)
		h.m.Prefetches++
	}
	return members
}

// servePage migrates one page to the GPU: from the host page cache if
// present, else through the drive. Only demanded pages enter the
// hit/fill access breakdown; speculative block members are tallied as
// prefetches.
func (h *HMM) servePage(p tier.PageID, ps *hmmPage, demand bool, done func()) {
	h.makeRoom()
	h.reserved++
	if h.cacheHit(ps) {
		if demand {
			h.m.Tier2Hits++
		}
		h.copyToGPU(p, ps, done)
		return
	}
	if demand {
		h.m.SSDFills++
	}
	h.ssd.Read(int64(p), h.cfg.PageSize, func(nvme.Completion) {
		h.insertCache(p, ps)
		h.copyToGPU(p, ps, done)
	})
}

func (h *HMM) cacheHit(ps *hmmPage) bool {
	if h.cfg.ForcedHitRate >= 0 {
		return h.rng.Float64() < h.cfg.ForcedHitRate
	}
	return ps.cached
}

// insertCache records the page in the (inclusive) host page cache,
// evicting under clock if full.
func (h *HMM) insertCache(p tier.PageID, ps *hmmPage) {
	if ps.cached {
		h.cache.Touch(p)
		return
	}
	if h.cache.Full() {
		v := h.cache.Victim()
		h.cache.Remove(v)
		vps := h.pages[v]
		vps.cached = false
		h.m.Tier2Evictions++
		if vps.cacheDirty {
			vps.cacheDirty = false
			h.ssd.Write(int64(v), h.cfg.PageSize, nil)
		}
	}
	h.cache.Insert(p)
	ps.cached = true
}

// copyToGPU programs the host DMA engine and streams the page down.
func (h *HMM) copyToGPU(p tier.PageID, ps *hmmPage, done func()) {
	h.dma.Acquire(func() {
		h.eng.After(h.cfg.DMALaunch, func() {
			h.dma.Release()
			h.link.Down.Transfer(h.cfg.PageSize, func() {
				h.m.PagesToGPU++
				h.install(p, ps)
				done()
			})
		})
	})
}

func (h *HMM) install(p tier.PageID, ps *hmmPage) {
	h.reserved--
	h.t1.Insert(p)
	ps.loc = hmmTier1
	ps.dirty = ps.pendingDirty
	ps.pendingDirty = false
	waiters := ps.waiters
	ps.waiters = nil
	for _, w := range waiters {
		w()
	}
}

// makeRoom evicts a Tier-1 victim if needed. Victims migrate back to the
// host: dirty data crosses the link and dirties the page cache copy;
// clean pages are simply unmapped (their cache or SSD copy is current).
func (h *HMM) makeRoom() {
	if h.t1.Len()+h.reserved < h.t1.Capacity() {
		return
	}
	if h.t1.Len() == 0 {
		panic("baseline: Tier-1 exhausted by reservations")
	}
	v := h.t1.Victim()
	h.t1.Remove(v)
	vps := h.pages[v]
	vps.loc = hmmSSD
	if vps.dirty {
		vps.dirty = false
		h.m.EvictionsToTier2++
		h.m.PagesToHost++
		h.link.Up.Transfer(h.cfg.PageSize, nil)
		if !vps.cached {
			h.insertCache(v, vps)
		}
		vps.cacheDirty = true
	} else {
		h.m.EvictionsDropped++
	}
}

// Snapshot reports run metrics.
func (h *HMM) Snapshot() stats.Run {
	m := h.m
	ds := h.ssd.Stats()
	m.SSDReads = ds.Reads
	m.SSDWrites = ds.Writes // authoritative drive counter
	m.SSDReadBytes = ds.ReadBytes
	m.SSDWriteBytes = ds.WriteBytes
	return m
}

// CheckInvariants panics on inconsistent residency accounting.
func (h *HMM) CheckInvariants() {
	t1n, cached, inflight := 0, 0, 0
	for p, ps := range h.pages {
		if ps.loc == hmmTier1 {
			t1n++
			if !h.t1.Contains(p) {
				panic("baseline: Tier-1 accounting mismatch")
			}
		}
		if ps.loc == hmmInFlight {
			inflight++
		}
		if ps.cached {
			cached++
			if !h.cache.Contains(p) {
				panic("baseline: page cache accounting mismatch")
			}
		}
	}
	if t1n != h.t1.Len() || cached != h.cache.Len() || inflight != h.reserved {
		panic("baseline: residency counters disagree")
	}
}
