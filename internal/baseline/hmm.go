// Package baseline implements the CPU-orchestrated 3-tier comparator of
// the paper's §3.6: Linux HMM extending UVM through the host page cache.
//
// The architectural difference from GMT is who orchestrates: every GPU
// demand fault traps to the host, where a small pool of driver fault
// handlers (UVM services a GPU's fault buffer with very limited
// parallelism) performs the lookup, the SSD I/O through the kernel page
// cache, and the host-programmed DMA to GPU memory — all while holding
// the handler. Hundreds of concurrently faulting warps therefore
// serialize behind a few host threads, which is exactly the bottleneck
// BaM (and GMT) demonstrate against.
//
// The package also provides the "optimistic HMM" of §3.6: HMM granted
// GMT-Reuse's Tier-2 hit rate, with its I/O time lowered accordingly.
package baseline

import (
	"fmt"
	"math/rand"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/nvme"
	"github.com/gmtsim/gmt/internal/pcie"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
)

// HMMConfig parameterizes the CPU-orchestrated manager.
type HMMConfig struct {
	Tier1Pages     int
	PageCachePages int // host page cache capacity (the Tier-2 analogue)
	PageSize       int64

	// FootprintPages, when positive, presizes the page directory for the
	// workload footprint so steady-state faults never grow it.
	FootprintPages int

	// FaultHandlers is the host-side fault service parallelism; the UVM
	// driver processes a GPU's fault buffer nearly serially.
	FaultHandlers int
	// PrefetchBlock enables UVM's density-based block prefetcher
	// (NVIDIA's oversubscription tuning, paper ref [12]): a fault
	// migrates the whole aligned block of this many pages in one
	// service, amortizing the fault overhead across neighbors. Zero or
	// one disables it.
	PrefetchBlock int
	// FaultOverhead is the host CPU work per fault (fault buffer
	// processing, page table + TLB maintenance).
	FaultOverhead sim.Time
	// DMALaunch is the host cost to program one DMA copy.
	DMALaunch sim.Time

	HostLanes int
	SSD       nvme.Config

	// ForcedHitRate, when in [0,1], overrides page-cache membership with
	// a coin of that bias — the §3.6 "optimistic HMM" device. Negative
	// disables it.
	ForcedHitRate float64
	Seed          int64
}

// DefaultHMMConfig mirrors the paper's platform.
func DefaultHMMConfig() HMMConfig {
	return HMMConfig{
		Tier1Pages:     1024,
		PageCachePages: 4096,
		PageSize:       64 * 1024,
		FaultHandlers:  2,
		FaultOverhead:  30 * sim.Microsecond,
		DMALaunch:      10 * sim.Microsecond,
		HostLanes:      16,
		SSD:            nvme.DefaultConfig(),
		ForcedHitRate:  -1,
		Seed:           1,
	}
}

type hmmLoc uint8

const (
	hmmSSD hmmLoc = iota
	hmmTier1
	hmmInFlight
)

type hmmPage struct {
	loc          hmmLoc
	dirty        bool
	pendingDirty bool
	cached       bool // resident in the host page cache (inclusive)
	cacheDirty   bool
	// waiters are the warp completions parked on an in-flight fill. The
	// callbacks themselves are the GPU's per-warp done values (allocated
	// once at Launch); the backing arrays cycle through waiterPool so a
	// fault-heavy run stops allocating them once the peak is reached.
	waiters []func()
}

// hmmPageDir is the dense page-metadata table: a PageID-indexed slice of
// *hmmPage backed by a chunked arena (pointer stability — fault records
// hold *hmmPage across simulated events). It replaces the former map so
// steady-state lookups neither hash nor allocate.
type hmmPageDir struct {
	dir    []*hmmPage
	chunks [][]hmmPage
	cursor int // fill position in the newest chunk
}

// hmmPageChunkSize is the arena growth quantum (structs per chunk).
const hmmPageChunkSize = 1024

// reserve presizes the index for an n-page footprint.
func (d *hmmPageDir) reserve(n int) {
	if n > len(d.dir) {
		nv := make([]*hmmPage, n)
		copy(nv, d.dir)
		d.dir = nv
	}
}

// lookup returns p's state, creating it (on the SSD, clean) on first
// reference.
//
//gmt:hotpath
func (d *hmmPageDir) lookup(p tier.PageID) *hmmPage {
	if uint64(p) < uint64(len(d.dir)) {
		if ps := d.dir[p]; ps != nil {
			return ps
		}
	}
	return d.lookupSlow(p)
}

// lookupSlow handles first references and index growth, both amortized
// off the fault steady state.
//
//gmt:coldpath
func (d *hmmPageDir) lookupSlow(p tier.PageID) *hmmPage {
	if p < 0 {
		panic(fmt.Sprintf("baseline: negative page id %d", p))
	}
	if int64(p) >= int64(len(d.dir)) {
		size := len(d.dir)
		if size < 64 {
			size = 64
		}
		for int64(size) <= int64(p) {
			size *= 2
		}
		d.reserve(size)
	}
	if ps := d.dir[p]; ps != nil {
		return ps
	}
	if len(d.chunks) == 0 || d.cursor == hmmPageChunkSize {
		d.chunks = append(d.chunks, make([]hmmPage, hmmPageChunkSize))
		d.cursor = 0
	}
	ps := &d.chunks[len(d.chunks)-1][d.cursor]
	d.cursor++
	d.dir[p] = ps
	return ps
}

// HMM is the CPU-orchestrated 3-tier memory manager.
type HMM struct {
	eng      *sim.Engine
	cfg      HMMConfig
	ssd      *nvme.Disk
	link     *pcie.Link
	handlers *sim.Server
	dma      *sim.Server

	t1    *tier.Clock
	cache *tier.Clock // host page cache, LRU-approximated by clock

	pages    hmmPageDir
	reserved int
	rng      *rand.Rand

	// Free-listed fault/serve records and recycled waiter arrays: the
	// whole fault pipeline reuses them, so a miss-heavy run schedules no
	// per-fault heap objects once the in-flight peak is reached.
	faultPool  []*hmmFault
	servePool  []*hmmServe
	waiterPool [][]func()

	m stats.Run
}

var _ gpu.MemoryManager = (*HMM)(nil)

// NewHMM builds the manager and its devices on eng.
func NewHMM(eng *sim.Engine, cfg HMMConfig) *HMM {
	if cfg.Tier1Pages < 1 || cfg.PageCachePages < 1 {
		panic("baseline: tier capacities must be >= 1")
	}
	h := &HMM{
		eng:      eng,
		cfg:      cfg,
		ssd:      nvme.New(eng, cfg.SSD),
		link:     pcie.NewLink(eng, cfg.HostLanes),
		handlers: sim.NewServer(eng, cfg.FaultHandlers),
		dma:      sim.NewServer(eng, 1),
		t1:       tier.NewClock(cfg.Tier1Pages),
		cache:    tier.NewClock(cfg.PageCachePages),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.FootprintPages > 0 {
		h.pages.reserve(cfg.FootprintPages)
	}
	h.m.Policy = "HMM"
	if cfg.ForcedHitRate >= 0 {
		h.m.Policy = "HMM-optimistic"
	}
	return h
}

// SSD exposes the simulated drive.
func (h *HMM) SSD() *nvme.Disk { return h.ssd }

//gmt:hotpath
func (h *HMM) page(p tier.PageID) *hmmPage {
	return h.pages.lookup(p)
}

// hmmFault carries one fault service through the handler pipeline:
// handler slot → fault overhead → block selection → one hmmServe per
// member → handler release when the last member lands. Records are
// pooled on the HMM and every stage is a top-level EventFunc with the
// fault as context.
type hmmFault struct {
	h         *HMM
	page      tier.PageID
	remaining int
	members   []tier.PageID // capacity reused across services
}

// hmmServe carries one member page's migration: page-cache probe → SSD
// read (on a cache miss) → DMA program → link transfer → install.
type hmmServe struct {
	h     *HMM
	fault *hmmFault
	page  tier.PageID
	ps    *hmmPage
}

// Pool-miss growth quanta: a miss carves a whole chunk so the pools grow
// in O(peak/chunk) allocations.
const (
	hmmFaultChunkSize = 16
	hmmServeChunkSize = 32
)

//gmt:hotpath
func (h *HMM) newFault() *hmmFault {
	if n := len(h.faultPool); n > 0 {
		fr := h.faultPool[n-1]
		h.faultPool = h.faultPool[:n-1]
		return fr
	}
	return h.newFaultChunk()
}

//gmt:coldpath
func (h *HMM) newFaultChunk() *hmmFault {
	chunk := make([]hmmFault, hmmFaultChunkSize)
	for i := range chunk {
		chunk[i].h = h
		if i > 0 {
			h.faultPool = append(h.faultPool, &chunk[i])
		}
	}
	return &chunk[0]
}

//gmt:hotpath
func (h *HMM) newServe() *hmmServe {
	if n := len(h.servePool); n > 0 {
		sv := h.servePool[n-1]
		h.servePool = h.servePool[:n-1]
		return sv
	}
	return h.newServeChunk()
}

//gmt:coldpath
func (h *HMM) newServeChunk() *hmmServe {
	chunk := make([]hmmServe, hmmServeChunkSize)
	for i := range chunk {
		chunk[i].h = h
		if i > 0 {
			h.servePool = append(h.servePool, &chunk[i])
		}
	}
	return &chunk[0]
}

// Access implements gpu.MemoryManager.
//
//gmt:hotpath
func (h *HMM) Access(a gpu.Access, done func()) {
	h.m.Accesses++
	ps := h.page(a.Page)
	switch ps.loc {
	case hmmTier1:
		h.m.Tier1Hits++
		h.t1.Touch(a.Page)
		if a.Write {
			ps.dirty = true
		}
		done()
	case hmmInFlight:
		h.m.InFlightJoins++
		if a.Write {
			ps.pendingDirty = true
		}
		h.queueWaiter(ps, done)
	case hmmSSD:
		ps.loc = hmmInFlight
		if a.Write {
			ps.pendingDirty = true
		}
		h.queueWaiter(ps, done)
		h.fault(a.Page)
	}
}

// queueWaiter parks done on ps, reusing a pooled backing array for the
// first waiter of a fill cycle.
//
//gmt:hotpath
func (h *HMM) queueWaiter(ps *hmmPage, done func()) {
	if ps.waiters == nil {
		if n := len(h.waiterPool); n > 0 {
			ps.waiters = h.waiterPool[n-1]
			h.waiterPool = h.waiterPool[:n-1]
		}
	}
	ps.waiters = append(ps.waiters, done)
}

// fault is the host-side service path. The handler is held from fault
// receipt until the migration is mapped on the GPU — the serialization
// that makes CPU orchestration unable to feed a GPU's parallelism. With
// PrefetchBlock set, the whole aligned block migrates in one service
// (UVM's density prefetcher): one fault overhead amortized across
// members, but the handler is held until the full block lands.
//
//gmt:hotpath
func (h *HMM) fault(p tier.PageID) {
	fr := h.newFault()
	fr.page = p
	h.handlers.AcquireCall(hmmFaultGranted, fr, 0)
}

// hmmFaultGranted runs when a host fault handler is granted.
//
//gmt:hotpath
func hmmFaultGranted(ctx any, _ int64) {
	fr := ctx.(*hmmFault)
	fr.h.eng.AfterCall(fr.h.cfg.FaultOverhead, hmmFaultHeld, fr, 0)
}

// hmmFaultHeld runs after the fault overhead: select the block and start
// every member's migration.
//
//gmt:hotpath
func hmmFaultHeld(ctx any, _ int64) {
	fr := ctx.(*hmmFault)
	h := fr.h
	h.blockMembers(fr)
	fr.remaining = len(fr.members)
	for i, q := range fr.members {
		h.servePage(q, h.page(q), i == 0, fr)
	}
}

// blockMembers fills fr.members with the demanded page plus SSD-resident
// neighbors of its aligned block that fit in free Tier-1 capacity.
//
//gmt:hotpath
func (h *HMM) blockMembers(fr *hmmFault) {
	fr.members = append(fr.members[:0], fr.page)
	if h.cfg.PrefetchBlock <= 1 {
		return
	}
	b := tier.PageID(h.cfg.PrefetchBlock)
	base := fr.page - fr.page%b
	for q := base; q < base+b; q++ {
		if q == fr.page {
			continue
		}
		qs := h.page(q)
		if qs.loc != hmmSSD {
			continue
		}
		if h.t1.Len()+h.reserved+len(fr.members) >= h.t1.Capacity() {
			break // never evict for speculation
		}
		qs.loc = hmmInFlight
		fr.members = append(fr.members, q)
		h.m.Prefetches++
	}
}

// servePage migrates one page to the GPU: from the host page cache if
// present, else through the drive. Only demanded pages enter the
// hit/fill access breakdown; speculative block members are tallied as
// prefetches.
//
//gmt:hotpath
func (h *HMM) servePage(p tier.PageID, ps *hmmPage, demand bool, fr *hmmFault) {
	h.makeRoom()
	h.reserved++
	sv := h.newServe()
	sv.fault, sv.page, sv.ps = fr, p, ps
	if h.cacheHit(ps) {
		if demand {
			h.m.Tier2Hits++
		}
		h.copyToGPU(sv)
		return
	}
	if demand {
		h.m.SSDFills++
	}
	h.ssd.ReadCall(int64(p), h.cfg.PageSize, hmmReadDone, sv, 0)
}

//gmt:hotpath
func (h *HMM) cacheHit(ps *hmmPage) bool {
	if h.cfg.ForcedHitRate >= 0 {
		return h.rng.Float64() < h.cfg.ForcedHitRate
	}
	return ps.cached
}

// hmmReadDone runs when the drive posts the fill's completion.
//
//gmt:hotpath
func hmmReadDone(ctx any, _ int64) {
	sv := ctx.(*hmmServe)
	sv.h.insertCache(sv.page, sv.ps)
	sv.h.copyToGPU(sv)
}

// insertCache records the page in the (inclusive) host page cache,
// evicting under clock if full.
//
//gmt:hotpath
func (h *HMM) insertCache(p tier.PageID, ps *hmmPage) {
	if ps.cached {
		h.cache.Touch(p)
		return
	}
	if h.cache.Full() {
		v := h.cache.Victim()
		h.cache.Remove(v)
		vps := h.page(v)
		vps.cached = false
		h.m.Tier2Evictions++
		if vps.cacheDirty {
			vps.cacheDirty = false
			h.ssd.Write(int64(v), h.cfg.PageSize, nil)
		}
	}
	h.cache.Insert(p)
	ps.cached = true
}

// copyToGPU programs the host DMA engine and streams the page down.
//
//gmt:hotpath
func (h *HMM) copyToGPU(sv *hmmServe) {
	h.dma.AcquireCall(hmmDMAGranted, sv, 0)
}

// hmmDMAGranted runs when the (single) host DMA engine is granted.
//
//gmt:hotpath
func hmmDMAGranted(ctx any, _ int64) {
	sv := ctx.(*hmmServe)
	sv.h.eng.AfterCall(sv.h.cfg.DMALaunch, hmmDMAProgrammed, sv, 0)
}

// hmmDMAProgrammed runs when the copy has been programmed: release the
// engine for the next programmer and stream the page down the link.
//
//gmt:hotpath
func hmmDMAProgrammed(ctx any, _ int64) {
	sv := ctx.(*hmmServe)
	h := sv.h
	h.dma.Release()
	h.link.Down.TransferCall(h.cfg.PageSize, hmmPageArrived, sv, 0)
}

// hmmPageArrived runs when the page lands in GPU memory: install it,
// wake the waiters, and release the fault handler once the last block
// member is mapped. The serve record is recycled before install (its
// payload is saved first), so a re-fault triggered downstream may reuse
// it.
//
//gmt:hotpath
func hmmPageArrived(ctx any, _ int64) {
	sv := ctx.(*hmmServe)
	h := sv.h
	h.m.PagesToGPU++
	p, ps, fr := sv.page, sv.ps, sv.fault
	sv.fault, sv.ps = nil, nil
	h.servePool = append(h.servePool, sv)
	h.install(p, ps)
	fr.remaining--
	if fr.remaining == 0 {
		h.handlers.Release()
		fr.members = fr.members[:0]
		h.faultPool = append(h.faultPool, fr)
	}
}

//gmt:hotpath
func (h *HMM) install(p tier.PageID, ps *hmmPage) {
	h.reserved--
	h.t1.Insert(p)
	ps.loc = hmmTier1
	ps.dirty = ps.pendingDirty
	ps.pendingDirty = false
	waiters := ps.waiters
	ps.waiters = nil
	for i, w := range waiters {
		waiters[i] = nil
		w()
	}
	if waiters != nil {
		h.waiterPool = append(h.waiterPool, waiters[:0])
	}
}

// makeRoom evicts a Tier-1 victim if needed. Victims migrate back to the
// host: dirty data crosses the link and dirties the page cache copy;
// clean pages are simply unmapped (their cache or SSD copy is current).
//
//gmt:hotpath
func (h *HMM) makeRoom() {
	if h.t1.Len()+h.reserved < h.t1.Capacity() {
		return
	}
	if h.t1.Len() == 0 {
		panic("baseline: Tier-1 exhausted by reservations")
	}
	v := h.t1.Victim()
	h.t1.Remove(v)
	vps := h.page(v)
	vps.loc = hmmSSD
	if vps.dirty {
		vps.dirty = false
		h.m.EvictionsToTier2++
		h.m.PagesToHost++
		h.link.Up.Transfer(h.cfg.PageSize, nil)
		if !vps.cached {
			h.insertCache(v, vps)
		}
		vps.cacheDirty = true
	} else {
		h.m.EvictionsDropped++
	}
}

// Snapshot reports run metrics.
func (h *HMM) Snapshot() stats.Run {
	m := h.m
	ds := h.ssd.Stats()
	m.SSDReads = ds.Reads
	m.SSDWrites = ds.Writes // authoritative drive counter
	m.SSDReadBytes = ds.ReadBytes
	m.SSDWriteBytes = ds.WriteBytes
	return m
}

// CheckInvariants panics on inconsistent residency accounting.
func (h *HMM) CheckInvariants() {
	t1n, cached, inflight := 0, 0, 0
	for i, ps := range h.pages.dir {
		if ps == nil {
			continue
		}
		p := tier.PageID(i)
		if ps.loc == hmmTier1 {
			t1n++
			if !h.t1.Contains(p) {
				panic("baseline: Tier-1 accounting mismatch")
			}
		}
		if ps.loc == hmmInFlight {
			inflight++
		}
		if ps.cached {
			cached++
			if !h.cache.Contains(p) {
				panic("baseline: page cache accounting mismatch")
			}
		}
	}
	if t1n != h.t1.Len() || cached != h.cache.Len() || inflight != h.reserved {
		panic("baseline: residency counters disagree")
	}
}
