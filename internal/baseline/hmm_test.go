package baseline

import (
	"testing"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
)

func seqTrace(n, pages int) []gpu.Access {
	tr := make([]gpu.Access, n)
	for i := range tr {
		tr[i] = gpu.Access{Page: tier.PageID(i % pages)}
	}
	return tr
}

func smallHMM() HMMConfig {
	cfg := DefaultHMMConfig()
	cfg.Tier1Pages = 32
	cfg.PageCachePages = 128
	return cfg
}

func runHMM(t *testing.T, cfg HMMConfig, trace []gpu.Access, warps int) (*HMM, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	h := NewHMM(eng, cfg)
	g := gpu.New(eng, gpu.Config{Warps: warps, ComputePerAccess: 200}, &gpu.SliceStream{Trace: trace}, h)
	g.Launch()
	eng.Run()
	if !g.Done() {
		t.Fatal("kernel did not finish")
	}
	h.CheckInvariants()
	return h, eng.Now()
}

func runBaM(t *testing.T, trace []gpu.Access, warps int) (stats.Run, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := core.DefaultConfig()
	cfg.Policy = core.PolicyBaM
	cfg.Tier1Pages = 32
	rt := core.NewRuntime(eng, cfg)
	g := gpu.New(eng, gpu.Config{Warps: warps, ComputePerAccess: 200}, &gpu.SliceStream{Trace: trace}, rt)
	g.Launch()
	eng.Run()
	return rt.Snapshot(), eng.Now()
}

func TestHMMAccountingAddsUp(t *testing.T) {
	h, _ := runHMM(t, smallHMM(), seqTrace(5000, 200), 8)
	m := h.Snapshot()
	if m.Tier1Hits+m.Tier2Hits+m.SSDFills+m.InFlightJoins != m.Accesses {
		t.Fatalf("breakdown does not add up: %+v", m)
	}
}

func TestHMMPageCacheHits(t *testing.T) {
	// Working set 100 pages > Tier-1 (32) but < page cache (128): later
	// cycles must be served by the page cache, not the drive.
	h, _ := runHMM(t, smallHMM(), seqTrace(20_000, 100), 8)
	m := h.Snapshot()
	if m.Tier2Hits == 0 {
		t.Fatal("page cache never hit")
	}
	if m.SSDReads > 2*100 {
		t.Fatalf("SSD reads = %d; inclusive page cache not retaining", m.SSDReads)
	}
}

func TestHMMSlowerThanBaM(t *testing.T) {
	// Figure 14: despite its Tier-2 leverage, CPU-orchestrated HMM loses
	// to GPU-orchestrated BaM under parallel demand misses.
	trace := seqTrace(20_000, 400) // streaming, beyond both caches
	_, tBam := runBaM(t, trace, 64)
	_, tHMM := runHMM(t, smallHMM(), trace, 64)
	if tHMM <= tBam {
		t.Fatalf("HMM (%dms) not slower than BaM (%dms)",
			tHMM/sim.Millisecond, tBam/sim.Millisecond)
	}
	ratio := float64(tBam) / float64(tHMM)
	if ratio > 0.75 {
		t.Fatalf("HMM at %.2fx of BaM; want the paper's clear gap (<0.75x)", ratio)
	}
}

func TestHMMHandlerSerialization(t *testing.T) {
	// Halving handler parallelism must not speed anything up, and a
	// larger pool must help: the bottleneck is the host.
	trace := seqTrace(5000, 400)
	one := smallHMM()
	one.FaultHandlers = 1
	_, t1 := runHMM(t, one, trace, 64)
	eight := smallHMM()
	eight.FaultHandlers = 8
	_, t8 := runHMM(t, eight, trace, 64)
	if t8 >= t1 {
		t.Fatalf("8 handlers (%d) not faster than 1 (%d): host not the bottleneck", t8, t1)
	}
}

func TestHMMDirtyWriteback(t *testing.T) {
	trace := make([]gpu.Access, 4000)
	for i := range trace {
		trace[i] = gpu.Access{Page: tier.PageID(i % 300), Write: true}
	}
	h, _ := runHMM(t, smallHMM(), trace, 8)
	m := h.Snapshot()
	if m.PagesToHost == 0 {
		t.Fatal("dirty Tier-1 victims never migrated to host")
	}
	if m.SSDWrites == 0 {
		t.Fatal("dirty page-cache evictions never hit the drive")
	}
}

func TestHMMOptimisticForcedHitRate(t *testing.T) {
	trace := seqTrace(20_000, 400)
	real := smallHMM()
	_, tReal := runHMM(t, real, trace, 32)
	opt := smallHMM()
	opt.ForcedHitRate = 0.9
	h, tOpt := runHMM(t, opt, trace, 32)
	if h.Snapshot().Policy != "HMM-optimistic" {
		t.Fatalf("policy label = %q", h.Snapshot().Policy)
	}
	if tOpt >= tReal {
		t.Fatalf("optimistic HMM (%d) not faster than real HMM (%d)", tOpt, tReal)
	}
	if hr := h.Snapshot().Tier2HitRate(); hr < 0.85 || hr > 0.95 {
		t.Fatalf("forced hit rate delivered %.2f, want ≈0.9", hr)
	}
}

func TestHMMInFlightCoalescing(t *testing.T) {
	trace := make([]gpu.Access, 64)
	for i := range trace {
		trace[i] = gpu.Access{Page: 3}
	}
	h, _ := runHMM(t, smallHMM(), trace, 64)
	if h.Snapshot().SSDReads != 1 {
		t.Fatalf("SSD reads = %d, want 1", h.Snapshot().SSDReads)
	}
}

func TestHMMDeterminism(t *testing.T) {
	trace := seqTrace(8000, 300)
	_, a := runHMM(t, smallHMM(), trace, 16)
	_, b := runHMM(t, smallHMM(), trace, 16)
	if a != b {
		t.Fatalf("runs diverged: %d vs %d", a, b)
	}
}

func TestHMMBlockPrefetchHelpsSequential(t *testing.T) {
	// UVM's density prefetcher (paper ref [12]) amortizes the fault
	// overhead over whole blocks on sequential scans.
	// Few warps: with many warps every block member is demand-faulted
	// before the prefetcher can claim it.
	trace := seqTrace(3000, 3000)
	plain := smallHMM()
	_, tPlain := runHMM(t, plain, trace, 2)
	pf := smallHMM()
	pf.PrefetchBlock = 8
	h, tPf := runHMM(t, pf, trace, 2)
	if h.Snapshot().Prefetches == 0 {
		t.Fatal("no block prefetches issued")
	}
	if tPf >= tPlain {
		t.Fatalf("block prefetch (%dms) not faster than plain (%dms) on a scan",
			tPf/sim.Millisecond, tPlain/sim.Millisecond)
	}
	// Accounting identity must survive speculation.
	m := h.Snapshot()
	if m.Tier1Hits+m.Tier2Hits+m.SSDFills+m.InFlightJoins != m.Accesses {
		t.Fatalf("breakdown broken with prefetch: %+v", m)
	}
}

func TestHMMBlockPrefetchStillLosesToBaM(t *testing.T) {
	// Even with the prefetcher, the host orchestration bottleneck keeps
	// HMM behind GPU-orchestrated BaM on parallel irregular misses —
	// the paper's core argument survives UVM tuning.
	trace := seqTrace(20_000, 400)
	_, tBam := runBaM(t, trace, 64)
	pf := smallHMM()
	pf.PrefetchBlock = 8
	_, tHMM := runHMM(t, pf, trace, 64)
	if tHMM <= tBam {
		t.Fatalf("prefetching HMM (%dms) beat BaM (%dms)",
			tHMM/sim.Millisecond, tBam/sim.Millisecond)
	}
}

func TestHMMAccessors(t *testing.T) {
	h := NewHMM(sim.NewEngine(), smallHMM())
	if h.SSD() == nil {
		t.Fatal("SSD accessor nil")
	}
	if h.SSD().Stats().Reads != 0 {
		t.Fatal("fresh drive has reads")
	}
}

func TestHMMConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	cfg := DefaultHMMConfig()
	cfg.Tier1Pages = 0
	NewHMM(sim.NewEngine(), cfg)
}
