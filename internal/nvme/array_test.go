package nvme

import (
	"testing"

	"github.com/gmtsim/gmt/internal/sim"
)

func TestArrayStripesEvenly(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, DefaultConfig(), 4)
	for i := int64(0); i < 400; i++ {
		a.Read(i, page, nil)
	}
	eng.Run()
	for i := 0; i < 4; i++ {
		if got := a.Disk(i).Stats().Reads; got != 100 {
			t.Fatalf("drive %d got %d reads, want 100", i, got)
		}
	}
	if a.Stats().Reads != 400 {
		t.Fatalf("aggregate reads = %d", a.Stats().Reads)
	}
}

func TestArrayBandwidthScales(t *testing.T) {
	run := func(drives int) sim.Time {
		eng := sim.NewEngine()
		a := NewArray(eng, DefaultConfig(), drives)
		for i := int64(0); i < 2000; i++ {
			a.Read(i, page, nil)
		}
		eng.Run()
		return eng.Now()
	}
	one, four := run(1), run(4)
	// BaM's scaling claim: aggregate bandwidth grows near-linearly.
	speedup := float64(one) / float64(four)
	if speedup < 3.0 {
		t.Fatalf("4 drives only %.2fx faster than 1", speedup)
	}
}

func TestArrayAggregateStats(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, DefaultConfig(), 2)
	a.Read(0, page, nil)
	a.Write(1, page, nil)
	eng.Run()
	s := a.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.Completions != 2 {
		t.Fatalf("aggregate stats = %+v", s)
	}
	if s.MeanLatency <= 0 {
		t.Fatal("mean latency not aggregated")
	}
	if a.Drives() != 2 {
		t.Fatalf("Drives = %d", a.Drives())
	}
}

func TestArrayValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty array did not panic")
		}
	}()
	NewArray(sim.NewEngine(), DefaultConfig(), 0)
}

func TestArrayNegativeLBA(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, DefaultConfig(), 3)
	done := false
	a.Read(-7, page, func(Completion) { done = true })
	eng.Run()
	if !done {
		t.Fatal("negative LBA read lost")
	}
}
