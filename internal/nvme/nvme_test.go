package nvme

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gmtsim/gmt/internal/sim"
)

const page = 64 * 1024

func TestUnloadedReadLatency(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, DefaultConfig())
	var got sim.Time
	d.Read(0, page, func(c Completion) { got = c.Latency() })
	eng.Run()
	// Paper §3.4: retrieving a page from SSD costs ≈130 µs.
	if got < 110*sim.Microsecond || got > 150*sim.Microsecond {
		t.Fatalf("unloaded 64K read latency = %dµs, want ≈130µs", got/sim.Microsecond)
	}
}

func TestSaturatedReadBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, DefaultConfig())
	const n = 2000
	for i := 0; i < n; i++ {
		d.Read(int64(i), page, nil)
	}
	eng.Run()
	elapsed := eng.Now()
	bps := int64(n) * page * sim.Second / elapsed
	// Gen3 x4 bound: ≈3.2 GB/s.
	if bps < 2_800_000_000 || bps > 3_400_000_000 {
		t.Fatalf("saturated read bandwidth = %.2f GB/s, want ≈3.2", float64(bps)/1e9)
	}
}

func TestQueueDepthBoundsInFlight(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Queues = 1
	cfg.QueueDepth = 4
	d := New(eng, cfg)
	for i := 0; i < 100; i++ {
		d.Read(int64(i), page, nil)
	}
	if got := d.queues[0].InUse(); got != 4 {
		t.Fatalf("in-service commands = %d, want queue depth 4", got)
	}
	eng.Run()
	if d.Stats().Completions != 100 {
		t.Fatalf("completions = %d, want 100", d.Stats().Completions)
	}
}

func TestMultiQueueRaisesInFlight(t *testing.T) {
	// With depth 4 per queue, 4 queues admit 16 commands at once.
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Queues = 4
	cfg.QueueDepth = 4
	d := New(eng, cfg)
	for i := 0; i < 100; i++ {
		d.Read(int64(i), page, nil)
	}
	inUse := 0
	for _, q := range d.queues {
		inUse += q.InUse()
	}
	if inUse != 16 {
		t.Fatalf("in-service = %d, want 16 across 4 queues", inUse)
	}
	if d.QueuePairs() != 4 {
		t.Fatalf("QueuePairs = %d", d.QueuePairs())
	}
	eng.Run()
	if d.Stats().Completions != 100 {
		t.Fatalf("completions = %d", d.Stats().Completions)
	}
}

func TestMultiQueueHelpsUnderShallowDepth(t *testing.T) {
	// A depth-2 single queue serializes submissions; 8 such queues
	// restore the parallelism BaM needs.
	run := func(queues int) sim.Time {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Queues = queues
		cfg.QueueDepth = 2
		d := New(eng, cfg)
		for i := 0; i < 64; i++ {
			d.Read(int64(i), page, nil)
		}
		eng.Run()
		return eng.Now()
	}
	one, eight := run(1), run(8)
	if eight >= one {
		t.Fatalf("8 queues (%dµs) not faster than 1 (%dµs)",
			eight/sim.Microsecond, one/sim.Microsecond)
	}
}

func TestSaturatedWriteBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, DefaultConfig())
	const n = 1000
	for i := 0; i < n; i++ {
		d.Write(int64(i), page, nil)
	}
	eng.Run()
	bps := int64(n) * page * sim.Second / eng.Now()
	// Media write rate bound: ≈3.2 GB/s, never above it.
	if bps < 2_800_000_000 || bps > 3_300_000_000 {
		t.Fatalf("saturated write bandwidth = %.2f GB/s, want ≈3.2", float64(bps)/1e9)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, DefaultConfig())
	d.Read(0, page, nil)
	d.Read(1, page, nil)
	d.Write(2, 2*page, nil)
	eng.Run()
	s := d.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("reads=%d writes=%d, want 2,1", s.Reads, s.Writes)
	}
	if s.ReadBytes != 2*page || s.WriteBytes != 2*page {
		t.Fatalf("readBytes=%d writeBytes=%d", s.ReadBytes, s.WriteBytes)
	}
	if s.MeanLatency <= 0 {
		t.Fatal("mean latency not recorded")
	}
}

func TestParallelismHidesLatency(t *testing.T) {
	// 8 concurrent reads on 8 channels should take far less than 8x one
	// read — this is the overlap BaM exploits with many warps.
	one := func(n int) sim.Time {
		eng := sim.NewEngine()
		d := New(eng, DefaultConfig())
		for i := 0; i < n; i++ {
			d.Read(int64(i), page, nil)
		}
		eng.Run()
		return eng.Now()
	}
	t1, t8 := one(1), one(8)
	// Serial issue would cost 8*t1; with 8 channels the fixed media
	// latency overlaps and only the media byte rate serializes, so the
	// batch should land well under 4*t1 (measured ≈2.1*t1).
	if t8 > 4*t1 {
		t.Fatalf("8 parallel reads took %dµs vs %dµs for one; latency not overlapped",
			t8/sim.Microsecond, t1/sim.Microsecond)
	}
}

func TestZeroByteCommandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-byte command did not panic")
		}
	}()
	New(sim.NewEngine(), DefaultConfig()).Read(0, 0, nil)
}

// Property: every submitted command completes exactly once, in any
// interleaving of reads and writes.
func TestNoCommandLost(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Queues = 1
		cfg.QueueDepth = 8
		d := New(eng, cfg)
		total := int(n) + 1
		completed := 0
		for i := 0; i < total; i++ {
			op := OpRead
			if rng.Intn(2) == 1 {
				op = OpWrite
			}
			at := sim.Time(rng.Intn(100_000))
			eng.At(at, func() {
				d.Submit(Command{Op: op, LBA: int64(i), Bytes: page},
					func(Completion) { completed++ })
			})
		}
		eng.Run()
		return completed == total && d.Stats().Completions == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOpcodeString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("opcode strings wrong")
	}
	if Opcode(9).String() != "opcode(9)" {
		t.Fatalf("unknown opcode string = %q", Opcode(9).String())
	}
}
