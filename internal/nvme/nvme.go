// Package nvme models an NVMe SSD and its queue-pair protocol, the
// storage substrate that both BaM and GMT drive directly from the GPU.
//
// The model reproduces the properties the paper relies on:
//
//   - Submission/completion queue pairs with bounded depth: a submitter
//     (GPU warp in BaM/GMT, host thread in HMM's libnvm path) must own a
//     submission-queue entry before issuing a command, so at most
//     QueueDepth commands are in flight per queue pair.
//   - A controller with limited internal parallelism (flash channels),
//     a fixed media access latency, and a saturable media byte rate.
//   - Data transfer over the drive's PCIe Gen3 x4 link.
//
// A 64 KiB read on an idle drive completes in ≈130 µs with the default
// parameters, and sustained throughput saturates at ≈3.2 GB/s — the
// numbers the paper reports for its Samsung 970 EVO Plus (§3.4).
package nvme

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/invariant"
	"github.com/gmtsim/gmt/internal/pcie"
	"github.com/gmtsim/gmt/internal/sim"
)

// Opcode identifies an NVMe I/O command type.
type Opcode uint8

// Supported command opcodes.
const (
	OpRead Opcode = iota
	OpWrite
)

func (o Opcode) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("opcode(%d)", uint8(o))
	}
}

// Command is an NVMe I/O command as built by a GPU thread (BaM/GMT) or a
// host thread (libnvm path).
type Command struct {
	Op    Opcode
	LBA   int64 // logical block address, in Config.BlockSize units
	Bytes int64
}

// Completion reports the outcome of a command.
type Completion struct {
	Command   Command
	Submitted sim.Time
	Done      sim.Time
}

// Latency reports the command's end-to-end service time.
func (c Completion) Latency() sim.Time { return c.Done - c.Submitted }

// Config describes the simulated drive.
type Config struct {
	// Queues is the number of I/O queue pairs. BaM-style systems
	// allocate many queues in GPU memory so thousands of threads can
	// submit without contending on one ring; submissions round-robin
	// across them. Zero means one queue.
	Queues int
	// QueueDepth bounds in-flight commands per queue pair.
	QueueDepth int
	// Channels is the controller's internal parallelism.
	Channels int
	// ReadLatency / WriteLatency are fixed media access latencies.
	ReadLatency  sim.Time
	WriteLatency sim.Time
	// MediaReadBps / MediaWriteBps are the media byte rates.
	MediaReadBps  int64
	MediaWriteBps int64
	// CommandOverhead is the submission cost: doorbell write + command
	// fetch across PCIe, per command.
	CommandOverhead sim.Time
	// Lanes is the drive's PCIe link width (Gen3).
	Lanes int
	// BlockSize is the LBA size in bytes.
	BlockSize int64
}

// DefaultConfig models a Samsung 970 EVO Plus on PCIe Gen3 x4.
func DefaultConfig() Config {
	return Config{
		Queues:          8,
		QueueDepth:      128,
		Channels:        8,
		ReadLatency:     85 * sim.Microsecond,
		WriteLatency:    30 * sim.Microsecond,
		MediaReadBps:    3_400_000_000,
		MediaWriteBps:   3_200_000_000,
		CommandOverhead: 2 * sim.Microsecond,
		Lanes:           4,
		BlockSize:       512,
	}
}

// Disk is a simulated NVMe SSD with one I/O queue pair.
//
// The paper's systems allocate the queue pair in GPU memory and have GPU
// threads ring doorbells directly; the host never mediates. In the model
// this shows up as Submit being callable from any simulated agent with no
// extra cost beyond CommandOverhead.
type Disk struct {
	cfg    Config
	eng    *sim.Engine
	queues []*sim.Server // submission queue entries, one server per pair
	next   int           // round-robin cursor
	chans  *sim.Server   // controller flash channels
	read   *sim.Pipe     // media read bandwidth
	write  *sim.Pipe     // media write bandwidth
	link   *pcie.Link    // drive PCIe link

	reads, writes         int64
	readBytes, writeBytes int64
	latencySum            sim.Time
	completions           int64

	pool []*request // recycled command records
}

// request carries one command through the service pipeline: queue slot →
// doorbell overhead → flash channel → media latency → media bandwidth →
// drive link → completion. Requests are pooled on the Disk and every
// stage is a top-level EventFunc with the request as context, so
// steady-state command traffic performs no allocation.
type request struct {
	d         *Disk
	q         *sim.Server
	cmd       Command
	submitted sim.Time
	done      func(Completion) // optional: completion entry, by value
	call      sim.EventFunc    // optional: typed completion, no entry
	ctx       any
	arg       int64
}

// Stages of the command pipeline. All scheduling rides the typed
// AcquireCall/AfterCall/TransferCall paths.

// requestEnter runs when the submission-queue slot is granted.
//
//gmt:hotpath
func requestEnter(ctx any, _ int64) {
	r := ctx.(*request)
	d := r.d
	invariant.Assert(r.q.InUse() <= d.cfg.QueueDepth,
		"nvme: %d commands in flight on one queue pair, above configured QD %d",
		r.q.InUse(), d.cfg.QueueDepth)
	r.submitted = d.eng.Now()
	// Doorbell + command fetch.
	d.eng.AfterCall(d.cfg.CommandOverhead, requestFetched, r, 0)
}

// requestFetched runs when the controller has fetched the command.
//
//gmt:hotpath
func requestFetched(ctx any, _ int64) {
	r := ctx.(*request)
	r.d.chans.AcquireCall(requestService, r, 0)
}

// requestService runs when a flash channel is granted.
//
//gmt:hotpath
func requestService(ctx any, _ int64) {
	r := ctx.(*request)
	d := r.d
	invariant.Assert(d.chans.InUse() <= d.cfg.Channels,
		"nvme: %d flash channels busy, above configured %d", d.chans.InUse(), d.cfg.Channels)
	switch r.cmd.Op {
	case OpRead:
		d.reads++
		d.readBytes += r.cmd.Bytes
		d.eng.AfterCall(d.cfg.ReadLatency, requestReadMedia, r, 0)
	case OpWrite:
		d.writes++
		d.writeBytes += r.cmd.Bytes
		// Data first crosses the link into the drive buffer, then is
		// programmed to media; completion is posted after buffering +
		// program start (write-back cache typical of consumer drives
		// would post earlier; we post after program for conservatism).
		d.link.Up.TransferCall(r.cmd.Bytes, requestBuffered, r, 0)
	default:
		panic("nvme: unknown opcode")
	}
}

// requestReadMedia runs after the media read latency: stream the data
// off the media at its byte rate.
//
//gmt:hotpath
func requestReadMedia(ctx any, _ int64) {
	r := ctx.(*request)
	r.d.read.TransferCall(r.cmd.Bytes, requestLinkDown, r, 0)
}

// requestLinkDown streams read data across the drive link toward the
// requester.
//
//gmt:hotpath
func requestLinkDown(ctx any, _ int64) {
	r := ctx.(*request)
	r.d.link.Down.TransferCall(r.cmd.Bytes, requestFinish, r, 0)
}

// requestBuffered runs when write data has landed in the drive buffer:
// wait out the program latency.
//
//gmt:hotpath
func requestBuffered(ctx any, _ int64) {
	r := ctx.(*request)
	r.d.eng.AfterCall(r.d.cfg.WriteLatency, requestWriteMedia, r, 0)
}

// requestWriteMedia programs write data to media at its byte rate.
//
//gmt:hotpath
func requestWriteMedia(ctx any, _ int64) {
	r := ctx.(*request)
	r.d.write.TransferCall(r.cmd.Bytes, requestFinish, r, 0)
}

// requestFinish posts the completion entry and recycles the request.
//
//gmt:hotpath
func requestFinish(ctx any, _ int64) {
	r := ctx.(*request)
	d := r.d
	d.chans.Release()
	r.q.Release()
	d.link.CheckInvariants()
	c := Completion{Command: r.cmd, Submitted: r.submitted, Done: d.eng.Now()}
	d.completions++
	d.latencySum += c.Latency()
	done, call, cctx, carg := r.done, r.call, r.ctx, r.arg
	// Recycle before invoking the callback: it may Submit again and is
	// free to reuse this record, since c carries everything it needs.
	r.done, r.call, r.ctx, r.q = nil, nil, nil, nil
	d.pool = append(d.pool, r)
	if done != nil {
		done(c)
	}
	if call != nil {
		call(cctx, carg)
	}
}

// requestChunkSize is the pool-miss growth quantum: a miss carves a
// whole chunk of requests so the pool grows in O(peak/chunk) allocations
// rather than one heap object per outstanding command.
const requestChunkSize = 32

// newRequest pops a pooled request or carves a fresh chunk; pool misses
// are amortized away by reuse.
//
//gmt:coldpath
func (d *Disk) newRequest() *request {
	if n := len(d.pool); n > 0 {
		r := d.pool[n-1]
		d.pool = d.pool[:n-1]
		return r
	}
	chunk := make([]request, requestChunkSize)
	for i := range chunk {
		chunk[i].d = d
		d.pool = append(d.pool, &chunk[i])
	}
	r := d.pool[len(d.pool)-1]
	d.pool = d.pool[:len(d.pool)-1]
	return r
}

// New returns a disk attached to eng.
func New(eng *sim.Engine, cfg Config) *Disk {
	if cfg.QueueDepth < 1 || cfg.Channels < 1 {
		panic("nvme: QueueDepth and Channels must be >= 1")
	}
	if cfg.Queues < 1 {
		cfg.Queues = 1
	}
	d := &Disk{
		cfg:   cfg,
		eng:   eng,
		chans: sim.NewServer(eng, cfg.Channels),
		read:  sim.NewPipe(eng, cfg.MediaReadBps, 0),
		write: sim.NewPipe(eng, cfg.MediaWriteBps, 0),
		link:  pcie.NewLink(eng, cfg.Lanes),
	}
	for q := 0; q < cfg.Queues; q++ {
		d.queues = append(d.queues, sim.NewServer(eng, cfg.QueueDepth))
	}
	return d
}

// Config reports the drive configuration.
func (d *Disk) Config() Config { return d.cfg }

// Reset returns an idle drive to its freshly constructed state,
// retaining the request pool (requests hold only the disk pointer, which
// is stable) so a recycled drive issues commands with zero allocations
// from the first one. It panics if commands are in flight.
func (d *Disk) Reset() {
	if n := d.InFlight(); n != 0 {
		panic(fmt.Sprintf("nvme: Reset with %d commands in flight", n))
	}
	for _, q := range d.queues {
		q.Reset()
	}
	d.next = 0
	d.chans.Reset()
	d.read.Reset()
	d.write.Reset()
	d.link.Reset()
	d.reads, d.writes = 0, 0
	d.readBytes, d.writeBytes = 0, 0
	d.latencySum = 0
	d.completions = 0
}

// Submit issues cmd on the next queue pair (round-robin). done, if
// non-nil, runs when the completion entry is posted. Submission blocks
// (in virtual time) while the chosen queue is full, modeling a GPU warp
// polling for a free submission-queue entry.
func (d *Disk) Submit(cmd Command, done func(Completion)) {
	if cmd.Bytes <= 0 {
		panic("nvme: command with non-positive byte count")
	}
	r := d.newRequest()
	r.cmd = cmd
	r.done = done
	r.q = d.queues[d.next]
	d.next = (d.next + 1) % len(d.queues)
	r.q.AcquireCall(requestEnter, r, 0)
}

// SubmitCall is the typed-callback form of Submit for callers that do
// not need the Completion entry: call(ctx, arg) runs when the completion
// is posted, with no per-command closure.
func (d *Disk) SubmitCall(cmd Command, call sim.EventFunc, ctx any, arg int64) {
	if cmd.Bytes <= 0 {
		panic("nvme: command with non-positive byte count")
	}
	r := d.newRequest()
	r.cmd = cmd
	r.call, r.ctx, r.arg = call, ctx, arg
	r.q = d.queues[d.next]
	d.next = (d.next + 1) % len(d.queues)
	r.q.AcquireCall(requestEnter, r, 0)
}

// ReadCall is the typed-callback form of Read.
func (d *Disk) ReadCall(lba, n int64, call sim.EventFunc, ctx any, arg int64) {
	d.SubmitCall(Command{Op: OpRead, LBA: lba, Bytes: n}, call, ctx, arg)
}

// Read is a convenience wrapper issuing an OpRead of n bytes at lba.
func (d *Disk) Read(lba, n int64, done func(Completion)) {
	d.Submit(Command{Op: OpRead, LBA: lba, Bytes: n}, done)
}

// Write is a convenience wrapper issuing an OpWrite of n bytes at lba.
func (d *Disk) Write(lba, n int64, done func(Completion)) {
	d.Submit(Command{Op: OpWrite, LBA: lba, Bytes: n}, done)
}

// Stats is a snapshot of drive counters.
type Stats struct {
	Reads, Writes         int64
	ReadBytes, WriteBytes int64
	Completions           int64
	MeanLatency           sim.Time
}

// Stats reports cumulative drive activity.
func (d *Disk) Stats() Stats {
	s := Stats{
		Reads:       d.reads,
		Writes:      d.writes,
		ReadBytes:   d.readBytes,
		WriteBytes:  d.writeBytes,
		Completions: d.completions,
	}
	if d.completions > 0 {
		s.MeanLatency = d.latencySum / d.completions
	}
	return s
}

// InFlight reports commands currently being serviced or queued.
func (d *Disk) InFlight() int {
	n := 0
	for _, q := range d.queues {
		n += q.InUse() + q.Queued()
	}
	return n
}

// QueuePairs reports the number of I/O queue pairs.
func (d *Disk) QueuePairs() int { return len(d.queues) }
