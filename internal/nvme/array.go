package nvme

import "github.com/gmtsim/gmt/internal/sim"

// Array stripes pages across several drives, the way BaM scales its
// storage bandwidth beyond one SSD (the BaM paper demonstrates linear
// scaling across arrays of drives; GMT's testbed used one). Page p is
// homed on drive p mod N, so sequential page ranges spread evenly.
type Array struct {
	disks []*Disk
}

// NewArray builds n identical drives on eng.
func NewArray(eng *sim.Engine, cfg Config, n int) *Array {
	if n < 1 {
		panic("nvme: array needs at least one drive")
	}
	a := &Array{}
	for i := 0; i < n; i++ {
		a.disks = append(a.disks, New(eng, cfg))
	}
	return a
}

// Reset returns every member drive to its freshly constructed state
// (see Disk.Reset).
func (a *Array) Reset() {
	for _, d := range a.disks {
		d.Reset()
	}
}

// Drives reports the member count.
func (a *Array) Drives() int { return len(a.disks) }

// Disk returns member i.
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

func (a *Array) pick(lba int64) *Disk {
	i := lba % int64(len(a.disks))
	if i < 0 {
		i = -i
	}
	return a.disks[i]
}

// Read issues a striped read for the page at lba.
func (a *Array) Read(lba, n int64, done func(Completion)) {
	a.pick(lba).Read(lba, n, done)
}

// ReadCall is the typed-callback form of Read.
func (a *Array) ReadCall(lba, n int64, call sim.EventFunc, ctx any, arg int64) {
	a.pick(lba).ReadCall(lba, n, call, ctx, arg)
}

// Write issues a striped write for the page at lba.
func (a *Array) Write(lba, n int64, done func(Completion)) {
	a.pick(lba).Write(lba, n, done)
}

// Stats aggregates all members.
func (a *Array) Stats() Stats {
	var s Stats
	var latency sim.Time
	for _, d := range a.disks {
		ds := d.Stats()
		s.Reads += ds.Reads
		s.Writes += ds.Writes
		s.ReadBytes += ds.ReadBytes
		s.WriteBytes += ds.WriteBytes
		s.Completions += ds.Completions
		latency += ds.MeanLatency * sim.Time(ds.Completions)
	}
	if s.Completions > 0 {
		s.MeanLatency = latency / sim.Time(s.Completions)
	}
	return s
}
