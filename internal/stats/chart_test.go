package stats

import (
	"strings"
	"testing"
)

func TestBarChartRender(t *testing.T) {
	c := NewBarChart("Speedups", "x")
	c.Add("BaM", 1.0)
	c.Add("GMT-Reuse", 2.0)
	out := c.Render(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The 2.0 bar must be twice the 1.0 bar (20 vs 10 hashes).
	if strings.Count(lines[2], "#") != 2*strings.Count(lines[1], "#") {
		t.Fatalf("bars not proportional:\n%s", out)
	}
	if !strings.Contains(lines[2], "2.00x") {
		t.Fatalf("value missing:\n%s", out)
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	c := NewBarChart("", "")
	c.Add("zero", 0)
	c.Add("neg", -5)
	c.Add("tiny", 0.0001)
	c.Add("big", 100)
	out := c.Render(10)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[0], "#") != 0 || strings.Count(lines[1], "#") != 0 {
		t.Fatal("zero/negative values drew bars")
	}
	// Non-zero values always draw at least one mark.
	if strings.Count(lines[2], "#") < 1 {
		t.Fatal("tiny value invisible")
	}
	// Tiny width clamps rather than panicking.
	if !strings.Contains(c.Render(1), "#") {
		t.Fatal("clamped width broke rendering")
	}
}
