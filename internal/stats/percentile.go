package stats

import (
	"sort"

	"github.com/gmtsim/gmt/internal/sim"
)

// Digest is an exact, mergeable latency distribution: a sorted
// run-length encoding of simulated-time samples. Unlike the approximate
// sketches serving systems use online, fleet aggregation here is
// offline and modest in cardinality (one digest per node), so we keep
// every distinct value and merge exactly — fleet percentiles are
// byte-identical no matter how per-node digests are grouped or ordered,
// which is what the parallel-determinism contract requires.
type Digest struct {
	vals   []sim.Time
	counts []int64
	total  int64
}

// NewDigest builds a digest from raw samples. The input slice is not
// retained or modified.
func NewDigest(samples []sim.Time) Digest {
	if len(samples) == 0 {
		return Digest{}
	}
	sorted := append([]sim.Time(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var d Digest
	for _, v := range sorted {
		d.add(v, 1)
	}
	d.total = int64(len(sorted))
	return d
}

// add appends a (value, count) run, coalescing with the last run when
// the value repeats. Callers must append in non-decreasing value order.
func (d *Digest) add(v sim.Time, n int64) {
	if k := len(d.vals); k > 0 && d.vals[k-1] == v {
		d.counts[k-1] += n
		return
	}
	d.vals = append(d.vals, v)
	d.counts = append(d.counts, n)
}

// Count reports the number of samples the digest summarizes.
func (d Digest) Count() int64 { return d.total }

// MergeDigests folds any number of digests into one, exactly: the
// result is identical to a digest built from the concatenated raw
// samples, independent of argument order or grouping.
func MergeDigests(ds ...Digest) Digest {
	// k-way merge of sorted runs; with one digest per fleet node a
	// simple repeated-min scan is plenty.
	idx := make([]int, len(ds))
	var out Digest
	for {
		best := -1
		for i, d := range ds {
			if idx[i] >= len(d.vals) {
				continue
			}
			if best < 0 || d.vals[idx[i]] < ds[best].vals[idx[best]] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		d := ds[best]
		out.add(d.vals[idx[best]], d.counts[idx[best]])
		out.total += d.counts[idx[best]]
		idx[best]++
	}
	return out
}

// Quantile reports the exact nearest-rank quantile: the smallest sample
// value whose cumulative count reaches ceil(q·N). q is clamped to
// [0, 1]; an empty digest reports zero.
func (d Digest) Quantile(q float64) sim.Time {
	if d.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(d.total))
	if float64(rank) < q*float64(d.total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range d.counts {
		cum += c
		if cum >= rank {
			return d.vals[i]
		}
	}
	return d.vals[len(d.vals)-1]
}
