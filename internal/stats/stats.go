// Package stats defines the metric records shared by the tiering
// runtimes and the experiment drivers, plus plain-text table rendering
// for regenerating the paper's tables and figures on a terminal.
package stats

import "github.com/gmtsim/gmt/internal/sim"

// Run captures everything a tiering run reports; experiment drivers
// derive the paper's metrics (speedups, I/O reductions, lookup waste,
// prediction accuracy) from these counters.
type Run struct {
	App    string
	Policy string

	// Virtual wall time of the kernel.
	WallTime sim.Time

	// Access breakdown. Accesses = Tier1Hits + InFlightJoins +
	// Tier2Hits + SSDFills.
	Accesses      int64
	Tier1Hits     int64
	Tier2Hits     int64 // misses served from host memory ("useful lookups")
	SSDFills      int64 // misses served from the SSD
	InFlightJoins int64 // misses coalesced onto an outstanding fetch

	// Tier-2 lookup accounting (Figure 10a).
	Tier2Lookups    int64
	WastefulLookups int64

	// Eviction placement accounting (Figure 10b).
	EvictionsToTier2 int64 // Tier-1 victims placed in host memory
	EvictionsToSSD   int64 // dirty victims written back
	EvictionsDropped int64 // clean victims discarded
	Tier2Evictions   int64 // pages pushed out of Tier-2
	BackfillPlaced   int64 // Long-class victims placed via the 80% heuristic

	// SSD activity.
	SSDReads, SSDWrites         int64
	SSDReadBytes, SSDWriteBytes int64

	// GPU<->host PCIe page traffic (Tier-1 <-> Tier-2 movements).
	PagesToHost int64
	PagesToGPU  int64

	// GMT-Reuse predictor accounting (Figure 9).
	Predictions        int64
	CorrectPredictions int64
	RegressionBatches  int64
	SamplePairs        int64

	// Prefetch extension accounting (Config.PrefetchDegree).
	Prefetches   int64 // pages speculatively fetched from the SSD
	PrefetchHits int64 // prefetched pages later demanded while resident

	// Warp-time accounting from the GPU model: cumulative busy and
	// memory-stall time across all warps.
	WarpComputeNS int64
	WarpStallNS   int64

	// Tier-2 reuse latency: time from a page's placement in host memory
	// to its first reload into Tier-1, in simulated time. Collected only
	// when Config.TrackTier2Reuse is set (the KV-serving policy study);
	// zero otherwise. Tier2ReuseCount is the number of reuse intervals
	// the percentiles summarize.
	Tier2ReuseP50   sim.Time
	Tier2ReuseP99   sim.Time
	Tier2ReuseCount int64
}

// GPUUtilization reports the fraction of warp time spent computing
// rather than stalled on memory.
func (r Run) GPUUtilization() float64 {
	total := r.WarpComputeNS + r.WarpStallNS
	if total <= 0 {
		return 0
	}
	return float64(r.WarpComputeNS) / float64(total)
}

// Misses reports demand misses that initiated a fetch.
func (r Run) Misses() int64 { return r.Tier2Hits + r.SSDFills }

// Tier2HitRate reports the fraction of initiated misses served by host
// memory.
func (r Run) Tier2HitRate() float64 {
	if m := r.Misses(); m > 0 {
		return float64(r.Tier2Hits) / float64(m)
	}
	return 0
}

// WastefulLookupRate reports wasteful Tier-2 lookups as a fraction of
// Tier-1 misses (Figure 10a's metric).
func (r Run) WastefulLookupRate() float64 {
	if m := r.Misses(); m > 0 {
		return float64(r.WastefulLookups) / float64(m)
	}
	return 0
}

// PredictionAccuracy reports the GMT-Reuse predictor accuracy (Figure 9).
func (r Run) PredictionAccuracy() float64 {
	if r.Predictions > 0 {
		return float64(r.CorrectPredictions) / float64(r.Predictions)
	}
	return 0
}

// SpeedupOver reports base.WallTime / r.WallTime.
func (r Run) SpeedupOver(base Run) float64 {
	if r.WallTime == 0 {
		return 0
	}
	return float64(base.WallTime) / float64(r.WallTime)
}

// IORelativeTo reports this run's SSD I/O operations as a fraction of a
// baseline's (Figure 8b's metric).
func (r Run) IORelativeTo(base Run) float64 {
	b := base.SSDReads + base.SSDWrites
	if b == 0 {
		return 0
	}
	return float64(r.SSDReads+r.SSDWrites) / float64(b)
}
