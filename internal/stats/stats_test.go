package stats

import (
	"strings"
	"testing"
)

func TestRunDerivedMetrics(t *testing.T) {
	r := Run{
		Accesses:           100,
		Tier1Hits:          50,
		Tier2Hits:          30,
		SSDFills:           20,
		Tier2Lookups:       50,
		WastefulLookups:    20,
		Predictions:        10,
		CorrectPredictions: 7,
		WallTime:           200,
	}
	if got := r.Misses(); got != 50 {
		t.Fatalf("Misses = %d, want 50", got)
	}
	if got := r.Tier2HitRate(); got != 0.6 {
		t.Fatalf("Tier2HitRate = %g, want 0.6", got)
	}
	if got := r.WastefulLookupRate(); got != 0.4 {
		t.Fatalf("WastefulLookupRate = %g, want 0.4", got)
	}
	if got := r.PredictionAccuracy(); got != 0.7 {
		t.Fatalf("PredictionAccuracy = %g, want 0.7", got)
	}
	base := Run{WallTime: 400, SSDReads: 100, SSDWrites: 0}
	if got := r.SpeedupOver(base); got != 2 {
		t.Fatalf("SpeedupOver = %g, want 2", got)
	}
	r.SSDReads, r.SSDWrites = 40, 10
	if got := r.IORelativeTo(base); got != 0.5 {
		t.Fatalf("IORelativeTo = %g, want 0.5", got)
	}
}

func TestRunZeroDivisionSafety(t *testing.T) {
	var r Run
	if r.Tier2HitRate() != 0 || r.WastefulLookupRate() != 0 ||
		r.PredictionAccuracy() != 0 || r.SpeedupOver(Run{}) != 0 ||
		r.IORelativeTo(Run{}) != 0 {
		t.Fatal("zero-value run produced non-zero derived metrics")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "App", "Speedup")
	tb.AddRow("Srad", "1.75x")
	tb.AddRow("a-much-longer-name", "1.00x")
	out := tb.Render()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "Speedup" values start at the same offset.
	h := strings.Index(lines[1], "Speedup")
	if !strings.HasPrefix(lines[3][h:], "1.75x") || !strings.HasPrefix(lines[4][h:], "1.00x") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRowPaddingAndTruncation(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-one-cell")
	tb.AddRow("x", "y", "extra-dropped")
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	out := tb.Render()
	if strings.Contains(out, "extra-dropped") {
		t.Fatal("over-long row not truncated")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRowf("name", 1.23456, 42)
	out := tb.Render()
	if !strings.Contains(out, "1.23") {
		t.Fatalf("float not formatted to 2 places:\n%s", out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("int not rendered:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.125) != "12.5%" {
		t.Fatalf("Pct = %q", Pct(0.125))
	}
	if X(1.5) != "1.50x" {
		t.Fatalf("X = %q", X(1.5))
	}
}

func TestTableUnicodeWidths(t *testing.T) {
	tb := NewTable("", "colµ", "b")
	tb.AddRow("x", "y")
	out := tb.Render()
	lines := strings.Split(out, "\n")
	// The rule length is computed in runes; it must not be longer than
	// the header line's rune count plus padding.
	if len([]rune(lines[1])) < len([]rune("colµ")) {
		t.Fatalf("unicode width handling broken:\n%s", out)
	}
}
