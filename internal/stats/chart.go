package stats

import (
	"fmt"
	"strings"
)

// BarChart renders labeled horizontal bars — the terminal rendition of
// the paper's bar figures.
type BarChart struct {
	Title string
	Unit  string
	rows  []barRow
}

type barRow struct {
	label string
	value float64
}

// NewBarChart returns an empty chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit}
}

// Add appends one bar. Negative values are clamped to zero.
func (c *BarChart) Add(label string, value float64) {
	if value < 0 {
		value = 0
	}
	c.rows = append(c.rows, barRow{label: label, value: value})
}

// Len reports the number of bars.
func (c *BarChart) Len() int { return len(c.rows) }

// Render draws the chart with bars scaled so the maximum spans width
// characters.
func (c *BarChart) Render(width int) string {
	if width < 8 {
		width = 8
	}
	maxVal, maxLabel := 0.0, 0
	for _, r := range c.rows {
		if r.value > maxVal {
			maxVal = r.value
		}
		if n := len([]rune(r.label)); n > maxLabel {
			maxLabel = n
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for _, r := range c.rows {
		bar := 0
		if maxVal > 0 {
			bar = int(r.value / maxVal * float64(width))
		}
		if r.value > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-*s |%s%s %.2f%s\n",
			maxLabel, r.label,
			strings.Repeat("#", bar), strings.Repeat(" ", width-bar),
			r.value, c.Unit)
	}
	return b.String()
}
