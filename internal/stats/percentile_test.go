package stats

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/gmtsim/gmt/internal/sim"
)

// naiveQuantile is the reference nearest-rank implementation over raw
// samples.
func naiveQuantile(samples []sim.Time, q float64) sim.Time {
	sorted := append([]sim.Time(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int64(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestDigestMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]sim.Time, 1000)
	for i := range samples {
		// Coarse values force repeated runs, exercising coalescing.
		samples[i] = sim.Time(rng.Intn(50)) * sim.Millisecond
	}
	d := NewDigest(samples)
	if d.Count() != int64(len(samples)) {
		t.Fatalf("Count = %d, want %d", d.Count(), len(samples))
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := d.Quantile(q), naiveQuantile(samples, q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var parts []Digest
	var all []sim.Time
	for p := 0; p < 7; p++ {
		n := 50 + rng.Intn(200)
		samples := make([]sim.Time, n)
		for i := range samples {
			samples[i] = sim.Time(rng.Intn(100)) * sim.Microsecond
		}
		all = append(all, samples...)
		parts = append(parts, NewDigest(samples))
	}

	forward := MergeDigests(parts...)
	rev := make([]Digest, len(parts))
	for i := range parts {
		rev[len(parts)-1-i] = parts[i]
	}
	backward := MergeDigests(rev...)
	// Pairwise regrouping: ((0,1),(2,3),...) then fold.
	var grouped []Digest
	for i := 0; i < len(parts); i += 2 {
		if i+1 < len(parts) {
			grouped = append(grouped, MergeDigests(parts[i], parts[i+1]))
		} else {
			grouped = append(grouped, parts[i])
		}
	}
	regrouped := MergeDigests(grouped...)

	ref := NewDigest(all)
	for _, q := range []float64{0.5, 0.99, 0.999} {
		want := ref.Quantile(q)
		for name, d := range map[string]Digest{
			"forward": forward, "backward": backward, "regrouped": regrouped,
		} {
			if d.Count() != ref.Count() {
				t.Fatalf("%s Count = %d, want %d", name, d.Count(), ref.Count())
			}
			if got := d.Quantile(q); got != want {
				t.Errorf("%s Quantile(%v) = %v, want %v", name, q, got, want)
			}
		}
	}
}

func TestDigestEdgeCases(t *testing.T) {
	var empty Digest
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	one := NewDigest([]sim.Time{42})
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := one.Quantile(q); got != 42 {
			t.Errorf("single-sample Quantile(%v) = %v, want 42", q, got)
		}
	}
	merged := MergeDigests(empty, one, empty)
	if merged.Count() != 1 || merged.Quantile(0.99) != 42 {
		t.Errorf("merge with empties: Count=%d Quantile=%v", merged.Count(), merged.Quantile(0.99))
	}
}
