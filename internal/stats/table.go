package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables, the output format of the
// benchmark harness (one table per paper figure/table).
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, short
// rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row built from format/value pairs: values are
// formatted with %v unless they are float64 (%.2f) or fmt.Stringer.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// X formats a ratio as a speedup multiplier.
func X(f float64) string { return fmt.Sprintf("%.2fx", f) }
