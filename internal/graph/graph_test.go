package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKronDeterministicAndSized(t *testing.T) {
	a := GenerateKron(8, 4, 42)
	b := GenerateKron(8, 4, 42)
	if len(a) != 256*4 {
		t.Fatalf("edges = %d, want %d", len(a), 256*4)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := GenerateKron(8, 4, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestKronSkewedDegrees(t *testing.T) {
	// R-MAT graphs have hub vertices: max degree far above average.
	edges := GenerateKron(12, 8, 7)
	csr := BuildCSR(1<<12, edges)
	var maxDeg int64
	for v := int32(0); v < csr.N; v++ {
		if d := csr.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8*8 {
		t.Fatalf("max degree %d barely above mean 8; not skewed", maxDeg)
	}
}

func TestKronBadScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("scale=0 did not panic")
		}
	}()
	GenerateKron(0, 4, 1)
}

func TestBuildCSRTiny(t *testing.T) {
	//   0 -> 1 (w2), 0 -> 2 (w5), 1 -> 2 (w1), 3 isolated
	edges := []Edge{{1, 2, 1}, {0, 2, 5}, {0, 1, 2}}
	c := BuildCSR(4, edges)
	if c.M() != 3 {
		t.Fatalf("M = %d", c.M())
	}
	if c.Degree(0) != 2 || c.Degree(1) != 1 || c.Degree(2) != 0 || c.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %v", c.Offsets)
	}
	nb := c.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors(0) = %v", nb)
	}
	if c.Weight[c.Offsets[0]] != 2 {
		t.Fatalf("weight(0->1) = %d, want 2", c.Weight[c.Offsets[0]])
	}
}

func TestBFSTinyGraph(t *testing.T) {
	// 0 -> 1 -> 2, 0 -> 3; 4 unreachable.
	c := BuildCSR(5, []Edge{{0, 1, 1}, {1, 2, 1}, {0, 3, 1}})
	lv := BFS(c, 0)
	want := []int32{0, 1, 2, 1, Unreached}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("levels = %v, want %v", lv, want)
		}
	}
}

// naive BFS by repeated relaxation, for the property test.
func naiveBFS(c *CSR, src int32) []int32 {
	lv := make([]int32, c.N)
	for i := range lv {
		lv[i] = math.MaxInt32
	}
	lv[src] = 0
	for changed := true; changed; {
		changed = false
		for v := int32(0); v < c.N; v++ {
			if lv[v] == math.MaxInt32 {
				continue
			}
			for _, w := range c.Neighbors(v) {
				if lv[v]+1 < lv[w] {
					lv[w] = lv[v] + 1
					changed = true
				}
			}
		}
	}
	for i := range lv {
		if lv[i] == math.MaxInt32 {
			lv[i] = Unreached
		}
	}
	return lv
}

func TestBFSMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		edges := GenerateKron(6, 4, seed)
		c := BuildCSR(64, edges)
		got := BFS(c, 0)
		want := naiveBFS(c, 0)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSSSPTinyGraph(t *testing.T) {
	// 0 -(5)-> 1, 0 -(2)-> 2, 2 -(2)-> 1: shortest 0->1 is 4 via 2.
	c := BuildCSR(4, []Edge{{0, 1, 5}, {0, 2, 2}, {2, 1, 2}})
	d := SSSP(c, 0)
	if d[0] != 0 || d[1] != 4 || d[2] != 2 || d[3] != -1 {
		t.Fatalf("dist = %v, want [0 4 2 -1]", d)
	}
}

// naive Bellman-Ford for the property test.
func naiveSSSP(c *CSR, src int32) []int64 {
	const inf = int64(1) << 62
	d := make([]int64, c.N)
	for i := range d {
		d[i] = inf
	}
	d[src] = 0
	for round := int32(0); round < c.N; round++ {
		for v := int32(0); v < c.N; v++ {
			if d[v] == inf {
				continue
			}
			off := c.Offsets[v]
			for i, w := range c.Neighbors(v) {
				if nd := d[v] + int64(c.Weight[off+int64(i)]); nd < d[w] {
					d[w] = nd
				}
			}
		}
	}
	for i := range d {
		if d[i] == inf {
			d[i] = -1
		}
	}
	return d
}

func TestSSSPMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		edges := GenerateKron(6, 4, seed)
		c := BuildCSR(64, edges)
		got := SSSP(c, 0)
		want := naiveSSSP(c, 0)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPageRankConservesMass(t *testing.T) {
	edges := GenerateKron(10, 8, 3)
	c := BuildCSR(1<<10, edges)
	rank := PageRank(c, 10, 0.85)
	var sum, leaked float64
	for v := int32(0); v < c.N; v++ {
		sum += rank[v]
		if c.Degree(v) == 0 {
			leaked += rank[v]
		}
	}
	// Dangling vertices leak mass each round; the sum must stay within
	// (0, 1] and close to 1 minus the dangling leakage.
	if sum <= 0 || sum > 1.0001 {
		t.Fatalf("rank mass = %g, want in (0, 1]", sum)
	}
	_ = leaked
}

func TestPageRankFavorsHubs(t *testing.T) {
	// Star: everyone points at vertex 0.
	var edges []Edge
	for v := int32(1); v < 50; v++ {
		edges = append(edges, Edge{v, 0, 1})
	}
	c := BuildCSR(50, edges)
	rank := PageRank(c, 20, 0.85)
	for v := int32(1); v < 50; v++ {
		if rank[0] <= rank[v] {
			t.Fatalf("hub rank %g not above leaf rank %g", rank[0], rank[v])
		}
	}
}
