// Package graph provides the graph substrate for the paper's
// data-dependent workloads (BFS, PageRank, SSSP on GAP-Kron): a Kronecker
// (R-MAT) edge generator in the style of the GAP benchmark suite, CSR
// construction, and reference host-side implementations of the three
// algorithms used both for correctness checks and to drive the page
// access generators.
package graph

import (
	"math/rand"
	"sort"
)

// RMAT partition probabilities used by GAP-Kron.
const (
	rmatA = 0.57
	rmatB = 0.19
	rmatC = 0.19
)

// Edge is a directed edge with a small integer weight (SSSP).
type Edge struct {
	Src, Dst int32
	Weight   int32
}

// GenerateKron produces an R-MAT/Kronecker edge list with 2^scale
// vertices and edgeFactor*2^scale edges, deterministically from seed.
// Self-loops are permitted (as in GAP); duplicate edges are kept, which
// preserves the skewed degree distribution.
func GenerateKron(scale, edgeFactor int, seed int64) []Edge {
	if scale < 1 || scale > 30 {
		panic("graph: scale out of range")
	}
	n := int32(1) << scale
	m := int(n) * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		var src, dst int32
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < rmatA:
				// top-left: neither bit set
			case r < rmatA+rmatB:
				dst |= 1 << bit
			case r < rmatA+rmatB+rmatC:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges[i] = Edge{Src: src, Dst: dst, Weight: int32(rng.Intn(64) + 1)}
	}
	return edges
}

// CSR is a compressed sparse row adjacency structure.
type CSR struct {
	N       int32
	Offsets []int64 // len N+1
	Dst     []int32 // len M
	Weight  []int32 // len M
}

// BuildCSR sorts edges by source and builds the CSR arrays.
func BuildCSR(n int32, edges []Edge) *CSR {
	sorted := make([]Edge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Src != sorted[j].Src {
			return sorted[i].Src < sorted[j].Src
		}
		return sorted[i].Dst < sorted[j].Dst
	})
	c := &CSR{
		N:       n,
		Offsets: make([]int64, n+1),
		Dst:     make([]int32, len(sorted)),
		Weight:  make([]int32, len(sorted)),
	}
	for i, e := range sorted {
		c.Offsets[e.Src+1]++
		c.Dst[i] = e.Dst
		c.Weight[i] = e.Weight
	}
	for v := int32(1); v <= n; v++ {
		c.Offsets[v] += c.Offsets[v-1]
	}
	return c
}

// M reports the edge count.
func (c *CSR) M() int { return len(c.Dst) }

// Degree reports vertex v's out-degree.
func (c *CSR) Degree(v int32) int64 { return c.Offsets[v+1] - c.Offsets[v] }

// Neighbors reports the destination slice for v.
func (c *CSR) Neighbors(v int32) []int32 {
	return c.Dst[c.Offsets[v]:c.Offsets[v+1]]
}

// Unreached marks vertices BFS/SSSP never reached.
const Unreached = int32(-1)

// BFS returns per-vertex levels from src (Unreached where unreachable).
func BFS(c *CSR, src int32) []int32 {
	level := make([]int32, c.N)
	for i := range level {
		level[i] = Unreached
	}
	level[src] = 0
	frontier := []int32{src}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []int32
		for _, v := range frontier {
			for _, w := range c.Neighbors(v) {
				if level[w] == Unreached {
					level[w] = depth
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return level
}

// PageRank runs iters rounds of synchronous PageRank with the given
// damping factor and returns the final scores.
func PageRank(c *CSR, iters int, damping float64) []float64 {
	n := int(c.N)
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = base
		}
		for v := int32(0); v < c.N; v++ {
			d := c.Degree(v)
			if d == 0 {
				continue
			}
			share := damping * rank[v] / float64(d)
			for _, w := range c.Neighbors(v) {
				next[w] += share
			}
		}
		rank, next = next, rank
	}
	return rank
}

// SSSP runs frontier-based Bellman-Ford from src and returns distances
// (Unreached encoded as a negative value in the int64 result).
func SSSP(c *CSR, src int32) []int64 {
	const inf = int64(1) << 62
	dist := make([]int64, c.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	frontier := []int32{src}
	inFrontier := make([]bool, c.N)
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			inFrontier[v] = false
			off := c.Offsets[v]
			for i, w := range c.Neighbors(v) {
				nd := dist[v] + int64(c.Weight[off+int64(i)])
				if nd < dist[w] {
					dist[w] = nd
					if !inFrontier[w] {
						inFrontier[w] = true
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
	}
	for i, d := range dist {
		if d == inf {
			dist[i] = -1
		}
	}
	return dist
}
