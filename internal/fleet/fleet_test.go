package fleet

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestStreamSplitDeterministic pins the seeded-stream splitting
// contract: the shared stream is a pure function of its config, and
// per-node sub-streams are byte-identical however many times the
// stream is regenerated and re-routed.
func TestStreamSplitDeterministic(t *testing.T) {
	cfg := DefaultStream(8)
	a := GenerateStream(cfg)
	b := GenerateStream(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateStream is not deterministic")
	}
	weights := []int{3, 1, 3, 1, 3, 1, 3, 1}
	for _, kind := range []RouterKind{RouterHash, RouterWRR} {
		s1 := Split(a, Assign(kind, weights, a), len(weights))
		s2 := Split(b, Assign(kind, weights, b), len(weights))
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: sub-streams differ across regenerations", kind)
		}
		total := 0
		for _, s := range s1 {
			total += len(s)
		}
		if total != len(a) {
			t.Errorf("%s: split lost requests: %d != %d", kind, total, len(a))
		}
		// Arrival order must be preserved within each node.
		for n, s := range s1 {
			for i := 1; i < len(s); i++ {
				if s[i].Arrive < s[i-1].Arrive {
					t.Errorf("%s: node %d sub-stream out of arrival order", kind, n)
					break
				}
			}
		}
	}
}

// TestHashRouterStability pins consistent hashing's defining property:
// growing the fleet from n to n+1 nodes only moves requests TO the new
// node — no request shuffles between surviving nodes.
func TestHashRouterStability(t *testing.T) {
	reqs := GenerateStream(DefaultStream(16))
	weights := make([]int, 16)
	for i := range weights {
		weights[i] = 1 + i%3
	}
	before := Assign(RouterHash, weights, reqs)
	after := Assign(RouterHash, append(append([]int{}, weights...), 2), reqs)
	moved := 0
	for i := range reqs {
		if after[i] != before[i] {
			if after[i] != len(weights) {
				t.Fatalf("request %d moved between old nodes: %d -> %d", i, before[i], after[i])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("no requests moved to the new node (suspicious for 384 requests)")
	}
}

// TestWRRProportional pins the weighted-round-robin split: node load
// tracks weight share exactly (within one cycle's rounding).
func TestWRRProportional(t *testing.T) {
	reqs := GenerateStream(DefaultStream(4))
	weights := []int{3, 1, 3, 1}
	counts := make([]int, len(weights))
	for _, n := range Assign(RouterWRR, weights, reqs) {
		counts[n]++
	}
	total := len(reqs)
	for i, w := range weights {
		want := float64(total) * float64(w) / 8
		if diff := float64(counts[i]) - want; diff > 1 || diff < -1 {
			t.Errorf("node %d: got %d requests, want %.1f±1", i, counts[i], want)
		}
	}
}

// TestTemplateExpansion pins smooth WRR interleaving for the default
// 3:1 mix.
func TestTemplateExpansion(t *testing.T) {
	cfg := DefaultConfig(8)
	got := ExpandTemplates(cfg.Templates, 8)
	want := []int{0, 0, 1, 0, 0, 0, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExpandTemplates = %v, want %v", got, want)
	}
}

func TestParseTemplates(t *testing.T) {
	ts, err := ParseTemplates("a100:3, h100")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Name != "a100" || ts[0].Weight != 3 || ts[1].Weight != 1 {
		t.Errorf("unexpected parse: %+v", ts)
	}
	for _, bad := range []string{"", "v100", "a100:0", "a100:x"} {
		if _, err := ParseTemplates(bad); err == nil {
			t.Errorf("ParseTemplates(%q) succeeded, want error", bad)
		}
	}
}

func TestFromOptionsErrors(t *testing.T) {
	for _, o := range []Options{
		{Nodes: 0},
		{Nodes: 4, Templates: "v100"},
		{Nodes: 4, Router: "random"},
		{Nodes: 4, Requests: -1},
		{Nodes: 4, Rate: -1},
		{Nodes: 4, Tier2Policy: "mru"},
	} {
		if _, err := FromOptions(o); err == nil {
			t.Errorf("FromOptions(%+v) succeeded, want error", o)
		}
	}
	cfg, err := FromOptions(Options{Nodes: 4, Templates: "h100", Router: "wrr", Requests: 10, Seed: 7, Tier2Policy: "2q"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 4 || cfg.Stream.Requests != 10 || cfg.Seed != 7 || cfg.Router != RouterWRR {
		t.Errorf("unexpected config: %+v", cfg)
	}
}

// fleetBytes runs the fleet and returns the canonical encoding plus a
// deep dump, the same double check the exp determinism tests use.
func fleetBytes(t *testing.T, cfg Config, workers int) string {
	t.Helper()
	res, _, err := Run(context.Background(), cfg, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.String() + fmt.Sprintf("%#v", res) + Render(res)
}

// TestFleetParallelByteIdentical is the tentpole contract: the fleet
// result is byte-identical at any worker count (jobs write node-indexed
// slots; units recycle through Reset; aggregation runs in node order).
func TestFleetParallelByteIdentical(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Stream.Requests = 64 // keep the test fast
	seq := fleetBytes(t, cfg, 1)
	for _, workers := range []int{2, 4} {
		if got := fleetBytes(t, cfg, workers); got != seq {
			t.Fatalf("fleet output differs at workers=%d", workers)
		}
	}
}

// TestFleetRunTwiceIdentical pins run-to-run determinism within one
// process (fresh units vs a process that never recycled).
func TestFleetRunTwiceIdentical(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Stream.Requests = 32
	cfg.Router = RouterWRR
	if a, b := fleetBytes(t, cfg, 2), fleetBytes(t, cfg, 2); a != b {
		t.Fatal("fleet output differs across runs")
	}
}

// TestFleetAggregates sanity-checks the folded summary.
func TestFleetAggregates(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Stream.Requests = 32
	res, _, err := Run(context.Background(), cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != ResultSchema {
		t.Errorf("schema = %q", res.Schema)
	}
	if res.Fleet.Requests != 32 {
		t.Errorf("fleet requests = %d, want 32", res.Fleet.Requests)
	}
	perNode := 0
	for _, n := range res.PerNode {
		perNode += n.Requests
	}
	if perNode != 32 {
		t.Errorf("per-node requests sum = %d, want 32", perNode)
	}
	if res.Fleet.LatencyP50MS <= 0 || res.Fleet.LatencyP99MS < res.Fleet.LatencyP50MS ||
		res.Fleet.LatencyP999MS < res.Fleet.LatencyP99MS {
		t.Errorf("implausible percentiles: %+v", res.Fleet)
	}
	if res.Fleet.Tier1HitRate <= 0 || res.Fleet.Tier1HitRate > 1 {
		t.Errorf("implausible tier-1 hit rate %v", res.Fleet.Tier1HitRate)
	}
	if res.Fleet.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", res.Fleet.ThroughputRPS)
	}
	tplNodes := 0
	for _, ts := range res.Templates {
		tplNodes += ts.Nodes
	}
	if tplNodes != 4 {
		t.Errorf("template node sum = %d, want 4", tplNodes)
	}
}

// TestScalingSweepDeterministic covers the committed-figure path.
func TestScalingSweepDeterministic(t *testing.T) {
	base := DefaultConfig(4)
	base.Stream.Requests = 48
	sizes := []int{2, 4}
	a, err := ScalingSweep(context.Background(), base, sizes, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScalingSweep(context.Background(), base, sizes, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep differs across worker counts:\n%+v\n%+v", a, b)
	}
	svg := ScalingSVG(a).SVG()
	if svg == "" || ScalingTable(a).Render() == "" {
		t.Error("empty figure or table")
	}
}
