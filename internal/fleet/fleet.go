package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/exp"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
)

// ResultSchema identifies the fleet result format.
const ResultSchema = "gmt-fleet/v1"

// Config is a fully resolved fleet run.
type Config struct {
	Nodes     int
	Templates []Template
	Router    RouterKind
	Stream    StreamConfig

	// Seed offsets per-node runtime seeds (node i runs with Seed+i),
	// so nodes make independent randomized tiering decisions.
	Seed int64

	// Tier2Policy is each node's Tier-2 replacement policy; empty
	// keeps the per-policy default.
	Tier2Policy tier.StorePolicy
}

// DefaultConfig is an n-node mixed fleet: 3:1 A100-like to H100-like,
// hash routing, and the default shared stream scaled to n.
func DefaultConfig(n int) Config {
	a := templates["a100"]
	a.Weight = 3
	h := templates["h100"]
	return Config{
		Nodes:     n,
		Templates: []Template{a, h},
		Router:    RouterHash,
		Stream:    DefaultStream(n),
		Seed:      1,
	}
}

// Options is the flag-shaped fleet spec shared by cmd/gmtfleet and the
// gmtd fleet job, so a served run resolves to exactly the Config — and
// therefore exactly the bytes — the CLI would produce.
type Options struct {
	Nodes       int
	Templates   string
	Router      string
	Requests    int
	Rate        float64
	Seed        int64
	Tier2Policy string
}

// FromOptions validates and resolves options into a Config. Zero
// Requests/Rate keep the node-scaled defaults; Seed seeds the node
// runtimes (the stream keeps its own fixed seed so traffic is
// comparable across seeds).
func FromOptions(o Options) (Config, error) {
	if o.Nodes < 1 {
		return Config{}, fmt.Errorf("fleet: need at least 1 node, got %d", o.Nodes)
	}
	cfg := DefaultConfig(o.Nodes)
	if o.Templates != "" {
		ts, err := ParseTemplates(o.Templates)
		if err != nil {
			return Config{}, err
		}
		cfg.Templates = ts
	}
	r, err := ParseRouter(o.Router)
	if err != nil {
		return Config{}, err
	}
	cfg.Router = r
	if o.Requests < 0 {
		return Config{}, fmt.Errorf("fleet: negative request count %d", o.Requests)
	}
	if o.Requests > 0 {
		cfg.Stream.Requests = o.Requests
	}
	if o.Rate < 0 {
		return Config{}, fmt.Errorf("fleet: negative arrival rate %v", o.Rate)
	}
	if o.Rate > 0 {
		cfg.Stream.Arrivals.Base = o.Rate
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Tier2Policy != "" {
		p, err := tier.ParseStorePolicy(o.Tier2Policy)
		if err != nil {
			return Config{}, err
		}
		cfg.Tier2Policy = p
	}
	return cfg, nil
}

// TemplateSummary aggregates the nodes of one template class.
type TemplateSummary struct {
	Name         string  `json:"name"`
	Weight       int     `json:"weight"`
	Nodes        int     `json:"nodes"`
	Requests     int     `json:"requests"`
	Tier1HitRate float64 `json:"tier1_hit_rate"`
	Tier2HitRate float64 `json:"tier2_hit_rate"`
	P99MS        float64 `json:"latency_p99_ms"`
}

// NodeResult is one node's slice of the fleet run.
type NodeResult struct {
	Node         int     `json:"node"`
	Template     string  `json:"template"`
	Requests     int     `json:"requests"`
	Tier1HitRate float64 `json:"tier1_hit_rate"`
	Tier2HitRate float64 `json:"tier2_hit_rate"`
	SSDReads     int64   `json:"ssd_reads"`
	P50MS        float64 `json:"latency_p50_ms"`
	P99MS        float64 `json:"latency_p99_ms"`
	MakespanMS   float64 `json:"makespan_ms"`
}

// Summary is the fleet-wide aggregate: counters summed across nodes,
// percentiles from the exact merge of per-node latency digests.
type Summary struct {
	Requests      int     `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Tier1HitRate  float64 `json:"tier1_hit_rate"`
	Tier2HitRate  float64 `json:"tier2_hit_rate"`
	SSDReads      int64   `json:"ssd_reads"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	LatencyP999MS float64 `json:"latency_p999_ms"`
	MakespanMS    float64 `json:"makespan_ms"`
}

// Result is a fleet run's deterministic output. It carries only
// simulated quantities — pool telemetry (wall time, worker skew) is
// returned separately so these bytes are identical at any -parallel N.
type Result struct {
	Schema    string            `json:"schema"`
	Nodes     int               `json:"nodes"`
	Router    string            `json:"router"`
	Seed      int64             `json:"seed"`
	Templates []TemplateSummary `json:"templates"`
	PerNode   []NodeResult      `json:"per_node"`
	Fleet     Summary           `json:"fleet"`
}

// unit is one recyclable {engine, runtime} pair; the fleet pool mirrors
// exp's suite pool so a 256-node run builds only workers-many runtimes.
type unit struct {
	eng *sim.Engine
	rt  *core.Runtime
}

// Run executes the fleet: generate the shared stream, route it, and
// simulate every node on the exp worker pool, each job writing its
// outcome into a node-indexed slot so aggregation order — and thus
// every output byte — is independent of worker count and scheduling.
// The clock is pool telemetry only (nil leaves timings zero); it never
// reaches a simulation.
//
//gmt:blocking
func Run(ctx context.Context, cfg Config, workers int, clock func() int64) (Result, exp.PoolReport, error) {
	if cfg.Nodes < 1 {
		return Result{}, exp.PoolReport{}, fmt.Errorf("fleet: need at least 1 node, got %d", cfg.Nodes)
	}
	if len(cfg.Templates) == 0 {
		return Result{}, exp.PoolReport{}, fmt.Errorf("fleet: no templates")
	}

	reqs := GenerateStream(cfg.Stream)
	tplIdx := ExpandTemplates(cfg.Templates, cfg.Nodes)
	weights := make([]int, cfg.Nodes)
	for i, ti := range tplIdx {
		weights[i] = cfg.Templates[ti].Weight
	}
	assign := Assign(cfg.Router, weights, reqs)
	perNode := Split(reqs, assign, cfg.Nodes)

	var (
		mu   sync.Mutex
		pool []*unit
	)
	acquire := func(ccfg core.Config) *unit {
		mu.Lock()
		var u *unit
		if n := len(pool); n > 0 {
			u = pool[n-1]
			pool[n-1] = nil
			pool = pool[:n-1]
		}
		mu.Unlock()
		if u == nil {
			eng := sim.NewEngine()
			return &unit{eng: eng, rt: core.NewRuntime(eng, ccfg)}
		}
		u.rt.Reset(ccfg)
		return u
	}
	release := func(u *unit) {
		mu.Lock()
		pool = append(pool, u)
		mu.Unlock()
	}

	outcomes := make([]nodeOutcome, cfg.Nodes)
	jobs := make([]exp.Job, cfg.Nodes)
	for i := range jobs {
		i := i
		tpl := cfg.Templates[tplIdx[i]]
		jobs[i] = exp.Job{
			Key: fmt.Sprintf("node-%d", i),
			Run: func() {
				trace, segs, footprint := buildNodeTrace(tpl, cfg.Stream, perNode[i])
				ccfg := tpl.coreConfig(cfg.Seed+int64(i), cfg.Tier2Policy)
				ccfg.FootprintPages = int(footprint)
				u := acquire(ccfg)
				outcomes[i] = simulateNode(u.eng, u.rt, tpl.gpuConfig(), trace, segs, perNode[i])
				release(u)
			},
		}
	}
	prep, err := exp.RunJobs(ctx, jobs, workers, clock)
	if err != nil {
		return Result{}, prep, err
	}
	return aggregate(cfg, tplIdx, outcomes), prep, nil
}

// aggregate folds per-node outcomes — in node-index order — into the
// fleet result.
func aggregate(cfg Config, tplIdx []int, outcomes []nodeOutcome) Result {
	res := Result{
		Schema: ResultSchema,
		Nodes:  cfg.Nodes,
		Router: string(cfg.Router),
		Seed:   cfg.Seed,
	}
	type tplAgg struct {
		nodes, requests int
		run             stats.Run
		digests         []stats.Digest
	}
	aggs := make([]tplAgg, len(cfg.Templates))
	var (
		fleetRun stats.Run
		digests  []stats.Digest
		makespan sim.Time
		requests int
	)
	for i, o := range outcomes {
		addRun(&fleetRun, o.run)
		digests = append(digests, o.latency)
		requests += o.requests
		if o.lastDone > makespan {
			makespan = o.lastDone
		}
		a := &aggs[tplIdx[i]]
		a.nodes++
		a.requests += o.requests
		addRun(&a.run, o.run)
		a.digests = append(a.digests, o.latency)

		d := o.latency
		res.PerNode = append(res.PerNode, NodeResult{
			Node:         i,
			Template:     cfg.Templates[tplIdx[i]].Name,
			Requests:     o.requests,
			Tier1HitRate: hitRate(o.run),
			Tier2HitRate: o.run.Tier2HitRate(),
			SSDReads:     o.run.SSDReads,
			P50MS:        ms(d.Quantile(0.50)),
			P99MS:        ms(d.Quantile(0.99)),
			MakespanMS:   ms(o.lastDone),
		})
	}
	for ti, t := range cfg.Templates {
		a := aggs[ti]
		d := stats.MergeDigests(a.digests...)
		res.Templates = append(res.Templates, TemplateSummary{
			Name:         t.Name,
			Weight:       t.Weight,
			Nodes:        a.nodes,
			Requests:     a.requests,
			Tier1HitRate: hitRate(a.run),
			Tier2HitRate: a.run.Tier2HitRate(),
			P99MS:        ms(d.Quantile(0.99)),
		})
	}
	fleet := stats.MergeDigests(digests...)
	res.Fleet = Summary{
		Requests:      requests,
		ThroughputRPS: rps(requests, makespan),
		Tier1HitRate:  hitRate(fleetRun),
		Tier2HitRate:  fleetRun.Tier2HitRate(),
		SSDReads:      fleetRun.SSDReads,
		LatencyP50MS:  ms(fleet.Quantile(0.50)),
		LatencyP99MS:  ms(fleet.Quantile(0.99)),
		LatencyP999MS: ms(fleet.Quantile(0.999)),
		MakespanMS:    ms(makespan),
	}
	return res
}

// addRun accumulates the counters fleet aggregation consumes.
func addRun(dst *stats.Run, src stats.Run) {
	dst.Accesses += src.Accesses
	dst.Tier1Hits += src.Tier1Hits
	dst.Tier2Hits += src.Tier2Hits
	dst.SSDFills += src.SSDFills
	dst.InFlightJoins += src.InFlightJoins
	dst.SSDReads += src.SSDReads
	dst.SSDWrites += src.SSDWrites
	dst.WarpComputeNS += src.WarpComputeNS
	dst.WarpStallNS += src.WarpStallNS
}

// hitRate is the Tier-1 hit fraction of all accesses.
func hitRate(r stats.Run) float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Tier1Hits) / float64(r.Accesses)
}

func ms(t sim.Time) float64 { return float64(t) / float64(sim.Millisecond) }

func rps(requests int, makespan sim.Time) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(requests) / (float64(makespan) / float64(sim.Second))
}

// Render formats the fleet summary and per-template breakdown as the
// CLI's human-readable tables. Per-node detail stays JSON-only.
func Render(res Result) string {
	var b strings.Builder
	sum := stats.NewTable(
		fmt.Sprintf("Fleet: %d nodes, %s routing, seed %d", res.Nodes, res.Router, res.Seed),
		"Requests", "Throughput", "T1 hit", "T2 hit", "p50", "p99", "p99.9", "Makespan")
	f := res.Fleet
	sum.AddRow(
		fmt.Sprintf("%d", f.Requests),
		fmt.Sprintf("%.1f req/s", f.ThroughputRPS),
		stats.Pct(f.Tier1HitRate),
		stats.Pct(f.Tier2HitRate),
		fmt.Sprintf("%.2f ms", f.LatencyP50MS),
		fmt.Sprintf("%.2f ms", f.LatencyP99MS),
		fmt.Sprintf("%.2f ms", f.LatencyP999MS),
		fmt.Sprintf("%.1f ms", f.MakespanMS),
	)
	b.WriteString(sum.Render())
	b.WriteString("\n")

	tpl := stats.NewTable("Per-template breakdown",
		"Template", "Weight", "Nodes", "Requests", "T1 hit", "T2 hit", "p99")
	for _, t := range res.Templates {
		tpl.AddRow(
			t.Name,
			fmt.Sprintf("%d", t.Weight),
			fmt.Sprintf("%d", t.Nodes),
			fmt.Sprintf("%d", t.Requests),
			stats.Pct(t.Tier1HitRate),
			stats.Pct(t.Tier2HitRate),
			fmt.Sprintf("%.2f ms", t.P99MS),
		)
	}
	b.WriteString(tpl.Render())
	return b.String()
}

// EncodeResult writes the canonical JSON encoding — the exact bytes
// contract shared by cmd/gmtfleet and the gmtd fleet job.
func EncodeResult(w io.Writer, res Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
