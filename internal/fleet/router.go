package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// RouterKind selects how the shared stream partitions across nodes.
type RouterKind string

// The two deterministic routers.
const (
	// RouterHash routes by consistent hashing over node IDs: each node
	// owns weight-proportional virtual points on a ring and a request
	// maps to the successor of its key. Adding a node only moves the
	// requests that land on the new node's points — the stability
	// property that makes hash routing the fleet-scaling default.
	RouterHash RouterKind = "hash"
	// RouterWRR routes by smooth weighted round-robin in arrival
	// order: perfectly proportional load, no affinity.
	RouterWRR RouterKind = "wrr"
)

// ParseRouter resolves a router name.
func ParseRouter(s string) (RouterKind, error) {
	switch RouterKind(s) {
	case RouterHash, RouterWRR:
		return RouterKind(s), nil
	case "":
		return RouterHash, nil
	}
	return "", fmt.Errorf("fleet: unknown router %q (want %q or %q)", s, RouterHash, RouterWRR)
}

// vnodesPerWeight is the ring density: virtual points per unit of node
// weight. High enough that load variance across equal-weight nodes
// stays small, low enough that a 256-node ring builds instantly.
const vnodesPerWeight = 40

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	node int
}

// buildRing places weight-proportional virtual points for each node.
// Point hashes depend only on (node, replica), so a ring for n+1 nodes
// is a superset of the ring for n nodes — the stability guarantee.
func buildRing(weights []int) []ringPoint {
	var ring []ringPoint
	var buf [16]byte
	for node, w := range weights {
		for r := 0; r < w*vnodesPerWeight; r++ {
			binary.LittleEndian.PutUint64(buf[:8], uint64(node))
			binary.LittleEndian.PutUint64(buf[8:], uint64(r))
			h := fnv.New64a()
			h.Write(buf[:])
			ring = append(ring, ringPoint{hash: h.Sum64(), node: node})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].node < ring[j].node
	})
	return ring
}

// splitmix64 is the request-key mixer: sequential request IDs must
// spread uniformly over the ring.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Assign maps each request to a node index. weights must have one
// entry per node (the node's template weight). The assignment is a
// pure function of (kind, weights, request IDs) — independent of
// worker count and of how the caller later groups the result.
func Assign(kind RouterKind, weights []int, reqs []Request) []int {
	out := make([]int, len(reqs))
	switch kind {
	case RouterWRR:
		total := 0
		for _, w := range weights {
			total += w
		}
		cur := make([]int, len(weights))
		for i := range reqs {
			best := 0
			for j, w := range weights {
				cur[j] += w
				if cur[j] > cur[best] {
					best = j
				}
			}
			cur[best] -= total
			out[i] = best
		}
	default: // RouterHash
		ring := buildRing(weights)
		for i, r := range reqs {
			key := splitmix64(uint64(r.ID) + 1)
			k := sort.Search(len(ring), func(j int) bool { return ring[j].hash >= key })
			if k == len(ring) {
				k = 0
			}
			out[i] = ring[k].node
		}
	}
	return out
}

// Split groups the shared stream into per-node sub-streams, preserving
// arrival order within each node.
func Split(reqs []Request, assign []int, nodes int) [][]Request {
	out := make([][]Request, nodes)
	for i, r := range reqs {
		out[assign[i]] = append(out[assign[i]], r)
	}
	return out
}
