// Package fleet simulates a fleet of GPU tiering nodes: N instances of
// the single-node GMT engine (internal/core), instantiated from
// weighted hardware templates, serving one shared open-loop request
// stream that a deterministic router partitions into per-node traces.
// Per-node runs execute on the internal/exp worker pool and a fleet
// aggregator folds their stats into fleet-wide hit rates, throughput,
// and exact latency percentiles — byte-identical at any worker count.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// Template is one node hardware class: tier capacities, GPU shape, and
// an SSD profile layered over the single-node defaults the same way the
// storage-generation sensitivity sweep scales its drives. Weight sets
// both the template's share of fleet nodes and its routing weight.
type Template struct {
	Name   string
	Weight int

	// Tier capacities in pages (quarter-scale like the experiment
	// suite, so several-hundred-node fleets stay tractable).
	Tier1Pages int
	Tier2Pages int

	// GPU shape.
	Warps            int
	ComputePerAccess sim.Time

	// SSD profile: multipliers over the default drive plus the link
	// width, mirroring exp.SSDGen.
	SSDBWMult  float64
	SSDLatMult float64
	SSDLanes   int
}

// Registry of known templates. The A100-like class is the paper's
// testbed shape; the H100-like class doubles capacity and storage
// bandwidth and halves per-access compute.
var templates = map[string]Template{
	"a100": {
		Name: "a100", Weight: 1,
		Tier1Pages: 256, Tier2Pages: 1024,
		Warps: 64, ComputePerAccess: 200 * sim.Nanosecond,
		SSDBWMult: 1, SSDLatMult: 1, SSDLanes: 4,
	},
	"h100": {
		Name: "h100", Weight: 1,
		Tier1Pages: 512, Tier2Pages: 2048,
		Warps: 128, ComputePerAccess: 100 * sim.Nanosecond,
		SSDBWMult: 2, SSDLatMult: 0.7, SSDLanes: 8,
	},
}

// TemplateNames lists the known template names, sorted.
func TemplateNames() []string {
	names := make([]string, 0, len(templates))
	for n := range templates {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseTemplates parses a "name[:weight],name[:weight]" spec against
// the registry. Weight defaults to the template's registered weight;
// an explicit ":w" overrides it.
func ParseTemplates(spec string) ([]Template, error) {
	var out []Template
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wspec, hasW := strings.Cut(part, ":")
		t, ok := templates[strings.ToLower(name)]
		if !ok {
			return nil, fmt.Errorf("fleet: unknown template %q (known: %s)",
				name, strings.Join(TemplateNames(), ", "))
		}
		if hasW {
			w, err := strconv.Atoi(wspec)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("fleet: bad weight %q for template %q", wspec, name)
			}
			t.Weight = w
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: empty template spec")
	}
	return out, nil
}

// ExpandTemplates assigns each of n node slots a template index by
// smooth weighted round-robin, so classes interleave evenly (a 3:1
// fleet of 8 is a-a-h-a repeating, not a block of six then two). The
// assignment is a pure function of (templates, n).
func ExpandTemplates(ts []Template, n int) []int {
	total := 0
	for _, t := range ts {
		total += t.Weight
	}
	cur := make([]int, len(ts))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		best := 0
		for j := range ts {
			cur[j] += ts[j].Weight
			if cur[j] > cur[best] {
				best = j
			}
		}
		cur[best] -= total
		out[i] = best
	}
	return out
}

// coreConfig layers the template over the single-node defaults: the
// Tier-2-ordered policy (the serving study's base, so Tier2Policy is
// honored) with this class's capacities and drive.
func (t Template) coreConfig(seed int64, t2 tier.StorePolicy) core.Config {
	cfg := core.DefaultConfig()
	cfg.Policy = core.PolicyTierOrder
	cfg.Tier1Pages = t.Tier1Pages
	cfg.Tier2Pages = t.Tier2Pages
	cfg.Seed = seed
	cfg.Tier2Policy = t2
	cfg.SSD.MediaReadBps = int64(float64(cfg.SSD.MediaReadBps) * t.SSDBWMult)
	cfg.SSD.MediaWriteBps = int64(float64(cfg.SSD.MediaWriteBps) * t.SSDBWMult)
	cfg.SSD.ReadLatency = sim.Time(float64(cfg.SSD.ReadLatency) * t.SSDLatMult)
	cfg.SSD.WriteLatency = sim.Time(float64(cfg.SSD.WriteLatency) * t.SSDLatMult)
	cfg.SSD.Lanes = t.SSDLanes
	return cfg
}

// gpuConfig is the template's GPU shape.
func (t Template) gpuConfig() gpu.Config {
	return gpu.Config{Warps: t.Warps, ComputePerAccess: t.ComputePerAccess}
}
