package fleet

import (
	"math/rand"

	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/workload"
)

// StreamConfig parameterizes the fleet's shared open-loop request
// stream: a seeded Poisson process over the multi-period rate schedule
// the KV-serving workload introduced, with per-request shapes drawn
// from the same seeded generator. The stream is generated once for the
// whole fleet and routed; it is a pure function of this config.
type StreamConfig struct {
	// Requests is the total request count across the fleet.
	Requests int

	// Arrivals drives the open-loop arrival process (requests/second,
	// burst multipliers, period).
	Arrivals workload.RateSchedule

	// Seed drives every stream draw (arrivals and request shapes).
	Seed int64

	// Prefixes counts the distinct shared prompt prefixes; every node
	// holds a replica of the prefix pool (system prompts are shipped
	// with the model), so requests attend to their prefix locally.
	Prefixes int

	// Per-request shape bounds, drawn uniformly (inclusive).
	MinPromptPages, MaxPromptPages int
	MinDecodeSteps, MaxDecodeSteps int
}

// Request is one routed unit of work: a conversation with a prompt
// prefilled against a shared prefix and a decode phase, arriving at a
// fixed open-loop instant.
type Request struct {
	ID          int32
	Arrive      sim.Time
	Prefix      int32
	PromptPages int32
	DecodeSteps int32
}

// DefaultStream sizes the shared stream for an n-node fleet: request
// volume and base rate scale with n so per-node load stays comparable
// across fleet sizes, while the burst schedule keeps the peak-to-trough
// ratio fixed.
func DefaultStream(n int) StreamConfig {
	return StreamConfig{
		Requests: 24 * n,
		Arrivals: workload.RateSchedule{
			Base:      8 * float64(n),
			Mult:      []float64{1, 4, 1, 0.25},
			PeriodSec: 30,
		},
		Seed:           42,
		Prefixes:       8,
		MinPromptPages: 4,
		MaxPromptPages: 16,
		MinDecodeSteps: 16,
		MaxDecodeSteps: 48,
	}
}

// GenerateStream materializes the shared request stream. Draws happen
// in a fixed per-request order (arrival, prefix, prompt, decode), so
// the stream — and every sub-stream a router splits from it — is
// byte-identical for a given config regardless of fleet size, worker
// count, or call site.
//
//gmt:detroot
func GenerateStream(cfg StreamConfig) []Request {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Request, cfg.Requests)
	t := 0.0
	for i := range out {
		t = cfg.Arrivals.Next(rng, t)
		out[i] = Request{
			ID:          int32(i),
			Arrive:      sim.Time(t * 1e9),
			Prefix:      int32(rng.Intn(cfg.Prefixes)),
			PromptPages: int32(cfg.MinPromptPages + rng.Intn(cfg.MaxPromptPages-cfg.MinPromptPages+1)),
			DecodeSteps: int32(cfg.MinDecodeSteps + rng.Intn(cfg.MaxDecodeSteps-cfg.MinDecodeSteps+1)),
		}
	}
	return out
}
