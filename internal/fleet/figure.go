package fleet

import (
	"context"
	"fmt"

	"github.com/gmtsim/gmt/internal/plot"
	"github.com/gmtsim/gmt/internal/stats"
)

// ScalingPoint is one fleet size's aggregate under the fixed stream.
type ScalingPoint struct {
	Nodes         int     `json:"nodes"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"latency_p50_ms"`
	P99MS         float64 `json:"latency_p99_ms"`
	P999MS        float64 `json:"latency_p999_ms"`
}

// ScalingSweep runs the fleet at each size while holding base's shared
// stream FIXED: the same traffic spread over more nodes, so the sweep
// shows how fleet growth absorbs a given load (queueing latency falls,
// per-node cache pressure eases) rather than re-scaling the offered
// load with the fleet.
//
//gmt:blocking
func ScalingSweep(ctx context.Context, base Config, sizes []int, workers int, clock func() int64) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, n := range sizes {
		cfg := base
		cfg.Nodes = n
		res, _, err := Run(ctx, cfg, workers, clock)
		if err != nil {
			return out, err
		}
		out = append(out, ScalingPoint{
			Nodes:         n,
			ThroughputRPS: res.Fleet.ThroughputRPS,
			P50MS:         res.Fleet.LatencyP50MS,
			P99MS:         res.Fleet.LatencyP99MS,
			P999MS:        res.Fleet.LatencyP999MS,
		})
	}
	return out, nil
}

// ScalingSVG plots the sweep: latency percentiles against fleet size.
func ScalingSVG(points []ScalingPoint) *plot.Figure {
	f := plot.NewFigure("Fleet scaling: latency vs nodes under fixed load",
		"nodes", "latency (ms)")
	f.Line = true
	var p50, p99, p999 []float64
	for _, p := range points {
		f.Labels = append(f.Labels, fmt.Sprintf("%d", p.Nodes))
		p50 = append(p50, p.P50MS)
		p99 = append(p99, p.P99MS)
		p999 = append(p999, p.P999MS)
	}
	f.Add("p50", p50)
	f.Add("p99", p99)
	f.Add("p99.9", p999)
	return f
}

// ScalingTable renders the sweep as a terminal table.
func ScalingTable(points []ScalingPoint) *stats.Table {
	t := stats.NewTable("Fleet scaling under fixed load",
		"Nodes", "Throughput", "p50", "p99", "p99.9")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.1f req/s", p.ThroughputRPS),
			fmt.Sprintf("%.2f ms", p.P50MS),
			fmt.Sprintf("%.2f ms", p.P99MS),
			fmt.Sprintf("%.2f ms", p.P999MS),
		)
	}
	return t
}
