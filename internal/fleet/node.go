package fleet

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
)

// Decode cadence constants, matching the KV-serving workload's shape:
// one generated KV page per stepsPerPage decode steps, a full prefix
// re-read every prefixStride steps (off-steps touch only the resident
// prefix head), and a recentWindow-page context re-read per step.
const (
	stepsPerPage = 8
	prefixStride = 4
	recentWindow = 8
)

// prefixPages is the per-prefix KV footprint for a node class: scaled
// to its Tier-1 so the prefix pool pressures the hierarchy comparably
// across templates.
func (t Template) prefixPages() int {
	p := t.Tier1Pages / 64
	if p < 8 {
		p = 8
	}
	return p
}

// nodeOutcome is one node's simulation result: tiering counters, the
// exact latency distribution of its requests, and the instant its last
// request completed (the node's makespan).
type nodeOutcome struct {
	run      stats.Run
	latency  stats.Digest
	requests int
	lastDone sim.Time
}

// buildNodeTrace lays the node's routed requests out as one access
// trace with per-request segment boundaries. Page layout: the shared
// prefix pool (replicated on every node) occupies the low pages; each
// request's prompt and generated KV pages are carved off a private
// cursor above it. The trace is a pure function of (template, stream
// shape, routed sub-stream) — no randomness.
//
// segs[i] is the end (exclusive) trace index of request i.
func buildNodeTrace(tpl Template, stream StreamConfig, reqs []Request) (trace []gpu.Access, segs []int, footprint int64) {
	pp := tpl.prefixPages()
	cursor := int64(stream.Prefixes * pp)
	segs = make([]int, len(reqs))
	read := func(p int64) { trace = append(trace, gpu.Access{Page: tier.PageID(p)}) }
	write := func(p int64) { trace = append(trace, gpu.Access{Page: tier.PageID(p), Write: true}) }
	for i, r := range reqs {
		prefixStart := int64(r.Prefix) * int64(pp)
		readPrefix := func() {
			for p := 0; p < pp; p++ {
				read(prefixStart + int64(p))
			}
		}
		promptLen := int(r.PromptPages)
		promptStart := cursor
		cursor += int64(promptLen)
		genLen := int(r.DecodeSteps) / stepsPerPage
		genStart := cursor
		cursor += int64(genLen)
		ctxPage := func(i int) int64 {
			if i < promptLen {
				return promptStart + int64(i)
			}
			return genStart + int64(i-promptLen)
		}

		// Prefill: attend over the shared prefix, append the prompt KV.
		readPrefix()
		for p := int64(0); p < int64(promptLen); p++ {
			write(promptStart + p)
		}
		// Decode: re-read the recent context window each step; the full
		// prefix and older context only on full-attention steps.
		for k := 0; k < int(r.DecodeSteps); k++ {
			filled := k / stepsPerPage
			ctx := promptLen + filled
			full := k%prefixStride == 0
			if full {
				readPrefix()
			} else {
				read(prefixStart)
			}
			lo := 0
			if !full && ctx > recentWindow {
				lo = ctx - recentWindow
			}
			for j := lo; j < ctx; j++ {
				read(ctxPage(j))
			}
			if (k+1)%stepsPerPage == 0 && filled < genLen {
				write(genStart + int64(filled))
			}
		}
		segs[i] = len(trace)
	}
	return trace, segs, cursor
}

// simulateNode services the node's routed sub-stream on one recycled
// {engine, runtime} pair: each request's kernel runs to completion on
// the node's single deterministic engine (its service time is the
// kernel's simulated span) and a FIFO queue converts open-loop arrival
// instants plus service times into per-request latencies. Everything
// here is simulated time — the determinism root the fleet's
// byte-identical contract hangs off, so detflow verifies no wall
// clock, global randomness, or cross-goroutine communication is
// reachable from it.
//
//gmt:detroot
func simulateNode(eng *sim.Engine, rt *core.Runtime, gcfg gpu.Config, trace []gpu.Access, segs []int, reqs []Request) nodeOutcome {
	var (
		latencies []sim.Time
		lastDone  sim.Time
		compute   sim.Time
		stall     sim.Time
	)
	start := 0
	for i, r := range reqs {
		seg := trace[start:segs[i]]
		start = segs[i]
		t0 := eng.Now()
		g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: seg}, rt)
		g.Launch()
		eng.Run()
		if !g.Done() {
			panic(fmt.Sprintf("fleet: request %d did not finish", r.ID))
		}
		service := eng.Now() - t0
		compute += g.ComputeTime()
		stall += g.StallTime()

		begin := r.Arrive
		if lastDone > begin {
			begin = lastDone
		}
		done := begin + service
		lastDone = done
		latencies = append(latencies, done-r.Arrive)
	}
	m := rt.Snapshot()
	m.App = "fleet-node"
	m.WallTime = lastDone
	m.WarpComputeNS = int64(compute)
	m.WarpStallNS = int64(stall)
	return nodeOutcome{
		run:      m,
		latency:  stats.NewDigest(latencies),
		requests: len(reqs),
		lastDone: lastDone,
	}
}
