// Package invariant provides build-tag-gated runtime assertions for the
// simulator's conservation invariants: tier slot accounting, NVMe queue
// depth bounds, PCIe bandwidth grants, engine clock monotonicity,
// event-pool conservation, and scheduler agreement (Peek matches the
// event step then dispatches; AdvanceTo never skips a pending event —
// see HACKING.md, "Scheduler determinism contract").
//
// The checks compile to no-ops by default. Build with
//
//	go test -tags gmtinvariants ./...
//
// to enable them; a violated invariant panics with a descriptive message.
// Call sites that must compute non-trivial arguments should guard on the
// Enabled constant so the disabled build pays nothing:
//
//	if invariant.Enabled {
//		invariant.Assert(expensive() == 0, "leaked %d", expensive())
//	}
//
// The static half of the determinism contract is enforced by
// cmd/gmtlint; see HACKING.md ("Determinism rules").
package invariant
