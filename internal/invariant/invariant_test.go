package invariant

import "testing"

func TestAssert(t *testing.T) {
	Assert(true, "a true condition never fires")

	defer func() {
		r := recover()
		if Enabled && r == nil {
			t.Fatal("gmtinvariants build: Assert(false) must panic")
		}
		if !Enabled && r != nil {
			t.Fatalf("default build: Assert(false) must be a no-op, panicked with %v", r)
		}
	}()
	Assert(false, "queue depth %d above %d", 9, 8)
}
