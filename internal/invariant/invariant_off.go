//go:build !gmtinvariants

package invariant

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// Assert is a no-op in the default build.
func Assert(cond bool, format string, args ...interface{}) {}
