//go:build gmtinvariants

package invariant

import "fmt"

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// Assert panics with the formatted message when cond is false.
func Assert(cond bool, format string, args ...interface{}) {
	if !cond {
		panic("invariant: " + fmt.Sprintf(format, args...))
	}
}
