package workload

import "math/rand"

// RateSchedule is the open-loop arrival machinery shared by the
// KV-serving workload and the fleet traffic stream (internal/fleet): a
// seeded Poisson process whose rate is Base requests/second scaled by
// the multiplier active at the current instant. Each Mult entry lasts
// PeriodSec seconds and the schedule cycles — the diurnal burst pattern
// serving studies care about. Arrivals are open-loop by construction:
// the next instant depends only on the schedule and the RNG stream,
// never on service progress.
type RateSchedule struct {
	Base      float64
	Mult      []float64
	PeriodSec float64
}

// Next draws the next Poisson arrival after instant t (in seconds),
// consuming exactly one ExpFloat64 from rng. Callers interleaving other
// draws on the same stream keep their historical draw order — the
// KV-serving generator's request plan is byte-identical to the
// pre-refactor inline loop.
func (s RateSchedule) Next(rng *rand.Rand, t float64) float64 {
	m := s.Mult[int(t/s.PeriodSec)%len(s.Mult)]
	return t + rng.ExpFloat64()/(s.Base*m)
}
