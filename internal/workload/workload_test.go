package workload

import (
	"testing"

	"github.com/gmtsim/gmt/internal/gpu"
)

// testScale keeps unit tests fast while preserving every capacity ratio.
func testScale() Scale {
	return Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2}
}

func TestScaleArithmetic(t *testing.T) {
	s := testScale()
	if s.CombinedPages() != 1280 {
		t.Fatalf("combined = %d", s.CombinedPages())
	}
	if s.WorkingSetPages() != 2560 {
		t.Fatalf("working set = %d", s.WorkingSetPages())
	}
}

func TestAllNineApps(t *testing.T) {
	ws := All(testScale())
	if len(ws) != 9 {
		t.Fatalf("suite has %d apps, want 9", len(ws))
	}
	seen := map[string]bool{}
	for i, w := range ws {
		if w.Name() != Names[i] {
			t.Fatalf("app %d = %q, want %q (Table 2 order)", i, w.Name(), Names[i])
		}
		seen[w.Name()] = true
	}
	if len(seen) != 9 {
		t.Fatal("duplicate app names")
	}
}

func TestTracesInBoundsAndDeterministic(t *testing.T) {
	s := testScale()
	for _, w := range All(s) {
		tr := w.Trace()
		if len(tr) == 0 {
			t.Fatalf("%s: empty trace", w.Name())
		}
		for i, a := range tr {
			if int64(a.Page) < 0 || int64(a.Page) >= w.Pages() {
				t.Fatalf("%s: access %d page %d outside [0,%d)", w.Name(), i, a.Page, w.Pages())
			}
		}
		tr2 := w.Trace()
		if len(tr) != len(tr2) {
			t.Fatalf("%s: nondeterministic trace length", w.Name())
		}
		for i := range tr {
			if tr[i] != tr2[i] {
				t.Fatalf("%s: nondeterministic at %d", w.Name(), i)
			}
		}
	}
}

func TestFootprintsNearWorkingSet(t *testing.T) {
	s := testScale()
	target := float64(s.WorkingSetPages())
	for _, w := range All(s) {
		ratio := float64(w.Pages()) / target
		if ratio < 0.75 || ratio > 1.25 {
			t.Fatalf("%s: footprint %d is %.2fx the working-set target %d",
				w.Name(), w.Pages(), ratio, s.WorkingSetPages())
		}
	}
}

// Table 2 reproduction: each application's reuse percentage and
// distance bias must land in its paper band (qualitative category).
func TestTable2CharacteristicBands(t *testing.T) {
	s := testScale()
	type band struct {
		reuseLo, reuseHi float64
		check            func(a *Analysis) bool
		desc             string
	}
	bands := map[string]band{
		// Low reuse, Tier-1 bias (paper: 1.17%, §3.3).
		"LavaMD": {0.005, 0.03, func(a *Analysis) bool {
			sh, _, _ := a.PairFractions()
			return sh > 0.95
		}, "reuse pairs inside Tier-1"},
		// Low reuse, Tier-1 bias (paper: 19.47%, 99.99% within Tier-1).
		"Pathfinder": {0.15, 0.25, func(a *Analysis) bool {
			sh, _, _ := a.PairFractions()
			return sh > 0.95
		}, "reuse pairs inside Tier-1"},
		// Medium reuse, Tier-2 bias at evictions (paper: 40%).
		"MultiVectorAdd": {0.2, 0.4, func(a *Analysis) bool {
			_, med, _ := a.EvictFractions()
			return med > 0.8
		}, "eviction RRDs in Tier-2 band"},
		// Medium reuse, Tier-2-leaning evictions (paper: 32.86%).
		"BFS": {0.3, 1.0, func(a *Analysis) bool {
			_, med, long := a.EvictFractions()
			return med+long > 0.5 && med > 0.2
		}, "mixed Tier-2/Tier-3 eviction RRDs"},
		// High reuse, Tier-2 bias (paper: 83.38%).
		"Srad": {0.4, 0.9, func(a *Analysis) bool {
			_, med, _ := a.EvictFractions()
			return med > 0.7
		}, "eviction RRDs in Tier-2 band"},
		// High reuse, Tier-2-heavy (paper: 93.54%).
		"Backprop": {0.85, 1.0, func(a *Analysis) bool {
			_, med, _ := a.EvictFractions()
			return med > 0.35
		}, "large Tier-2 eviction mass"},
		// High reuse, Tier-3 bias (paper: 90.42%, 94% Tier-3).
		"PageRank": {0.8, 1.0, func(a *Analysis) bool {
			_, _, long := a.EvictFractions()
			return long > 0.5
		}, "Tier-3-biased eviction RRDs"},
		// High reuse, Tier-3 bias (paper: 79.96%, 97% Tier-3).
		"SSSP": {0.6, 1.0, func(a *Analysis) bool {
			_, med, long := a.EvictFractions()
			return long > 0.35 && med+long > 0.7
		}, "Tier-3-leaning eviction RRDs"},
		// High reuse, pure Tier-3 (paper: 81.33%, 100% Tier-3).
		"Hotspot": {0.7, 0.9, func(a *Analysis) bool {
			_, _, long := a.EvictFractions()
			return long > 0.99
		}, "all eviction RRDs in Tier-3 band"},
	}
	for _, w := range All(s) {
		b, ok := bands[w.Name()]
		if !ok {
			t.Fatalf("no band for %s", w.Name())
		}
		a := Analyze(w.Name(), w.Trace(), s, 64*1024, 2000)
		if r := a.ReusePct(); r < b.reuseLo || r > b.reuseHi {
			t.Errorf("%s: reuse %.1f%% outside [%.0f%%, %.0f%%]",
				w.Name(), 100*r, 100*b.reuseLo, 100*b.reuseHi)
		}
		if !b.check(a) {
			es, em, el := a.EvictFractions()
			ps, pm, pl := a.PairFractions()
			t.Errorf("%s: bias check failed (%s): evict=[%.2f %.2f %.2f] pair=[%.2f %.2f %.2f]",
				w.Name(), b.desc, es, em, el, ps, pm, pl)
		}
	}
}

func TestBackpropLargestIO(t *testing.T) {
	// Table 2: Backprop has by far the largest total I/O, Hotspot second.
	s := testScale()
	sizes := map[string]int{}
	for _, w := range All(s) {
		sizes[w.Name()] = len(w.Trace())
	}
	for name, n := range sizes {
		if name != "Backprop" && n >= sizes["Backprop"] {
			t.Fatalf("%s trace (%d) >= Backprop (%d)", name, n, sizes["Backprop"])
		}
		if name != "Backprop" && name != "Hotspot" && n >= sizes["Hotspot"] {
			t.Fatalf("%s trace (%d) >= Hotspot (%d)", name, n, sizes["Hotspot"])
		}
	}
}

func TestMultiVectorAddConstantRRD(t *testing.T) {
	// Figure 4b: a page has (nearly) the same RRD each time it is
	// evicted from Tier-1.
	s := testScale()
	w := NewMultiVectorAdd(s)
	a := Analyze(w.Name(), w.Trace(), s, 64*1024, 0)
	series := a.EvictionSeries(2)
	if len(series) == 0 {
		t.Fatal("no page evicted twice")
	}
	checked := 0
	for _, rrds := range series {
		for i := 1; i < len(rrds); i++ {
			lo, hi := rrds[i-1], rrds[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo > 0 && float64(hi)/float64(lo) > 1.5 {
				t.Fatalf("RRD series not near-constant: %v", rrds)
			}
		}
		checked++
		if checked > 50 {
			break
		}
	}
}

func TestVTDCorrelationLinear(t *testing.T) {
	// Figure 4a: VTD correlates linearly with reuse distance.
	s := testScale()
	for _, w := range []Workload{NewSrad(s), NewBackprop(s)} {
		a := Analyze(w.Name(), w.Trace(), s, 64*1024, 5000)
		_, _, r, ok := a.PairCorrelation()
		if !ok {
			t.Fatalf("%s: no valid fit", w.Name())
		}
		if r < 0.9 {
			t.Fatalf("%s: correlation %.2f < 0.9", w.Name(), r)
		}
	}
}

func TestGraphSetLayout(t *testing.T) {
	gs := NewGraphSet(testScale(), 42)
	if gs.OffsetPages() <= 0 || gs.ValuePages() <= 0 || gs.EdgePages() <= 0 {
		t.Fatalf("degenerate layout: %+v", gs)
	}
	// Edge list should dominate (≈80% of footprint).
	frac := float64(gs.EdgePages()) / float64(gs.Pages())
	if frac < 0.6 || frac > 0.95 {
		t.Fatalf("edge fraction %.2f, want ≈0.8", frac)
	}
	// Regions must not overlap: offsets < values < edges in page space.
	if gs.valuePage(0) != gs.OffsetPages() || gs.edgePage(0) != gs.OffsetPages()+gs.ValuePages() {
		t.Fatal("page regions overlap")
	}
}

func TestZipfStreamSkewControlsDistinct(t *testing.T) {
	distinct := func(skew float64) int {
		z := NewZipfStream(1000, skew, 5000, 7)
		seen := map[int64]bool{}
		for {
			a, ok := z.Next()
			if !ok {
				break
			}
			seen[int64(a.Page)] = true
		}
		return len(seen)
	}
	uniform, skewed := distinct(0), distinct(1.0)
	if skewed >= uniform {
		t.Fatalf("skew=1 gave %d distinct pages >= skew=0's %d", skewed, uniform)
	}
}

func TestZipfStreamBoundsAndCount(t *testing.T) {
	z := NewZipfStream(100, 0.5, 500, 1)
	n := 0
	for {
		a, ok := z.Next()
		if !ok {
			break
		}
		if a.Page < 0 || int64(a.Page) >= 100 {
			t.Fatalf("page %d out of range", a.Page)
		}
		n++
	}
	if n != 500 {
		t.Fatalf("drew %d accesses, want 500", n)
	}
}

func TestStreamWrapsTrace(t *testing.T) {
	w := NewPathfinder(testScale())
	st := Stream(w)
	tr := w.Trace()
	for i := 0; ; i++ {
		a, ok := st.Next()
		if !ok {
			if i != len(tr) {
				t.Fatalf("stream ended at %d, trace has %d", i, len(tr))
			}
			return
		}
		if a != tr[i] {
			t.Fatalf("stream diverges from trace at %d", i)
		}
	}
}

func TestAnalyzeTinyTraceByHand(t *testing.T) {
	// Trace A B A over tiers T1=1: A's reuse distance is 1 (B), which is
	// >= T1 (1) and < T1+T2 (3) -> Medium pair.
	s := Scale{Tier1Pages: 1, Tier2Pages: 2, Oversubscription: 1}
	trace := []gpu.Access{{Page: 0}, {Page: 1}, {Page: 0}}
	a := Analyze("tiny", trace, s, 64, 10)
	if a.DistinctPages != 2 || a.ReusedPages != 1 {
		t.Fatalf("distinct=%d reused=%d", a.DistinctPages, a.ReusedPages)
	}
	if a.PairMedium != 1 || a.PairShort != 0 || a.PairLong != 0 {
		t.Fatalf("pair bins = [%d %d %d]", a.PairShort, a.PairMedium, a.PairLong)
	}
	// A is evicted when B arrives (T1 capacity 1) and reused later:
	// exactly one eviction with RRD=1 (page B) -> Medium.
	if a.EvictMedium != 1 {
		t.Fatalf("evict bins = [%d %d %d], dead=%d",
			a.EvictShort, a.EvictMedium, a.EvictLong, a.DeadEvictions)
	}
	if a.TotalIOBytes != 3*64 {
		t.Fatalf("io bytes = %d", a.TotalIOBytes)
	}
}

func TestRegularSubset(t *testing.T) {
	ws := Regular(testScale())
	if len(ws) != 6 {
		t.Fatalf("regular suite = %d apps, want 6", len(ws))
	}
	for _, w := range ws {
		switch w.Name() {
		case "BFS", "PageRank", "SSSP":
			t.Fatalf("graph app %s in regular suite", w.Name())
		}
	}
}
