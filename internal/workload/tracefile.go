package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/tier"
)

// Trace files are a line-oriented text format, one access per line:
//
//	# gmt-trace v1
//	R 123
//	W 456
//
// Lines starting with '#' are comments. The format trades compactness
// for being diffable and tool-friendly.

const traceHeader = "# gmt-trace v1"

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, trace []gpu.Access) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, traceHeader); err != nil {
		return err
	}
	for _, a := range trace {
		op := byte('R')
		if a.Write {
			op = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%c %d\n", op, a.Page); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]gpu.Access, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var trace []gpu.Access
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			// A "# gmt-trace v*" line is a version header, not a free-form
			// comment: rejecting unknown versions here beats failing later
			// with a misleading "missing header" at the first data line.
			if rest := strings.TrimSpace(text[1:]); strings.HasPrefix(rest, "gmt-trace") {
				version := strings.TrimSpace(strings.TrimPrefix(rest, "gmt-trace"))
				if version != "v1" {
					return nil, fmt.Errorf("workload: line %d: unsupported trace version %q (this reader understands %q)",
						line, version, traceHeader)
				}
				sawHeader = true
			}
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("workload: line %d: missing %q header", line, traceHeader)
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: line %d: want 'R|W <page>', got %q", line, text)
		}
		var write bool
		switch fields[0] {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("workload: line %d: unknown op %q", line, fields[0])
		}
		page, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || page < 0 {
			return nil, fmt.Errorf("workload: line %d: bad page %q", line, fields[1])
		}
		trace = append(trace, gpu.Access{Page: tier.PageID(page), Write: write})
	}
	if err := sc.Err(); err != nil {
		// Attach line context: bare scanner errors (bufio.ErrTooLong
		// especially) are useless against multi-gigabyte trace files.
		return nil, fmt.Errorf("workload: line %d: reading trace: %w", line+1, err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("workload: missing %q header", traceHeader)
	}
	return trace, nil
}

// FileWorkload adapts a loaded trace to the Workload interface.
type FileWorkload struct {
	TraceName string
	Accesses  []gpu.Access
}

// Name implements Workload.
func (f *FileWorkload) Name() string { return f.TraceName }

// Pages implements Workload (1 + the highest page referenced).
func (f *FileWorkload) Pages() int64 {
	var max tier.PageID = -1
	for _, a := range f.Accesses {
		if a.Page > max {
			max = a.Page
		}
	}
	return int64(max) + 1
}

// Trace implements Workload.
func (f *FileWorkload) Trace() []gpu.Access {
	out := make([]gpu.Access, len(f.Accesses))
	copy(out, f.Accesses)
	return out
}
