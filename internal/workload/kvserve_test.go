package workload

import (
	"testing"

	"github.com/gmtsim/gmt/internal/gpu"
)

func kvScale() Scale {
	return Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2}
}

func TestKVServeDeterministic(t *testing.T) {
	a := NewKVServe(kvScale()).Trace()
	b := NewKVServe(kvScale()).Trace()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestKVServeSeedVariesTrace(t *testing.T) {
	s := kvScale()
	s.DatasetSeed = 7
	a := NewKVServe(kvScale()).Trace()
	b := NewKVServe(s).Trace()
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different dataset seeds produced identical traces")
		}
	}
}

func TestKVServePageBounds(t *testing.T) {
	w := NewKVServe(kvScale())
	pages := w.Pages()
	if pages <= 0 || pages > int64(kvScale().WorkingSetPages()) {
		t.Fatalf("footprint %d outside (0, %d]", pages, kvScale().WorkingSetPages())
	}
	for i, a := range w.Trace() {
		if int64(a.Page) < 0 || int64(a.Page) >= pages {
			t.Fatalf("access %d: page %d outside [0, %d)", i, a.Page, pages)
		}
	}
}

// The serving trace must actually exercise the tiering mechanism: KV
// pages written during one phase get re-read later (decode context and
// follow-up reloads), and prefix pages are shared across requests.
func TestKVServeReusePresent(t *testing.T) {
	w := NewKVServe(kvScale())
	prefixPool := int64(w.Prefixes * w.PrefixPages)
	written := map[gpu.Access]bool{}
	rereads := 0
	prefixReads := 0
	for _, a := range w.Trace() {
		if a.Write {
			written[gpu.Access{Page: a.Page}] = true
			continue
		}
		if int64(a.Page) < prefixPool {
			prefixReads++
		}
		if written[a] {
			rereads++
		}
	}
	if rereads == 0 {
		t.Fatal("no KV page written then re-read: decode/follow-up reuse missing")
	}
	if prefixReads == 0 {
		t.Fatal("no shared-prefix reads")
	}
}

// The rate schedule must produce bursts: with the 4x period present,
// more requests land in the burst period than in the trough.
func TestKVServeOpenLoopBursts(t *testing.T) {
	w := NewKVServe(kvScale())
	w.Trace()
	// Knobs are fixed at construction; rebuilding with a flat schedule
	// must change the interleaving.
	flat := NewKVServe(kvScale())
	flat.RateSchedule = []float64{1}
	a, b := w.Trace(), flat.Trace()
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("rate schedule has no effect on the trace")
	}
}

// DatasetSeed must flow through All: the Kronecker graph apps change
// with the seed while the seed-independent regular apps stay fixed.
func TestAllDatasetSeedPlumbing(t *testing.T) {
	s := Scale{Tier1Pages: 64, Tier2Pages: 256, Oversubscription: 2}
	s2 := s
	s2.DatasetSeed = 43
	base := All(s)
	reseeded := All(s2)
	defaulted := All(Scale{Tier1Pages: 64, Tier2Pages: 256, Oversubscription: 2, DatasetSeed: 42})
	idx := map[string]int{}
	for i, w := range base {
		idx[w.Name()] = i
	}
	bfs := idx["BFS"]
	a, b := base[bfs].Trace(), reseeded[bfs].Trace()
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("DatasetSeed did not reach the graph generator")
	}
	// Zero must alias the historical default seed 42 exactly.
	c := defaulted[bfs].Trace()
	if len(a) != len(c) {
		t.Fatalf("zero seed and explicit 42 differ: %d vs %d accesses", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("zero seed and explicit 42 diverge at %d", i)
		}
	}
}
