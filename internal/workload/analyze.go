package workload

import (
	"math"
	"sort"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/reuse"
	"github.com/gmtsim/gmt/internal/tier"
)

// Characteristics summarizes a workload trace the way the paper's Table 2
// and Figure 7 do: reuse percentage, total I/O, and where reuse distances
// fall relative to the tier capacities.
//
// Two distance distributions are reported, because the paper uses both
// views: PairShort/Medium/Long bins the reuse distance of every access
// pair (the "where does the reuse live" view behind statements like
// "99.99% of Pathfinder's RRDs fall within Tier-1"), while
// EvictShort/Medium/Long bins the actual Remaining Reuse Distance at
// Tier-1 clock evictions of pages with a future access — the quantity
// GMT-Reuse predicts (Figures 4b/4c) and the placement-relevant bias.
type Characteristics struct {
	Name          string
	Pages         int64
	Accesses      int64
	DistinctPages int64
	ReusedPages   int64
	TotalIOBytes  int64

	PairShort, PairMedium, PairLong    int64
	EvictShort, EvictMedium, EvictLong int64
	DeadEvictions                      int64
}

// ReusePct reports the fraction of distinct pages with more than one
// access (Table 2's "Reuse % of a Page").
func (c Characteristics) ReusePct() float64 {
	if c.DistinctPages == 0 {
		return 0
	}
	return float64(c.ReusedPages) / float64(c.DistinctPages)
}

func fractions(a, b, c int64) (fa, fb, fc float64) {
	t := a + b + c
	if t == 0 {
		return 0, 0, 0
	}
	return float64(a) / float64(t), float64(b) / float64(t), float64(c) / float64(t)
}

// PairFractions reports the tier split of reuse-pair distances.
func (c Characteristics) PairFractions() (short, medium, long float64) {
	return fractions(c.PairShort, c.PairMedium, c.PairLong)
}

// EvictFractions reports the tier split of eviction-time RRDs.
func (c Characteristics) EvictFractions() (short, medium, long float64) {
	return fractions(c.EvictShort, c.EvictMedium, c.EvictLong)
}

// EvictionRecord is one Tier-1 eviction of a page that is accessed again
// later: its position in the trace and its actual RRD (distinct pages
// accessed before the page's next use). Figures 4b/4c plot these per
// page.
type EvictionRecord struct {
	Page     tier.PageID
	Position int
	RRD      int64
}

// PairSample is one (VTD, reuse distance) observation, the raw material
// of Figure 4a and the regression of Eq. 2.
type PairSample struct {
	VTD, RD int64
}

// Analysis bundles the summary with the raw series the figure drivers
// plot.
type Analysis struct {
	Characteristics
	Evictions []EvictionRecord
	Pairs     []PairSample
}

// Analyze computes trace characteristics against the given tier sizes.
// maxPairs bounds the collected (VTD, RD) samples (0 = none). Barrier
// tokens are stripped first: they synchronize warps but touch no page.
func Analyze(name string, trace []gpu.Access, s Scale, pageSize int64, maxPairs int) *Analysis {
	trace = stripBarriers(trace)
	cl := reuse.Classifier{Tier1Pages: int64(s.Tier1Pages), Tier2Pages: int64(s.Tier2Pages)}
	a := &Analysis{}
	a.Name = name
	a.Accesses = int64(len(trace))
	a.TotalIOBytes = a.Accesses * pageSize

	// Pass 1: per-page access positions, access-pair distances.
	positions := make(map[tier.PageID][]int)
	tr := reuse.NewDistanceTracker()
	for i, acc := range trace {
		positions[acc.Page] = append(positions[acc.Page], i)
		vtd, rd, ok := tr.Observe(acc.Page)
		if !ok {
			continue
		}
		switch cl.Classify(rd) {
		case reuse.Short:
			a.PairShort++
		case reuse.Medium:
			a.PairMedium++
		default:
			a.PairLong++
		}
		if len(a.Pairs) < maxPairs {
			a.Pairs = append(a.Pairs, PairSample{VTD: vtd, RD: rd})
		}
	}
	a.DistinctPages = int64(len(positions))
	for _, pos := range positions {
		if len(pos) > 1 {
			a.ReusedPages++
		}
	}
	var maxPage tier.PageID = -1
	for p := range positions {
		if p > maxPage {
			maxPage = p
		}
	}
	a.Characteristics.Pages = int64(maxPage) + 1

	// Pass 2: simulate a Tier-1 clock over the trace, recording
	// evictions, then compute each eviction's actual RRD (distinct
	// pages between eviction and next access) with the offline tree.
	clock := tier.NewClock(s.Tier1Pages)
	type evict struct {
		page tier.PageID
		pos  int
		next int
	}
	var evicts []evict
	pageTrace := make([]tier.PageID, len(trace))
	for i, acc := range trace {
		pageTrace[i] = acc.Page
		if clock.Contains(acc.Page) {
			clock.Touch(acc.Page)
			continue
		}
		if clock.Full() {
			v := clock.Victim()
			clock.Remove(v)
			if n := nextAccessAfter(positions[v], i); n >= 0 {
				evicts = append(evicts, evict{page: v, pos: i, next: n})
			} else {
				a.DeadEvictions++
			}
		}
		clock.Insert(acc.Page)
	}
	queries := make([]reuse.RangeQuery, len(evicts))
	for i, e := range evicts {
		// The window spans from the access that triggered the eviction
		// (inclusive — it is an access to another page) up to, but not
		// including, the page's next access.
		queries[i] = reuse.RangeQuery{From: e.pos - 1, To: e.next - 1}
	}
	rrds := reuse.DistinctInRanges(pageTrace, queries)
	a.Evictions = make([]EvictionRecord, len(evicts))
	for i, e := range evicts {
		a.Evictions[i] = EvictionRecord{Page: e.page, Position: e.pos, RRD: rrds[i]}
		switch cl.Classify(rrds[i]) {
		case reuse.Short:
			a.EvictShort++
		case reuse.Medium:
			a.EvictMedium++
		default:
			a.EvictLong++
		}
	}
	return a
}

// stripBarriers removes gpu.Barrier tokens, returning the input slice
// unchanged when none are present.
func stripBarriers(trace []gpu.Access) []gpu.Access {
	for i, a := range trace {
		if a.IsBarrier() {
			out := make([]gpu.Access, 0, len(trace)-1)
			out = append(out, trace[:i]...)
			for _, b := range trace[i:] {
				if !b.IsBarrier() {
					out = append(out, b)
				}
			}
			return out
		}
	}
	return trace
}

// nextAccessAfter reports the first position in pos strictly greater
// than i, or -1.
func nextAccessAfter(pos []int, i int) int {
	k := sort.SearchInts(pos, i+1)
	if k == len(pos) {
		return -1
	}
	return pos[k]
}

// EvictionSeries groups eviction RRDs per page in eviction order — the
// data behind Figures 4b/4c. Only pages with at least minEvictions are
// returned.
func (a *Analysis) EvictionSeries(minEvictions int) map[tier.PageID][]int64 {
	series := make(map[tier.PageID][]int64)
	for _, e := range a.Evictions {
		series[e.Page] = append(series[e.Page], e.RRD)
	}
	for p, s := range series {
		if len(s) < minEvictions {
			delete(series, p)
		}
	}
	return series
}

// PairCorrelation fits RD = m*VTD + b over the collected samples and
// reports the coefficients with the Pearson correlation — Figure 4a's
// claim is that the relation is strongly linear.
func (a *Analysis) PairCorrelation() (m, b, r float64, ok bool) {
	if len(a.Pairs) < 2 {
		return 0, 0, 0, false
	}
	var o reuse.OLS
	var sx, sy float64
	for _, p := range a.Pairs {
		o.Add(float64(p.VTD), float64(p.RD))
		sx += float64(p.VTD)
		sy += float64(p.RD)
	}
	n := float64(len(a.Pairs))
	mx, my := sx/n, sy/n
	m, b, ok = o.Coefficients()
	if !ok {
		// Zero VTD variance (e.g. MultiVectorAdd's constant stride):
		// the relation is a single point, perfectly predictable by the
		// proportional fit through it.
		if mx > 0 {
			return my / mx, 0, 1, true
		}
		return m, b, 0, false
	}
	var cov, vx, vy float64
	for _, p := range a.Pairs {
		dx, dy := float64(p.VTD)-mx, float64(p.RD)-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return m, b, 1, true // perfectly degenerate line
	}
	r = cov / math.Sqrt(vx*vy)
	return m, b, r, true
}
