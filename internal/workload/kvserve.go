package workload

import (
	"math/rand"
	"sort"
	"sync"

	"github.com/gmtsim/gmt/internal/gpu"
)

// KVServeName is the KV-cache serving workload's suite name. It is not
// part of the paper's nine-application suite (Names); the serving-policy
// experiment requests it explicitly.
const KVServeName = "KVServe"

// Step kinds of the serving event timeline.
const (
	kvPrefill = iota
	kvDecode
	kvFollowUp
)

// kvFollowUpPages is the KV footprint a follow-up turn appends.
const kvFollowUpPages = 2

// kvRequest is one planned conversation request: a prompt prefilled
// against a shared prefix, a decode phase appending KV blocks, and an
// optional follow-up turn that reloads the whole context.
type kvRequest struct {
	prefix      int     // shared prefix index
	promptStart int64   // first prompt KV page
	promptLen   int     // prompt KV pages
	genStart    int64   // first decode-generated KV page
	genLen      int     // decode-generated KV pages
	decodeSteps int     // decode iterations
	followUp    bool    // second turn after think time
	fuStart     int64   // first follow-up KV page
	arrive      float64 // open-loop arrival instant, seconds
}

// kvStep is one timeline event; seq breaks same-instant ties so the
// interleaving is deterministic.
type kvStep struct {
	at   float64
	seq  int64
	req  int32
	kind uint8
	k    int32 // decode step index (kvDecode only)
}

// KVServeWorkload generates a tiered LLM KV-cache serving trace: pages
// are KV blocks. Each request prefetches a shared prompt prefix
// (prefix reuse across requests), appends prompt KV during prefill,
// then decodes step by step — every step re-reads its recent context
// window while KV blocks below the recency threshold are offloaded and
// re-fetched only every OffloadStride steps. A fraction of requests
// returns after a think time and reloads the entire context (the
// reload-from-Tier-2-instead-of-recompute pattern GMT accelerates).
//
// Requests arrive open-loop: a seeded Poisson process whose rate
// follows a multi-period schedule (diurnal burst pattern), so load is
// independent of service progress. All randomness comes from one
// seeded generator; the trace is a pure function of (Scale, seed).
type KVServeWorkload struct {
	Scale Scale

	// Prefixes counts the distinct shared prompt prefixes (system
	// prompts / few-shot preambles); each occupies PrefixPages KV
	// blocks, read in full at prefill.
	Prefixes    int
	PrefixPages int

	// Prompt and decode shapes, drawn uniformly per request
	// (inclusive bounds).
	MinPromptPages, MaxPromptPages int
	MinDecodeSteps, MaxDecodeSteps int

	// StepsPerPage decode steps fill one new KV block.
	StepsPerPage int

	// RecentWindow context pages are re-read every decode step; older
	// (offloaded) blocks and the full prefix are re-fetched only every
	// OffloadStride steps.
	RecentWindow  int
	OffloadStride int

	// Open-loop arrivals: BaseRate requests/second scaled by the
	// RateSchedule multiplier active at the arrival instant; each
	// schedule entry lasts PeriodSec.
	BaseRate     float64
	RateSchedule []float64
	PeriodSec    float64

	// PrefillSec is the prefill latency; StepSec the per-decode-step
	// latency. They position decode events on the arrival timeline.
	PrefillSec float64
	StepSec    float64

	// FollowUpProb of requests issue a second turn ThinkSec after
	// decode completes, reloading prefix + prompt + generated KV.
	FollowUpProb float64
	ThinkSec     float64

	seed int64

	once  sync.Once
	trace []gpu.Access
	pages int64
}

// NewKVServe builds the serving workload at the given scale, seeded
// from the scale's dataset seed. Knob defaults size the prefix pool to
// the hierarchy and pick a burst schedule whose peak concurrency
// overflows Tier-1 so placement policy matters.
func NewKVServe(s Scale) *KVServeWorkload {
	prefixPages := s.Tier1Pages / 32
	if prefixPages < 8 {
		prefixPages = 8
	}
	return &KVServeWorkload{
		Scale:          s,
		Prefixes:       8,
		PrefixPages:    prefixPages,
		MinPromptPages: 4,
		MaxPromptPages: 16,
		MinDecodeSteps: 16,
		MaxDecodeSteps: 48,
		StepsPerPage:   8,
		RecentWindow:   16,
		OffloadStride:  4,
		BaseRate:       float64(s.Tier1Pages) / 128,
		RateSchedule:   []float64{1, 4, 1, 0.25},
		PeriodSec:      30,
		PrefillSec:     0.2,
		StepSec:        0.05,
		FollowUpProb:   0.35,
		ThinkSec:       10,
		seed:           s.datasetSeed(),
	}
}

// Name implements Workload.
func (w *KVServeWorkload) Name() string { return KVServeName }

// Pages implements Workload.
func (w *KVServeWorkload) Pages() int64 { w.build(); return w.pages }

// Trace implements Workload. The trace is built once and cached;
// repeated calls return the same slice.
func (w *KVServeWorkload) Trace() []gpu.Access { w.build(); return w.trace }

// build plans the request mix and arrival timeline, then emits the
// interleaved access stream in (time, sequence) order.
func (w *KVServeWorkload) build() {
	w.once.Do(func() {
		rng := rand.New(rand.NewSource(w.seed))
		working := int64(w.Scale.WorkingSetPages())

		// Plan requests until the KV area (working set minus the
		// prefix pool) is exhausted. Every draw happens in a fixed
		// order, so the plan is a pure function of the seed.
		sched := RateSchedule{Base: w.BaseRate, Mult: w.RateSchedule, PeriodSec: w.PeriodSec}
		var reqs []kvRequest
		cursor := int64(w.Prefixes * w.PrefixPages)
		t := 0.0
		for {
			t = sched.Next(rng, t)
			r := kvRequest{
				prefix:      rng.Intn(w.Prefixes),
				promptLen:   w.MinPromptPages + rng.Intn(w.MaxPromptPages-w.MinPromptPages+1),
				decodeSteps: w.MinDecodeSteps + rng.Intn(w.MaxDecodeSteps-w.MinDecodeSteps+1),
				followUp:    rng.Float64() < w.FollowUpProb,
				arrive:      t,
			}
			r.genLen = r.decodeSteps / w.StepsPerPage
			need := int64(r.promptLen + r.genLen)
			if r.followUp {
				need += kvFollowUpPages
			}
			if cursor+need > working {
				break
			}
			r.promptStart = cursor
			r.genStart = cursor + int64(r.promptLen)
			if r.followUp {
				r.fuStart = r.genStart + int64(r.genLen)
			}
			cursor += need
			reqs = append(reqs, r)
		}

		// Lay every request's events on one timeline and sort by
		// (instant, sequence) — concurrent requests interleave exactly
		// as a serving engine would execute them.
		var steps []kvStep
		add := func(at float64, req int32, kind uint8, k int32) {
			steps = append(steps, kvStep{at: at, seq: int64(len(steps)), req: req, kind: kind, k: k})
		}
		for i := range reqs {
			r := &reqs[i]
			add(r.arrive, int32(i), kvPrefill, 0)
			for k := 0; k < r.decodeSteps; k++ {
				add(r.arrive+w.PrefillSec+float64(k+1)*w.StepSec, int32(i), kvDecode, int32(k))
			}
			if r.followUp {
				end := r.arrive + w.PrefillSec + float64(r.decodeSteps)*w.StepSec
				add(end+w.ThinkSec, int32(i), kvFollowUp, 0)
			}
		}
		sort.Slice(steps, func(a, b int) bool {
			if steps[a].at != steps[b].at {
				return steps[a].at < steps[b].at
			}
			return steps[a].seq < steps[b].seq
		})

		b := &traceBuilder{}
		for _, st := range steps {
			w.emit(b, &reqs[st.req], st)
		}
		w.trace = b.out
		w.pages = cursor
	})
}

// ctxPage maps context index i (prompt pages first, then generated
// pages) to its KV page.
func ctxPage(r *kvRequest, i int) int64 {
	if i < r.promptLen {
		return r.promptStart + int64(i)
	}
	return r.genStart + int64(i-r.promptLen)
}

// emit appends one step's accesses.
func (w *KVServeWorkload) emit(b *traceBuilder, r *kvRequest, st kvStep) {
	prefixStart := int64(r.prefix * w.PrefixPages)
	readPrefix := func() {
		for p := 0; p < w.PrefixPages; p++ {
			b.read(prefixStart + int64(p))
		}
	}
	switch st.kind {
	case kvPrefill:
		// Attend over the shared prefix, append the prompt's KV.
		readPrefix()
		for p := 0; p < r.promptLen; p++ {
			b.write(r.promptStart + int64(p))
		}
	case kvDecode:
		k := int(st.k)
		filled := k / w.StepsPerPage
		ctx := r.promptLen + filled
		full := k%w.OffloadStride == 0
		if full {
			readPrefix()
		} else {
			// Off-step: only the prefix head block stays resident-hot.
			b.read(prefixStart)
		}
		lo := 0
		if !full && ctx > w.RecentWindow {
			lo = ctx - w.RecentWindow
		}
		for i := lo; i < ctx; i++ {
			b.read(ctxPage(r, i))
		}
		if (k+1)%w.StepsPerPage == 0 && filled < r.genLen {
			b.write(r.genStart + int64(filled))
		}
	case kvFollowUp:
		// Second turn: reload the entire context rather than
		// recomputing it, then append the new turn's KV.
		readPrefix()
		for i := 0; i < r.promptLen+r.genLen; i++ {
			b.read(ctxPage(r, i))
		}
		for p := int64(0); p < kvFollowUpPages; p++ {
			b.write(r.fuStart + p)
		}
	}
}
