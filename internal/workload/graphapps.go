package workload

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/graph"
	"github.com/gmtsim/gmt/internal/tier"
)

// elemsPerPage is how many graph-array elements map to one 64 KiB page
// after accounting for warp coalescing: a warp's 32 consecutive lanes and
// the GPU's L2 absorb most same-page element touches, so the generators
// emit one access per page crossing plus sampled random gathers (see
// gatherStride). The compression keeps graph generation tractable while
// preserving the page-level access structure.
const elemsPerPage = 256

// gatherStride samples one data-dependent gather (a random read of a
// value page) per this many edges scanned.
const gatherStride = 96

// GraphSet is a generated Kronecker graph laid out in page space:
// [offsets][values][edges]. The three graph workloads share one set.
//
// Generation is lazy: the Kronecker edge list and CSR are built on
// first use (any Pages/Trace/CSR call), and concurrent first users
// block until the single build completes. This lets a parallel
// experiment harness schedule the build — the most expensive
// non-simulation step — as one job overlapping other trace generation
// instead of paying it inside suite construction.
type GraphSet struct {
	Scale Scale
	seed  int64

	once        sync.Once
	csr         *graph.CSR
	offsetPages int64
	valuePages  int64
	edgePages   int64
}

// NewGraphSet prepares a GAP-Kron style graph sized so vertex arrays
// take ≈20% and the edge list ≈80% of the working set. The graph itself
// is generated on first use.
func NewGraphSet(s Scale, seed int64) *GraphSet {
	return &GraphSet{Scale: s, seed: seed}
}

// build generates the graph exactly once; safe for concurrent callers.
func (g *GraphSet) build() {
	g.once.Do(func() {
		w := int64(g.Scale.WorkingSetPages())
		targetV := w / 10 * elemsPerPage
		scale := 1
		for int64(1)<<(scale+1) <= targetV {
			scale++
		}
		v := int64(1) << scale
		targetE := w * 8 / 10 * elemsPerPage
		ef := int(targetE / v)
		if ef < 1 {
			ef = 1
		}
		edges := graph.GenerateKron(scale, ef, g.seed)
		g.csr = graph.BuildCSR(int32(v), edges)
		g.offsetPages = (v + 1 + elemsPerPage - 1) / elemsPerPage
		g.valuePages = (v + elemsPerPage - 1) / elemsPerPage
		g.edgePages = (int64(g.csr.M()) + elemsPerPage - 1) / elemsPerPage
	})
}

// CSR reports the generated graph, building it on first use.
func (g *GraphSet) CSR() *graph.CSR { g.build(); return g.csr }

// OffsetPages reports the page count of the CSR offset array.
func (g *GraphSet) OffsetPages() int64 { g.build(); return g.offsetPages }

// ValuePages reports the page count of the per-vertex value array.
func (g *GraphSet) ValuePages() int64 { g.build(); return g.valuePages }

// EdgePages reports the page count of the edge list.
func (g *GraphSet) EdgePages() int64 { g.build(); return g.edgePages }

// Pages reports the total page footprint.
func (g *GraphSet) Pages() int64 {
	g.build()
	return g.offsetPages + g.valuePages + g.edgePages
}

func (g *GraphSet) offsetPage(v int32) int64 { return int64(v) / elemsPerPage }

func (g *GraphSet) valuePage(v int32) int64 {
	return g.offsetPages + int64(v)/elemsPerPage
}

func (g *GraphSet) edgePage(e int64) int64 {
	return g.offsetPages + g.valuePages + e/elemsPerPage
}

// coalescer deduplicates consecutive same-page accesses within one
// array's sequential scan (each array has its own hardware-held cursor:
// the warp's registers and L2 absorb repeat touches of the current
// page). Random gathers bypass coalescing.
type coalescer struct {
	b    *traceBuilder
	last int64
}

func (c *coalescer) read(p int64) {
	if p != c.last {
		c.last = p
		c.b.read(p)
	}
}

// PageRankWorkload sweeps the full edge list every iteration (Tier-3
// biased reuse at distance ≈ the whole footprint) while gathering
// neighbor ranks from the hot value pages (Table 2: reuse ≈90%, RRD 94%
// Tier-3).
type PageRankWorkload struct {
	gs    *GraphSet
	Iters int
	// Barriers emits a kernel-wide barrier between iterations.
	Barriers bool
}

// NewPageRank builds the PageRank workload over gs.
func NewPageRank(gs *GraphSet) *PageRankWorkload {
	return &PageRankWorkload{gs: gs, Iters: 2}
}

// Name implements Workload.
func (w *PageRankWorkload) Name() string { return "PageRank" }

// Pages implements Workload.
func (w *PageRankWorkload) Pages() int64 { return w.gs.Pages() }

// Trace implements Workload.
func (w *PageRankWorkload) Trace() []gpu.Access {
	gs := w.gs
	gs.build()
	c := gs.csr
	b := &traceBuilder{}
	for it := 0; it < w.Iters; it++ {
		if w.Barriers && it > 0 {
			b.barrier()
		}
		offs := coalescer{b: b, last: -1}
		edges := coalescer{b: b, last: -1}
		for v := int32(0); v < c.N; v++ {
			offs.read(gs.offsetPage(v))
			off := c.Offsets[v]
			deg := c.Degree(v)
			for i := int64(0); i < deg; i++ {
				edges.read(gs.edgePage(off + i))
				if (off+i)%gatherStride == 0 {
					b.read(gs.valuePage(c.Dst[off+i]))
				}
			}
			if int64(v)%elemsPerPage == 0 {
				b.write(gs.valuePage(v))
			}
		}
	}
	return b.out
}

// BFSWorkload expands frontiers level by level: each edge page is
// touched in the level its source joins the frontier, and the vertex
// value (distance) pages are revisited across levels at Tier-2-range
// distances (Table 2: reuse ≈33%, Tier-2 bias).
type BFSWorkload struct {
	gs     *GraphSet
	Source int32
	// Barriers emits a kernel-wide barrier between frontier levels.
	Barriers bool
}

// NewBFS builds the BFS workload over gs.
func NewBFS(gs *GraphSet) *BFSWorkload { return &BFSWorkload{gs: gs} }

// Name implements Workload.
func (w *BFSWorkload) Name() string { return "BFS" }

// Pages implements Workload.
func (w *BFSWorkload) Pages() int64 { return w.gs.Pages() }

// Trace implements Workload.
func (w *BFSWorkload) Trace() []gpu.Access {
	gs := w.gs
	gs.build()
	c := gs.csr
	b := &traceBuilder{}
	level := make([]int32, c.N)
	for i := range level {
		level[i] = graph.Unreached
	}
	level[w.Source] = 0
	frontier := []int32{w.Source}
	for depth := int32(1); len(frontier) > 0; depth++ {
		if w.Barriers && depth > 1 {
			b.barrier()
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		offs := coalescer{b: b, last: -1}
		edges := coalescer{b: b, last: -1}
		var next []int32
		for _, v := range frontier {
			offs.read(gs.offsetPage(v))
			off := c.Offsets[v]
			deg := c.Degree(v)
			for i := int64(0); i < deg; i++ {
				edges.read(gs.edgePage(off + i))
				dst := c.Dst[off+i]
				if (off+i)%gatherStride == 0 {
					b.read(gs.valuePage(dst)) // status check gather
				}
				if level[dst] == graph.Unreached {
					level[dst] = depth
					next = append(next, dst)
					if int64(dst)%8 == 0 {
						b.write(gs.valuePage(dst))
					}
				}
			}
		}
		frontier = next
	}
	return b.out
}

// SSSPWorkload relaxes frontiers over several Bellman-Ford rounds: edge
// pages are rescanned in later rounds, pushing reuse distances into the
// Tier-3 range while keeping reuse high (Table 2: ≈80%, 97% Tier-3).
type SSSPWorkload struct {
	gs        *GraphSet
	Source    int32
	MaxRounds int
	// Barriers emits a kernel-wide barrier between relaxation rounds.
	Barriers bool
}

// NewSSSP builds the SSSP workload over gs.
func NewSSSP(gs *GraphSet) *SSSPWorkload {
	return &SSSPWorkload{gs: gs, MaxRounds: 6}
}

// Name implements Workload.
func (w *SSSPWorkload) Name() string { return "SSSP" }

// Pages implements Workload.
func (w *SSSPWorkload) Pages() int64 { return w.gs.Pages() }

// Trace implements Workload.
func (w *SSSPWorkload) Trace() []gpu.Access {
	gs := w.gs
	gs.build()
	c := gs.csr
	b := &traceBuilder{}
	const inf = int64(1) << 62
	dist := make([]int64, c.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[w.Source] = 0
	frontier := []int32{w.Source}
	inFrontier := make([]bool, c.N)
	for round := 0; round < w.MaxRounds && len(frontier) > 0; round++ {
		if w.Barriers && round > 0 {
			b.barrier()
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		offs := coalescer{b: b, last: -1}
		edges := coalescer{b: b, last: -1}
		var next []int32
		for _, v := range frontier {
			inFrontier[v] = false
			offs.read(gs.offsetPage(v))
			off := c.Offsets[v]
			deg := c.Degree(v)
			for i := int64(0); i < deg; i++ {
				edges.read(gs.edgePage(off + i))
				dst := c.Dst[off+i]
				if (off+i)%gatherStride == 0 {
					b.read(gs.valuePage(dst))
				}
				if nd := dist[v] + int64(c.Weight[off+i]); nd < dist[dst] {
					dist[dst] = nd
					if !inFrontier[dst] {
						inFrontier[dst] = true
						next = append(next, dst)
						if int64(dst)%8 == 0 {
							b.write(gs.valuePage(dst))
						}
					}
				}
			}
		}
		frontier = next
	}
	return b.out
}

// ZipfStream is the §2.3 microbenchmark: warps draw page addresses from
// a zipf distribution whose skew controls how many distinct pages a
// transfer batch contains (Figure 6b's x-axis).
type ZipfStream struct {
	weightsCDF []float64
	rng        *rand.Rand
	pages      int64
	remaining  int64
	write      bool
}

// NewZipfStream draws n accesses over the given page count with the
// given skew (0 = uniform, 1 = strongly skewed).
func NewZipfStream(pages int64, skew float64, n int64, seed int64) *ZipfStream {
	z := &ZipfStream{
		rng:       rand.New(rand.NewSource(seed)),
		pages:     pages,
		remaining: n,
	}
	z.weightsCDF = make([]float64, pages)
	sum := 0.0
	for i := int64(0); i < pages; i++ {
		sum += 1.0 / math.Pow(float64(i+1), skew)
		z.weightsCDF[i] = sum
	}
	for i := range z.weightsCDF {
		z.weightsCDF[i] /= sum
	}
	return z
}

// Next implements gpu.Stream.
func (z *ZipfStream) Next() (gpu.Access, bool) {
	if z.remaining <= 0 {
		return gpu.Access{}, false
	}
	z.remaining--
	r := z.rng.Float64()
	lo, hi := 0, len(z.weightsCDF)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.weightsCDF[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return gpu.Access{Page: tier.PageID(lo)}, true
}
