package workload

import (
	"testing"

	"github.com/gmtsim/gmt/internal/tier"
)

func TestStridedCoversAllPages(t *testing.T) {
	// Stride 7 is coprime with 100: one round touches every page once.
	w := NewStrided(100, 7, 1)
	seen := map[tier.PageID]int{}
	for _, a := range w.Trace() {
		seen[a.Page]++
	}
	if len(seen) != 100 {
		t.Fatalf("covered %d pages, want 100", len(seen))
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("page %d touched %d times", p, n)
		}
	}
}

func TestStridedRoundsRepeat(t *testing.T) {
	w := NewStrided(50, 1, 3)
	tr := w.Trace()
	if len(tr) != 150 {
		t.Fatalf("trace len = %d", len(tr))
	}
	for i := 0; i < 50; i++ {
		if tr[i] != tr[i+50] || tr[i] != tr[i+100] {
			t.Fatal("rounds differ")
		}
	}
}

func TestUniformRandomProperties(t *testing.T) {
	w := NewUniformRandom(64, 10_000, 0.25, 9)
	tr := w.Trace()
	writes := 0
	for _, a := range tr {
		if int64(a.Page) < 0 || int64(a.Page) >= 64 {
			t.Fatalf("page %d out of range", a.Page)
		}
		if a.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(len(tr))
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("write fraction = %.2f, want ≈0.25", frac)
	}
	// Deterministic for a seed; different for another.
	same := NewUniformRandom(64, 10_000, 0.25, 9).Trace()
	for i := range tr {
		if tr[i] != same[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPointerChaseSingleCycle(t *testing.T) {
	w := NewPointerChase(128, 1, 5)
	tr := w.Trace()
	if len(tr) != 128 {
		t.Fatalf("trace len = %d", len(tr))
	}
	seen := map[tier.PageID]bool{}
	for _, a := range tr {
		if seen[a.Page] {
			t.Fatalf("page %d revisited within one round: not a single cycle", a.Page)
		}
		seen[a.Page] = true
	}
	if len(seen) != 128 {
		t.Fatalf("cycle covered %d pages", len(seen))
	}
}

func TestPointerChasePeriodicReuse(t *testing.T) {
	// Two rounds: every page's reuse distance is exactly the cycle
	// length minus one (all other pages in between).
	s := Scale{Tier1Pages: 32, Tier2Pages: 128, Oversubscription: 2}
	w := NewPointerChase(200, 3, 7)
	a := Analyze(w.Name(), w.Trace(), s, 64*1024, 100)
	_, medium, long := a.PairFractions()
	// Cycle length 200 > T1+T2 (160): all reuse is Long.
	if long < 0.99 {
		t.Fatalf("pointer-chase reuse not Long-classified: med=%.2f long=%.2f", medium, long)
	}
	if a.ReusePct() < 0.99 {
		t.Fatalf("reuse%% = %.2f, want ≈1.0", a.ReusePct())
	}
}

func TestSyntheticValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"strided": func() { NewStrided(0, 1, 1) },
		"random":  func() { NewUniformRandom(1, 0, 0, 1) },
		"chase":   func() { NewPointerChase(1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad params did not panic", name)
				}
			}()
			fn()
		}()
	}
}
