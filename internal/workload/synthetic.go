package workload

import (
	"math/rand"

	"github.com/gmtsim/gmt/internal/gpu"
)

// Synthetic workloads for library users and microbenchmarks: unlike the
// nine Table-2 applications these are parameterized directly, not sized
// against a Scale.

// Strided sweeps its pages repeatedly at a fixed stride — the classic
// regular pattern whose reuse distance equals its footprint.
type Strided struct {
	NumPages int64
	Stride   int64
	Rounds   int
}

// NewStrided returns a strided scan workload.
func NewStrided(pages, stride int64, rounds int) *Strided {
	if pages < 1 || stride < 1 || rounds < 1 {
		panic("workload: strided parameters must be positive")
	}
	return &Strided{NumPages: pages, Stride: stride, Rounds: rounds}
}

// Name implements Workload.
func (s *Strided) Name() string { return "Strided" }

// Pages implements Workload.
func (s *Strided) Pages() int64 { return s.NumPages }

// Trace implements Workload: each round visits every page once, in
// stride order (stride coprime with the page count visits all pages;
// otherwise the orbit of page 0).
func (s *Strided) Trace() []gpu.Access {
	var b traceBuilder
	for r := 0; r < s.Rounds; r++ {
		p := int64(0)
		for i := int64(0); i < s.NumPages; i++ {
			b.read(p)
			p = (p + s.Stride) % s.NumPages
		}
	}
	return b.out
}

// UniformRandom draws page IDs uniformly — the adversarial pattern for
// any predictor (no exploitable reuse structure).
type UniformRandom struct {
	NumPages  int64
	NAccesses int64
	WriteFrac float64
	Seed      int64
}

// NewUniformRandom returns a uniform random workload.
func NewUniformRandom(pages, accesses int64, writeFrac float64, seed int64) *UniformRandom {
	if pages < 1 || accesses < 1 {
		panic("workload: random parameters must be positive")
	}
	return &UniformRandom{NumPages: pages, NAccesses: accesses, WriteFrac: writeFrac, Seed: seed}
}

// Name implements Workload.
func (u *UniformRandom) Name() string { return "UniformRandom" }

// Pages implements Workload.
func (u *UniformRandom) Pages() int64 { return u.NumPages }

// Trace implements Workload.
func (u *UniformRandom) Trace() []gpu.Access {
	rng := rand.New(rand.NewSource(u.Seed))
	var b traceBuilder
	for i := int64(0); i < u.NAccesses; i++ {
		p := rng.Int63n(u.NumPages)
		if rng.Float64() < u.WriteFrac {
			b.write(p)
		} else {
			b.read(p)
		}
	}
	return b.out
}

// PointerChase walks a random single-cycle permutation of its pages —
// fully data-dependent (each access determines the next), the pattern
// that defeats prefetchers but has perfectly periodic reuse.
type PointerChase struct {
	NumPages int64
	Rounds   int
	Seed     int64
}

// NewPointerChase returns a pointer-chase workload.
func NewPointerChase(pages int64, rounds int, seed int64) *PointerChase {
	if pages < 1 || rounds < 1 {
		panic("workload: pointer-chase parameters must be positive")
	}
	return &PointerChase{NumPages: pages, Rounds: rounds, Seed: seed}
}

// Name implements Workload.
func (p *PointerChase) Name() string { return "PointerChase" }

// Pages implements Workload.
func (p *PointerChase) Pages() int64 { return p.NumPages }

// Trace implements Workload: a Sattolo-shuffled successor table gives a
// single cycle covering every page; each round chases the full cycle.
func (p *PointerChase) Trace() []gpu.Access {
	rng := rand.New(rand.NewSource(p.Seed))
	perm := make([]int64, p.NumPages)
	for i := range perm {
		perm[i] = int64(i)
	}
	// Sattolo's algorithm: a uniformly random single-cycle permutation.
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]int64, p.NumPages)
	for i := range perm {
		next[i] = perm[i]
	}
	var b traceBuilder
	cur := int64(0)
	for r := 0; r < p.Rounds; r++ {
		for i := int64(0); i < p.NumPages; i++ {
			b.read(cur)
			cur = next[cur]
		}
	}
	return b.out
}

var (
	_ Workload = (*Strided)(nil)
	_ Workload = (*UniformRandom)(nil)
	_ Workload = (*PointerChase)(nil)
)
