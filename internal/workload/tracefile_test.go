package workload

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gmtsim/gmt/internal/gpu"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := []gpu.Access{
		{Page: 0}, {Page: 5, Write: true}, {Page: 1 << 40}, {Page: 3},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("len = %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], orig[i])
		}
	}
}

func TestTraceRoundTripWorkload(t *testing.T) {
	w := NewPathfinder(Scale{Tier1Pages: 64, Tier2Pages: 256, Oversubscription: 2})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, w.Trace()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Trace()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := map[string]string{
		"no header":    "R 1\n",
		"bad op":       "# gmt-trace v1\nX 1\n",
		"bad page":     "# gmt-trace v1\nR abc\n",
		"neg page":     "# gmt-trace v1\nR -4\n",
		"wrong fields": "# gmt-trace v1\nR 1 2\n",
		"empty":        "",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestReadTraceUnsupportedVersion is the misleading-error regression:
// a "# gmt-trace v2" header used to be swallowed as a comment, and the
// parser then failed at the first data line with "missing header".
func TestReadTraceUnsupportedVersion(t *testing.T) {
	for _, in := range []string{
		"# gmt-trace v2\nR 1\n",
		"#gmt-trace v3\n",
		"# gmt-trace\nR 1\n",
	} {
		_, err := ReadTrace(strings.NewReader(in))
		if err == nil {
			t.Fatalf("%q: no error", in)
		}
		if !strings.Contains(err.Error(), "unsupported trace version") {
			t.Fatalf("%q: error %q does not name the unsupported version", in, err)
		}
		if !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("%q: error %q lacks line context", in, err)
		}
	}
	// The v1 header must keep being accepted, space or not.
	if _, err := ReadTrace(strings.NewReader("#gmt-trace v1\nR 1\n")); err != nil {
		t.Fatalf("compact v1 header rejected: %v", err)
	}
}

// TestReadTraceScannerErrorContext is the bare-bufio-error regression: a
// line beyond the scanner's 1 MiB buffer used to surface as a naked
// "token too long" with no position.
func TestReadTraceScannerErrorContext(t *testing.T) {
	in := "# gmt-trace v1\nR 1\nR " + strings.Repeat("9", 2<<20) + "\n"
	_, err := ReadTrace(strings.NewReader(in))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q lacks the failing line number", err)
	}
	if !strings.Contains(err.Error(), "token too long") {
		t.Fatalf("error %q hides the underlying scanner error", err)
	}
}

func TestReadTraceTolerance(t *testing.T) {
	in := "# gmt-trace v1\n\n# comment\n  r 7  \nw 9\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (gpu.Access{Page: 7}) || got[1] != (gpu.Access{Page: 9, Write: true}) {
		t.Fatalf("got %+v", got)
	}
}

func TestFileWorkload(t *testing.T) {
	fw := &FileWorkload{
		TraceName: "custom",
		Accesses:  []gpu.Access{{Page: 2}, {Page: 9, Write: true}},
	}
	if fw.Name() != "custom" || fw.Pages() != 10 {
		t.Fatalf("name=%q pages=%d", fw.Name(), fw.Pages())
	}
	tr := fw.Trace()
	tr[0].Page = 99 // callers may mutate their copy
	if fw.Accesses[0].Page != 2 {
		t.Fatal("Trace did not copy")
	}
}
