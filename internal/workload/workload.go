// Package workload generates the coalesced page-access traces of the
// nine applications the paper evaluates (Table 2): six regular Rodinia /
// BaM kernels and three data-dependent graph workloads over a GAP-Kron
// style Kronecker graph.
//
// Traces are algorithm-driven: each generator walks the actual loop nest
// of its application over a dataset sized relative to the memory tiers,
// so reuse percentages and Remaining-Reuse-Distance distributions are
// emergent rather than hard-coded. The paper's absolute capacities
// (Tier-1 16 GB, Tier-2 64 GB, datasets up to terabytes) are scaled down
// uniformly; every placement decision GMT makes depends only on the
// ratios (oversubscription factor, Tier-2:Tier-1), which scaling
// preserves.
package workload

import (
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/tier"
)

// Scale ties workload sizes to the memory hierarchy under test.
type Scale struct {
	// Tier1Pages and Tier2Pages are the capacities of GPU and host
	// memory in 64 KiB pages.
	Tier1Pages int
	Tier2Pages int
	// Oversubscription is the working set size as a multiple of
	// Tier1Pages+Tier2Pages (the paper's footnote 2; default 2).
	Oversubscription float64
	// DatasetSeed seeds dataset synthesis: the Kronecker graph shared
	// by the graph applications and the KV-serving request mix. Zero
	// means the historical default (42), so the zero value reproduces
	// every previously generated dataset bit-for-bit. Experiment
	// fingerprints include it, so varying the seed cannot alias
	// memoized results.
	DatasetSeed int64
}

// DefaultScale is the paper's default configuration (Tier-2 = 4x Tier-1,
// oversubscription 2) at 1/256 of the paper's capacities: Tier-1 16 GB ->
// 1024 pages.
func DefaultScale() Scale {
	return Scale{Tier1Pages: 1024, Tier2Pages: 4096, Oversubscription: 2}
}

// CombinedPages reports Tier1+Tier2 capacity.
func (s Scale) CombinedPages() int { return s.Tier1Pages + s.Tier2Pages }

// WorkingSetPages reports the target dataset footprint.
func (s Scale) WorkingSetPages() int {
	return int(s.Oversubscription * float64(s.CombinedPages()))
}

// datasetSeed resolves the effective dataset seed (zero -> 42).
func (s Scale) datasetSeed() int64 {
	if s.DatasetSeed == 0 {
		return 42
	}
	return s.DatasetSeed
}

// Workload produces a deterministic access trace over its dataset's
// pages (page IDs in [0, Pages())).
type Workload interface {
	Name() string
	// Pages reports the dataset footprint in 64 KiB pages.
	Pages() int64
	// Trace generates the full coalesced access trace. Generators are
	// deterministic: repeated calls return equal traces.
	Trace() []gpu.Access
}

// Stream wraps a workload trace as a gpu.Stream.
func Stream(w Workload) gpu.Stream {
	return &gpu.SliceStream{Trace: w.Trace()}
}

// Names of the nine applications, in the paper's Table 2 order.
var Names = []string{
	"LavaMD", "Pathfinder", "BFS", "MultiVectorAdd", "Srad",
	"Backprop", "PageRank", "SSSP", "Hotspot",
}

// All builds the full nine-application suite at the given scale. The
// graph applications share one generated Kronecker graph.
func All(s Scale) []Workload {
	gs := NewGraphSet(s, s.datasetSeed())
	return []Workload{
		NewLavaMD(s),
		NewPathfinder(s),
		NewBFS(gs),
		NewMultiVectorAdd(s),
		NewSrad(s),
		NewBackprop(s),
		NewPageRank(gs),
		NewSSSP(gs),
		NewHotspot(s),
	}
}

// Regular builds only the six non-graph applications (used by the paper's
// Figure 13 experiment).
func Regular(s Scale) []Workload {
	return []Workload{
		NewLavaMD(s),
		NewPathfinder(s),
		NewMultiVectorAdd(s),
		NewSrad(s),
		NewBackprop(s),
		NewHotspot(s),
	}
}

// trace builder shared by the generators.
type traceBuilder struct {
	out []gpu.Access
}

func (b *traceBuilder) read(p int64) { b.out = append(b.out, gpu.Access{Page: tier.PageID(p)}) }
func (b *traceBuilder) write(p int64) {
	b.out = append(b.out, gpu.Access{Page: tier.PageID(p), Write: true})
}
func (b *traceBuilder) barrier() { b.out = append(b.out, gpu.Barrier) }
