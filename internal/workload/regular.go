package workload

import "github.com/gmtsim/gmt/internal/gpu"

// MultiVectorAdd is BaM's linear-algebra kernel: K input vectors are
// accumulated into one output vector over K passes, so output pages are
// re-referenced once per pass at a near-constant reuse distance (the
// paper's Figure 4b) that lands in the Tier-2 range. Reuse percentage ≈
// the output's share of the footprint (Table 2: 40%).
type MultiVectorAdd struct {
	OutPages int64
	InPages  int64 // per input vector
	K        int
}

// NewMultiVectorAdd sizes the kernel against s: only the output vector
// is reused, and its pass-to-pass reuse distance (output + one input ≈
// 1.07x Tier-1+Tier-2 at the default oversubscription) slightly exceeds
// the combined capacity — the regime §3.3 describes for MultiVectorAdd,
// where recency-ordered tiering ("the usual problem of FIFO or LRU for
// cases where the working sets become exceedingly large") gets no
// cross-pass hits, while GMT-Reuse both sees a sub-capacity RRD at
// eviction time (the page has already aged through Tier-1) and retains
// its Tier-2 residents instead of churning them.
func NewMultiVectorAdd(s Scale) *MultiVectorAdd {
	w := int64(s.WorkingSetPages())
	return &MultiVectorAdd{OutPages: w * 3 / 10, InPages: w * 7 / 30, K: 3}
}

// Name implements Workload.
func (m *MultiVectorAdd) Name() string { return "MultiVectorAdd" }

// Pages implements Workload.
func (m *MultiVectorAdd) Pages() int64 { return m.OutPages + int64(m.K)*m.InPages }

// Trace implements Workload. Layout: [out][in_0][in_1]...[in_K-1]. Each
// pass scans the input monotonically (scaled to the output index), so
// inputs are read exactly once.
func (m *MultiVectorAdd) Trace() []gpu.Access {
	var b traceBuilder
	for k := 0; k < m.K; k++ {
		inBase := m.OutPages + int64(k)*m.InPages
		lastIn := int64(-1)
		for i := int64(0); i < m.OutPages; i++ {
			// Consecutive iterations that land on the same input page
			// coalesce into one access.
			if in := i * m.InPages / m.OutPages; in != lastIn {
				lastIn = in
				b.read(inBase + in)
			}
			b.write(i) // out[i] += in_k[i]
		}
	}
	return b.out
}

// Pathfinder is Rodinia's dynamic-programming kernel: each row of the
// cost matrix is computed from the previous row while streaming the wall
// data. Result pages are re-read one row later (reuse distance ≈ one
// row, well inside Tier-1), and the wall is read once, giving low reuse
// with a strong Tier-1 bias (Table 2: ≈19%, §3.3).
type Pathfinder struct {
	Rows           int64
	WallRowPages   int64
	ResultRowPages int64
}

// NewPathfinder sizes the grid against s with an 8:2 wall:result ratio
// per row (reuse ≈ 20%).
func NewPathfinder(s Scale) *Pathfinder {
	w := int64(s.WorkingSetPages())
	return &Pathfinder{Rows: w / 10, WallRowPages: 8, ResultRowPages: 2}
}

// Name implements Workload.
func (p *Pathfinder) Name() string { return "Pathfinder" }

// Pages implements Workload.
func (p *Pathfinder) Pages() int64 {
	return p.Rows * (p.WallRowPages + p.ResultRowPages)
}

// Trace implements Workload. Layout: [wall rows][result rows].
func (p *Pathfinder) Trace() []gpu.Access {
	var b traceBuilder
	resultBase := p.Rows * p.WallRowPages
	for r := int64(0); r < p.Rows; r++ {
		for c := int64(0); c < p.WallRowPages; c++ {
			b.read(r*p.WallRowPages + c)
		}
		for c := int64(0); c < p.ResultRowPages; c++ {
			if r > 0 {
				b.read(resultBase + (r-1)*p.ResultRowPages + c)
			}
			b.write(resultBase + r*p.ResultRowPages + c)
		}
	}
	return b.out
}

// LavaMD is Rodinia's particle simulation: each box streams its bulk
// particle data once and re-reads a small boundary page of the previous
// box, giving the suite's lowest reuse (Table 2: ≈1.2%) at distances far
// inside Tier-1 — a workload where the host tier cannot help.
type LavaMD struct {
	Boxes        int64
	BulkPages    int64 // per box, read once
	boundaryHops int64
}

// NewLavaMD sizes boxes so one reusable page accompanies 84 streamed
// pages (reuse ≈ 1/85 ≈ 1.18%).
func NewLavaMD(s Scale) *LavaMD {
	const bulk = 84
	w := int64(s.WorkingSetPages())
	return &LavaMD{Boxes: w / (bulk + 1), BulkPages: bulk, boundaryHops: 1}
}

// Name implements Workload.
func (l *LavaMD) Name() string { return "LavaMD" }

// Pages implements Workload.
func (l *LavaMD) Pages() int64 { return l.Boxes * (l.BulkPages + 1) }

// Trace implements Workload. Per box: bulk pages stream, then the
// previous box's boundary page is re-read (neighbor access).
func (l *LavaMD) Trace() []gpu.Access {
	var b traceBuilder
	stride := l.BulkPages + 1
	for box := int64(0); box < l.Boxes; box++ {
		base := box * stride
		for i := int64(0); i <= l.BulkPages; i++ {
			b.read(base + i)
		}
		if box > 0 {
			// Neighbor force contribution: previous box's boundary page.
			b.read((box - 1) * stride)
		}
	}
	return b.out
}

// Srad is Rodinia's image diffusion kernel processed in tiles: several
// stencil iterations per tile, each page touched as itself and as its
// neighbors' north/south within an iteration, and again one full tile
// later across iterations. The cross-iteration distance (≈0.75 of
// Tier-1+Tier-2) is what fills the host tier (Table 2: reuse ≈83%,
// strong Tier-2 bias; the paper's biggest GMT-Reuse wins alongside
// Backprop).
type Srad struct {
	TilePages int64
	AuxPages  int64 // read-once coefficients
	OncePages int64 // read-once input stream filling the working set
	Iters     int
	RowPages  int64
	// Barriers emits a kernel-wide barrier between iterations (the
	// kernel-launch boundaries of the real application).
	Barriers bool
}

// NewSrad sizes the iterated image at 1.05x the combined Tier-1+Tier-2
// capacity: the cross-iteration reuse distance exceeds what a
// recency-ordered exclusive hierarchy can hold (TierOrder gets no
// cross-iteration hits), while the Remaining RD observed at Tier-1
// eviction — the full distance minus the page's aging through Tier-1 —
// is sub-capacity, so GMT-Reuse classifies it Medium and its no-evict
// Tier-2 retains a stable, repeatedly-hit subset. Read-once regions fill
// the footprint to the oversubscription target.
func NewSrad(s Scale) *Srad {
	c := int64(s.CombinedPages())
	tile := c * 21 / 20
	aux := tile / 5
	w := int64(s.WorkingSetPages())
	once := w - tile - aux
	if once < 0 {
		once = 0
	}
	return &Srad{TilePages: tile, AuxPages: aux, OncePages: once, Iters: 4, RowPages: 16}
}

// Name implements Workload.
func (s *Srad) Name() string { return "Srad" }

// Pages implements Workload.
func (s *Srad) Pages() int64 { return s.TilePages + s.AuxPages + s.OncePages }

// Trace implements Workload. Layout: [once][aux][grid].
func (s *Srad) Trace() []gpu.Access {
	var b traceBuilder
	for p := int64(0); p < s.OncePages; p++ {
		b.read(p)
	}
	auxBase := s.OncePages
	for a := int64(0); a < s.AuxPages; a++ {
		b.read(auxBase + a)
	}
	base := s.OncePages + s.AuxPages
	for it := 0; it < s.Iters; it++ {
		if s.Barriers && it > 0 {
			b.barrier()
		}
		for p := int64(0); p < s.TilePages; p++ {
			if p >= s.RowPages {
				b.read(base + p - s.RowPages) // north
			}
			if p+s.RowPages < s.TilePages {
				b.read(base + p + s.RowPages) // south
			}
			b.write(base + p) // center
		}
	}
	return b.out
}

// Backprop is Rodinia's neural-network trainer: forward pass through the
// weight layers, then backward propagation in reverse, repeated per
// epoch. A middle-heavy layer structure puts both reuse intervals of the
// bulk of the weights (suffix on the forward->backward turn, prefix on
// backward->forward) in the Tier-2 range, and many epochs give the
// suite's largest total I/O (Table 2: 6.8 TB, reuse ≈94%).
type Backprop struct {
	LayerPages []int64
	OncePages  int64 // input data touched only in the first epoch
	Epochs     int
	// Barriers emits a kernel-wide barrier at the forward/backward
	// turn and between epochs.
	Barriers bool
}

// NewBackprop sizes three layers at 15/70/15% of the weights plus a 6%
// read-once region.
func NewBackprop(s Scale) *Backprop {
	w := int64(s.WorkingSetPages())
	once := w * 6 / 100
	weights := w - once
	return &Backprop{
		LayerPages: []int64{weights * 15 / 100, weights * 70 / 100, weights * 15 / 100},
		OncePages:  once,
		Epochs:     12,
	}
}

// Name implements Workload.
func (bp *Backprop) Name() string { return "Backprop" }

// Pages implements Workload.
func (bp *Backprop) Pages() int64 {
	total := bp.OncePages
	for _, l := range bp.LayerPages {
		total += l
	}
	return total
}

// Trace implements Workload. Layout: [once][layer0][layer1][layer2].
func (bp *Backprop) Trace() []gpu.Access {
	var b traceBuilder
	layerBase := make([]int64, len(bp.LayerPages))
	base := bp.OncePages
	for i, l := range bp.LayerPages {
		layerBase[i] = base
		base += l
	}
	for e := 0; e < bp.Epochs; e++ {
		if bp.Barriers && e > 0 {
			b.barrier()
		}
		if e == 0 {
			for p := int64(0); p < bp.OncePages; p++ {
				b.read(p)
			}
		}
		// Forward.
		for i := range bp.LayerPages {
			for p := int64(0); p < bp.LayerPages[i]; p++ {
				b.read(layerBase[i] + p)
			}
		}
		if bp.Barriers {
			b.barrier()
		}
		// Backward: weight update.
		for i := len(bp.LayerPages) - 1; i >= 0; i-- {
			for p := bp.LayerPages[i] - 1; p >= 0; p-- {
				b.write(layerBase[i] + p)
			}
		}
	}
	return b.out
}

// Hotspot is Rodinia's thermal simulation: every iteration sweeps the
// full temperature and power grids, whose footprint exceeds
// Tier-1+Tier-2, so every remaining reuse distance is in the Tier-3
// range (Figure 7: 100% Tier-3 bias). This is the workload where §2.2's
// backfill heuristic turns a "nothing should go to Tier-2" prediction
// into a 73% I/O reduction.
type Hotspot struct {
	GridPages int64 // temperature grid
	OncePages int64 // initial conditions read once
	Iters     int
	RowPages  int64
	// Barriers emits a kernel-wide barrier between iterations.
	Barriers bool
}

// NewHotspot sizes the iterated grids at 81% of the working set (reuse ≈
// 81%) with the remainder read once.
func NewHotspot(s Scale) *Hotspot {
	w := int64(s.WorkingSetPages())
	grid := w * 81 / 100
	return &Hotspot{GridPages: grid, OncePages: w - grid, Iters: 10, RowPages: 16}
}

// Name implements Workload.
func (h *Hotspot) Name() string { return "Hotspot" }

// Pages implements Workload.
func (h *Hotspot) Pages() int64 { return h.GridPages + h.OncePages }

// Trace implements Workload. Layout: [once][grid] where grid interleaves
// temperature (even offsets) and power (odd offsets) conceptually; at
// page granularity we sweep it with a north/south stencil.
func (h *Hotspot) Trace() []gpu.Access {
	var b traceBuilder
	gridBase := h.OncePages
	for p := int64(0); p < h.OncePages; p++ {
		b.read(p)
	}
	for it := 0; it < h.Iters; it++ {
		if h.Barriers && it > 0 {
			b.barrier()
		}
		for p := int64(0); p < h.GridPages; p++ {
			if p >= h.RowPages {
				b.read(gridBase + p - h.RowPages)
			}
			b.write(gridBase + p)
		}
	}
	return b.out
}
