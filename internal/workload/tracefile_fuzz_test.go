package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace drives the trace parser with arbitrary input: it must
// never panic, and anything it accepts must round-trip.
func FuzzReadTrace(f *testing.F) {
	f.Add("# gmt-trace v1\nR 1\nW 2\n")
	f.Add("# gmt-trace v1\n\n# c\n r 7 \n")
	f.Add("R 1\n")
	f.Add("# gmt-trace v1\nX yz\n")
	f.Add("")
	f.Add("# gmt-trace v2\nR 1\n")
	f.Add("#gmt-trace v1\nW 3\n")
	f.Add("# gmt-trace\n")
	f.Add("# gmt-trace v1\n# gmt-trace v1\nR 1\n")
	f.Add("# gmt-trace v1\nR " + strings.Repeat("1", 4096) + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		trace, err := ReadTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, trace); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(trace) {
			t.Fatalf("round trip changed length: %d -> %d", len(trace), len(again))
		}
		for i := range trace {
			if trace[i] != again[i] {
				t.Fatalf("round trip changed access %d", i)
			}
		}
	})
}
