package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
)

// metrics is the serving-layer instrumentation, guarded by Server.mu.
// Rendering is hand-rolled Prometheus text exposition (the repo is
// stdlib-only); series are written in a fixed order so /metrics output
// is deterministic.
type metrics struct {
	submitted        int64
	done             int64
	failed           int64
	rejectedFull     int64
	rejectedDraining int64
	cacheHits        int64
	cacheMisses      int64
	joins            int64
	simRuns          int64 // standalone sim-kind executions

	// ewma tracks recent job latency (ns) for Retry-After estimates;
	// coldNS is the configured estimate served before the first sample
	// (Options.ColdStartLatency).
	ewma    float64
	coldNS  float64
	samples int64

	hist histogram
}

// observe records one completed job's latency (seconds).
func (m *metrics) observe(seconds float64) {
	ns := seconds * 1e9
	if m.samples == 0 {
		m.ewma = ns
	} else {
		m.ewma = 0.8*m.ewma + 0.2*ns
	}
	m.samples++
	m.hist.observe(seconds)
}

// ewmaNS reports the smoothed per-job latency in nanoseconds. Before
// any job has completed it reports the configured cold-start estimate,
// so Retry-After under a cold full queue reflects the real backlog
// instead of collapsing to the 1-second floor.
func (m *metrics) ewmaNS() float64 {
	if m.samples == 0 {
		return m.coldNS
	}
	return m.ewma
}

// histogram is a fixed-bucket Prometheus histogram of job latency in
// seconds.
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []int64   // len(bounds)+1, cumulative rendering happens at write time
	sum    float64
	count  int64
}

func newHistogram() histogram {
	return histogram{
		bounds: []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 10, 60},
		counts: make([]int64, 9),
	}
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// handleMetrics is GET /metrics: Prometheus text exposition format.
// The body is rendered into a buffer under the server lock (the
// histogram's slices must not be read while a worker observes into
// them), then written out.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sims := s.simulationsTotal()
	var buf bytes.Buffer
	s.mu.Lock()
	m := &s.met
	queued := len(s.queue)
	inflight := s.inflight
	cached := len(s.doneOrder)

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("gmtd_queue_depth", "Admitted jobs waiting for a worker.", int64(queued))
	gauge("gmtd_jobs_inflight", "Jobs currently executing.", int64(inflight))
	gauge("gmtd_cache_entries", "Finished jobs retained as the result cache.", int64(cached))
	counter("gmtd_jobs_submitted_total", "Submissions received, including rejected ones.", m.submitted)
	counter("gmtd_jobs_done_total", "Jobs completed successfully.", m.done)
	counter("gmtd_jobs_failed_total", "Jobs that finished with an error.", m.failed)
	fmt.Fprintf(&buf, "# HELP gmtd_jobs_rejected_total Submissions turned away at admission.\n")
	fmt.Fprintf(&buf, "# TYPE gmtd_jobs_rejected_total counter\n")
	fmt.Fprintf(&buf, "gmtd_jobs_rejected_total{reason=\"queue_full\"} %d\n", m.rejectedFull)
	fmt.Fprintf(&buf, "gmtd_jobs_rejected_total{reason=\"draining\"} %d\n", m.rejectedDraining)
	counter("gmtd_cache_hits_total", "Submissions served from the result cache.", m.cacheHits)
	counter("gmtd_cache_misses_total", "Submissions that started a new execution.", m.cacheMisses)
	counter("gmtd_singleflight_joins_total", "Submissions collapsed onto an identical in-flight job.", m.joins)
	counter("gmtd_simulations_total", "Simulations executed across all suites and sim jobs.", sims)

	fmt.Fprintf(&buf, "# HELP gmtd_job_duration_seconds Job execution latency.\n")
	fmt.Fprintf(&buf, "# TYPE gmtd_job_duration_seconds histogram\n")
	cum := int64(0)
	for i, b := range m.hist.bounds {
		cum += m.hist.counts[i]
		fmt.Fprintf(&buf, "gmtd_job_duration_seconds_bucket{le=\"%s\"} %d\n",
			strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += m.hist.counts[len(m.hist.bounds)]
	fmt.Fprintf(&buf, "gmtd_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&buf, "gmtd_job_duration_seconds_sum %g\n", m.hist.sum)
	fmt.Fprintf(&buf, "gmtd_job_duration_seconds_count %d\n", m.hist.count)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write(buf.Bytes())
}
