package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gmtsim/gmt/internal/exp"
	"github.com/gmtsim/gmt/internal/fleet"
	"github.com/gmtsim/gmt/internal/workload"
)

// post submits a request body and returns the recorded response.
func post(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decodeStatus(t *testing.T, rec *httptest.ResponseRecorder) JobStatus {
	t.Helper()
	var v JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return v
}

// waitStatus polls a job until it reaches want (or the deadline).
func waitStatus(t *testing.T, s *Server, id string, want Status) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := get(t, s, "/v1/jobs/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("poll %s: %d %s", id, rec.Code, rec.Body.String())
		}
		v := decodeStatus(t, rec)
		if v.Status == want {
			return v
		}
		if v.Status == StatusFailed && want != StatusFailed {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return JobStatus{}
}

// metricValue extracts one series' value from /metrics.
func metricValue(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(rec.Body.String())
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, rec.Body.String())
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatalf("parsing %s value %q: %v", name, m[1], err)
	}
	return v
}

// expBody builds an experiment submission for distinct-keyed jobs.
func expBody(name string) string {
	return fmt.Sprintf(`{"kind":"experiment","experiment":{"name":%q,"quick":true}}`, name)
}

// blockingServer replaces the executor with one that signals start and
// blocks until released, so tests control worker occupancy exactly.
func blockingServer(t *testing.T, opts Options) (*Server, chan string, chan struct{}) {
	t.Helper()
	s := New(opts)
	started := make(chan string, 64)
	release := make(chan struct{})
	s.exec = func(j *job) ([]byte, error) {
		started <- j.id
		<-release
		return []byte("{}\n"), nil
	}
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		s.Drain()
	})
	return s, started, release
}

func TestQueueFullRejectsWith429RetryAfter(t *testing.T) {
	s, started, release := blockingServer(t, Options{Workers: 1, QueueDepth: 1})

	// First job occupies the lone worker...
	rec := post(t, s, expBody("fig8"))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit 1: %d %s", rec.Code, rec.Body.String())
	}
	<-started
	// ...second fills the queue...
	if rec := post(t, s, expBody("fig9")); rec.Code != http.StatusAccepted {
		t.Fatalf("submit 2: %d %s", rec.Code, rec.Body.String())
	}
	// ...third must be turned away with backpressure advice.
	rec = post(t, s, expBody("fig10"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("submit 3: want 429, got %d %s", rec.Code, rec.Body.String())
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1,60]", rec.Header().Get("Retry-After"))
	}
	if got := metricValue(t, s, `gmtd_jobs_rejected_total{reason="queue_full"}`); got != 1 {
		t.Fatalf("rejected_total{queue_full} = %d, want 1", got)
	}
	close(release)
}

// Regression: before any job has completed the latency EWMA is empty,
// and Retry-After used to collapse to the 1-second floor no matter how
// full the queue was — a synchronized stampede invitation. The estimate
// must instead be seeded from Options.ColdStartLatency.
func TestColdStartRetryAfterNotFloor(t *testing.T) {
	s, started, release := blockingServer(t,
		Options{Workers: 1, QueueDepth: 1, ColdStartLatency: 10 * time.Second})

	if rec := post(t, s, expBody("fig8")); rec.Code != http.StatusAccepted {
		t.Fatalf("submit 1: %d %s", rec.Code, rec.Body.String())
	}
	<-started
	if rec := post(t, s, expBody("fig9")); rec.Code != http.StatusAccepted {
		t.Fatalf("submit 2: %d %s", rec.Code, rec.Body.String())
	}
	rec := post(t, s, expBody("fig10"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("submit 3: want 429, got %d %s", rec.Code, rec.Body.String())
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After = %q, want an integer", rec.Header().Get("Retry-After"))
	}
	// Two pending jobs at the 10s cold estimate over one worker: ~20s.
	if ra != 20 {
		t.Fatalf("cold-start Retry-After = %d, want 20 (EWMA seeded from ColdStartLatency)", ra)
	}
	close(release)
}

func TestDrainCompletesInFlightAndRejectsNew(t *testing.T) {
	s, started, release := blockingServer(t, Options{Workers: 1, QueueDepth: 4})

	inflight := decodeStatus(t, post(t, s, expBody("fig8")))
	<-started
	queued := decodeStatus(t, post(t, s, expBody("fig9")))

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is rejected while draining...
	if rec := post(t, s, expBody("fig10")); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: want 503, got %d %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: want 503, got %d", rec.Code)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while a job was still executing")
	default:
	}

	// ...but admitted jobs — running and queued — run to completion.
	close(release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after jobs were released")
	}
	for _, id := range []string{inflight.ID, queued.ID} {
		v := decodeStatus(t, get(t, s, "/v1/jobs/"+id))
		if v.Status != StatusDone {
			t.Fatalf("job %s after drain: status %q, want done", id, v.Status)
		}
	}
}

func TestSingleflightCollapsesIdenticalInFlight(t *testing.T) {
	s, started, release := blockingServer(t, Options{Workers: 1, QueueDepth: 4})

	first := decodeStatus(t, post(t, s, expBody("fig8")))
	<-started
	rec := post(t, s, expBody("fig8"))
	if rec.Code != http.StatusOK {
		t.Fatalf("identical resubmit: want 200, got %d %s", rec.Code, rec.Body.String())
	}
	v := decodeStatus(t, rec)
	if !v.Cached || v.ID != first.ID {
		t.Fatalf("resubmit joined %+v, want cached view of %s", v, first.ID)
	}
	if got := metricValue(t, s, "gmtd_singleflight_joins_total"); got != 1 {
		t.Fatalf("joins_total = %d, want 1", got)
	}
	close(release)
}

func TestCacheHitServesWithoutResimulating(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	defer s.Drain()

	body := `{"kind":"sim","sim":{"app":"MultiVectorAdd","scale":{"Tier1Pages":64,"Tier2Pages":256,"Oversubscription":2}}}`
	rec := post(t, s, body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cold submit: %d %s", rec.Code, rec.Body.String())
	}
	cold := decodeStatus(t, rec)
	waitStatus(t, s, cold.ID, StatusDone)
	payload := get(t, s, "/v1/jobs/"+cold.ID+"/result")
	if payload.Code != http.StatusOK {
		t.Fatalf("result: %d %s", payload.Code, payload.Body.String())
	}
	sims := metricValue(t, s, "gmtd_simulations_total")
	if sims == 0 {
		t.Fatal("cold run recorded no simulations")
	}

	// The identical resubmission is answered from the cache: same job,
	// same bytes, and — the contract the metric pins — no new simulation.
	rec = post(t, s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm submit: %d %s", rec.Code, rec.Body.String())
	}
	warm := decodeStatus(t, rec)
	if !warm.Cached || warm.ID != cold.ID || warm.Status != StatusDone {
		t.Fatalf("warm view %+v, want cached done view of %s", warm, cold.ID)
	}
	warmPayload := get(t, s, "/v1/jobs/"+warm.ID+"/result")
	if !bytes.Equal(warmPayload.Body.Bytes(), payload.Body.Bytes()) {
		t.Fatal("warm result differs from cold result")
	}
	if got := metricValue(t, s, "gmtd_simulations_total"); got != sims {
		t.Fatalf("simulations_total moved %d -> %d on a cache hit", sims, got)
	}
	if got := metricValue(t, s, "gmtd_cache_hits_total"); got != 1 {
		t.Fatalf("cache_hits_total = %d, want 1", got)
	}
}

func TestExperimentResultMatchesCLIEncoding(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick fig8 suite")
	}
	s := New(Options{Workers: 1, QueueDepth: 4})
	defer s.Drain()

	rec := post(t, s, expBody("fig8"))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	v := decodeStatus(t, rec)
	waitStatus(t, s, v.ID, StatusDone)
	got := get(t, s, "/v1/jobs/"+v.ID+"/result").Body.Bytes()

	// The reference bytes are what `gmtbench -quick -json fig8` prints:
	// same suite construction, same driver, same encoder.
	suite := exp.NewSuite(workload.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2})
	suite.Seed = 1
	rows, _, ok := exp.RunExperiment(func() *exp.Suite { return suite }, "fig8", nil)
	if !ok {
		t.Fatal("fig8 missing from driver registry")
	}
	var want bytes.Buffer
	if err := exp.EncodeExperiment(&want, "fig8", rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("daemon payload differs from CLI encoding\n got: %s\nwant: %s", got, want.Bytes())
	}
}

// TestFleetResultMatchesCLIEncoding pins the fleet job's bytes
// contract: the served payload equals what `gmtfleet -json` prints for
// the same spec, because both resolve through fleet.FromOptions and
// encode through fleet.EncodeResult.
func TestFleetResultMatchesCLIEncoding(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4, JobParallelism: 2})
	defer s.Drain()

	body := `{"kind":"fleet","fleet":{"nodes":4,"templates":"a100:3,h100:1","requests":48,"seed":3}}`
	rec := post(t, s, body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	v := decodeStatus(t, rec)
	waitStatus(t, s, v.ID, StatusDone)
	got := get(t, s, "/v1/jobs/"+v.ID+"/result").Body.Bytes()

	cfg, err := fleet.FromOptions(fleet.Options{Nodes: 4, Templates: "a100:3,h100:1", Requests: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := fleet.Run(nil, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := fleet.EncodeResult(&want, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("daemon payload differs from CLI encoding\n got: %s\nwant: %s", got, want.Bytes())
	}
}

// Regression: a partial JSON config used to replace the entire default
// config, so a request that only named a policy reached gmt.Run with
// Tier1Pages == 0 — the panic killed the worker goroutine and with it
// the daemon. Zero platform fields must inherit the request's scale
// and the defaults instead.
func TestSimPartialConfigRunsWithDefaults(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	defer s.Drain()

	body := `{"kind":"sim","sim":{"app":"KVServe",` +
		`"scale":{"Tier1Pages":64,"Tier2Pages":256,"Oversubscription":2,"DatasetSeed":7},` +
		`"config":{"Policy":"GMT-TierOrder","Tier2Policy":"2q","TrackTier2Reuse":true}}}`
	rec := post(t, s, body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	v := decodeStatus(t, rec)
	waitStatus(t, s, v.ID, StatusDone)
	var res struct {
		Tier2ReuseCount int64
	}
	if err := json.Unmarshal(get(t, s, "/v1/jobs/"+v.ID+"/result").Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Tier2ReuseCount == 0 {
		t.Fatal("TrackTier2Reuse produced no reuse samples on the KVServe trace")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer s.Drain()
	for _, body := range []string{
		`{`,
		`{"kind":"experiment"}`,
		`{"kind":"sim"}`,
		`{"kind":"mystery"}`,
		`{"kind":"experiment","experiment":{"name":"nope"}}`,
		`{"kind":"sim","sim":{"app":"nope"}}`,
		`{"kind":"sim","sim":{"app":"BFS"},"surprise":1}`,
		`{"kind":"sim","sim":{"app":"BFS","config":{"Tier2Policy":"mru"}}}`,
		`{"kind":"sim","sim":{"app":"BFS","config":{"Tier1Pages":-1}}}`,
		`{"kind":"fleet"}`,
		`{"kind":"fleet","fleet":{"nodes":0}}`,
		`{"kind":"fleet","fleet":{"nodes":4,"templates":"v100"}}`,
		`{"kind":"fleet","fleet":{"nodes":4,"router":"random"}}`,
		`{"kind":"fleet","fleet":{"nodes":4,"t2policy":"mru"}}`,
	} {
		if rec := post(t, s, body); rec.Code != http.StatusBadRequest {
			t.Errorf("submit %s: want 400, got %d %s", body, rec.Code, rec.Body.String())
		}
	}
	if rec := get(t, s, "/v1/jobs/jdeadbeef"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job: want 404, got %d", rec.Code)
	}
	if rec := get(t, s, "/v1/jobs/jdeadbeef/result"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown result: want 404, got %d", rec.Code)
	}
}

func TestJobTimeoutFailsJob(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	realExec := s.exec
	s.exec = func(j *job) ([]byte, error) {
		if j.kind == "experiment" {
			started <- struct{}{}
			<-release
			return []byte("{}\n"), nil
		}
		return realExec(j)
	}
	defer s.Drain()

	// Occupy the lone worker so the sim job's deadline expires while it
	// waits in the queue; its executor then fails on the first ctx check
	// instead of simulating.
	if rec := post(t, s, expBody("fig8")); rec.Code != http.StatusAccepted {
		t.Fatalf("blocker: %d %s", rec.Code, rec.Body.String())
	}
	<-started
	rec := post(t, s, `{"kind":"sim","sim":{"app":"BFS"},"timeout_ms":30}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("sim submit: %d %s", rec.Code, rec.Body.String())
	}
	v := decodeStatus(t, rec)
	time.Sleep(60 * time.Millisecond)
	close(release)
	st := waitForTerminal(t, s, v.ID)
	if st.Status != StatusFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("job finished as %q (error %q), want failed with a deadline error", st.Status, st.Error)
	}
}

// waitForTerminal polls until the job is done or failed.
func waitForTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := decodeStatus(t, get(t, s, "/v1/jobs/"+id))
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}
