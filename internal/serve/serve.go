// Package serve is the serving core of gmtd: a long-running HTTP/JSON
// front end over the deterministic simulation engine. It owns the
// pieces a one-shot CLI never needs — admission control over a bounded
// job queue, a content-addressed result cache with singleflight
// collapsing, Prometheus-text metrics, and graceful drain — while the
// simulations themselves run through the same internal/exp suite and
// public gmt API the CLIs use, so a served result is byte-identical to
// the CLI's output for the same request.
//
// Concurrency model (the "serving boundary", HACKING.md): goroutines
// here are HTTP handlers and the worker pool; everything below the
// exp.Suite memo stays single-goroutine per job. Wall-clock time enters
// only through the injected Options.Clock — the norealtime analyzer
// covers this package, and every latency in it is a delta of that
// monotonic clock, never time.Now.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/gmtsim/gmt/internal/exp"
)

// Options configures a Server. Zero values take the documented
// defaults.
type Options struct {
	// Workers is the number of concurrent job executors (default 2).
	Workers int
	// QueueDepth bounds the number of admitted-but-unstarted jobs;
	// submissions beyond it are rejected with 429 (default 64).
	QueueDepth int
	// JobParallelism is the exp pool worker count each experiment job
	// may use internally (default 1; the daemon's parallelism normally
	// comes from running several jobs, not from one wide job).
	JobParallelism int
	// CacheEntries bounds the completed jobs retained as the result
	// cache; the oldest finished jobs are evicted first (default 256).
	CacheEntries int
	// ColdStartLatency seeds the per-job latency estimate used for
	// Retry-After until the first job completes (default 2s). Without
	// it, a cold daemon with a full queue would tell every rejected
	// client to retry in 1 second — a synchronized stampede against a
	// queue that cannot possibly have drained.
	ColdStartLatency time.Duration
	// Clock is a monotonic nanosecond clock injected by the binary
	// (this package is banned from reading wall time). A nil clock
	// leaves all timings zero, which tests use.
	Clock func() int64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.JobParallelism <= 0 {
		o.JobParallelism = 1
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.ColdStartLatency <= 0 {
		o.ColdStartLatency = 2 * time.Second
	}
	if o.Clock == nil {
		o.Clock = func() int64 { return 0 }
	}
	return o
}

// Server is the serving state machine: an http.Handler plus the worker
// pool behind it. Create with New, shut down with Drain.
type Server struct {
	opts Options
	mux  *http.ServeMux
	wg   sync.WaitGroup

	// exec runs one admitted job; tests stub it to control timing.
	exec func(j *job) ([]byte, error)

	mu        sync.Mutex
	queue     chan *job
	jobs      map[string]*job // by id (ids are derived from keys)
	byKey     map[string]*job
	doneOrder []string // ids in completion order, for cache eviction
	suites    map[string]*exp.Suite
	draining  bool
	inflight  int
	met       metrics
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	s := &Server{
		opts:   opts.withDefaults(),
		jobs:   make(map[string]*job),
		byKey:  make(map[string]*job),
		suites: make(map[string]*exp.Suite),
	}
	s.queue = make(chan *job, s.opts.QueueDepth)
	s.exec = func(j *job) ([]byte, error) { return j.run(j.ctx) }
	s.met.hist = newHistogram()
	s.met.coldNS = float64(s.opts.ColdStartLatency.Nanoseconds())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain gracefully shuts the worker pool down: admission stops
// (submissions are rejected with 503), every already-admitted job —
// queued or running — is executed to completion, and Drain returns once
// the pool is idle. Poll, result, health, and metrics endpoints keep
// answering; the binary shuts the HTTP listener down after Drain so
// clients can still fetch the results of drained jobs. Idempotent and
// safe to call concurrently.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker executes admitted jobs until the queue is closed and empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		j.status = StatusRunning
		j.startedNS = s.opts.Clock()
		s.inflight++
		s.mu.Unlock()

		payload, err := s.exec(j)

		s.mu.Lock()
		j.payload = payload
		j.finishedNS = s.opts.Clock()
		if err != nil {
			j.status = StatusFailed
			j.err = err.Error()
			s.met.failed++
		} else {
			j.status = StatusDone
			s.met.done++
		}
		s.inflight--
		s.met.observe(float64(j.finishedNS-j.startedNS) / 1e9)
		s.doneOrder = append(s.doneOrder, j.id)
		s.evictLocked()
		s.mu.Unlock()
		j.cancel()
	}
}

// evictLocked enforces the CacheEntries bound on retained finished
// jobs. Called with s.mu held.
func (s *Server) evictLocked() {
	for len(s.doneOrder) > s.opts.CacheEntries {
		id := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		if j, ok := s.jobs[id]; ok {
			delete(s.jobs, id)
			delete(s.byKey, j.key)
		}
	}
}

// suiteFor returns the shared experiment suite for one (scale, seed)
// pair, creating it on first use. Suites are never evicted: they hold
// the trace/result memo that makes warm experiment requests cheap, and
// their count is bounded by the distinct scales clients ask for.
func (s *Server) suiteFor(scale scaleSpec, seed int64) *exp.Suite {
	key := fmt.Sprintf("t1=%d,t2=%d,osf=%g,seed=%d,dseed=%d",
		scale.Tier1Pages, scale.Tier2Pages, scale.Oversubscription, seed, scale.DatasetSeed)
	s.mu.Lock()
	defer s.mu.Unlock()
	suite, ok := s.suites[key]
	if !ok {
		suite = exp.NewSuite(scale.workload())
		suite.Seed = seed
		s.suites[key] = suite
	}
	return suite
}

// simulationsTotal sums executed simulations across every suite plus
// the standalone sim-kind runs. Warm (cached) requests leave it
// unchanged — the metric the cache tests pin.
func (s *Server) simulationsTotal() int64 {
	s.mu.Lock()
	suites := make([]*exp.Suite, 0, len(s.suites))
	for _, suite := range s.suites {
		suites = append(suites, suite) //lint:ignore maporder summed below; int64 addition is order-independent
	}
	total := s.met.simRuns
	s.mu.Unlock()
	// Suite counters are summed outside s.mu (Counters takes the suite
	// lock); int64 addition is order-independent, so map order above is
	// harmless.
	for _, suite := range suites {
		sims, _ := suite.Counters()
		total += sims
	}
	return total
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encode errors are unreportable here: the status line is committed.
	_ = enc.Encode(v)
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}
