package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/gmtsim/gmt"
	"github.com/gmtsim/gmt/internal/exp"
	"github.com/gmtsim/gmt/internal/fleet"
	"github.com/gmtsim/gmt/internal/tier"
	"github.com/gmtsim/gmt/internal/workload"
)

// Status is a job's lifecycle state.
type Status string

// The job lifecycle: queued → running → done | failed.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// SubmitRequest is the body of POST /v1/jobs. Exactly one of Experiment
// and Sim must be set, matching Kind.
type SubmitRequest struct {
	// Kind selects the job type: "experiment" (a named gmtbench
	// experiment), "sim" (a single app×policy run à la gmtsim), or
	// "fleet" (a fleet-scale run à la gmtfleet).
	Kind       string             `json:"kind"`
	Experiment *ExperimentRequest `json:"experiment,omitempty"`
	Sim        *SimRequest        `json:"sim,omitempty"`
	Fleet      *FleetRequest      `json:"fleet,omitempty"`
	// TimeoutMS, when positive, bounds the job's execution: the
	// deadline is observed between the job's internal pool jobs (an
	// in-progress simulation always completes), and an expired job
	// reports status "failed" with a deadline error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ExperimentRequest names a gmtbench experiment plus the same knobs the
// CLI exposes; zero values take gmtbench's defaults, so the default
// request for "fig8" is byte-equivalent to `gmtbench -json fig8`.
type ExperimentRequest struct {
	Name             string  `json:"name"`
	Tier1Pages       int     `json:"t1,omitempty"`
	Tier2Pages       int     `json:"t2,omitempty"`
	Oversubscription float64 `json:"osf,omitempty"`
	Quick            bool    `json:"quick,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
	// DatasetSeed varies dataset synthesis (gmtbench's -dataseed);
	// zero takes the default seed 42.
	DatasetSeed int64 `json:"dataset_seed,omitempty"`
}

// FleetRequest runs a fleet simulation with cmd/gmtfleet's knobs; zero
// values take the CLI defaults, so the result bytes equal
// `gmtfleet -nodes N -json`.
type FleetRequest struct {
	Nodes       int     `json:"nodes"`
	Templates   string  `json:"templates,omitempty"`
	Router      string  `json:"router,omitempty"`
	Requests    int     `json:"requests,omitempty"`
	Rate        float64 `json:"rate,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	Tier2Policy string  `json:"t2policy,omitempty"`
}

// SimRequest runs one application under one configuration. A nil
// Config takes gmt.DefaultConfig; a nil Scale takes gmt.DefaultScale.
type SimRequest struct {
	App    string      `json:"app"`
	Scale  *gmt.Scale  `json:"scale,omitempty"`
	Config *gmt.Config `json:"config,omitempty"`
}

// JobStatus is the JSON shape of submit and poll responses. Times are
// the server's monotonic clock (nanoseconds since daemon start).
type JobStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Status Status `json:"status"`
	// Cached is set on submit responses served from the result cache
	// or collapsed into an in-flight identical job.
	Cached      bool   `json:"cached,omitempty"`
	Error       string `json:"error,omitempty"`
	SubmittedNS int64  `json:"submitted_ns"`
	StartedNS   int64  `json:"started_ns,omitempty"`
	FinishedNS  int64  `json:"finished_ns,omitempty"`
	// ResultURL is set once the job is done.
	ResultURL string `json:"result_url,omitempty"`
}

// scaleSpec is a resolved experiment scale (gmtbench's -t1/-t2/-osf
// after -quick is applied).
type scaleSpec struct {
	Tier1Pages       int
	Tier2Pages       int
	Oversubscription float64
	DatasetSeed      int64
}

func (sc scaleSpec) workload() (s workload.Scale) {
	s.Tier1Pages = sc.Tier1Pages
	s.Tier2Pages = sc.Tier2Pages
	s.Oversubscription = sc.Oversubscription
	s.DatasetSeed = sc.DatasetSeed
	return s
}

// job is one admitted unit of work. Identity is content-addressed: the
// id is a digest of the key, and the key captures everything the
// result depends on, so identical submissions share one job.
type job struct {
	id   string
	key  string
	kind string

	ctx    context.Context
	cancel context.CancelFunc
	run    func(ctx context.Context) ([]byte, error)

	status      Status
	payload     []byte
	err         string
	submittedNS int64
	startedNS   int64
	finishedNS  int64
}

func (j *job) statusView() JobStatus {
	v := JobStatus{
		ID:          j.id,
		Kind:        j.kind,
		Status:      j.status,
		Error:       j.err,
		SubmittedNS: j.submittedNS,
		StartedNS:   j.startedNS,
		FinishedNS:  j.finishedNS,
	}
	if j.status == StatusDone {
		v.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return v
}

func jobID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return "j" + hex.EncodeToString(sum[:8])
}

// buildJob validates a request and binds its executor closure; the
// returned job is not yet admitted. Validation failures come back as
// error for a 400. reqCtx is the submitting request's context: the job
// inherits its values but not its cancellation — a job outlives the
// submit request by design (the client polls for the result).
func (s *Server) buildJob(reqCtx context.Context, req *SubmitRequest) (*job, error) {
	var key string
	var run func(ctx context.Context) ([]byte, error)
	var err error
	switch req.Kind {
	case "experiment":
		if req.Experiment == nil {
			return nil, fmt.Errorf("kind %q requires an %q object", req.Kind, req.Kind)
		}
		key, run, err = s.buildExperiment(req.Experiment)
	case "sim":
		if req.Sim == nil {
			return nil, fmt.Errorf("kind %q requires a %q object", req.Kind, req.Kind)
		}
		key, run, err = s.buildSim(req.Sim)
	case "fleet":
		if req.Fleet == nil {
			return nil, fmt.Errorf("kind %q requires a %q object", req.Kind, req.Kind)
		}
		key, run, err = s.buildFleet(req.Fleet)
	default:
		return nil, fmt.Errorf("unknown kind %q (want \"experiment\", \"sim\", or \"fleet\")", req.Kind)
	}
	if err != nil {
		return nil, err
	}
	ctx := context.WithoutCancel(reqCtx)
	var cancel context.CancelFunc = func() {}
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	return &job{
		id:     jobID(key),
		key:    key,
		kind:   req.Kind,
		ctx:    ctx,
		cancel: cancel,
		run:    run,
		status: StatusQueued,
	}, nil
}

// buildExperiment resolves an experiment request exactly the way
// gmtbench resolves its flags, so equal inputs produce equal bytes.
func (s *Server) buildExperiment(req *ExperimentRequest) (string, func(context.Context) ([]byte, error), error) {
	name := req.Name
	if !exp.KnownExperiment(name) {
		return "", nil, fmt.Errorf("unknown experiment %q; choose from %v", name, exp.ExperimentNames)
	}
	scale := scaleSpec{Tier1Pages: 1024, Tier2Pages: 4096, Oversubscription: 2}
	if req.Tier1Pages > 0 {
		scale.Tier1Pages = req.Tier1Pages
	}
	if req.Tier2Pages > 0 {
		scale.Tier2Pages = req.Tier2Pages
	}
	if req.Oversubscription > 0 {
		scale.Oversubscription = req.Oversubscription
	}
	if req.Quick {
		scale.Tier1Pages /= 4
		scale.Tier2Pages /= 4
	}
	scale.DatasetSeed = req.DatasetSeed
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	// The cache key is the suite's own memo fingerprint (Seed, GPU,
	// Scale) plus the experiment name: a daemon cache hit is exactly a
	// suite memo hit one level up.
	suite := s.suiteFor(scale, seed)
	key := "exp|" + name + "|" + suite.Fingerprint()
	run := func(ctx context.Context) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if exp.NeedsSuite(name) {
			if _, err := exp.Prewarm(ctx, suite, []string{name}, s.opts.JobParallelism, s.opts.Clock); err != nil {
				return nil, err
			}
		}
		rows, _, ok := exp.RunExperiment(func() *exp.Suite { return suite }, name, nil)
		if !ok {
			return nil, fmt.Errorf("experiment %q vanished from the registry", name)
		}
		var buf bytes.Buffer
		if err := exp.EncodeExperiment(&buf, name, rows); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return key, run, nil
}

// buildSim resolves a single-run request. The workload is matched at
// submit time (unknown apps are a 400, not a failed job); the trace is
// generated inside the job.
func (s *Server) buildSim(req *SimRequest) (string, func(context.Context) ([]byte, error), error) {
	scale := gmt.DefaultScale()
	if req.Scale != nil {
		scale = *req.Scale
	}
	cfg := gmt.DefaultConfig()
	if req.Config != nil {
		cfg = *req.Config
		// A partial config is the normal case over JSON; zero platform
		// fields inherit the request's scale and the paper defaults.
		// Without this, a config that only names a policy reaches
		// gmt.Run with Tier1Pages == 0, and the resulting panic takes
		// the worker — and the daemon — down.
		def := gmt.DefaultConfig()
		if cfg.Tier1Pages == 0 {
			cfg.Tier1Pages = scale.Tier1Pages
		}
		if cfg.Tier2Pages == 0 {
			cfg.Tier2Pages = scale.Tier2Pages
		}
		if cfg.Warps == 0 {
			cfg.Warps = def.Warps
		}
		if cfg.ComputePerAccess == 0 {
			cfg.ComputePerAccess = def.ComputePerAccess
		}
		if cfg.Seed == 0 {
			cfg.Seed = def.Seed
		}
	}
	if cfg.Tier1Pages < 1 || cfg.Warps < 1 ||
		(cfg.Tier2Pages < 1 && cfg.Policy != gmt.BaM) {
		return "", nil, fmt.Errorf(
			"invalid config: Tier1Pages and Warps must be >= 1, Tier2Pages >= 1 for 3-tier policies (got %d, %d, %d)",
			cfg.Tier1Pages, cfg.Tier2Pages, cfg.Warps)
	}
	var w gmt.Workload
	for _, cand := range append(gmt.Suite(scale), gmt.KVServe(scale)) {
		if strings.EqualFold(cand.Name(), req.App) {
			w = cand
			break
		}
	}
	if w == nil {
		return "", nil, fmt.Errorf("unknown app %q; choose from %v", req.App,
			append(gmt.WorkloadNames(), workload.KVServeName))
	}
	// gmt.Run panics on an unknown Tier-2 policy name; validate here so
	// a typo is a 400 at submit, not a failed job.
	if cfg.Tier2Policy != "" {
		if _, err := tier.ParseStorePolicy(cfg.Tier2Policy); err != nil {
			return "", nil, err
		}
	}
	key := fmt.Sprintf("sim|%s|t1=%d,t2=%d,osf=%g|%s",
		w.Name(), scale.Tier1Pages, scale.Tier2Pages, scale.Oversubscription,
		cfg.Fingerprint())
	run := func(ctx context.Context) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := gmt.Run(cfg, w)
		s.mu.Lock()
		s.met.simRuns++
		s.mu.Unlock()
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		return append(data, '\n'), nil
	}
	return key, run, nil
}

// buildFleet resolves a fleet request through the same Options path as
// cmd/gmtfleet, so a served fleet result is byte-equal to the CLI's
// -json output. A bad spec (unknown template, router, or policy) is a
// 400 at submit.
func (s *Server) buildFleet(req *FleetRequest) (string, func(context.Context) ([]byte, error), error) {
	cfg, err := fleet.FromOptions(fleet.Options{
		Nodes:       req.Nodes,
		Templates:   req.Templates,
		Router:      req.Router,
		Requests:    req.Requests,
		Rate:        req.Rate,
		Seed:        req.Seed,
		Tier2Policy: req.Tier2Policy,
	})
	if err != nil {
		return "", nil, err
	}
	// The resolved config captures everything the result depends on.
	key := fmt.Sprintf("fleet|%+v", cfg)
	run := func(ctx context.Context) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, _, err := fleet.Run(ctx, cfg, s.opts.JobParallelism, s.opts.Clock)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := fleet.EncodeResult(&buf, res); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return key, run, nil
}

// handleSubmit is POST /v1/jobs: admission control. In order, a
// submission is (1) collapsed onto an identical finished or in-flight
// job — the content-addressed cache and singleflight path, (2) rejected
// with 503 while draining, (3) rejected with 429 + Retry-After when the
// queue is full, or (4) admitted.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	j, err := s.buildJob(r.Context(), &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	s.met.submitted++
	if existing, ok := s.byKey[j.key]; ok && existing.status != StatusFailed {
		// Served from cache (done) or collapsed onto the identical
		// in-flight job (queued/running): no new execution either way.
		if existing.status == StatusDone {
			s.met.cacheHits++
		} else {
			s.met.joins++
		}
		view := existing.statusView()
		view.Cached = true
		s.mu.Unlock()
		j.cancel()
		writeJSON(w, http.StatusOK, view)
		return
	}
	if s.draining {
		s.met.rejectedDraining++
		s.mu.Unlock()
		j.cancel()
		writeError(w, http.StatusServiceUnavailable, "draining: not admitting new jobs")
		return
	}
	select {
	case s.queue <- j:
	default:
		s.met.rejectedFull++
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		j.cancel()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeError(w, http.StatusTooManyRequests,
			"queue full (%d jobs); retry in ~%ds", s.opts.QueueDepth, retry)
		return
	}
	s.met.cacheMisses++
	j.submittedNS = s.opts.Clock()
	// A failed predecessor with the same key is superseded: the fresh
	// attempt takes over the id.
	s.jobs[j.id] = j
	s.byKey[j.key] = j
	view := j.statusView()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, view)
}

// retryAfterLocked estimates seconds until a queue slot frees up:
// admitted work divided by workers, at the observed per-job latency.
// Called with s.mu held.
func (s *Server) retryAfterLocked() int64 {
	pending := int64(len(s.queue)) + int64(s.inflight)
	est := int64(s.met.ewmaNS() * float64(pending) / float64(s.opts.Workers) / 1e9)
	if est < 1 {
		return 1
	}
	if est > 60 {
		return 60
	}
	return est
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var view JobStatus
	if ok {
		view = j.statusView()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleResult is GET /v1/jobs/{id}/result: the raw result payload —
// for experiment jobs, the exact bytes `gmtbench -json <name>` prints.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var status Status
	var payload []byte
	var jerr string
	if ok {
		status, payload, jerr = j.status, j.payload, j.err
	}
	s.mu.Unlock()
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	case status == StatusFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", jerr)
	case status != StatusDone:
		writeError(w, http.StatusAccepted, "job is %s; poll /v1/jobs/%s", status, r.PathValue("id"))
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload) // the canonical bytes; any wrapping would break the diff contract
	}
}

// handleHealthz is GET /healthz: 200 while serving, 503 once draining
// (load balancers stop routing, pollers keep working).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	body := map[string]interface{}{
		"status":   "ok",
		"queued":   len(s.queue),
		"inflight": s.inflight,
	}
	s.mu.Unlock()
	code := http.StatusOK
	if draining {
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
