// Package pcie models a PCIe interconnect as a pair of directional
// bandwidth pipes (host-to-device and device-to-host) with a propagation
// latency. GMT's platform (Table 1 of the paper) uses PCIe Gen3 x16
// between GPU and host, and Gen3 x4 between the SSD and the switch.
//
// The model captures the two properties the paper's transfer study
// (Figure 6) depends on: a shared, saturable byte rate per direction, and
// per-transaction latency that pipelines across outstanding transfers.
package pcie

import (
	"github.com/gmtsim/gmt/internal/invariant"
	"github.com/gmtsim/gmt/internal/sim"
)

// Per-lane effective data rate for PCIe generations, in bytes/second.
// These are effective rates after 128b/130b encoding and protocol
// overhead (~80% of the raw signaling rate), matching the ~12.8 GB/s the
// paper observes on Gen3 x16.
const (
	Gen3LaneBytesPerS = 800_000_000 // 8 GT/s lane ≈ 0.8 GB/s effective
	Gen4LaneBytesPerS = 1_600_000_000
)

// DefaultLatency is the one-way PCIe transaction latency.
const DefaultLatency = 900 * sim.Nanosecond

// Link is a full-duplex PCIe connection.
type Link struct {
	// Up carries data toward the device at the "far" end (e.g. writes
	// from GPU to host memory); Down carries data back (e.g. reads).
	Up, Down *sim.Pipe

	eng   *sim.Engine
	lanes int
	bw    int64
}

// NewLink returns a Gen3 link with the given lane count.
func NewLink(eng *sim.Engine, lanes int) *Link {
	return NewLinkRate(eng, lanes, Gen3LaneBytesPerS, DefaultLatency)
}

// NewLinkRate returns a link with an explicit per-lane rate and latency.
func NewLinkRate(eng *sim.Engine, lanes int, laneBytesPerS int64, latency sim.Time) *Link {
	if lanes < 1 {
		panic("pcie: lanes must be >= 1")
	}
	bw := int64(lanes) * laneBytesPerS
	invariant.Assert(bw > 0, "pcie: non-positive link bandwidth %d (%d lanes x %d B/s)", bw, lanes, laneBytesPerS)
	return &Link{
		Up:    sim.NewPipe(eng, bw, latency),
		Down:  sim.NewPipe(eng, bw, latency),
		eng:   eng,
		lanes: lanes,
		bw:    bw,
	}
}

// Reset returns both directions to their freshly constructed state
// (runtime recycling; the engine must be drained first).
func (l *Link) Reset() {
	l.Up.Reset()
	l.Down.Reset()
}

// CheckInvariants asserts per-direction bandwidth conservation: the
// cumulative transfer time granted on a direction can never exceed the
// window the pipe has committed (now + backlog), i.e. grants never run
// faster than the link's byte rate. Active only under -tags
// gmtinvariants; devices call it at completion boundaries.
func (l *Link) CheckInvariants() {
	if !invariant.Enabled {
		return
	}
	now := l.eng.Now()
	invariant.Assert(l.Up.BusyTime() <= now+l.Up.Backlog(),
		"pcie: up direction granted %d ns of transfer inside a %d ns committed window (capacity %d B/s exceeded)",
		l.Up.BusyTime(), now+l.Up.Backlog(), l.bw)
	invariant.Assert(l.Down.BusyTime() <= now+l.Down.Backlog(),
		"pcie: down direction granted %d ns of transfer inside a %d ns committed window (capacity %d B/s exceeded)",
		l.Down.BusyTime(), now+l.Down.Backlog(), l.bw)
}

// Lanes reports the link width.
func (l *Link) Lanes() int { return l.lanes }

// BytesPerSecond reports the per-direction bandwidth.
func (l *Link) BytesPerSecond() int64 { return l.bw }

// TotalBytes reports bytes moved in both directions.
func (l *Link) TotalBytes() int64 { return l.Up.Bytes() + l.Down.Bytes() }
