package pcie

import (
	"testing"

	"github.com/gmtsim/gmt/internal/sim"
)

func TestLinkBandwidthScalesWithLanes(t *testing.T) {
	eng := sim.NewEngine()
	x4 := NewLink(eng, 4)
	x16 := NewLink(eng, 16)
	if x16.BytesPerSecond() != 4*x4.BytesPerSecond() {
		t.Fatalf("x16 bw %d != 4 * x4 bw %d", x16.BytesPerSecond(), x4.BytesPerSecond())
	}
	if x16.BytesPerSecond() != 12_800_000_000 {
		t.Fatalf("Gen3 x16 = %d B/s, want 12.8 GB/s effective", x16.BytesPerSecond())
	}
}

func TestLinkDirectionsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLinkRate(eng, 1, 1_000_000_000, 0)
	var upDone, downDone sim.Time
	l.Up.Transfer(1000, func() { upDone = eng.Now() })
	l.Down.Transfer(1000, func() { downDone = eng.Now() })
	eng.Run()
	// Full duplex: both complete at 1000ns, not serialized.
	if upDone != 1000 || downDone != 1000 {
		t.Fatalf("up=%d down=%d, want both 1000 (full duplex)", upDone, downDone)
	}
}

func TestLink64KPageTime(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 16)
	var done sim.Time
	l.Down.Transfer(64*1024, func() { done = eng.Now() })
	eng.Run()
	// 64 KiB over 12.8 GB/s ≈ 5.1 µs + ~0.9 µs latency ≈ 6 µs.
	if done < 5*sim.Microsecond || done > 7*sim.Microsecond {
		t.Fatalf("64K page over Gen3 x16 took %dns, want ≈6µs", done)
	}
}

func TestTotalBytes(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 4)
	l.Up.Transfer(100, nil)
	l.Down.Transfer(200, nil)
	eng.Run()
	if l.TotalBytes() != 300 {
		t.Fatalf("TotalBytes = %d, want 300", l.TotalBytes())
	}
}

func TestLanesAndGen4(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 8)
	if l.Lanes() != 8 {
		t.Fatalf("Lanes = %d", l.Lanes())
	}
	g4 := NewLinkRate(eng, 8, Gen4LaneBytesPerS, DefaultLatency)
	if g4.BytesPerSecond() != 2*l.BytesPerSecond() {
		t.Fatal("Gen4 lane rate should double Gen3")
	}
}

func TestBadLanesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("lanes=0 did not panic")
		}
	}()
	NewLink(sim.NewEngine(), 0)
}
