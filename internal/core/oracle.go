package core

import (
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// PolicyOracle: offline Belady-style management with perfect future
// knowledge, the upper bound GMT-Reuse approximates (§2.1.3: "one
// should replace the page whose next reference is furthest in the
// future"). The oracle
//
//   - evicts from Tier-1 the resident whose next use is furthest (dead
//     pages first),
//   - discards victims that are never used again,
//   - places returning victims in Tier-2, displacing the Tier-2
//     resident with the furthest next use when full — but only if the
//     incoming page returns sooner.
//
// Victim selection scans the residents; ties break on page ID so runs
// stay deterministic regardless of store iteration order.

// oracleEvict selects and places a Tier-1 victim with future knowledge.
// Oracle runs scan residents with a closure per eviction; they are an
// offline upper bound, never on the perf-gated miss path, so the whole
// policy sits behind a coldpath barrier.
//
//gmt:coldpath
func (rt *Runtime) oracleEvict(ready sim.EventFunc, rctx any) {
	victim, vps := rt.furthest(rt.t1)
	rt.t1.Remove(victim)
	rt.clearT1Page(victim)
	vps = rt.dir.own(victim)
	vps.loc = locSSD
	if vps.nextUse < 0 {
		// Dead page: free (or a writeback if dirty).
		rt.discard(victim, vps)
		ready(rctx, 0)
		return
	}
	if !rt.t2.Full() {
		rt.placeInTier2(victim, vps, ready, rctx)
		return
	}
	t2victim, t2ps := rt.furthest(rt.t2)
	if t2ps.nextUse >= 0 && t2ps.nextUse <= vps.nextUse {
		// Everything resident returns sooner: the incoming page is the
		// least valuable, keep Tier-2 intact.
		rt.discard(victim, vps)
		ready(rctx, 0)
		return
	}
	rt.t2.Remove(t2victim)
	rt.m.Tier2Evictions++
	rt.discard(t2victim, rt.dir.own(t2victim))
	rt.placeInTier2Delayed(victim, vps, rt.cfg.Tier2EvictOverhead, ready, rctx)
}

// furthest reports the resident with the furthest next use (dead pages
// count as infinitely far), breaking ties on the smaller page ID.
func (rt *Runtime) furthest(store tier.Store) (tier.PageID, *pageState) {
	best := tier.NoPage
	var bestPS *pageState
	var bestUse int64
	store.Each(func(p tier.PageID) {
		ps := rt.dir.get(p)
		use := ps.nextUse
		if use < 0 {
			use = int64(1) << 62 // never used again
		}
		switch {
		case best == tier.NoPage,
			use > bestUse,
			use == bestUse && p < best:
			best, bestPS, bestUse = p, ps, use
		}
	})
	if best == tier.NoPage {
		panic("core: oracle eviction from empty store")
	}
	return best, bestPS
}
