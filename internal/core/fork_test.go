package core

import (
	"reflect"
	"testing"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
)

// forkTrace builds a trace whose head touches exactly warm distinct
// pages (an eviction-free warm-up) and whose tail oversubscribes
// Tier-1, forcing evictions, Tier-2 traffic, and re-fetches.
func forkTrace(warm, tail, footprint int) []gpu.Access {
	tr := make([]gpu.Access, 0, warm*2+tail)
	for i := 0; i < warm*2; i++ {
		tr = append(tr, gpu.Access{Page: tier.PageID(i % warm), Write: i%11 == 0})
	}
	for i := 0; i < tail; i++ {
		tr = append(tr, gpu.Access{Page: tier.PageID(i * 7919 % footprint), Write: i%13 == 0})
		if (i+1)%300 == 0 {
			tr = append(tr, gpu.Barrier)
		}
	}
	return tr
}

// runPhase launches one kernel over trace on the given engine/runtime
// and drains it.
func runPhase(t *testing.T, eng *sim.Engine, rt *Runtime, trace []gpu.Access, warps int) *gpu.GPU {
	t.Helper()
	gcfg := gpu.DefaultConfig()
	gcfg.Warps = warps
	g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: trace}, rt)
	g.Launch()
	eng.Run()
	if !g.Done() {
		t.Fatal("kernel did not finish")
	}
	return g
}

// TestForkMatchesContinuation is the fork-equivalence contract: running
// a warm-up kernel and then a suffix kernel on a forked child (fresh
// engine hydrated from the parent's snapshot) must be byte-identical —
// clock, dispatched-event count, and the full metrics snapshot — to
// continuing the suffix kernel on the parent runtime directly.
func TestForkMatchesContinuation(t *testing.T) {
	for _, pol := range []PolicyKind{PolicyBaM, PolicyTierOrder, PolicyRandom, PolicyReuse} {
		cfg := DefaultConfig()
		cfg.Policy = pol
		cfg.Tier1Pages = 128
		cfg.Tier2Pages = 256
		cfg.FootprintPages = 512
		trace := forkTrace(128, 3000, 512)
		k := EvictionFreePrefix(trace, cfg.Tier1Pages)
		if k < 128 {
			t.Fatalf("prefix too short: %d", k)
		}

		// Continuation: one runtime, two kernels, same engine.
		eng1 := sim.NewEngine()
		rt1 := NewRuntime(eng1, cfg)
		runPhase(t, eng1, rt1, trace[:k], 16)
		runPhase(t, eng1, rt1, trace[k:], 16)

		// Fork: same warm-up, then a child on a snapshot-hydrated engine.
		eng2 := sim.NewEngine()
		rt2 := NewRuntime(eng2, cfg)
		runPhase(t, eng2, rt2, trace[:k], 16)
		child := rt2.Fork(sim.NewEngineFrom(eng2.Snapshot()), cfg)
		ceng := child.Engine()
		runPhase(t, ceng, child, trace[k:], 16)

		if eng1.Now() != ceng.Now() {
			t.Errorf("%v: wall time: continuation %d, fork %d", pol, eng1.Now(), ceng.Now())
		}
		if eng1.Steps() != ceng.Steps() {
			t.Errorf("%v: dispatched events: continuation %d, fork %d", pol, eng1.Steps(), ceng.Steps())
		}
		if m1, m2 := rt1.Snapshot(), child.Snapshot(); m1 != m2 {
			t.Errorf("%v: metrics diverged:\ncontinuation: %+v\nfork:         %+v", pol, m1, m2)
		}
		child.CheckInvariants()
	}
}

// TestForkSiblingsIndependent forks two children from one frozen parent
// and drives them through different suffixes; each must match its own
// continuation run, proving children share nothing mutable.
func TestForkSiblingsIndependent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyReuse
	cfg.Tier1Pages = 128
	cfg.Tier2Pages = 256
	cfg.FootprintPages = 512
	trace := forkTrace(128, 2000, 512)
	k := EvictionFreePrefix(trace, cfg.Tier1Pages)

	peng := sim.NewEngine()
	prt := NewRuntime(peng, cfg)
	runPhase(t, peng, prt, trace[:k], 16)
	snap := peng.Snapshot()

	suffixes := [][]gpu.Access{trace[k:], reverseAccesses(trace[k:])}
	var forked []stats.Run
	var forkedNow []sim.Time
	// Interleave the two children's construction before either runs, so
	// any mutable sharing corrupts at least one of them.
	var children []*Runtime
	for range suffixes {
		children = append(children, prt.Fork(sim.NewEngineFrom(snap), cfg))
	}
	for i, child := range children {
		runPhase(t, child.Engine(), child, suffixes[i], 16)
		forked = append(forked, child.Snapshot())
		forkedNow = append(forkedNow, child.Engine().Now())
		child.CheckInvariants()
	}

	for i, suffix := range suffixes {
		eng := sim.NewEngine()
		rt := NewRuntime(eng, cfg)
		runPhase(t, eng, rt, trace[:k], 16)
		runPhase(t, eng, rt, suffix, 16)
		if eng.Now() != forkedNow[i] {
			t.Errorf("suffix %d: wall time: continuation %d, fork %d", i, eng.Now(), forkedNow[i])
		}
		if m := rt.Snapshot(); m != forked[i] {
			t.Errorf("suffix %d: metrics diverged:\ncontinuation: %+v\nfork:         %+v", i, m, forked[i])
		}
	}
}

// TestForkCanonicalParent is the cross-config sharing contract: a child
// forked off a parent that simulated the prefix under PrefixConfig(cfg)
// must be byte-identical to a monolithic continuation under cfg itself,
// for every axis PrefixConfig normalizes. This is what lets one warm-up
// parent serve a whole sweep (Tier-2 ratios, Tier-2 replacement
// policies, seeds, Random-vs-TierOrder placement).
func TestForkCanonicalParent(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Policy = PolicyTierOrder
		cfg.Tier1Pages = 128
		cfg.Tier2Pages = 256
		cfg.FootprintPages = 512
		return cfg
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"random-placement", func(c *Config) { c.Policy = PolicyRandom; c.Seed = 7 }},
		{"tier2-capacity", func(c *Config) { c.Tier2Pages = 64 }},
		{"tier2-policy", func(c *Config) { c.Tier2Policy = tier.StoreLRUK }},
		{"track-reuse", func(c *Config) { c.TrackTier2Reuse = true }},
		{"evict-knobs", func(c *Config) {
			c.Tier2EvictOverhead = 9 * sim.Microsecond
			c.AsyncEviction = true
		}},
		{"reuse-backfill", func(c *Config) {
			c.Policy = PolicyReuse
			c.BackfillThreshold = 0.5
			c.BackfillWindow = 16
			c.MaxClockRetries = 2
			c.Predictor = PredictorLastClass
			c.Seed = 13
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		canon := PrefixConfig(cfg)
		if reflect.DeepEqual(canon, cfg) {
			t.Fatalf("%s: mutation not normalized by PrefixConfig; case tests nothing", tc.name)
		}
		trace := forkTrace(128, 3000, 512)
		k := EvictionFreePrefix(trace, cfg.Tier1Pages)

		// Continuation: the real config end to end.
		eng1 := sim.NewEngine()
		rt1 := NewRuntime(eng1, cfg)
		runPhase(t, eng1, rt1, trace[:k], 16)
		runPhase(t, eng1, rt1, trace[k:], 16)

		// Fork: prefix under the canonical config, child under the real one.
		eng2 := sim.NewEngine()
		rt2 := NewRuntime(eng2, canon)
		runPhase(t, eng2, rt2, trace[:k], 16)
		child := rt2.Fork(sim.NewEngineFrom(eng2.Snapshot()), cfg)
		runPhase(t, child.Engine(), child, trace[k:], 16)

		if eng1.Now() != child.Engine().Now() {
			t.Errorf("%s: wall time: continuation %d, fork %d", tc.name, eng1.Now(), child.Engine().Now())
		}
		if eng1.Steps() != child.Engine().Steps() {
			t.Errorf("%s: dispatched events: continuation %d, fork %d", tc.name, eng1.Steps(), child.Engine().Steps())
		}
		if m1, m2 := rt1.Snapshot(), child.Snapshot(); m1 != m2 {
			t.Errorf("%s: metrics diverged:\ncontinuation: %+v\nfork:         %+v", tc.name, m1, m2)
		}
		child.CheckInvariants()
	}
}

func reverseAccesses(in []gpu.Access) []gpu.Access {
	out := make([]gpu.Access, len(in))
	for i, a := range in {
		out[len(in)-1-i] = a
	}
	return out
}

// TestForkPreconditions exercises the panics that guard fork validity.
func TestForkPreconditions(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}

	// Evictions in the prefix.
	cfg := DefaultConfig()
	cfg.Policy = PolicyReuse
	cfg.Tier1Pages = 32
	cfg.Tier2Pages = 64
	cfg.FootprintPages = 128
	eng := sim.NewEngine()
	rt := NewRuntime(eng, cfg)
	runPhase(t, eng, rt, forkTrace(64, 500, 128), 8) // 64 distinct > 32 slots
	mustPanic("evicting prefix", func() { rt.Fork(sim.NewEngineFrom(eng.Snapshot()), cfg) })

	// Prefetching configured.
	cfg2 := DefaultConfig()
	cfg2.Policy = PolicyBaM
	cfg2.Tier1Pages = 64
	cfg2.FootprintPages = 128
	cfg2.PrefetchDegree = 2
	eng2 := sim.NewEngine()
	rt2 := NewRuntime(eng2, cfg2)
	runPhase(t, eng2, rt2, forkTrace(16, 0, 16), 4)
	mustPanic("prefetch", func() { rt2.Fork(sim.NewEngineFrom(eng2.Snapshot()), cfg2) })

	// Child config outside the parent's prefix class.
	cfg3 := DefaultConfig()
	cfg3.Policy = PolicyTierOrder
	cfg3.Tier1Pages = 64
	cfg3.Tier2Pages = 128
	cfg3.FootprintPages = 256
	eng3 := sim.NewEngine()
	rt3 := NewRuntime(eng3, cfg3)
	runPhase(t, eng3, rt3, forkTrace(32, 0, 32), 4)
	wrong := cfg3
	wrong.Tier1Pages = 32 // prefix-relevant: changes when evictions start
	mustPanic("prefix class", func() { rt3.Fork(sim.NewEngineFrom(eng3.Snapshot()), wrong) })
}

// TestEvictionFreePrefix pins the helper's boundary behavior.
func TestEvictionFreePrefix(t *testing.T) {
	tr := []gpu.Access{
		{Page: 0}, {Page: 1}, gpu.Barrier, {Page: 0}, {Page: 2}, {Page: 3},
	}
	cases := []struct {
		tier1 int
		want  int
	}{
		{0, 0},
		{1, 1},
		{2, 4},  // pages 0,1 fit; barrier and the repeat of 0 extend the prefix
		{3, 5},  // 0,1,2 fit
		{4, 6},  // whole trace fits
		{99, 6}, // capacity beyond footprint
	}
	for _, c := range cases {
		if got := EvictionFreePrefix(tr, c.tier1); got != c.want {
			t.Errorf("EvictionFreePrefix(tier1=%d) = %d, want %d", c.tier1, got, c.want)
		}
	}
}
