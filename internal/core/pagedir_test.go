package core

import (
	"testing"

	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// TestPageDirectoryFreeListReuse pins the arena's recycling contract:
// a released state is handed out again (zeroed) before the arena grows.
func TestPageDirectoryFreeListReuse(t *testing.T) {
	var d pageDirectory
	a := d.lookup(1)
	a.dirty = true
	b := d.lookup(2)

	d.free = append(d.free, a) // simulate a future release path
	c := d.lookup(3)
	if c != a {
		t.Fatalf("free-listed state not recycled: got %p, want %p", c, a)
	}
	if c.dirty {
		t.Fatal("recycled state not zeroed")
	}
	if got := d.lookup(2); got != b {
		t.Fatalf("unrelated entry moved: got %p, want %p", got, b)
	}
	if len(d.chunks) != 1 {
		t.Fatalf("arena grew to %d chunks despite free list", len(d.chunks))
	}
}

// TestPageDirectoryChunkCarving checks that states are carved from
// fixed chunks and previously handed-out pointers stay valid across
// arena growth (the pointer-stability contract).
func TestPageDirectoryChunkCarving(t *testing.T) {
	var d pageDirectory
	ptrs := make(map[tier.PageID]*pageState)
	const n = pageChunkSize*2 + 5
	for p := tier.PageID(0); p < n; p++ {
		ps := d.lookup(p)
		ps.evictVTD = int64(p)
		ptrs[p] = ps
	}
	if len(d.chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(d.chunks))
	}
	for p, ps := range ptrs {
		if d.lookup(p) != ps {
			t.Fatalf("page %d: pointer moved after growth", p)
		}
		if ps.evictVTD != int64(p) {
			t.Fatalf("page %d: state corrupted after growth", p)
		}
	}
}

// TestPageDirectoryForkCoW covers the fork path: shared reads, chunk
// materialization on own(), parent isolation, and child-local pages.
func TestPageDirectoryForkCoW(t *testing.T) {
	var parent pageDirectory
	for p := tier.PageID(0); p < pageChunkSize+10; p++ {
		parent.lookup(p).evictVTD = int64(p) + 100
	}

	child := parent.fork()

	// Unmaterialized entries alias the parent.
	if child.dir[5] != parent.dir[5] {
		t.Fatal("fresh fork does not share parent states")
	}
	if child.writable(5) {
		t.Fatal("shared chunk reported writable")
	}

	// own() materializes page 5's whole chunk, and only that chunk.
	ps := child.own(5)
	if ps == parent.dir[5] {
		t.Fatal("own returned the parent's state")
	}
	if ps.evictVTD != 105 {
		t.Fatalf("materialized copy lost state: evictVTD = %d", ps.evictVTD)
	}
	if !child.writable(5) || !child.writable(pageChunkSize-1) {
		t.Fatal("materialized chunk not writable")
	}
	if child.writable(pageChunkSize) {
		t.Fatal("neighboring chunk materialized eagerly")
	}
	if child.dir[pageChunkSize] != parent.dir[pageChunkSize] {
		t.Fatal("neighboring chunk no longer shared")
	}

	// Pointer stability: own() is idempotent after materialization.
	ps.dirty = true
	if again := child.own(5); again != ps {
		t.Fatal("pointer changed after materialization")
	}
	if parent.dir[5].dirty {
		t.Fatal("child write leaked into the parent")
	}

	// A page the child references first lives in its own arena and
	// survives later materialization of its chunk.
	fresh := child.lookup(pageChunkSize + 2000) // beyond the parent
	fresh.evictVTD = 7
	if got := child.own(pageChunkSize + 2000); got != fresh {
		t.Fatal("child-local page rebased by own")
	}

	// Materializing a chunk that holds a mix of shared and child-first
	// entries copies only the shared ones.
	sharedBefore := child.dir[pageChunkSize+1]
	if sharedBefore != parent.dir[pageChunkSize+1] {
		t.Fatal("setup: expected shared entry")
	}
	got := child.own(pageChunkSize + 1)
	if got == sharedBefore {
		t.Fatal("shared entry not copied by materialization")
	}
	if got.evictVTD != int64(pageChunkSize+1)+100 {
		t.Fatalf("copy lost state: evictVTD = %d", got.evictVTD)
	}
}

// TestPageDirectoryForkWaitersNiled asserts materialization drops any
// waiter queue instead of aliasing its nodes across the fork.
func TestPageDirectoryForkWaitersNiled(t *testing.T) {
	var parent pageDirectory
	ps := parent.lookup(3)
	node := &waiterNode{call: sim.CallFunc, ctx: func() {}}
	ps.waitHead, ps.waitTail = node, node

	child := parent.fork()
	cps := child.own(3)
	if cps.waitHead != nil || cps.waitTail != nil {
		t.Fatal("materialized state aliases the parent's waiter queue")
	}
	if parent.dir[3].waitHead != node {
		t.Fatal("parent waiter queue disturbed")
	}
}
