package core

import (
	"testing"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// futureOf extracts the page sequence PolicyOracle needs.
func futureOf(trace []gpu.Access) []tier.PageID {
	f := make([]tier.PageID, len(trace))
	for i, a := range trace {
		f[i] = a.Page
	}
	return f
}

func oracleConfig(trace []gpu.Access) Config {
	cfg := smallConfig(PolicyOracle)
	cfg.Future = futureOf(trace)
	return cfg
}

func TestOracleRequiresFuture(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PolicyOracle without Future did not panic")
		}
	}()
	NewRuntime(sim.NewEngine(), smallConfig(PolicyOracle))
}

func TestOracleBeatsOrMatchesAllPolicies(t *testing.T) {
	// On a mixed workload (cyclic reuse + streaming) perfect future
	// knowledge must be at least as fast as every online policy.
	var trace []gpu.Access
	stream := tier.PageID(10_000)
	for round := 0; round < 30; round++ {
		for p := tier.PageID(0); p < 120; p++ {
			trace = append(trace, gpu.Access{Page: p})
		}
		for s := 0; s < 60; s++ { // interleaved dead stream
			trace = append(trace, gpu.Access{Page: stream})
			stream++
		}
	}
	_, tOracle := run(t, oracleConfig(trace), trace, 8)
	for _, p := range []PolicyKind{PolicyBaM, PolicyTierOrder, PolicyRandom, PolicyReuse} {
		_, tp := run(t, smallConfig(p), trace, 8)
		if tOracle > tp+tp/20 { // 5% tolerance for transfer-path noise
			t.Errorf("oracle (%dµs) slower than %v (%dµs)",
				tOracle/sim.Microsecond, p, tp/sim.Microsecond)
		}
	}
}

func TestOracleNeverPlacesDeadPages(t *testing.T) {
	// Pure streaming: every page used once. The oracle must discard
	// everything and never touch Tier-2.
	trace := make([]gpu.Access, 2000)
	for i := range trace {
		trace[i] = gpu.Access{Page: tier.PageID(i)}
	}
	rt, _ := run(t, oracleConfig(trace), trace, 8)
	m := rt.Snapshot()
	if m.EvictionsToTier2 != 0 {
		t.Fatalf("oracle placed %d dead pages in Tier-2", m.EvictionsToTier2)
	}
}

func TestOracleEvictsFurthest(t *testing.T) {
	// Tier-1 of 32: pages 0..31 resident; page 0 is reused soon, page
	// 31 never again. A miss must evict a dead page, not page 0.
	var trace []gpu.Access
	for p := tier.PageID(0); p < 32; p++ {
		trace = append(trace, gpu.Access{Page: p})
	}
	trace = append(trace, gpu.Access{Page: 100}) // miss forces eviction
	trace = append(trace, gpu.Access{Page: 0})   // page 0 reused
	rt, _ := run(t, oracleConfig(trace), trace, 1)
	m := rt.Snapshot()
	// Page 0 must still be a Tier-1 hit: exactly 33 fills (32 cold + 1).
	if m.SSDFills != 33 {
		t.Fatalf("SSD fills = %d, want 33 (page 0 was evicted!)", m.SSDFills)
	}
	if m.Tier1Hits != 1 {
		t.Fatalf("Tier-1 hits = %d, want 1", m.Tier1Hits)
	}
}

func TestAsyncEvictionFasterUnderPlacementPressure(t *testing.T) {
	// TierOrder places every victim; taking placements off the critical
	// path (§5 future work) must help a placement-heavy workload.
	trace := seqTrace(20_000, 100)
	sync := smallConfig(PolicyTierOrder)
	_, tSync := run(t, sync, trace, 8)
	async := sync
	async.AsyncEviction = true
	rt, tAsync := run(t, async, trace, 8)
	rt.CheckInvariants()
	if tAsync >= tSync {
		t.Fatalf("async eviction (%dµs) not faster than sync (%dµs)",
			tAsync/sim.Microsecond, tSync/sim.Microsecond)
	}
}

func TestPrefetchHelpsSequentialStream(t *testing.T) {
	trace := seqTrace(4000, 4000) // pure sequential scan
	base := smallConfig(PolicyBaM)
	_, tBase := run(t, base, trace, 4)
	pf := base
	pf.PrefetchDegree = 4
	rt, tPf := run(t, pf, trace, 4)
	m := rt.Snapshot()
	if m.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	if m.PrefetchHits == 0 {
		t.Fatal("prefetches never hit")
	}
	if tPf >= tBase {
		t.Fatalf("prefetch (%dms) not faster than demand-only (%dms) on a stream",
			tPf/sim.Millisecond, tBase/sim.Millisecond)
	}
	// Usefulness: most prefetches of a pure stream should be demanded.
	if float64(m.PrefetchHits) < 0.8*float64(m.Prefetches) {
		t.Fatalf("prefetch hit ratio %d/%d < 0.8", m.PrefetchHits, m.Prefetches)
	}
}

func TestPrefetchNeverEvicts(t *testing.T) {
	// A hot working set exactly filling Tier-1 plus a cold stream:
	// prefetching the stream must not displace hot pages once Tier-1
	// is full — hits on the hot set must match the no-prefetch run.
	var trace []gpu.Access
	for round := 0; round < 50; round++ {
		for p := tier.PageID(0); p < 28; p++ { // hot set < Tier1Pages(32)
			trace = append(trace, gpu.Access{Page: p})
		}
		trace = append(trace, gpu.Access{Page: tier.PageID(1000 + round)})
	}
	cfg := smallConfig(PolicyBaM)
	cfg.PrefetchDegree = 8
	rt, _ := run(t, cfg, trace, 1)
	m := rt.Snapshot()
	// 28 hot pages cold-fill once then always hit; stream pages fill.
	wantHits := int64(50*28 - 28)
	if m.Tier1Hits < wantHits {
		t.Fatalf("hot-set hits = %d, want >= %d (prefetch evicted hot pages)",
			m.Tier1Hits, wantHits)
	}
}

func TestUpPathBypassAblation(t *testing.T) {
	// Staging SSD fills through Tier-2 must be slower than the paper's
	// bypass on a fill-heavy workload, and must churn Tier-2.
	trace := seqTrace(20_000, 500)
	bypass := smallConfig(PolicyReuse)
	_, tBypass := run(t, bypass, trace, 8)
	staged := bypass
	staged.UpPathThroughTier2 = true
	rt, tStaged := run(t, staged, trace, 8)
	rt.CheckInvariants()
	if tStaged <= tBypass {
		t.Fatalf("up-path staging (%dms) not slower than bypass (%dms)",
			tStaged/sim.Millisecond, tBypass/sim.Millisecond)
	}
}

// TestMarkovBeatsLastClassOnAlternation constructs the Figure 4c
// situation directly: subject pages whose correct class strictly
// alternates Medium, Long, Medium, ... between Tier-1 evictions. The
// 2-level Markov chain learns the alternation; a 1-level last-class
// predictor is wrong on every subject eviction.
func TestMarkovBeatsLastClassOnAlternation(t *testing.T) {
	// smallConfig: Tier-1 = 32, Tier-2 = 128, combined = 160.
	var trace []gpu.Access
	stream := tier.PageID(100_000)
	for round := 0; round < 40; round++ {
		for s := tier.PageID(0); s < 16; s++ { // subjects
			trace = append(trace, gpu.Access{Page: s})
		}
		for f := tier.PageID(1000); f < 1080; f++ { // fixed fillers: ~95-distinct gap -> Medium
			trace = append(trace, gpu.Access{Page: f})
		}
		for s := tier.PageID(0); s < 16; s++ {
			trace = append(trace, gpu.Access{Page: s})
		}
		for i := 0; i < 300; i++ { // fresh stream: ~300-distinct gap -> Long
			trace = append(trace, gpu.Access{Page: stream})
			stream++
		}
	}
	accuracy := func(pk PredictorKind) float64 {
		cfg := smallConfig(PolicyReuse)
		cfg.Predictor = pk
		rt, _ := run(t, cfg, trace, 8)
		m := rt.Snapshot()
		if m.Predictions == 0 {
			t.Fatalf("%v scored no predictions", pk)
		}
		return m.PredictionAccuracy()
	}
	markov, last := accuracy(PredictorMarkov), accuracy(PredictorLastClass)
	if markov <= last {
		t.Fatalf("markov accuracy %.2f <= last-class %.2f on an alternating workload", markov, last)
	}
}

func TestPredictorKindStrings(t *testing.T) {
	if PredictorMarkov.String() != "markov" || PredictorLastClass.String() != "last-class" ||
		PredictorStatic.String() != "static" || PredictorKind(9).String() != "predictor(9)" {
		t.Fatal("predictor strings wrong")
	}
}

func TestStaticPredictorPlacesEverything(t *testing.T) {
	cfg := smallConfig(PolicyReuse)
	cfg.Predictor = PredictorStatic
	rt, _ := run(t, cfg, seqTrace(10_000, 300), 8)
	m := rt.Snapshot()
	// Static predicts Medium always: placements happen whenever Tier-2
	// has room, and the short-reuse retention loop never fires.
	if m.EvictionsToTier2 == 0 {
		t.Fatal("static predictor never placed")
	}
	if m.BackfillPlaced != 0 {
		t.Fatal("static predictor should never reach the Long/backfill path")
	}
}

// Stress configurations: degenerate capacities must still complete and
// conserve accounting.
func TestDegenerateConfigurations(t *testing.T) {
	trace := seqTrace(500, 50)
	cases := []struct {
		name   string
		t1, t2 int
		warps  int
	}{
		{"tier1-of-one", 1, 4, 1},
		{"tier2-of-one", 8, 1, 2},
		{"warps-exceed-everything", 8, 8, 128},
		{"huge-tiers", 2048, 8192, 4},
	}
	for _, c := range cases {
		for _, p := range []PolicyKind{PolicyBaM, PolicyTierOrder, PolicyRandom, PolicyReuse} {
			cfg := smallConfig(p)
			cfg.Tier1Pages = c.t1
			cfg.Tier2Pages = c.t2
			rt, _ := run(t, cfg, trace, c.warps)
			m := rt.Snapshot()
			if m.Tier1Hits+m.Tier2Hits+m.SSDFills+m.InFlightJoins != m.Accesses {
				t.Fatalf("%s/%v: accounting broken", c.name, p)
			}
		}
	}
}

func TestEmptyTraceCompletes(t *testing.T) {
	rt, wall := run(t, smallConfig(PolicyReuse), nil, 4)
	if rt.Snapshot().Accesses != 0 || wall != 0 {
		t.Fatalf("empty trace produced activity: %+v at %d", rt.Snapshot(), wall)
	}
}

func TestHistorySampling(t *testing.T) {
	cfg := smallConfig(PolicyReuse)
	cfg.HistorySample = 1000
	rt, _ := run(t, cfg, seqTrace(10_000, 300), 8)
	hist := rt.History()
	if len(hist) != 10 {
		t.Fatalf("history samples = %d, want 10", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Accesses <= hist[i-1].Accesses {
			t.Fatal("history not monotone in accesses")
		}
		if hist[i].SSDReads < hist[i-1].SSDReads {
			t.Fatal("history not monotone in SSD reads")
		}
	}
}

func TestUnpipelinedRegressionKnob(t *testing.T) {
	cfg := smallConfig(PolicyReuse)
	cfg.UnpipelinedRegression = true
	rt, _ := run(t, cfg, seqTrace(20_000, 100), 8)
	m := rt.Snapshot()
	// End-only publication: exactly one batch once the target is hit.
	if m.RegressionBatches > 1 {
		t.Fatalf("unpipelined run published %d batches", m.RegressionBatches)
	}
}

func TestOracleDeterministic(t *testing.T) {
	trace := seqTrace(8000, 300)
	_, a := run(t, oracleConfig(trace), trace, 8)
	_, b := run(t, oracleConfig(trace), trace, 8)
	if a != b {
		t.Fatalf("oracle runs diverged: %d vs %d", a, b)
	}
}
