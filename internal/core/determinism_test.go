package core

import (
	"math/rand"
	"testing"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/tier"
)

// coinTrace cycles more pages than Tier-1 holds so PolicyRandom's coin
// is flipped on every eviction.
func coinTrace(n int) []gpu.Access {
	tr := make([]gpu.Access, n)
	for i := range tr {
		tr[i] = gpu.Access{Page: tier.PageID(i % 96), Write: i%7 == 0}
	}
	return tr
}

// TestInjectedRNGDeterminism checks the Config.RNG injection point: two
// runs fed equally-seeded streams are identical, and the injected stream
// actually drives the coin (different seeds change placement counts).
func TestInjectedRNGDeterminism(t *testing.T) {
	snap := func(seed int64) interface{} {
		cfg := smallConfig(PolicyRandom)
		cfg.RNG = rand.New(rand.NewSource(seed))
		rt, _ := run(t, cfg, coinTrace(6000), 8)
		return rt.Snapshot()
	}
	if snap(7) != snap(7) {
		t.Fatal("same injected RNG seed must reproduce the run exactly")
	}
	a, b := snap(7), snap(8)
	if a == b {
		t.Fatal("different injected RNG seeds produced identical runs; Config.RNG is not being used")
	}
}

// TestSeedMatchesInjectedRNG checks that Config.Seed and an explicitly
// injected rand.New(rand.NewSource(Seed)) are the same stream: RNG
// injection must not change behavior, only ownership.
func TestSeedMatchesInjectedRNG(t *testing.T) {
	viaSeed := smallConfig(PolicyRandom)
	viaSeed.Seed = 11
	rtA, _ := run(t, viaSeed, coinTrace(6000), 8)

	viaRNG := smallConfig(PolicyRandom)
	viaRNG.RNG = rand.New(rand.NewSource(11))
	rtB, _ := run(t, viaRNG, coinTrace(6000), 8)

	if rtA.Snapshot() != rtB.Snapshot() {
		t.Fatal("injected RNG with the config seed must match the Seed-derived stream")
	}
}
