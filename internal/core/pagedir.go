package core

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/tier"
)

// pageDirectory is the runtime's page-metadata table: a dense
// PageID-indexed slice of *pageState. Page IDs are bounded by the
// workload footprint (the dense-directory contract documented in
// HACKING.md), so direct indexing replaces the former map without a
// size penalty that matters — and without hashing on every access.
//
// States are allocated from a chunked arena rather than a value slice:
// callers hold *pageState across simulated events (closures capture
// them), so the backing storage must never move. Chunks are fixed-size
// arrays appended to as the footprint grows; handed-out pointers stay
// valid forever. A free list fronts the arena so any state a future
// caller releases is recycled before the arena grows; the current
// runtime never releases states (page metadata — predictor history,
// dirty bits — must outlive residency), so in practice the arena only
// grows toward the footprint and steady state allocates nothing.
type pageDirectory struct {
	dir    []*pageState
	chunks [][]pageState
	cursor int // states carved from the arena (chunk = cursor>>shift)
	free   []*pageState

	// Copy-on-write fork state (child directories only; nil otherwise).
	// base is the frozen parent's index: dir starts as a copy of it, so
	// entries point into the parent's arena until their page-ID chunk is
	// materialized. owned[c] records that ID-chunk c (pages [c<<pageChunkShift,
	// (c+1)<<pageChunkShift)) has been copied into this directory's own
	// arena; chunks at or beyond len(base) hold no shared entries and are
	// implicitly owned. Materialization is chunk-granular so a child that
	// dirties one page of a region pays one copy, and the *pageState
	// pointers it hands out after materialization are stable forever
	// (the arena never moves).
	base  []*pageState
	owned []bool
}

// pageChunkSize is the arena growth quantum (structs per chunk) and the
// CoW materialization granule.
const (
	pageChunkShift = 10
	pageChunkSize  = 1 << pageChunkShift
)

// reserve presizes the directory index for an n-page footprint so the
// per-access path never grows it.
func (d *pageDirectory) reserve(n int) {
	if n > len(d.dir) {
		nv := make([]*pageState, n)
		copy(nv, d.dir)
		d.dir = nv
	}
}

// lookup returns p's state, creating it (on the SSD, clean) on first
// reference. The fast path is one unsigned compare (rejecting negative
// IDs and out-of-range IDs together) plus the slice load, small enough
// to inline into the per-access path; first references and growth take
// the outlined slow path.
func (d *pageDirectory) lookup(p tier.PageID) *pageState {
	if uint64(p) < uint64(len(d.dir)) {
		if ps := d.dir[p]; ps != nil {
			return ps
		}
	}
	return d.lookupSlow(p)
}

// lookupSlow handles first references and directory growth; both are
// amortized off the per-access steady state.
//
//gmt:coldpath
func (d *pageDirectory) lookupSlow(p tier.PageID) *pageState {
	if p < 0 {
		panic(fmt.Sprintf("core: negative page id %d", p))
	}
	if int64(p) >= int64(len(d.dir)) {
		d.reserve(growSize(len(d.dir), int(p)+1))
	}
	if ps := d.dir[p]; ps != nil {
		return ps
	}
	ps := d.alloc()
	d.dir[p] = ps
	return ps
}

// get returns p's existing state; it panics if p was never referenced
// (every caller holds a page that has been through lookup).
func (d *pageDirectory) get(p tier.PageID) *pageState {
	if p < 0 || int64(p) >= int64(len(d.dir)) || d.dir[p] == nil {
		panic(fmt.Sprintf("core: page %d has no directory entry", p))
	}
	return d.dir[p]
}

// alloc hands out a zeroed state: recycled from the free list when one
// exists, otherwise carved from the arena. The zero pageState is a
// clean SSD-resident page (locSSD == 0). Carved states are cleared
// explicitly because a reset directory re-carves storage the previous
// run dirtied.
func (d *pageDirectory) alloc() *pageState {
	if k := len(d.free); k > 0 {
		ps := d.free[k-1]
		d.free = d.free[:k-1]
		*ps = pageState{}
		return ps
	}
	ci, off := d.cursor>>pageChunkShift, d.cursor&(pageChunkSize-1)
	if ci == len(d.chunks) {
		d.chunks = append(d.chunks, make([]pageState, pageChunkSize))
	}
	ps := &d.chunks[ci][off]
	d.cursor++
	*ps = pageState{}
	return ps
}

// reset empties the directory, retaining the index capacity and the
// state arena: the next run re-carves the same chunks instead of
// re-allocating its footprint. Forked directories cannot reset — their
// index aliases a parent's arena, and resetting would not return the
// shared storage.
func (d *pageDirectory) reset() {
	if d.base != nil {
		panic("core: reset of a forked page directory")
	}
	for i := range d.dir {
		d.dir[i] = nil
	}
	d.free = d.free[:0]
	d.cursor = 0
}

// fork returns a copy-on-write child of d. The child shares d's
// pageStates through a copied index until a chunk is materialized; d
// itself must be frozen by the caller (the parent runtime never runs
// again), since a parent mutation would be visible through every
// unmaterialized chunk.
func (d *pageDirectory) fork() pageDirectory {
	base := d.dir
	return pageDirectory{
		dir:   append([]*pageState(nil), base...),
		base:  base,
		owned: make([]bool, (len(base)+pageChunkSize-1)>>pageChunkShift),
	}
}

// writable reports whether p's state may be mutated in place: always in
// a non-forked directory, and in a forked one once p's chunk has been
// materialized. The batch hit path consults it before setting dirty
// bits.
//
//gmt:hotpath
func (d *pageDirectory) writable(p tier.PageID) bool {
	if d.base == nil {
		return true
	}
	c := int(p >> pageChunkShift)
	return c >= len(d.owned) || d.owned[c]
}

// own returns p's mutable state, materializing its chunk first in a
// forked directory. p must already have a directory entry. Callers must
// use the returned pointer: a pointer read before the first own() of a
// chunk refers to the parent's (frozen) state.
//
//gmt:hotpath
func (d *pageDirectory) own(p tier.PageID) *pageState {
	if d.base == nil {
		return d.dir[p]
	}
	return d.ownSlow(p)
}

//gmt:coldpath
func (d *pageDirectory) ownSlow(p tier.PageID) *pageState {
	c := int(p >> pageChunkShift)
	if c < len(d.owned) && !d.owned[c] {
		d.materializeChunk(c)
	}
	return d.dir[p]
}

// materializeChunk deep-copies ID-chunk c's shared entries into this
// directory's arena. Only entries still aliased to the parent move
// (pages first referenced by the child already live in its arena). The
// waiter queue is nilled rather than copied: a parent is only forked
// at quiescence, where no waiter queue is live, and sharing nodes
// across the fork would alias the parent's free list.
//
//gmt:coldpath
func (d *pageDirectory) materializeChunk(c int) {
	lo := c << pageChunkShift
	hi := lo + pageChunkSize
	if hi > len(d.base) {
		hi = len(d.base)
	}
	for p := lo; p < hi; p++ {
		if d.base[p] == nil || d.dir[p] != d.base[p] {
			continue
		}
		ps := d.alloc()
		*ps = *d.base[p]
		ps.waitHead, ps.waitTail = nil, nil
		d.dir[p] = ps
	}
	d.owned[c] = true
}

// each calls fn for every referenced page in ascending page-ID order.
func (d *pageDirectory) each(fn func(tier.PageID, *pageState)) {
	for i, ps := range d.dir {
		if ps != nil {
			fn(tier.PageID(i), ps)
		}
	}
}

// growSize doubles have toward need (minimum 64) to amortize index
// growth for workloads that never declared a footprint.
func growSize(have, need int) int {
	size := have
	if size < 64 {
		size = 64
	}
	for size < need {
		size *= 2
	}
	return size
}
