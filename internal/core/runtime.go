// Package core implements GMT, the GPU-orchestrated 3-tier memory
// runtime of the paper: Tier-1 GPU memory managed by clock replacement,
// Tier-2 host memory looked up and populated directly by GPU threads, and
// the Tier-3 SSD reached through GPU-driven NVMe queues.
//
// Four placement policies are provided:
//
//   - PolicyBaM: the 2-tier baseline (GPU memory + SSD only); Tier-2 is
//     never consulted. This is the substrate GMT builds on.
//   - PolicyTierOrder (§2.1.1): every Tier-1 victim goes to Tier-2, with
//     clock replacement in both tiers.
//   - PolicyRandom (§2.1.2): a coin flip decides whether a victim goes to
//     Tier-2 or straight to the SSD (the latter only if dirty).
//   - PolicyReuse (§2.1.3): the paper's contribution — Remaining Reuse
//     Distance prediction via VTD sampling + OLS regression + a 3-state
//     Markov history predictor, with the 80% Tier-2 backfill heuristic of
//     §2.2.
//
// The up-path from SSD always bypasses Tier-2 (§2, "Bypassing").
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/invariant"
	"github.com/gmtsim/gmt/internal/nvme"
	"github.com/gmtsim/gmt/internal/pcie"
	"github.com/gmtsim/gmt/internal/reuse"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
	"github.com/gmtsim/gmt/internal/xfer"
)

// PolicyKind selects the Tier-1 eviction placement policy.
type PolicyKind uint8

// The policies evaluated in the paper.
const (
	PolicyBaM PolicyKind = iota
	PolicyTierOrder
	PolicyRandom
	PolicyReuse
	// PolicyOracle is an offline upper bound: Belady-style victim
	// selection and placement using perfect future knowledge (the
	// policy GMT-Reuse approximates, §2.1.3). Requires Config.Future.
	PolicyOracle
)

func (p PolicyKind) String() string {
	switch p {
	case PolicyBaM:
		return "BaM"
	case PolicyTierOrder:
		return "GMT-TierOrder"
	case PolicyRandom:
		return "GMT-Random"
	case PolicyReuse:
		return "GMT-Reuse"
	case PolicyOracle:
		return "GMT-Oracle"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// PredictorKind selects how GMT-Reuse predicts a candidate's class.
type PredictorKind uint8

// Predictor variants for the ablation of Figure 5's design.
const (
	// PredictorMarkov is the paper's 3-state Markov chain over the two
	// most recent correct classes (default).
	PredictorMarkov PredictorKind = iota
	// PredictorLastClass is a 1-level history: predict the page's last
	// correct class. Fails on alternating patterns (Figure 4c).
	PredictorLastClass
	// PredictorStatic always predicts Medium: place everything Tier-2
	// capacity allows, with no learning.
	PredictorStatic
)

func (k PredictorKind) String() string {
	switch k {
	case PredictorMarkov:
		return "markov"
	case PredictorLastClass:
		return "last-class"
	case PredictorStatic:
		return "static"
	default:
		return fmt.Sprintf("predictor(%d)", uint8(k))
	}
}

// Config parameterizes a Runtime.
type Config struct {
	Policy PolicyKind

	// Tier1Pages / Tier2Pages size the top two tiers in 64 KiB pages.
	// Tier2Pages is ignored under PolicyBaM.
	Tier1Pages int
	Tier2Pages int
	PageSize   int64

	// Seed drives all randomized decisions (PolicyRandom's coin, the
	// Reuse policy's no-history fallback).
	Seed int64

	// RNG, when non-nil, supplies the runtime's random stream instead of
	// one derived from Seed. The runtime must own the stream exclusively:
	// the determinism contract (same seed => bit-identical runs) only
	// holds when no other component draws from it. Never pass a stream
	// backed by math/rand's global source — cmd/gmtlint's noglobalrand
	// analyzer rejects such code.
	RNG *rand.Rand

	// Tier2Lookup is the critical-path cost of probing the Tier-2
	// directory on a Tier-1 miss (§3.4: ≈50 ns).
	Tier2Lookup sim.Time
	// Tier2EvictOverhead is the cost of running a replacement pass over
	// host-resident Tier-2 metadata (§2.1.1 drawback (iii): "the
	// additional cost of a replacement mechanism for host memory").
	// Paid by TierOrder/Random when displacing a Tier-2 resident;
	// GMT-Reuse never evicts Tier-2 (§2.1.3).
	Tier2EvictOverhead sim.Time
	// HostSWOverhead is the GPU-side software cost of a Tier-2 hit
	// beyond the raw transfer (pin bookkeeping, directory update);
	// calibrated so an unloaded Tier-2 hit costs ≈50 µs end to end.
	HostSWOverhead sim.Time

	// SampleTarget / SampleBatch configure the VTD sampling pipeline
	// (§2.1.3: pipelined batches, default every 10 000 samples).
	SampleTarget int
	SampleBatch  int

	// BackfillThreshold / BackfillWindow implement §2.2's heuristic: if
	// more than the threshold fraction of the last window Tier-1
	// evictions were classified Long, place victims into Tier-2 anyway.
	// Threshold > 1 disables the heuristic (ablation).
	BackfillThreshold float64
	BackfillWindow    int

	// MaxClockRetries bounds how many consecutive short-reuse clock
	// candidates GMT-Reuse may retain before evicting anyway.
	MaxClockRetries int

	// Predictor selects GMT-Reuse's class predictor (ablation of
	// §2.1.3's "a simple 2-level history suffices").
	Predictor PredictorKind

	// UnpipelinedRegression is the §2.1.3 strawman: regression
	// coefficients publish only once the full sample target is
	// collected, instead of refining every batch. The paper chose
	// pipelining because it "results in better placement for the early
	// part of the execution".
	UnpipelinedRegression bool

	// HistorySample, when positive, records a metrics snapshot every
	// that many accesses (the time series behind warmup studies).
	HistorySample int

	// AsyncEviction implements the paper's §5 future-work extension:
	// Tier-1 -> Tier-2 victim placements are performed in the
	// background instead of by the faulting warp, taking the placement
	// transfer off the miss's critical path (it still contends for the
	// PCIe link).
	AsyncEviction bool

	// PrefetchDegree enables sequential prefetch on demand SSD fills
	// (§2's "When?" discussion: placement in conjunction with
	// prefetching): after filling page p, up to PrefetchDegree
	// successor pages still homed on the SSD are fetched into free
	// Tier-1 slots. Prefetches never evict resident pages.
	PrefetchDegree int

	// UpPathThroughTier2 is the ablation of §2's up-path bypass: when
	// set, SSD fills stage through Tier-2 (an extra hop and Tier-2
	// churn) instead of landing directly in Tier-1. The paper argues —
	// and the ablation confirms — that bypassing is better.
	UpPathThroughTier2 bool

	// Future is the exact upcoming access sequence, required by
	// PolicyOracle (and ignored otherwise). It must match the stream
	// the GPU will issue.
	Future []tier.PageID

	// FootprintPages, when positive, declares the workload's page-ID
	// bound (max page ID + 1). The runtime presizes its dense page
	// directory and the tier residency indices to it, so the
	// steady-state per-access path performs zero allocations. Runs
	// work without it — the directories grow by doubling — but pay
	// occasional growth copies.
	FootprintPages int

	// Transfer calibrates Tier-1<->Tier-2 movement; SSD the drive;
	// SSDCount stripes pages across that many identical drives (BaM's
	// bandwidth-scaling configuration; the paper's testbed used 1);
	// HostLanes is the GPU<->host PCIe width.
	Transfer  xfer.Config
	SSD       nvme.Config
	SSDCount  int
	HostLanes int

	// Tier2Policy overrides the Tier-2 replacement policy. Empty keeps
	// the historical per-policy defaults (Clock under PolicyTierOrder,
	// FIFO otherwise), so existing configurations stay byte-identical.
	// Ignored under PolicyBaM, which has no Tier-2.
	Tier2Policy tier.StorePolicy

	// TrackTier2Reuse records, for every page reloaded from Tier-2, the
	// interval since its placement there (time-to-first-reuse). The
	// samples feed stats.Run.Tier2ReuseP50/P99. Off by default: the
	// sample slice grows with Tier-2 hit count, which would break the
	// zero-alloc guarantee of runs that don't ask for it.
	TrackTier2Reuse bool
}

// DefaultConfig mirrors the paper's default platform at 1/1024 of the
// paper's capacities: Tier-1 16 GB -> 256 pages ... callers normally
// override the tier sizes; see the workload package for experiment
// scaling.
func DefaultConfig() Config {
	return Config{
		Policy:             PolicyReuse,
		Tier1Pages:         1024,
		Tier2Pages:         4096,
		PageSize:           64 * 1024,
		Seed:               1,
		Tier2Lookup:        50 * sim.Nanosecond,
		Tier2EvictOverhead: 4 * sim.Microsecond,
		HostSWOverhead:     32 * sim.Microsecond,
		SampleTarget:       20_000,
		SampleBatch:        4_000,
		BackfillThreshold:  0.8,
		BackfillWindow:     64,
		MaxClockRetries:    8,
		Transfer:           xfer.DefaultConfig(),
		SSD:                nvme.DefaultConfig(),
		HostLanes:          16,
	}
}

type location uint8

const (
	locSSD location = iota
	locTier1
	locTier2
	locInFlight
)

type pageState struct {
	loc location
	// t1slot caches the Tier-1 clock slot while loc == locTier1 (set at
	// install), so the hit path touches the clock's reference bitmap
	// directly instead of re-resolving page -> slot per access.
	t1slot int32
	dirty  bool
	// pendingDirty records writes that arrive while the page is in
	// flight; applied at install.
	pendingDirty bool
	// evictVTD is the global access counter at the last Tier-1
	// eviction; awaitingEval marks that the next access should evaluate
	// that eviction's placement.
	evictVTD     int64
	awaitingEval bool
	// Markov predictor state (Figure 5): the last correct class, and
	// the class predicted at the last eviction.
	lastCorrect   reuse.Class
	hasHistory    bool
	predicted     reuse.Class
	hasPrediction bool
	// provisional marks a Tier-2 resident placed without a trained
	// prediction (sampling-phase coin or the backfill heuristic). A
	// trained Medium placement may reclaim a provisional slot; trained
	// residents are never displaced (§2.1.3's equivalence-class
	// rationale). coinPlaced further marks sampling-phase coin
	// placements, which the backfill heuristic may also reclaim —
	// backfill-placed residents themselves are stable, preserving the
	// cyclic-scan retention that makes Hotspot win (§3.3).
	provisional bool
	coinPlaced  bool
	// nextUse is the global access index of the page's next reference
	// (PolicyOracle only; -1 when the page is never used again).
	nextUse int64
	// prefetched marks a speculative fill not yet demanded.
	prefetched bool
	// placedAt is the instant of the page's most recent Tier-2
	// placement (Config.TrackTier2Reuse time-to-first-reuse metric).
	placedAt sim.Time

	// waitHead/waitTail queue the typed completion callbacks of accesses
	// that arrived while the page was in flight (FIFO; run at install).
	// Nodes come from the runtime's chunk-allocated free list, so joining
	// an in-flight page allocates nothing in steady state.
	waitHead, waitTail *waiterNode
}

// waiterNode is one queued access completion on an in-flight page:
// call(ctx, arg) runs when the page installs. The miss pipeline used to
// retain `done func()` closures here; the typed triple carries the same
// callback without a per-access closure allocation.
type waiterNode struct {
	call sim.EventFunc
	ctx  any
	arg  int64
	next *waiterNode
}

// slotWait is one fetch stalled because every Tier-1 slot is committed
// to other in-flight fetches; start(ctx, 0) runs when an install frees
// capacity.
type slotWait struct {
	start sim.EventFunc
	ctx   any
}

// Storage is the drive-side interface the runtime issues I/O against:
// a single *nvme.Disk or a striped *nvme.Array.
type Storage interface {
	Read(lba, n int64, done func(nvme.Completion))
	// ReadCall is the typed-callback form of Read: call(ctx, arg) runs at
	// completion with no per-command closure (see nvme.Disk.ReadCall).
	ReadCall(lba, n int64, call sim.EventFunc, ctx any, arg int64)
	Write(lba, n int64, done func(nvme.Completion))
	Stats() nvme.Stats
}

// Runtime is a GMT memory manager. It implements gpu.MemoryManager; all
// orchestration happens in simulated GPU threads (event callbacks), never
// on a modeled host CPU.
type Runtime struct {
	eng *sim.Engine
	cfg Config

	ssd      Storage
	hostLink *pcie.Link
	mover    *xfer.Engine

	t1 *tier.Clock
	t2 tier.Store // nil under PolicyBaM

	// t1page is the SoA residency probe for the batched hit path:
	// t1page[p] is 0 when p is not Tier-1 resident and the clock slot +1
	// when it is (maintained at install and both eviction sites). A
	// batch hit needs one bounds check and one int32 load per page,
	// never a *pageState dereference.
	t1page []int32
	// batchOK gates AccessSyncBatch: false when any per-access side
	// effect the batch cannot replicate is configured (history
	// snapshots, prefetch, oracle future tracking) or the runtime was
	// frozen by Fork.
	batchOK bool

	dir pageDirectory
	// reserved counts Tier-1 slots committed to in-flight fetches;
	// slotWaiters holds fetches stalled because every slot is either
	// occupied by another in-flight fetch or unpickable. The queue is a
	// head-cursor FIFO (mirroring sim.Server.waiters) so draining it
	// reuses the backing array instead of reslicing it away.
	reserved    int
	slotWaiters []slotWait
	slotHead    int

	// fetchPool / placePool / waiterFree recycle the per-miss pipeline
	// records and waiter nodes so the steady-state miss path allocates
	// nothing; pool misses are amortized by chunk allocation.
	fetchPool  []*fetch
	placePool  []*placement
	waiterFree *waiterNode

	vtd        int64
	sampler    *reuse.Sampler
	markov     reuse.Markov
	classifier reuse.Classifier
	rng        *rand.Rand
	// historySample is cfg.HistorySample pre-widened to int64 so the
	// per-access modulus needs no conversion; hotAux is true when any
	// sampling work (history snapshots, the reuse sampler) must run per
	// access, folding those checks into one branch on the hit path.
	historySample int64
	hotAux        bool
	// nextOcc[i] is the next access index of the page accessed at
	// index i (PolicyOracle only; -1 = never again).
	nextOcc []int64

	// Ring of recent eviction classifications for the 80% heuristic.
	recentLong []bool
	recentPos  int
	recentN    int

	m       stats.Run
	history []stats.Run

	// reuseNS collects Tier-2 time-to-first-reuse intervals when
	// Config.TrackTier2Reuse is set (nil otherwise).
	reuseNS []int64

	// frozen marks a runtime that has been forked: its state is shared
	// copy-on-write with children and must never change again. Mutating
	// entry points assert against it under -tags gmtinvariants.
	frozen bool
	// statsBase carries the SSD counters a forked child inherited from
	// its parent's prefix; Snapshot folds them in so a forked run
	// reports the same drive totals a monolithic run would.
	statsBase nvme.Stats
}

var _ gpu.SyncMemoryManager = (*Runtime)(nil)
var _ gpu.BatchSyncMemoryManager = (*Runtime)(nil)
var _ gpu.CallSyncMemoryManager = (*Runtime)(nil)

// NewRuntime builds a runtime (and its devices) on eng.
func NewRuntime(eng *sim.Engine, cfg Config) *Runtime {
	if cfg.Tier1Pages < 1 {
		panic("core: Tier1Pages must be >= 1")
	}
	if cfg.PageSize <= 0 {
		panic("core: PageSize must be positive")
	}
	storage := newStorage(eng, cfg)
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	rt := &Runtime{
		eng:      eng,
		cfg:      cfg,
		ssd:      storage,
		hostLink: pcie.NewLink(eng, cfg.HostLanes),
		t1:       tier.NewClock(cfg.Tier1Pages),
		rng:      rng,
		classifier: reuse.Classifier{
			Tier1Pages: int64(cfg.Tier1Pages),
			Tier2Pages: int64(cfg.Tier2Pages),
		},
	}
	rt.mover = xfer.NewEngine(eng, rt.hostLink, cfg.Transfer)
	rt.t2 = newTier2(cfg)
	if cfg.Policy == PolicyReuse {
		rt.sampler = reuse.NewSampler(cfg.SampleTarget, cfg.SampleBatch)
		rt.sampler.SetPipelined(!cfg.UnpipelinedRegression)
		w := cfg.BackfillWindow
		if w < 1 {
			w = 1
		}
		rt.recentLong = make([]bool, w)
	}
	if cfg.Policy == PolicyOracle {
		if len(cfg.Future) == 0 {
			panic("core: PolicyOracle requires Config.Future")
		}
		rt.nextOcc = nextOccurrences(cfg.Future)
	}
	if cfg.FootprintPages > 0 {
		rt.dir.reserve(cfg.FootprintPages)
		rt.t1.Reserve(cfg.FootprintPages)
		if rt.t2 != nil {
			rt.t2.Reserve(cfg.FootprintPages)
		}
		rt.t1page = make([]int32, cfg.FootprintPages)
	}
	rt.m.Policy = cfg.Policy.String()
	rt.historySample = int64(cfg.HistorySample)
	rt.hotAux = rt.historySample > 0 || rt.sampler != nil
	rt.batchOK = rt.historySample == 0 && cfg.PrefetchDegree == 0 && rt.nextOcc == nil
	return rt
}

// newStorage builds the drive (or striped array) for cfg on eng.
func newStorage(eng *sim.Engine, cfg Config) Storage {
	if cfg.SSDCount > 1 {
		return nvme.NewArray(eng, cfg.SSD, cfg.SSDCount)
	}
	return nvme.New(eng, cfg.SSD)
}

// newTier2 builds the Tier-2 store for cfg (nil under PolicyBaM): the
// configured override, Clock under TierOrder (§2.1.1), FIFO otherwise
// (§2.2). Shared between NewRuntime and Fork, which gives each child a
// fresh, empty store.
func newTier2(cfg Config) tier.Store {
	if cfg.Policy == PolicyBaM {
		return nil
	}
	if cfg.Tier2Pages < 1 {
		panic("core: Tier2Pages must be >= 1 for 3-tier policies")
	}
	switch {
	case cfg.Tier2Policy != "":
		return tier.NewStore(cfg.Tier2Policy, cfg.Tier2Pages)
	case cfg.Policy == PolicyTierOrder:
		return tier.NewClock(cfg.Tier2Pages)
	default:
		return tier.NewFIFO(cfg.Tier2Pages)
	}
}

// Reset returns the runtime — and the engine it schedules on — to the
// state NewRuntime(rt.Engine(), cfg) would construct, retaining the
// large allocations a fresh build would have to repeat: the page
// directory's state arena and index, the tier residency arrays (when
// capacities allow), the batch-path probe array, the engine's event
// arena, and every pipeline pool (fetches, placements, waiter nodes,
// NVMe requests, transfer moves). exp's worker pool recycles runtimes
// across sweep points through this; the contract is byte-identical
// output versus a fresh runtime, pinned by the recycled-vs-fresh
// differential test and enforced at suite scale by gmtbench
// -comparebench.
//
// Devices and tier structures whose shape cfg changes (different drive
// config, lane count, capacities, or Tier-2 policy) are rebuilt rather
// than reset; everything shape-compatible is reset in place.
//
// Reset panics on a forked runtime: a frozen parent's state is aliased
// by its children, and a child's directory aliases its parent's arena.
func (rt *Runtime) Reset(cfg Config) {
	if rt.frozen {
		panic("core: Reset of a frozen (forked) runtime")
	}
	if rt.dir.base != nil {
		panic("core: Reset of a forked child runtime")
	}
	if cfg.Tier1Pages < 1 {
		panic("core: Tier1Pages must be >= 1")
	}
	if cfg.PageSize <= 0 {
		panic("core: PageSize must be positive")
	}
	rt.eng.Reset()

	// Storage: reset in place when the drive shape is unchanged.
	if cfg.SSD == rt.cfg.SSD && cfg.SSDCount == rt.cfg.SSDCount {
		resetStorage(rt.ssd)
	} else {
		rt.ssd = newStorage(rt.eng, cfg)
	}
	// Host link and mover: the mover holds the link, so a rebuilt link
	// forces a rebuilt mover.
	if cfg.HostLanes == rt.cfg.HostLanes {
		rt.hostLink.Reset()
		if cfg.Transfer == rt.cfg.Transfer {
			rt.mover.Reset()
		} else {
			rt.mover = xfer.NewEngine(rt.eng, rt.hostLink, cfg.Transfer)
		}
	} else {
		rt.hostLink = pcie.NewLink(rt.eng, cfg.HostLanes)
		rt.mover = xfer.NewEngine(rt.eng, rt.hostLink, cfg.Transfer)
	}
	// Tiers.
	if cfg.Tier1Pages == rt.cfg.Tier1Pages {
		rt.t1.Reset()
	} else {
		rt.t1 = tier.NewClock(cfg.Tier1Pages)
	}
	if tier2Compatible(rt.cfg, cfg) {
		if rt.t2 != nil {
			rt.t2.Reset()
		}
	} else {
		rt.t2 = newTier2(cfg)
	}

	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	rt.cfg = cfg
	rt.rng = rng
	rt.classifier = reuse.Classifier{
		Tier1Pages: int64(cfg.Tier1Pages),
		Tier2Pages: int64(cfg.Tier2Pages),
	}
	rt.dir.reset()
	for i := range rt.t1page {
		rt.t1page[i] = 0
	}
	rt.reserved = 0
	for i := range rt.slotWaiters {
		rt.slotWaiters[i] = slotWait{}
	}
	rt.slotWaiters = rt.slotWaiters[:0]
	rt.slotHead = 0
	rt.vtd = 0
	rt.sampler = nil
	rt.markov = reuse.Markov{}
	rt.recentLong = nil
	rt.recentPos, rt.recentN = 0, 0
	rt.nextOcc = nil
	rt.m = stats.Run{}
	rt.history = rt.history[:0]
	rt.reuseNS = nil
	rt.statsBase = nvme.Stats{}
	if cfg.Policy == PolicyReuse {
		rt.sampler = reuse.NewSampler(cfg.SampleTarget, cfg.SampleBatch)
		rt.sampler.SetPipelined(!cfg.UnpipelinedRegression)
		w := cfg.BackfillWindow
		if w < 1 {
			w = 1
		}
		rt.recentLong = make([]bool, w)
	}
	if cfg.Policy == PolicyOracle {
		if len(cfg.Future) == 0 {
			panic("core: PolicyOracle requires Config.Future")
		}
		rt.nextOcc = nextOccurrences(cfg.Future)
	}
	if cfg.FootprintPages > 0 {
		rt.dir.reserve(cfg.FootprintPages)
		rt.t1.Reserve(cfg.FootprintPages)
		if rt.t2 != nil {
			rt.t2.Reserve(cfg.FootprintPages)
		}
		// A probe array longer than the footprint is behavior-neutral:
		// entries beyond it are zero and no trace page reaches them.
		if len(rt.t1page) < cfg.FootprintPages {
			rt.t1page = make([]int32, cfg.FootprintPages)
		}
	}
	rt.m.Policy = cfg.Policy.String()
	rt.historySample = int64(cfg.HistorySample)
	rt.hotAux = rt.historySample > 0 || rt.sampler != nil
	rt.batchOK = rt.historySample == 0 && cfg.PrefetchDegree == 0 && rt.nextOcc == nil
}

// resetStorage resets a drive or striped array in place.
func resetStorage(s Storage) {
	switch d := s.(type) {
	case *nvme.Disk:
		d.Reset()
	case *nvme.Array:
		d.Reset()
	default:
		panic(fmt.Sprintf("core: cannot reset storage of type %T", s))
	}
}

// tier2Name reports the store policy newTier2 would build for cfg.
func tier2Name(cfg Config) tier.StorePolicy {
	switch {
	case cfg.Tier2Policy != "":
		return cfg.Tier2Policy
	case cfg.Policy == PolicyTierOrder:
		return tier.StoreClock
	default:
		return tier.StoreFIFO
	}
}

// tier2Compatible reports whether the Tier-2 store built for old can be
// Reset in place to serve new: same presence, implementation, and
// capacity.
func tier2Compatible(old, new Config) bool {
	oldBaM, newBaM := old.Policy == PolicyBaM, new.Policy == PolicyBaM
	if oldBaM || newBaM {
		return oldBaM == newBaM
	}
	return old.Tier2Pages == new.Tier2Pages && tier2Name(old) == tier2Name(new)
}

// nextOccurrences computes, for each position, the next position of the
// same page (-1 if none). The last-seen table is a slice keyed by page
// ID (IDs are footprint-bounded); negative sentinel IDs — barrier
// markers some callers leave in their traces — get a small mirror slice
// keyed by ^id, keeping the whole computation map-free.
func nextOccurrences(future []tier.PageID) []int64 {
	var bound, negBound int64
	for _, p := range future {
		if p >= 0 {
			if int64(p)+1 > bound {
				bound = int64(p) + 1
			}
		} else if -int64(p) > negBound {
			negBound = -int64(p)
		}
	}
	next := make([]int64, len(future))
	last := make([]int64, bound)
	lastNeg := make([]int64, negBound)
	for i := range last {
		last[i] = -1
	}
	for i := range lastNeg {
		lastNeg[i] = -1
	}
	for i := len(future) - 1; i >= 0; i-- {
		var cell *int64
		if p := future[i]; p >= 0 {
			cell = &last[p]
		} else {
			cell = &lastNeg[-int64(p)-1]
		}
		next[i] = *cell
		*cell = int64(i)
	}
	return next
}

// Engine exposes the engine this runtime schedules on (for forked
// children, the engine passed to Fork).
func (rt *Runtime) Engine() *sim.Engine { return rt.eng }

// SSD exposes the simulated drive (for experiment-level stats).
func (rt *Runtime) SSD() Storage { return rt.ssd }

// HostLink exposes the GPU<->host PCIe link.
func (rt *Runtime) HostLink() *pcie.Link { return rt.hostLink }

// Mover exposes the Tier-1<->Tier-2 transfer engine.
func (rt *Runtime) Mover() *xfer.Engine { return rt.mover }

func (rt *Runtime) page(p tier.PageID) *pageState {
	return rt.dir.lookup(p)
}

// Access implements gpu.MemoryManager: one coalesced page reference.
//
//gmt:hotpath
func (rt *Runtime) Access(a gpu.Access, done func()) {
	if rt.AccessSyncCall(a, sim.CallFunc, done, 0) {
		done()
	}
}

// AccessSync implements gpu.SyncMemoryManager. A Tier-1 hit completes
// inline — the return value true stands in for the done() call the
// classic path would make synchronously, and done is neither retained
// nor invoked. Every other location takes the asynchronous machinery
// and will call done exactly once when the page lands. (Compat wrapper:
// the GPU rides AccessSyncCall, the typed form.)
//
//gmt:hotpath
func (rt *Runtime) AccessSync(a gpu.Access, done func()) bool {
	return rt.AccessSyncCall(a, sim.CallFunc, done, 0)
}

// AccessSyncCall implements gpu.CallSyncMemoryManager: the typed form of
// AccessSync. On a Tier-1 hit it returns true and the callback is
// neither retained nor invoked; otherwise call(ctx, arg) runs exactly
// once when the page lands. Passing a top-level function with a pointer
// context keeps the whole miss pipeline — waiter queue, slot
// reservation, eviction placement, device completion — free of
// per-access allocations.
//
//gmt:hotpath
func (rt *Runtime) AccessSyncCall(a gpu.Access, call sim.EventFunc, ctx any, arg int64) bool {
	if invariant.Enabled {
		invariant.Assert(rt.t1.Len()+rt.reserved <= rt.t1.Capacity(),
			"core: tier-1 oversubscribed: %d resident + %d reserved > %d slots",
			rt.t1.Len(), rt.reserved, rt.t1.Capacity())
		rt.hostLink.CheckInvariants()
	}
	idx := rt.vtd
	rt.vtd++
	rt.m.Accesses++
	if rt.hotAux {
		rt.accessAux(a.Page)
	}
	// Open-coded pageDirectory.lookup fast path: lookup's inline cost
	// lands just over the compiler's budget, and this is the hottest
	// call site in the simulator, so the one-compare resident case is
	// spelled out here and everything else takes the outlined slow path.
	var ps *pageState
	if dir := rt.dir.dir; uint64(a.Page) < uint64(len(dir)) {
		ps = dir[a.Page]
	}
	if ps == nil {
		ps = rt.dir.lookupSlow(a.Page)
	}
	if rt.nextOcc != nil {
		if idx >= int64(len(rt.nextOcc)) {
			panic("core: access beyond Config.Future")
		}
		ps = rt.dir.own(a.Page)
		ps.nextUse = rt.nextOcc[idx]
	}
	if ps.loc == locTier1 {
		rt.m.Tier1Hits++
		rt.t1.TouchSlot(ps.t1slot)
		if a.Write {
			// A write to a fork-inherited page materializes its chunk
			// first; the dirty bit must land on this runtime's copy.
			if !rt.dir.writable(a.Page) {
				ps = rt.dir.ownSlow(a.Page)
			}
			ps.dirty = true
		}
		if ps.prefetched {
			ps.prefetched = false
			rt.m.PrefetchHits++
		}
		return true
	}
	switch ps.loc {
	case locInFlight:
		// In-flight pages were materialized when their fetch began, so
		// the waiter append below never lands on shared state.
		invariant.Assert(rt.dir.writable(a.Page),
			"core: in-flight page %d aliases a fork parent", a.Page)
		rt.m.InFlightJoins++
		if a.Write {
			ps.pendingDirty = true
		}
		if ps.prefetched {
			ps.prefetched = false
			rt.m.PrefetchHits++
		}
		rt.queueWaiter(ps, call, ctx, arg)
	case locTier2:
		ps = rt.dir.own(a.Page)
		rt.evaluateEviction(ps, idx)
		rt.fetchFromTier2(a, ps, call, ctx, arg)
	case locSSD:
		ps = rt.dir.own(a.Page)
		rt.evaluateEviction(ps, idx)
		rt.fetchFromSSD(a, ps, call, ctx, arg)
	default:
		panic("core: invalid page location")
	}
	return false
}

// AccessSyncBatch implements gpu.BatchSyncMemoryManager: it consumes
// the leading run of accs (at most max) that are Tier-1 hits, applying
// exactly the per-access state a run of hitting AccessSync calls would
// — slot touch, dirty bit on writes, reuse-sampler observation — with
// the counters (vtd, accesses, hits) applied once per batch. The run
// stops at the first non-hit: a barrier sentinel, a page outside the
// directory, a miss, or a write to a fork-inherited page that has not
// been materialized yet (the scalar path copies it first). Whole
// configurations whose per-access side effects cannot be replayed in
// bulk (history snapshots, prefetch, the oracle's future cursor) refuse
// batching outright via batchOK and fall back to AccessSync.
//
//gmt:hotpath
func (rt *Runtime) AccessSyncBatch(accs []gpu.Access, max int) int {
	if !rt.batchOK {
		return 0
	}
	if invariant.Enabled {
		invariant.Assert(rt.t1.Len()+rt.reserved <= rt.t1.Capacity(),
			"core: tier-1 oversubscribed: %d resident + %d reserved > %d slots",
			rt.t1.Len(), rt.reserved, rt.t1.Capacity())
		rt.hostLink.CheckInvariants()
	}
	if max > len(accs) {
		max = len(accs)
	}
	t1p := rt.t1page
	dir := rt.dir.dir
	sampled := rt.sampler != nil
	n := 0
	for n < max {
		a := accs[n]
		// The unsigned compare rejects negative sentinels (barriers)
		// along with pages beyond the probe array.
		if uint64(a.Page) >= uint64(len(t1p)) {
			break
		}
		slot := t1p[a.Page]
		if slot == 0 {
			break
		}
		if a.Write {
			var ps *pageState
			if uint64(a.Page) < uint64(len(dir)) {
				ps = dir[a.Page]
			}
			if ps == nil || !rt.dir.writable(a.Page) {
				break
			}
			ps.dirty = true
		}
		rt.t1.TouchSlot(slot - 1)
		if sampled {
			rt.accessAux(a.Page)
		}
		n++
	}
	if n > 0 {
		rt.vtd += int64(n)
		rt.m.Accesses += int64(n)
		rt.m.Tier1Hits += int64(n)
	}
	return n
}

// accessAux is the cold sampling tail of the access prefix: metric
// history snapshots and reuse-sampler observation. Split out (and gated
// by hotAux) so the hit path pays one predictable branch instead of a
// config conversion and two field tests per access.
//
//gmt:coldpath
func (rt *Runtime) accessAux(p tier.PageID) {
	if rt.historySample > 0 && rt.m.Accesses%rt.historySample == 0 {
		rt.history = append(rt.history, rt.Snapshot())
	}
	if rt.sampler != nil {
		rt.sampler.Observe(p)
	}
}

// evaluateEviction scores the page's previous Tier-1 eviction now that
// its actual remaining VTD is known (§2.1.3 step 2): the actual RVTD is
// the access-counter delta since eviction, the regression projects the
// RRD, Eq. 1 yields the correct class, and the Markov chain learns the
// transition from the previous correct class.
//
//gmt:coldpath
func (rt *Runtime) evaluateEviction(ps *pageState, idx int64) {
	if rt.cfg.Policy != PolicyReuse || !ps.awaitingEval {
		return
	}
	ps.awaitingEval = false
	rvtd := idx - ps.evictVTD
	rrd := rt.sampler.Coeffs().Estimate(rvtd)
	correct := rt.classifier.Classify(rrd)
	if ps.hasPrediction {
		rt.m.Predictions++
		if ps.predicted == correct {
			rt.m.CorrectPredictions++
		}
		ps.hasPrediction = false
	}
	if ps.hasHistory {
		rt.markov.Update(ps.lastCorrect, correct)
	}
	ps.lastCorrect = correct
	ps.hasHistory = true
}

// fetch carries one miss through its fill pipeline: Tier-1 slot
// reservation → lookup/metadata latency → data movement (drive read or
// Tier-2 page move) → install. Fetches are chunk-allocated and pooled
// on the Runtime, and every stage is a top-level EventFunc, so the
// steady-state miss path performs no per-fetch allocation.
type fetch struct {
	rt     *Runtime
	page   tier.PageID
	lookup sim.Time // pre-transfer metadata latency
}

// fetchChunkSize sizes the fetch pool's allocation granule: a pool miss
// carves 64 records at once, bounding warm-up allocations by
// peak-in-flight/64 instead of paying one per record.
const fetchChunkSize = 64

// Typed stages of the fill pipeline (zero-alloc AfterCall/ReadCall/
// MovePageCall paths).

// fetchStartSSD runs once the Tier-1 slot is reserved: the
// lookup/metadata latency elapses, then the drive read is issued.
//
//gmt:hotpath
func fetchStartSSD(ctx any, _ int64) {
	f := ctx.(*fetch)
	f.rt.eng.AfterCall(f.lookup, fetchSSDReady, f, 0)
}

// fetchStartT2 runs once the Tier-1 slot is reserved: the
// lookup/metadata latency elapses, then the page moves down.
//
//gmt:hotpath
func fetchStartT2(ctx any, _ int64) {
	f := ctx.(*fetch)
	f.rt.eng.AfterCall(f.lookup, fetchT2Ready, f, 0)
}

//gmt:hotpath
func fetchSSDReady(ctx any, _ int64) {
	f := ctx.(*fetch)
	f.rt.ssd.ReadCall(int64(f.page), f.rt.cfg.PageSize, fetchLanded, f, 0)
}

//gmt:hotpath
func fetchT2Ready(ctx any, _ int64) {
	f := ctx.(*fetch)
	f.rt.mover.MovePageCall(false, gpu.WarpThreads, fetchMoved, f, 0)
}

// fetchLanded completes an SSD fill.
//
//gmt:hotpath
func fetchLanded(ctx any, _ int64) {
	f := ctx.(*fetch)
	rt, p := f.rt, f.page
	// Recycle before landing: install may trigger further fetches, which
	// are free to reuse this record.
	rt.fetchPool = append(rt.fetchPool, f)
	rt.landFill(p)
}

// fetchMoved completes a Tier-2 page move down.
//
//gmt:hotpath
func fetchMoved(ctx any, _ int64) {
	f := ctx.(*fetch)
	rt, p := f.rt, f.page
	rt.fetchPool = append(rt.fetchPool, f)
	rt.m.PagesToGPU++
	rt.install(p)
}

// newFetch pops a pooled fetch, carving a fresh chunk on a pool miss.
//
//gmt:coldpath
func (rt *Runtime) newFetch() *fetch {
	n := len(rt.fetchPool)
	if n == 0 {
		chunk := make([]fetch, fetchChunkSize)
		for i := range chunk {
			chunk[i].rt = rt
			rt.fetchPool = append(rt.fetchPool, &chunk[i])
		}
		n = len(rt.fetchPool)
	}
	f := rt.fetchPool[n-1]
	rt.fetchPool = rt.fetchPool[:n-1]
	return f
}

// fetchFromTier2 serves a miss from host memory: a useful Tier-2 lookup,
// then a GPU-orchestrated page move down (Hybrid-XT, §2.3).
//
//gmt:hotpath
func (rt *Runtime) fetchFromTier2(a gpu.Access, ps *pageState, call sim.EventFunc, ctx any, arg int64) {
	rt.m.Tier2Lookups++
	rt.m.Tier2Hits++
	if rt.cfg.TrackTier2Reuse {
		rt.noteTier2Reuse(ps)
	}
	// The page leaves Tier-2 the moment the move starts (no duplication
	// across tiers, §2.2). Removing before the eviction triggered by
	// beginFetch means the vacated slot is available to the victim —
	// the "demand miss creates a free slot" flow of §2.2.
	rt.t2.Remove(a.Page)
	f := rt.newFetch()
	f.page = a.Page
	f.lookup = rt.cfg.Tier2Lookup + rt.cfg.HostSWOverhead
	rt.beginFetch(a, ps, call, ctx, arg, fetchStartT2, f)
}

// noteTier2Reuse records the time-to-first-reuse sample for a Tier-2
// hit. Config-gated (TrackTier2Reuse) and growing, so it lives behind a
// coldpath barrier off the miss path.
//
//gmt:coldpath
func (rt *Runtime) noteTier2Reuse(ps *pageState) {
	rt.reuseNS = append(rt.reuseNS, int64(rt.eng.Now()-ps.placedAt))
}

// fetchFromSSD serves a miss from the drive, bypassing Tier-2 on the
// up-path. Under the 3-tier policies the preceding Tier-2 probe was
// wasteful and its latency sits on the critical path (§3.4).
//
//gmt:hotpath
func (rt *Runtime) fetchFromSSD(a gpu.Access, ps *pageState, call sim.EventFunc, ctx any, arg int64) {
	lookup := sim.Time(0)
	if rt.cfg.Policy != PolicyBaM {
		rt.m.Tier2Lookups++
		rt.m.WastefulLookups++
		lookup = rt.cfg.Tier2Lookup
	}
	rt.m.SSDFills++
	f := rt.newFetch()
	f.page = a.Page
	f.lookup = lookup
	rt.beginFetch(a, ps, call, ctx, arg, fetchStartSSD, f)
	if rt.cfg.PrefetchDegree > 0 {
		rt.prefetchAfter(a.Page)
	}
}

// landFill completes an SSD fill: directly into Tier-1 (the paper's
// up-path bypass), or staged through Tier-2 under the ablation flag.
//
//gmt:hotpath
func (rt *Runtime) landFill(p tier.PageID) {
	if !rt.cfg.UpPathThroughTier2 || rt.t2 == nil {
		rt.install(p)
		return
	}
	rt.landFillStaged(p)
}

// landFillStaged is the UpPathThroughTier2 ablation: the page lands in
// a host staging buffer first, then is moved up by the warp, paying the
// host software path and an extra PCIe hop on every fill. Config-gated
// and closure-based, so it sits behind a coldpath barrier.
//
//gmt:coldpath
func (rt *Runtime) landFillStaged(p tier.PageID) {
	//lint:ignore hotclosure UpPathThroughTier2 ablation only; never on the default hot path
	rt.eng.After(rt.cfg.HostSWOverhead, func() {
		rt.mover.MovePage(false, gpu.WarpThreads, func() {
			rt.m.PagesToGPU++
			rt.install(p)
		})
	})
}

// prefetchAfter speculatively fetches sequential successors of a
// demand-missed page into free Tier-1 slots (never evicting for them).
// Config-gated (PrefetchDegree); off the default miss path.
//
//gmt:coldpath
func (rt *Runtime) prefetchAfter(p tier.PageID) {
	for k := 1; k <= rt.cfg.PrefetchDegree; k++ {
		q := p + tier.PageID(k)
		qs := rt.page(q)
		if qs.loc != locSSD {
			continue
		}
		if rt.t1.Len()+rt.reserved >= rt.t1.Capacity() {
			return // no free slot; prefetch never evicts
		}
		qs = rt.dir.own(q)
		rt.reserved++
		qs.loc = locInFlight
		qs.prefetched = true
		rt.m.Prefetches++
		f := rt.newFetch()
		f.page = q
		rt.ssd.ReadCall(int64(q), rt.cfg.PageSize, fetchLanded, f, 0)
	}
}

// beginFetch flips the page in-flight and queues the requester; start
// runs (possibly immediately, with f as its context) once a Tier-1 slot
// has been reserved.
//
//gmt:hotpath
func (rt *Runtime) beginFetch(a gpu.Access, ps *pageState, call sim.EventFunc, ctx any, arg int64, start sim.EventFunc, f *fetch) {
	ps.loc = locInFlight
	if a.Write {
		ps.pendingDirty = true
	}
	rt.queueWaiter(ps, call, ctx, arg)
	rt.acquireSlot(start, f)
}

// queueWaiter appends one typed completion callback to the page's
// in-flight waiter queue. Nodes are free-listed; install returns them
// once dispatched, so the population is bounded by the peak number of
// concurrently queued accesses, not by the footprint.
//
//gmt:hotpath
func (rt *Runtime) queueWaiter(ps *pageState, call sim.EventFunc, ctx any, arg int64) {
	n := rt.waiterFree
	if n == nil {
		n = rt.newWaiterChunk()
	}
	rt.waiterFree = n.next
	n.call, n.ctx, n.arg, n.next = call, ctx, arg, nil
	if ps.waitTail == nil {
		ps.waitHead = n
	} else {
		ps.waitTail.next = n
	}
	ps.waitTail = n
}

// waiterChunkSize sizes the waiter free list's allocation granule.
const waiterChunkSize = 64

// newWaiterChunk carves a fresh chunk of linked waiter nodes, returning
// its head (the chunk's tail terminates the new free list).
//
//gmt:coldpath
func (rt *Runtime) newWaiterChunk() *waiterNode {
	chunk := make([]waiterNode, waiterChunkSize)
	for i := range chunk[:len(chunk)-1] {
		chunk[i].next = &chunk[i+1]
	}
	return &chunk[0]
}

// acquireSlot reserves a Tier-1 slot for an in-flight fetch, evicting a
// victim if needed. When every slot is already committed to other
// in-flight fetches (more concurrently faulting warps than Tier-1
// slots), the fetch queues until an install frees capacity.
//
// When the victim is placed into Tier-2, start is gated on the placement
// transfer: the faulting warp's threads perform the page move to host
// memory before reusing the slot, so indiscriminate placement (TierOrder)
// pays its cost on the miss path while discards are free. Dirty
// writebacks to the SSD stay asynchronous (both BaM and GMT enqueue them
// to the drive's queues and move on).
//
//gmt:hotpath
func (rt *Runtime) acquireSlot(start sim.EventFunc, ctx any) {
	if rt.t1.Len() == 0 && rt.reserved >= rt.t1.Capacity() {
		rt.slotWaiters = append(rt.slotWaiters, slotWait{start, ctx})
		return
	}
	if rt.t1.Len()+rt.reserved >= rt.t1.Capacity() {
		rt.reserved++
		rt.evictTier1(start, ctx)
		return
	}
	rt.reserved++
	start(ctx, 0)
}

// slotQueued reports how many fetches are stalled on slot capacity.
func (rt *Runtime) slotQueued() int { return len(rt.slotWaiters) - rt.slotHead }

// setT1Page records p's clock slot in the batch-path residency probe.
//
//gmt:hotpath
func (rt *Runtime) setT1Page(p tier.PageID, slot int32) {
	if int64(p) >= int64(len(rt.t1page)) {
		rt.growT1Page(int64(p) + 1)
	}
	rt.t1page[p] = slot + 1
}

// clearT1Page marks p non-resident in the batch-path probe.
//
//gmt:hotpath
func (rt *Runtime) clearT1Page(p tier.PageID) {
	if int64(p) < int64(len(rt.t1page)) {
		rt.t1page[p] = 0
	}
}

// growT1Page extends the probe array by doubling, mirroring the page
// directory's growth so steady state never reallocates.
//
//gmt:coldpath
func (rt *Runtime) growT1Page(n int64) {
	size := int64(len(rt.t1page))
	if size < 64 {
		size = 64
	}
	for size < n {
		size *= 2
	}
	nv := make([]int32, size)
	copy(nv, rt.t1page)
	rt.t1page = nv
}

// install completes a fetch: the page enters Tier-1 and all waiters run.
//
//gmt:hotpath
func (rt *Runtime) install(p tier.PageID) {
	ps := rt.dir.own(p)
	rt.reserved--
	ps.t1slot = rt.t1.InsertSlot(p)
	ps.loc = locTier1
	rt.setT1Page(p, ps.t1slot)
	ps.dirty = ps.pendingDirty
	ps.pendingDirty = false
	// Detach the waiter queue before running it (a waiter may re-miss
	// and re-queue), returning each node to the free list with its
	// payload cleared so dispatched callbacks stay collectable.
	n := ps.waitHead
	ps.waitHead, ps.waitTail = nil, nil
	for n != nil {
		next := n.next
		call, ctx, arg := n.call, n.ctx, n.arg
		*n = waiterNode{next: rt.waiterFree}
		rt.waiterFree = n
		call(ctx, arg)
		n = next
	}
	if rt.slotHead < len(rt.slotWaiters) {
		w := rt.slotWaiters[rt.slotHead]
		rt.slotWaiters[rt.slotHead] = slotWait{}
		rt.slotHead++
		if rt.slotHead == len(rt.slotWaiters) {
			rt.slotWaiters = rt.slotWaiters[:0]
			rt.slotHead = 0
		}
		rt.acquireSlot(w.start, w.ctx)
	}
}

// evictTier1 runs the clock and the configured placement policy on the
// victim. ready(rctx, 0) fires when the slot's data is out of the way:
// immediately for discards/writebacks, or after the Tier-2 placement
// transfer.
//
//gmt:hotpath
func (rt *Runtime) evictTier1(ready sim.EventFunc, rctx any) {
	if rt.cfg.Policy == PolicyOracle {
		rt.oracleEvict(ready, rctx)
		return
	}
	victim := rt.t1.Victim()
	var class reuse.Class
	var trained bool
	if rt.cfg.Policy == PolicyReuse {
		victim, class, trained = rt.chooseReuseVictim(victim)
	}
	rt.t1.Remove(victim)
	rt.clearT1Page(victim)
	ps := rt.dir.own(victim)
	ps.loc = locSSD // provisional; placement may move it to Tier-2
	if rt.cfg.Policy == PolicyReuse {
		ps.evictVTD = rt.vtd
		ps.awaitingEval = true
	}
	switch rt.cfg.Policy {
	case PolicyBaM:
		rt.discard(victim, ps)
		ready(rctx, 0)
	case PolicyTierOrder:
		rt.placeInTier2Evicting(victim, ps, ready, rctx)
	case PolicyRandom:
		if rt.rng.Intn(2) == 0 {
			rt.placeInTier2Evicting(victim, ps, ready, rctx)
		} else {
			rt.discard(victim, ps)
			ready(rctx, 0)
		}
	case PolicyReuse:
		rt.placeByClass(victim, ps, class, trained, ready, rctx)
	default:
		panic("core: unknown policy")
	}
}

// chooseReuseVictim applies §2.1.3's candidate loop: short-reuse
// candidates are retained (clock rerun), bounded by MaxClockRetries.
// trained reports whether the class came from the Markov predictor
// rather than a fallback.
func (rt *Runtime) chooseReuseVictim(cand tier.PageID) (tier.PageID, reuse.Class, bool) {
	for retry := 0; ; retry++ {
		class, ok := rt.predictClass(cand)
		if !ok {
			// No history. During the sampling window, proceed with the
			// default strategy (GMT-Random's coin, §2.1.3). Once the
			// regression is trained, an unknown page is most likely a
			// streamed page that will never return: classify it Long so
			// it cannot clog Tier-2 (the backfill heuristic still
			// recycles such pages into an underused Tier-2).
			if rt.sampler.Done() {
				class = reuse.Long
			} else if rt.rng.Intn(2) == 0 {
				class = reuse.Medium
			} else {
				class = reuse.Long
			}
			return cand, class, false
		}
		if class != reuse.Short || retry >= rt.cfg.MaxClockRetries {
			return cand, class, true
		}
		rt.t1.Reject(cand)
		cand = rt.t1.Victim()
	}
}

// predictClass consults the configured predictor for the page's next
// class.
func (rt *Runtime) predictClass(p tier.PageID) (reuse.Class, bool) {
	ps := rt.dir.get(p)
	switch rt.cfg.Predictor {
	case PredictorStatic:
		return reuse.Medium, true
	case PredictorLastClass:
		if !ps.hasHistory {
			return 0, false
		}
		return ps.lastCorrect, true
	default: // PredictorMarkov
		if !ps.hasHistory || !rt.markov.Trained(ps.lastCorrect) {
			return 0, false
		}
		return rt.markov.Predict(ps.lastCorrect), true
	}
}

// placeByClass implements GMT-Reuse's placement: Medium goes to Tier-2
// when a free slot exists (never evicting — §2.1.3: Tier-2 residents are
// peers in the same equivalence class); Long goes down, unless the 80%
// backfill heuristic (§2.2) redirects it into an underused Tier-2. A
// Short class can only reach here via the retry bound; it is treated as
// Medium, the nearest placeable tier.
//
//gmt:hotpath
func (rt *Runtime) placeByClass(victim tier.PageID, ps *pageState, class reuse.Class, trained bool, ready sim.EventFunc, rctx any) {
	ps.predicted = class
	ps.hasPrediction = true
	rt.noteEvictionClass(class)
	switch class {
	case reuse.Short, reuse.Medium:
		ps.provisional = !trained
		ps.coinPlaced = !trained
		if !rt.t2.Full() {
			rt.placeInTier2(victim, ps, ready, rctx)
			return
		}
		// A trained Medium page may reclaim the slot of the oldest
		// provisional resident; trained residents are never displaced.
		if trained && rt.reclaimTier2(psProvisional) {
			rt.placeInTier2Delayed(victim, ps, rt.cfg.Tier2EvictOverhead, ready, rctx)
			return
		}
		rt.discard(victim, ps)
		ready(rctx, 0)
	case reuse.Long:
		if rt.backfillActive() {
			if !rt.t2.Full() {
				rt.m.BackfillPlaced++
				ps.provisional = true
				ps.coinPlaced = false
				rt.placeInTier2(victim, ps, ready, rctx)
				return
			}
			// Backfill may recycle stale sampling-phase coin
			// placements, but never other backfill residents — that
			// stability is what retains a useful subset of a cyclic
			// scan.
			if rt.reclaimTier2(psCoinPlaced) {
				rt.m.BackfillPlaced++
				ps.provisional = true
				ps.coinPlaced = false
				rt.placeInTier2Delayed(victim, ps, rt.cfg.Tier2EvictOverhead, ready, rctx)
				return
			}
		}
		rt.discard(victim, ps)
		ready(rctx, 0)
	default:
		panic("core: unplaceable class")
	}
}

// Reclaim predicates, as top-level functions so the miss path passes
// pre-existing funcs instead of minting closures.

func psProvisional(v *pageState) bool { return v.provisional }
func psCoinPlaced(v *pageState) bool  { return v.coinPlaced }

// reclaimTier2 evicts the FIFO-oldest Tier-2 resident if it satisfies
// eligible, reporting whether a slot was freed.
//
//gmt:hotpath
func (rt *Runtime) reclaimTier2(eligible func(*pageState) bool) bool {
	v := rt.t2.Victim()
	vps := rt.dir.own(v)
	if !eligible(vps) {
		return false
	}
	rt.t2.Remove(v)
	rt.m.Tier2Evictions++
	rt.discard(v, vps)
	return true
}

func (rt *Runtime) noteEvictionClass(class reuse.Class) {
	rt.recentLong[rt.recentPos] = class == reuse.Long
	rt.recentPos = (rt.recentPos + 1) % len(rt.recentLong)
	if rt.recentN < len(rt.recentLong) {
		rt.recentN++
	}
}

func (rt *Runtime) backfillActive() bool {
	if rt.recentN < len(rt.recentLong) {
		return false
	}
	long := 0
	for _, l := range rt.recentLong {
		if l {
			long++
		}
	}
	return float64(long) > rt.cfg.BackfillThreshold*float64(len(rt.recentLong))
}

// placeInTier2Evicting inserts the victim into Tier-2, evicting Tier-2's
// own replacement victim first if full (TierOrder and Random semantics).
//
//gmt:hotpath
func (rt *Runtime) placeInTier2Evicting(victim tier.PageID, ps *pageState, ready sim.EventFunc, rctx any) {
	var overhead sim.Time
	if rt.t2.Full() {
		t2v := rt.t2.Victim()
		rt.t2.Remove(t2v)
		rt.m.Tier2Evictions++
		rt.discard(t2v, rt.dir.own(t2v))
		// The replacement pass over host-resident metadata delays the
		// warp before it can start the placement transfer.
		overhead = rt.cfg.Tier2EvictOverhead
	}
	rt.placeInTier2Delayed(victim, ps, overhead, ready, rctx)
}

// placeInTier2 moves a Tier-1 victim into host memory: metadata first,
// then the data over PCIe, performed by the evicting warp's threads —
// ready fires when the transfer lands.
//
//gmt:hotpath
func (rt *Runtime) placeInTier2(victim tier.PageID, ps *pageState, ready sim.EventFunc, rctx any) {
	rt.placeInTier2Delayed(victim, ps, 0, ready, rctx)
}

// placement carries one Tier-2 placement through its metadata delay and
// page move. Placements are chunk-allocated and pooled on the Runtime
// and their stages are top-level EventFuncs, mirroring the fetch pool.
type placement struct {
	rt    *Runtime
	ready sim.EventFunc
	rctx  any
}

// placeChunkSize sizes the placement pool's allocation granule.
const placeChunkSize = 16

// placementRun starts the page move to host memory.
//
//gmt:hotpath
func placementRun(ctx any, _ int64) {
	pl := ctx.(*placement)
	pl.rt.mover.MovePageCall(true, gpu.WarpThreads, placementDone, pl, 0)
}

// placementDone recycles the placement and unblocks the evicting fetch.
//
//gmt:hotpath
func placementDone(ctx any, _ int64) {
	pl := ctx.(*placement)
	rt, ready, rctx := pl.rt, pl.ready, pl.rctx
	pl.ready, pl.rctx = nil, nil
	rt.placePool = append(rt.placePool, pl)
	if ready != nil {
		ready(rctx, 0)
	}
}

// newPlacement pops a pooled placement, carving a chunk on a miss.
//
//gmt:coldpath
func (rt *Runtime) newPlacement() *placement {
	n := len(rt.placePool)
	if n == 0 {
		chunk := make([]placement, placeChunkSize)
		for i := range chunk {
			chunk[i].rt = rt
			rt.placePool = append(rt.placePool, &chunk[i])
		}
		n = len(rt.placePool)
	}
	pl := rt.placePool[n-1]
	rt.placePool = rt.placePool[:n-1]
	return pl
}

// placeInTier2Delayed reserves the Tier-2 slot immediately (so
// same-instant evictions cannot double-book it) and starts the data move
// after the given metadata-management delay.
//
//gmt:hotpath
func (rt *Runtime) placeInTier2Delayed(victim tier.PageID, ps *pageState, delay sim.Time, ready sim.EventFunc, rctx any) {
	rt.t2.Insert(victim)
	ps.loc = locTier2
	ps.placedAt = rt.eng.Now()
	rt.m.EvictionsToTier2++
	rt.m.PagesToHost++
	if rt.cfg.AsyncEviction && ready != nil {
		// §5 future work: the placement proceeds in the background;
		// the faulting warp does not wait for it.
		ready(rctx, 0)
		ready, rctx = nil, nil
	}
	pl := rt.newPlacement()
	pl.ready, pl.rctx = ready, rctx
	if delay > 0 {
		rt.eng.AfterCall(delay, placementRun, pl, 0)
		return
	}
	placementRun(pl, 0)
}

// discard drops a clean page (its home copy on the SSD is current) or
// writes a dirty one back to the drive.
//
//gmt:hotpath
func (rt *Runtime) discard(p tier.PageID, ps *pageState) {
	ps.loc = locSSD
	if ps.dirty {
		ps.dirty = false
		rt.m.EvictionsToSSD++
		rt.ssd.Write(int64(p), rt.cfg.PageSize, nil)
	} else {
		rt.m.EvictionsDropped++
	}
}

// Snapshot reports the run's metrics. Drive counters are folded in.
func (rt *Runtime) Snapshot() stats.Run {
	m := rt.m
	ds := rt.ssd.Stats()
	// statsBase is the prefix contribution a forked child inherited
	// (zero for ordinary runtimes): fold it in so forked and monolithic
	// runs report identical drive totals.
	m.SSDReads = rt.statsBase.Reads + ds.Reads
	m.SSDWrites = rt.statsBase.Writes + ds.Writes
	m.SSDReadBytes = rt.statsBase.ReadBytes + ds.ReadBytes
	m.SSDWriteBytes = rt.statsBase.WriteBytes + ds.WriteBytes
	if rt.sampler != nil {
		m.RegressionBatches = int64(rt.sampler.Batches())
		m.SamplePairs = int64(rt.sampler.Pairs())
	}
	if n := len(rt.reuseNS); n > 0 {
		v := make([]int64, n)
		copy(v, rt.reuseNS)
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		m.Tier2ReuseP50 = sim.Time(v[(n-1)*50/100])
		m.Tier2ReuseP99 = sim.Time(v[(n-1)*99/100])
		m.Tier2ReuseCount = int64(n)
	}
	return m
}

// History reports the recorded metric snapshots (empty unless
// Config.HistorySample is set). Each entry is cumulative up to its
// sample point.
func (rt *Runtime) History() []stats.Run {
	out := make([]stats.Run, len(rt.history))
	copy(out, rt.history)
	return out
}

// Coeffs reports the published VTD->RD regression (PolicyReuse only).
func (rt *Runtime) Coeffs() reuse.Coeffs {
	if rt.sampler == nil {
		return reuse.Coeffs{}
	}
	return rt.sampler.Coeffs()
}

// MarkovWeights reports the predictor's transition matrix.
func (rt *Runtime) MarkovWeights() [3][3]int64 { return rt.markov.Weights() }

// Tier1Resident reports current Tier-1 occupancy.
func (rt *Runtime) Tier1Resident() int { return rt.t1.Len() }

// Tier2Resident reports current Tier-2 occupancy (0 under PolicyBaM).
func (rt *Runtime) Tier2Resident() int {
	if rt.t2 == nil {
		return 0
	}
	return rt.t2.Len()
}

// CheckInvariants panics if a page is accounted in more than one tier or
// residency counters disagree; tests call it after runs.
func (rt *Runtime) CheckInvariants() {
	t1n, t2n, inflight := 0, 0, 0
	rt.dir.each(func(p tier.PageID, ps *pageState) {
		switch ps.loc {
		case locTier1:
			t1n++
			if !rt.t1.Contains(p) {
				panic(fmt.Sprintf("core: page %d marked Tier-1 but absent from clock", p))
			}
			if rt.t2 != nil && rt.t2.Contains(p) {
				panic(fmt.Sprintf("core: page %d duplicated across tiers", p))
			}
		case locTier2:
			t2n++
			if rt.t2 == nil || !rt.t2.Contains(p) {
				panic(fmt.Sprintf("core: page %d marked Tier-2 but absent", p))
			}
			if rt.t1.Contains(p) {
				panic(fmt.Sprintf("core: page %d duplicated across tiers", p))
			}
		case locInFlight:
			inflight++
		case locSSD:
			if rt.t1.Contains(p) || (rt.t2 != nil && rt.t2.Contains(p)) {
				panic(fmt.Sprintf("core: page %d marked SSD but tier-resident", p))
			}
			if ps.waitHead != nil {
				panic(fmt.Sprintf("core: page %d has stranded waiters", p))
			}
		}
	})
	if t1n != rt.t1.Len() {
		panic(fmt.Sprintf("core: Tier-1 accounting mismatch: %d vs %d", t1n, rt.t1.Len()))
	}
	if rt.t2 != nil && t2n != rt.t2.Len() {
		panic(fmt.Sprintf("core: Tier-2 accounting mismatch: %d vs %d", t2n, rt.t2.Len()))
	}
	if inflight != rt.reserved+rt.slotQueued() {
		panic(fmt.Sprintf("core: reservation mismatch: %d in flight vs %d reserved + %d waiting",
			inflight, rt.reserved, rt.slotQueued()))
	}
}
