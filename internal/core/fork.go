package core

import (
	"fmt"
	"math/rand"
	"reflect"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/pcie"
	"github.com/gmtsim/gmt/internal/reuse"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
	"github.com/gmtsim/gmt/internal/xfer"
)

// PrefixConfig maps cfg to the canonical representative of its
// prefix-equivalence class: two configs produce byte-identical
// simulations of any eviction-free prefix iff their PrefixConfigs are
// equal. The normalized fields are exactly those the runtime consults
// only on the eviction/placement path (Tier-2 sizing and policy, the
// eviction-cost knobs, the backfill heuristic, the class predictor) or
// never before the first replacement decision (Seed: the RNG's first
// draw is a replacement coin). PolicyRandom maps to PolicyTierOrder —
// they differ only in placement — while PolicyReuse stays distinct
// because its sampler observes every access from the first one.
//
// Sweep drivers key shared warm-up parents by PrefixConfig, then Fork
// each sweep point's real config off one canonical parent.
// PolicyOracle configs are their own class (the future stream shapes
// victim choice from the start conceptually; normalizing it buys
// nothing since oracle runs are never phased).
func PrefixConfig(cfg Config) Config {
	if cfg.Policy == PolicyOracle {
		return cfg
	}
	c := cfg
	if c.Policy == PolicyRandom {
		c.Policy = PolicyTierOrder
	}
	c.Seed = 0
	if c.Policy == PolicyBaM {
		c.Tier2Pages = 0
	} else {
		c.Tier2Pages = 1
	}
	c.Tier2Policy = ""
	c.TrackTier2Reuse = false
	c.Tier2EvictOverhead = 0
	c.AsyncEviction = false
	c.BackfillThreshold = 0
	c.BackfillWindow = 0
	c.MaxClockRetries = 0
	c.Predictor = 0
	c.Future = nil
	return c
}

// samePrefixClass reports whether a and b simulate eviction-free
// prefixes byte-identically. DeepEqual (not ==) because Config carries
// a slice and a pointer; this runs once per fork, never per access.
func samePrefixClass(a, b Config) bool {
	return reflect.DeepEqual(PrefixConfig(a), PrefixConfig(b))
}

// Fork returns a child runtime that continues this runtime's state on a
// fresh engine under cfg, sharing page metadata copy-on-write. Sweep
// drivers use it to simulate a common warm-up prefix once and branch per
// sweep point: the caller runs the parent to quiescence, captures
// eng.Snapshot(), and builds each child on sim.NewEngineFrom of that
// snapshot.
//
// cfg may differ from the parent's config in any field PrefixConfig
// normalizes (Tier-2 sizing and replacement policy, eviction-cost knobs,
// seed, predictor, the Random/TierOrder placement split): a parent run
// under the canonical PrefixConfig serves every config in its class.
// Fork panics when the two configs are not prefix-equivalent.
//
// Forking is only defined at an eviction-free quiescent point (see
// EvictionFreePrefix): no event pending, no fetch in flight, nothing
// resident in Tier-2, no replacement decision — and hence no RNG draw —
// made yet. Under those conditions a child behaves byte-identically to
// a runtime that simulated the whole trace monolithically under cfg:
//
//   - Tier-1 (clock bits, slot assignment, free-list order) is deep
//     copied; Tier-2 is rebuilt from cfg, empty — exactly what a
//     monolithic run would hold here.
//   - The page directory is shared copy-on-write at pageChunkSize
//     granularity; the parent is frozen and must never run again.
//   - Devices (drive, host link, transfer engine) are rebuilt fresh on
//     the child engine — legal because quiescence means they hold no
//     state beyond cumulative counters, which Snapshot folds back in
//     via statsBase.
//   - The reuse sampler and Markov chain are deep copied mid-stream; the
//     classifier, backfill window, and RNG are rebuilt from cfg. The
//     re-seeded RNG reproduces a monolithic run's stream exactly because
//     no draw happens before the first eviction.
//
// It panics when any precondition fails rather than risk a silent
// divergence.
func (rt *Runtime) Fork(eng *sim.Engine, cfg Config) *Runtime {
	if rt.reserved != 0 || rt.slotQueued() != 0 || rt.mover.Outstanding() != 0 {
		panic(fmt.Sprintf("core: Fork with %d reserved slots, %d slot waiters, %d moves in flight",
			rt.reserved, rt.slotQueued(), rt.mover.Outstanding()))
	}
	if rt.t2 != nil && rt.t2.Len() != 0 {
		panic(fmt.Sprintf("core: Fork with %d Tier-2 residents (prefix was not eviction-free)", rt.t2.Len()))
	}
	if ev := rt.m.EvictionsToTier2 + rt.m.EvictionsToSSD + rt.m.EvictionsDropped; ev != 0 {
		panic(fmt.Sprintf("core: Fork after %d evictions (prefix was not eviction-free)", ev))
	}
	if rt.cfg.RNG != nil || cfg.RNG != nil {
		panic("core: Fork with a caller-supplied RNG (stream position cannot be reproduced)")
	}
	if rt.cfg.PrefetchDegree != 0 || cfg.PrefetchDegree != 0 {
		panic("core: Fork with prefetching (in-flight speculative fills cannot be shared)")
	}
	if !samePrefixClass(rt.cfg, cfg) {
		panic(fmt.Sprintf("core: Fork config not prefix-equivalent to the parent's:\nparent: %+v\nchild:  %+v",
			PrefixConfig(rt.cfg), PrefixConfig(cfg)))
	}
	rt.frozen = true
	rt.batchOK = false

	child := &Runtime{
		eng:      eng,
		cfg:      cfg,
		ssd:      newStorage(eng, cfg),
		hostLink: pcie.NewLink(eng, cfg.HostLanes),
		t1:       rt.t1.Clone(),
		t2:       newTier2(cfg),

		t1page: append([]int32(nil), rt.t1page...),
		dir:    rt.dir.fork(),

		vtd:    rt.vtd,
		markov: rt.markov,
		classifier: reuse.Classifier{
			Tier1Pages: int64(cfg.Tier1Pages),
			Tier2Pages: int64(cfg.Tier2Pages),
		},
		rng: rand.New(rand.NewSource(cfg.Seed)),

		historySample: int64(cfg.HistorySample),
		nextOcc:       rt.nextOcc, // read-only, safely shared

		recentPos: rt.recentPos,
		recentN:   rt.recentN,

		m: rt.m,
	}
	child.m.Policy = cfg.Policy.String()
	child.mover = xfer.NewEngine(eng, child.hostLink, cfg.Transfer)
	if cfg.Policy == PolicyReuse {
		// samePrefixClass guarantees the parent is Reuse too, so its
		// sampler carries exactly the observations a monolithic run
		// would have made; the backfill ring is rebuilt from cfg (it is
		// untouched during an eviction-free prefix: recentN == 0).
		child.sampler = rt.sampler.Clone()
		w := cfg.BackfillWindow
		if w < 1 {
			w = 1
		}
		child.recentLong = make([]bool, w)
	}
	if len(rt.history) > 0 {
		child.history = append([]stats.Run(nil), rt.history...)
	}
	if len(rt.reuseNS) > 0 {
		child.reuseNS = append([]int64(nil), rt.reuseNS...)
	}
	ds := rt.ssd.Stats()
	child.statsBase = rt.statsBase
	child.statsBase.Reads += ds.Reads
	child.statsBase.Writes += ds.Writes
	child.statsBase.ReadBytes += ds.ReadBytes
	child.statsBase.WriteBytes += ds.WriteBytes
	child.hotAux = child.historySample > 0 || child.sampler != nil
	child.batchOK = child.historySample == 0 && cfg.PrefetchDegree == 0 && child.nextOcc == nil
	return child
}

// EvictionFreePrefix reports the longest K such that simulating
// trace[:K] cannot trigger a Tier-1 eviction: the distinct non-negative
// pages referenced stay within tier1 slots, so every miss finds a free
// slot and Tier-2 is never touched. trace[:K] is therefore a valid Fork
// warm-up prefix for any policy sharing the same tier1 capacity (the
// replacement policy, the placement coin, and Tier-2 sizing are all
// unexercised by it).
func EvictionFreePrefix(trace []gpu.Access, tier1 int) int {
	if tier1 <= 0 {
		return 0
	}
	seen := make(map[tier.PageID]struct{}, tier1)
	for i, a := range trace {
		if a.Page < 0 {
			continue
		}
		if _, ok := seen[a.Page]; ok {
			continue
		}
		if len(seen) == tier1 {
			return i
		}
		seen[a.Page] = struct{}{}
	}
	return len(trace)
}
