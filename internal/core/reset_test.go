package core

import (
	"testing"

	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// resetConfigs is the differential-test matrix: consecutive entries
// exercise both Reset branches per component — shape-compatible (reset
// in place) and shape-changed (rebuild) — across policies, Tier-2
// implementations, tier capacities, drive counts, and optional-feature
// flags.
func resetConfigs() []Config {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Tier1Pages = 128
		cfg.Tier2Pages = 256
		cfg.FootprintPages = 512
		return cfg
	}
	bam := base()
	bam.Policy = PolicyBaM

	tierOrder := base()
	tierOrder.Policy = PolicyTierOrder

	random := base()
	random.Policy = PolicyRandom

	reuse := base()
	reuse.Policy = PolicyReuse

	reuseAgain := reuse // identical shape: every component resets in place

	lruk := base()
	lruk.Policy = PolicyReuse
	lruk.Tier2Policy = tier.StoreLRUK
	lruk.TrackTier2Reuse = true

	twoq := base()
	twoq.Policy = PolicyTierOrder
	twoq.Tier2Policy = tier.StoreTwoQ

	smallT1 := base()
	smallT1.Policy = PolicyReuse
	smallT1.Tier1Pages = 64

	striped := base()
	striped.Policy = PolicyTierOrder
	striped.SSDCount = 2

	async := base()
	async.Policy = PolicyReuse
	async.AsyncEviction = true
	async.Seed = 7

	return []Config{bam, tierOrder, random, reuse, reuseAgain, lruk, twoq, smallT1, striped, async}
}

// TestResetMatchesFresh is the recycled-vs-fresh differential contract
// behind exp's worker-pool recycling: a runtime that already ran an
// arbitrary earlier configuration, then Reset to cfg, must produce a
// byte-identical run — wall clock, dispatched-event count, and the full
// metrics snapshot — to a freshly constructed runtime under cfg.
func TestResetMatchesFresh(t *testing.T) {
	configs := resetConfigs()
	trace := forkTrace(128, 3000, 512)

	// Fresh references, one per config.
	type ref struct {
		now   sim.Time
		steps int64
	}
	refs := make([]ref, len(configs))
	snaps := make([]any, len(configs))
	for i, cfg := range configs {
		eng := sim.NewEngine()
		rt := NewRuntime(eng, cfg)
		runPhase(t, eng, rt, trace, 16)
		refs[i] = ref{now: eng.Now(), steps: eng.Steps()}
		snaps[i] = rt.Snapshot()
	}

	// One recycled runtime serves every config in sequence; each run
	// must match its fresh reference exactly.
	eng := sim.NewEngine()
	rt := NewRuntime(eng, configs[0])
	for i, cfg := range configs {
		if i > 0 {
			rt.Reset(cfg)
		}
		runPhase(t, eng, rt, trace, 16)
		if eng.Now() != refs[i].now {
			t.Errorf("config %d (%v): wall time: fresh %d, recycled %d",
				i, cfg.Policy, refs[i].now, eng.Now())
		}
		if eng.Steps() != refs[i].steps {
			t.Errorf("config %d (%v): dispatched events: fresh %d, recycled %d",
				i, cfg.Policy, refs[i].steps, eng.Steps())
		}
		if m := rt.Snapshot(); m != snaps[i] {
			t.Errorf("config %d (%v): metrics diverged:\nfresh:    %+v\nrecycled: %+v",
				i, cfg.Policy, snaps[i], m)
		}
		rt.CheckInvariants()
	}
}

// TestResetForkedPanics pins the aliasing guard: neither a frozen fork
// parent nor a forked child may be recycled — the parent's arena is
// shared with its children, and the child's directory aliases the
// parent's.
func TestResetForkedPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyReuse
	cfg.Tier1Pages = 128
	cfg.Tier2Pages = 256
	cfg.FootprintPages = 512
	trace := forkTrace(128, 0, 512)

	eng := sim.NewEngine()
	parent := NewRuntime(eng, cfg)
	runPhase(t, eng, parent, trace, 16)
	child := parent.Fork(sim.NewEngineFrom(eng.Snapshot()), cfg)

	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", what)
			}
		}()
		fn()
	}
	mustPanic("Reset of frozen parent", func() { parent.Reset(cfg) })
	mustPanic("Reset of forked child", func() { child.Reset(cfg) })
}
