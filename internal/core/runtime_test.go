package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
)

// run executes a trace against a runtime configuration and returns the
// runtime (post-run) and the virtual wall time.
func run(t *testing.T, cfg Config, trace []gpu.Access, warps int) (*Runtime, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	rt := NewRuntime(eng, cfg)
	g := gpu.New(eng, gpu.Config{Warps: warps, ComputePerAccess: 200}, &gpu.SliceStream{Trace: trace}, rt)
	g.Launch()
	eng.Run()
	if !g.Done() {
		t.Fatal("kernel did not finish")
	}
	rt.CheckInvariants()
	return rt, eng.Now()
}

func seqTrace(n, pages int) []gpu.Access {
	tr := make([]gpu.Access, n)
	for i := range tr {
		tr[i] = gpu.Access{Page: tier.PageID(i % pages)}
	}
	return tr
}

func smallConfig(p PolicyKind) Config {
	cfg := DefaultConfig()
	cfg.Policy = p
	cfg.Tier1Pages = 32
	cfg.Tier2Pages = 128
	cfg.SampleTarget = 2000
	cfg.SampleBatch = 200
	cfg.BackfillWindow = 16
	return cfg
}

func TestAccessAccountingAddsUp(t *testing.T) {
	for _, p := range []PolicyKind{PolicyBaM, PolicyTierOrder, PolicyRandom, PolicyReuse} {
		rt, _ := run(t, smallConfig(p), seqTrace(5000, 100), 8)
		m := rt.Snapshot()
		if m.Accesses != 5000 {
			t.Fatalf("%v: accesses = %d, want 5000", p, m.Accesses)
		}
		sum := m.Tier1Hits + m.Tier2Hits + m.SSDFills + m.InFlightJoins
		if sum != m.Accesses {
			t.Fatalf("%v: hit/miss breakdown %d != accesses %d", p, sum, m.Accesses)
		}
	}
}

func TestColdStartFillsTier1WithoutEviction(t *testing.T) {
	cfg := smallConfig(PolicyBaM)
	// 32 distinct pages exactly fill Tier-1: no evictions on cold start.
	rt, _ := run(t, cfg, seqTrace(32, 32), 1)
	m := rt.Snapshot()
	if m.SSDFills != 32 || m.EvictionsDropped+m.EvictionsToSSD != 0 {
		t.Fatalf("cold start: fills=%d evictions=%d", m.SSDFills, m.EvictionsDropped+m.EvictionsToSSD)
	}
	if rt.Tier1Resident() != 32 {
		t.Fatalf("resident = %d, want 32", rt.Tier1Resident())
	}
}

func TestBaMNeverTouchesTier2(t *testing.T) {
	rt, _ := run(t, smallConfig(PolicyBaM), seqTrace(5000, 200), 8)
	m := rt.Snapshot()
	if m.Tier2Lookups != 0 || m.Tier2Hits != 0 || m.EvictionsToTier2 != 0 {
		t.Fatalf("BaM touched Tier-2: %+v", m)
	}
	if rt.Tier2Resident() != 0 {
		t.Fatal("BaM has Tier-2 residents")
	}
}

func TestTierOrderAlwaysPlacesInTier2(t *testing.T) {
	rt, _ := run(t, smallConfig(PolicyTierOrder), seqTrace(5000, 200), 8)
	m := rt.Snapshot()
	evictions := m.EvictionsToTier2 + m.EvictionsToSSD + m.EvictionsDropped
	// Every Tier-1 victim must go to Tier-2 under TierOrder; drops and
	// writebacks only happen out of Tier-2.
	if m.EvictionsToTier2 == 0 {
		t.Fatal("TierOrder never placed in Tier-2")
	}
	if evictions-m.EvictionsToTier2 != m.Tier2Evictions {
		t.Fatalf("TierOrder: non-T2 discards (%d) != Tier-2 evictions (%d)",
			evictions-m.EvictionsToTier2, m.Tier2Evictions)
	}
}

func TestRandomSplitsPlacement(t *testing.T) {
	rt, _ := run(t, smallConfig(PolicyRandom), seqTrace(20_000, 400), 8)
	m := rt.Snapshot()
	direct := m.EvictionsToSSD + m.EvictionsDropped - m.Tier2Evictions
	if m.EvictionsToTier2 == 0 || direct <= 0 {
		t.Fatalf("Random did not split placements: toT2=%d direct=%d", m.EvictionsToTier2, direct)
	}
	// Roughly a coin flip: between 30%% and 70%%.
	frac := float64(m.EvictionsToTier2) / float64(m.EvictionsToTier2+direct)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("Random placement fraction = %.2f, want ≈0.5", frac)
	}
}

func TestTier2HitsServeReuse(t *testing.T) {
	// Working set of 100 pages cycled repeatedly: Tier-1 (32) can't hold
	// it, Tier-2 (128) can. The 3-tier policies must convert SSD reads
	// into Tier-2 hits on later cycles; BaM cannot.
	trace := seqTrace(20_000, 100)
	bam, _ := run(t, smallConfig(PolicyBaM), trace, 8)
	for _, p := range []PolicyKind{PolicyTierOrder, PolicyRandom, PolicyReuse} {
		rt, _ := run(t, smallConfig(p), trace, 8)
		m := rt.Snapshot()
		if m.Tier2Hits == 0 {
			t.Fatalf("%v: no Tier-2 hits on a Tier-2-sized working set", p)
		}
		if m.SSDReads >= bam.Snapshot().SSDReads {
			t.Fatalf("%v: SSD reads (%d) not reduced vs BaM (%d)",
				p, m.SSDReads, bam.Snapshot().SSDReads)
		}
	}
}

func TestDirtyPagesWrittenBack(t *testing.T) {
	trace := make([]gpu.Access, 4000)
	for i := range trace {
		trace[i] = gpu.Access{Page: tier.PageID(i % 200), Write: true}
	}
	rt, _ := run(t, smallConfig(PolicyBaM), trace, 8)
	m := rt.Snapshot()
	if m.SSDWrites == 0 || m.EvictionsToSSD == 0 {
		t.Fatalf("dirty evictions produced no writebacks: %+v", m)
	}
	if m.EvictionsDropped != 0 {
		t.Fatalf("dirty pages dropped silently: %d", m.EvictionsDropped)
	}
}

func TestCleanPagesDroppedFree(t *testing.T) {
	rt, _ := run(t, smallConfig(PolicyBaM), seqTrace(4000, 200), 8)
	m := rt.Snapshot()
	if m.SSDWrites != 0 {
		t.Fatalf("clean workload produced %d SSD writes", m.SSDWrites)
	}
	if m.EvictionsDropped == 0 {
		t.Fatal("no clean drops recorded")
	}
}

func TestInFlightJoinsCoalesce(t *testing.T) {
	// Many warps hammering one missing page must produce one SSD read.
	trace := make([]gpu.Access, 64)
	for i := range trace {
		trace[i] = gpu.Access{Page: 7}
	}
	rt, _ := run(t, smallConfig(PolicyBaM), trace, 64)
	m := rt.Snapshot()
	if m.SSDReads != 1 {
		t.Fatalf("SSD reads = %d, want 1 (coalesced)", m.SSDReads)
	}
	if m.InFlightJoins == 0 {
		t.Fatal("no in-flight joins recorded")
	}
}

func TestReuseBackfillOnScanWorkload(t *testing.T) {
	// A cyclic scan far larger than Tier-1+Tier-2 classifies everything
	// Long; §2.2's heuristic must still populate Tier-2 (the Hotspot
	// effect) and produce Tier-2 hits on later laps.
	cfg := smallConfig(PolicyReuse)
	trace := seqTrace(30_000, 600) // scan of 600 pages; T1+T2 = 160
	rt, _ := run(t, cfg, trace, 8)
	m := rt.Snapshot()
	if m.BackfillPlaced == 0 {
		t.Fatal("backfill heuristic never fired on a scan workload")
	}
	if m.Tier2Hits == 0 {
		t.Fatal("backfilled pages never hit")
	}
	// Ablation: disabling the heuristic must strand Tier-2 nearly empty.
	off := cfg
	off.BackfillThreshold = 2.0
	rtOff, _ := run(t, off, trace, 8)
	mOff := rtOff.Snapshot()
	if mOff.BackfillPlaced != 0 {
		t.Fatal("disabled heuristic still placed pages")
	}
	if mOff.Tier2Hits >= m.Tier2Hits {
		t.Fatalf("heuristic off gave %d Tier-2 hits >= on (%d)", mOff.Tier2Hits, m.Tier2Hits)
	}
}

func TestReusePredictionsScored(t *testing.T) {
	rt, _ := run(t, smallConfig(PolicyReuse), seqTrace(40_000, 100), 8)
	m := rt.Snapshot()
	if m.Predictions == 0 {
		t.Fatal("no predictions scored")
	}
	if m.CorrectPredictions > m.Predictions {
		t.Fatal("accuracy accounting broken")
	}
	if m.SamplePairs == 0 || m.RegressionBatches == 0 {
		t.Fatalf("sampling pipeline idle: %+v", m)
	}
}

func TestReuseOutperformsBaMOnTier2Friendly(t *testing.T) {
	// Cyclic reuse with a working set that fits Tier-1+Tier-2: the
	// 3-tier policies must beat BaM on wall time (the paper's headline).
	trace := seqTrace(40_000, 120)
	_, tBam := run(t, smallConfig(PolicyBaM), trace, 16)
	_, tReuse := run(t, smallConfig(PolicyReuse), trace, 16)
	if tReuse >= tBam {
		t.Fatalf("GMT-Reuse (%dµs) did not beat BaM (%dµs)",
			tReuse/sim.Microsecond, tBam/sim.Microsecond)
	}
}

func TestDeterminism(t *testing.T) {
	trace := seqTrace(10_000, 300)
	for _, p := range []PolicyKind{PolicyRandom, PolicyReuse} {
		rt1, t1 := run(t, smallConfig(p), trace, 8)
		rt2, t2 := run(t, smallConfig(p), trace, 8)
		if t1 != t2 {
			t.Fatalf("%v: wall times diverged: %d vs %d", p, t1, t2)
		}
		if rt1.Snapshot() != rt2.Snapshot() {
			t.Fatalf("%v: metrics diverged", p)
		}
	}
}

func TestSeedChangesRandomPolicy(t *testing.T) {
	trace := seqTrace(10_000, 300)
	cfg1 := smallConfig(PolicyRandom)
	cfg2 := cfg1
	cfg2.Seed = 99
	rt1, _ := run(t, cfg1, trace, 8)
	rt2, _ := run(t, cfg2, trace, 8)
	if rt1.Snapshot().EvictionsToTier2 == rt2.Snapshot().EvictionsToTier2 {
		t.Log("seeds produced identical placements (possible but unlikely)")
	}
}

func TestWastefulLookupAccounting(t *testing.T) {
	rt, _ := run(t, smallConfig(PolicyTierOrder), seqTrace(20_000, 400), 8)
	m := rt.Snapshot()
	if m.Tier2Lookups != m.Tier2Hits+m.WastefulLookups {
		t.Fatalf("lookups (%d) != useful (%d) + wasteful (%d)",
			m.Tier2Lookups, m.Tier2Hits, m.WastefulLookups)
	}
	if m.WastefulLookups == 0 {
		t.Fatal("over-capacity scan produced no wasteful lookups")
	}
}

func TestTier2HitLatencyCalibration(t *testing.T) {
	// Paper §3.4: retrieving a page from host memory costs ≈50 µs.
	// Construct an unloaded Tier-2 hit: touch a page, cycle it out of
	// Tier-1 into Tier-2, then demand it again with nothing else going
	// on.
	cfg := smallConfig(PolicyTierOrder) // always places victims in Tier-2
	cfg.Tier1Pages = 2
	cfg.Tier2Pages = 16
	eng := sim.NewEngine()
	rt := NewRuntime(eng, cfg)
	trace := []gpu.Access{{Page: 0}, {Page: 1}, {Page: 2}, {Page: 3}}
	g := gpu.New(eng, gpu.Config{Warps: 1, ComputePerAccess: 1}, &gpu.SliceStream{Trace: trace}, rt)
	g.Launch()
	eng.Run()
	if rt.Snapshot().EvictionsToTier2 == 0 {
		t.Fatal("setup failed: nothing placed in Tier-2")
	}
	// Page 0 now lives in Tier-2. Time an isolated demand hit.
	start := eng.Now()
	done := sim.Time(0)
	rt.Access(gpu.Access{Page: 0}, func() { done = eng.Now() })
	eng.Run()
	lat := done - start
	// The raw retrieval is ≈50µs (paper §3.4); the end-to-end miss also
	// carries the victim's Tier-2 placement performed by the same warp
	// (≈17µs here), so the whole service lands in the 50-70µs band —
	// still well under the ≈130µs SSD path.
	if lat < 40*sim.Microsecond || lat > 72*sim.Microsecond {
		t.Fatalf("unloaded Tier-2 service = %dµs, want 50-70µs (paper §3.4: ≈50µs retrieval)", lat/sim.Microsecond)
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[PolicyKind]string{
		PolicyBaM: "BaM", PolicyTierOrder: "GMT-TierOrder",
		PolicyRandom: "GMT-Random", PolicyReuse: "GMT-Reuse",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		NewRuntime(sim.NewEngine(), cfg)
	}
	bad := DefaultConfig()
	bad.Tier1Pages = 0
	mustPanic("Tier1Pages=0", bad)
	bad2 := DefaultConfig()
	bad2.Policy = PolicyReuse
	bad2.Tier2Pages = 0
	mustPanic("3-tier with Tier2Pages=0", bad2)
	bad3 := DefaultConfig()
	bad3.PageSize = 0
	mustPanic("PageSize=0", bad3)
}

// Property: cross-counter conservation laws hold for random traces and
// policies: every SSD read is a demand fill or a prefetch, every page
// moved to the host is a Tier-2 placement, and every page moved down
// from the host is a Tier-2 hit.
func TestConservationLawsProperty(t *testing.T) {
	f := func(seed int64, policyByte, degree uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := PolicyKind(policyByte % 4)
		trace := make([]gpu.Access, 2500)
		for i := range trace {
			trace[i] = gpu.Access{
				Page:  tier.PageID(rng.Intn(300)),
				Write: rng.Intn(3) == 0,
			}
		}
		cfg := smallConfig(policy)
		cfg.Seed = seed
		cfg.PrefetchDegree = int(degree % 4)
		eng := sim.NewEngine()
		rt := NewRuntime(eng, cfg)
		g := gpu.New(eng, gpu.Config{Warps: 8, ComputePerAccess: 100}, &gpu.SliceStream{Trace: trace}, rt)
		g.Launch()
		eng.Run()
		rt.CheckInvariants()
		m := rt.Snapshot()
		moverStats := rt.Mover().Stats()
		return m.SSDReads == m.SSDFills+m.Prefetches &&
			m.PagesToHost == m.EvictionsToTier2 &&
			m.PagesToGPU == m.Tier2Hits &&
			moverStats.PagesUp == m.PagesToHost &&
			moverStats.PagesDown == m.PagesToGPU &&
			m.SSDWrites == m.EvictionsToSSD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: for random traces and any policy, invariants hold and the
// access breakdown is conserved.
func TestRandomTraceInvariantsProperty(t *testing.T) {
	f := func(seed int64, policyByte uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := PolicyKind(policyByte % 4)
		trace := make([]gpu.Access, 3000)
		for i := range trace {
			trace[i] = gpu.Access{
				Page:  tier.PageID(rng.Intn(250)),
				Write: rng.Intn(4) == 0,
			}
		}
		eng := sim.NewEngine()
		cfg := smallConfig(policy)
		cfg.Seed = seed
		rt := NewRuntime(eng, cfg)
		g := gpu.New(eng, gpu.Config{Warps: 8, ComputePerAccess: 100}, &gpu.SliceStream{Trace: trace}, rt)
		g.Launch()
		eng.Run()
		rt.CheckInvariants()
		m := rt.Snapshot()
		return g.Done() &&
			m.Tier1Hits+m.Tier2Hits+m.SSDFills+m.InFlightJoins == m.Accesses &&
			m.Tier2Lookups == m.Tier2Hits+m.WastefulLookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
