package sim

import (
	"math/rand"
	"testing"
)

// replaySchedule drives e through a deterministic randomized workload —
// cascading reschedules across all wheel levels plus the overflow list —
// and returns the dispatch log as (time, tag) pairs.
func replaySchedule(e *Engine, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	var log []int64
	var fire EventFunc
	depth := 0
	fire = func(ctx any, arg int64) {
		log = append(log, int64(e.Now()), arg)
		if depth < 4000 && rng.Intn(3) > 0 {
			depth++
			// Spread across slot (<256), level-2/3, and overflow horizons.
			d := Time(1 + rng.Intn(200))
			switch rng.Intn(8) {
			case 0:
				d = Time(1 + rng.Intn(100_000))
			case 1:
				d = Time(1 + rng.Intn(400_000_000)) // beyond the wheel horizon
			}
			e.AfterCall(d, fire, nil, arg*31+int64(rng.Intn(7)))
		}
	}
	for i := 0; i < 64; i++ {
		e.AtCall(Time(rng.Intn(1000)), fire, nil, int64(i))
	}
	e.Run()
	return log
}

// TestEngineResetReplaysIdentically pins Engine.Reset's contract: a
// drained engine, reset, must replay a workload with exactly the
// dispatch sequence (times, order, step count) of a fresh engine, even
// though it retains its event arena and free-list order.
func TestEngineResetReplaysIdentically(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		fresh := NewEngine()
		want := replaySchedule(fresh, seed)
		wantNow, wantSteps := fresh.Now(), fresh.Steps()

		recycled := NewEngine()
		replaySchedule(recycled, seed+99) // churn with a different workload
		recycled.Reset()
		if recycled.Now() != 0 || recycled.Steps() != 0 || recycled.Pending() != 0 {
			t.Fatalf("seed %d: Reset left now=%d steps=%d pending=%d",
				seed, recycled.Now(), recycled.Steps(), recycled.Pending())
		}
		got := replaySchedule(recycled, seed)
		if recycled.Now() != wantNow || recycled.Steps() != wantSteps {
			t.Fatalf("seed %d: recycled now=%d steps=%d, fresh now=%d steps=%d",
				seed, recycled.Now(), recycled.Steps(), wantNow, wantSteps)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: dispatch log length %d, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: dispatch log diverges at %d: got %d, want %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestEngineResetPendingPanics pins the quiescence precondition: Reset
// on an engine with undispatched events must panic rather than leak
// them into the next run.
func TestEngineResetPendingPanics(t *testing.T) {
	e := NewEngine()
	e.AtCall(10, CallFunc, (func())(nil), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with pending events did not panic")
		}
	}()
	e.Reset()
}
