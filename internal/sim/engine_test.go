package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(5, func() {
		times = append(times, e.Now())
		e.After(7, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if times[0] != 5 || times[1] != 12 {
		t.Fatalf("times = %v, want [5 12]", times)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired = %d, want 3 after Run", fired)
	}
}

func TestEngineSteps(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", e.Steps())
	}
}

// Property: events always fire in nondecreasing time order, regardless of
// insertion order.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []Time
		for i := 0; i < int(n)+1; i++ {
			at := Time(rng.Intn(1000))
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServerCapacity(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 2)
	var order []int
	start := func(id int, hold Time) {
		s.Acquire(func() {
			order = append(order, id)
			e.After(hold, s.Release)
		})
	}
	start(1, 10)
	start(2, 10)
	start(3, 10) // must wait for 1 or 2
	if s.InUse() != 2 || s.Queued() != 1 {
		t.Fatalf("InUse=%d Queued=%d, want 2,1", s.InUse(), s.Queued())
	}
	e.Run()
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("grant order = %v", order)
	}
}

func TestServerFIFOGrants(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	var order []int
	for i := 1; i <= 5; i++ {
		i := i
		s.Acquire(func() {
			order = append(order, i)
			e.After(1, s.Release)
		})
	}
	e.Run()
	for i := 0; i < 5; i++ {
		if order[i] != i+1 {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
	if s.Grants() != 5 {
		t.Fatalf("Grants = %d, want 5", s.Grants())
	}
}

func TestServerUse(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	var doneAt []Time
	s.Use(10, func() { doneAt = append(doneAt, e.Now()) })
	s.Use(10, func() { doneAt = append(doneAt, e.Now()) })
	e.Run()
	if doneAt[0] != 10 || doneAt[1] != 20 {
		t.Fatalf("doneAt = %v, want [10 20]", doneAt)
	}
}

func TestServerReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Release without Acquire did not panic")
		}
	}()
	NewServer(NewEngine(), 1).Release()
}

func TestPipeBandwidth(t *testing.T) {
	e := NewEngine()
	// 1 GB/s: 1000 bytes take 1000ns.
	p := NewPipe(e, 1_000_000_000, 0)
	var doneAt Time
	p.Transfer(1000, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 1000 {
		t.Fatalf("1000B @ 1GB/s done at %d, want 1000", doneAt)
	}
}

func TestPipeSerialization(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1_000_000_000, 0)
	var ends []Time
	for i := 0; i < 3; i++ {
		p.Transfer(1000, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	want := []Time{1000, 2000, 3000}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestPipePipelinedLatency(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1_000_000_000, 500)
	var ends []Time
	p.Transfer(1000, func() { ends = append(ends, e.Now()) })
	p.Transfer(1000, func() { ends = append(ends, e.Now()) })
	e.Run()
	// Latency delays completion but transfers still stream back to back:
	// 1000+500, 2000+500 — not 1500+1500.
	if ends[0] != 1500 || ends[1] != 2500 {
		t.Fatalf("ends = %v, want [1500 2500]", ends)
	}
}

func TestPipeIdleGap(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1_000_000_000, 0)
	var end Time
	e.At(5000, func() {
		p.Transfer(1000, func() { end = e.Now() })
	})
	e.Run()
	if end != 6000 {
		t.Fatalf("end = %d, want 6000 (transfer starts at submission)", end)
	}
}

// Property: cumulative pipe busy time equals the sum of per-transfer
// occupancy regardless of submission pattern.
func TestPipeBusyConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		p := NewPipe(e, 3_200_000_000, 100)
		var want Time
		for i := 0; i < int(n)+1; i++ {
			sz := int64(rng.Intn(1<<16) + 1)
			want += p.TransferTime(sz)
			at := Time(rng.Intn(10000))
			e.At(at, func() { p.Transfer(sz, nil) })
		}
		e.Run()
		return p.BusyTime() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipeTransferLimited(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1_000_000_000, 0) // 1 GB/s pipe
	var ends []Time
	// A requester limited to 0.5 GB/s occupies the pipe twice as long.
	p.TransferLimited(1000, 500_000_000, func() { ends = append(ends, e.Now()) })
	// A faster-than-pipe requester is clamped to the pipe rate.
	p.TransferLimited(1000, 2_000_000_000, func() { ends = append(ends, e.Now()) })
	e.Run()
	if ends[0] != 2000 {
		t.Fatalf("limited transfer ended at %d, want 2000", ends[0])
	}
	if ends[1] != 3000 {
		t.Fatalf("clamped transfer ended at %d, want 3000", ends[1])
	}
}

func TestPipeBacklogAndStats(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1_000_000_000, 0)
	p.Transfer(5000, nil)
	if p.Backlog() != 5000 {
		t.Fatalf("backlog = %d, want 5000", p.Backlog())
	}
	e.Run()
	if p.Backlog() != 0 {
		t.Fatalf("backlog after drain = %d", p.Backlog())
	}
	if p.Bytes() != 5000 || p.Transfers() != 1 {
		t.Fatalf("bytes=%d transfers=%d", p.Bytes(), p.Transfers())
	}
}

func TestServerQueueStats(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	for i := 0; i < 4; i++ {
		s.Use(10, nil)
	}
	if s.MaxQueue() != 3 {
		t.Fatalf("MaxQueue = %d, want 3", s.MaxQueue())
	}
	e.Run()
	if s.InUse() != 0 || s.Queued() != 0 {
		t.Fatal("server not drained")
	}
}

func TestEnginePendingAndZeroCapacityPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d", e.Pending())
	}
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 server did not panic")
		}
	}()
	NewServer(e, 0)
}

func TestPipeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-bandwidth pipe did not panic")
		}
	}()
	NewPipe(NewEngine(), 0, 0)
}

func TestPipeMinimumOccupancy(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1_000_000_000_000, 0) // 1 TB/s: 1 byte would be <1ns
	if got := p.TransferTime(1); got != 1 {
		t.Fatalf("TransferTime(1) = %d, want clamped to 1ns", got)
	}
}

// TestPopReleasesDispatchedEvents is the closure-retention regression:
// after Run() drains, no arena record may still hold a dispatched
// event's callback, so closures — and everything they capture — become
// collectable instead of lingering for the life of the engine. (Free
// records may pin their last callback transiently DURING a run; the
// drain sweep in Run bounds that retention to the simulation itself.)
func TestPopReleasesDispatchedEvents(t *testing.T) {
	e := NewEngine()
	const n = 16
	for i := 0; i < n; i++ {
		i := i
		e.At(Time(i), func() { _ = i })
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("events remain after Run: %d", e.Pending())
	}
	for i := range e.recs {
		r := &e.recs[i]
		if r.fn != nil || r.call != nil || r.ctx != nil {
			t.Fatalf("record %d still holds a dispatched event's callback", i)
		}
	}
}

// countCall is a shared EventFunc for the typed-path tests.
func countCall(ctx any, arg int64) {
	s := ctx.(*[]int64)
	*s = append(*s, arg)
}

func TestEngineTypedPathOrdering(t *testing.T) {
	e := NewEngine()
	var got []int64
	e.AtCall(30, countCall, &got, 3)
	e.AtCall(10, countCall, &got, 1)
	e.At(20, func() { got = append(got, 2) })
	e.AfterCall(25, countCall, &got, 4) // now=0, fires at 25
	e.Run()
	want := []int64{1, 2, 4, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("typed/compat interleaving = %v, want %v", got, want)
		}
	}
}

func TestEngineCallFunc(t *testing.T) {
	e := NewEngine()
	fired := false
	e.AtCall(5, CallFunc, func() { fired = true }, 0)
	e.AtCall(6, CallFunc, (func())(nil), 0) // nil callback tolerated
	e.Run()
	if !fired {
		t.Fatal("CallFunc did not invoke its context function")
	}
	if e.Now() != 6 {
		t.Fatalf("Now = %d, want 6", e.Now())
	}
}

func TestEnginePastTypedSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("typed scheduling in the past did not panic")
			}
		}()
		e.AtCall(5, CallFunc, nil, 0)
	})
	e.Run()
}

func TestEngineRunUntilBackwardsPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.RunUntil(50)
	if e.Now() != 50 {
		t.Fatalf("Now = %d, want 50", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("RunUntil with a backwards target did not panic")
		}
	}()
	e.RunUntil(49)
}

// TestEnginePoolConservation checks the free-list accounting the
// gmtinvariants build asserts at the end of Run: after a drain, every
// acquired record is back on the free list.
func TestEnginePoolConservation(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.AtCall(Time(i%7), CallFunc, func() {
			e.AfterCall(3, CallFunc, (func())(nil), 0)
		}, 0)
	}
	e.Run()
	if e.acquired != e.released {
		t.Fatalf("pool leak: %d acquired, %d released", e.acquired, e.released)
	}
	if len(e.free) != len(e.recs) {
		t.Fatalf("pool leak: %d free of %d records", len(e.free), len(e.recs))
	}
	if e.acquired != 200 {
		t.Fatalf("acquired = %d, want 200", e.acquired)
	}
}

func TestEnginePeek(t *testing.T) {
	e := NewEngine()
	if _, ok := e.Peek(); ok {
		t.Fatal("Peek on an empty engine reported an event")
	}
	e.At(30, func() {})
	e.At(10, func() {})
	if at, ok := e.Peek(); !ok || at != 10 {
		t.Fatalf("Peek = %d,%v, want 10,true", at, ok)
	}
	e.At(5, func() {})
	if at, ok := e.Peek(); !ok || at != 5 {
		t.Fatalf("Peek after earlier schedule = %d,%v, want 5,true", at, ok)
	}
	// Peek must not dispatch or restructure: the full run still fires
	// everything in order.
	var fired []Time
	e.At(20, func() { fired = append(fired, e.Now()) })
	e.Run()
	if e.Steps() != 4 || e.Now() != 30 {
		t.Fatalf("after run: steps=%d now=%d, want 4, 30", e.Steps(), e.Now())
	}
}

// TestEnginePeekAgreesWithDispatch pins the acceptance criterion that
// Peek and Pending agree with dispatch reality at every step.
func TestEnginePeekAgreesWithDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEngine()
	n, rescheduled := 500, 0
	var sink EventFunc
	sink = func(ctx any, arg int64) {
		if n > 0 {
			n--
			rescheduled++
			e.AfterCall(Time(rng.Intn(5000)), sink, nil, 0)
		}
	}
	for i := 0; i < 32; i++ {
		e.AfterCall(Time(rng.Intn(1<<20)), sink, nil, 0)
	}
	for e.Pending() > 0 {
		at, ok := e.Peek()
		if !ok {
			t.Fatal("Peek empty while Pending > 0")
		}
		before, schedBefore := e.Pending(), rescheduled
		e.step()
		if e.Now() != at {
			t.Fatalf("dispatched at %d, Peek promised %d", e.Now(), at)
		}
		if want := before - 1 + (rescheduled - schedBefore); e.Pending() != want {
			t.Fatalf("Pending %d -> %d across one step, want %d", before, e.Pending(), want)
		}
	}
}

func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.AdvanceTo(40)
	if e.Now() != 40 {
		t.Fatalf("Now = %d, want 40", e.Now())
	}
	e.AdvanceTo(40) // idempotent
	e.Run()
	if e.Now() != 100 || e.Steps() != 1 {
		t.Fatalf("after run: now=%d steps=%d", e.Now(), e.Steps())
	}
	defer func() {
		if recover() == nil {
			t.Error("backwards AdvanceTo did not panic")
		}
	}()
	e.AdvanceTo(99)
}

// TestEngineFarEvents exercises the overflow ladder: events beyond the
// wheel's span (2^32 ns past the cursor) must still dispatch in exact
// time-then-FIFO order, including equal-time pairs straddling the
// rebase.
func TestEngineFarEvents(t *testing.T) {
	e := NewEngine()
	var got []int
	const far = Time(1) << 40
	e.At(far+5, func() { got = append(got, 4) })
	e.At(3, func() { got = append(got, 1) })
	e.At(far+5, func() { got = append(got, 5) }) // same instant, FIFO after 4
	e.At(far, func() { got = append(got, 3) })
	e.At(1<<33, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("far-event order = %v, want %v", got, want)
		}
	}
	if e.Now() != far+5 {
		t.Fatalf("Now = %d, want %d", e.Now(), far+5)
	}
}

// TestEngineCascadeFIFO pins FIFO preservation across cascades: events
// at one instant far enough out to start life in an upper wheel level
// must still fire in scheduling order after migrating down.
func TestEngineCascadeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	const at = Time(3)<<24 | Time(5)<<16 | Time(7)<<8 | 9 // occupies all levels
	for i := 0; i < 64; i++ {
		i := i
		e.At(at, func() { got = append(got, i) })
		// Interleave other instants in the same upper-level slots so the
		// cascade has to split mixed lists.
		e.At(at+Time(i%3)+1, func() {})
	}
	e.Run()
	if len(got) != 64 {
		t.Fatalf("fired %d of 64", len(got))
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("cascade broke FIFO: %v", got)
		}
	}
}

// TestEngineRunUntilAcrossWindows stops between events that live in
// different wheel levels and verifies nothing beyond the target fires.
func TestEngineRunUntilAcrossWindows(t *testing.T) {
	e := NewEngine()
	var fired []Time
	times := []Time{1, 200, 70_000, 20_000_000, 1 << 34}
	for _, at := range times {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(70_000)
	if len(fired) != 3 || e.Now() != 70_000 {
		t.Fatalf("fired=%v now=%d, want 3 events and now=70000", fired, e.Now())
	}
	if at, ok := e.Peek(); !ok || at != 20_000_000 {
		t.Fatalf("Peek = %d,%v, want 20000000,true", at, ok)
	}
	e.Run()
	if len(fired) != len(times) {
		t.Fatalf("fired %d of %d after Run", len(fired), len(times))
	}
}

// TestEngineRecordReuse pins the pooling behavior: once the peak event
// population has been reached, further scheduling reuses records instead
// of growing the arena.
func TestEngineRecordReuse(t *testing.T) {
	e := NewEngine()
	var chain EventFunc
	remaining := 1000
	chain = func(ctx any, arg int64) {
		if remaining > 0 {
			remaining--
			e.AfterCall(1, chain, nil, 0)
		}
	}
	e.AfterCall(1, chain, nil, 0)
	e.Run()
	if len(e.recs) != 1 {
		t.Fatalf("arena grew to %d records for a 1-deep event chain", len(e.recs))
	}
}
