package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap are a minimal (time, seq) binary heap — the queue
// discipline the engine used before the timing wheel. The differential
// tests drive both structures with identical schedules and assert the
// wheel reproduces the heap's dispatch sequence exactly, which is the
// determinism contract the rewrite must preserve (HACKING.md,
// "Scheduler determinism contract").
type refEvent struct {
	at  Time
	seq int64
	id  int64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)    { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any      { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h refHeap) peek() refEvent { return h[0] }

// diffRun replays one randomized schedule derived from data through both
// queues and reports the first divergence. The op stream mixes near and
// far deltas (level-0 hits, upper wheel levels, the overflow ladder),
// equal-time bursts, RunUntil boundaries, and reschedule-from-callback.
func diffRun(t *testing.T, data []byte) {
	t.Helper()
	if len(data) == 0 {
		return
	}
	var seed int64
	for _, b := range data {
		seed = seed*131 + int64(b)
	}
	rng := rand.New(rand.NewSource(seed))

	e := NewEngine()
	ref := &refHeap{}
	var refSeq, nextID int64
	var got []int64 // event IDs in engine dispatch order

	// delta picks a scheduling offset biased toward the simulator's real
	// mix (small constants) but regularly crossing wheel levels and the
	// 2^32 overflow horizon, and landing equal-time bursts.
	delta := func() Time {
		switch rng.Intn(8) {
		case 0:
			return 0 // equal-time burst with whatever fired now
		case 1, 2, 3:
			return Time(rng.Intn(256)) // level 0
		case 4:
			return Time(rng.Intn(1 << 16)) // level 1–2
		case 5:
			return Time(rng.Intn(1 << 28)) // level 3
		case 6:
			return 1<<32 + Time(rng.Intn(1<<33)) // overflow ladder
		default:
			return Time(rng.Intn(64)) * 200 // ComputePerAccess-like grid
		}
	}
	schedule := func(chain int) {
		id := nextID
		nextID++
		at := e.Now() + delta()
		refSeq++
		heap.Push(ref, refEvent{at: at, seq: refSeq, id: id})
		var fire EventFunc
		fire = func(_ any, myID int64) {
			got = append(got, myID)
			if chain > 0 && rng.Intn(3) == 0 {
				chain--
				child := nextID
				nextID++
				cat := e.Now() + delta()
				refSeq++
				heap.Push(ref, refEvent{at: cat, seq: refSeq, id: child})
				e.AtCall(cat, fire, nil, child)
			}
		}
		e.AtCall(at, fire, nil, id)
	}

	nops := int(data[0])%48 + 8
	for op := 0; op < nops; op++ {
		switch rng.Intn(4) {
		case 0: // burst of simultaneous root events
			n := rng.Intn(6) + 1
			for i := 0; i < n; i++ {
				schedule(2)
			}
		case 1:
			schedule(4)
		case 2: // drain up to a boundary that both sides honor
			if e.Pending() > 0 {
				limit := e.Now() + delta()
				e.RunUntil(limit)
				for ref.Len() > 0 && ref.peek().at <= limit {
					ev := heap.Pop(ref).(refEvent)
					want := got[0]
					got = got[1:]
					if ev.id != want {
						t.Fatalf("RunUntil(%d): wheel dispatched %d, heap %d", limit, want, ev.id)
					}
				}
			}
		case 3: // single-step and compare against the reference head
			if e.Pending() > 0 {
				at, ok := e.Peek()
				if !ok || at != ref.peek().at {
					t.Fatalf("Peek = %d,%v; heap min %d", at, ok, ref.peek().at)
				}
				e.step()
				ev := heap.Pop(ref).(refEvent)
				want := got[0]
				got = got[1:]
				if ev.id != want || e.Now() != ev.at {
					t.Fatalf("step: wheel (%d @ %d), heap (%d @ %d)", want, e.Now(), ev.id, ev.at)
				}
			}
		}
		if e.Pending() != ref.Len() {
			t.Fatalf("Pending = %d, heap holds %d", e.Pending(), ref.Len())
		}
	}
	e.Run()
	for ref.Len() > 0 {
		ev := heap.Pop(ref).(refEvent)
		if len(got) == 0 {
			t.Fatalf("wheel dispatched %d events fewer than the heap", ref.Len()+1)
		}
		want := got[0]
		got = got[1:]
		if ev.id != want {
			t.Fatalf("drain: wheel dispatched %d, heap %d", want, ev.id)
		}
	}
	if len(got) != 0 {
		t.Fatalf("wheel dispatched %d extra events", len(got))
	}
}

// TestEngineDifferential is the deterministic slice of the fuzz
// property: a fixed corpus of seeds, always run, so the equivalence is
// checked on every `go test` (and under -tags gmtinvariants in CI), not
// only during fuzzing.
func TestEngineDifferential(t *testing.T) {
	for seed := byte(0); seed < 64; seed++ {
		diffRun(t, []byte{seed, byte(seed * 7), byte(255 - seed)})
	}
}

// FuzzEngineDifferential drives the timing wheel and the reference heap
// with identical randomized schedules and requires identical dispatch
// sequences. CI runs a short -fuzz pass; the seed corpus below covers
// each delta regime (level-0, upper levels, overflow, equal-time
// bursts).
func FuzzEngineDifferential(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{7, 7, 7, 7})
	f.Add([]byte{42, 0, 255, 13, 101})
	f.Add([]byte{255, 128, 64, 32, 16, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		diffRun(t, data)
	})
}
