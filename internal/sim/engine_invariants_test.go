//go:build gmtinvariants

package sim

import "testing"

// TestAdvanceToSkipAssertFires pins the invariant layer's teeth: an
// AdvanceTo past a pending event — the misuse the Peek-before-advance
// contract exists to prevent (HACKING.md, "Scheduler determinism
// contract") — must panic under -tags gmtinvariants.
func TestAdvanceToSkipAssertFires(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo past a pending event did not panic under gmtinvariants")
		}
	}()
	e := NewEngine()
	e.AfterCall(100, CallFunc, func() {}, 0)
	e.AdvanceTo(200)
}
