package sim

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/gmtsim/gmt/internal/invariant"
)

// Server is a capacity-limited resource with a FIFO wait queue: at most
// Capacity holders at a time. It models things like NVMe controller
// command slots, host fault-handler threads, and DMA engines.
type Server struct {
	eng      *Engine
	capacity int
	busy     int
	// waiters is a head-cursor FIFO: Release pops at head rather than
	// reslicing, so the backing array is reused instead of reallocated
	// on every grant cycle. Entries hold the typed-call triple directly;
	// the func() convenience path rides on CallFunc.
	waiters []waiter
	head    int

	// Stats.
	grants  int64
	maxWait int
}

// waiter is one queued acquisition.
type waiter struct {
	call EventFunc
	ctx  any
	arg  int64
}

// NewServer returns a server granting at most capacity concurrent holds.
func NewServer(eng *Engine, capacity int) *Server {
	if capacity < 1 {
		panic("sim: server capacity must be >= 1")
	}
	return &Server{eng: eng, capacity: capacity}
}

// Acquire requests a hold. fn runs as soon as a slot is available —
// synchronously if one is free now, otherwise when a holder releases.
func (s *Server) Acquire(fn func()) { s.AcquireCall(CallFunc, fn, 0) }

// AcquireCall is the typed-callback form of Acquire: call(ctx, arg) runs
// once a slot is available. Passing a pre-existing function with a
// pointer context performs no allocation, mirroring Engine.AtCall.
func (s *Server) AcquireCall(call EventFunc, ctx any, arg int64) {
	if s.busy < s.capacity {
		s.busy++
		s.grants++
		invariant.Assert(s.busy <= s.capacity,
			"sim: server holds %d grants above capacity %d", s.busy, s.capacity)
		call(ctx, arg)
		return
	}
	s.waiters = append(s.waiters, waiter{call, ctx, arg})
	if n := len(s.waiters) - s.head; n > s.maxWait {
		s.maxWait = n
	}
}

// Release returns a hold. The oldest waiter, if any, is granted
// immediately (at the current virtual time).
func (s *Server) Release() {
	if s.busy <= 0 {
		panic("sim: Release without matching Acquire")
	}
	if s.head < len(s.waiters) {
		w := s.waiters[s.head]
		s.waiters[s.head] = waiter{}
		s.head++
		switch {
		case s.head == len(s.waiters):
			s.waiters = s.waiters[:0]
			s.head = 0
		case s.head >= 64 && s.head*2 >= len(s.waiters):
			// Slide the live tail to the front so a never-draining queue
			// reuses its backing array instead of growing without bound.
			n := copy(s.waiters, s.waiters[s.head:])
			vacated := s.waiters[n:]
			for i := range vacated {
				vacated[i] = waiter{}
			}
			s.waiters = s.waiters[:n]
			s.head = 0
		}
		s.grants++
		w.call(w.ctx, w.arg)
		return
	}
	s.busy--
}

// Reset returns an idle server to its freshly constructed state,
// retaining the waiter queue's backing array. It panics if holds are
// still out or waiters are queued: resets are only defined at
// quiescence (mirroring Engine.Reset).
func (s *Server) Reset() {
	if s.busy != 0 || s.Queued() != 0 {
		panic(fmt.Sprintf("sim: Reset of a server with %d holds and %d waiters", s.busy, s.Queued()))
	}
	for i := range s.waiters {
		s.waiters[i] = waiter{}
	}
	s.waiters = s.waiters[:0]
	s.head = 0
	s.grants = 0
	s.maxWait = 0
}

// Use acquires the server, holds it for d, then runs done after releasing.
func (s *Server) Use(d Time, done func()) {
	s.Acquire(func() {
		s.eng.After(d, func() {
			s.Release()
			if done != nil {
				done()
			}
		})
	})
}

// InUse reports the number of current holders.
func (s *Server) InUse() int { return s.busy }

// Queued reports the number of waiters.
func (s *Server) Queued() int { return len(s.waiters) - s.head }

// Grants reports the total number of grants made.
func (s *Server) Grants() int64 { return s.grants }

// MaxQueue reports the high-water mark of the wait queue.
func (s *Server) MaxQueue() int { return s.maxWait }

// Pipe is a serialized bandwidth resource: transfers occupy the pipe
// back-to-back at a fixed byte rate, and each transfer additionally
// experiences a fixed propagation latency that is pipelined (it delays
// completion but does not occupy the pipe). It models a PCIe link
// direction, an SSD's internal media bandwidth, or a DMA engine.
type Pipe struct {
	eng       *Engine
	bytesPerS int64 // bandwidth in bytes per second
	latency   Time  // pipelined per-transfer latency
	freeAt    Time  // virtual time the pipe next becomes free

	// Occupancy memo: page-granular traffic repeats the same transfer
	// size, so cache the last 128-bit division result.
	memoN   int64
	memoOcc Time

	// Stats.
	bytes     int64
	transfers int64
	busy      Time
}

// NewPipe returns a pipe with the given bandwidth (bytes/second) and
// pipelined per-transfer latency.
func NewPipe(eng *Engine, bytesPerSecond int64, latency Time) *Pipe {
	if bytesPerSecond <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	return &Pipe{eng: eng, bytesPerS: bytesPerSecond, latency: latency}
}

// mulDiv computes n*mul/div in 128-bit intermediate precision, so
// transfer-time arithmetic cannot overflow int64 for any representable
// byte count (n*Second overflows at ≈9.2 GB otherwise, silently
// collapsing large transfers to 1 ns of occupancy). It panics if the
// final quotient itself exceeds int64 — a virtual time beyond ~292
// years always indicates a modeling bug, never a real transfer.
func mulDiv(n, mul, div int64) int64 {
	hi, lo := bits.Mul64(uint64(n), uint64(mul))
	if hi >= uint64(div) {
		panic(fmt.Sprintf("sim: %d*%d/%d overflows int64 virtual time", n, mul, div))
	}
	q, _ := bits.Div64(hi, lo, uint64(div))
	if q > math.MaxInt64 {
		panic(fmt.Sprintf("sim: %d*%d/%d overflows int64 virtual time", n, mul, div))
	}
	return int64(q)
}

// TransferTime reports the pipe occupancy for a transfer of n bytes,
// excluding latency and queueing.
func (p *Pipe) TransferTime(n int64) Time {
	if n <= 0 {
		return 0
	}
	if n == p.memoN {
		return p.memoOcc
	}
	t := mulDiv(n, Second, p.bytesPerS)
	if t < 1 {
		t = 1
	}
	p.memoN, p.memoOcc = n, t
	return t
}

// Transfer queues n bytes through the pipe; done runs when the last byte
// (plus propagation latency) has arrived.
func (p *Pipe) Transfer(n int64, done func()) {
	p.transfer(n, p.TransferTime(n), CallFunc, done, 0)
}

// TransferCall is the typed-callback form of Transfer: call(ctx, arg)
// runs at arrival, with no per-transfer closure.
func (p *Pipe) TransferCall(n int64, call EventFunc, ctx any, arg int64) {
	p.transfer(n, p.TransferTime(n), call, ctx, arg)
}

// TransferLimited is Transfer for a requester that cannot saturate the
// pipe: the transfer occupies the pipe at the slower of the pipe rate and
// maxBps. It models, e.g., a zero-copy transfer driven by too few GPU
// threads to fill the PCIe link (paper Figure 6).
func (p *Pipe) TransferLimited(n, maxBps int64, done func()) {
	p.transfer(n, p.limitedTime(n, maxBps), CallFunc, done, 0)
}

// TransferLimitedCall is the typed-callback form of TransferLimited.
func (p *Pipe) TransferLimitedCall(n, maxBps int64, call EventFunc, ctx any, arg int64) {
	p.transfer(n, p.limitedTime(n, maxBps), call, ctx, arg)
}

// limitedTime is the occupancy for a rate-limited transfer.
func (p *Pipe) limitedTime(n, maxBps int64) Time {
	occ := p.TransferTime(n)
	if maxBps > 0 && maxBps < p.bytesPerS {
		occ = mulDiv(n, Second, maxBps)
		if occ < 1 {
			occ = 1
		}
	}
	return occ
}

func (p *Pipe) transfer(n int64, occ Time, call EventFunc, ctx any, arg int64) {
	if occ < 0 {
		panic(fmt.Sprintf("sim: negative pipe occupancy %d ns for %d bytes", occ, n))
	}
	invariant.Assert(occ >= p.TransferTime(n),
		"sim: pipe granted %d bytes in %d ns, faster than capacity %d B/s allows", n, occ, p.bytesPerS)
	start := p.freeAt
	if now := p.eng.Now(); start < now {
		start = now
	}
	invariant.Assert(start+occ >= p.freeAt,
		"sim: pipe commitment moved backwards: %d -> %d", p.freeAt, start+occ)
	p.freeAt = start + occ
	p.bytes += n
	p.transfers++
	p.busy += occ
	end := p.freeAt + p.latency
	// Typed path: completion callbacks are on the per-transfer hot path
	// and ride AtCall without a wrapping closure.
	p.eng.AtCall(end, call, ctx, arg)
}

// Reset returns the pipe to its freshly constructed state: no pending
// commitment, cleared occupancy memo, zeroed counters. The caller must
// have drained the engine first (an in-flight transfer's completion
// event would otherwise fire against the reset pipe's accounting).
func (p *Pipe) Reset() {
	p.freeAt = 0
	p.memoN, p.memoOcc = 0, 0
	p.bytes, p.transfers, p.busy = 0, 0, 0
}

// Backlog reports how far in the future the pipe is already committed.
func (p *Pipe) Backlog() Time {
	b := p.freeAt - p.eng.Now()
	if b < 0 {
		return 0
	}
	return b
}

// Bytes reports the total bytes transferred so far.
func (p *Pipe) Bytes() int64 { return p.bytes }

// Transfers reports the number of transfers so far.
func (p *Pipe) Transfers() int64 { return p.transfers }

// BusyTime reports the cumulative time the pipe was occupied.
func (p *Pipe) BusyTime() Time { return p.busy }
