package sim

import (
	"testing"

	"github.com/gmtsim/gmt/internal/invariant"
	"github.com/gmtsim/gmt/internal/raceflag"
)

// Microbenchmarks and allocation gates for the engine's schedule/dispatch
// cycle. The typed path (AtCall/AfterCall) must be allocation-free in
// steady state; the compatibility path (At/After) may pay for the
// caller's closure but nothing engine-side.

func nopCall(any, int64) {}

// BenchmarkScheduleDispatchTyped measures one schedule+dispatch cycle on
// the typed path. Steady state is 0 allocs/op.
func BenchmarkScheduleDispatchTyped(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AfterCall(1, nopCall, nil, 0)
		e.Run()
	}
}

// BenchmarkScheduleDispatchClosure measures the compatibility path with
// a capturing closure — what all device packages paid per event before
// the typed path existed. The delta against the typed benchmark is the
// per-event saving.
func BenchmarkScheduleDispatchClosure(b *testing.B) {
	e := NewEngine()
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, func() { sink = i })
		e.Run()
	}
	_ = sink
}

// BenchmarkScheduleDispatchDeep measures schedule+dispatch with a large
// pending population, exercising the heap's sift paths.
func BenchmarkScheduleDispatchDeep(b *testing.B) {
	e := NewEngine()
	const depth = 1024
	for i := 0; i < depth; i++ {
		e.AfterCall(Time(1+i%97), nopCall, nil, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AfterCall(Time(1+i%97), nopCall, nil, 0)
		e.step()
	}
	b.StopTimer()
	e.Run()
}

// allocGatesEnabled reports whether allocation-exactness assertions are
// meaningful for this build: race instrumentation and gmtinvariants
// assertions both allocate on paths the default build keeps clean.
func allocGatesEnabled() bool { return !raceflag.Enabled && !invariant.Enabled }

// TestScheduleDispatchAllocGate is the CI gate for the tentpole's
// engine half: a steady-state schedule+dispatch cycle on the typed path
// performs zero allocations, and the compatibility path allocates only
// the caller's closure (at most 1/op) — at least 2x fewer than the old
// closure+interface-boxing representation's 2/op.
func TestScheduleDispatchAllocGate(t *testing.T) {
	if !allocGatesEnabled() {
		t.Skip("allocation gates run on the default build only")
	}
	e := NewEngine()
	// Warm the arena, free list, and heap to steady-state capacity.
	for i := 0; i < 1024; i++ {
		e.AfterCall(Time(i%13), nopCall, nil, 0)
	}
	e.Run()

	typed := testing.AllocsPerRun(200, func() {
		e.AfterCall(1, nopCall, nil, 0)
		e.AfterCall(2, nopCall, e, 7)
		e.Run()
	})
	if typed != 0 {
		t.Errorf("typed schedule+dispatch = %.1f allocs/op, want 0", typed)
	}

	sink := 0
	compat := testing.AllocsPerRun(200, func() {
		e.After(1, func() { sink++ })
		e.Run()
	})
	if compat > 1 {
		t.Errorf("compat schedule+dispatch = %.1f allocs/op, want <= 1 (caller closure only)", compat)
	}
	_ = sink
}

// TestPipeTransferAllocGate: pipe completions ride the typed path, so a
// steady-state transfer with a pre-existing done callback is
// allocation-free.
func TestPipeTransferAllocGate(t *testing.T) {
	if !allocGatesEnabled() {
		t.Skip("allocation gates run on the default build only")
	}
	e := NewEngine()
	p := NewPipe(e, 1_000_000_000, 100)
	done := func() {}
	for i := 0; i < 64; i++ {
		p.Transfer(4096, done)
	}
	e.Run()
	n := testing.AllocsPerRun(200, func() {
		p.Transfer(4096, done)
		e.Run()
	})
	if n != 0 {
		t.Errorf("pipe transfer = %.1f allocs/op, want 0", n)
	}
}
