// Package sim provides a deterministic discrete-event simulation engine.
//
// All GMT components — the GPU execution model, the NVMe SSD, the PCIe
// link, and the tiering runtime — advance a single virtual clock owned by
// an Engine. Events scheduled for the same instant fire in scheduling
// order (FIFO), so a run is fully deterministic for a given seed.
//
// The engine is single-goroutine: callbacks run on the caller of Run, and
// no synchronization is required inside components.
//
// # Scheduling paths
//
// Two scheduling APIs coexist. At/After accept a plain func() and remain
// the general-purpose path; the closure they are handed is the caller's
// only allocation. AtCall/AfterCall accept an EventFunc — a top-level
// function plus a context pointer and an int64 argument — and allocate
// nothing at all in steady state, which is what the per-access hot paths
// (warp stepping, pipe completions) use. Internally both paths share one
// representation: free-listed event records threaded through a
// hierarchical timing wheel, so no interface boxing or per-event
// allocation happens inside the engine on either path.
//
// # Queue discipline
//
// The pending set is a hierarchical timing wheel (4 levels × 256 slots
// covering 2^32 ns beyond the cursor) with a ladder-style overflow list
// for farther-out events. Push and pop are O(1): almost every delta the
// simulator schedules is one of a few small constants (per-access
// compute, per-I/O latency, link grants), so events land directly in the
// bottom wheel and pops walk a 256-bit occupancy bitmap. Dispatch order
// is bit-exact with a binary min-heap ordered by (time, sequence): slot
// lists are appended in schedule order and cascades preserve it, so the
// FIFO tie-break of simultaneous events survives every structural move
// (see HACKING.md, "Scheduler determinism contract"; the differential
// fuzz test in engine_diff_test.go pins the equivalence).
package sim

import (
	"fmt"
	"math/bits"

	"github.com/gmtsim/gmt/internal/invariant"
)

// Time is virtual time in nanoseconds since the start of the run.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// EventFunc is the typed callback of the zero-allocation scheduling
// path: a top-level (or otherwise pre-existing) function invoked with
// the context and argument captured at schedule time. Passing a pointer
// as ctx does not allocate; capturing state in a fresh closure would.
type EventFunc func(ctx any, arg int64)

// CallFunc is an EventFunc that invokes its context as a niladic
// function. It lets a caller holding an existing func() — typically a
// completion callback threaded through device layers — schedule it
// without wrapping it in a new closure:
//
//	eng.AtCall(t, sim.CallFunc, done, 0)
//
// A nil done is tolerated, so completion paths need no branch.
func CallFunc(ctx any, _ int64) {
	if fn, ok := ctx.(func()); ok && fn != nil {
		fn()
	}
}

// Timing-wheel geometry: wheelLevels levels of wheelSlots slots each.
// Level k buckets times by bits [k*wheelBits, (k+1)*wheelBits) relative
// to the cursor's window, so the wheel spans 2^wheelSpan ns beyond the
// cursor; events farther out wait in the overflow ladder.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	wheelSpan   = wheelBits * wheelLevels
	wheelWords  = wheelSlots / 64
)

// noEvent terminates a slot's singly-linked record list.
const noEvent int32 = -1

// eventRecord is one scheduled event. Records live in a free-listed
// arena owned by the engine: dispatch releases the record (zeroing its
// callback references so dispatched closures become collectable) before
// the callback runs, and the next schedule reuses it.
type eventRecord struct {
	at  Time
	seq int64
	// next links the record into its wheel slot's FIFO list.
	next int32

	// Exactly one of call/fn is set: call is the typed path (with ctx
	// and arg), fn the compatibility path.
	call EventFunc
	ctx  any
	arg  int64
	fn   func()
}

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is ready to use.
type Engine struct {
	now Time

	// recs is the record arena; free lists reusable indices.
	recs []eventRecord
	free []int32

	// cur is the wheel cursor: the time of the last structural advance
	// (a pop or an overflow rebase). Invariants: cur <= now, and every
	// pending event's time is >= cur. Slot placement hashes an event's
	// time against cur, so slots behind the cursor are always empty and
	// occupancy-bitmap scans can start at bit 0.
	cur Time
	// head/tail index each slot's FIFO record list; occ is the per-level
	// occupancy bitmap (the head/tail values are meaningful only while
	// the slot's occ bit is set, which is what lets the zero value work).
	head [wheelLevels][wheelSlots]int32
	tail [wheelLevels][wheelSlots]int32
	occ  [wheelLevels][wheelWords]uint64

	// overflow is the ladder fallback: events beyond the wheel's span,
	// in schedule order. They re-enter the wheel when it drains and the
	// cursor rebases to overflowMin (the earliest overflow time).
	overflow    []int32
	overflowMin Time

	pending int

	// peekAt caches the earliest pending time (valid while peekOK).
	// Schedules keep it fresh in O(1); pops invalidate it, and the next
	// Peek recomputes from the bitmaps. Across a run each dispatch pays
	// for at most one recompute, so Peek is O(1) amortized.
	peekAt Time
	peekOK bool

	seq   int64
	steps int64

	// Pool conservation counters: every schedule acquires one record,
	// every dispatch releases it. Run asserts they balance (under -tags
	// gmtinvariants), so a pool leak fails loudly instead of silently
	// re-growing the arena.
	acquired int64
	released int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Reset returns a quiescent engine to the state NewEngine constructs,
// retaining the event-record arena so the next run schedules into
// already-allocated records instead of re-growing the pool. It panics if
// events are pending: like Snapshot, a reset is only defined at
// quiescence, where the wheel and the overflow ladder are structurally
// empty and the clock plus counters are the entire state.
//
// The free list keeps whatever pop order the previous run left it in.
// That is behavior-neutral: record indices only name storage; dispatch
// order is fully determined by (time, sequence) and slot list order, so
// a reset engine replays any schedule bit-identically to a fresh one
// (pinned by TestEngineResetReplaysIdentically).
func (e *Engine) Reset() {
	if e.pending != 0 {
		panic(fmt.Sprintf("sim: Reset with %d events pending", e.pending))
	}
	if invariant.Enabled {
		for lvl := 0; lvl < wheelLevels; lvl++ {
			for w, word := range e.occ[lvl] {
				invariant.Assert(word == 0,
					"sim: Reset found occupied wheel slots at level %d word %d with nothing pending", lvl, w)
			}
		}
		invariant.Assert(len(e.free) == len(e.recs),
			"sim: Reset found %d free of %d records with nothing pending", len(e.free), len(e.recs))
	}
	e.now, e.cur = 0, 0
	e.seq, e.steps = 0, 0
	e.overflow = e.overflow[:0]
	e.overflowMin = 0
	e.peekAt, e.peekOK = 0, false
	e.acquired, e.released = 0, 0
	// Sweep retained callback references (a drain via RunUntil does not
	// sweep the arena the way Run does), so nothing scheduled in the
	// previous run outlives it through the free list.
	for i := range e.recs {
		e.recs[i].call, e.recs[i].ctx, e.recs[i].fn = nil, nil, nil
	}
}

// Snapshot is the compact state of a quiescent engine: with no events
// pending, the wheel, the overflow ladder, and the record arena are all
// structurally empty, so the clock and the determinism counters are the
// entire state. Runtime forking (core.Runtime.Fork) captures one after
// a warm-up prefix and hydrates any number of child engines from it.
type Snapshot struct {
	now   Time
	seq   int64
	steps int64
}

// Now reports the captured virtual time.
func (s Snapshot) Now() Time { return s.now }

// Snapshot captures the engine's state. It panics if events are still
// pending: forks are only defined at quiescence, where the wheel is
// empty and the snapshot is exact rather than a deep copy.
func (e *Engine) Snapshot() Snapshot {
	if e.pending != 0 {
		panic(fmt.Sprintf("sim: Snapshot with %d events pending", e.pending))
	}
	return Snapshot{now: e.now, seq: e.seq, steps: e.steps}
}

// NewEngineFrom returns a fresh engine whose clock, sequence counter,
// and dispatch count continue from snap. The wheel cursor rebases to
// the snapshot time, which preserves the placement invariant (every
// future event is >= now >= cur); because the sequence counter also
// continues, equal-time tie-breaking in a child matches what the parent
// engine would have done had it kept running.
func NewEngineFrom(snap Snapshot) *Engine {
	return &Engine{now: snap.now, cur: snap.now, seq: snap.seq, steps: snap.steps}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been dispatched so far.
func (e *Engine) Steps() int64 { return e.steps }

// Pending reports how many events are scheduled but not yet dispatched.
func (e *Engine) Pending() int { return e.pending }

// Peek reports the time of the earliest pending event, without
// dispatching or restructuring anything. It is the guard the
// synchronous-completion fast path consults before advancing time
// inline: AdvanceTo(t) is legal only while Peek is absent or strictly
// later than t (see HACKING.md, "Scheduler determinism contract").
//
//gmt:hotpath
func (e *Engine) Peek() (Time, bool) {
	if e.pending == 0 {
		return 0, false
	}
	if !e.peekOK {
		e.peekAt = e.findMin()
		e.peekOK = true
	}
	return e.peekAt, true
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// The caller must have established — via Peek — that no pending event is
// due at or before t; violating that would let the inline advance
// reorder the dispatch sequence, so it is asserted under -tags
// gmtinvariants. A backwards target panics unconditionally.
//
//gmt:hotpath
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo target %d behind clock %d", t, e.now))
	}
	if invariant.Enabled {
		if at, ok := e.Peek(); ok {
			invariant.Assert(at > t,
				"sim: AdvanceTo(%d) would skip the pending event at %d", t, at)
		}
	}
	e.now = t
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it always indicates a modeling bug.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, nil, nil, 0, fn)
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.schedule(e.now+d, nil, nil, 0, fn) }

// AtCall schedules call(ctx, arg) at virtual time t. Unlike At, this
// path performs no allocation in steady state: the callback is a shared
// function value and the context travels as a pointer.
//
//gmt:hotpath
func (e *Engine) AtCall(t Time, call EventFunc, ctx any, arg int64) {
	e.schedule(t, call, ctx, arg, nil)
}

// AfterCall schedules call(ctx, arg) d nanoseconds from now.
//
//gmt:hotpath
func (e *Engine) AfterCall(d Time, call EventFunc, ctx any, arg int64) {
	e.schedule(e.now+d, call, ctx, arg, nil)
}

func (e *Engine) schedule(t Time, call EventFunc, ctx any, arg int64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	id := e.acquireRecord()
	r := &e.recs[id]
	r.at = t
	r.seq = e.seq
	r.call = call
	r.ctx = ctx
	r.arg = arg
	r.fn = fn
	e.place(id, t)
	e.pending++
	// Keep the cached minimum exact: a first event defines it, an
	// earlier event lowers it, a later one cannot disturb it.
	if e.pending == 1 || (e.peekOK && t < e.peekAt) {
		e.peekAt = t
		e.peekOK = true
	}
}

// place threads record id (due at t) onto its wheel slot, or onto the
// overflow ladder when t is beyond the wheel's span. The level is the
// highest byte in which t differs from the cursor, so every event below
// the current level-0 window boundary sits in the bottom wheel where its
// slot denotes an exact instant. Appending at the tail preserves
// schedule (sequence) order within a slot.
func (e *Engine) place(id int32, t Time) {
	diff := t ^ e.cur
	if diff>>wheelSpan != 0 {
		if len(e.overflow) == 0 || t < e.overflowMin {
			e.overflowMin = t
		}
		e.overflow = append(e.overflow, id)
		return
	}
	lvl := 0
	if diff != 0 {
		lvl = (bits.Len64(uint64(diff)) - 1) / wheelBits
	}
	s := int(t>>(uint(lvl)*wheelBits)) & wheelMask
	e.recs[id].next = noEvent
	if e.occ[lvl][s>>6]&(1<<(uint(s)&63)) != 0 {
		e.recs[e.tail[lvl][s]].next = id
	} else {
		e.occ[lvl][s>>6] |= 1 << (uint(s) & 63)
		e.head[lvl][s] = id
	}
	e.tail[lvl][s] = id
}

// firstSet returns the lowest set bit index of a level's occupancy
// bitmap. Slots behind the cursor are empty by invariant, so the lowest
// occupied slot is always the earliest.
func firstSet(w *[wheelWords]uint64) (int, bool) {
	for i, word := range w {
		if word != 0 {
			return i<<6 + bits.TrailingZeros64(word), true
		}
	}
	return 0, false
}

// findMin computes the earliest pending time without mutating the
// wheel. Levels are strictly ordered in time (everything at level k+1 is
// later than everything at level k or below), so the first occupied
// level decides: at level 0 a slot is an exact instant; higher up the
// slot's list is scanned for its earliest member.
func (e *Engine) findMin() Time {
	if s, ok := firstSet(&e.occ[0]); ok {
		return e.cur&^Time(wheelMask) + Time(s)
	}
	for lvl := 1; lvl < wheelLevels; lvl++ {
		s, ok := firstSet(&e.occ[lvl])
		if !ok {
			continue
		}
		min := e.recs[e.head[lvl][s]].at
		for id := e.recs[e.head[lvl][s]].next; id != noEvent; id = e.recs[id].next {
			if at := e.recs[id].at; at < min {
				min = at
			}
		}
		return min
	}
	return e.overflowMin
}

// pop removes and returns the earliest pending record, advancing the
// cursor. Level-0 pops are O(1); exhausting the bottom window cascades
// the next occupied higher slot down (amortized O(1) per event, since
// each event moves down at most wheelLevels-1 times), and a fully
// drained wheel rebases onto the overflow ladder.
func (e *Engine) pop() int32 {
	for {
		if s, ok := firstSet(&e.occ[0]); ok {
			id := e.head[0][s]
			if nxt := e.recs[id].next; nxt == noEvent {
				e.occ[0][s>>6] &^= 1 << (uint(s) & 63)
			} else {
				e.head[0][s] = nxt
			}
			e.cur = e.cur&^Time(wheelMask) + Time(s)
			e.pending--
			e.peekOK = false
			return id
		}
		if e.cascade() {
			continue
		}
		// Ladder fallback: the wheel is empty, so nothing is pending
		// before overflowMin and the cursor can rebase there. Replaying
		// the ladder in schedule order re-splits it: events inside the
		// new span enter the wheel (equal-time FIFO intact), the rest
		// stay behind with a recomputed minimum.
		if len(e.overflow) == 0 {
			panic("sim: pop from an empty engine")
		}
		e.cur = e.overflowMin
		ovf := e.overflow
		e.overflow = e.overflow[:0]
		for _, id := range ovf {
			// In-place refill over the shared backing array is safe:
			// when entry i is read (copied out by range) at most i
			// entries have been re-appended, so writes trail reads.
			e.place(id, e.recs[id].at)
		}
	}
}

// cascade moves the first occupied slot of the lowest non-empty level
// down one level (or more), advancing the cursor to the slot's window
// start. Walking the slot list in order and tail-appending keeps the
// per-instant FIFO intact: equal-time events can only share a slot in
// schedule order. Reports false when every level is empty.
func (e *Engine) cascade() bool {
	for lvl := 1; lvl < wheelLevels; lvl++ {
		s, ok := firstSet(&e.occ[lvl])
		if !ok {
			continue
		}
		id := e.head[lvl][s]
		e.occ[lvl][s>>6] &^= 1 << (uint(s) & 63)
		shift := uint(lvl) * wheelBits
		e.cur = e.cur&^(1<<(shift+wheelBits)-1) | Time(s)<<shift
		for id != noEvent {
			nxt := e.recs[id].next
			e.place(id, e.recs[id].at)
			id = nxt
		}
		return true
	}
	return false
}

// acquireRecord pops a free record index, growing the arena only when
// the free list is empty (i.e. only while the peak event population is
// still growing).
func (e *Engine) acquireRecord() int32 {
	e.acquired++
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.recs = append(e.recs, eventRecord{})
	return int32(len(e.recs) - 1)
}

// releaseRecord returns the index to the free list. The record's
// callback and context fields are deliberately NOT zeroed here: the
// next schedule overwrites every field, so zeroing per event would pay
// a typed memclr plus write barriers only to be overwritten. A free
// record therefore pins its last ctx/fn until reuse — transiently,
// bounded by the arena (peak concurrent events), and in practice those
// are pooled pipeline records that outlive the engine anyway. Run()
// sweeps the arena clean once at drain so nothing outlives the
// simulation it belongs to.
func (e *Engine) releaseRecord(id int32) {
	e.released++
	e.free = append(e.free, id)
}

// Run dispatches events until none remain, advancing the clock. On
// completion it asserts event-pool conservation (gmtinvariants builds):
// every acquired record must have been released back to the free list.
//
//gmt:hotpath
//gmt:blocking
func (e *Engine) Run() {
	for e.pending > 0 {
		e.step()
	}
	if invariant.Enabled {
		invariant.Assert(e.acquired == e.released,
			"sim: event pool leak: %d records acquired, %d released", e.acquired, e.released)
		invariant.Assert(len(e.free) == len(e.recs),
			"sim: event pool leak: %d free of %d records after drain", len(e.free), len(e.recs))
	}
	// Drop callback/context references retained by free records (see
	// releaseRecord): one arena sweep at drain instead of a typed memclr
	// per event, so dispatched closures and their captures do not outlive
	// the run.
	for i := range e.recs {
		e.recs[i].call, e.recs[i].ctx, e.recs[i].fn = nil, nil, nil
	}
}

// RunUntil dispatches events with time <= t, then sets the clock to t.
// A target behind the current clock panics: the clock is monotonic, and
// a backwards target always indicates a harness bug (the same
// invariant the dispatcher asserts per event under -tags gmtinvariants).
//
//gmt:hotpath
//gmt:blocking
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil target %d behind clock %d", t, e.now))
	}
	for e.pending > 0 {
		if at, _ := e.Peek(); at > t {
			break
		}
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) step() {
	var peeked Time
	if invariant.Enabled {
		peeked, _ = e.Peek()
	}
	id := e.pop()
	r := &e.recs[id]
	invariant.Assert(r.at >= e.now,
		"sim: clock would run backwards: dispatching event at %d with clock at %d", r.at, e.now)
	if invariant.Enabled {
		invariant.Assert(peeked == r.at,
			"sim: Peek promised %d but dispatch popped %d", peeked, r.at)
	}
	e.now = r.at
	e.steps++
	call, ctx, arg, fn := r.call, r.ctx, r.arg, r.fn
	// Release before dispatch: the record (and its references) is
	// already recycled when the callback runs, so a callback scheduling
	// new events reuses it immediately.
	e.releaseRecord(id)
	if call != nil {
		call(ctx, arg)
	} else {
		fn()
	}
}
