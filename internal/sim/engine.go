// Package sim provides a deterministic discrete-event simulation engine.
//
// All GMT components — the GPU execution model, the NVMe SSD, the PCIe
// link, and the tiering runtime — advance a single virtual clock owned by
// an Engine. Events scheduled for the same instant fire in scheduling
// order (FIFO), so a run is fully deterministic for a given seed.
//
// The engine is single-goroutine: callbacks run on the caller of Run, and
// no synchronization is required inside components.
package sim

import (
	"container/heap"
	"fmt"

	"github.com/gmtsim/gmt/internal/invariant"
)

// Time is virtual time in nanoseconds since the start of the run.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	// Zero the vacated slot: the backing array outlives the pop, and a
	// stale copy would keep the event's closure — and everything it
	// captures — reachable for the rest of the run.
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is ready to use.
type Engine struct {
	now    Time
	events eventHeap
	seq    int64
	steps  int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been dispatched so far.
func (e *Engine) Steps() int64 { return e.steps }

// Pending reports how many events are scheduled but not yet dispatched.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it always indicates a modeling bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Run dispatches events until none remain, advancing the clock.
func (e *Engine) Run() {
	for len(e.events) > 0 {
		e.step()
	}
}

// RunUntil dispatches events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(event)
	invariant.Assert(ev.at >= e.now,
		"sim: clock would run backwards: dispatching event at %d with clock at %d", ev.at, e.now)
	e.now = ev.at
	e.steps++
	ev.fn()
}
