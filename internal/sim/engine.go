// Package sim provides a deterministic discrete-event simulation engine.
//
// All GMT components — the GPU execution model, the NVMe SSD, the PCIe
// link, and the tiering runtime — advance a single virtual clock owned by
// an Engine. Events scheduled for the same instant fire in scheduling
// order (FIFO), so a run is fully deterministic for a given seed.
//
// The engine is single-goroutine: callbacks run on the caller of Run, and
// no synchronization is required inside components.
//
// # Scheduling paths
//
// Two scheduling APIs coexist. At/After accept a plain func() and remain
// the general-purpose path; the closure they are handed is the caller's
// only allocation. AtCall/AfterCall accept an EventFunc — a top-level
// function plus a context pointer and an int64 argument — and allocate
// nothing at all in steady state, which is what the per-access hot paths
// (warp stepping, pipe completions) use. Internally both paths share one
// representation: free-listed event records indexed by a slice-backed
// binary heap, so no interface boxing or per-event allocation happens
// inside the engine on either path.
package sim

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/invariant"
)

// Time is virtual time in nanoseconds since the start of the run.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// EventFunc is the typed callback of the zero-allocation scheduling
// path: a top-level (or otherwise pre-existing) function invoked with
// the context and argument captured at schedule time. Passing a pointer
// as ctx does not allocate; capturing state in a fresh closure would.
type EventFunc func(ctx any, arg int64)

// CallFunc is an EventFunc that invokes its context as a niladic
// function. It lets a caller holding an existing func() — typically a
// completion callback threaded through device layers — schedule it
// without wrapping it in a new closure:
//
//	eng.AtCall(t, sim.CallFunc, done, 0)
//
// A nil done is tolerated, so completion paths need no branch.
func CallFunc(ctx any, _ int64) {
	if fn, ok := ctx.(func()); ok && fn != nil {
		fn()
	}
}

// eventRecord is one scheduled event. Records live in a free-listed
// arena owned by the engine: dispatch releases the record (zeroing its
// callback references so dispatched closures become collectable) before
// the callback runs, and the next schedule reuses it.
type eventRecord struct {
	at  Time
	seq int64

	// Exactly one of call/fn is set: call is the typed path (with ctx
	// and arg), fn the compatibility path.
	call EventFunc
	ctx  any
	arg  int64
	fn   func()
}

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is ready to use.
type Engine struct {
	now Time
	// recs is the record arena; free lists reusable indices; heap is a
	// binary min-heap of record indices ordered by (at, seq).
	recs []eventRecord
	free []int32
	heap []int32

	seq   int64
	steps int64

	// Pool conservation counters: every schedule acquires one record,
	// every dispatch releases it. Run asserts they balance (under -tags
	// gmtinvariants), so a pool leak fails loudly instead of silently
	// re-growing the arena.
	acquired int64
	released int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been dispatched so far.
func (e *Engine) Steps() int64 { return e.steps }

// Pending reports how many events are scheduled but not yet dispatched.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it always indicates a modeling bug.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, nil, nil, 0, fn)
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.schedule(e.now+d, nil, nil, 0, fn) }

// AtCall schedules call(ctx, arg) at virtual time t. Unlike At, this
// path performs no allocation in steady state: the callback is a shared
// function value and the context travels as a pointer.
func (e *Engine) AtCall(t Time, call EventFunc, ctx any, arg int64) {
	e.schedule(t, call, ctx, arg, nil)
}

// AfterCall schedules call(ctx, arg) d nanoseconds from now.
func (e *Engine) AfterCall(d Time, call EventFunc, ctx any, arg int64) {
	e.schedule(e.now+d, call, ctx, arg, nil)
}

func (e *Engine) schedule(t Time, call EventFunc, ctx any, arg int64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	id := e.acquireRecord()
	r := &e.recs[id]
	r.at = t
	r.seq = e.seq
	r.call = call
	r.ctx = ctx
	r.arg = arg
	r.fn = fn
	e.heapPush(id)
}

// acquireRecord pops a free record index, growing the arena only when
// the free list is empty (i.e. only while the peak event population is
// still growing).
func (e *Engine) acquireRecord() int32 {
	e.acquired++
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.recs = append(e.recs, eventRecord{})
	return int32(len(e.recs) - 1)
}

// releaseRecord zeroes the record — dropping its callback, context, and
// closure references so everything they kept alive becomes collectable —
// and returns the index to the free list.
func (e *Engine) releaseRecord(id int32) {
	e.released++
	e.recs[id] = eventRecord{}
	e.free = append(e.free, id)
}

// less orders record indices by (time, schedule sequence): FIFO within
// an instant.
func (e *Engine) less(a, b int32) bool {
	ra, rb := &e.recs[a], &e.recs[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

func (e *Engine) heapPush(id int32) {
	e.heap = append(e.heap, id)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) heapPop() int32 {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && e.less(e.heap[r], e.heap[l]) {
			m = r
		}
		if !e.less(e.heap[m], e.heap[i]) {
			break
		}
		e.heap[i], e.heap[m] = e.heap[m], e.heap[i]
		i = m
	}
	return top
}

// Run dispatches events until none remain, advancing the clock. On
// completion it asserts event-pool conservation (gmtinvariants builds):
// every acquired record must have been released back to the free list.
func (e *Engine) Run() {
	for len(e.heap) > 0 {
		e.step()
	}
	if invariant.Enabled {
		invariant.Assert(e.acquired == e.released,
			"sim: event pool leak: %d records acquired, %d released", e.acquired, e.released)
		invariant.Assert(len(e.free) == len(e.recs),
			"sim: event pool leak: %d free of %d records after drain", len(e.free), len(e.recs))
	}
}

// RunUntil dispatches events with time <= t, then sets the clock to t.
// A target behind the current clock panics: the clock is monotonic, and
// a backwards target always indicates a harness bug (the same
// invariant the dispatcher asserts per event under -tags gmtinvariants).
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil target %d behind clock %d", t, e.now))
	}
	for len(e.heap) > 0 && e.recs[e.heap[0]].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) step() {
	id := e.heapPop()
	r := &e.recs[id]
	invariant.Assert(r.at >= e.now,
		"sim: clock would run backwards: dispatching event at %d with clock at %d", r.at, e.now)
	e.now = r.at
	e.steps++
	call, ctx, arg, fn := r.call, r.ctx, r.arg, r.fn
	// Release before dispatch: the record (and its references) is
	// already recycled when the callback runs, so a callback scheduling
	// new events reuses it immediately.
	e.releaseRecord(id)
	if call != nil {
		call(ctx, arg)
	} else {
		fn()
	}
}
