package sim

import (
	"math"
	"testing"
)

// TestPipeTransferTimeLarge is the overflow regression: n*Second
// overflows int64 for any transfer above ≈9.2 GB, and the pre-fix
// arithmetic silently clamped the garbage to 1 ns of occupancy.
func TestPipeTransferTimeLarge(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 3_200_000_000, 0) // 3.2 GB/s media
	n := int64(64) << 30              // 64 GiB, a striped-array-sized transfer
	want := int64(21474836480)        // 64 GiB / 3.2 GB/s = 21.47 s exactly
	if got := p.TransferTime(n); got != want {
		t.Fatalf("TransferTime(64 GiB) = %d, want %d", got, want)
	}
}

// TestPipeTransferTimeOverflowBoundary pins both sides of the old
// overflow point: n*Second overflows int64 starting at n = 9223372037.
func TestPipeTransferTimeOverflowBoundary(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1_000_000_000, 0) // 1 byte per ns: TransferTime(n) == n
	for _, n := range []int64{9223372036, 9223372037, 20_000_000_000} {
		if got := p.TransferTime(n); got != n {
			t.Fatalf("TransferTime(%d) = %d, want %d", n, got, n)
		}
	}
}

func TestPipeTransferTimeResultOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TransferTime did not panic on a quotient beyond int64")
		}
	}()
	e := NewEngine()
	p := NewPipe(e, 1, 0) // 1 B/s: any sizeable n overflows the quotient
	p.TransferTime(math.MaxInt64)
}

// TestPipeTransferLimitedLarge drives a large limited transfer through
// the engine: completion must land at the exact occupancy, not at the
// pre-fix wrapped value.
func TestPipeTransferLimitedLarge(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 8_000_000_000, 5)
	n := int64(10) << 30 // 10 GiB
	var doneAt Time
	p.TransferLimited(n, 2_000_000_000, func() { doneAt = e.Now() })
	e.Run()
	want := mulDiv(n, Second, 2_000_000_000) + 5
	if doneAt != want {
		t.Fatalf("limited transfer completed at %d, want %d", doneAt, want)
	}
	if b := p.BusyTime(); b != want-5 {
		t.Fatalf("BusyTime = %d, want %d", b, want-5)
	}
}

func TestMulDivExact(t *testing.T) {
	cases := []struct{ n, mul, div, want int64 }{
		{1, Second, 1_000_000_000, 1},
		{3, 10, 4, 7},                      // truncates toward zero
		{1 << 40, Second, 1 << 40, Second}, // 128-bit intermediate
		{math.MaxInt64, 2, 4, math.MaxInt64 / 2},
	}
	for _, c := range cases {
		if got := mulDiv(c.n, c.mul, c.div); got != c.want {
			t.Errorf("mulDiv(%d,%d,%d) = %d, want %d", c.n, c.mul, c.div, got, c.want)
		}
	}
}
