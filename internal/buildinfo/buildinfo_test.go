package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestVersionNeverEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() returned an empty string")
	}
}

func TestVersionFrom(t *testing.T) {
	cases := []struct {
		name string
		bi   debug.BuildInfo
		want string
	}{
		{
			name: "tagged module",
			bi: debug.BuildInfo{
				GoVersion: "go1.22.0",
				Main:      debug.Module{Version: "v1.2.3"},
			},
			want: "v1.2.3 go1.22.0",
		},
		{
			name: "devel with dirty vcs",
			bi: debug.BuildInfo{
				GoVersion: "go1.22.0",
				Main:      debug.Module{Version: "(devel)"},
				Settings: []debug.BuildSetting{
					{Key: "vcs.revision", Value: "0123456789abcdef0123"},
					{Key: "vcs.modified", Value: "true"},
				},
			},
			want: "0123456789ab-dirty go1.22.0",
		},
		{
			name: "no info at all",
			bi:   debug.BuildInfo{},
			want: "devel",
		},
	}
	for _, c := range cases {
		if got := versionFrom(&c.bi); got != c.want {
			t.Errorf("%s: versionFrom = %q, want %q", c.name, got, c.want)
		}
	}
	if strings.Contains(versionFrom(&debug.BuildInfo{GoVersion: "go1.22.0"}), "(devel)") {
		t.Error("versionFrom leaked the (devel) placeholder")
	}
}
