// Package buildinfo derives a human-readable version string for the
// repository's binaries from the data the Go toolchain embeds at build
// time (runtime/debug.ReadBuildInfo): module version, VCS revision and
// dirty flag, and the Go toolchain version. Every cmd/ binary exposes
// it behind a -version flag.
package buildinfo

import (
	"runtime/debug"
	"strings"
)

// Version reports the binary's version: the module version when the
// binary was built from a tagged module, otherwise the VCS revision
// (with a "-dirty" suffix for modified trees), plus the Go toolchain
// version. Falls back to "unknown" when the runtime carries no build
// info (e.g. some test binaries).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	return versionFrom(bi)
}

// versionFrom is the testable core of Version.
func versionFrom(bi *debug.BuildInfo) string {
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	parts := []string{}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		parts = append(parts, v)
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "-dirty"
		}
		parts = append(parts, rev)
	}
	if len(parts) == 0 {
		parts = append(parts, "devel")
	}
	if bi.GoVersion != "" {
		parts = append(parts, bi.GoVersion)
	}
	return strings.Join(parts, " ")
}
