package tier

import (
	"testing"

	"github.com/gmtsim/gmt/internal/invariant"
	"github.com/gmtsim/gmt/internal/raceflag"
)

// Microbenchmarks and allocation gates for the residency structures.
// With dense slice indices, steady-state Touch / Insert / Remove /
// Victim must not allocate.

// BenchmarkClockTouch measures a reference-bit set on a resident page.
func BenchmarkClockTouch(b *testing.B) {
	const cap = 1024
	c := NewClock(cap)
	c.Reserve(cap)
	for i := 0; i < cap; i++ {
		c.Insert(PageID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(PageID(i % cap))
	}
}

// BenchmarkClockInsertEvict measures a full replacement cycle on a full
// clock: pick a victim, remove it, insert a new page.
func BenchmarkClockInsertEvict(b *testing.B) {
	const cap = 1024
	const footprint = 4 * cap
	c := NewClock(cap)
	c.Reserve(footprint)
	for i := 0; i < cap; i++ {
		c.Insert(PageID(i))
	}
	next := PageID(cap)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := c.Victim()
		c.Remove(v)
		c.Insert(next)
		next++
		if next == footprint {
			next = 0
			// The working set wrapped; pages 0..cap-1 may collide with
			// residents, so restart from a distinct range.
			b.StopTimer()
			for c.Len() > 0 {
				c.Remove(c.Victim())
			}
			for j := 0; j < cap; j++ {
				c.Insert(PageID(j))
			}
			next = PageID(cap)
			b.StartTimer()
		}
	}
}

// BenchmarkFIFOInsertEvict measures a full replacement cycle on a full
// FIFO, cycling page IDs within a bounded footprint the way the Tier-2
// store sees them.
func BenchmarkFIFOInsertEvict(b *testing.B) {
	const cap = 1024
	const footprint = 4 * cap
	f := NewFIFO(cap)
	f.Reserve(footprint)
	for i := 0; i < cap; i++ {
		f.Insert(PageID(i))
	}
	next := PageID(cap)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := f.Victim()
		f.Remove(v)
		f.Insert(next)
		next = (next + 1) % footprint
		for f.Contains(next) {
			next = (next + 1) % footprint
		}
	}
}

// TestTierAllocGate is the CI gate for the tentpole's tier half:
// steady-state Touch, Insert, Remove, and Victim on both structures
// perform zero allocations once the index is warm.
func TestTierAllocGate(t *testing.T) {
	if raceflag.Enabled || invariant.Enabled {
		t.Skip("allocation gates run on the default build only")
	}
	const cap = 256
	const footprint = 4 * cap

	c := NewClock(cap)
	c.Reserve(footprint)
	for i := 0; i < cap; i++ {
		c.Insert(PageID(i))
	}
	nextC := PageID(cap)
	n := testing.AllocsPerRun(500, func() {
		c.Touch(PageID(int(nextC) % cap))
		v := c.Victim()
		c.Remove(v)
		c.Insert(nextC)
		nextC = cap + (nextC+1-cap)%(footprint-cap)
		for c.Contains(nextC) {
			nextC = cap + (nextC+1-cap)%(footprint-cap)
		}
	})
	if n != 0 {
		t.Errorf("clock touch+evict+insert = %.1f allocs/op, want 0", n)
	}

	f := NewFIFO(cap)
	f.Reserve(footprint)
	for i := 0; i < cap; i++ {
		f.Insert(PageID(i))
	}
	nextF := PageID(cap)
	n = testing.AllocsPerRun(500, func() {
		v := f.Victim()
		f.Remove(v)
		f.Insert(nextF)
		nextF = (nextF + 1) % footprint
		for f.Contains(nextF) {
			nextF = (nextF + 1) % footprint
		}
	})
	if n != 0 {
		t.Errorf("fifo victim+remove+insert = %.1f allocs/op, want 0", n)
	}
}
