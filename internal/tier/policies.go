// DBMS-style Tier-2 replacement policies. The GMT paper fixes Tier-2
// replacement to FIFO (clock under GMT-TierOrder); tiered KV-cache
// serving workloads re-reference evicted pages on follow-up turns, the
// access pattern the database buffer-pool literature designed LRU-K
// (O'Neil et al., SIGMOD '93) and 2Q (Johnson & Shasha, VLDB '94) for.
// Both keep per-page reference history that survives eviction — in
// GMT terms, a page's Tier-2 residencies are its references, so the
// history must outlive any single residency to be worth anything.
//
// Like Clock and FIFO, both structures index pages with dense
// PageID-keyed slices (no maps, no per-entry allocations in steady
// state) and iterate only in ascending page-ID order, so they satisfy
// the Store contract's determinism clause by construction.

package tier

import (
	"fmt"
	"strings"
)

// StorePolicy names a Tier-2 replacement policy for NewStore. The empty
// string is "unset": the runtime then keeps the paper's defaults (clock
// under GMT-TierOrder, FIFO otherwise).
type StorePolicy string

// The selectable replacement policies.
const (
	StoreClock StorePolicy = "clock"
	StoreFIFO  StorePolicy = "fifo"
	StoreLRUK  StorePolicy = "lru-2"
	StoreTwoQ  StorePolicy = "2q"
)

// StorePolicies lists the selectable policies in presentation order.
var StorePolicies = []StorePolicy{StoreClock, StoreFIFO, StoreLRUK, StoreTwoQ}

// ParseStorePolicy resolves a policy name case-insensitively, accepting
// a few common aliases (lruk, lru-k, lru2, twoq).
func ParseStorePolicy(s string) (StorePolicy, error) {
	switch strings.ToLower(s) {
	case "clock":
		return StoreClock, nil
	case "fifo":
		return StoreFIFO, nil
	case "lru-2", "lru2", "lruk", "lru-k":
		return StoreLRUK, nil
	case "2q", "twoq":
		return StoreTwoQ, nil
	}
	return "", fmt.Errorf("tier: unknown store policy %q (want one of %v)", s, StorePolicies)
}

// NewStore builds a Store of the given capacity under the named policy.
// It panics on an unknown name; callers taking external input should
// validate with ParseStorePolicy first.
func NewStore(p StorePolicy, capacity int) Store {
	switch p {
	case StoreClock:
		return NewClock(capacity)
	case StoreFIFO:
		return NewFIFO(capacity)
	case StoreLRUK:
		return NewLRUK(capacity)
	case StoreTwoQ:
		return NewTwoQ(capacity)
	}
	panic(fmt.Sprintf("tier: unknown store policy %q", p))
}

// lrukK is the K of the LRU-K implementation: victims are chosen by
// backward-K reference distance. K=2 is the classic configuration (the
// SIGMOD '93 paper's experiments found little benefit beyond it).
const lrukK = 2

// LRUK is an LRU-2 replacement set: the victim is the resident page
// whose second-most-recent reference is oldest, with pages referenced
// fewer than twice preferred (their backward-2 distance is infinite),
// among those the least recently referenced, and ties broken on the
// smaller page ID. Reference history is "retained information": it
// persists across Remove, so a page that cycles through Tier-1 and
// returns carries its prior references with it.
//
// References are counted at Insert and at promotion-classified Remove
// (see the Store contract note on Remove classification). Touch also
// counts one, though the runtime never touches Tier-2 residents.
//
// Victim selection uses a lazy min-heap over (prev, last, page) stamp
// triples: every reference pushes a fresh entry, stale entries (stamps
// no longer current, or page not resident) are popped on demand, and
// the heap is compacted in place once stale entries dominate, so the
// steady state allocates only when the heap's backing array grows
// (amortized, like append everywhere else in this package).
type LRUK struct {
	capacity int
	clock    int64 // logical reference time; ticks once per reference
	// Dense per-page reference history, persisting across residencies:
	// last is the most recent reference stamp, prev the one before it
	// (0 = fewer than lrukK references so far).
	last     []int64
	prev     []int64
	resident []bool
	n        int
	// lastVictim classifies the next Remove (Store contract note).
	lastVictim PageID
	heap       []lrukEntry
}

// lrukEntry is a heap entry: the page's stamps at push time. An entry
// is stale once the page's current stamps differ (or it left).
type lrukEntry struct {
	prev, last int64
	page       PageID
}

var _ Store = (*LRUK)(nil)

// NewLRUK returns an empty LRU-2 set with the given capacity.
func NewLRUK(capacity int) *LRUK {
	if capacity < 1 {
		panic("tier: lruk capacity must be >= 1")
	}
	return &LRUK{
		capacity:   capacity,
		lastVictim: NoPage,
		heap:       make([]lrukEntry, 0, 2*capacity),
	}
}

// Reserve presizes the history arrays for an n-page footprint.
//
//gmt:coldpath
func (l *LRUK) Reserve(n int) {
	if n <= len(l.resident) {
		return
	}
	nr := make([]bool, n)
	copy(nr, l.resident)
	l.resident = nr
	nl := make([]int64, n)
	copy(nl, l.last)
	l.last = nl
	np := make([]int64, n)
	copy(np, l.prev)
	l.prev = np
}

// Reset empties the set and erases all retained reference history,
// reproducing NewLRUK's state (clock at zero, empty heap) while
// retaining the history arrays' capacity. History must not survive a
// reset: a recycled store serves an unrelated run, and stale stamps
// would order its victims.
func (l *LRUK) Reset() {
	l.clock = 0
	for i := range l.resident {
		l.resident[i] = false
		l.last[i] = 0
		l.prev[i] = 0
	}
	l.n = 0
	l.lastVictim = NoPage
	l.heap = l.heap[:0]
}

func (l *LRUK) isResident(p PageID) bool {
	return p >= 0 && int64(p) < int64(len(l.resident)) && l.resident[p]
}

// reference records one reference to p and queues it for victim
// selection if resident.
func (l *LRUK) reference(p PageID) {
	l.clock++
	l.prev[p] = l.last[p]
	l.last[p] = l.clock
	if l.resident[p] {
		l.push(lrukEntry{prev: l.prev[p], last: l.last[p], page: p})
	}
}

// Insert adds p, counting the insertion as a reference.
func (l *LRUK) Insert(p PageID) {
	if p < 0 {
		panic(fmt.Sprintf("tier: negative page id %d", p))
	}
	if l.isResident(p) {
		panic(fmt.Sprintf("tier: page %d already in lruk", p))
	}
	if l.n >= l.capacity {
		panic("tier: lruk full")
	}
	if int64(p) >= int64(len(l.resident)) {
		l.Reserve(growSize(len(l.resident), int(p)+1))
	}
	l.resident[p] = true
	l.n++
	if l.lastVictim == p {
		l.lastVictim = NoPage
	}
	l.reference(p)
}

// Touch counts a reference to a resident page; absent pages are a
// no-op (matching Clock.Touch).
func (l *LRUK) Touch(p PageID) {
	if l.isResident(p) {
		l.reference(p)
	}
}

// Remove deletes p. A removal of the current Victim() choice is an
// eviction; any other removal is a promotion and counts as a reference
// in the page's retained history (it will order the page's next
// residency).
func (l *LRUK) Remove(p PageID) bool {
	if !l.isResident(p) {
		return false
	}
	if p == l.lastVictim {
		l.lastVictim = NoPage
	} else {
		l.clock++
		l.prev[p] = l.last[p]
		l.last[p] = l.clock
	}
	l.resident[p] = false
	l.n--
	return true
}

// Victim reports the resident page with the oldest backward-2 stamp
// (ties: oldest last reference, then smaller page ID) without removing
// it.
func (l *LRUK) Victim() PageID {
	if l.n == 0 {
		panic("tier: victim from empty lruk")
	}
	for {
		e := l.heap[0]
		if l.resident[e.page] && l.last[e.page] == e.last && l.prev[e.page] == e.prev {
			l.lastVictim = e.page
			return e.page
		}
		l.pop()
	}
}

// Contains reports residency.
func (l *LRUK) Contains(p PageID) bool { return l.isResident(p) }

// Each calls fn for every resident page in ascending page-ID order.
func (l *LRUK) Each(fn func(PageID)) {
	seen := 0
	for p, r := range l.resident {
		if r {
			fn(PageID(p))
			seen++
			if seen == l.n {
				return
			}
		}
	}
}

// Len reports the number of resident pages.
func (l *LRUK) Len() int { return l.n }

// Capacity reports the maximum residency.
func (l *LRUK) Capacity() int { return l.capacity }

// Full reports whether the set is at capacity.
func (l *LRUK) Full() bool { return l.n >= l.capacity }

// less orders heap entries: oldest backward-2 stamp first (0 — fewer
// than two references — is the oldest possible), then oldest last
// reference, then smaller page ID. The order is total, so the victim
// sequence is independent of push order.
func (l *LRUK) less(a, b lrukEntry) bool {
	if a.prev != b.prev {
		return a.prev < b.prev
	}
	if a.last != b.last {
		return a.last < b.last
	}
	return a.page < b.page
}

func (l *LRUK) push(e lrukEntry) {
	if len(l.heap) >= 4*l.capacity && len(l.heap) >= 64 {
		l.compactHeap()
	}
	l.heap = append(l.heap, e)
	i := len(l.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !l.less(l.heap[i], l.heap[parent]) {
			break
		}
		l.heap[i], l.heap[parent] = l.heap[parent], l.heap[i]
		i = parent
	}
}

func (l *LRUK) pop() {
	last := len(l.heap) - 1
	l.heap[0] = l.heap[last]
	l.heap = l.heap[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < last && l.less(l.heap[left], l.heap[smallest]) {
			smallest = left
		}
		if right < last && l.less(l.heap[right], l.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		l.heap[i], l.heap[smallest] = l.heap[smallest], l.heap[i]
		i = smallest
	}
}

// compactHeap drops stale entries in place and re-heapifies, bounding
// the heap at O(capacity) live entries without giving the backing
// array back.
//
//gmt:coldpath
func (l *LRUK) compactHeap() {
	live := l.heap[:0]
	for _, e := range l.heap {
		if l.resident[e.page] && l.last[e.page] == e.last && l.prev[e.page] == e.prev {
			live = append(live, e)
		}
	}
	l.heap = live
	for i := len(l.heap)/2 - 1; i >= 0; i-- {
		l.siftDown(i)
	}
}

func (l *LRUK) siftDown(i int) {
	n := len(l.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && l.less(l.heap[left], l.heap[smallest]) {
			smallest = left
		}
		if right < n && l.less(l.heap[right], l.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		l.heap[i], l.heap[smallest] = l.heap[smallest], l.heap[i]
		i = smallest
	}
}

// twoQList identifies which 2Q queue a resident page is on.
type twoQList uint8

const (
	twoQNone twoQList = iota
	twoQIn            // A1in: first-timers, FIFO
	twoQMain          // Am: proven-hot pages, LRU
)

// TwoQ is the 2Q replacement set: newly inserted pages enter a FIFO
// probation queue (A1in); pages whose eviction history marks them hot —
// they appear in the A1out ghost ring or were promoted to Tier-1 during
// a previous residency — enter the LRU main queue (Am) instead. Victims
// come from A1in while it exceeds its share (Kin = capacity/4), else
// from Am's LRU end; a page evicted from A1in leaves its ID in the
// ghost ring (Kout = capacity/2 IDs, history only, no data), which is
// what lets a second miss on it prove the page hot. This is the
// "simplified 2Q" of the VLDB '94 paper with the full version's tuned
// Kin/Kout shares, adapted to the Store interface: a promotion to
// Tier-1 (a Remove not preceded by Victim selecting the page) also
// marks the page hot, since it was demanded while Tier-2 resident.
//
// Both queues are intrusive doubly-linked lists over dense PageID-keyed
// arrays, and the ghost ring is fixed at construction, so steady-state
// operations allocate nothing and run in O(1).
type TwoQ struct {
	capacity int
	kin      int // A1in's target share; beyond it, A1in is the victim source
	next     []PageID
	prevLink []PageID
	where    []twoQList
	// ghost is the A1out ring: the last kout page IDs evicted from
	// A1in or promoted out of Tier-2, marked in hot for O(1) lookup.
	ghost    []PageID
	ghostPos int
	hot      []bool

	inHead, inTail     PageID // A1in: head = oldest
	mainHead, mainTail PageID // Am: head = LRU, tail = MRU
	inLen, mainLen     int
	lastVictim         PageID
}

var _ Store = (*TwoQ)(nil)

// NewTwoQ returns an empty 2Q set with the given capacity.
func NewTwoQ(capacity int) *TwoQ {
	if capacity < 1 {
		panic("tier: twoq capacity must be >= 1")
	}
	kin := capacity / 4
	if kin < 1 {
		kin = 1
	}
	kout := capacity / 2
	if kout < 1 {
		kout = 1
	}
	q := &TwoQ{
		capacity:   capacity,
		kin:        kin,
		ghost:      make([]PageID, kout),
		inHead:     NoPage,
		inTail:     NoPage,
		mainHead:   NoPage,
		mainTail:   NoPage,
		lastVictim: NoPage,
	}
	for i := range q.ghost {
		q.ghost[i] = NoPage
	}
	return q
}

// Reserve presizes the link arrays for an n-page footprint.
//
//gmt:coldpath
func (q *TwoQ) Reserve(n int) {
	if n <= len(q.where) {
		return
	}
	nn := make([]PageID, n)
	copy(nn, q.next)
	q.next = nn
	np := make([]PageID, n)
	copy(np, q.prevLink)
	q.prevLink = np
	nw := make([]twoQList, n)
	copy(nw, q.where)
	q.where = nw
	nh := make([]bool, n)
	copy(nh, q.hot)
	q.hot = nh
}

// Reset empties both queues and the ghost ring, reproducing NewTwoQ's
// state while retaining the link arrays' capacity. Ghost-ring hotness is
// retained history and must not survive a reset (see LRUK.Reset).
func (q *TwoQ) Reset() {
	for i := range q.where {
		q.where[i] = twoQNone
		q.next[i] = 0
		q.prevLink[i] = 0
		q.hot[i] = false
	}
	for i := range q.ghost {
		q.ghost[i] = NoPage
	}
	q.ghostPos = 0
	q.inHead, q.inTail = NoPage, NoPage
	q.mainHead, q.mainTail = NoPage, NoPage
	q.inLen, q.mainLen = 0, 0
	q.lastVictim = NoPage
}

func (q *TwoQ) list(p PageID) twoQList {
	if p < 0 || int64(p) >= int64(len(q.where)) {
		return twoQNone
	}
	return q.where[p]
}

// remember pushes p into the ghost ring, aging out the oldest entry.
// Re-remembering refreshes hotness without consuming a second slot.
func (q *TwoQ) remember(p PageID) {
	if q.hot[p] {
		return
	}
	if old := q.ghost[q.ghostPos]; old != NoPage && int64(old) < int64(len(q.hot)) {
		q.hot[old] = false
	}
	q.ghost[q.ghostPos] = p
	q.ghostPos = (q.ghostPos + 1) % len(q.ghost)
	q.hot[p] = true
}

// pushTail appends p at the MRU end of the given list.
func (q *TwoQ) pushTail(p PageID, list twoQList) {
	q.where[p] = list
	q.next[p] = NoPage
	if list == twoQIn {
		q.prevLink[p] = q.inTail
		if q.inTail != NoPage {
			q.next[q.inTail] = p
		} else {
			q.inHead = p
		}
		q.inTail = p
		q.inLen++
		return
	}
	q.prevLink[p] = q.mainTail
	if q.mainTail != NoPage {
		q.next[q.mainTail] = p
	} else {
		q.mainHead = p
	}
	q.mainTail = p
	q.mainLen++
}

// unlink removes p from whichever list holds it.
func (q *TwoQ) unlink(p PageID) {
	list := q.where[p]
	prev, next := q.prevLink[p], q.next[p]
	if prev != NoPage {
		q.next[prev] = next
	}
	if next != NoPage {
		q.prevLink[next] = prev
	}
	if list == twoQIn {
		if q.inHead == p {
			q.inHead = next
		}
		if q.inTail == p {
			q.inTail = prev
		}
		q.inLen--
	} else {
		if q.mainHead == p {
			q.mainHead = next
		}
		if q.mainTail == p {
			q.mainTail = prev
		}
		q.mainLen--
	}
	q.where[p] = twoQNone
}

// Insert adds p: to the main (hot) queue if its history marks it hot,
// else to the probation queue.
func (q *TwoQ) Insert(p PageID) {
	if p < 0 {
		panic(fmt.Sprintf("tier: negative page id %d", p))
	}
	if q.list(p) != twoQNone {
		panic(fmt.Sprintf("tier: page %d already in twoq", p))
	}
	if q.inLen+q.mainLen >= q.capacity {
		panic("tier: twoq full")
	}
	if int64(p) >= int64(len(q.where)) {
		q.Reserve(growSize(len(q.where), int(p)+1))
	}
	if q.lastVictim == p {
		q.lastVictim = NoPage
	}
	if q.hot[p] {
		q.pushTail(p, twoQMain)
	} else {
		q.pushTail(p, twoQIn)
	}
}

// Touch records a reference: an Am resident moves to the MRU end; an
// A1in resident is promoted to Am (a second access during probation
// proves it hot). Absent pages are a no-op.
func (q *TwoQ) Touch(p PageID) {
	if q.list(p) == twoQNone {
		return
	}
	q.unlink(p)
	q.pushTail(p, twoQMain)
}

// Remove deletes p. Eviction of an A1in page (a Remove of the current
// Victim() choice) records it in the ghost ring; a promotion marks the
// page hot directly — either way its next insertion lands in Am.
func (q *TwoQ) Remove(p PageID) bool {
	list := q.list(p)
	if list == twoQNone {
		return false
	}
	if p == q.lastVictim {
		q.lastVictim = NoPage
		if list == twoQIn {
			q.remember(p)
		}
	} else {
		// Promotion to Tier-1: the page was demanded while resident.
		q.remember(p)
	}
	q.unlink(p)
	return true
}

// Victim reports the replacement choice without removing it: the oldest
// A1in page while A1in exceeds its Kin share (or Am is empty), else
// Am's LRU page.
func (q *TwoQ) Victim() PageID {
	var v PageID
	switch {
	case q.inLen == 0 && q.mainLen == 0:
		panic("tier: victim from empty twoq")
	case q.inLen > q.kin || q.mainLen == 0:
		v = q.inHead
	default:
		v = q.mainHead
	}
	q.lastVictim = v
	return v
}

// Contains reports residency.
func (q *TwoQ) Contains(p PageID) bool { return q.list(p) != twoQNone }

// Each calls fn for every resident page in ascending page-ID order.
func (q *TwoQ) Each(fn func(PageID)) {
	seen, total := 0, q.inLen+q.mainLen
	for p, w := range q.where {
		if w != twoQNone {
			fn(PageID(p))
			seen++
			if seen == total {
				return
			}
		}
	}
}

// Len reports the number of resident pages.
func (q *TwoQ) Len() int { return q.inLen + q.mainLen }

// Capacity reports the maximum residency.
func (q *TwoQ) Capacity() int { return q.capacity }

// Full reports whether the set is at capacity.
func (q *TwoQ) Full() bool { return q.inLen+q.mainLen >= q.capacity }
