package tier

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockSecondChance(t *testing.T) {
	c := NewClock(3)
	c.Insert(1)
	c.Insert(2)
	c.Insert(3)
	// All ref bits set: first scan clears 1,2,3 then wraps and evicts 1.
	if v := c.Victim(); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
	// Touch 1: it gets a second chance; next victim is 2.
	c.Touch(1)
	if v := c.Victim(); v != 2 {
		t.Fatalf("victim after touch(1) = %d, want 2", v)
	}
}

func TestClockApproximatesLRU(t *testing.T) {
	c := NewClock(4)
	for p := PageID(1); p <= 4; p++ {
		c.Insert(p)
	}
	// First sweep clears all insertion ref bits and lands on 1.
	if v := c.Victim(); v != 1 {
		t.Fatalf("first victim = %d, want 1", v)
	}
	// Re-reference everything except 3: the next sweep passes the
	// touched pages and evicts the one page not recently used.
	c.Touch(1)
	c.Touch(2)
	c.Touch(4)
	if v := c.Victim(); v != 3 {
		t.Fatalf("victim = %d, want unreferenced page 3", v)
	}
}

func TestClockVictimDoesNotRemove(t *testing.T) {
	c := NewClock(2)
	c.Insert(10)
	c.Insert(20)
	v := c.Victim()
	if !c.Contains(v) {
		t.Fatal("Victim removed the page")
	}
	if !c.Remove(v) {
		t.Fatal("Remove(victim) failed")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestClockRejectAdvances(t *testing.T) {
	c := NewClock(3)
	c.Insert(1)
	c.Insert(2)
	c.Insert(3)
	v1 := c.Victim()
	c.Reject(v1)
	v2 := c.Victim()
	if v2 == v1 {
		t.Fatalf("rejected page %d chosen again immediately", v1)
	}
	// After rejecting every page once, the clock must still terminate
	// and produce a victim (second sweep clears the re-set bits).
	c.Reject(v2)
	v3 := c.Victim()
	c.Reject(v3)
	if v := c.Victim(); !c.Contains(v) {
		t.Fatal("clock failed to terminate after universal rejection")
	}
}

func TestClockFreeSlotReuse(t *testing.T) {
	c := NewClock(2)
	c.Insert(1)
	c.Insert(2)
	if !c.Full() {
		t.Fatal("clock should be full")
	}
	c.Remove(1)
	c.Insert(3)
	if !c.Contains(3) || c.Contains(1) {
		t.Fatal("slot reuse broken")
	}
}

func TestClockInsertFullPanics(t *testing.T) {
	c := NewClock(1)
	c.Insert(1)
	defer func() {
		if recover() == nil {
			t.Error("insert into full clock did not panic")
		}
	}()
	c.Insert(2)
}

func TestClockDoubleInsertPanics(t *testing.T) {
	c := NewClock(2)
	c.Insert(1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert did not panic")
		}
	}()
	c.Insert(1)
}

func TestClockEmptyVictimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("victim from empty clock did not panic")
		}
	}()
	NewClock(1).Victim()
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(3)
	f.Insert(1)
	f.Insert(2)
	f.Insert(3)
	if v := f.Victim(); v != 1 {
		t.Fatalf("victim = %d, want oldest (1)", v)
	}
	f.Remove(1)
	f.Insert(4)
	if v := f.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
}

func TestFIFORemoveMiddle(t *testing.T) {
	f := NewFIFO(3)
	f.Insert(1)
	f.Insert(2)
	f.Insert(3)
	if !f.Remove(2) {
		t.Fatal("Remove(2) failed")
	}
	f.Remove(1)
	// 2's tombstone must be skipped.
	if v := f.Victim(); v != 3 {
		t.Fatalf("victim = %d, want 3", v)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
}

func TestFIFORemoveAbsent(t *testing.T) {
	f := NewFIFO(2)
	if f.Remove(99) {
		t.Fatal("Remove of absent page reported true")
	}
}

func TestFIFOCompaction(t *testing.T) {
	f := NewFIFO(100)
	// Churn: many insert/remove cycles must not grow the queue without
	// bound.
	for i := 0; i < 10_000; i++ {
		f.Insert(PageID(i))
		f.Remove(PageID(i))
	}
	if len(f.queue) > 4*f.capacity+64 {
		t.Fatalf("queue grew to %d entries despite compaction", len(f.queue))
	}
}

func TestStoreInterfaceCompliance(t *testing.T) {
	for _, s := range []Store{NewClock(4), NewFIFO(4), NewLRUK(4), NewTwoQ(4)} {
		s.Insert(7)
		if !s.Contains(7) || s.Len() != 1 || s.Capacity() != 4 || s.Full() {
			t.Fatalf("%T basic accounting broken", s)
		}
		if v := s.Victim(); v != 7 {
			t.Fatalf("%T victim = %d, want 7", s, v)
		}
		s.Remove(7)
		if s.Contains(7) || s.Len() != 0 {
			t.Fatalf("%T removal broken", s)
		}
	}
}

func TestEachVisitsAllResidents(t *testing.T) {
	for _, s := range []Store{NewClock(8), NewFIFO(8), NewLRUK(8), NewTwoQ(8)} {
		want := map[PageID]bool{}
		for p := PageID(0); p < 5; p++ {
			s.Insert(p)
			want[p] = true
		}
		got := map[PageID]bool{}
		s.Each(func(p PageID) { got[p] = true })
		if len(got) != len(want) {
			t.Fatalf("%T: Each visited %d of %d", s, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%T: Each missed %d", s, p)
			}
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"clock-zero": func() { NewClock(0) },
		"fifo-zero":  func() { NewFIFO(0) },
		"fifo-full":  func() { f := NewFIFO(1); f.Insert(1); f.Insert(2) },
		"fifo-dup":   func() { f := NewFIFO(2); f.Insert(1); f.Insert(1) },
		"fifo-empty": func() { NewFIFO(1).Victim() },
		"clock-rej":  func() { c := NewClock(2); c.Insert(1); c.Reject(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestClockRemoveAbsent(t *testing.T) {
	c := NewClock(2)
	if c.Remove(5) {
		t.Fatal("Remove of absent page reported true")
	}
}

// Property: under random insert/remove/victim churn, both stores keep
// Len() == tracked live set and never exceed capacity, and Victim always
// returns a live page.
func TestStoreChurnProperty(t *testing.T) {
	run := func(mk func() Store) func(seed int64) bool {
		return func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			s := mk()
			live := map[PageID]struct{}{}
			next := PageID(0)
			for op := 0; op < 2000; op++ {
				switch {
				case !s.Full() && (len(live) == 0 || rng.Intn(2) == 0):
					s.Insert(next)
					live[next] = struct{}{}
					next++
				default:
					v := s.Victim()
					if _, ok := live[v]; !ok {
						return false
					}
					s.Remove(v)
					delete(live, v)
				}
				if s.Len() != len(live) || s.Len() > s.Capacity() {
					return false
				}
			}
			return true
		}
	}
	for _, im := range storeImpls() {
		im := im
		if err := quick.Check(run(func() Store { return im.mk(32) }), &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("%s churn: %v", im.name, err)
		}
	}
}
