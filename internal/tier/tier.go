// Package tier provides the page-residency structures used by the GMT
// runtime: a clock (second-chance) replacement set for Tier-1 (and for
// Tier-2 under GMT-TierOrder), a FIFO set for Tier-2 under the other
// policies (paper §2.2), and two DBMS-style Tier-2 alternatives —
// LRU-K (K=2) and 2Q — selectable by name through NewStore for the
// serving-workload policy studies (policies.go).
//
// These structures track membership and choose victims; page metadata
// (dirty bits, timestamps, predictor state) lives with the runtime.
//
// Membership indices are dense slices keyed directly by PageID rather
// than maps: page IDs are bounded by the workload footprint, so a
// slice-backed directory gives O(1) lookups with no hashing, no
// per-entry allocation, and — because every iteration the package
// performs walks a slice — no map-order nondeterminism for the maporder
// analyzer to police. The indices grow by doubling toward the largest
// page ID seen (or are presized via Reserve), so steady-state Touch /
// Insert / Remove / Victim perform zero allocations.
package tier

import (
	"fmt"
	"math/bits"

	"github.com/gmtsim/gmt/internal/invariant"
)

// PageID identifies a 64 KiB page by its index in the application's
// backing dataset (its "home" location on the SSD).
type PageID int64

// NoPage is returned by Victim on structures that allow emptiness checks.
const NoPage PageID = -1

// Store is a fixed-capacity set of resident pages with a replacement
// policy. Implementations: *Clock, *FIFO, *LRUK, *TwoQ (policies.go);
// NewStore builds one by name.
//
// Recency-tracking policies cannot see why a page leaves: the runtime
// calls Remove both when it evicts a page (always immediately after
// Victim selected it) and when it promotes a demanded page to Tier-1.
// Policies that care (LRU-K, 2Q) therefore classify a Remove of the most
// recent Victim() result as an eviction and any other Remove as a
// promotion — i.e. a reference. The one caller that can blur this (the
// runtime's reclaim path rejects an ineligible victim without removing
// it, and the same page may be demanded right after) only costs the
// policy a single reference credit, never correctness.
type Store interface {
	// Insert adds p. It panics if the store is full or p is present:
	// callers must evict first, which keeps accounting explicit.
	Insert(p PageID)
	// Remove deletes p, reporting whether it was present.
	Remove(p PageID) bool
	// Victim selects the replacement victim without removing it.
	// It panics if the store is empty.
	Victim() PageID
	// Contains reports whether p is resident.
	Contains(p PageID) bool
	// Each calls fn for every resident page in ascending page-ID order.
	// The order is part of the contract: it is deterministic and
	// independent of insertion order, so two stores holding the same
	// resident set iterate identically regardless of the history that
	// built them (the maporder discipline, applied to stores).
	Each(fn func(PageID))
	// Reserve presizes the page-ID index for a workload footprint of n
	// pages, so the hot path never grows it mid-run.
	Reserve(n int)
	// Reset empties the store, restoring the behavior of a freshly
	// constructed store of the same capacity while retaining allocated
	// index storage (runtime recycling). "Behavior" is the full contract:
	// after Reset, any operation sequence must produce the same victim
	// choices and iteration order a fresh store would — no retained
	// reference history, hand position, or queue state may leak through
	// (the conformance suite's reset-equals-fresh subtest pins this for
	// every implementation).
	Reset()
	// Len and Capacity report occupancy; Full is Len() == Capacity().
	Len() int
	Capacity() int
	Full() bool
}

// noSlot marks an absent page in a dense index.
const noSlot int32 = -1

// pageIndex is a dense PageID -> slot map backed by a slice. Absent
// pages read noSlot. Negative page IDs panic: residency structures only
// ever hold real dataset pages (sentinels like gpu.BarrierPage never
// reach a store).
type pageIndex struct {
	v []int32
}

func (x *pageIndex) get(p PageID) int32 {
	if p < 0 || int64(p) >= int64(len(x.v)) {
		return noSlot
	}
	return x.v[p]
}

func (x *pageIndex) set(p PageID, slot int32) {
	if p < 0 {
		panic(fmt.Sprintf("tier: negative page id %d", p))
	}
	if int64(p) >= int64(len(x.v)) {
		x.grow(int64(p) + 1)
	}
	x.v[p] = slot
}

func (x *pageIndex) del(p PageID) {
	if p >= 0 && int64(p) < int64(len(x.v)) {
		x.v[p] = noSlot
	}
}

// grow extends the index to at least n entries, doubling to amortize.
//
//gmt:coldpath
func (x *pageIndex) grow(n int64) {
	size := int64(len(x.v))
	if size < 64 {
		size = 64
	}
	for size < n {
		size *= 2
	}
	nv := make([]int32, size)
	copy(nv, x.v)
	for i := len(x.v); i < len(nv); i++ {
		nv[i] = noSlot
	}
	x.v = nv
}

// Clock is a second-chance (clock) replacement set, the Tier-1
// replacement algorithm in both BaM and GMT (§2, "What to evict").
//
// Occupancy and reference bits live in bitmaps so the hand sweep runs a
// word (64 slots) at a time: the first victim word-scan computes
// occupied &^ referenced, which is exactly the per-slot test the
// classic loop makes, so the victim sequence is bit-identical while a
// sweep over a hot, fully-referenced clock costs capacity/64 word ops
// instead of capacity slot loads.
type Clock struct {
	slots []PageID
	// ref[i/64] bit i%64 is slot i's reference bit; occ is the
	// occupancy bitmap. Empty slots always have a clear ref bit, so the
	// sweep may clear ref bits rangewise without consulting occ.
	ref   []uint64
	occ   []uint64
	hand  int
	index pageIndex // page -> slot
	n     int       // resident pages
	free  []int
}

var _ Store = (*Clock)(nil)

// NewClock returns an empty clock with the given capacity.
func NewClock(capacity int) *Clock {
	if capacity < 1 {
		panic("tier: clock capacity must be >= 1")
	}
	words := (capacity + 63) / 64
	c := &Clock{
		slots: make([]PageID, capacity),
		ref:   make([]uint64, words),
		occ:   make([]uint64, words),
		free:  make([]int, 0, capacity),
	}
	for i := range c.slots {
		c.slots[i] = NoPage
		c.free = append(c.free, capacity-1-i) // pop order 0,1,2,...
	}
	return c
}

// Reserve presizes the page index for an n-page footprint.
func (c *Clock) Reserve(n int) {
	if int64(n) > int64(len(c.index.v)) {
		c.index.grow(int64(n))
	}
}

// Reset empties the clock, reproducing NewClock's state exactly — free
// slots pop in ascending order, hand at zero, all bits clear — while
// retaining the slot arrays and the page index's capacity.
func (c *Clock) Reset() {
	for i := range c.slots {
		c.slots[i] = NoPage
	}
	for i := range c.ref {
		c.ref[i] = 0
		c.occ[i] = 0
	}
	c.hand = 0
	c.n = 0
	for i := range c.index.v {
		c.index.v[i] = noSlot
	}
	capacity := len(c.slots)
	c.free = c.free[:0]
	for i := 0; i < capacity; i++ {
		c.free = append(c.free, capacity-1-i) // pop order 0,1,2,...
	}
}

// Insert adds p with its reference bit set.
//
//gmt:hotpath
func (c *Clock) Insert(p PageID) { c.InsertSlot(p) }

// InsertSlot adds p and reports the slot it landed in. The slot stays
// valid until p is removed, so a caller that keeps page metadata can
// cache it and use TouchSlot on its hit path, skipping the page-index
// lookup.
//
//gmt:hotpath
func (c *Clock) InsertSlot(p PageID) int32 {
	if c.index.get(p) != noSlot {
		panic(fmt.Sprintf("tier: page %d already in clock", p))
	}
	if len(c.free) == 0 {
		panic("tier: clock full")
	}
	i := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.slots[i] = p
	c.ref[i>>6] |= 1 << (uint(i) & 63)
	c.occ[i>>6] |= 1 << (uint(i) & 63)
	c.index.set(p, int32(i))
	c.n++
	c.checkSlots()
	return int32(i)
}

// checkSlots asserts the clock's conservation invariant: every slot is
// either resident or free (gmtinvariants builds only).
func (c *Clock) checkSlots() {
	if invariant.Enabled {
		invariant.Assert(c.n+len(c.free) == len(c.slots),
			"tier: clock slot leak: %d resident + %d free != %d capacity",
			c.n, len(c.free), len(c.slots))
	}
}

// Touch sets p's reference bit; it is a no-op if p is absent.
//
//gmt:hotpath
func (c *Clock) Touch(p PageID) {
	if i := c.index.get(p); i != noSlot {
		c.TouchSlot(i)
	}
}

// TouchSlot sets the reference bit of a slot obtained from InsertSlot.
// The caller vouches that the page is still resident in that slot; this
// is the per-hit fast path with no index lookup. Testing before setting
// matters: hit-dominated phases touch already-referenced slots almost
// every time, and skipping the redundant store turns a serialized
// read-modify-write chain on the shared bitmap word into an independent
// (pipelineable) load per access.
//
//gmt:hotpath
func (c *Clock) TouchSlot(s int32) {
	if bit := uint64(1) << (uint(s) & 63); c.ref[s>>6]&bit == 0 {
		c.ref[s>>6] |= bit
	}
}

// Remove deletes p.
//
//gmt:hotpath
func (c *Clock) Remove(p PageID) bool {
	i := c.index.get(p)
	if i == noSlot {
		return false
	}
	c.index.del(p)
	c.slots[i] = NoPage
	c.ref[i>>6] &^= 1 << (uint(i) & 63)
	c.occ[i>>6] &^= 1 << (uint(i) & 63)
	c.free = append(c.free, int(i))
	c.n--
	c.checkSlots()
	return true
}

// Victim runs the clock hand: occupied slots with the reference bit set
// get a second chance (bit cleared, hand advances); the first unreferenced
// occupied slot is the victim. The hand is left pointing at the victim, so
// a caller that rejects the choice can call Reject and then Victim again.
//
// The sweep works on bitmap words: within each word the candidates are
// occ &^ ref at or after the hand; if none, every slot the hand passed
// gets its reference bit cleared (a no-op for empty slots, whose bits
// are already clear) and the scan moves to the next word, wrapping. A
// fully-referenced clock clears the whole map on the first lap and
// selects on the second — the same victim the slot-at-a-time loop
// finds, two orders of magnitude fewer memory operations.
//
//gmt:hotpath
func (c *Clock) Victim() PageID {
	if c.n == 0 {
		panic("tier: victim from empty clock")
	}
	size := len(c.slots)
	i := c.hand
	for {
		w := i >> 6
		from := uint(i) & 63
		// Occupancy bits beyond capacity are never set, so the last
		// word's tail can't produce a candidate.
		if cand := c.occ[w] &^ c.ref[w] &^ (1<<from - 1); cand != 0 {
			s := w<<6 + bits.TrailingZeros64(cand)
			// Second chance for every occupied slot passed: clear refs
			// in [i, s). Empty slots' bits are already clear.
			c.ref[w] &^= (1<<uint(s&63) - 1) &^ (1<<from - 1)
			c.hand = s
			return c.slots[s]
		}
		c.ref[w] &^= ^(1<<from - 1)
		i = (w + 1) << 6
		if i >= size {
			i = 0
		}
	}
}

// Reject gives p another chance after a Victim call chose it: its
// reference bit is set again and the hand moves past it. GMT-Reuse uses
// this when a candidate's predicted reuse is "short" (§2.1.3: retain in
// GPU memory and run another round of clock).
//
//gmt:hotpath
func (c *Clock) Reject(p PageID) {
	i := c.index.get(p)
	if i == noSlot {
		panic(fmt.Sprintf("tier: rejecting absent page %d", p))
	}
	c.ref[i>>6] |= 1 << (uint(i) & 63)
	if c.hand == int(i) {
		c.hand = (c.hand + 1) % len(c.slots)
	}
}

// Clone returns a deep copy of the clock: same residents, same slot
// assignment, same reference bits, same hand. A forked runtime's Tier-1
// must replay the exact victim sequence the parent's would have, so
// every structural detail — including free-list pop order — is copied.
func (c *Clock) Clone() *Clock {
	nc := &Clock{
		slots: append([]PageID(nil), c.slots...),
		ref:   append([]uint64(nil), c.ref...),
		occ:   append([]uint64(nil), c.occ...),
		free:  append([]int(nil), c.free...),
		hand:  c.hand,
		n:     c.n,
	}
	nc.index.v = append([]int32(nil), c.index.v...)
	return nc
}

// Contains reports residency.
func (c *Clock) Contains(p PageID) bool { return c.index.get(p) != noSlot }

// Each calls fn for every resident page in ascending page-ID order
// (the Store contract). The walk is over the dense page index rather
// than the slots, which would reflect insertion order; Each is not on
// the per-access path, so the O(max page ID) cost is acceptable.
func (c *Clock) Each(fn func(PageID)) {
	seen := 0
	for p, slot := range c.index.v {
		if slot != noSlot {
			fn(PageID(p))
			seen++
			if seen == c.n {
				return
			}
		}
	}
}

// Len reports the number of resident pages.
func (c *Clock) Len() int { return c.n }

// Capacity reports the slot count.
func (c *Clock) Capacity() int { return len(c.slots) }

// Full reports whether every slot is occupied.
func (c *Clock) Full() bool { return c.n == len(c.slots) }

// FIFO is a first-in-first-out replacement set, GMT's Tier-2 eviction
// mechanism (§2.2). Removal of arbitrary members (promotion to Tier-1)
// is O(1) amortized via tombstones; a head cursor plus in-place
// compaction keeps the queue's backing array bounded and reused, so
// steady-state Insert/Remove/Victim allocate nothing.
type FIFO struct {
	capacity int
	queue    []PageID
	head     int // queue[:head] entries are consumed
	resident []bool
	n        int
}

var _ Store = (*FIFO)(nil)

// NewFIFO returns an empty FIFO with the given capacity.
func NewFIFO(capacity int) *FIFO {
	if capacity < 1 {
		panic("tier: fifo capacity must be >= 1")
	}
	return &FIFO{capacity: capacity}
}

// Reserve presizes the residency index for an n-page footprint. Growth
// from the insert path doubles (growSize), so it is amortized off the
// per-access steady state.
//
//gmt:coldpath
func (f *FIFO) Reserve(n int) {
	if n > len(f.resident) {
		nv := make([]bool, n)
		copy(nv, f.resident)
		f.resident = nv
	}
}

// Reset empties the FIFO, reproducing NewFIFO's state — empty queue,
// head at zero — while retaining the queue's backing array and the
// residency index's capacity (a longer index is behavior-neutral: it
// only changes when growth copies happen, never membership answers).
func (f *FIFO) Reset() {
	for i := range f.resident {
		f.resident[i] = false
	}
	f.queue = f.queue[:0]
	f.head = 0
	f.n = 0
}

func (f *FIFO) isResident(p PageID) bool {
	return p >= 0 && int64(p) < int64(len(f.resident)) && f.resident[p]
}

// Insert adds p at the tail.
//
//gmt:hotpath
func (f *FIFO) Insert(p PageID) {
	if p < 0 {
		panic(fmt.Sprintf("tier: negative page id %d", p))
	}
	if f.isResident(p) {
		panic(fmt.Sprintf("tier: page %d already in fifo", p))
	}
	if f.n >= f.capacity {
		panic("tier: fifo full")
	}
	if int64(p) >= int64(len(f.resident)) {
		f.Reserve(growSize(len(f.resident), int(p)+1))
	}
	f.resident[p] = true
	f.n++
	f.queue = append(f.queue, p)
	f.compact()
	invariant.Assert(f.n <= f.capacity,
		"tier: fifo holds %d residents above capacity %d", f.n, f.capacity)
}

// growSize doubles have toward need (minimum 64) to amortize index
// growth.
func growSize(have, need int) int {
	size := have
	if size < 64 {
		size = 64
	}
	for size < need {
		size *= 2
	}
	return size
}

// Remove deletes p (leaving a tombstone in the queue).
//
//gmt:hotpath
func (f *FIFO) Remove(p PageID) bool {
	if !f.isResident(p) {
		return false
	}
	f.resident[p] = false
	f.n--
	return true
}

// Victim reports the oldest resident page.
//
//gmt:hotpath
func (f *FIFO) Victim() PageID {
	f.skipDead()
	if f.head >= len(f.queue) {
		panic("tier: victim from empty fifo")
	}
	return f.queue[f.head]
}

func (f *FIFO) skipDead() {
	for f.head < len(f.queue) && !f.resident[f.queue[f.head]] {
		f.head++
	}
}

// compact reclaims queue storage when consumed entries and tombstones
// dominate, rewriting the live tail into the front of the same backing
// array so append reuses it. The trigger measures the unconsumed queue
// (excluding the prefix skipDead already passed): compaction drops dead
// mid-queue entries, which changes where a later re-insert of those
// pages lands, so when it fires is part of the replacement order and
// must not depend on how the consumed prefix is represented.
//
//gmt:coldpath
func (f *FIFO) compact() {
	if n := len(f.queue) - f.head; n < 2*f.capacity || n < 64 {
		return
	}
	live := f.queue[:0]
	for _, p := range f.queue[f.head:] {
		if f.resident[p] {
			live = append(live, p)
		}
	}
	f.queue = live
	f.head = 0
}

// Contains reports residency.
func (f *FIFO) Contains(p PageID) bool { return f.isResident(p) }

// Each calls fn for every resident page, in ascending page-ID order
// (deterministic; the queue itself may hold stale duplicates for
// re-inserted pages, so it cannot be walked directly).
func (f *FIFO) Each(fn func(PageID)) {
	seen := 0
	for p, r := range f.resident {
		if r {
			fn(PageID(p))
			seen++
			if seen == f.n {
				return
			}
		}
	}
}

// Len reports the number of resident pages.
func (f *FIFO) Len() int { return f.n }

// Capacity reports the maximum residency.
func (f *FIFO) Capacity() int { return f.capacity }

// Full reports whether the FIFO is at capacity.
func (f *FIFO) Full() bool { return f.n >= f.capacity }
