// Package tier provides the page-residency structures used by the GMT
// runtime: a clock (second-chance) replacement set for Tier-1 (and for
// Tier-2 under GMT-TierOrder), and a FIFO set for Tier-2 under the other
// policies (paper §2.2).
//
// These structures track membership and choose victims; page metadata
// (dirty bits, timestamps, predictor state) lives with the runtime.
package tier

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/invariant"
)

// PageID identifies a 64 KiB page by its index in the application's
// backing dataset (its "home" location on the SSD).
type PageID int64

// NoPage is returned by Victim on structures that allow emptiness checks.
const NoPage PageID = -1

// Store is a fixed-capacity set of resident pages with a replacement
// policy. Implementations: *Clock, *FIFO.
type Store interface {
	// Insert adds p. It panics if the store is full or p is present:
	// callers must evict first, which keeps accounting explicit.
	Insert(p PageID)
	// Remove deletes p, reporting whether it was present.
	Remove(p PageID) bool
	// Victim selects the replacement victim without removing it.
	// It panics if the store is empty.
	Victim() PageID
	// Contains reports whether p is resident.
	Contains(p PageID) bool
	// Each calls fn for every resident page (iteration order
	// unspecified; callers needing determinism must impose their own
	// total order).
	Each(fn func(PageID))
	// Len and Capacity report occupancy; Full is Len() == Capacity().
	Len() int
	Capacity() int
	Full() bool
}

// Clock is a second-chance (clock) replacement set, the Tier-1
// replacement algorithm in both BaM and GMT (§2, "What to evict").
type Clock struct {
	slots []PageID
	ref   []bool
	hand  int
	index map[PageID]int
	free  []int
}

var _ Store = (*Clock)(nil)

// NewClock returns an empty clock with the given capacity.
func NewClock(capacity int) *Clock {
	if capacity < 1 {
		panic("tier: clock capacity must be >= 1")
	}
	c := &Clock{
		slots: make([]PageID, capacity),
		ref:   make([]bool, capacity),
		index: make(map[PageID]int, capacity),
		free:  make([]int, 0, capacity),
	}
	for i := range c.slots {
		c.slots[i] = NoPage
		c.free = append(c.free, capacity-1-i) // pop order 0,1,2,...
	}
	return c
}

// Insert adds p with its reference bit set.
func (c *Clock) Insert(p PageID) {
	if _, ok := c.index[p]; ok {
		panic(fmt.Sprintf("tier: page %d already in clock", p))
	}
	if len(c.free) == 0 {
		panic("tier: clock full")
	}
	i := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.slots[i] = p
	c.ref[i] = true
	c.index[p] = i
	c.checkSlots()
}

// checkSlots asserts the clock's conservation invariant: every slot is
// either resident or free (gmtinvariants builds only).
func (c *Clock) checkSlots() {
	invariant.Assert(len(c.index)+len(c.free) == len(c.slots),
		"tier: clock slot leak: %d resident + %d free != %d capacity",
		len(c.index), len(c.free), len(c.slots))
}

// Touch sets p's reference bit; it is a no-op if p is absent.
func (c *Clock) Touch(p PageID) {
	if i, ok := c.index[p]; ok {
		c.ref[i] = true
	}
}

// Remove deletes p.
func (c *Clock) Remove(p PageID) bool {
	i, ok := c.index[p]
	if !ok {
		return false
	}
	delete(c.index, p)
	c.slots[i] = NoPage
	c.ref[i] = false
	c.free = append(c.free, i)
	c.checkSlots()
	return true
}

// Victim runs the clock hand: occupied slots with the reference bit set
// get a second chance (bit cleared, hand advances); the first unreferenced
// occupied slot is the victim. The hand is left pointing at the victim, so
// a caller that rejects the choice can call Reject and then Victim again.
func (c *Clock) Victim() PageID {
	if len(c.index) == 0 {
		panic("tier: victim from empty clock")
	}
	for {
		i := c.hand
		if c.slots[i] != NoPage {
			if c.ref[i] {
				c.ref[i] = false
			} else {
				return c.slots[i]
			}
		}
		c.hand = (c.hand + 1) % len(c.slots)
	}
}

// Reject gives p another chance after a Victim call chose it: its
// reference bit is set again and the hand moves past it. GMT-Reuse uses
// this when a candidate's predicted reuse is "short" (§2.1.3: retain in
// GPU memory and run another round of clock).
func (c *Clock) Reject(p PageID) {
	i, ok := c.index[p]
	if !ok {
		panic(fmt.Sprintf("tier: rejecting absent page %d", p))
	}
	c.ref[i] = true
	if c.hand == i {
		c.hand = (c.hand + 1) % len(c.slots)
	}
}

// Contains reports residency.
func (c *Clock) Contains(p PageID) bool { _, ok := c.index[p]; return ok }

// Each calls fn for every resident page (iteration order unspecified).
func (c *Clock) Each(fn func(PageID)) {
	for p := range c.index {
		fn(p)
	}
}

// Len reports the number of resident pages.
func (c *Clock) Len() int { return len(c.index) }

// Capacity reports the slot count.
func (c *Clock) Capacity() int { return len(c.slots) }

// Full reports whether every slot is occupied.
func (c *Clock) Full() bool { return len(c.index) == len(c.slots) }

// FIFO is a first-in-first-out replacement set, GMT's Tier-2 eviction
// mechanism (§2.2). Removal of arbitrary members (promotion to Tier-1)
// is O(1) amortized via tombstones.
type FIFO struct {
	capacity int
	queue    []PageID
	index    map[PageID]struct{}
}

var _ Store = (*FIFO)(nil)

// NewFIFO returns an empty FIFO with the given capacity.
func NewFIFO(capacity int) *FIFO {
	if capacity < 1 {
		panic("tier: fifo capacity must be >= 1")
	}
	return &FIFO{capacity: capacity, index: make(map[PageID]struct{}, capacity)}
}

// Insert adds p at the tail.
func (f *FIFO) Insert(p PageID) {
	if _, ok := f.index[p]; ok {
		panic(fmt.Sprintf("tier: page %d already in fifo", p))
	}
	if len(f.index) >= f.capacity {
		panic("tier: fifo full")
	}
	f.index[p] = struct{}{}
	f.queue = append(f.queue, p)
	f.compact()
	invariant.Assert(len(f.index) <= f.capacity,
		"tier: fifo holds %d residents above capacity %d", len(f.index), f.capacity)
}

// Remove deletes p (leaving a tombstone in the queue).
func (f *FIFO) Remove(p PageID) bool {
	if _, ok := f.index[p]; !ok {
		return false
	}
	delete(f.index, p)
	return true
}

// Victim reports the oldest resident page.
func (f *FIFO) Victim() PageID {
	f.skipDead()
	if len(f.queue) == 0 {
		panic("tier: victim from empty fifo")
	}
	return f.queue[0]
}

func (f *FIFO) skipDead() {
	for len(f.queue) > 0 {
		if _, ok := f.index[f.queue[0]]; ok {
			return
		}
		f.queue = f.queue[1:]
	}
}

// compact reclaims queue storage when tombstones dominate.
func (f *FIFO) compact() {
	if len(f.queue) < 2*f.capacity || len(f.queue) < 64 {
		return
	}
	live := f.queue[:0]
	for _, p := range f.queue {
		if _, ok := f.index[p]; ok {
			live = append(live, p)
		}
	}
	f.queue = live
}

// Contains reports residency.
func (f *FIFO) Contains(p PageID) bool { _, ok := f.index[p]; return ok }

// Each calls fn for every resident page (iteration order unspecified).
func (f *FIFO) Each(fn func(PageID)) {
	for p := range f.index {
		fn(p)
	}
}

// Len reports the number of resident pages.
func (f *FIFO) Len() int { return len(f.index) }

// Capacity reports the maximum residency.
func (f *FIFO) Capacity() int { return f.capacity }

// Full reports whether the FIFO is at capacity.
func (f *FIFO) Full() bool { return len(f.index) >= f.capacity }
