package tier

import (
	"fmt"
	"math/rand"
	"testing"
)

// storeImpl names one Store implementation for the conformance suite.
type storeImpl struct {
	name string
	mk   func(capacity int) Store
}

// storeImpls lists every Store implementation in a fixed order; every
// conformance subtest runs over all of them.
func storeImpls() []storeImpl {
	return []storeImpl{
		{"clock", func(c int) Store { return NewClock(c) }},
		{"fifo", func(c int) Store { return NewFIFO(c) }},
		{"lru-2", func(c int) Store { return NewLRUK(c) }},
		{"2q", func(c int) Store { return NewTwoQ(c) }},
	}
}

// TestStoreConformance is the shared contract suite: every Store
// implementation must satisfy the interface's accounting, panic, and
// iteration-order guarantees identically.
func TestStoreConformance(t *testing.T) {
	for _, im := range storeImpls() {
		im := im
		t.Run(im.name+"/accounting", func(t *testing.T) {
			s := im.mk(4)
			s.Reserve(64)
			for p := PageID(0); p < 4; p++ {
				s.Insert(p * 3)
			}
			if !s.Full() || s.Len() != 4 || s.Capacity() != 4 {
				t.Fatalf("full-store accounting broken: len=%d cap=%d full=%v",
					s.Len(), s.Capacity(), s.Full())
			}
			v := s.Victim()
			if !s.Contains(v) {
				t.Fatalf("Victim returned non-resident page %d", v)
			}
			if s.Len() != 4 {
				t.Fatal("Victim must not remove")
			}
			if !s.Remove(v) {
				t.Fatalf("Remove(%d) of the victim failed", v)
			}
			if s.Remove(v) {
				t.Fatalf("second Remove(%d) reported true", v)
			}
			if s.Remove(999) {
				t.Fatal("Remove of never-inserted page reported true")
			}
			if s.Len() != 3 || s.Full() {
				t.Fatalf("post-remove accounting broken: len=%d", s.Len())
			}
		})
		t.Run(im.name+"/victims-drain", func(t *testing.T) {
			// Repeated Victim+Remove must drain the store, touching each
			// resident exactly once.
			s := im.mk(8)
			for p := PageID(0); p < 8; p++ {
				s.Insert(p)
			}
			seen := map[PageID]bool{}
			for s.Len() > 0 {
				v := s.Victim()
				if seen[v] {
					t.Fatalf("victim %d produced twice", v)
				}
				seen[v] = true
				s.Remove(v)
			}
			if len(seen) != 8 {
				t.Fatalf("drained %d pages, want 8", len(seen))
			}
		})
		t.Run(im.name+"/each-ascending", func(t *testing.T) {
			s := im.mk(8)
			for _, p := range []PageID{13, 2, 40, 7, 21} {
				s.Insert(p)
			}
			s.Remove(7)
			var got []PageID
			s.Each(func(p PageID) { got = append(got, p) })
			want := []PageID{2, 13, 21, 40}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("Each order = %v, want ascending %v", got, want)
			}
		})
		t.Run(im.name+"/panics", func(t *testing.T) {
			mustPanic := func(what string, fn func()) {
				defer func() {
					if recover() == nil {
						t.Errorf("%s did not panic", what)
					}
				}()
				fn()
			}
			mustPanic("zero capacity", func() { im.mk(0) })
			mustPanic("insert when full", func() {
				s := im.mk(1)
				s.Insert(1)
				s.Insert(2)
			})
			mustPanic("duplicate insert", func() {
				s := im.mk(2)
				s.Insert(1)
				s.Insert(1)
			})
			mustPanic("victim from empty", func() { im.mk(1).Victim() })
			mustPanic("negative page id", func() { im.mk(1).Insert(-1) })
		})
	}
}

// storeScript runs a deterministic seeded churn through s and returns
// everything observable about its behavior: every victim offered, every
// Remove result, and the final Each order. Two stores with identical
// scripts are behaviorally indistinguishable to the runtime.
func storeScript(s Store, seed int64) []PageID {
	rng := rand.New(rand.NewSource(seed))
	s.Reserve(128)
	var log []PageID
	live := map[PageID]bool{}
	for op := 0; op < 2000; op++ {
		p := PageID(rng.Intn(128))
		switch {
		case live[p]:
			if rng.Intn(2) == 0 {
				if s.Remove(p) {
					log = append(log, p)
				}
				delete(live, p)
			} else if tc, ok := s.(interface{ Touch(PageID) }); ok {
				tc.Touch(p)
			}
		case s.Full():
			v := s.Victim()
			log = append(log, v)
			s.Remove(v)
			delete(live, v)
		default:
			s.Insert(p)
			live[p] = true
		}
	}
	s.Each(func(p PageID) { log = append(log, p) })
	return log
}

// TestStoreResetEqualsFresh pins the Reset half of the conformance
// contract (tier.Store doc): a churned store, Reset, must replay a
// deterministic script with exactly the victim sequence, Remove results,
// and Each order of a freshly constructed store — retained capacity
// (index arrays, rebuilt free lists, ghost rings) must be invisible.
func TestStoreResetEqualsFresh(t *testing.T) {
	for _, im := range storeImpls() {
		im := im
		t.Run(im.name, func(t *testing.T) {
			want := storeScript(im.mk(16), 11)

			s := im.mk(16)
			storeScript(s, 99) // churn with a different workload
			s.Reset()
			if s.Len() != 0 || s.Full() {
				t.Fatalf("Reset left len=%d full=%v", s.Len(), s.Full())
			}
			got := storeScript(s, 11)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("reset store diverged from fresh:\nfresh: %v\nreset: %v", want, got)
			}

			// Reset must also recover a store abandoned mid-rejection
			// (hand position, cleared reference bits are run-local state).
			s2 := im.mk(16)
			for p := PageID(0); p < 16; p++ {
				s2.Insert(p)
			}
			v := s2.Victim()
			if rj, ok := s2.(interface{ Reject(PageID) }); ok {
				rj.Reject(v)
			}
			s2.Reset()
			if fmt.Sprint(storeScript(s2, 11)) != fmt.Sprint(want) {
				t.Fatal("reset after mid-eviction abandonment diverged from fresh")
			}
		})
	}
}

// TestEachInsertionOrderIndependent pins the satellite contract: for the
// same resident set, Each yields the same (ascending) sequence no
// matter which order built the set and no matter which policy holds it.
// This is the cross-policy fixture that makes iterating a Store safe in
// deterministic code without an external sort.
func TestEachInsertionOrderIndependent(t *testing.T) {
	pages := []PageID{11, 3, 27, 5, 19, 8}
	orders := [][]PageID{
		{11, 3, 27, 5, 19, 8},
		{8, 19, 5, 27, 3, 11},
		{3, 8, 11, 19, 27, 5},
	}
	want := fmt.Sprint([]PageID{3, 5, 8, 11, 19, 27})
	for _, im := range storeImpls() {
		for oi, order := range orders {
			s := im.mk(len(pages) + 2)
			// Interleave a remove/re-insert so the internal structures
			// (queues, heaps, slots) diverge across orders even more.
			for _, p := range order {
				s.Insert(p)
			}
			s.Remove(order[0])
			s.Insert(order[0])
			var got []PageID
			s.Each(func(p PageID) { got = append(got, p) })
			if fmt.Sprint(got) != want {
				t.Fatalf("%s order %d: Each = %v, want %v", im.name, oi, got, want)
			}
		}
	}
}

// TestClockAllReferencedRejectVictim covers the edge the reclaim path
// can hit: every resident page has its reference bit set (fresh inserts
// or touches), and the caller keeps rejecting what Victim offers. The
// clock must clear bits on the first full sweep, offer each slot in
// order, and terminate after universal rejection rather than spin.
func TestClockAllReferencedRejectVictim(t *testing.T) {
	const capPages = 5
	c := NewClock(capPages)
	for p := PageID(0); p < capPages; p++ {
		c.Insert(p) // insert sets the reference bit
	}
	// First Victim pays the full clearing sweep and picks slot 0's page.
	offered := map[PageID]bool{}
	var order []PageID
	for i := 0; i < capPages; i++ {
		v := c.Victim()
		if offered[v] {
			t.Fatalf("victim %d offered twice within one rejection round (order %v)", v, order)
		}
		offered[v] = true
		order = append(order, v)
		c.Reject(v) // re-set the bit, hand moves past it
	}
	if len(offered) != capPages {
		t.Fatalf("rejection round offered %d distinct pages, want %d", len(offered), capPages)
	}
	// All bits are set again; the clock must still produce a victim (a
	// fresh clearing sweep) and the sequence must restart deterministically.
	v := c.Victim()
	if !c.Contains(v) {
		t.Fatal("post-rejection victim is not resident")
	}
	if v != order[0] {
		t.Fatalf("second round started at %d, want %d (same sweep order)", v, order[0])
	}
	// Touching the would-be victim shields it for exactly one sweep.
	c.Touch(v)
	if v2 := c.Victim(); v2 == v {
		t.Fatalf("touched page %d evicted immediately", v)
	}
}

// TestFIFORemoveThenVictimAfterCompaction forces the queue's in-place
// compaction and then checks that removals and victim order still agree:
// compaction drops tombstones and consumed prefix, and must not
// resurrect removed pages or reorder the live tail.
func TestFIFORemoveThenVictimAfterCompaction(t *testing.T) {
	const capPages = 4
	f := NewFIFO(capPages)
	// Churn far past 2*capacity queue entries so compact() fires
	// (trigger: unconsumed queue >= max(2*cap, 64)).
	for i := 0; i < 200; i++ {
		p := PageID(i)
		f.Insert(p)
		if i%2 == 0 {
			f.Remove(p) // tombstone mid-queue
		}
		if f.Full() {
			v := f.Victim()
			f.Remove(v)
		}
	}
	// Snapshot the live set in FIFO order by draining a copy of the
	// victim sequence: every victim must be resident, ages ascending.
	var drained []PageID
	for f.Len() > 0 {
		v := f.Victim()
		if !f.Contains(v) {
			t.Fatalf("victim %d not resident after compaction churn", v)
		}
		if len(drained) > 0 && v <= drained[len(drained)-1] {
			t.Fatalf("victim order regressed after compaction: %v then %d", drained, v)
		}
		drained = append(drained, v)
		f.Remove(v)
	}
	// Removed-then-victim: force a compaction while known pages are
	// live (tombstone churn with no Victim calls keeps the head pinned,
	// so the unconsumed queue crosses the compaction trigger), then
	// check removals and victim order against the compacted queue.
	f = NewFIFO(capPages)
	f.Insert(500)
	f.Insert(501)
	for i := 0; i < 100; i++ {
		f.Insert(PageID(i))
		f.Remove(PageID(i))
	}
	if len(f.queue) >= 64 {
		t.Fatalf("compaction did not fire: queue holds %d entries", len(f.queue))
	}
	f.Insert(1000)
	f.Remove(500)
	if v := f.Victim(); v != 501 {
		t.Fatalf("victim = %d, want 501 (500 removed after compaction)", v)
	}
	f.Remove(501)
	if v := f.Victim(); v != 1000 {
		t.Fatalf("victim = %d, want 1000", v)
	}
}

// TestLRUKVictimOrder checks the LRU-2 ordering: pages with fewer than
// two references go first (least recently used among them), then pages
// by oldest second-most-recent reference.
func TestLRUKVictimOrder(t *testing.T) {
	l := NewLRUK(4)
	l.Insert(1) // refs: 1@t1
	l.Insert(2) // refs: 2@t2
	l.Insert(3) // refs: 3@t3
	l.Touch(1)  // refs: 1@t1,t4 — only page with a backward-2 distance
	// 2 and 3 have one reference each; 2's is older.
	if v := l.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2 (oldest single-reference page)", v)
	}
	l.Touch(2) // refs: 2@t2,t5
	l.Touch(3) // refs: 3@t3,t6
	// Now all have two references; oldest backward-2 stamp is 1's (t1).
	if v := l.Victim(); v != 1 {
		t.Fatalf("victim = %d, want 1 (oldest backward-2 reference)", v)
	}
}

// TestLRUKRetainedHistory checks that history survives eviction and
// promotion: a page that was promoted (removed without being the
// victim) returns with two references and outranks a first-timer.
func TestLRUKRetainedHistory(t *testing.T) {
	l := NewLRUK(2)
	l.Insert(1)
	l.Remove(1) // promotion: counts as 1's second reference
	l.Insert(5)
	l.Insert(1) // third reference; backward-2 is recent
	// 5 has a single reference, 1 has three: 5 must be the victim even
	// though it was inserted before 1's reinsertion.
	if v := l.Victim(); v != 5 {
		t.Fatalf("victim = %d, want single-reference page 5", v)
	}
	// An eviction (Victim then Remove) does NOT count as a reference:
	// 5 returns with its pre-eviction stamp as the backward-2 distance.
	// Had the eviction been credited as a reference, 5's history would
	// be fresher than 1's and 1 would be the victim instead.
	l.Remove(5) // eviction of the victim above: no credit
	l.Touch(1)  // 1's backward-2 stamp advances past 5's only real reference
	l.Insert(5)
	if v := l.Victim(); v != 5 {
		t.Fatalf("victim = %d, want 5 (eviction must not refresh history)", v)
	}
}

// TestTwoQProbationAndPromotion checks 2Q's structure: first-timers are
// victimized from the probation FIFO; a page seen in the ghost ring
// (evicted from probation) or promoted to Tier-1 re-enters the main
// queue and outlives fresh probation pages.
func TestTwoQProbationAndPromotion(t *testing.T) {
	q := NewTwoQ(8) // kin = 2, kout = 4
	for _, p := range []PageID{1, 2, 3, 4} {
		q.Insert(p)
	}
	// All four sit in A1in (> kin): victim is the oldest first-timer.
	if v := q.Victim(); v != 1 {
		t.Fatalf("victim = %d, want oldest probation page 1", v)
	}
	q.Remove(1) // eviction from A1in -> ghost ring remembers 1
	q.Insert(1) // second miss on 1: proven hot, enters Am
	// A1in still exceeds kin (2, 3, 4): victims stay in probation order.
	if v := q.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2 (hot page must not be offered)", v)
	}
	q.Remove(2)
	q.Remove(3) // promotion (not the current victim): 3 becomes hot
	// A1in = {4} <= kin and Am = {1}: victim comes from Am's LRU end.
	if v := q.Victim(); v != 1 {
		t.Fatalf("victim = %d, want Am LRU page 1", v)
	}
	q.Insert(3) // promoted page returns straight to Am
	q.Touch(1)  // 1 to Am MRU; LRU of Am is now 3... then 1 after touch
	// Am order (LRU->MRU): 3, 1? No: Am was [1], then 3 pushed -> [1, 3],
	// then Touch(1) -> [3, 1]. A1in = {4} <= kin: victim = Am LRU = 3.
	if v := q.Victim(); v != 3 {
		t.Fatalf("victim = %d, want Am LRU page 3", v)
	}
}

// TestTwoQGhostAging checks the ghost ring forgets: after kout newer
// evictions, a page's hotness lapses and it re-enters probation.
func TestTwoQGhostAging(t *testing.T) {
	q := NewTwoQ(2) // kin = 1, kout = 1
	q.Insert(1)
	q.Victim()
	q.Remove(1) // ghost: [1]
	q.Insert(2)
	q.Victim()
	q.Remove(2) // ghost: [2], 1 forgotten
	q.Insert(1) // back to probation, not Am
	q.Insert(3)
	// Both in A1in? 1 (older) then 3: victim is 1 — it got no hot credit.
	if v := q.Victim(); v != 1 {
		t.Fatalf("victim = %d, want 1 (ghost entry should have aged out)", v)
	}
}

// TestParseStorePolicy covers names, aliases, and rejection.
func TestParseStorePolicy(t *testing.T) {
	for in, want := range map[string]StorePolicy{
		"clock": StoreClock, "CLOCK": StoreClock,
		"fifo":  StoreFIFO,
		"lru-2": StoreLRUK, "lruk": StoreLRUK, "LRU-K": StoreLRUK, "lru2": StoreLRUK,
		"2q": StoreTwoQ, "TwoQ": StoreTwoQ,
	} {
		got, err := ParseStorePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseStorePolicy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseStorePolicy("mru"); err == nil {
		t.Error("ParseStorePolicy(mru) succeeded")
	}
	for _, p := range StorePolicies {
		s := NewStore(p, 4)
		if s.Capacity() != 4 {
			t.Errorf("NewStore(%q) capacity = %d", p, s.Capacity())
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewStore with unknown policy did not panic")
			}
		}()
		NewStore("mru", 4)
	}()
}

// TestPolicyChurnEquivalence runs identical random churn through all
// four stores and checks the shared invariants (Victim liveness, Len
// accounting, Each order) hold under every policy — the "same
// conformance suite over all four implementations" satellite, in
// property form.
func TestPolicyChurnEquivalence(t *testing.T) {
	for _, im := range storeImpls() {
		rng := rand.New(rand.NewSource(7))
		s := im.mk(16)
		s.Reserve(256)
		live := map[PageID]bool{}
		for op := 0; op < 5000; op++ {
			p := PageID(rng.Intn(256))
			switch {
			case live[p]:
				if rng.Intn(2) == 0 {
					s.Remove(p) // promotion-style removal
					delete(live, p)
				} else if tc, ok := s.(interface{ Touch(PageID) }); ok {
					tc.Touch(p)
				}
			case s.Full():
				v := s.Victim()
				if !live[v] {
					t.Fatalf("%s: victim %d not live", im.name, v)
				}
				s.Remove(v)
				delete(live, v)
			default:
				s.Insert(p)
				live[p] = true
			}
			if s.Len() != len(live) {
				t.Fatalf("%s: Len = %d, live = %d", im.name, s.Len(), len(live))
			}
		}
		prev := PageID(-1)
		n := 0
		s.Each(func(p PageID) {
			if p <= prev {
				t.Fatalf("%s: Each not ascending: %d after %d", im.name, p, prev)
			}
			if !live[p] {
				t.Fatalf("%s: Each visited dead page %d", im.name, p)
			}
			prev = p
			n++
		})
		if n != len(live) {
			t.Fatalf("%s: Each visited %d of %d", im.name, n, len(live))
		}
	}
}
