package exp

import (
	"strings"
	"testing"

	"github.com/gmtsim/gmt/internal/xfer"
)

func TestSVGBuilders(t *testing.T) {
	rows8, _ := Figure8(shared)
	f8 := Figure8SVG(rows8)
	if len(f8.Labels) != 9 || len(f8.Series) != 3 {
		t.Fatalf("fig8 svg: labels=%d series=%d", len(f8.Labels), len(f8.Series))
	}
	if out := f8.SVG(); !strings.Contains(out, "GMT-Reuse") {
		t.Fatal("fig8 svg missing series")
	}

	rows6, _ := Figure6b(xfer.DefaultConfig())
	f6 := Figure6bSVG(rows6)
	if !f6.Line || len(f6.Series) != 5 {
		t.Fatalf("fig6b svg: line=%v series=%d", f6.Line, len(f6.Series))
	}

	rows9, _ := Figure9(shared)
	if f := Figure9SVG(rows9); len(f.Labels) != 9 {
		t.Fatalf("fig9 svg labels = %d", len(f.Labels))
	}

	byRatio, _ := Figure12(shared)
	if f := Figure12SVG(byRatio); len(f.Series) != 3 || len(f.Labels) != 9 {
		t.Fatalf("fig12 svg: series=%d labels=%d", len(f.Series), len(f.Labels))
	}

	rows14, _ := Figure14(shared)
	if f := Figure14SVG(rows14); len(f.Series) != 2 {
		t.Fatalf("fig14 svg series = %d", len(f.Series))
	}

	rowsSSD, _ := SSDSensitivity(shared)
	fs := SSDSensitivitySVG(rowsSSD)
	if len(fs.Labels) != len(SSDGens) || len(fs.Series) != len(SensitivityApps) {
		t.Fatalf("ssd svg: labels=%d series=%d", len(fs.Labels), len(fs.Series))
	}
	// Every series must span all generations.
	for _, s := range fs.Series {
		if len(s.Values) != len(SSDGens) {
			t.Fatalf("series %s has %d values", s.Name, len(s.Values))
		}
	}
}
