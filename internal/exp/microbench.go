package exp

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/pcie"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/workload"
	"github.com/gmtsim/gmt/internal/xfer"
)

// Figure4Result holds the instrumentation behind Figure 4: the VTD ->
// reuse-distance correlation (4a) and per-page eviction RRD series
// (4b/4c) for MultiVectorAdd and PageRank.
type Figure4Result struct {
	App            string
	Slope, Offset  float64
	Correlation    float64
	SeriesSampled  int
	ConstantSeries int // pages whose successive eviction RRDs vary <25%
	Alternating    int // pages whose successive RRDs alternate up/down
}

// Figure4 instruments MultiVectorAdd and PageRank exactly as §2.1.3's
// motivating study does.
func Figure4(s *Suite) ([]Figure4Result, *stats.Table) {
	t := stats.NewTable("Figure 4: VTD vs reuse distance (a) and per-page eviction RRD patterns (b, c)",
		"Application", "Slope m", "Offset b", "Pearson r", "Pages sampled", "Constant-RRD", "Alternating")
	var out []Figure4Result
	for _, name := range []string{"MultiVectorAdd", "PageRank"} {
		w := appByName(s, name)
		a := workload.Analyze(name, s.Trace(w), s.Scale, 64*1024, 20_000)
		m, b, r, _ := a.PairCorrelation()
		res := Figure4Result{App: name, Slope: m, Offset: b, Correlation: r}
		for _, series := range a.EvictionSeries(2) {
			res.SeriesSampled++
			if isNearConstant(series) {
				res.ConstantSeries++
			}
			if isAlternating(series) {
				res.Alternating++
			}
		}
		out = append(out, res)
		t.AddRow(res.App, fmt.Sprintf("%.3f", res.Slope), fmt.Sprintf("%.1f", res.Offset),
			fmt.Sprintf("%.3f", res.Correlation), fmt.Sprintf("%d", res.SeriesSampled),
			fmt.Sprintf("%d", res.ConstantSeries), fmt.Sprintf("%d", res.Alternating))
	}
	return out, t
}

func isNearConstant(series []int64) bool {
	for i := 1; i < len(series); i++ {
		lo, hi := series[i-1], series[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo <= 0 || float64(hi)/float64(lo) > 1.25 {
			return false
		}
	}
	return true
}

func isAlternating(series []int64) bool {
	if len(series) < 3 {
		return false
	}
	for i := 2; i < len(series); i++ {
		d1 := series[i-1] - series[i-2]
		d2 := series[i] - series[i-1]
		if d1 == 0 || d2 == 0 || (d1 > 0) == (d2 > 0) {
			return false
		}
	}
	return true
}

// Figure6aRow is the unloaded completion time for transferring n
// non-contiguous pages under each mechanism (Figure 6a).
type Figure6aRow struct {
	Pages            int
	DMAMicros        int64
	ZeroCopy32Micros int64
}

// Figure6a sweeps the non-contiguous batch size.
func Figure6a(cfg xfer.Config) ([]Figure6aRow, *stats.Table) {
	linkBps := int64(16 * pcie.Gen3LaneBytesPerS)
	t := stats.NewTable("Figure 6a: transfer time for N non-contiguous pages (µs; lower is better)",
		"Pages", "cudaMemcpyAsync", "Zero-copy (32T)", "Winner")
	var rows []Figure6aRow
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		dma := cfg.DMATime(n, linkBps) / sim.Microsecond
		zc := cfg.ZeroCopyTime(n, 32, linkBps) / sim.Microsecond
		rows = append(rows, Figure6aRow{Pages: n, DMAMicros: dma, ZeroCopy32Micros: zc})
		winner := "cudaMemcpyAsync"
		if zc < dma {
			winner = "zero-copy"
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", dma), fmt.Sprintf("%d", zc), winner)
	}
	return rows, t
}

// Figure6bRow is the delivered bandwidth at one zipf skew for each
// transfer scheme (Figure 6b).
type Figure6bRow struct {
	Skew float64
	// GB/s delivered by each scheme.
	DMA, ZeroCopy, Hybrid8, Hybrid16, Hybrid32 float64
}

// Figure6b sweeps zipf skew: threads repeatedly draw page addresses,
// only accesses missing a GPU-resident hot set become transfers (higher
// skew concentrates accesses on resident pages, so fewer pages move per
// batch — §2.3: "higher skew implies fewer distinct pages"), and the
// delivered transfer bandwidth is measured per scheme. The threads
// available for a cooperative zero-copy transfer are the faulting
// threads of the batch, which is what separates Hybrid-8T/16T/32T.
func Figure6b(cfg xfer.Config) ([]Figure6bRow, *stats.Table) {
	const (
		pages        = 4096
		residentSize = 3072
		warmupDraws  = 60_000
		batchThreads = 256
		batches      = 48
	)
	linkBps := int64(16 * pcie.Gen3LaneBytesPerS)
	t := stats.NewTable("Figure 6b: delivered bandwidth (GB/s) for zipf page accesses",
		"Skew", "cudaMemcpyAsync", "Zero-copy", "Hybrid-8T", "Hybrid-16T", "Hybrid-32T")
	var rows []Figure6bRow
	for skew := 0.0; skew <= 1.001; skew += 0.125 {
		z := workload.NewZipfStream(pages, skew, warmupDraws+batchThreads*batches, int64(skew*1000)+3)
		// Warm the GPU-resident hot set: the pages the kernel has
		// already pulled in. High skew concentrates later accesses on
		// this set, so few pages need transferring per batch.
		resident := make(map[int64]bool, residentSize)
		for i := 0; i < warmupDraws && len(resident) < residentSize; i++ {
			a, ok := z.Next()
			if !ok {
				break
			}
			resident[int64(a.Page)] = true
		}
		var totals Figure6bRow
		totals.Skew = skew
		measured := 0
		for b := 0; b < batches; b++ {
			unique := map[int64]bool{}
			missingThreads := 0
			for i := 0; i < batchThreads; i++ {
				a, ok := z.Next()
				if !ok {
					break
				}
				p := int64(a.Page)
				if resident[p] {
					continue
				}
				missingThreads++
				unique[p] = true
			}
			u := len(unique)
			if u == 0 {
				continue
			}
			measured++
			threads := missingThreads
			if threads > 32 {
				threads = 32 // a warp is the cooperative unit
			}
			bytes := float64(u) * float64(cfg.PageSize)
			bw := func(tm sim.Time) float64 {
				if tm <= 0 {
					return 0
				}
				return bytes / float64(tm) // bytes per ns == GB/s
			}
			totals.DMA += bw(cfg.DMATime(u, linkBps))
			totals.ZeroCopy += bw(cfg.ZeroCopyTime(u, threads, linkBps))
			for _, x := range []int{8, 16, 32} {
				h := cfg
				h.HybridX = x
				tm, _ := h.HybridTime(u, missingThreads, linkBps)
				if m := h.Choose(u, missingThreads); m == xfer.ZeroCopy {
					tm = h.ZeroCopyTime(u, threads, linkBps)
				}
				switch x {
				case 8:
					totals.Hybrid8 += bw(tm)
				case 16:
					totals.Hybrid16 += bw(tm)
				case 32:
					totals.Hybrid32 += bw(tm)
				}
			}
		}
		if measured > 0 {
			n := float64(measured)
			totals.DMA /= n
			totals.ZeroCopy /= n
			totals.Hybrid8 /= n
			totals.Hybrid16 /= n
			totals.Hybrid32 /= n
		}
		rows = append(rows, totals)
		t.AddRow(fmt.Sprintf("%.3f", skew),
			fmt.Sprintf("%.2f", totals.DMA), fmt.Sprintf("%.2f", totals.ZeroCopy),
			fmt.Sprintf("%.2f", totals.Hybrid8), fmt.Sprintf("%.2f", totals.Hybrid16),
			fmt.Sprintf("%.2f", totals.Hybrid32))
	}
	return rows, t
}
