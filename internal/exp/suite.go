// Package exp contains one driver per table and figure of the paper's
// evaluation (§3): each driver runs the necessary simulations and
// renders the same rows/series the paper reports. Experiment results are
// deterministic for a given scale and seed.
//
// A Suite is safe for concurrent use: the parallel prewarmer (pool.go)
// runs many simulations at once, each on its own private sim.Engine, and
// commits results into the memo under the suite lock. The simulator
// packages themselves stay single-goroutine — concurrency lives entirely
// at this orchestration layer (see HACKING.md).
package exp

import (
	"fmt"
	"sync"

	"github.com/gmtsim/gmt/internal/baseline"
	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/workload"
)

// Policies in the order the paper's figures present them.
var Policies = []core.PolicyKind{
	core.PolicyTierOrder, core.PolicyRandom, core.PolicyReuse,
}

// Suite caches workloads, traces, and simulation results for one scale,
// so figures sharing runs (8, 9, 10, 14) pay for each simulation once.
//
// Memo keys include a fingerprint of the knobs a result depends on
// (Seed, GPU, Scale): mutating Seed or GPU between runs transparently
// computes fresh results instead of returning stale ones, and restoring
// the old values finds the old results again.
type Suite struct {
	Scale workload.Scale
	GPU   gpu.Config
	Seed  int64

	// NoFork disables cross-sweep-point sharing: warm-up prefix forking,
	// canonical BaM run dedup, and parent-trace reuse by derived
	// sub-suites (each regenerates its own identical copies instead).
	// Phased runs still split at the same points, so every result stays
	// byte-identical with or without it — gmtbench -nofork uses this to
	// measure the sharing speedup honestly. Set before first use.
	NoFork bool

	// phased marks a sensitivity sub-suite whose simulations split at
	// the eviction-free warm-up prefix (runPhased), letting sweep points
	// that agree on the prefix fork one shared warm-up parent. data,
	// when non-nil, is the suite whose workloads and trace memo this
	// suite borrows (the sweep varies the machine, not the datasets);
	// share holds the root's cross-suite caches (phased.go).
	phased bool
	data   *Suite
	share  *shareCache

	label string // distinguishes derived sub-suites in planner job keys
	apps  []workload.Workload
	kvApp workload.Workload // lazily built KV-serving workload

	// unitMu guards units, the pool of recycled {engine, runtime} pairs
	// monolithic simulations draw from (phased.go): a finished run's
	// page-directory arena, tier arrays, and event arena are reset and
	// reused by the next sweep point instead of reallocated. Results are
	// byte-identical either way (core.Runtime.Reset's contract).
	unitMu sync.Mutex
	units  []*runUnit

	mu            sync.Mutex
	traces        map[string][]gpu.Access
	traceInflight map[string]chan struct{}
	results       map[string]stats.Run
	runInflight   map[string]chan struct{}
	subs          map[string]*Suite
	subOrder      []string
	sims          int64 // simulations actually executed
	hits          int64 // memoized results served
}

// NewSuite builds the nine-application suite at the given scale.
func NewSuite(scale workload.Scale) *Suite {
	return &Suite{
		Scale:         scale,
		GPU:           gpu.DefaultConfig(),
		Seed:          1,
		label:         "root",
		share:         newShareCache(),
		apps:          workload.All(scale),
		traces:        make(map[string][]gpu.Access),
		traceInflight: make(map[string]chan struct{}),
		results:       make(map[string]stats.Run),
		runInflight:   make(map[string]chan struct{}),
		subs:          make(map[string]*Suite),
	}
}

// NewRegularSuite builds only the non-graph applications (Figure 13).
func NewRegularSuite(scale workload.Scale) *Suite {
	s := NewSuite(scale)
	s.apps = workload.Regular(scale)
	return s
}

// Apps reports the suite's workloads.
func (s *Suite) Apps() []workload.Workload { return s.apps }

// KVApp returns the suite's KV-cache serving workload, built lazily on
// first use (it is not part of the paper's nine-application suite, so
// only the serving experiment pays for it). The workload memoizes its
// own trace; Suite.Trace caches it under KVServeName like any app.
func (s *Suite) KVApp() workload.Workload {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kvApp == nil {
		s.kvApp = workload.NewKVServe(s.Scale)
	}
	return s.kvApp
}

// Fingerprint identifies the mutable knobs results depend on. It is
// part of every memo key, so stale results can never be returned after
// a caller changes Seed or GPU (they are simply not found). The serving
// layer (internal/serve) reuses it as the content address of cached
// responses, so a daemon cache hit is exactly a memo hit one level up.
func (s *Suite) Fingerprint() string {
	return fmt.Sprintf("@seed=%d,gpu=%+v,scale=%+v", s.Seed, s.GPU, s.Scale)
}

// Trace returns (and caches) the workload's access trace. Concurrent
// callers for the same workload block until the single generation
// finishes (trace generation is the second-largest cost after the
// simulations themselves).
func (s *Suite) Trace(w workload.Workload) []gpu.Access {
	if s.data != nil {
		return s.data.Trace(w)
	}
	name := w.Name()
	for {
		s.mu.Lock()
		if tr, ok := s.traces[name]; ok {
			s.mu.Unlock()
			return tr
		}
		if ch, ok := s.traceInflight[name]; ok {
			s.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		s.traceInflight[name] = ch
		s.mu.Unlock()

		var tr []gpu.Access
		func() {
			defer func() {
				s.mu.Lock()
				delete(s.traceInflight, name)
				s.mu.Unlock()
				close(ch)
			}()
			tr = w.Trace()
			s.mu.Lock()
			s.traces[name] = tr
			s.mu.Unlock()
		}()
		return tr
	}
}

// memoRun returns the cached result for key at the current fingerprint,
// or computes it via compute. Exactly one goroutine computes a given
// key; others requesting it block until the result is committed. If the
// computer panics, waiters retry (and typically re-panic the same way).
func (s *Suite) memoRun(key string, compute func() stats.Run) stats.Run {
	full := key + s.Fingerprint()
	for {
		s.mu.Lock()
		if r, ok := s.results[full]; ok {
			s.hits++
			s.mu.Unlock()
			return r
		}
		if ch, ok := s.runInflight[full]; ok {
			s.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		s.runInflight[full] = ch
		s.mu.Unlock()

		var r stats.Run
		func() {
			defer func() {
				s.mu.Lock()
				delete(s.runInflight, full)
				s.mu.Unlock()
				close(ch)
			}()
			r = compute()
			s.mu.Lock()
			s.results[full] = r
			s.sims++
			s.mu.Unlock()
		}()
		return r
	}
}

// storeResult commits an externally computed run into the memo under the
// current fingerprint (used by drivers whose simulations need more than
// the Run snapshot, e.g. RegressionWarmup's history inspection).
func (s *Suite) storeResult(key string, m stats.Run) {
	full := key + s.Fingerprint()
	s.mu.Lock()
	s.results[full] = m
	s.sims++
	s.mu.Unlock()
}

// Simulations reports how many simulations this suite has executed
// (memo misses; excludes derived sub-suites).
func (s *Suite) Simulations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sims
}

// CacheHits reports how many results were served from the memo
// (excludes derived sub-suites).
func (s *Suite) CacheHits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Counters reports simulations executed and memo hits, aggregated over
// this suite and every derived sub-suite.
func (s *Suite) Counters() (sims, hits int64) {
	s.mu.Lock()
	sims, hits = s.sims, s.hits
	subs := make([]*Suite, 0, len(s.subOrder))
	for _, k := range s.subOrder {
		subs = append(subs, s.subs[k])
	}
	s.mu.Unlock()
	for _, sub := range subs {
		a, b := sub.Counters()
		sims += a
		hits += b
	}
	return sims, hits
}

// derived returns the sub-suite registered under key, creating it with
// mk on first use. Sensitivity figures (11, 12, 13) derive alternate
// scales from a parent suite; registering them here lets the planner and
// the renderer agree on one shared memo per derived scale. The
// sub-suite's Seed and GPU follow the parent's.
func (s *Suite) derived(key string, mk func() *Suite) *Suite {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub, ok := s.subs[key]
	if !ok {
		sub = mk()
		sub.label = s.label + "/" + key
		sub.share = s.share // one sharing domain per root suite
		s.subs[key] = sub
		s.subOrder = append(s.subOrder, key)
	}
	// Write only on change: steady-state parallel phases never write, so
	// sub-suite reads inside running jobs race with nothing.
	if sub.Seed != s.Seed {
		sub.Seed = s.Seed
	}
	if sub.GPU != s.GPU {
		sub.GPU = s.GPU
	}
	if sub.NoFork != s.NoFork {
		sub.NoFork = s.NoFork
	}
	return sub
}

// config builds the runtime configuration for one policy at this scale.
func (s *Suite) config(p core.PolicyKind) core.Config {
	cfg := core.DefaultConfig()
	cfg.Policy = p
	cfg.Tier1Pages = s.Scale.Tier1Pages
	cfg.Tier2Pages = s.Scale.Tier2Pages
	cfg.Seed = s.Seed
	return cfg
}

// Run simulates the workload under a GMT policy (or BaM), returning the
// run metrics with WallTime filled in. Results are memoized.
//
//gmt:blocking
func (s *Suite) Run(w workload.Workload, p core.PolicyKind) stats.Run {
	cfg := s.config(p)
	cfg.FootprintPages = int(w.Pages())
	return s.memoRun(w.Name()+"/"+p.String(), func() stats.Run {
		return s.simulate(w, cfg)
	})
}

// RunHMM simulates the workload under the CPU-orchestrated baseline.
// forcedHitRate < 0 runs real HMM; otherwise the §3.6 optimistic
// variant.
//
//gmt:blocking
func (s *Suite) RunHMM(w workload.Workload, forcedHitRate float64) stats.Run {
	cfg := baseline.DefaultHMMConfig()
	cfg.Tier1Pages = s.Scale.Tier1Pages
	cfg.PageCachePages = s.Scale.Tier2Pages
	cfg.ForcedHitRate = forcedHitRate
	cfg.Seed = s.Seed
	cfg.FootprintPages = int(w.Pages())
	gcfg := s.GPU
	key := fmt.Sprintf("%s/HMM/%.3f", w.Name(), forcedHitRate)
	return s.memoRun(key, func() stats.Run {
		eng := sim.NewEngine()
		h := baseline.NewHMM(eng, cfg)
		g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: s.Trace(w)}, h)
		g.Launch()
		eng.Run()
		if !g.Done() {
			panic(fmt.Sprintf("exp: %s under HMM did not finish", w.Name()))
		}
		m := h.Snapshot()
		m.App = w.Name()
		m.WallTime = eng.Now()
		return m
	})
}

// Speedup reports base/t for the workload under policy p vs BaM.
func (s *Suite) Speedup(w workload.Workload, p core.PolicyKind) float64 {
	return s.Run(w, p).SpeedupOver(s.Run(w, core.PolicyBaM))
}

// geomean of a slice (arithmetic mean matches the paper's "average
// speedup" phrasing; both are reported by drivers where useful).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
