// Package exp contains one driver per table and figure of the paper's
// evaluation (§3): each driver runs the necessary simulations and
// renders the same rows/series the paper reports. Experiment results are
// deterministic for a given scale and seed.
package exp

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/baseline"
	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/workload"
)

// Policies in the order the paper's figures present them.
var Policies = []core.PolicyKind{
	core.PolicyTierOrder, core.PolicyRandom, core.PolicyReuse,
}

// Suite caches workloads, traces, and simulation results for one scale,
// so figures sharing runs (8, 9, 10, 14) pay for each simulation once.
type Suite struct {
	Scale workload.Scale
	GPU   gpu.Config
	Seed  int64

	apps    []workload.Workload
	traces  map[string][]gpu.Access
	results map[string]stats.Run
}

// NewSuite builds the nine-application suite at the given scale.
func NewSuite(scale workload.Scale) *Suite {
	return &Suite{
		Scale:   scale,
		GPU:     gpu.DefaultConfig(),
		Seed:    1,
		apps:    workload.All(scale),
		traces:  make(map[string][]gpu.Access),
		results: make(map[string]stats.Run),
	}
}

// NewRegularSuite builds only the non-graph applications (Figure 13).
func NewRegularSuite(scale workload.Scale) *Suite {
	s := NewSuite(scale)
	s.apps = workload.Regular(scale)
	return s
}

// Apps reports the suite's workloads.
func (s *Suite) Apps() []workload.Workload { return s.apps }

// Trace returns (and caches) the workload's access trace.
func (s *Suite) Trace(w workload.Workload) []gpu.Access {
	tr, ok := s.traces[w.Name()]
	if !ok {
		tr = w.Trace()
		s.traces[w.Name()] = tr
	}
	return tr
}

// config builds the runtime configuration for one policy at this scale.
func (s *Suite) config(p core.PolicyKind) core.Config {
	cfg := core.DefaultConfig()
	cfg.Policy = p
	cfg.Tier1Pages = s.Scale.Tier1Pages
	cfg.Tier2Pages = s.Scale.Tier2Pages
	cfg.Seed = s.Seed
	return cfg
}

// Run simulates the workload under a GMT policy (or BaM), returning the
// run metrics with WallTime filled in. Results are memoized.
func (s *Suite) Run(w workload.Workload, p core.PolicyKind) stats.Run {
	key := w.Name() + "/" + p.String()
	if r, ok := s.results[key]; ok {
		return r
	}
	eng := sim.NewEngine()
	rt := core.NewRuntime(eng, s.config(p))
	g := gpu.New(eng, s.GPU, &gpu.SliceStream{Trace: s.Trace(w)}, rt)
	g.Launch()
	eng.Run()
	if !g.Done() {
		panic(fmt.Sprintf("exp: %s under %v did not finish", w.Name(), p))
	}
	m := rt.Snapshot()
	m.App = w.Name()
	m.WallTime = eng.Now()
	m.WarpComputeNS = g.ComputeTime()
	m.WarpStallNS = g.StallTime()
	s.results[key] = m
	return m
}

// RunHMM simulates the workload under the CPU-orchestrated baseline.
// forcedHitRate < 0 runs real HMM; otherwise the §3.6 optimistic
// variant.
func (s *Suite) RunHMM(w workload.Workload, forcedHitRate float64) stats.Run {
	key := fmt.Sprintf("%s/HMM/%.3f", w.Name(), forcedHitRate)
	if r, ok := s.results[key]; ok {
		return r
	}
	cfg := baseline.DefaultHMMConfig()
	cfg.Tier1Pages = s.Scale.Tier1Pages
	cfg.PageCachePages = s.Scale.Tier2Pages
	cfg.ForcedHitRate = forcedHitRate
	cfg.Seed = s.Seed
	eng := sim.NewEngine()
	h := baseline.NewHMM(eng, cfg)
	g := gpu.New(eng, s.GPU, &gpu.SliceStream{Trace: s.Trace(w)}, h)
	g.Launch()
	eng.Run()
	if !g.Done() {
		panic(fmt.Sprintf("exp: %s under HMM did not finish", w.Name()))
	}
	m := h.Snapshot()
	m.App = w.Name()
	m.WallTime = eng.Now()
	s.results[key] = m
	return m
}

// Speedup reports base/t for the workload under policy p vs BaM.
func (s *Suite) Speedup(w workload.Workload, p core.PolicyKind) float64 {
	return s.Run(w, p).SpeedupOver(s.Run(w, core.PolicyBaM))
}

// geomean of a slice (arithmetic mean matches the paper's "average
// speedup" phrasing; both are reported by drivers where useful).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
