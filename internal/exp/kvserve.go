package exp

import (
	"fmt"
	"time"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/plot"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
	"github.com/gmtsim/gmt/internal/workload"
)

// KVPolicies is the Tier-2 replacement-policy axis of the KV-serving
// study, in rendering order. Clock is the reference point the speedup
// column normalizes against.
var KVPolicies = []tier.StorePolicy{
	tier.StoreClock, tier.StoreFIFO, tier.StoreLRUK, tier.StoreTwoQ,
}

// KVServeRow is one policy's outcome under the serving trace.
type KVServeRow struct {
	Policy           string
	Tier2HitRate     float64
	ReuseP50         sim.Time // time from Tier-2 placement to first reload
	ReuseP99         sim.Time
	ReuseCount       int64
	SSDReads         int64
	WallTime         sim.Time
	SpeedupOverClock float64
}

// kvConfig is the shared builder for one serving-policy run; the job
// planner (plan.go) and KVServe below must agree on the memo key and
// configuration. The base policy is TierOrder — every Tier-1 victim
// lands in Tier-2, so the replacement policy under study sees the full
// eviction stream rather than a placement predictor's pre-filtered one.
func (s *Suite) kvConfig(p tier.StorePolicy) (key string, cfg core.Config) {
	cfg = s.config(core.PolicyTierOrder)
	cfg.Tier2Policy = p
	cfg.TrackTier2Reuse = true
	return "kv/" + string(p), cfg
}

// KVServe compares Tier-2 replacement policies under the open-loop
// KV-cache serving trace: hit rate, time-to-first-reuse percentiles
// (how long a KV block sits in host memory before the serving engine
// reloads it), SSD reads, and wall time normalized to Clock.
func KVServe(s *Suite) ([]KVServeRow, *stats.Table) {
	w := s.KVApp()
	t := stats.NewTable("KV-cache serving: Tier-2 replacement policy study (open-loop arrivals)",
		"Policy", "T2 hit rate", "reuse p50", "reuse p99", "samples", "SSD reads", "speedup vs clock")
	baseKey, baseCfg := s.kvConfig(tier.StoreClock)
	base := s.RunConfigPhased(baseKey, w, baseCfg)
	var rows []KVServeRow
	for _, p := range KVPolicies {
		key, cfg := s.kvConfig(p)
		m := s.RunConfigPhased(key, w, cfg)
		r := KVServeRow{
			Policy:           string(p),
			Tier2HitRate:     m.Tier2HitRate(),
			ReuseP50:         m.Tier2ReuseP50,
			ReuseP99:         m.Tier2ReuseP99,
			ReuseCount:       m.Tier2ReuseCount,
			SSDReads:         m.SSDReads,
			WallTime:         m.WallTime,
			SpeedupOverClock: m.SpeedupOver(base),
		}
		rows = append(rows, r)
		t.AddRow(string(p),
			fmt.Sprintf("%.1f%%", 100*r.Tier2HitRate),
			time.Duration(r.ReuseP50).String(),
			time.Duration(r.ReuseP99).String(),
			fmt.Sprintf("%d", r.ReuseCount),
			fmt.Sprintf("%d", r.SSDReads),
			stats.X(r.SpeedupOverClock))
	}
	return rows, t
}

// KVServeSVG renders the policy study: hit-rate bars with the Clock
// level as the baseline rule.
func KVServeSVG(rows []KVServeRow) *plot.Figure {
	f := plot.NewFigure("KV-cache serving: Tier-2 hit rate by replacement policy ("+workload.KVServeName+" trace)",
		"Tier-2 replacement policy", "Tier-2 hit rate")
	var hit, sp []float64
	for _, r := range rows {
		f.Labels = append(f.Labels, r.Policy)
		hit = append(hit, r.Tier2HitRate)
		sp = append(sp, r.SpeedupOverClock)
	}
	f.Add("Tier-2 hit rate", hit)
	f.Add("speedup vs clock", sp)
	return f
}
