package exp

import (
	"context"
	"strings"
	"testing"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/workload"
)

// TestSuiteSeedInvalidation is the stale-memoization regression: memo
// keys used to be (app, policy) only, so mutating Suite.Seed between
// runs returned results computed under the old seed.
func TestSuiteSeedInvalidation(t *testing.T) {
	s := NewSuite(testScale())
	w := s.Apps()[1] // Pathfinder: cheap
	first := s.Run(w, core.PolicyRandom)
	if got := s.Simulations(); got != 1 {
		t.Fatalf("simulations after first run = %d, want 1", got)
	}
	s.Seed = 99
	s.Run(w, core.PolicyRandom)
	if got := s.Simulations(); got != 2 {
		t.Fatalf("changing Seed did not re-simulate: %d simulations, want 2", got)
	}
	// Restoring the seed must find the original memoized result again,
	// bit for bit, without another simulation.
	s.Seed = 1
	third := s.Run(w, core.PolicyRandom)
	if got := s.Simulations(); got != 2 {
		t.Fatalf("restored Seed re-simulated: %d simulations, want 2", got)
	}
	if third != first {
		t.Fatal("restored Seed returned a different result than the original run")
	}
}

// TestSuiteGPUInvalidation: same regression for the GPU configuration.
func TestSuiteGPUInvalidation(t *testing.T) {
	s := NewSuite(testScale())
	w := s.Apps()[1]
	first := s.Run(w, core.PolicyBaM)
	s.GPU.Warps /= 2
	second := s.Run(w, core.PolicyBaM)
	if got := s.Simulations(); got != 2 {
		t.Fatalf("changing GPU config did not re-simulate: %d simulations, want 2", got)
	}
	if first.WallTime == second.WallTime {
		t.Fatal("halving the warp count left the wall time unchanged")
	}
}

// TestSuiteHMMSeedInvalidation covers the RunHMM memo path.
func TestSuiteHMMSeedInvalidation(t *testing.T) {
	s := NewSuite(testScale())
	w := s.Apps()[1]
	s.RunHMM(w, -1)
	s.Seed = 7
	s.RunHMM(w, -1)
	if got := s.Simulations(); got != 2 {
		t.Fatalf("changing Seed did not re-simulate HMM: %d simulations, want 2", got)
	}
}

func TestSuiteCacheHitCounter(t *testing.T) {
	s := NewSuite(testScale())
	w := s.Apps()[1]
	s.Run(w, core.PolicyBaM)
	s.Run(w, core.PolicyBaM)
	s.Run(w, core.PolicyBaM)
	if sims, hits := s.Counters(); sims != 1 || hits != 2 {
		t.Fatalf("sims=%d hits=%d, want 1 and 2", sims, hits)
	}
}

// TestPlanDedup: overlapping experiments must not schedule the same
// simulation twice.
func TestPlanDedup(t *testing.T) {
	s := NewSuite(testScale())
	phases := Plan(s, []string{"fig8", "fig10", "util", "fig9"})
	seen := map[string]bool{}
	traces, sims := 0, 0
	for _, ph := range phases {
		for _, j := range ph.Jobs {
			if seen[j.Key] {
				t.Fatalf("duplicate job %s", j.Key)
			}
			seen[j.Key] = true
			switch ph.Name {
			case "traces":
				traces++
			case "simulate":
				sims++
			}
		}
	}
	// 9 traces; 9 apps x (BaM + 3 policies), with fig9's Reuse runs and
	// fig10/util's sweeps all deduplicated into the same 36 jobs.
	if traces != 9 || sims != 36 {
		t.Fatalf("planned traces=%d sims=%d, want 9 and 36", traces, sims)
	}
}

// TestPlanGraphTraceFirst: the first trace job must be a graph app, so
// the expensive shared Kronecker/CSR build starts before anything else.
func TestPlanGraphTraceFirst(t *testing.T) {
	s := NewSuite(testScale())
	phases := Plan(s, []string{"table2"})
	if len(phases[0].Jobs) == 0 {
		t.Fatal("no trace jobs planned")
	}
	first := phases[0].Jobs[0].Key
	if !strings.Contains(first, "|trace|") || !isGraphApp(first[strings.LastIndex(first, "|")+1:]) {
		t.Fatalf("first trace job %q is not a graph app", first)
	}
}

// TestPrewarmCoversRendering is the planner-drift gate: after a prewarm
// of every suite-backed experiment, rendering those experiments must be
// served entirely from the memo — zero additional simulations. If a
// driver grows a new run that the planner doesn't know about, this
// fails.
func TestPrewarmCoversRendering(t *testing.T) {
	s := NewSuite(workload.Scale{Tier1Pages: 128, Tier2Pages: 512, Oversubscription: 2})
	// warmup is excluded: its pipelined-regression runs need runtime
	// history the memo doesn't carry, so they always run at render time.
	exps := []string{"table1", "table2", "fig4", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "oracle", "ext", "ssd", "predictors", "util"}
	rep, err := Prewarm(context.Background(), s, exps, 3, nil)
	if err != nil {
		t.Fatalf("prewarm failed: %v", err)
	}
	if rep.JobsPlanned == 0 || rep.Sims == 0 {
		t.Fatalf("prewarm did nothing: %+v", rep)
	}
	sims0, _ := s.Counters()
	Table1(s)
	Table2(s)
	Figure4(s)
	Figure7(s)
	Figure8(s)
	Figure9(s)
	Figure10(s)
	Figure11(s)
	Figure12(s)
	Figure13(s)
	Figure14(s)
	OracleGap(s)
	Extensions(s)
	SSDSensitivity(s)
	SSDCountSweep(s)
	PredictorAblation(s)
	Utilization(s)
	sims1, _ := s.Counters()
	if sims1 != sims0 {
		t.Fatalf("rendering ran %d simulations the planner missed", sims1-sims0)
	}
}

// TestRunJobsPanicPropagates: a failing simulation must surface the
// same way it would sequentially.
func TestRunJobsPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the job's panic", r)
		}
	}()
	zero := func() int64 { return 0 }
	runJobs(context.Background(), []Job{
		{Key: "ok", Run: func() {}},
		{Key: "bad", Run: func() { panic("boom") }},
	}, 2, zero, nil)
	t.Fatal("runJobs returned despite a panicking job")
}
