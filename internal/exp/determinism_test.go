package exp

import (
	"context"
	"fmt"
	"testing"

	"github.com/gmtsim/gmt/internal/workload"
)

// TestFigure8ByteIdentical is the determinism regression gate: the
// quarter-scale Figure 8 experiment — nine applications under BaM and
// the three GMT policies, end to end through the GPU model, tiers, PCIe,
// and NVMe — is run twice from scratch, and the full rendered stats
// output must be byte-identical. CI also runs this under
// -tags gmtinvariants so the conservation checks ride along.
func TestFigure8ByteIdentical(t *testing.T) {
	render := func() string {
		s := NewSuite(workload.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2})
		rows, tbl := Figure8(s)
		// Render both the human-facing table and the raw rows: fmt's %#v
		// prints map keys in sorted order, so any divergence — down to a
		// single counter — shows up as a byte difference.
		return tbl.Render() + fmt.Sprintf("%#v", rows)
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("two identically-seeded Figure 8 runs diverged:\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
}

// TestKVServeByteIdentical holds the same determinism bar for the
// KV-serving policy study: the open-loop arrival process, the four
// Tier-2 replacement policies, and the reuse-percentile collection must
// reproduce byte-for-byte from scratch.
func TestKVServeByteIdentical(t *testing.T) {
	render := func() string {
		s := NewSuite(workload.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2})
		rows, tbl := KVServe(s)
		return tbl.Render() + fmt.Sprintf("%#v", rows)
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("two identically-seeded KV-serving runs diverged:\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
}

// TestSweepForkNoForkIdentical is the forking contract end to end: the
// sensitivity sweeps (Figures 11–13) and the KV-serving grid must
// render byte-identically whether sweep points fork shared warm-up
// parents (and dedup BaM runs, and share parent traces) or simulate
// everything independently with NoFork. This is what makes gmtbench
// -nofork a pure performance baseline.
func TestSweepForkNoForkIdentical(t *testing.T) {
	render := func(nofork bool) string {
		s := NewSuite(workload.Scale{Tier1Pages: 128, Tier2Pages: 512, Oversubscription: 2})
		s.NoFork = nofork
		rows11, tbl11 := Figure11(s)
		rows12, tbl12 := Figure12(s)
		rows13, tbl13 := Figure13(s)
		rowsKV, tblKV := KVServe(s)
		return tbl11.Render() + tbl12.Render() + tbl13.Render() + tblKV.Render() +
			fmt.Sprintf("%#v%#v%#v%#v", rows11, rows12, rows13, rowsKV)
	}
	forked, independent := render(false), render(true)
	if forked != independent {
		t.Fatalf("forked sweep diverged from the NoFork sweep:\n--- forked ---\n%s\n--- nofork ---\n%s",
			forked, independent)
	}
}

// TestParallelPrewarmByteIdentical is the parallel-path determinism
// gate: prewarming the suite on a multi-worker pool and then rendering
// must produce byte-identical output to a fully sequential run — the
// pool only fills the memo, so worker count and scheduling order must
// be invisible. Runs with -race in CI, which also exercises the suite
// lock under real contention.
func TestParallelPrewarmByteIdentical(t *testing.T) {
	// fig12 rides along to cover the forked path: its prefix parents are
	// built and forked from concurrent workers.
	experiments := []string{"fig8", "fig9", "fig12", "fig14", "kvserve"}
	render := func(workers int) string {
		s := NewSuite(workload.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2})
		if workers > 1 {
			rep, err := Prewarm(context.Background(), s, experiments, workers, nil)
			if err != nil {
				t.Fatalf("prewarm failed: %v", err)
			}
			if rep.JobsPlanned == 0 {
				t.Fatal("parallel prewarm planned no jobs")
			}
		}
		rows8, tbl8 := Figure8(s)
		rows9, tbl9 := Figure9(s)
		rows12, tbl12 := Figure12(s)
		rows14, tbl14 := Figure14(s)
		rowsKV, tblKV := KVServe(s)
		return tbl8.Render() + tbl9.Render() + tbl12.Render() + tbl14.Render() + tblKV.Render() +
			fmt.Sprintf("%#v%#v%#v%#v%#v", rows8, rows9, rows12, rows14, rowsKV)
	}
	sequential := render(1)
	for _, workers := range []int{2, 4} {
		if got := render(workers); got != sequential {
			t.Fatalf("%d-worker prewarm diverged from the sequential run", workers)
		}
	}
}
