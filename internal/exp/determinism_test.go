package exp

import (
	"fmt"
	"testing"

	"github.com/gmtsim/gmt/internal/workload"
)

// TestFigure8ByteIdentical is the determinism regression gate: the
// quarter-scale Figure 8 experiment — nine applications under BaM and
// the three GMT policies, end to end through the GPU model, tiers, PCIe,
// and NVMe — is run twice from scratch, and the full rendered stats
// output must be byte-identical. CI also runs this under
// -tags gmtinvariants so the conservation checks ride along.
func TestFigure8ByteIdentical(t *testing.T) {
	render := func() string {
		s := NewSuite(workload.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2})
		rows, tbl := Figure8(s)
		// Render both the human-facing table and the raw rows: fmt's %#v
		// prints map keys in sorted order, so any divergence — down to a
		// single counter — shows up as a byte difference.
		return tbl.Render() + fmt.Sprintf("%#v", rows)
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("two identically-seeded Figure 8 runs diverged:\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
}
