package exp

import (
	"testing"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/workload"
)

func TestOracleGapShape(t *testing.T) {
	rows, table := OracleGap(shared)
	if len(rows) != 9 || table.Rows() != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	var attained []float64
	for _, r := range rows {
		// Belady's guarantee is about demand misses: the oracle must
		// not read the SSD more than the practical predictor. (Wall
		// time can occasionally favor GMT-Reuse — its dirty-page
		// retention avoids writebacks the read-optimal oracle incurs;
		// see EXPERIMENTS.md.)
		if r.OracleReads > r.ReuseReads {
			t.Errorf("%s: oracle reads %d > Reuse reads %d", r.App, r.OracleReads, r.ReuseReads)
		}
		if r.OracleSpeedup < r.ReuseSpeedup-0.15 {
			t.Errorf("%s: oracle wall time far below Reuse (%.2f vs %.2f)",
				r.App, r.OracleSpeedup, r.ReuseSpeedup)
		}
		attained = append(attained, r.Attained)
	}
	// GMT-Reuse should capture a substantial share of the offline
	// headroom on average — the paper's thesis that a practical RRD
	// approximation suffices.
	if m := mean(attained); m < 0.4 {
		t.Fatalf("mean attained gain %.2f < 0.4", m)
	}
}

func TestPredictorAblation(t *testing.T) {
	rows, _ := PredictorAblation(shared)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	var markov, last, static []float64
	for _, r := range rows {
		markov = append(markov, r.Speedup["markov"])
		last = append(last, r.Speedup["last-class"])
		static = append(static, r.Speedup["static"])
		// Every learning predictor must score predictions on the
		// high-reuse apps.
		if r.App == "Hotspot" && (r.Accuracy["markov"] < 0.5 || r.Accuracy["last-class"] < 0.5) {
			t.Errorf("Hotspot accuracies too low: %+v", r.Accuracy)
		}
	}
	if mean(markov) < mean(static) {
		t.Fatalf("markov mean %.2f below static %.2f", mean(markov), mean(static))
	}
	// A 1-level history is competitive in aggregate (mispredicting
	// toward Medium is often benign); the paper's claim is that 2
	// levels *suffice*, which the alternating-pattern accuracy check
	// above discriminates. Guard against the Markov predictor falling
	// meaningfully behind.
	if mean(markov) < mean(last)-0.12 {
		t.Fatalf("markov mean %.2f far below last-class %.2f", mean(markov), mean(last))
	}
}

// TestHeadlineSurvivesKernelBarriers re-runs the core comparison with
// kernel-wide barriers between iterations — the stricter overlap model
// where miss latency cannot hide across kernel launches. The 3-tier
// advantage must survive.
func TestHeadlineSurvivesKernelBarriers(t *testing.T) {
	sc := testScale()
	srad := workload.NewSrad(sc)
	srad.Barriers = true
	hotspot := workload.NewHotspot(sc)
	hotspot.Barriers = true
	for _, w := range []workload.Workload{srad, hotspot} {
		trace := w.Trace()
		hasBarrier := false
		for _, a := range trace {
			if a.IsBarrier() {
				hasBarrier = true
				break
			}
		}
		if !hasBarrier {
			t.Fatalf("%s: barrier flag emitted no barriers", w.Name())
		}
		wall := func(p core.PolicyKind) int64 {
			cfg := core.DefaultConfig()
			cfg.Policy = p
			cfg.Tier1Pages = sc.Tier1Pages
			cfg.Tier2Pages = sc.Tier2Pages
			eng := sim.NewEngine()
			rt := core.NewRuntime(eng, cfg)
			g := gpuNew(shared, eng, trace, rt)
			g.Launch()
			eng.Run()
			if !g.Done() {
				t.Fatalf("%s: barriered kernel deadlocked", w.Name())
			}
			if g.Barriers() == 0 {
				t.Fatalf("%s: no barriers completed", w.Name())
			}
			return eng.Now()
		}
		bam, reuse := wall(core.PolicyBaM), wall(core.PolicyReuse)
		if float64(bam)/float64(reuse) < 1.25 {
			t.Errorf("%s with barriers: GMT-Reuse speedup %.2f < 1.25",
				w.Name(), float64(bam)/float64(reuse))
		}
	}
}

func TestRegressionWarmup(t *testing.T) {
	rows, table := RegressionWarmup(shared)
	if len(rows) != 3 || table.Rows() != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var earlyPipe, earlyEnd []float64
	for _, r := range rows {
		earlyPipe = append(earlyPipe, r.EarlyHitRatePipelined)
		earlyEnd = append(earlyEnd, r.EarlyHitRateUnpipelined)
		// Full-run speedup must not collapse under either mode.
		if r.SpeedupPipelined < 1.0 {
			t.Errorf("%s: pipelined speedup %.2f < 1", r.App, r.SpeedupPipelined)
		}
	}
	// §2.1.3's claim: pipelined batch publication places better early.
	if mean(earlyPipe) < mean(earlyEnd) {
		t.Fatalf("pipelined early hit rate %.3f below end-only %.3f",
			mean(earlyPipe), mean(earlyEnd))
	}
}

func TestExtensionsShape(t *testing.T) {
	rows, _ := Extensions(shared)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	var async []float64
	for _, r := range rows {
		async = append(async, r.AsyncSpeedup)
		// Neither extension should catastrophically regress any app.
		if r.AsyncSpeedup < 0.9 {
			t.Errorf("%s: async eviction regressed to %.2f", r.App, r.AsyncSpeedup)
		}
		if r.PrefetchSpeedup < 0.8 {
			t.Errorf("%s: prefetch regressed to %.2f", r.App, r.PrefetchSpeedup)
		}
	}
	// Async eviction (§5) must not hurt GMT-Reuse on average (its
	// placements are already selective, so the gain is modest here;
	// the large win is TierOrder's, covered in internal/core tests).
	if m := mean(async); m < 0.97 {
		t.Fatalf("async eviction mean speedup %.2f < 0.97", m)
	}
}
