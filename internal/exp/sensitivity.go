package exp

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
)

// SSDGen is one point in the storage-technology sweep.
type SSDGen struct {
	Name    string
	BWMult  float64 // media bandwidth multiplier over the Gen3 x4 base
	LatMult float64 // media latency multiplier
	Lanes   int
}

// SSDGens spans the paper's drive (Gen3 x4) through successively faster
// storage. As the SSD approaches host-memory performance, the host
// tier's latency/bandwidth advantage — and with it GMT's headroom over
// BaM — should shrink. This is the forward-looking question the
// paper's "Big Data Era" framing raises.
var SSDGens = []SSDGen{
	{Name: "Gen3x4 (paper)", BWMult: 1, LatMult: 1, Lanes: 4},
	{Name: "Gen4x4", BWMult: 2, LatMult: 0.7, Lanes: 8},
	{Name: "Gen5x4", BWMult: 4, LatMult: 0.5, Lanes: 16},
	{Name: "near-memory", BWMult: 8, LatMult: 0.25, Lanes: 16},
}

// SensitivityApps are the representatives used by the sweep: a
// Tier-2-biased stencil, a pure Tier-3 cyclic scan, and a graph
// workload.
var SensitivityApps = []string{"Srad", "Hotspot", "BFS"}

// SSDRow is GMT-Reuse's speedup over BaM for one app at one generation.
type SSDRow struct {
	App     string
	Gen     string
	Speedup float64
}

// ssdGenConfig is the shared builder for one storage-generation run;
// the job planner (plan.go) and the sweep below must agree on the memo
// key and configuration.
func (s *Suite) ssdGenConfig(g SSDGen, p core.PolicyKind) (key string, cfg core.Config) {
	cfg = s.config(p)
	cfg.SSD.MediaReadBps = int64(float64(cfg.SSD.MediaReadBps) * g.BWMult)
	cfg.SSD.MediaWriteBps = int64(float64(cfg.SSD.MediaWriteBps) * g.BWMult)
	cfg.SSD.ReadLatency = sim.Time(float64(cfg.SSD.ReadLatency) * g.LatMult)
	cfg.SSD.WriteLatency = sim.Time(float64(cfg.SSD.WriteLatency) * g.LatMult)
	cfg.SSD.Lanes = g.Lanes
	key = "reuse/" + g.Name
	if p == core.PolicyBaM {
		key = "bam/" + g.Name
	}
	return key, cfg
}

// SSDSensitivity sweeps storage generations.
func SSDSensitivity(s *Suite) ([]SSDRow, *stats.Table) {
	t := stats.NewTable("SSD sensitivity: GMT-Reuse speedup over BaM as storage approaches memory",
		append([]string{"Application"}, genNames()...)...)
	var rows []SSDRow
	for _, app := range SensitivityApps {
		w := appByName(s, app)
		cells := []string{app}
		for _, g := range SSDGens {
			bamKey, bamCfg := s.ssdGenConfig(g, core.PolicyBaM)
			reuseKey, reuseCfg := s.ssdGenConfig(g, core.PolicyReuse)
			bam := s.RunConfig(bamKey, w, bamCfg)
			reuse := s.RunConfig(reuseKey, w, reuseCfg)
			sp := reuse.SpeedupOver(bam)
			rows = append(rows, SSDRow{App: app, Gen: g.Name, Speedup: sp})
			cells = append(cells, stats.X(sp))
		}
		t.AddRow(cells...)
	}
	return rows, t
}

func genNames() []string {
	out := make([]string, len(SSDGens))
	for i, g := range SSDGens {
		out[i] = g.Name
	}
	return out
}

// SSDCountRow is GMT-Reuse's speedup over BaM when both stripe across
// the same number of drives.
type SSDCountRow struct {
	App     string
	Drives  int
	Speedup float64
}

// SSDCounts spans a single drive (the paper's testbed) through a
// BaM-style array.
var SSDCounts = []int{1, 2, 4}

// ssdCountConfig is the shared builder for one drive-array run (same
// key/config contract as ssdGenConfig).
func (s *Suite) ssdCountConfig(n int, p core.PolicyKind) (key string, cfg core.Config) {
	cfg = s.config(p)
	cfg.SSDCount = n
	key = fmt.Sprintf("reuse/x%d", n)
	if p == core.PolicyBaM {
		key = fmt.Sprintf("bam/x%d", n)
	}
	return key, cfg
}

// SSDCountSweep measures how striped storage bandwidth (BaM's scaling
// configuration) erodes the host tier's advantage.
func SSDCountSweep(s *Suite) ([]SSDCountRow, *stats.Table) {
	t := stats.NewTable("SSD array sweep: GMT-Reuse speedup over BaM with both striped across N drives",
		"Application", "1 drive", "2 drives", "4 drives")
	var rows []SSDCountRow
	for _, app := range SensitivityApps {
		w := appByName(s, app)
		cells := []string{app}
		for _, n := range SSDCounts {
			bamKey, bamCfg := s.ssdCountConfig(n, core.PolicyBaM)
			reuseKey, reuseCfg := s.ssdCountConfig(n, core.PolicyReuse)
			bam := s.RunConfig(bamKey, w, bamCfg)
			reuse := s.RunConfig(reuseKey, w, reuseCfg)
			sp := reuse.SpeedupOver(bam)
			rows = append(rows, SSDCountRow{App: app, Drives: n, Speedup: sp})
			cells = append(cells, stats.X(sp))
		}
		t.AddRow(cells...)
	}
	return rows, t
}

// UtilizationRow reports GPU warp utilization (compute vs memory-stall
// time) per policy — the resource the paper's §3.4 worries about when
// GPU threads do the orchestration work.
type UtilizationRow struct {
	App         string
	Utilization map[string]float64 // policy -> busy fraction
}

// Utilization compares how much of the GPU's warp time each system
// spends computing rather than stalled on the memory hierarchy.
func Utilization(s *Suite) ([]UtilizationRow, *stats.Table) {
	policies := append([]core.PolicyKind{core.PolicyBaM}, Policies...)
	headers := []string{"Application"}
	for _, p := range policies {
		headers = append(headers, p.String())
	}
	t := stats.NewTable("GPU warp utilization (compute / (compute+stall))", headers...)
	var rows []UtilizationRow
	for _, w := range s.Apps() {
		r := UtilizationRow{App: w.Name(), Utilization: map[string]float64{}}
		cells := []string{r.App}
		for _, p := range policies {
			u := s.Run(w, p).GPUUtilization()
			r.Utilization[p.String()] = u
			// Out-of-core kernels are deeply memory-bound: busy
			// fractions live well below 1%, so print basis points.
			cells = append(cells, fmt.Sprintf("%.3f%%", 100*u))
		}
		rows = append(rows, r)
		t.AddRow(cells...)
	}
	return rows, t
}

// SSDScalingChart renders the sweep as bar charts, one per application.
func SSDScalingChart(rows []SSDRow) string {
	byApp := map[string]*stats.BarChart{}
	var order []string
	for _, r := range rows {
		c, ok := byApp[r.App]
		if !ok {
			c = stats.NewBarChart(fmt.Sprintf("%s: GMT-Reuse speedup over BaM by storage generation", r.App), "x")
			byApp[r.App] = c
			order = append(order, r.App)
		}
		c.Add(r.Gen, r.Speedup)
	}
	out := ""
	for _, app := range order {
		out += byApp[app].Render(40) + "\n"
	}
	return out
}
