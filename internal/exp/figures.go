package exp

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/workload"
)

// Table1Row is one row of the modeled system specification.
type Table1Row struct {
	Component string
	Paper     string
	Model     string
}

// Table1 renders the paper's system specification against the
// simulation's calibrated equivalents.
func Table1(s *Suite) ([]Table1Row, *stats.Table) {
	cfg := s.config(core.PolicyReuse)
	rows := []Table1Row{
		{"System", "TYAN B7119F83V8E4HR-2T-N", "discrete-event simulation (internal/sim)"},
		{"CPU", "Intel Xeon Gold 6226 64-CPU", "HMM fault-handler pool (internal/baseline)"},
		{"GPU", "NVIDIA A100-40GB PCIe", fmt.Sprintf("%d warps, %d Tier-1 pages (%.1f GB-equivalent at 1/256 scale)",
			s.GPU.Warps, cfg.Tier1Pages, float64(cfg.Tier1Pages)*64*1024*256/1e9)},
		{"DRAM", "256 GB DDR4", fmt.Sprintf("%d Tier-2 pages (%.1f GB-equivalent)",
			cfg.Tier2Pages, float64(cfg.Tier2Pages)*64*1024*256/1e9)},
		{"SSD", "Samsung 970 EVO Plus (Gen3 x4)", fmt.Sprintf("%d queue pairs x depth %d, %d channels, %.1f GB/s media, %dµs read latency",
			cfg.SSD.Queues, cfg.SSD.QueueDepth, cfg.SSD.Channels,
			float64(cfg.SSD.MediaReadBps)/1e9, cfg.SSD.ReadLatency/1000)},
		{"Interconnect", "PCIe Gen3 x16", fmt.Sprintf("%d lanes, %.1f GB/s effective per direction",
			cfg.HostLanes, float64(cfg.HostLanes)*0.8)},
		{"Kernel/driver", "Linux 5.15.0 / NVIDIA 515.43.04", "n/a (simulated orchestration)"},
	}
	t := stats.NewTable("Table 1: System specification (paper platform vs simulation model)",
		"Component", "Paper", "Model")
	for _, r := range rows {
		t.AddRow(r.Component, r.Paper, r.Model)
	}
	return rows, t
}

// Table2Row is one application's characteristics (paper Table 2).
type Table2Row struct {
	App          string
	ReusePct     float64
	TotalIOBytes int64
	Accesses     int64
}

// Table2 reproduces the application characteristics table.
func Table2(s *Suite) ([]Table2Row, *stats.Table) {
	t := stats.NewTable("Table 2: Applications and their characteristics",
		"Application", "Reuse % of a Page", "Total I/O (sim)", "Accesses")
	var rows []Table2Row
	for _, w := range s.Apps() {
		a := workload.Analyze(w.Name(), s.Trace(w), s.Scale, 64*1024, 0)
		r := Table2Row{
			App:          w.Name(),
			ReusePct:     a.ReusePct(),
			TotalIOBytes: a.TotalIOBytes,
			Accesses:     a.Accesses,
		}
		rows = append(rows, r)
		t.AddRow(r.App, stats.Pct(r.ReusePct),
			fmt.Sprintf("%.2f GB", float64(r.TotalIOBytes)/1e9),
			fmt.Sprintf("%d", r.Accesses))
	}
	return rows, t
}

// Figure7Row is one application's RRD distribution (paper Figure 7).
type Figure7Row struct {
	App                                string
	ReusePct                           float64
	PairShort, PairMedium, PairLong    float64
	EvictShort, EvictMedium, EvictLong float64
}

// Figure7 reproduces the per-application Remaining-Reuse-Distance
// distributions with the Tier-1 and Tier-1+Tier-2 demarcations.
func Figure7(s *Suite) ([]Figure7Row, *stats.Table) {
	t := stats.NewTable("Figure 7: Remaining Reuse Distance distribution "+
		"(fractions below Tier-1 / below Tier-1+Tier-2 / beyond)",
		"Application", "Reuse %", "Pairs T1/T2/T3", "Evictions T1/T2/T3")
	var rows []Figure7Row
	for _, w := range s.Apps() {
		a := workload.Analyze(w.Name(), s.Trace(w), s.Scale, 64*1024, 0)
		r := Figure7Row{App: w.Name(), ReusePct: a.ReusePct()}
		r.PairShort, r.PairMedium, r.PairLong = a.PairFractions()
		r.EvictShort, r.EvictMedium, r.EvictLong = a.EvictFractions()
		rows = append(rows, r)
		t.AddRow(r.App, stats.Pct(r.ReusePct),
			fmt.Sprintf("%.2f/%.2f/%.2f", r.PairShort, r.PairMedium, r.PairLong),
			fmt.Sprintf("%.2f/%.2f/%.2f", r.EvictShort, r.EvictMedium, r.EvictLong))
	}
	return rows, t
}

// Figure8Row is one application's speedups and relative I/O (Figure 8).
type Figure8Row struct {
	App                 string
	Speedup             map[string]float64 // policy -> speedup over BaM
	IORelative          map[string]float64 // policy -> SSD I/O vs BaM
	BaMWallMicroseconds int64
}

// Figure8 reproduces speedup over BaM (8a) and relative SSD I/O (8b) for
// the three GMT policies.
func Figure8(s *Suite) ([]Figure8Row, *stats.Table) {
	t := stats.NewTable("Figure 8: Speedup over BaM (a) and SSD I/O relative to BaM (b); Tier-2=4x Tier-1, OSF=2",
		"Application", "TierOrder", "Random", "Reuse", "I/O TO", "I/O Rnd", "I/O Reuse")
	var rows []Figure8Row
	for _, w := range s.Apps() {
		bam := s.Run(w, core.PolicyBaM)
		r := Figure8Row{
			App:                 w.Name(),
			Speedup:             map[string]float64{},
			IORelative:          map[string]float64{},
			BaMWallMicroseconds: bam.WallTime / 1000,
		}
		for _, p := range Policies {
			run := s.Run(w, p)
			r.Speedup[p.String()] = run.SpeedupOver(bam)
			r.IORelative[p.String()] = run.IORelativeTo(bam)
		}
		rows = append(rows, r)
		t.AddRow(r.App,
			stats.X(r.Speedup["GMT-TierOrder"]), stats.X(r.Speedup["GMT-Random"]),
			stats.X(r.Speedup["GMT-Reuse"]),
			stats.Pct(r.IORelative["GMT-TierOrder"]), stats.Pct(r.IORelative["GMT-Random"]),
			stats.Pct(r.IORelative["GMT-Reuse"]))
	}
	avg := func(p string) float64 {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Speedup[p])
		}
		return mean(xs)
	}
	t.AddRow("AVERAGE", stats.X(avg("GMT-TierOrder")), stats.X(avg("GMT-Random")),
		stats.X(avg("GMT-Reuse")), "", "", "")
	return rows, t
}

// Figure9Row is GMT-Reuse's prediction accuracy for one application.
type Figure9Row struct {
	App         string
	Accuracy    float64
	Predictions int64
}

// Figure9 reproduces the predictor accuracy chart.
func Figure9(s *Suite) ([]Figure9Row, *stats.Table) {
	t := stats.NewTable("Figure 9: GMT-Reuse prediction accuracy",
		"Application", "Accuracy", "Predictions scored")
	var rows []Figure9Row
	for _, w := range s.Apps() {
		run := s.Run(w, core.PolicyReuse)
		r := Figure9Row{App: w.Name(), Accuracy: run.PredictionAccuracy(), Predictions: run.Predictions}
		rows = append(rows, r)
		t.AddRow(r.App, stats.Pct(r.Accuracy), fmt.Sprintf("%d", r.Predictions))
	}
	return rows, t
}

// Figure10Row captures Tier-2 overheads for one application.
type Figure10Row struct {
	App string
	// WastefulLookups: wasted Tier-2 probes as a fraction of Tier-1
	// misses, per policy (Figure 10a).
	WastefulLookups map[string]float64
	// PlacedPct / FetchedPct: Tier-1 evictions placed into Tier-2 and
	// fetches served from Tier-2, as a fraction of BaM's total SSD I/O
	// (Figure 10b: the bars' top and bottom parts).
	PlacedPct  map[string]float64
	FetchedPct map[string]float64
}

// Figure10 reproduces the Tier-2 overhead study.
func Figure10(s *Suite) ([]Figure10Row, *stats.Table) {
	t := stats.NewTable("Figure 10: Tier-2 overheads (wasteful lookups; placements vs fetches as % of BaM I/O)",
		"Application", "Waste TO", "Waste Rnd", "Waste Reuse",
		"Placed/Fetched TO", "Placed/Fetched Rnd", "Placed/Fetched Reuse")
	var rows []Figure10Row
	for _, w := range s.Apps() {
		bam := s.Run(w, core.PolicyBaM)
		bamIO := float64(bam.SSDReads + bam.SSDWrites)
		r := Figure10Row{
			App:             w.Name(),
			WastefulLookups: map[string]float64{},
			PlacedPct:       map[string]float64{},
			FetchedPct:      map[string]float64{},
		}
		cells := []string{r.App}
		for _, p := range Policies {
			run := s.Run(w, p)
			r.WastefulLookups[p.String()] = run.WastefulLookupRate()
			if bamIO > 0 {
				r.PlacedPct[p.String()] = float64(run.EvictionsToTier2) / bamIO
				r.FetchedPct[p.String()] = float64(run.Tier2Hits) / bamIO
			}
			cells = append(cells, stats.Pct(r.WastefulLookups[p.String()]))
		}
		for _, p := range Policies {
			cells = append(cells, fmt.Sprintf("%s/%s",
				stats.Pct(r.PlacedPct[p.String()]), stats.Pct(r.FetchedPct[p.String()])))
		}
		rows = append(rows, r)
		t.AddRow(cells...)
	}
	return rows, t
}

// Figure14Row compares HMM and GMT-Reuse against BaM.
type Figure14Row struct {
	App           string
	HMMSpeedup    float64
	ReuseSpeedup  float64
	OptimisticHMM float64 // §3.6: HMM granted GMT-Reuse's hit rate
	ReuseVsOptHMM float64
}

// Figure14 reproduces the HMM comparison, including the §3.6
// optimistic-HMM study.
func Figure14(s *Suite) ([]Figure14Row, *stats.Table) {
	t := stats.NewTable("Figure 14: Speedup of HMM and GMT-Reuse over BaM (+ §3.6 optimistic HMM)",
		"Application", "HMM", "GMT-Reuse", "HMM(opt)", "Reuse vs HMM(opt)")
	var rows []Figure14Row
	for _, w := range s.Apps() {
		bam := s.Run(w, core.PolicyBaM)
		reuseRun := s.Run(w, core.PolicyReuse)
		hmm := s.RunHMM(w, -1)
		opt := s.RunHMM(w, reuseRun.Tier2HitRate())
		r := Figure14Row{
			App:           w.Name(),
			HMMSpeedup:    hmm.SpeedupOver(bam),
			ReuseSpeedup:  reuseRun.SpeedupOver(bam),
			OptimisticHMM: opt.SpeedupOver(bam),
			ReuseVsOptHMM: reuseRun.SpeedupOver(opt),
		}
		rows = append(rows, r)
		t.AddRow(r.App, stats.X(r.HMMSpeedup), stats.X(r.ReuseSpeedup),
			stats.X(r.OptimisticHMM), stats.X(r.ReuseVsOptHMM))
	}
	return rows, t
}

// SensitivityRow is one application's GMT speedups at an alternate
// configuration (Figures 11, 12, 13).
type SensitivityRow struct {
	App     string
	Speedup map[string]float64
}

// figure11Suites derives Figure 11's two alternate-scale sub-suites
// from the parent: doubled oversubscription for the non-graph
// applications (the paper doubles those datasets), halved tiers for the
// graph applications (same datasets, half the machine — so the graph
// sub-suite adopts the parent's workloads instead of regenerating
// them). Both phase their runs at the warm-up prefix.
func (s *Suite) figure11Suites() (ng, g *Suite) {
	base := s.Scale
	ng = s.derived("fig11/nongraph", func() *Suite {
		sc := base
		sc.Oversubscription = 2 * base.Oversubscription
		sub := NewRegularSuite(sc)
		sub.phased = true
		return sub
	})
	g = s.derived("fig11/graph", func() *Suite {
		sub := NewSuite(workload.Scale{
			Tier1Pages:       base.Tier1Pages / 2,
			Tier2Pages:       base.Tier2Pages / 2,
			Oversubscription: base.Oversubscription,
		})
		sub.phased = true
		sub.adoptData(s)
		return sub
	})
	return ng, g
}

// Figure11 doubles the oversubscription factor to 4 (paper: doubled
// datasets for non-graph applications, halved tiers for graph
// applications) and reports speedups over BaM.
func Figure11(s *Suite) ([]SensitivityRow, *stats.Table) {
	ngSuite, gSuite := s.figure11Suites()

	t := stats.NewTable("Figure 11: Speedup over BaM at oversubscription factor 4",
		"Application", "TierOrder", "Random", "Reuse")
	var rows []SensitivityRow
	addRow := func(s *Suite, w workload.Workload) {
		r := SensitivityRow{App: w.Name(), Speedup: map[string]float64{}}
		for _, p := range Policies {
			r.Speedup[p.String()] = s.Speedup(w, p)
		}
		rows = append(rows, r)
		t.AddRow(r.App, stats.X(r.Speedup["GMT-TierOrder"]),
			stats.X(r.Speedup["GMT-Random"]), stats.X(r.Speedup["GMT-Reuse"]))
	}
	// Keep Table 2 ordering: graph apps interleaved.
	for _, name := range workload.Names {
		if isGraphApp(name) {
			addRow(gSuite, appByName(gSuite, name))
		} else {
			addRow(ngSuite, appByName(ngSuite, name))
		}
	}
	return rows, t
}

func isGraphApp(name string) bool {
	return name == "BFS" || name == "PageRank" || name == "SSSP"
}

func appByName(s *Suite, name string) workload.Workload {
	for _, w := range s.Apps() {
		if w.Name() == name {
			return w
		}
	}
	if name == workload.KVServeName {
		return s.KVApp()
	}
	panic("exp: unknown app " + name)
}

// figure12Ratios are the Tier-2:Tier-1 ratios Figure 12 sweeps.
var figure12Ratios = []int{2, 4, 8}

// figure12Suites derives one sub-suite per Tier-2:Tier-1 ratio. The
// ratio sweep varies only host-memory capacity, so every sub-suite
// adopts the parent's datasets: traces are shared across ratios, and
// the phased runs fork one warm-up parent per app and policy class
// (Tier-2 sizing is prefix-inert; see core.PrefixConfig).
func (s *Suite) figure12Suites() map[int]*Suite {
	base := s.Scale
	suites := make(map[int]*Suite)
	for _, ratio := range figure12Ratios {
		ratio := ratio
		suites[ratio] = s.derived(fmt.Sprintf("fig12/ratio%d", ratio), func() *Suite {
			sc := base
			sc.Tier2Pages = ratio * base.Tier1Pages
			sub := NewSuite(sc)
			sub.phased = true
			sub.adoptData(s)
			return sub
		})
	}
	return suites
}

// Figure12 varies the Tier-2:Tier-1 ratio (2, 4, 8) and reports
// GMT-Reuse's speedup over BaM.
func Figure12(s *Suite) (map[int][]SensitivityRow, *stats.Table) {
	ratios := figure12Ratios
	t := stats.NewTable("Figure 12: GMT-Reuse speedup over BaM for Tier-2:Tier-1 ratios",
		"Application", "Ratio 2", "Ratio 4", "Ratio 8")
	byRatio := make(map[int][]SensitivityRow)
	suites := s.figure12Suites()
	for _, name := range workload.Names {
		cells := []string{name}
		for _, ratio := range ratios {
			sub := suites[ratio]
			sp := sub.Speedup(appByName(sub, name), core.PolicyReuse)
			byRatio[ratio] = append(byRatio[ratio], SensitivityRow{
				App: name, Speedup: map[string]float64{"GMT-Reuse": sp},
			})
			cells = append(cells, stats.X(sp))
		}
		t.AddRow(cells...)
	}
	return byRatio, t
}

// figure13Suite derives Figure 13's doubled-Tier-1 sub-suite.
func (s *Suite) figure13Suite() *Suite {
	base := s.Scale
	return s.derived("fig13", func() *Suite {
		sub := NewRegularSuite(workload.Scale{
			Tier1Pages:       2 * base.Tier1Pages,
			Tier2Pages:       2 * base.Tier2Pages,
			Oversubscription: base.Oversubscription,
		})
		sub.phased = true
		return sub
	})
}

// Figure13 doubles Tier-1 (and the datasets with it, OSF staying 2) and
// reports speedups for the non-graph applications.
func Figure13(s *Suite) ([]SensitivityRow, *stats.Table) {
	sub := s.figure13Suite()
	t := stats.NewTable("Figure 13: Speedup over BaM with doubled Tier-1 (non-graph applications)",
		"Application", "TierOrder", "Random", "Reuse")
	var rows []SensitivityRow
	for _, w := range sub.Apps() {
		r := SensitivityRow{App: w.Name(), Speedup: map[string]float64{}}
		for _, p := range Policies {
			r.Speedup[p.String()] = sub.Speedup(w, p)
		}
		rows = append(rows, r)
		t.AddRow(r.App, stats.X(r.Speedup["GMT-TierOrder"]),
			stats.X(r.Speedup["GMT-Random"]), stats.X(r.Speedup["GMT-Reuse"]))
	}
	return rows, t
}
