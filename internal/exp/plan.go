package exp

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/workload"
)

// ExperimentNames lists every experiment gmtbench knows, in rendering
// order. The planner understands the same names.
var ExperimentNames = []string{
	"table1", "table2", "fig4", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "oracle", "ext", "ssd",
	"predictors", "warmup", "util", "kvserve",
}

// Job is one unit of prewarm work: a single trace generation or
// simulation, self-contained (it builds its own engine and RNG from the
// suite configuration) and safe to run concurrently with any other job.
// Running a job only fills the suite memo; rendering afterwards reads
// the same memo, so output is identical whether or not the job ran.
type Job struct {
	Key string // unique across the plan; used for dedup and reporting
	Run func()
}

// Phase groups jobs with no dependencies among them: all jobs of a
// phase may run concurrently, and a phase only starts after every
// earlier phase finished.
type Phase struct {
	Name string
	Jobs []Job
	// More, if set, is called when the phase starts (i.e. after all
	// earlier phases completed) and returns additional jobs whose
	// parameters depend on earlier results — e.g. Figure 14's
	// optimistic-HMM runs need GMT-Reuse's measured hit rate.
	More func() []Job
}

// Plan walks the requested experiments and collects the deduplicated
// set of jobs they will need, grouped into phases: trace generation
// first (the Kronecker/CSR graph build rides along via the lazy
// GraphSet), then the shared warm-up prefix parents of phased sweeps
// (so the simulate fan-out forks instead of serializing on prefix
// singleflights), then all statically known simulations, then dependent
// simulations. The plan is an optimization only — any job the planner
// misses is computed lazily (and sequentially) when the experiment
// renders, so results never depend on planner completeness.
func Plan(s *Suite, experiments []string) []Phase {
	pl := &planner{seen: map[string]bool{}}
	for _, e := range experiments {
		pl.addExperiment(s, e)
	}
	phases := []Phase{{Name: "traces", Jobs: pl.traces}}
	if len(pl.prefixes) > 0 {
		phases = append(phases, Phase{Name: "prefixes", Jobs: pl.prefixes})
	}
	phases = append(phases, Phase{Name: "simulate", Jobs: pl.sims})
	if len(pl.more) > 0 {
		more := pl.more
		phases = append(phases, Phase{Name: "dependent", More: func() []Job {
			seen := map[string]bool{}
			var jobs []Job
			for _, f := range more {
				for _, j := range f() {
					if seen[j.Key] {
						continue
					}
					seen[j.Key] = true
					jobs = append(jobs, j)
				}
			}
			return jobs
		}})
	}
	return phases
}

type planner struct {
	seen     map[string]bool
	traces   []Job
	prefixes []Job
	sims     []Job
	more     []func() []Job
}

// allPolicies is BaM plus the three GMT policies, the sweep most
// figures run.
func allPolicies() []core.PolicyKind {
	return append([]core.PolicyKind{core.PolicyBaM}, Policies...)
}

func appNames(s *Suite) []string {
	names := make([]string, len(s.apps))
	for i, w := range s.apps {
		names[i] = w.Name()
	}
	return names
}

func (pl *planner) addExperiment(s *Suite, name string) {
	switch name {
	case "table1", "fig6":
		// Configuration-only: no traces, no simulations.
	case "table2", "fig7":
		pl.addTraces(s, appNames(s))
	case "fig4":
		pl.addTraces(s, []string{"MultiVectorAdd", "PageRank"})
	case "fig8", "fig10", "util":
		pl.addPolicySweep(s, appNames(s), allPolicies())
	case "fig9":
		pl.addPolicySweep(s, appNames(s), []core.PolicyKind{core.PolicyReuse})
	case "fig11":
		ng, g := s.figure11Suites()
		pl.addPolicySweep(ng, appNames(ng), allPolicies())
		pl.addPolicySweep(g, appNames(g), allPolicies())
	case "fig12":
		suites := s.figure12Suites()
		for _, ratio := range figure12Ratios {
			sub := suites[ratio]
			pl.addPolicySweep(sub, appNames(sub),
				[]core.PolicyKind{core.PolicyBaM, core.PolicyReuse})
		}
	case "fig13":
		sub := s.figure13Suite()
		pl.addPolicySweep(sub, appNames(sub), allPolicies())
	case "fig14":
		pl.addPolicySweep(s, appNames(s),
			[]core.PolicyKind{core.PolicyBaM, core.PolicyReuse})
		for _, n := range appNames(s) {
			pl.addHMM(s, n, -1)
		}
		pl.more = append(pl.more, func() []Job {
			// By the dependent phase, the Reuse runs are memoized, so
			// reading the hit rates costs nothing.
			var jobs []Job
			for _, w := range s.Apps() {
				w := w
				rate := s.Run(w, core.PolicyReuse).Tier2HitRate()
				jobs = append(jobs, hmmJob(s, w, rate))
			}
			return jobs
		})
	case "oracle":
		pl.addPolicySweep(s, appNames(s),
			[]core.PolicyKind{core.PolicyBaM, core.PolicyReuse})
		for _, n := range appNames(s) {
			n := n
			key := s.label + "|oracle|" + n
			if pl.seen[key] {
				continue
			}
			pl.seen[key] = true
			w := appByName(s, n)
			pl.sims = append(pl.sims, Job{Key: key, Run: func() { s.RunOracle(w) }})
		}
	case "ext":
		pl.addPolicySweep(s, appNames(s), []core.PolicyKind{core.PolicyReuse})
		for _, n := range appNames(s) {
			asyncKey, asyncCfg := s.reuseAsyncConfig()
			pl.addConfig(s, n, asyncKey, asyncCfg)
			pfKey, pfCfg := s.reusePrefetchConfig()
			pl.addConfig(s, n, pfKey, pfCfg)
		}
	case "ssd":
		pl.addTraces(s, SensitivityApps)
		for _, app := range SensitivityApps {
			for _, g := range SSDGens {
				for _, p := range []core.PolicyKind{core.PolicyBaM, core.PolicyReuse} {
					key, cfg := s.ssdGenConfig(g, p)
					pl.addConfig(s, app, key, cfg)
				}
			}
			for _, c := range SSDCounts {
				for _, p := range []core.PolicyKind{core.PolicyBaM, core.PolicyReuse} {
					key, cfg := s.ssdCountConfig(c, p)
					pl.addConfig(s, app, key, cfg)
				}
			}
		}
	case "predictors":
		pl.addPolicySweep(s, appNames(s), []core.PolicyKind{core.PolicyBaM})
		for _, n := range appNames(s) {
			for _, pk := range Predictors {
				key, cfg := s.predictorConfig(pk)
				pl.addConfig(s, n, key, cfg)
			}
		}
	case "kvserve":
		for _, p := range KVPolicies {
			key, cfg := s.kvConfig(p)
			pl.addConfigPhased(s, workload.KVServeName, key, cfg)
		}
	case "warmup":
		// The warmup study's pipelined/unpipelined runs need the
		// runtime's history, which the memo doesn't carry, so only
		// the BaM baselines (and traces) can be prewarmed.
		pl.addPolicySweep(s, []string{"Srad", "Backprop", "MultiVectorAdd"},
			[]core.PolicyKind{core.PolicyBaM})
	}
}

// addTraces queues trace-generation jobs, one graph application first:
// the graph workloads share one lazily built GraphSet, so the first
// graph trace triggers the expensive Kronecker/CSR build while the
// regular traces generate on other workers.
func (pl *planner) addTraces(s *Suite, names []string) {
	var graphs, regular []string
	for _, n := range names {
		if isGraphApp(n) {
			graphs = append(graphs, n)
		} else {
			regular = append(regular, n)
		}
	}
	if len(graphs) > 0 {
		pl.addTrace(s, graphs[0])
	}
	for _, n := range regular {
		pl.addTrace(s, n)
	}
	for _, n := range graphs {
		pl.addTrace(s, n)
	}
}

func (pl *planner) addTrace(s *Suite, name string) {
	key := s.label + "|trace|" + name
	if pl.seen[key] {
		return
	}
	pl.seen[key] = true
	w := appByName(s, name)
	pl.traces = append(pl.traces, Job{Key: key, Run: func() { s.Trace(w) }})
}

func (pl *planner) addPolicySweep(s *Suite, names []string, policies []core.PolicyKind) {
	pl.addTraces(s, names)
	for _, n := range names {
		for _, p := range policies {
			p := p
			if s.phased {
				pl.addPrefix(s, n, s.config(p))
			}
			key := s.label + "|run|" + n + "/" + p.String()
			if pl.seen[key] {
				continue
			}
			pl.seen[key] = true
			w := appByName(s, n)
			pl.sims = append(pl.sims, Job{Key: key, Run: func() { s.Run(w, p) }})
		}
	}
}

// addPrefix queues one warm-up parent build per canonical prefix class
// (core.PrefixConfig): the job key is the class key itself, global
// rather than label-prefixed, so sweep points from different sub-suites
// sharing a class (fig12's three ratios, TierOrder+Random anywhere)
// collapse to a single job.
func (pl *planner) addPrefix(s *Suite, name string, cfg core.Config) {
	if s.NoFork || !phasedEligible(cfg) {
		return
	}
	w := appByName(s, name)
	if cfg.FootprintPages == 0 {
		cfg.FootprintPages = int(w.Pages())
	}
	key := fmt.Sprintf("prefix|%s|gpu=%+v|cfg=%+v", s.dataKey(w), s.GPU, core.PrefixConfig(cfg))
	if pl.seen[key] {
		return
	}
	pl.seen[key] = true
	pl.prefixes = append(pl.prefixes, Job{Key: key, Run: func() { s.WarmPrefix(w, cfg) }})
}

func (pl *planner) addConfig(s *Suite, name, cfgKey string, cfg core.Config) {
	pl.addTrace(s, name)
	key := s.label + "|cfg|" + name + "/" + cfgKey
	if pl.seen[key] {
		return
	}
	pl.seen[key] = true
	w := appByName(s, name)
	pl.sims = append(pl.sims, Job{Key: key, Run: func() { s.RunConfig(cfgKey, w, cfg) }})
}

// addConfigPhased is addConfig for grids run via RunConfigPhased; it
// also queues the grid's shared warm-up parent.
func (pl *planner) addConfigPhased(s *Suite, name, cfgKey string, cfg core.Config) {
	pl.addTrace(s, name)
	pl.addPrefix(s, name, cfg)
	key := s.label + "|cfg|" + name + "/" + cfgKey
	if pl.seen[key] {
		return
	}
	pl.seen[key] = true
	w := appByName(s, name)
	pl.sims = append(pl.sims, Job{Key: key, Run: func() { s.RunConfigPhased(cfgKey, w, cfg) }})
}

func (pl *planner) addHMM(s *Suite, name string, rate float64) {
	pl.addTrace(s, name)
	j := hmmJob(s, appByName(s, name), rate)
	if pl.seen[j.Key] {
		return
	}
	pl.seen[j.Key] = true
	pl.sims = append(pl.sims, j)
}

func hmmJob(s *Suite, w workload.Workload, rate float64) Job {
	return Job{
		Key: fmt.Sprintf("%s|hmm|%s/%.3f", s.label, w.Name(), rate),
		Run: func() { s.RunHMM(w, rate) },
	}
}
