package exp

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file is the concurrency boundary of the repository: goroutines
// exist here (and nowhere below). Each job owns a private sim.Engine —
// the simulator packages stay single-goroutine — and only the Suite
// memo is shared, under its lock. Because jobs merely fill the memo and
// rendering replays the same sequential reads afterwards, output is
// byte-identical to a sequential run regardless of worker count or
// scheduling order.

// PhaseReport summarizes one executed phase of a prewarm.
type PhaseReport struct {
	Name   string
	Jobs   int
	WallNS int64
}

// Report summarizes a Prewarm invocation.
type Report struct {
	Workers     int
	JobsPlanned int
	Sims        int64 // simulations/traces executed by prewarm jobs
	CacheHits   int64 // memo hits observed during prewarm
	BusyNS      int64 // summed per-job wall time across workers
	WallNS      int64 // end-to-end prewarm wall time
	Phases      []PhaseReport

	// WorkerBusyNS is each worker's summed job time across all phases
	// (len == Workers). A skewed profile means a long-tail job pinned one
	// worker while the rest idled — the pool-utilization signal gmtbench
	// surfaces as worker_busy_ms.
	WorkerBusyNS []int64
}

// Prewarm plans the requested experiments (see Plan) and executes the
// jobs on a pool of workers, phase by phase. The clock is injected by
// the caller because everything outside cmd/ is banned from reading
// wall time (cmd/gmtbench passes a monotonic nanosecond clock); a nil
// clock leaves all timings zero. A job panic is re-raised here after
// the pool drains.
//
// Cancelling ctx stops the pool at job granularity: workers observe the
// cancellation before claiming their next job (an in-progress
// simulation always runs to completion — the simulator packages are
// single-goroutine and uninterruptible by design), remaining jobs and
// phases are skipped, and Prewarm returns ctx.Err(). A cancelled
// prewarm leaves the suite memo consistent — every committed result is
// complete — so the same suite can be prewarmed again or rendered
// directly afterwards.
//
//gmt:blocking
func Prewarm(ctx context.Context, s *Suite, experiments []string, workers int, clock func() int64) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	rep := Report{Workers: workers, WorkerBusyNS: make([]int64, workers)}
	sims0, hits0 := s.Counters()
	start := clock()
	var err error
	for _, ph := range Plan(s, experiments) {
		if err = ctx.Err(); err != nil {
			break
		}
		jobs := ph.Jobs
		if ph.More != nil {
			jobs = append(jobs, ph.More()...)
		}
		if len(jobs) == 0 {
			continue
		}
		phaseStart := clock()
		busy, jerr := runJobs(ctx, jobs, workers, clock, rep.WorkerBusyNS)
		rep.BusyNS += busy
		rep.Phases = append(rep.Phases, PhaseReport{
			Name: ph.Name, Jobs: len(jobs), WallNS: clock() - phaseStart,
		})
		rep.JobsPlanned += len(jobs)
		if jerr != nil {
			err = jerr
			break
		}
	}
	rep.WallNS = clock() - start
	sims1, hits1 := s.Counters()
	rep.Sims, rep.CacheHits = sims1-sims0, hits1-hits0
	return rep, err
}

// PoolReport summarizes one RunJobs invocation: the summed per-job busy
// time and each worker's share of it. It is pool telemetry (wall time),
// deliberately separate from simulation results so deterministic
// outputs never embed it.
type PoolReport struct {
	Workers      int
	BusyNS       int64
	WorkerBusyNS []int64
}

// RunJobs executes an ad-hoc job list on the worker pool — the entry
// point for callers outside this package (internal/fleet fans per-node
// simulations out through it) that plan their own jobs rather than
// going through Suite/Plan. The determinism contract is the caller's:
// jobs must write results into caller-owned slots keyed by job index so
// output is independent of completion order. The clock is injected for
// the same reason as Prewarm's; nil leaves timings zero. Cancellation
// and panic semantics match Prewarm.
//
//gmt:blocking
func RunJobs(ctx context.Context, jobs []Job, workers int, clock func() int64) (PoolReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	rep := PoolReport{Workers: workers, WorkerBusyNS: make([]int64, workers)}
	busy, err := runJobs(ctx, jobs, workers, clock, rep.WorkerBusyNS)
	rep.BusyNS = busy
	return rep, err
}

// runJobs drains the job list on a bounded worker pool and returns the
// summed per-job busy time; each worker additionally accumulates its own
// job time into workerBusy[i] (workers beyond len(jobs) never start and
// stay at their prior value). The first job panic is captured and
// re-raised after all workers exit, so a failed simulation surfaces the
// same way it would sequentially. Workers check ctx before claiming
// each job; on cancellation the remaining jobs are skipped, already
// started jobs finish, and ctx.Err() is returned after the pool drains.
func runJobs(ctx context.Context, jobs []Job, workers int, clock func() int64, workerBusy []int64) (int64, error) {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next, busy int64
	panics := make(chan interface{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			for ctx.Err() == nil {
				n := atomic.AddInt64(&next, 1) - 1
				if n >= int64(len(jobs)) {
					return
				}
				t0 := clock()
				jobs[n].Run()
				d := clock() - t0
				atomic.AddInt64(&busy, d)
				if workerBusy != nil {
					// Worker i is the only writer of workerBusy[i]; the
					// caller reads after wg.Wait establishes the ordering.
					workerBusy[i] += d
				}
			}
		}()
	}
	wg.Wait()
	close(panics)
	if r := <-panics; r != nil {
		panic(r)
	}
	return atomic.LoadInt64(&busy), ctx.Err()
}
