package exp

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/gmtsim/gmt/internal/workload"
)

// TestRunJobsObservesCancellation: cancelling the context mid-run stops
// workers at job granularity — jobs claimed after the cancel never run —
// and runJobs reports the context error after the pool drains.
func TestRunJobsObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int64
	jobs := make([]Job, 100)
	for i := range jobs {
		i := i
		jobs[i] = Job{Key: fmt.Sprintf("job%d", i), Run: func() {
			if i == 0 {
				cancel()
			}
			atomic.AddInt64(&ran, 1)
		}}
	}
	_, err := runJobs(ctx, jobs, 2, func() int64 { return 0 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runJobs error = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n >= int64(len(jobs)) {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

// TestPrewarmCancelledPoolReusable is the cancellation regression gate:
// a cancelled Prewarm returns promptly with the context error, and the
// same suite then supports a fresh Prewarm plus rendering whose output
// is byte-identical to a never-cancelled sequential run — a cancelled
// pool leaves no half-committed memo state behind.
func TestPrewarmCancelledPoolReusable(t *testing.T) {
	scale := workload.Scale{Tier1Pages: 128, Tier2Pages: 512, Oversubscription: 2}

	sequential := func() string {
		s := NewSuite(scale)
		rows, tbl := Figure8(s)
		return tbl.Render() + fmt.Sprintf("%#v", rows)
	}()

	s := NewSuite(scale)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the pool must not execute anything new
	rep, err := Prewarm(ctx, s, []string{"fig8"}, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Prewarm error = %v, want context.Canceled", err)
	}
	if rep.Sims != 0 {
		t.Fatalf("cancelled-before-start Prewarm executed %d simulations", rep.Sims)
	}

	// The pool is per-call state: a fresh context on the same suite must
	// complete normally...
	rep2, err := Prewarm(context.Background(), s, []string{"fig8"}, 2, nil)
	if err != nil {
		t.Fatalf("second Prewarm on the same suite failed: %v", err)
	}
	if rep2.JobsPlanned == 0 || rep2.Sims == 0 {
		t.Fatalf("second Prewarm did nothing: %+v", rep2)
	}
	// ...and rendering must match the sequential baseline byte for byte.
	rows, tbl := Figure8(s)
	if got := tbl.Render() + fmt.Sprintf("%#v", rows); got != sequential {
		t.Fatal("rendering after a cancelled+retried prewarm diverged from the sequential run")
	}
}
