package exp

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/gmtsim/gmt/internal/workload"
)

// TestRunJobsObservesCancellation: cancelling the context mid-run stops
// workers at job granularity — jobs claimed after the cancel never run —
// and runJobs reports the context error after the pool drains.
func TestRunJobsObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int64
	jobs := make([]Job, 100)
	for i := range jobs {
		i := i
		jobs[i] = Job{Key: fmt.Sprintf("job%d", i), Run: func() {
			if i == 0 {
				cancel()
			}
			atomic.AddInt64(&ran, 1)
		}}
	}
	_, err := runJobs(ctx, jobs, 2, func() int64 { return 0 }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runJobs error = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n >= int64(len(jobs)) {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

// TestRunJobsWorkerBusyAccounting: the per-worker busy slice partitions
// the pool's total busy time — each worker's jobs land in its own slot,
// and the slots sum to exactly the aggregate runJobs returns.
func TestRunJobsWorkerBusyAccounting(t *testing.T) {
	var ticks int64
	clock := func() int64 { return atomic.AddInt64(&ticks, 1) }
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Key: fmt.Sprintf("job%d", i), Run: func() {}}
	}
	workerBusy := make([]int64, 3)
	busy, err := runJobs(context.Background(), jobs, 3, clock, workerBusy)
	if err != nil {
		t.Fatalf("runJobs error = %v", err)
	}
	if busy <= 0 {
		t.Fatalf("busy = %d, want > 0 under a ticking clock", busy)
	}
	var sum int64
	for _, b := range workerBusy {
		if b < 0 {
			t.Fatalf("negative per-worker busy time: %v", workerBusy)
		}
		sum += b
	}
	if sum != busy {
		t.Fatalf("per-worker busy sums to %d, aggregate is %d", sum, busy)
	}
}

// TestPrewarmWorkerBusyLen: Prewarm sizes WorkerBusyNS to the requested
// worker count even when phases cap the pool below it.
func TestPrewarmWorkerBusyLen(t *testing.T) {
	scale := workload.Scale{Tier1Pages: 128, Tier2Pages: 512, Oversubscription: 2}
	s := NewSuite(scale)
	var ticks int64
	rep, err := Prewarm(context.Background(), s, []string{"fig8"}, 4,
		func() int64 { return atomic.AddInt64(&ticks, 1) })
	if err != nil {
		t.Fatalf("Prewarm error = %v", err)
	}
	if len(rep.WorkerBusyNS) != 4 {
		t.Fatalf("WorkerBusyNS has %d slots, want 4", len(rep.WorkerBusyNS))
	}
	var sum int64
	for _, b := range rep.WorkerBusyNS {
		sum += b
	}
	if sum != rep.BusyNS {
		t.Fatalf("per-worker busy sums to %d, BusyNS is %d", sum, rep.BusyNS)
	}
}

// TestPrewarmCancelledPoolReusable is the cancellation regression gate:
// a cancelled Prewarm returns promptly with the context error, and the
// same suite then supports a fresh Prewarm plus rendering whose output
// is byte-identical to a never-cancelled sequential run — a cancelled
// pool leaves no half-committed memo state behind.
func TestPrewarmCancelledPoolReusable(t *testing.T) {
	scale := workload.Scale{Tier1Pages: 128, Tier2Pages: 512, Oversubscription: 2}

	sequential := func() string {
		s := NewSuite(scale)
		rows, tbl := Figure8(s)
		return tbl.Render() + fmt.Sprintf("%#v", rows)
	}()

	s := NewSuite(scale)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the pool must not execute anything new
	rep, err := Prewarm(ctx, s, []string{"fig8"}, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Prewarm error = %v, want context.Canceled", err)
	}
	if rep.Sims != 0 {
		t.Fatalf("cancelled-before-start Prewarm executed %d simulations", rep.Sims)
	}

	// The pool is per-call state: a fresh context on the same suite must
	// complete normally...
	rep2, err := Prewarm(context.Background(), s, []string{"fig8"}, 2, nil)
	if err != nil {
		t.Fatalf("second Prewarm on the same suite failed: %v", err)
	}
	if rep2.JobsPlanned == 0 || rep2.Sims == 0 {
		t.Fatalf("second Prewarm did nothing: %+v", rep2)
	}
	// ...and rendering must match the sequential baseline byte for byte.
	rows, tbl := Figure8(s)
	if got := tbl.Render() + fmt.Sprintf("%#v", rows); got != sequential {
		t.Fatal("rendering after a cancelled+retried prewarm diverged from the sequential run")
	}
}
