package exp

import (
	"encoding/json"
	"io"

	"github.com/gmtsim/gmt/internal/plot"
	"github.com/gmtsim/gmt/internal/xfer"
)

// This file is the single dispatch point for named experiments: both
// cmd/gmtbench and the serving daemon (internal/serve via cmd/gmtd) run
// experiments through RunExperiment and encode rows through
// EncodeExperiment, so a result served over HTTP is byte-identical to
// the same experiment printed by `gmtbench -json`.

// SVGSink receives each figure an experiment renders as SVG. A nil sink
// skips SVG rendering entirely.
type SVGSink func(name string, f *plot.Figure)

// KnownExperiment reports whether name is one of ExperimentNames.
func KnownExperiment(name string) bool {
	for _, n := range ExperimentNames {
		if n == name {
			return true
		}
	}
	return false
}

// NeedsSuite reports whether the experiment requires workload
// simulations (everything except the configuration-only Figure 6).
func NeedsSuite(name string) bool { return name != "fig6" }

// RunExperiment executes one named experiment and returns its typed
// rows (what -json and the daemon serve) plus the rendered text tables.
// getSuite is called lazily so configuration-only experiments (fig6)
// never pay for workload construction. ok is false for unknown names.
func RunExperiment(getSuite func() *Suite, name string, svg SVGSink) (rows interface{}, text string, ok bool) {
	if svg == nil {
		svg = func(string, *plot.Figure) {}
	}
	switch name {
	case "table1":
		r, t := Table1(getSuite())
		return r, t.Render(), true
	case "table2":
		r, t := Table2(getSuite())
		return r, t.Render(), true
	case "fig4":
		r, t := Figure4(getSuite())
		return r, t.Render(), true
	case "fig6":
		ra, ta := Figure6a(xfer.DefaultConfig())
		rb, tb := Figure6b(xfer.DefaultConfig())
		svg("fig6b", Figure6bSVG(rb))
		return map[string]interface{}{"a": ra, "b": rb}, ta.Render() + "\n" + tb.Render(), true
	case "fig7":
		r, t := Figure7(getSuite())
		return r, t.Render(), true
	case "fig8":
		r, t := Figure8(getSuite())
		svg("fig8a", Figure8SVG(r))
		return r, t.Render(), true
	case "fig9":
		r, t := Figure9(getSuite())
		svg("fig9", Figure9SVG(r))
		return r, t.Render(), true
	case "fig10":
		r, t := Figure10(getSuite())
		return r, t.Render(), true
	case "fig11":
		r, t := Figure11(getSuite())
		return r, t.Render(), true
	case "fig12":
		r, t := Figure12(getSuite())
		svg("fig12", Figure12SVG(r))
		return r, t.Render(), true
	case "fig13":
		r, t := Figure13(getSuite())
		return r, t.Render(), true
	case "fig14":
		r, t := Figure14(getSuite())
		svg("fig14", Figure14SVG(r))
		return r, t.Render(), true
	case "oracle":
		r, t := OracleGap(getSuite())
		return r, t.Render(), true
	case "ext":
		r, t := Extensions(getSuite())
		return r, t.Render(), true
	case "ssd":
		gens, t := SSDSensitivity(getSuite())
		counts, t2 := SSDCountSweep(getSuite())
		svg("ssd", SSDSensitivitySVG(gens))
		text := t.Render() + "\n" + SSDScalingChart(gens) + "\n" + t2.Render()
		return map[string]interface{}{"generations": gens, "drives": counts}, text, true
	case "predictors":
		r, t := PredictorAblation(getSuite())
		return r, t.Render(), true
	case "warmup":
		r, t := RegressionWarmup(getSuite())
		return r, t.Render(), true
	case "util":
		r, t := Utilization(getSuite())
		return r, t.Render(), true
	case "kvserve":
		r, t := KVServe(getSuite())
		svg("kvserve", KVServeSVG(r))
		return r, t.Render(), true
	}
	return nil, "", false
}

// EncodeExperiment writes the canonical JSON encoding of one
// experiment's rows: the exact bytes `gmtbench -json` prints and the
// daemon serves, so the two can be diffed directly.
func EncodeExperiment(w io.Writer, name string, rows interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]interface{}{
		"experiment": name,
		"rows":       rows,
	})
}
