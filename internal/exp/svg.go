package exp

import (
	"strconv"

	"github.com/gmtsim/gmt/internal/plot"
)

// SVG builders: convert experiment rows into renderable figures for
// `gmtbench -svg`.

// Figure6bSVG renders the transfer-scheme bandwidth sweep as lines over
// skew.
func Figure6bSVG(rows []Figure6bRow) *plot.Figure {
	f := plot.NewFigure("Figure 6b: delivered bandwidth for zipf page accesses",
		"zipf skew", "GB/s")
	f.Line = true
	var dma, zc, h8, h16, h32 []float64
	for _, r := range rows {
		f.Labels = append(f.Labels, trimFloat(r.Skew))
		dma = append(dma, r.DMA)
		zc = append(zc, r.ZeroCopy)
		h8 = append(h8, r.Hybrid8)
		h16 = append(h16, r.Hybrid16)
		h32 = append(h32, r.Hybrid32)
	}
	f.Add("cudaMemcpyAsync", dma)
	f.Add("zero-copy", zc)
	f.Add("Hybrid-8T", h8)
	f.Add("Hybrid-16T", h16)
	f.Add("Hybrid-32T", h32)
	return f
}

// Figure8SVG renders the headline speedup chart as grouped bars with
// the BaM baseline at 1.0.
func Figure8SVG(rows []Figure8Row) *plot.Figure {
	f := plot.NewFigure("Figure 8a: speedup over BaM (Tier-2 = 4x Tier-1, OSF = 2)",
		"application", "speedup (x)")
	f.Baseline = 1.0
	var to, rnd, reuse []float64
	for _, r := range rows {
		f.Labels = append(f.Labels, r.App)
		to = append(to, r.Speedup["GMT-TierOrder"])
		rnd = append(rnd, r.Speedup["GMT-Random"])
		reuse = append(reuse, r.Speedup["GMT-Reuse"])
	}
	f.Add("GMT-TierOrder", to)
	f.Add("GMT-Random", rnd)
	f.Add("GMT-Reuse", reuse)
	return f
}

// Figure9SVG renders prediction accuracy bars.
func Figure9SVG(rows []Figure9Row) *plot.Figure {
	f := plot.NewFigure("Figure 9: GMT-Reuse prediction accuracy", "application", "accuracy")
	var acc []float64
	for _, r := range rows {
		f.Labels = append(f.Labels, r.App)
		acc = append(acc, r.Accuracy)
	}
	f.Add("accuracy", acc)
	return f
}

// Figure12SVG renders the Tier-2:Tier-1 ratio sweep.
func Figure12SVG(byRatio map[int][]SensitivityRow) *plot.Figure {
	f := plot.NewFigure("Figure 12: GMT-Reuse speedup over BaM by Tier-2:Tier-1 ratio",
		"application", "speedup (x)")
	f.Baseline = 1.0
	for _, ratio := range []int{2, 4, 8} {
		var vals []float64
		for _, r := range byRatio[ratio] {
			if ratio == 2 {
				f.Labels = append(f.Labels, r.App)
			}
			vals = append(vals, r.Speedup["GMT-Reuse"])
		}
		switch ratio {
		case 2:
			f.Add("ratio 2", vals)
		case 4:
			f.Add("ratio 4", vals)
		case 8:
			f.Add("ratio 8", vals)
		}
	}
	return f
}

// Figure14SVG renders the HMM comparison.
func Figure14SVG(rows []Figure14Row) *plot.Figure {
	f := plot.NewFigure("Figure 14: speedup of HMM and GMT-Reuse over BaM",
		"application", "speedup (x)")
	f.Baseline = 1.0
	var hmm, reuse []float64
	for _, r := range rows {
		f.Labels = append(f.Labels, r.App)
		hmm = append(hmm, r.HMMSpeedup)
		reuse = append(reuse, r.ReuseSpeedup)
	}
	f.Add("HMM", hmm)
	f.Add("GMT-Reuse", reuse)
	return f
}

// SSDSensitivitySVG renders the storage-generation sweep as lines.
func SSDSensitivitySVG(rows []SSDRow) *plot.Figure {
	f := plot.NewFigure("SSD sensitivity: GMT-Reuse speedup over BaM by storage generation",
		"storage generation", "speedup (x)")
	f.Line = true
	f.Baseline = 1.0
	series := map[string][]float64{}
	var apps []string
	for _, g := range SSDGens {
		f.Labels = append(f.Labels, g.Name)
	}
	for _, r := range rows {
		if _, ok := series[r.App]; !ok {
			apps = append(apps, r.App)
		}
		series[r.App] = append(series[r.App], r.Speedup)
	}
	for _, app := range apps {
		f.Add(app, series[app])
	}
	return f
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
