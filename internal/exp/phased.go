package exp

import (
	"fmt"
	"sync"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/workload"
)

// minPrefix is the smallest eviction-free prefix worth splitting a run
// at; shorter warm-ups fall back to a monolithic simulation. The bound
// is part of the determinism contract: whether a run phases depends
// only on (trace, Tier1Pages), never on fork mode or worker count.
const minPrefix = 64

// shareCache is one root suite's cross-suite sharing domain: canonical
// warm-up prefix parents (forked per sweep point) and whole-run BaM
// results (valid across Tier-2 sweeps because BaM never consults
// Tier-2 or the RNG). Derived sub-suites point at their root's cache,
// so fig12's three ratio suites — or fig11's halved-tier suite and the
// root — share entries. Both maps singleflight like Suite.memoRun.
type shareCache struct {
	mu             sync.Mutex
	prefixes       map[string]*prefixParent
	prefixInflight map[string]chan struct{}
	runs           map[string]stats.Run
	runInflight    map[string]chan struct{}
}

func newShareCache() *shareCache {
	return &shareCache{
		prefixes:       make(map[string]*prefixParent),
		prefixInflight: make(map[string]chan struct{}),
		runs:           make(map[string]stats.Run),
		runInflight:    make(map[string]chan struct{}),
	}
}

// prefixParent is a frozen runtime that simulated one eviction-free
// warm-up prefix under its class's canonical config (core.PrefixConfig)
// plus the engine snapshot and warp-time totals the children need.
type prefixParent struct {
	// mu serializes Fork calls: forking writes the parent's frozen flag
	// and concurrent sweep points may fork the same parent.
	mu      sync.Mutex
	rt      *core.Runtime
	snap    sim.Snapshot
	compute sim.Time
	stall   sim.Time
}

func (c *shareCache) prefix(key string, compute func() *prefixParent) *prefixParent {
	for {
		c.mu.Lock()
		if p, ok := c.prefixes[key]; ok {
			c.mu.Unlock()
			return p
		}
		if ch, ok := c.prefixInflight[key]; ok {
			c.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		c.prefixInflight[key] = ch
		c.mu.Unlock()

		var p *prefixParent
		func() {
			defer func() {
				c.mu.Lock()
				delete(c.prefixInflight, key)
				c.mu.Unlock()
				close(ch)
			}()
			p = compute()
			c.mu.Lock()
			c.prefixes[key] = p
			c.mu.Unlock()
		}()
		return p
	}
}

func (c *shareCache) run(key string, compute func() stats.Run) stats.Run {
	for {
		c.mu.Lock()
		if r, ok := c.runs[key]; ok {
			c.mu.Unlock()
			return r
		}
		if ch, ok := c.runInflight[key]; ok {
			c.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		c.runInflight[key] = ch
		c.mu.Unlock()

		var r stats.Run
		func() {
			defer func() {
				c.mu.Lock()
				delete(c.runInflight, key)
				c.mu.Unlock()
				close(ch)
			}()
			r = compute()
			c.mu.Lock()
			c.runs[key] = r
			c.mu.Unlock()
		}()
		return r
	}
}

// dataSuite returns the suite whose workloads and traces s consumes:
// itself, or the parent it adopted datasets from.
func (s *Suite) dataSuite() *Suite {
	if s.data != nil {
		return s.data
	}
	return s
}

// dataKey identifies the trace content a run of w consumed — the
// workload name plus the scale its generator derived from. Share-cache
// keys embed it so entries never collide across genuinely different
// datasets (fig13's doubled suite vs the root, say).
func (s *Suite) dataKey(w workload.Workload) string {
	return fmt.Sprintf("%s@%+v", w.Name(), s.dataSuite().Scale)
}

// adoptData pins sub's datasets to parent's: the sensitivity sweeps
// vary the machine, not the data (the paper holds datasets fixed when
// halving tiers for Figure 11's graph apps or sweeping Figure 12's
// Tier-2 ratio). With sharing enabled the parent's workloads and trace
// memo are reused outright; under NoFork the workloads are rebuilt at
// the parent's scale, so the sub-suite regenerates its own — byte-equal
// — traces and results cannot differ between the modes.
func (sub *Suite) adoptData(parent *Suite) {
	d := parent.dataSuite()
	if parent.NoFork {
		sub.apps = workload.All(d.Scale)
		return
	}
	sub.apps = d.apps
	sub.data = d
}

// phasedEligible reports whether a run under cfg may split at its
// eviction-free prefix. BaM is excluded — it has no warm-up state worth
// sharing and whole-run dedup covers it; Oracle, prefetch, external
// RNGs, and history sampling carry per-access state Fork cannot carry
// across the split.
func phasedEligible(cfg core.Config) bool {
	switch cfg.Policy {
	case core.PolicyTierOrder, core.PolicyRandom, core.PolicyReuse:
	default:
		return false
	}
	return cfg.RNG == nil && cfg.PrefetchDegree == 0 &&
		cfg.HistorySample == 0 && len(cfg.Future) == 0
}

// simulate is Run's compute step: canonical whole-run dedup for BaM,
// a phased (prefix + suffix) run on phased suites, a plain monolithic
// simulation otherwise.
func (s *Suite) simulate(w workload.Workload, cfg core.Config) stats.Run {
	if cfg.Policy == core.PolicyBaM && cfg.RNG == nil && !s.NoFork {
		key := fmt.Sprintf("bam|%s|gpu=%+v|cfg=%+v", s.dataKey(w), s.GPU, core.PrefixConfig(cfg))
		return s.share.run(key, func() stats.Run { return s.runMono(w, cfg) })
	}
	if s.phased && phasedEligible(cfg) {
		return s.runPhased(w, cfg)
	}
	return s.runMono(w, cfg)
}

// runUnit is one recyclable {engine, runtime} pair. Monolithic
// simulations draw units from the suite pool: a unit that finished a
// run is Reset — reusing its page-directory arena, tier arrays, event
// arena, and pipeline pools — instead of being rebuilt from scratch,
// which is where sweep-scale prewarms used to spend most of their
// allocation churn. Units never serve phased runs: a forked parent is
// frozen forever and a forked child aliases its parent's arena, so
// neither may be recycled (Runtime.Reset panics on both).
type runUnit struct {
	eng *sim.Engine
	rt  *core.Runtime
}

// acquireUnit pops a pooled unit reset to cfg, or builds a fresh one.
func (s *Suite) acquireUnit(cfg core.Config) *runUnit {
	s.unitMu.Lock()
	var u *runUnit
	if n := len(s.units); n > 0 {
		u = s.units[n-1]
		s.units[n-1] = nil
		s.units = s.units[:n-1]
	}
	s.unitMu.Unlock()
	if u == nil {
		eng := sim.NewEngine()
		return &runUnit{eng: eng, rt: core.NewRuntime(eng, cfg)}
	}
	u.rt.Reset(cfg)
	return u
}

// releaseUnit returns a unit whose run completed to the pool.
func (s *Suite) releaseUnit(u *runUnit) {
	s.unitMu.Lock()
	s.units = append(s.units, u)
	s.unitMu.Unlock()
}

// runMono is the classic single-kernel simulation, on a recycled unit.
func (s *Suite) runMono(w workload.Workload, cfg core.Config) stats.Run {
	gcfg := s.GPU
	u := s.acquireUnit(cfg)
	eng, rt := u.eng, u.rt
	g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: s.Trace(w)}, rt)
	g.Launch()
	eng.Run()
	if !g.Done() {
		panic(fmt.Sprintf("exp: %s under %v did not finish", w.Name(), cfg.Policy))
	}
	m := rt.Snapshot()
	m.App = w.Name()
	m.WallTime = eng.Now()
	m.WarpComputeNS = g.ComputeTime()
	m.WarpStallNS = g.StallTime()
	s.releaseUnit(u)
	return m
}

// runPhased simulates w under cfg as two kernels split at the
// eviction-free prefix. With sharing enabled the prefix kernel runs
// once per canonical prefix class (prefixFor) and each sweep point
// forks the parent; under NoFork the same two-kernel structure runs
// end to end on one runtime. The fork-equivalence contract
// (core/fork_test.go) makes the two paths byte-identical.
func (s *Suite) runPhased(w workload.Workload, cfg core.Config) stats.Run {
	tr := s.Trace(w)
	k := core.EvictionFreePrefix(tr, cfg.Tier1Pages)
	if k < minPrefix || k >= len(tr) {
		return s.runMono(w, cfg)
	}
	name := w.Name()
	gcfg := s.GPU
	if !s.NoFork {
		p := s.prefixFor(w, tr, k, cfg)
		p.mu.Lock()
		child := p.rt.Fork(sim.NewEngineFrom(p.snap), cfg)
		p.mu.Unlock()
		eng := child.Engine()
		g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: tr[k:]}, child)
		g.Launch()
		eng.Run()
		if !g.Done() {
			panic(fmt.Sprintf("exp: %s forked suffix did not finish", name))
		}
		m := child.Snapshot()
		m.App = name
		m.WallTime = eng.Now()
		m.WarpComputeNS = p.compute + g.ComputeTime()
		m.WarpStallNS = p.stall + g.StallTime()
		return m
	}
	eng := sim.NewEngine()
	rt := core.NewRuntime(eng, cfg)
	g1 := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: tr[:k]}, rt)
	g1.Launch()
	eng.Run()
	if !g1.Done() {
		panic(fmt.Sprintf("exp: %s warm-up prefix did not finish", name))
	}
	g2 := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: tr[k:]}, rt)
	g2.Launch()
	eng.Run()
	if !g2.Done() {
		panic(fmt.Sprintf("exp: %s suffix did not finish", name))
	}
	m := rt.Snapshot()
	m.App = name
	m.WallTime = eng.Now()
	m.WarpComputeNS = g1.ComputeTime() + g2.ComputeTime()
	m.WarpStallNS = g1.StallTime() + g2.StallTime()
	return m
}

// prefixFor returns (building on first use) the warm-up parent for w's
// prefix class under cfg. The parent simulates tr[:k] under the class's
// canonical config; every config in the class forks it.
func (s *Suite) prefixFor(w workload.Workload, tr []gpu.Access, k int, cfg core.Config) *prefixParent {
	canon := core.PrefixConfig(cfg)
	gcfg := s.GPU
	key := fmt.Sprintf("%s|gpu=%+v|k=%d|cfg=%+v", s.dataKey(w), gcfg, k, canon)
	return s.share.prefix(key, func() *prefixParent {
		eng := sim.NewEngine()
		rt := core.NewRuntime(eng, canon)
		g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: tr[:k]}, rt)
		g.Launch()
		eng.Run()
		if !g.Done() {
			panic(fmt.Sprintf("exp: %s warm-up prefix did not finish", w.Name()))
		}
		return &prefixParent{
			rt:      rt,
			snap:    eng.Snapshot(),
			compute: g.ComputeTime(),
			stall:   g.StallTime(),
		}
	})
}

// WarmPrefix simulates (and caches) the canonical warm-up parent a
// phased run of w under cfg would fork from, so the planner's
// "prefixes" phase can build every parent concurrently before the
// simulate fan-out. A no-op when the run would not fork (NoFork,
// ineligible config, or a degenerate prefix).
func (s *Suite) WarmPrefix(w workload.Workload, cfg core.Config) {
	if cfg.FootprintPages == 0 {
		cfg.FootprintPages = int(w.Pages())
	}
	if s.NoFork || !phasedEligible(cfg) {
		return
	}
	tr := s.Trace(w)
	k := core.EvictionFreePrefix(tr, cfg.Tier1Pages)
	if k < minPrefix || k >= len(tr) {
		return
	}
	s.prefixFor(w, tr, k, cfg)
}

// RunConfigPhased is RunConfig for sweep grids whose points share a
// warm-up: the run splits at the eviction-free prefix (when eligible)
// so grid points in one prefix class — e.g. the KV-serving study's four
// Tier-2 replacement policies — fork a single warm-up parent instead of
// each re-simulating it. Memoized under the same key shape as
// RunConfig.
func (s *Suite) RunConfigPhased(key string, w workload.Workload, cfg core.Config) stats.Run {
	if cfg.FootprintPages == 0 {
		cfg.FootprintPages = int(w.Pages())
	}
	return s.memoRun(w.Name()+"/"+key, func() stats.Run {
		if phasedEligible(cfg) {
			return s.runPhased(w, cfg)
		}
		return s.runMono(w, cfg)
	})
}
