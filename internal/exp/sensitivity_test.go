package exp

import (
	"strings"
	"testing"
)

func TestSSDSensitivityTrend(t *testing.T) {
	rows, table := SSDSensitivity(shared)
	if len(rows) != len(SensitivityApps)*len(SSDGens) {
		t.Fatalf("rows = %d", len(rows))
	}
	// For each app: the paper-generation speedup must exceed the
	// near-memory one — faster storage erodes the host tier's value.
	byApp := map[string]map[string]float64{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]float64{}
		}
		byApp[r.App][r.Gen] = r.Speedup
	}
	for app, gens := range byApp {
		base := gens["Gen3x4 (paper)"]
		fast := gens["near-memory"]
		if fast >= base {
			t.Errorf("%s: near-memory speedup %.2f >= Gen3 %.2f; trend broken", app, fast, base)
		}
		if base < 1.2 {
			t.Errorf("%s: Gen3 speedup %.2f < 1.2", app, base)
		}
	}
	if table.Rows() != len(SensitivityApps) {
		t.Fatalf("table rows = %d", table.Rows())
	}
}

func TestSSDCountSweepTrend(t *testing.T) {
	rows, _ := SSDCountSweep(shared)
	byApp := map[string]map[int]float64{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[int]float64{}
		}
		byApp[r.App][r.Drives] = r.Speedup
	}
	for app, counts := range byApp {
		// More drives give BaM more raw bandwidth: GMT's relative
		// advantage must not grow, and the single-drive gain stays.
		if counts[4] > counts[1]+0.05 {
			t.Errorf("%s: 4-drive speedup %.2f above 1-drive %.2f", app, counts[4], counts[1])
		}
		if counts[1] < 1.2 {
			t.Errorf("%s: 1-drive speedup %.2f < 1.2", app, counts[1])
		}
	}
}

func TestUtilization(t *testing.T) {
	rows, table := Utilization(shared)
	if len(rows) != 9 || table.Rows() != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	var bam, reuse []float64
	for _, r := range rows {
		for p, u := range r.Utilization {
			if u < 0 || u > 1 {
				t.Fatalf("%s/%s: utilization %.2f out of range", r.App, p, u)
			}
		}
		bam = append(bam, r.Utilization["BaM"])
		reuse = append(reuse, r.Utilization["GMT-Reuse"])
	}
	// The host tier's faster fills raise warp utilization on average.
	if mean(reuse) <= mean(bam) {
		t.Fatalf("GMT-Reuse utilization %.3f not above BaM %.3f", mean(reuse), mean(bam))
	}
}

func TestSSDScalingChart(t *testing.T) {
	rows, _ := SSDSensitivity(shared)
	chart := SSDScalingChart(rows)
	for _, app := range SensitivityApps {
		if !strings.Contains(chart, app) {
			t.Fatalf("chart missing %s:\n%s", app, chart)
		}
	}
	if !strings.Contains(chart, "#") {
		t.Fatal("chart has no bars")
	}
}
