package exp

import (
	"fmt"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
	"github.com/gmtsim/gmt/internal/workload"
)

// RunConfig simulates a workload under an explicit runtime
// configuration, memoized under key.
func (s *Suite) RunConfig(key string, w workload.Workload, cfg core.Config) stats.Run {
	if cfg.FootprintPages == 0 {
		cfg.FootprintPages = int(w.Pages())
	}
	gcfg := s.GPU
	return s.memoRun(w.Name()+"/"+key, func() stats.Run {
		eng := sim.NewEngine()
		rt := core.NewRuntime(eng, cfg)
		g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: s.Trace(w)}, rt)
		g.Launch()
		eng.Run()
		if !g.Done() {
			panic(fmt.Sprintf("exp: %s under %s did not finish", w.Name(), key))
		}
		m := rt.Snapshot()
		m.App = w.Name()
		m.WallTime = eng.Now()
		return m
	})
}

// RunOracle simulates the offline Belady-style upper bound. The bound
// idealizes orchestration as well as knowledge: placements happen in the
// background (Belady's guarantee is about miss counts, so the bound
// should not pay avoidable placement stalls).
func (s *Suite) RunOracle(w workload.Workload) stats.Run {
	cfg := s.config(core.PolicyOracle)
	cfg.AsyncEviction = true
	trace := s.Trace(w)
	future := make([]tier.PageID, len(trace))
	for i, a := range trace {
		future[i] = a.Page
	}
	cfg.Future = future
	return s.RunConfig("oracle", w, cfg)
}

// OracleRow compares GMT-Reuse against the offline bound it
// approximates (§2.1.3 / Belady [8]).
type OracleRow struct {
	App           string
	ReuseSpeedup  float64 // over BaM
	OracleSpeedup float64 // over BaM
	Attained      float64 // fraction of the oracle's gain Reuse attains
	ReuseReads    int64   // demand SSD reads
	OracleReads   int64
}

// OracleGap quantifies how much of the perfect-knowledge headroom
// GMT-Reuse's practical prediction captures.
func OracleGap(s *Suite) ([]OracleRow, *stats.Table) {
	t := stats.NewTable("Oracle study: GMT-Reuse vs Belady-style offline bound (speedup over BaM)",
		"Application", "GMT-Reuse", "GMT-Oracle", "Gain attained")
	var rows []OracleRow
	for _, w := range s.Apps() {
		bam := s.Run(w, core.PolicyBaM)
		reuse := s.Run(w, core.PolicyReuse)
		oracle := s.RunOracle(w)
		r := OracleRow{
			App:           w.Name(),
			ReuseSpeedup:  reuse.SpeedupOver(bam),
			OracleSpeedup: oracle.SpeedupOver(bam),
			ReuseReads:    reuse.SSDReads,
			OracleReads:   oracle.SSDReads,
		}
		if gain := r.OracleSpeedup - 1; gain > 0.01 {
			r.Attained = (r.ReuseSpeedup - 1) / gain
		} else {
			r.Attained = 1
		}
		rows = append(rows, r)
		t.AddRow(r.App, stats.X(r.ReuseSpeedup), stats.X(r.OracleSpeedup), stats.Pct(r.Attained))
	}
	return rows, t
}

// WarmupRow reports early-execution placement quality for pipelined vs
// end-of-sampling regression publication.
type WarmupRow struct {
	App string
	// EarlyHitRatePipelined / EarlyHitRateUnpipelined: Tier-2 hit rate
	// over the first third of the run's accesses.
	EarlyHitRatePipelined   float64
	EarlyHitRateUnpipelined float64
	// Full-run speedups over BaM.
	SpeedupPipelined   float64
	SpeedupUnpipelined float64
}

// RegressionWarmup tests §2.1.3's claim that shipping sample batches to
// the regression "results in better placement for the early part of the
// execution", against the wait-for-all-samples strawman.
func RegressionWarmup(s *Suite) ([]WarmupRow, *stats.Table) {
	t := stats.NewTable("Regression pipelining: early-phase Tier-2 hit rate (first third) and full-run speedup",
		"Application", "Early hits (pipelined)", "Early hits (end-only)",
		"Speedup (pipelined)", "Speedup (end-only)")
	var rows []WarmupRow
	apps := []string{"Srad", "Backprop", "MultiVectorAdd"}
	for _, name := range apps {
		w := appByName(s, name)
		trace := s.Trace(w)
		interval := len(trace) / 30
		if interval < 1 {
			interval = 1
		}
		earlyHitRate := func(unpipelined bool) (float64, stats.Run) {
			cfg := s.config(core.PolicyReuse)
			cfg.UnpipelinedRegression = unpipelined
			cfg.HistorySample = interval
			key := fmt.Sprintf("warmup/%v", unpipelined)
			eng := sim.NewEngine()
			rt := core.NewRuntime(eng, cfg)
			g := gpuNew(s, eng, trace, rt)
			g.Launch()
			eng.Run()
			m := rt.Snapshot()
			m.App = w.Name()
			m.WallTime = eng.Now()
			s.storeResult(w.Name()+"/"+key, m)
			hist := rt.History()
			third := len(hist) / 3
			if third < 1 {
				third = 1
			}
			return hist[third-1].Tier2HitRate(), m
		}
		bam := s.Run(w, core.PolicyBaM)
		pipeEarly, pipeRun := earlyHitRate(false)
		endEarly, endRun := earlyHitRate(true)
		r := WarmupRow{
			App:                     name,
			EarlyHitRatePipelined:   pipeEarly,
			EarlyHitRateUnpipelined: endEarly,
			SpeedupPipelined:        pipeRun.SpeedupOver(bam),
			SpeedupUnpipelined:      endRun.SpeedupOver(bam),
		}
		rows = append(rows, r)
		t.AddRow(r.App, stats.Pct(r.EarlyHitRatePipelined), stats.Pct(r.EarlyHitRateUnpipelined),
			stats.X(r.SpeedupPipelined), stats.X(r.SpeedupUnpipelined))
	}
	return rows, t
}

// gpuNew builds the GPU driver for a raw trace.
func gpuNew(s *Suite, eng *sim.Engine, trace []gpu.Access, mm gpu.MemoryManager) *gpu.GPU {
	return gpu.New(eng, s.GPU, &gpu.SliceStream{Trace: trace}, mm)
}

// PredictorRow compares GMT-Reuse's class predictors on one app.
type PredictorRow struct {
	App string
	// Speedup over BaM and prediction accuracy per predictor name.
	Speedup  map[string]float64
	Accuracy map[string]float64
}

// Predictors evaluated by the ablation.
var Predictors = []core.PredictorKind{
	core.PredictorMarkov, core.PredictorLastClass, core.PredictorStatic,
}

// predictorConfig is the shared builder for one predictor-ablation run;
// the job planner (plan.go) and the driver below must agree on the memo
// key and configuration.
func (s *Suite) predictorConfig(pk core.PredictorKind) (key string, cfg core.Config) {
	cfg = s.config(core.PolicyReuse)
	cfg.Predictor = pk
	return "reuse-pred-" + pk.String(), cfg
}

// PredictorAblation tests §2.1.3's claim that "a simple 2-level history
// suffices for making fairly accurate prediction": the Markov chain
// against a 1-level last-class predictor (which cannot track
// alternating patterns like PageRank's, Fig. 4c) and a learning-free
// static placement.
func PredictorAblation(s *Suite) ([]PredictorRow, *stats.Table) {
	t := stats.NewTable("Predictor ablation: GMT-Reuse speedup over BaM (accuracy) per predictor",
		"Application", "Markov (2-level)", "Last-class (1-level)", "Static")
	var rows []PredictorRow
	for _, w := range s.Apps() {
		bam := s.Run(w, core.PolicyBaM)
		r := PredictorRow{App: w.Name(), Speedup: map[string]float64{}, Accuracy: map[string]float64{}}
		cells := []string{r.App}
		for _, pk := range Predictors {
			key, cfg := s.predictorConfig(pk)
			run := s.RunConfig(key, w, cfg)
			r.Speedup[pk.String()] = run.SpeedupOver(bam)
			r.Accuracy[pk.String()] = run.PredictionAccuracy()
			cells = append(cells, fmt.Sprintf("%s (%s)",
				stats.X(r.Speedup[pk.String()]), stats.Pct(r.Accuracy[pk.String()])))
		}
		rows = append(rows, r)
		t.AddRow(cells...)
	}
	return rows, t
}

// ExtensionRow reports the effect of the future-work extensions on
// GMT-Reuse, per application.
type ExtensionRow struct {
	App string
	// AsyncSpeedup is async-eviction GMT-Reuse over synchronous
	// GMT-Reuse (§5: background orchestration).
	AsyncSpeedup float64
	// PrefetchSpeedup is GMT-Reuse with degree-4 sequential prefetch
	// over plain GMT-Reuse (§2's "When?" discussion).
	PrefetchSpeedup float64
	PrefetchUseful  float64 // fraction of prefetches later demanded
}

// reuseAsyncConfig and reusePrefetchConfig are the shared builders for
// the extension-study runs (same key/config contract as
// predictorConfig).
func (s *Suite) reuseAsyncConfig() (key string, cfg core.Config) {
	cfg = s.config(core.PolicyReuse)
	cfg.AsyncEviction = true
	return "reuse-async", cfg
}

func (s *Suite) reusePrefetchConfig() (key string, cfg core.Config) {
	cfg = s.config(core.PolicyReuse)
	cfg.PrefetchDegree = 4
	return "reuse-prefetch4", cfg
}

// Extensions evaluates the paper's future-work directions.
func Extensions(s *Suite) ([]ExtensionRow, *stats.Table) {
	t := stats.NewTable("Extensions: §5 async eviction and §2 sequential prefetch (speedup over plain GMT-Reuse)",
		"Application", "Async eviction", "Prefetch(4)", "Prefetch useful")
	var rows []ExtensionRow
	for _, w := range s.Apps() {
		base := s.Run(w, core.PolicyReuse)
		asyncKey, async := s.reuseAsyncConfig()
		ar := s.RunConfig(asyncKey, w, async)
		pfKey, pf := s.reusePrefetchConfig()
		pr := s.RunConfig(pfKey, w, pf)
		r := ExtensionRow{
			App:             w.Name(),
			AsyncSpeedup:    ar.SpeedupOver(base),
			PrefetchSpeedup: pr.SpeedupOver(base),
		}
		if pr.Prefetches > 0 {
			r.PrefetchUseful = float64(pr.PrefetchHits) / float64(pr.Prefetches)
		}
		rows = append(rows, r)
		t.AddRow(r.App, stats.X(r.AsyncSpeedup), stats.X(r.PrefetchSpeedup), stats.Pct(r.PrefetchUseful))
	}
	return rows, t
}
