package exp

import (
	"strings"
	"testing"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/workload"
	"github.com/gmtsim/gmt/internal/xfer"
)

func testScale() workload.Scale {
	return workload.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2}
}

// Shared suite: experiments memoize runs, so tests stay fast.
var shared = NewSuite(testScale())

func TestTable1(t *testing.T) {
	rows, table := Table1(shared)
	if len(rows) != 7 || table.Rows() != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	out := table.Render()
	for _, want := range []string{"A100", "Samsung 970", "Gen3 x16", "queue pairs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, table := Table2(shared)
	if len(rows) != 9 || table.Rows() != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	var maxApp string
	var maxIO int64
	for _, r := range rows {
		if r.TotalIOBytes > maxIO {
			maxIO, maxApp = r.TotalIOBytes, r.App
		}
	}
	if maxApp != "Backprop" {
		t.Fatalf("largest I/O = %s, paper says Backprop", maxApp)
	}
	if !strings.Contains(table.Render(), "Backprop") {
		t.Fatal("render missing app rows")
	}
}

func TestFigure4(t *testing.T) {
	rows, _ := Figure4(shared)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Figure 4a: a good linear correlation between VTD and RD.
		if r.Correlation < 0.9 {
			t.Errorf("%s: correlation %.2f < 0.9", r.App, r.Correlation)
		}
		if r.SeriesSampled == 0 {
			t.Errorf("%s: no multi-eviction pages sampled", r.App)
		}
	}
	// Figure 4b: MultiVectorAdd pages repeat the same RRD at every
	// eviction.
	mva := rows[0]
	if frac := float64(mva.ConstantSeries) / float64(mva.SeriesSampled); frac < 0.8 {
		t.Errorf("MultiVectorAdd constant-RRD fraction %.2f < 0.8", frac)
	}
}

func TestFigure6aCrossover(t *testing.T) {
	rows, _ := Figure6a(xfer.DefaultConfig())
	// DMA wins small batches, zero-copy wins large ones, crossover ≈8.
	if rows[0].DMAMicros >= rows[0].ZeroCopy32Micros {
		t.Fatal("DMA should win at 1 page")
	}
	last := rows[len(rows)-1]
	if last.ZeroCopy32Micros >= last.DMAMicros {
		t.Fatal("zero-copy should win at 512 pages")
	}
	for _, r := range rows {
		if r.Pages >= 8 && r.ZeroCopy32Micros > r.DMAMicros {
			t.Fatalf("crossover after 8 pages: at %d pages zc=%d dma=%d",
				r.Pages, r.ZeroCopy32Micros, r.DMAMicros)
		}
	}
}

func TestFigure6bHybrid32NearBest(t *testing.T) {
	rows, _ := Figure6b(xfer.DefaultConfig())
	if len(rows) < 8 {
		t.Fatalf("skew sweep too short: %d", len(rows))
	}
	for _, r := range rows {
		best := r.DMA
		if r.ZeroCopy > best {
			best = r.ZeroCopy
		}
		// Paper: Hybrid-32T does (or is close to) the best across the
		// whole skew range, and never loses to always-DMA.
		if r.Hybrid32 < 0.75*best {
			t.Errorf("skew %.2f: Hybrid-32T %.2f GB/s below 0.75x best %.2f",
				r.Skew, r.Hybrid32, best)
		}
		if r.Hybrid32 < 0.99*r.DMA {
			t.Errorf("skew %.2f: Hybrid-32T %.2f below DMA %.2f", r.Skew, r.Hybrid32, r.DMA)
		}
	}
	// The regimes differ: zero-copy leads at low skew, DMA at high skew.
	lo, hi := rows[0], rows[len(rows)-1]
	if lo.ZeroCopy <= lo.DMA {
		t.Error("at skew 0 zero-copy should beat DMA")
	}
	if hi.DMA <= hi.ZeroCopy {
		t.Error("at skew 1 DMA should beat zero-copy")
	}
	// At skew 0 a full warp makes zero-copy the right call.
	if lo.Hybrid32 < 0.99*lo.ZeroCopy {
		t.Error("at skew 0 Hybrid-32T should match zero-copy")
	}
	// An under-threaded hybrid mispicks at high skew (§2.3: need the
	// whole warp).
	if hi.Hybrid8 >= hi.Hybrid32 {
		t.Errorf("at skew 1 Hybrid-8T (%.2f) should trail Hybrid-32T (%.2f)",
			hi.Hybrid8, hi.Hybrid32)
	}
}

func TestFigure7Biases(t *testing.T) {
	rows, _ := Figure7(shared)
	byApp := map[string]Figure7Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	if r := byApp["Hotspot"]; r.EvictLong < 0.99 {
		t.Errorf("Hotspot Tier-3 eviction bias %.2f, want ≈1.0", r.EvictLong)
	}
	if r := byApp["Srad"]; r.EvictMedium < 0.7 {
		t.Errorf("Srad Tier-2 eviction bias %.2f, want > 0.7", r.EvictMedium)
	}
	if r := byApp["Pathfinder"]; r.PairShort < 0.95 {
		t.Errorf("Pathfinder Tier-1 pair bias %.2f, want > 0.95", r.PairShort)
	}
}

func TestFigure8Headline(t *testing.T) {
	rows, table := Figure8(shared)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	avg := map[string]float64{}
	for _, p := range Policies {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Speedup[p.String()])
		}
		avg[p.String()] = mean(xs)
	}
	// The paper's headline ordering: Reuse (1.5) > Random (1.24) >
	// TierOrder (1.07) > BaM (1.0).
	if !(avg["GMT-Reuse"] > avg["GMT-Random"] && avg["GMT-Random"] > avg["GMT-TierOrder"]) {
		t.Fatalf("policy ordering broken: %v", avg)
	}
	if avg["GMT-Reuse"] < 1.25 || avg["GMT-Reuse"] > 2.0 {
		t.Fatalf("GMT-Reuse average speedup %.2f outside the paper's band (≈1.5)", avg["GMT-Reuse"])
	}
	if avg["GMT-TierOrder"] < 1.0 {
		t.Fatalf("TierOrder average %.2f below 1.0", avg["GMT-TierOrder"])
	}
	// Figure 8b: the 3-tier policies reduce SSD I/O on average.
	for _, p := range Policies {
		var io []float64
		for _, r := range rows {
			io = append(io, r.IORelative[p.String()])
		}
		if m := mean(io); m >= 1.0 {
			t.Fatalf("%v mean relative I/O %.2f >= 1.0", p, m)
		}
	}
	if table.Rows() != 10 { // 9 apps + average row
		t.Fatalf("table rows = %d", table.Rows())
	}
}

func TestFigure8PerAppStories(t *testing.T) {
	rows, _ := Figure8(shared)
	byApp := map[string]Figure8Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// Tier-1-biased, low-reuse apps gain (almost) nothing (§3.3).
	for _, app := range []string{"LavaMD", "Pathfinder"} {
		if sp := byApp[app].Speedup["GMT-Reuse"]; sp < 0.85 || sp > 1.15 {
			t.Errorf("%s: GMT-Reuse speedup %.2f, want ≈1.0", app, sp)
		}
	}
	// Tier-2-friendly apps gain substantially under Reuse.
	for _, app := range []string{"Srad", "Backprop"} {
		if sp := byApp[app].Speedup["GMT-Reuse"]; sp < 1.3 {
			t.Errorf("%s: GMT-Reuse speedup %.2f, want > 1.3", app, sp)
		}
	}
	// Hotspot: 100% Tier-3 RRDs, yet Reuse gains via backfill (§3.3)
	// while TierOrder stays ≈1.0.
	if sp := byApp["Hotspot"].Speedup["GMT-Reuse"]; sp < 1.3 {
		t.Errorf("Hotspot: GMT-Reuse %.2f, want > 1.3 (backfill)", sp)
	}
	if sp := byApp["Hotspot"].Speedup["GMT-TierOrder"]; sp > 1.15 {
		t.Errorf("Hotspot: TierOrder %.2f, want ≈1.0", sp)
	}
}

func TestFigure9Accuracy(t *testing.T) {
	rows, _ := Figure9(shared)
	byApp := map[string]Figure9Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// Strong-history apps predict well; lavaMD has almost no history
	// to predict from (§3.3).
	for _, app := range []string{"Srad", "Hotspot", "Backprop"} {
		if byApp[app].Accuracy < 0.5 {
			t.Errorf("%s accuracy %.2f < 0.5", app, byApp[app].Accuracy)
		}
	}
	if byApp["LavaMD"].Predictions > byApp["Hotspot"].Predictions {
		t.Error("LavaMD scored more predictions than Hotspot")
	}
}

func TestFigure10LookupDiscipline(t *testing.T) {
	rows, _ := Figure10(shared)
	var wasteTO, wasteReuse []float64
	for _, r := range rows {
		wasteTO = append(wasteTO, r.WastefulLookups["GMT-TierOrder"])
		wasteReuse = append(wasteReuse, r.WastefulLookups["GMT-Reuse"])
	}
	// Figure 10a: GMT-Reuse has the fewest unnecessary lookups;
	// TierOrder does quite badly.
	if mean(wasteReuse) >= mean(wasteTO) {
		t.Fatalf("Reuse waste %.2f >= TierOrder waste %.2f", mean(wasteReuse), mean(wasteTO))
	}
}

func TestFigure11LowerButPositive(t *testing.T) {
	rows8, _ := Figure8(shared)
	rows11, _ := Figure11(shared)
	if len(rows11) != 9 {
		t.Fatalf("rows = %d", len(rows11))
	}
	avgAt := func(rows []SensitivityRow) float64 {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Speedup["GMT-Reuse"])
		}
		return mean(xs)
	}
	var base []float64
	for _, r := range rows8 {
		base = append(base, r.Speedup["GMT-Reuse"])
	}
	osf2, osf4 := mean(base), avgAt(rows11)
	// Paper: speedups decrease at OSF 4 (1.5 -> 1.23) but remain
	// considerable.
	if osf4 >= osf2 {
		t.Fatalf("OSF4 average %.2f >= OSF2 average %.2f", osf4, osf2)
	}
	if osf4 < 1.05 {
		t.Fatalf("OSF4 average %.2f collapsed below 1.05", osf4)
	}
}

func TestFigure12RatioTrend(t *testing.T) {
	byRatio, _ := Figure12(shared)
	avg := map[int]float64{}
	for ratio, rows := range byRatio {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Speedup["GMT-Reuse"])
		}
		avg[ratio] = mean(xs)
	}
	// Paper: speedups increase with a larger Tier-2.
	if !(avg[8] > avg[2]) {
		t.Fatalf("ratio trend broken: %v", avg)
	}
	for _, ratio := range []int{2, 4, 8} {
		if avg[ratio] < 1.0 {
			t.Fatalf("ratio %d average %.2f < 1.0", ratio, avg[ratio])
		}
	}
}

func TestFigure13DoubledTier1(t *testing.T) {
	rows, _ := Figure13(shared)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 non-graph apps", len(rows))
	}
	var reuse, tierOrder []float64
	for _, r := range rows {
		reuse = append(reuse, r.Speedup["GMT-Reuse"])
		tierOrder = append(tierOrder, r.Speedup["GMT-TierOrder"])
	}
	// Paper: GMT-Reuse keeps a ≈45% average speedup and beats
	// TierOrder.
	if mean(reuse) < 1.2 {
		t.Fatalf("Reuse average %.2f < 1.2", mean(reuse))
	}
	if mean(reuse) <= mean(tierOrder) {
		t.Fatalf("Reuse (%.2f) did not beat TierOrder (%.2f)", mean(reuse), mean(tierOrder))
	}
}

func TestFigure14HMMGap(t *testing.T) {
	rows, _ := Figure14(shared)
	var hmm, reuse, vsOpt []float64
	for _, r := range rows {
		if r.HMMSpeedup >= 1.0 {
			t.Errorf("%s: HMM at %.2fx BaM, should be below 1.0", r.App, r.HMMSpeedup)
		}
		if r.ReuseSpeedup <= r.HMMSpeedup {
			t.Errorf("%s: Reuse (%.2f) not above HMM (%.2f)", r.App, r.ReuseSpeedup, r.HMMSpeedup)
		}
		hmm = append(hmm, r.HMMSpeedup)
		reuse = append(reuse, r.ReuseSpeedup)
		vsOpt = append(vsOpt, r.ReuseVsOptHMM)
	}
	// Paper: GMT-Reuse ≈4.6x HMM on average, and still ≈1.9x an HMM
	// granted equal hit rates (§3.6).
	gap := mean(reuse) / mean(hmm)
	if gap < 3 {
		t.Fatalf("Reuse/HMM average gap %.2f < 3", gap)
	}
	if mean(vsOpt) < 1.3 {
		t.Fatalf("Reuse vs optimistic HMM %.2f < 1.3", mean(vsOpt))
	}
}

// TestFigure8OrderingScaleInvariant validates the substitution argument
// of DESIGN.md §1: policy decisions depend on capacity ratios, so the
// headline ordering must hold at a different absolute scale.
func TestFigure8OrderingScaleInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("second-scale sweep is slow")
	}
	s := NewSuite(workload.Scale{Tier1Pages: 512, Tier2Pages: 2048, Oversubscription: 2})
	rows, _ := Figure8(s)
	avg := map[string]float64{}
	for _, p := range Policies {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Speedup[p.String()])
		}
		avg[p.String()] = mean(xs)
	}
	if !(avg["GMT-Reuse"] > avg["GMT-Random"] && avg["GMT-Random"] > avg["GMT-TierOrder"]) {
		t.Fatalf("2x scale broke the ordering: %v", avg)
	}
	if avg["GMT-Reuse"] < 1.25 {
		t.Fatalf("2x scale GMT-Reuse average %.2f < 1.25", avg["GMT-Reuse"])
	}
}

func TestFigure8OrderingRobustToSeeds(t *testing.T) {
	// The headline ordering (Reuse > Random > TierOrder on average)
	// must not be an artifact of one RNG seed.
	for _, seed := range []int64{7, 42} {
		s := NewSuite(testScale())
		s.Seed = seed
		rows, _ := Figure8(s)
		avg := map[string]float64{}
		for _, p := range Policies {
			var xs []float64
			for _, r := range rows {
				xs = append(xs, r.Speedup[p.String()])
			}
			avg[p.String()] = mean(xs)
		}
		if !(avg["GMT-Reuse"] > avg["GMT-Random"] && avg["GMT-Random"] > avg["GMT-TierOrder"]) {
			t.Errorf("seed %d: ordering broken: %v", seed, avg)
		}
	}
}

func TestSuiteMemoization(t *testing.T) {
	s := NewSuite(testScale())
	w := s.Apps()[1] // Pathfinder: cheap
	a := s.Run(w, core.PolicyBaM)
	b := s.Run(w, core.PolicyBaM)
	if a != b {
		t.Fatal("memoized results differ")
	}
}

func TestAppByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown app did not panic")
		}
	}()
	appByName(shared, "NoSuchApp")
}
