package gmt

// Config fingerprinting and JSON round-tripping: the serving layer
// (cmd/gmtd, internal/serve) content-addresses results by what they
// were computed from, and exchanges Config/Result as JSON over HTTP.
// The engine is deterministic — identical configs produce byte-identical
// results — so an equal fingerprint is a correctness-preserving cache
// key, not a heuristic.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// policyNames maps each Policy to its canonical String() form; parsing
// also accepts the lowercase short aliases the CLIs use (bam,
// tierorder, random, reuse, hmm, oracle).
var policyNames = []Policy{BaM, TierOrder, Random, Reuse, HMM, Oracle}

// ParsePolicy resolves a policy from its canonical name ("GMT-Reuse"),
// case-insensitively, or from the short CLI alias ("reuse").
func ParsePolicy(s string) (Policy, error) {
	for _, p := range policyNames {
		if strings.EqualFold(s, p.String()) ||
			strings.EqualFold(s, strings.TrimPrefix(p.String(), "GMT-")) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("gmt: unknown policy %q", s)
}

// MarshalJSON encodes the policy as its canonical name, so configs are
// self-describing on the wire and across releases (the integer values
// are an internal ordering, not a stable protocol).
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts the canonical name, a short alias, or (for
// compatibility with hand-written payloads) the bare integer.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, perr := ParsePolicy(s)
		if perr != nil {
			return perr
		}
		*p = parsed
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("gmt: policy must be a name or integer, got %s", data)
	}
	if n < int(BaM) || n > int(Oracle) {
		return fmt.Errorf("gmt: policy %d out of range", n)
	}
	*p = Policy(n)
	return nil
}

// Fingerprint content-addresses the configuration: a hex-encoded
// SHA-256 of the canonical JSON encoding. Two configs with equal
// fingerprints produce byte-identical results for the same workload
// (the simulation is deterministic), which is what makes the daemon's
// result cache sound. Zero-valued and defaulted fields hash
// identically only if the structs are identical — Fingerprint hashes
// the configuration as given, it does not normalize defaults.
func (c Config) Fingerprint() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Config is a plain struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("gmt: marshaling Config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
