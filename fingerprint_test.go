package gmt

import (
	"encoding/json"
	"testing"
)

// TestPolicyJSONRoundTrip: every policy survives Marshal → Unmarshal,
// and the wire form is the canonical name.
func TestPolicyJSONRoundTrip(t *testing.T) {
	for _, p := range []Policy{BaM, TierOrder, Random, Reuse, HMM, Oracle} {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		if string(data) != `"`+p.String()+`"` {
			t.Fatalf("policy %v marshaled to %s, want its canonical name", p, data)
		}
		var back Policy
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != p {
			t.Fatalf("round trip changed %v to %v", p, back)
		}
	}
}

func TestPolicyUnmarshalForms(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{`"GMT-Reuse"`, Reuse},
		{`"reuse"`, Reuse},
		{`"BAM"`, BaM},
		{`"tierorder"`, TierOrder},
		{`3`, Reuse}, // legacy integer form
	}
	for _, c := range cases {
		var p Policy
		if err := json.Unmarshal([]byte(c.in), &p); err != nil {
			t.Fatalf("unmarshal %s: %v", c.in, err)
		}
		if p != c.want {
			t.Fatalf("unmarshal %s = %v, want %v", c.in, p, c.want)
		}
	}
	var p Policy
	if err := json.Unmarshal([]byte(`"belady"`), &p); err == nil {
		t.Fatal("unknown policy name unmarshaled without error")
	}
	if err := json.Unmarshal([]byte(`99`), &p); err == nil {
		t.Fatal("out-of-range policy integer unmarshaled without error")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"bam": BaM, "BaM": BaM, "tierorder": TierOrder, "GMT-TierOrder": TierOrder,
		"random": Random, "reuse": Reuse, "hmm": HMM, "oracle": Oracle,
		"GMT-Oracle": Oracle,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("lru"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
}

// TestConfigJSONRoundTrip: a fully populated Config survives the wire.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Oracle
	cfg.Seed = 42
	cfg.SampleTarget = 512
	cfg.AsyncEviction = true
	cfg.PrefetchDegree = 4
	cfg.HistorySample = 1000
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Fatalf("round trip changed the config:\n got %+v\nwant %+v", back, cfg)
	}
}

// TestResultJSONRoundTrip: Result (including History) survives the wire.
func TestResultJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tier1Pages, cfg.Tier2Pages = 64, 256
	cfg.HistorySample = 500
	var w Workload
	for _, cand := range Suite(Scale{Tier1Pages: 64, Tier2Pages: 256, Oversubscription: 2}) {
		if cand.Name() == "MultiVectorAdd" {
			w = cand
		}
	}
	res := Run(cfg, w)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("Result did not round trip:\n first %s\nsecond %s", data, again)
	}
}

// TestConfigFingerprint: equal configs share a fingerprint; any knob
// change moves it.
func TestConfigFingerprint(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs produced different fingerprints")
	}
	if len(a.Fingerprint()) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", a.Fingerprint())
	}
	b.Seed = 2
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("changing Seed did not change the fingerprint")
	}
	b = DefaultConfig()
	b.Policy = BaM
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("changing Policy did not change the fingerprint")
	}
}
