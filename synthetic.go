package gmt

import "github.com/gmtsim/gmt/internal/workload"

// Synthetic workload constructors for library users: parameterized
// directly rather than sized against a Scale.

// NewStrided returns a workload sweeping pages at a fixed stride for
// the given number of rounds.
func NewStrided(pages, stride int64, rounds int) Workload {
	return wrapped{inner: workload.NewStrided(pages, stride, rounds)}
}

// NewUniformRandom returns a uniformly random workload; writeFrac of
// the accesses are writes.
func NewUniformRandom(pages, accesses int64, writeFrac float64, seed int64) Workload {
	return wrapped{inner: workload.NewUniformRandom(pages, accesses, writeFrac, seed)}
}

// NewPointerChase returns a workload chasing a random single-cycle
// permutation over its pages.
func NewPointerChase(pages int64, rounds int, seed int64) Workload {
	return wrapped{inner: workload.NewPointerChase(pages, rounds, seed)}
}
