// Array programming model: write an out-of-core kernel as element-wise
// loops over virtual arrays (the `bam::array` style interface BaM and
// GMT present to programmers) and let the TraceBuilder emit the
// coalesced page accesses — no manual page math.
//
// The kernel is a damped Jacobi sweep: out[i] = f(in[i-1], in[i], in[i+1]),
// ping-ponging two grids over several iterations separated by kernel
// barriers.
package main

import (
	"fmt"

	"github.com/gmtsim/gmt"
)

func main() {
	const (
		elems = 24_000_000 // 8-byte cells: ~2930 pages per grid
		iters = 4
		step  = 8192 // one page of elements per coalesced warp visit
	)
	tb := gmt.NewTraceBuilder()
	grids := [2]*gmt.Array{
		tb.Array("gridA", elems, 8),
		tb.Array("gridB", elems, 8),
	}
	for it := 0; it < iters; it++ {
		if it > 0 {
			tb.Barrier() // kernel launch boundary
		}
		in, out := grids[it%2], grids[(it+1)%2]
		for i := int64(0); i < elems; i += step {
			if i >= step {
				in.Read(i - step) // west neighbor page
			}
			in.Read(i)
			if i+step < elems {
				in.Read(i + step) // east neighbor page
			}
			out.Write(i)
		}
	}
	w := tb.Workload("jacobi")
	fmt.Printf("built %d coalesced accesses over %d pages (two %d-element grids, %d iterations)\n",
		tb.Len(), tb.Pages(), elems, iters)

	cfg := gmt.DefaultConfig()
	for _, p := range []gmt.Policy{gmt.BaM, gmt.Reuse} {
		cfg.Policy = p
		res := gmt.Run(cfg, w)
		fmt.Printf("  %-10s %12v wall, %6d SSD reads, %5.1f%% Tier-2 hits\n",
			res.Policy, res.WallTime.Round(1000), res.SSDReads, 100*res.Tier2HitRate)
	}
}
