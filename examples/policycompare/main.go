// Policy comparison under growing memory pressure: sweep the
// oversubscription factor for one application and print each policy's
// speedup over BaM — the sensitivity study of the paper's §3.5 as a
// library user would run it.
package main

import (
	"fmt"

	"github.com/gmtsim/gmt"
)

func main() {
	const app = "MultiVectorAdd"
	policies := []gmt.Policy{gmt.TierOrder, gmt.Random, gmt.Reuse}

	fmt.Printf("%s: speedup over BaM vs oversubscription factor\n", app)
	fmt.Printf("%6s", "OSF")
	for _, p := range policies {
		fmt.Printf("  %14s", p)
	}
	fmt.Println()

	for _, osf := range []float64{1.5, 2, 3, 4} {
		scale := gmt.DefaultScale()
		scale.Oversubscription = osf
		var w gmt.Workload
		for _, cand := range gmt.Suite(scale) {
			if cand.Name() == app {
				w = cand
				break
			}
		}
		cfg := gmt.DefaultConfig()
		cfg.Policy = gmt.BaM
		base := gmt.Run(cfg, w)
		fmt.Printf("%6.1f", osf)
		for _, p := range policies {
			cfg.Policy = p
			fmt.Printf("  %13.2fx", gmt.Run(cfg, w).Speedup(base))
		}
		fmt.Println()
	}
	fmt.Println("\nLarger working sets push reuse distances beyond what host memory")
	fmt.Println("can capture, shrinking (but not erasing) the 3-tier advantage (§3.5).")
}
