// Quickstart: run one application under BaM (2-tier) and GMT-Reuse
// (3-tier) and compare.
package main

import (
	"fmt"

	"github.com/gmtsim/gmt"
)

func main() {
	scale := gmt.DefaultScale()

	// Pick Srad — an application with heavy Tier-2-range reuse.
	var srad gmt.Workload
	for _, w := range gmt.Suite(scale) {
		if w.Name() == "Srad" {
			srad = w
			break
		}
	}

	cfg := gmt.DefaultConfig()

	cfg.Policy = gmt.BaM
	bam := gmt.Run(cfg, srad)

	cfg.Policy = gmt.Reuse
	reuse := gmt.Run(cfg, srad)

	fmt.Printf("Srad over %d pages (%d accesses)\n", srad.Pages(), bam.Accesses)
	fmt.Printf("  BaM       : %12v wall, %6d SSD reads\n", bam.WallTime, bam.SSDReads)
	fmt.Printf("  GMT-Reuse : %12v wall, %6d SSD reads, %5.1f%% Tier-2 hit rate\n",
		reuse.WallTime, reuse.SSDReads, 100*reuse.Tier2HitRate)
	fmt.Printf("  speedup   : %.2fx\n", reuse.Speedup(bam))
}
