// Graph analytics out of core: run PageRank, BFS, and SSSP over a
// Kronecker graph whose footprint is twice the combined GPU+host memory,
// under every tiering system the paper evaluates.
//
// This is the scenario the paper's introduction motivates: graph
// workloads with data-dependent, irregular access patterns that
// application-specific prefetching schemes (e.g. G10) cannot handle, and
// that CPU-orchestrated paging (HMM) cannot feed fast enough.
package main

import (
	"fmt"

	"github.com/gmtsim/gmt"
)

func main() {
	scale := gmt.DefaultScale()
	suite := gmt.Suite(scale)

	policies := []gmt.Policy{gmt.BaM, gmt.TierOrder, gmt.Random, gmt.Reuse, gmt.HMM}

	fmt.Printf("%-10s", "app")
	for _, p := range policies {
		fmt.Printf("  %14s", p)
	}
	fmt.Println("   (speedup over BaM)")

	for _, w := range suite {
		switch w.Name() {
		case "PageRank", "BFS", "SSSP":
		default:
			continue
		}
		var base gmt.Result
		fmt.Printf("%-10s", w.Name())
		for _, p := range policies {
			cfg := gmt.DefaultConfig()
			cfg.Policy = p
			res := gmt.Run(cfg, w)
			if p == gmt.BaM {
				base = res
				fmt.Printf("  %12v  ", res.WallTime.Round(1000))
				continue
			}
			fmt.Printf("  %8.2fx (io %2.0f%%)", res.Speedup(base),
				100*float64(res.SSDReads+res.SSDWrites)/float64(base.SSDReads+base.SSDWrites))
		}
		fmt.Println()
	}
	fmt.Println("\nGMT-Reuse serves graph gathers from host memory while BaM re-reads")
	fmt.Println("the SSD and HMM serializes every fault through host CPU handlers.")
}
