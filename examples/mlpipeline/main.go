// ML training out of core: build a custom epoch-style trace with
// RunTrace — forward passes reading layer weights, backward passes
// writing them — and watch dirty-page writeback behavior differ between
// BaM and GMT-Reuse.
//
// This mirrors the paper's Backprop workload (Table 2: the suite's
// largest total I/O) but shows how a user drives the library with their
// own access pattern instead of a canned workload.
package main

import (
	"fmt"

	"github.com/gmtsim/gmt"
)

func main() {
	const (
		tier1  = 512
		tier2  = 2048
		epochs = 8
	)
	// Three weight regions sized like a middle-heavy MLP, totaling
	// twice the combined memory capacity.
	layers := []int64{768, 3584, 768}

	var trace []gmt.Access
	base := make([]int64, len(layers))
	off := int64(0)
	for i, l := range layers {
		base[i] = off
		off += l
	}
	for e := 0; e < epochs; e++ {
		// Forward: read weights layer by layer.
		for i, l := range layers {
			for p := int64(0); p < l; p++ {
				trace = append(trace, gmt.Access{Page: base[i] + p})
			}
		}
		// Backward: update weights in reverse.
		for i := len(layers) - 1; i >= 0; i-- {
			for p := layers[i] - 1; p >= 0; p-- {
				trace = append(trace, gmt.Access{Page: base[i] + p, Write: true})
			}
		}
	}

	cfg := gmt.DefaultConfig()
	cfg.Tier1Pages = tier1
	cfg.Tier2Pages = tier2

	cfg.Policy = gmt.BaM
	bam := gmt.RunTrace(cfg, "training-loop", trace)
	cfg.Policy = gmt.Reuse
	reuse := gmt.RunTrace(cfg, "training-loop", trace)

	fmt.Printf("out-of-core training: %d epochs over %d weight pages (T1=%d, T2=%d)\n",
		epochs, off, tier1, tier2)
	fmt.Printf("  BaM       : %12v, %6d SSD reads, %6d SSD writes\n",
		bam.WallTime, bam.SSDReads, bam.SSDWrites)
	fmt.Printf("  GMT-Reuse : %12v, %6d SSD reads, %6d SSD writes\n",
		reuse.WallTime, reuse.SSDReads, reuse.SSDWrites)
	fmt.Printf("  speedup %.2fx — dirty weight pages parked in host memory between\n",
		reuse.Speedup(bam))
	fmt.Println("  epochs avoid both the SSD read AND the writeback next epoch.")
}
