// Headroom analysis: how close does GMT-Reuse's practical prediction
// get to a Belady-style oracle with perfect future knowledge of YOUR
// access pattern?
//
// This example builds a custom pointer-chasing workload, runs it under
// BaM, GMT-Reuse, and the offline oracle, and reports how much of the
// perfect-knowledge gain the online predictor attains.
package main

import (
	"fmt"

	"github.com/gmtsim/gmt"
)

func main() {
	// A pointer chase over a cycle that fits GPU+host memory but not
	// GPU memory alone — data-dependent accesses with long, perfectly
	// periodic reuse.
	const pages = 3500 // Tier-1 = 1024, Tier-1+Tier-2 = 5120
	chase := gmt.NewPointerChase(pages, 4, 11)

	cfg := gmt.DefaultConfig()
	run := func(p gmt.Policy) gmt.Result {
		cfg.Policy = p
		return gmt.Run(cfg, chase)
	}
	bam := run(gmt.BaM)
	reuse := run(gmt.Reuse)
	oracle := run(gmt.Oracle)

	fmt.Printf("pointer chase over %d pages, 4 rounds (%d accesses)\n\n", pages, bam.Accesses)
	fmt.Printf("%-12s %14s %10s %12s\n", "system", "wall time", "SSD reads", "T2 hit rate")
	for _, r := range []gmt.Result{bam, reuse, oracle} {
		fmt.Printf("%-12s %14v %10d %11.1f%%\n", r.Policy, r.WallTime.Round(1000), r.SSDReads, 100*r.Tier2HitRate)
	}

	rGain := reuse.Speedup(bam) - 1
	oGain := oracle.Speedup(bam) - 1
	fmt.Printf("\nGMT-Reuse: %.2fx BaM;  oracle bound: %.2fx BaM", reuse.Speedup(bam), oracle.Speedup(bam))
	if oGain > 0 {
		fmt.Printf("  ->  %.0f%% of the perfect-knowledge gain attained\n", 100*rGain/oGain)
	} else {
		fmt.Println()
	}
	fmt.Printf("prediction accuracy: %.1f%% over %d scored evictions\n",
		100*reuse.PredictionAccuracy, reuse.Predictions)
}
