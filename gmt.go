// Package gmt is the public API of the GMT reproduction: a
// GPU-orchestrated three-tier memory runtime (GPU memory, host memory,
// NVMe SSD) evaluated on a deterministic discrete-event simulation of
// the paper's platform.
//
// The package lets a user run any of the paper's placement policies
// (BaM's 2-tier baseline, GMT-TierOrder, GMT-Random, GMT-Reuse) and the
// CPU-orchestrated HMM comparator over the paper's nine applications —
// or over custom page-access traces — and inspect wall time, hit
// breakdowns, SSD traffic, and predictor accuracy.
//
//	cfg := gmt.DefaultConfig()
//	cfg.Policy = gmt.Reuse
//	for _, w := range gmt.Suite(gmt.DefaultScale()) {
//		res := gmt.Run(cfg, w)
//		fmt.Println(w.Name(), res.WallTime, res.Tier2HitRate)
//	}
//
// Internals (the simulation substrates, policies, and experiment
// drivers) live under internal/; see DESIGN.md for the system inventory.
package gmt

import (
	"fmt"
	"io"
	"time"

	"github.com/gmtsim/gmt/internal/baseline"
	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
	"github.com/gmtsim/gmt/internal/workload"
)

// Policy selects the memory-tiering system to simulate.
type Policy int

// The systems evaluated in the paper.
const (
	// BaM is the 2-tier GPU-orchestrated baseline (GPU memory + SSD).
	BaM Policy = iota
	// TierOrder places every Tier-1 victim into host memory (§2.1.1).
	TierOrder
	// Random coin-flips victims between host memory and SSD (§2.1.2).
	Random
	// Reuse is GMT-Reuse: RRD-predicted placement (§2.1.3).
	Reuse
	// HMM is the CPU-orchestrated 3-tier comparator (§3.6).
	HMM
	// Oracle is the offline Belady-style upper bound GMT-Reuse
	// approximates: victim selection and placement with perfect future
	// knowledge of the trace.
	Oracle
)

func (p Policy) String() string {
	switch p {
	case BaM:
		return "BaM"
	case TierOrder:
		return "GMT-TierOrder"
	case Random:
		return "GMT-Random"
	case Reuse:
		return "GMT-Reuse"
	case HMM:
		return "HMM"
	case Oracle:
		return "GMT-Oracle"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Access is one coalesced 64 KiB-page reference issued by a warp.
type Access struct {
	Page  int64
	Write bool
}

// Workload supplies a named, deterministic page-access trace.
type Workload interface {
	Name() string
	// Pages is the dataset footprint in pages.
	Pages() int64
	// Trace returns the full access sequence.
	Trace() []Access
}

// Scale sizes workloads relative to the memory tiers, in 64 KiB pages.
type Scale struct {
	Tier1Pages       int
	Tier2Pages       int
	Oversubscription float64
	// DatasetSeed seeds dataset synthesis (Kronecker graph generation,
	// the KV-serving request mix). Zero means the historical default
	// seed 42, so existing scales produce byte-identical datasets.
	DatasetSeed int64
}

// DefaultScale is the paper's default configuration (Tier-2 = 4x
// Tier-1, oversubscription factor 2) at 1/256 of the paper's absolute
// capacities.
func DefaultScale() Scale {
	s := workload.DefaultScale()
	return Scale{Tier1Pages: s.Tier1Pages, Tier2Pages: s.Tier2Pages, Oversubscription: s.Oversubscription}
}

func (s Scale) internal() workload.Scale {
	return workload.Scale{
		Tier1Pages:       s.Tier1Pages,
		Tier2Pages:       s.Tier2Pages,
		Oversubscription: s.Oversubscription,
		DatasetSeed:      s.DatasetSeed,
	}
}

// Config parameterizes a simulation run.
type Config struct {
	Policy Policy

	// Tier capacities in 64 KiB pages.
	Tier1Pages int
	Tier2Pages int

	// Warps is the number of concurrently executing warps;
	// ComputePerAccess is each warp's busy time per coalesced access.
	Warps            int
	ComputePerAccess time.Duration

	// Seed drives all randomized decisions.
	Seed int64

	// GMT-Reuse knobs (ignored by other policies): the VTD sampling
	// pipeline and §2.2's backfill heuristic. Zero values take the
	// paper defaults; set BackfillThreshold above 1 to disable the
	// heuristic.
	SampleTarget      int
	SampleBatch       int
	BackfillThreshold float64

	// AsyncEviction performs Tier-1 -> Tier-2 placements in the
	// background (the paper's §5 future-work direction).
	AsyncEviction bool
	// PrefetchDegree enables sequential prefetch of up to this many
	// successor pages on each demand SSD fill (never evicting for
	// them).
	PrefetchDegree int
	// HistorySample, when positive, records a HistoryPoint every that
	// many accesses into Result.History (GMT policies only). Useful
	// for warmup curves.
	HistorySample int

	// Tier2Policy selects the Tier-2 replacement policy by name
	// ("clock", "fifo", "lru-2", "2q"). Empty keeps the historical
	// per-policy defaults. Ignored by BaM (no Tier-2) and HMM (the
	// comparator manages its own page cache). Run panics on an unknown
	// name; validate external input with tier.ParseStorePolicy via the
	// serving API instead.
	Tier2Policy string

	// TrackTier2Reuse records time-to-first-reuse for every Tier-2
	// reload and reports the percentiles in Result.Tier2ReuseP50/P99.
	TrackTier2Reuse bool
}

// HistoryPoint is a cumulative metrics snapshot partway through a run.
type HistoryPoint struct {
	Accesses     int64
	Tier1Hits    int64
	Tier2Hits    int64
	SSDReads     int64
	Tier2HitRate float64
}

// DefaultConfig mirrors the paper's default platform at DefaultScale.
func DefaultConfig() Config {
	s := DefaultScale()
	g := gpu.DefaultConfig()
	return Config{
		Policy:           Reuse,
		Tier1Pages:       s.Tier1Pages,
		Tier2Pages:       s.Tier2Pages,
		Warps:            g.Warps,
		ComputePerAccess: time.Duration(g.ComputePerAccess),
		Seed:             1,
	}
}

// Result reports a run's outcome. WallTime is virtual (simulated) time.
type Result struct {
	App    string
	Policy string

	WallTime time.Duration

	Accesses      int64
	Tier1Hits     int64
	Tier2Hits     int64
	SSDFills      int64
	InFlightJoins int64

	Tier2Lookups    int64
	WastefulLookups int64

	EvictionsToTier2 int64
	EvictionsToSSD   int64
	EvictionsDropped int64
	BackfillPlaced   int64

	SSDReads, SSDWrites int64
	PagesToHost         int64
	PagesToGPU          int64

	Predictions        int64
	PredictionAccuracy float64
	Tier2HitRate       float64

	// Tier-2 time-to-first-reuse percentiles (virtual time), populated
	// only when Config.TrackTier2Reuse is set and at least one Tier-2
	// reload occurred; Tier2ReuseCount is the sample count.
	Tier2ReuseP50   time.Duration
	Tier2ReuseP99   time.Duration
	Tier2ReuseCount int64

	// History holds periodic snapshots when Config.HistorySample is
	// set (empty otherwise).
	History []HistoryPoint
}

func fromStats(m stats.Run) Result {
	return Result{
		App:                m.App,
		Policy:             m.Policy,
		WallTime:           time.Duration(m.WallTime),
		Accesses:           m.Accesses,
		Tier1Hits:          m.Tier1Hits,
		Tier2Hits:          m.Tier2Hits,
		SSDFills:           m.SSDFills,
		InFlightJoins:      m.InFlightJoins,
		Tier2Lookups:       m.Tier2Lookups,
		WastefulLookups:    m.WastefulLookups,
		EvictionsToTier2:   m.EvictionsToTier2,
		EvictionsToSSD:     m.EvictionsToSSD,
		EvictionsDropped:   m.EvictionsDropped,
		BackfillPlaced:     m.BackfillPlaced,
		SSDReads:           m.SSDReads,
		SSDWrites:          m.SSDWrites,
		PagesToHost:        m.PagesToHost,
		PagesToGPU:         m.PagesToGPU,
		Predictions:        m.Predictions,
		PredictionAccuracy: m.PredictionAccuracy(),
		Tier2HitRate:       m.Tier2HitRate(),
		Tier2ReuseP50:      time.Duration(m.Tier2ReuseP50),
		Tier2ReuseP99:      time.Duration(m.Tier2ReuseP99),
		Tier2ReuseCount:    m.Tier2ReuseCount,
	}
}

// Speedup reports base's wall time over r's: how much faster r is.
func (r Result) Speedup(base Result) float64 {
	if r.WallTime == 0 {
		return 0
	}
	return float64(base.WallTime) / float64(r.WallTime)
}

// Run simulates workload w under cfg.
//
//gmt:blocking
func Run(cfg Config, w Workload) Result {
	return RunTrace(cfg, w.Name(), w.Trace())
}

// RunTrace simulates a custom access trace under cfg.
func RunTrace(cfg Config, name string, trace []Access) Result {
	internalTrace := make([]gpu.Access, len(trace))
	footprint := 0
	for i, a := range trace {
		internalTrace[i] = gpu.Access{Page: tier.PageID(a.Page), Write: a.Write}
		if int(a.Page)+1 > footprint {
			footprint = int(a.Page) + 1
		}
	}
	gcfg := gpu.DefaultConfig()
	if cfg.Warps > 0 {
		gcfg.Warps = cfg.Warps
	}
	if cfg.ComputePerAccess > 0 {
		gcfg.ComputePerAccess = sim.Time(cfg.ComputePerAccess)
	}
	eng := sim.NewEngine()
	var mm gpu.MemoryManager
	var snapshot func() stats.Run
	var history func() []stats.Run
	if cfg.Policy == HMM {
		h := baseline.DefaultHMMConfig()
		h.Tier1Pages = cfg.Tier1Pages
		h.PageCachePages = cfg.Tier2Pages
		h.Seed = cfg.Seed
		hm := baseline.NewHMM(eng, h)
		mm, snapshot = hm, hm.Snapshot
	} else {
		c := core.DefaultConfig()
		c.Policy = internalPolicy(cfg.Policy)
		c.Tier1Pages = cfg.Tier1Pages
		c.Tier2Pages = cfg.Tier2Pages
		c.Seed = cfg.Seed
		c.AsyncEviction = cfg.AsyncEviction
		c.PrefetchDegree = cfg.PrefetchDegree
		c.HistorySample = cfg.HistorySample
		c.TrackTier2Reuse = cfg.TrackTier2Reuse
		if cfg.Tier2Policy != "" {
			p, err := tier.ParseStorePolicy(cfg.Tier2Policy)
			if err != nil {
				panic("gmt: " + err.Error())
			}
			c.Tier2Policy = p
		}
		// Presize the runtime's dense page directory to the trace's
		// page-ID bound so the per-access path never grows it.
		c.FootprintPages = footprint
		if cfg.SampleTarget > 0 {
			c.SampleTarget = cfg.SampleTarget
		}
		if cfg.SampleBatch > 0 {
			c.SampleBatch = cfg.SampleBatch
		}
		if cfg.BackfillThreshold > 0 {
			c.BackfillThreshold = cfg.BackfillThreshold
		}
		if cfg.Policy == Oracle {
			// The oracle's future must match the stream the runtime
			// sees: barrier tokens are handled by the GPU and never
			// reach the memory manager.
			future := make([]tier.PageID, 0, len(trace))
			for _, a := range trace {
				if a.Page >= 0 {
					future = append(future, tier.PageID(a.Page))
				}
			}
			c.Future = future
		}
		rt := core.NewRuntime(eng, c)
		mm, snapshot, history = rt, rt.Snapshot, rt.History
	}
	g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: internalTrace}, mm)
	g.Launch()
	eng.Run()
	if !g.Done() {
		panic("gmt: kernel did not finish (deadlocked configuration)")
	}
	m := snapshot()
	m.App = name
	m.WallTime = eng.Now()
	res := fromStats(m)
	if history != nil {
		for _, h := range history() {
			res.History = append(res.History, HistoryPoint{
				Accesses:     h.Accesses,
				Tier1Hits:    h.Tier1Hits,
				Tier2Hits:    h.Tier2Hits,
				SSDReads:     h.SSDReads,
				Tier2HitRate: h.Tier2HitRate(),
			})
		}
	}
	return res
}

func internalPolicy(p Policy) core.PolicyKind {
	switch p {
	case BaM:
		return core.PolicyBaM
	case TierOrder:
		return core.PolicyTierOrder
	case Random:
		return core.PolicyRandom
	case Reuse:
		return core.PolicyReuse
	case Oracle:
		return core.PolicyOracle
	default:
		panic(fmt.Sprintf("gmt: policy %v has no core runtime", p))
	}
}

// wrapped adapts an internal workload to the public interface.
type wrapped struct {
	inner workload.Workload
}

func (w wrapped) Name() string { return w.inner.Name() }
func (w wrapped) Pages() int64 { return w.inner.Pages() }
func (w wrapped) Trace() []Access {
	tr := w.inner.Trace()
	out := make([]Access, len(tr))
	for i, a := range tr {
		out[i] = Access{Page: int64(a.Page), Write: a.Write}
	}
	return out
}

// Suite builds the paper's nine applications (Table 2) at the given
// scale, in Table 2 order.
func Suite(s Scale) []Workload {
	ws := workload.All(s.internal())
	out := make([]Workload, len(ws))
	for i, w := range ws {
		out[i] = wrapped{inner: w}
	}
	return out
}

// KVServe builds the tiered KV-cache serving workload at the given
// scale: an open-loop LLM-serving trace where pages are KV blocks (see
// internal/workload's generator). It is not part of Suite's nine
// applications; the serving-policy experiment requests it explicitly.
func KVServe(s Scale) Workload {
	return wrapped{inner: workload.NewKVServe(s.internal())}
}

// WorkloadNames lists the suite's application names in Table 2 order.
func WorkloadNames() []string {
	out := make([]string, len(workload.Names))
	copy(out, workload.Names)
	return out
}

// Characteristics summarizes a workload the way the paper's Table 2 and
// Figure 7 do.
type Characteristics struct {
	App           string
	Accesses      int64
	DistinctPages int64
	ReusePct      float64
	// Fractions of eviction-time Remaining Reuse Distances falling in
	// each tier's range.
	EvictTier1, EvictTier2, EvictTier3 float64
}

// WriteTrace serializes a trace in the line-oriented gmt-trace format
// ("R <page>" / "W <page>" lines under a "# gmt-trace v1" header).
func WriteTrace(w io.Writer, trace []Access) error {
	internal := make([]gpu.Access, len(trace))
	for i, a := range trace {
		internal[i] = gpu.Access{Page: tier.PageID(a.Page), Write: a.Write}
	}
	return workload.WriteTrace(w, internal)
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Access, error) {
	internal, err := workload.ReadTrace(r)
	if err != nil {
		return nil, err
	}
	out := make([]Access, len(internal))
	for i, a := range internal {
		out[i] = Access{Page: int64(a.Page), Write: a.Write}
	}
	return out, nil
}

// Analyze computes workload characteristics against a scale.
func Analyze(w Workload, s Scale) Characteristics {
	tr := w.Trace()
	internalTrace := make([]gpu.Access, len(tr))
	for i, a := range tr {
		internalTrace[i] = gpu.Access{Page: tier.PageID(a.Page), Write: a.Write}
	}
	a := workload.Analyze(w.Name(), internalTrace, s.internal(), 64*1024, 0)
	c := Characteristics{
		App:           w.Name(),
		Accesses:      a.Accesses,
		DistinctPages: a.DistinctPages,
		ReusePct:      a.ReusePct(),
	}
	c.EvictTier1, c.EvictTier2, c.EvictTier3 = a.EvictFractions()
	return c
}
