package gmt

import (
	"testing"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/stats"
	"github.com/gmtsim/gmt/internal/tier"
)

// asyncRuntime hides core.Runtime's AccessSync so the GPU falls back to
// the classic callback path. Driving the same workload through both
// faces of the same runtime is the full-stack form of the fast-path
// equivalence argument (HACKING.md, "Scheduler determinism contract"):
// the inline hit streak must be observationally identical to the queued
// continuation events it replaces.
type asyncRuntime struct{ rt *core.Runtime }

func (a asyncRuntime) Access(ac gpu.Access, done func()) { a.rt.Access(ac, done) }

// scalarRuntime hides AccessSyncBatch but keeps AccessSync, so the GPU
// uses the per-access fast path without batched hit replay. Batch replay
// must be observationally identical to the scalar fast path it batches.
type scalarRuntime struct{ rt *core.Runtime }

func (s scalarRuntime) Access(ac gpu.Access, done func()) { s.rt.Access(ac, done) }
func (s scalarRuntime) AccessSync(ac gpu.Access, done func()) bool {
	return s.rt.AccessSync(ac, done)
}

// fastPathTrace mixes Tier-1 hits, capacity misses, writes, and
// kernel-wide barriers over a footprint twice the Tier-1 size.
func fastPathTrace(n int) []gpu.Access {
	tr := make([]gpu.Access, 0, n+n/200)
	for i := 0; i < n; i++ {
		tr = append(tr, gpu.Access{
			Page:  tier.PageID(i * 7919 % 512),
			Write: i%13 == 0,
		})
		if (i+1)%200 == 0 {
			tr = append(tr, gpu.Barrier)
		}
	}
	return tr
}

// TestFastPathMatchesQueuedPath runs every policy's full runtime stack
// three ways — batched hit replay, scalar fast path, and the classic
// queued callback path; wall time and the entire metrics snapshot must
// be identical across all three.
func TestFastPathMatchesQueuedPath(t *testing.T) {
	for _, pol := range []core.PolicyKind{core.PolicyBaM, core.PolicyTierOrder, core.PolicyReuse} {
		run := func(mode string) (sim.Time, stats.Run) {
			eng := sim.NewEngine()
			cfg := core.DefaultConfig()
			cfg.Policy = pol
			cfg.Tier1Pages = 256
			cfg.FootprintPages = 512
			rt := core.NewRuntime(eng, cfg)
			var mm gpu.MemoryManager = rt
			switch mode {
			case "queued":
				mm = asyncRuntime{rt}
			case "scalar":
				mm = scalarRuntime{rt}
			}
			gcfg := gpu.DefaultConfig()
			gcfg.Warps = 32
			g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: fastPathTrace(4000)}, mm)
			g.Launch()
			eng.Run()
			if !g.Done() {
				t.Fatalf("%v/%s: kernel did not finish", pol, mode)
			}
			return eng.Now(), rt.Snapshot()
		}
		bnow, bm := run("batch")
		for _, mode := range []string{"scalar", "queued"} {
			mnow, mm := run(mode)
			if bnow != mnow {
				t.Errorf("%v: wall time: batch %d, %s %d", pol, bnow, mode, mnow)
			}
			if bm != mm {
				t.Errorf("%v: metrics diverged:\nbatch: %+v\n%s: %+v", pol, bm, mode, mm)
			}
		}
	}
}
