package gmt

import "fmt"

// TraceBuilder is the array-backed programming model of BaM-style
// systems (`bam::array`): declare virtual arrays over the tiered
// hierarchy, write ordinary element-wise loops against them, and the
// builder lays the arrays out in page space and emits the coalesced
// page-access trace a GPU kernel would generate.
//
//	tb := gmt.NewTraceBuilder(8) // 8-byte elements per page slot unit
//	in := tb.Array("in", 1<<20, 8)
//	out := tb.Array("out", 1<<20, 8)
//	for i := int64(0); i < in.Elems(); i++ {
//		in.Read(i)
//		out.Write(i)
//	}
//	res := gmt.RunTrace(cfg, "copy", tb.Trace())
type TraceBuilder struct {
	pageSize int64
	nextPage int64
	arrays   []*Array
	trace    []Access
}

// NewTraceBuilder returns a builder over 64 KiB pages.
func NewTraceBuilder() *TraceBuilder {
	return &TraceBuilder{pageSize: 64 * 1024}
}

// Array declares a virtual array of elems elements of elemBytes each,
// page-aligned after the previously declared arrays.
func (tb *TraceBuilder) Array(name string, elems, elemBytes int64) *Array {
	if elems <= 0 || elemBytes <= 0 {
		panic("gmt: array dimensions must be positive")
	}
	if elemBytes > tb.pageSize {
		panic("gmt: element larger than a page")
	}
	perPage := tb.pageSize / elemBytes
	pages := (elems + perPage - 1) / perPage
	a := &Array{
		tb:       tb,
		name:     name,
		elems:    elems,
		perPage:  perPage,
		base:     tb.nextPage,
		pages:    pages,
		lastPage: -1,
	}
	tb.nextPage += pages
	tb.arrays = append(tb.arrays, a)
	return a
}

// Barrier emits a kernel-wide synchronization point: every warp must
// finish the preceding accesses before any proceeds (a kernel-launch
// boundary).
func (tb *TraceBuilder) Barrier() {
	tb.trace = append(tb.trace, Access{Page: int64(barrierPage)})
	for _, a := range tb.arrays {
		a.lastPage = -1 // hardware cursors don't survive kernel launches
	}
}

// barrierPage mirrors gpu.BarrierPage without exposing internal types.
const barrierPage = -1

// Pages reports the total footprint declared so far.
func (tb *TraceBuilder) Pages() int64 { return tb.nextPage }

// Len reports the number of accesses emitted so far.
func (tb *TraceBuilder) Len() int { return len(tb.trace) }

// Trace returns a copy of the accumulated access trace.
func (tb *TraceBuilder) Trace() []Access {
	out := make([]Access, len(tb.trace))
	copy(out, tb.trace)
	return out
}

// Workload wraps the accumulated trace as a named Workload.
func (tb *TraceBuilder) Workload(name string) Workload {
	return &builtWorkload{name: name, pages: tb.Pages(), trace: tb.Trace()}
}

type builtWorkload struct {
	name  string
	pages int64
	trace []Access
}

func (w *builtWorkload) Name() string    { return w.name }
func (w *builtWorkload) Pages() int64    { return w.pages }
func (w *builtWorkload) Trace() []Access { return w.trace }

// Array is a virtual array living in the tiered address space.
type Array struct {
	tb      *TraceBuilder
	name    string
	elems   int64
	perPage int64
	base    int64
	pages   int64
	// lastPage coalesces consecutive same-page touches, like a warp's
	// registers and the L2 absorbing repeat accesses to the page being
	// streamed.
	lastPage int64
}

// Name reports the array's name.
func (a *Array) Name() string { return a.name }

// Elems reports the element count.
func (a *Array) Elems() int64 { return a.elems }

// PageOf reports the page backing element i.
func (a *Array) PageOf(i int64) int64 {
	if i < 0 || i >= a.elems {
		panic(fmt.Sprintf("gmt: %s[%d] out of range [0,%d)", a.name, i, a.elems))
	}
	return a.base + i/a.perPage
}

// Read records a read of element i, coalescing consecutive touches of
// the same page.
func (a *Array) Read(i int64) { a.touch(i, false, false) }

// Write records a write of element i.
func (a *Array) Write(i int64) { a.touch(i, true, false) }

// Gather records a data-dependent read of element i that cannot
// coalesce with the array's sequential cursor (a random access by a
// different lane).
func (a *Array) Gather(i int64) { a.touch(i, false, true) }

func (a *Array) touch(i int64, write, gather bool) {
	p := a.PageOf(i)
	if !gather && !write && p == a.lastPage {
		return
	}
	a.lastPage = p
	a.tb.trace = append(a.tb.trace, Access{Page: p, Write: write})
}

// ReadRange reads elements [lo, hi) sequentially (one access per page
// crossed).
func (a *Array) ReadRange(lo, hi int64) {
	for p := a.PageOf(lo); ; p++ {
		a.lastPage = p
		a.tb.trace = append(a.tb.trace, Access{Page: p})
		if hi <= 0 || p >= a.PageOf(hi-1) {
			return
		}
	}
}

// WriteRange writes elements [lo, hi) sequentially.
func (a *Array) WriteRange(lo, hi int64) {
	for p := a.PageOf(lo); ; p++ {
		a.lastPage = p
		a.tb.trace = append(a.tb.trace, Access{Page: p, Write: true})
		if hi <= 0 || p >= a.PageOf(hi-1) {
			return
		}
	}
}
