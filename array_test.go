package gmt

import "testing"

func TestTraceBuilderLayout(t *testing.T) {
	tb := NewTraceBuilder()
	a := tb.Array("a", 8192, 8) // 8192 elements x 8B = 1 page
	b := tb.Array("b", 8193, 8) // spills into a second page
	if tb.Pages() != 3 {
		t.Fatalf("pages = %d, want 3", tb.Pages())
	}
	if a.PageOf(0) != 0 || a.PageOf(8191) != 0 {
		t.Fatal("array a spans more than its page")
	}
	if b.PageOf(0) != 1 || b.PageOf(8192) != 2 {
		t.Fatalf("array b pages = %d,%d", b.PageOf(0), b.PageOf(8192))
	}
}

func TestArraySequentialCoalescing(t *testing.T) {
	tb := NewTraceBuilder()
	a := tb.Array("a", 4*8192, 8) // 4 pages
	for i := int64(0); i < a.Elems(); i++ {
		a.Read(i)
	}
	// 32768 element reads coalesce into 4 page accesses.
	if tb.Len() != 4 {
		t.Fatalf("accesses = %d, want 4", tb.Len())
	}
}

func TestArrayWritesAndGathersDoNotCoalesce(t *testing.T) {
	tb := NewTraceBuilder()
	a := tb.Array("a", 8192, 8)
	a.Read(0)
	a.Read(1)   // coalesced away
	a.Gather(2) // same page, but a gather always emits
	a.Write(3)  // writes always emit
	if tb.Len() != 3 {
		t.Fatalf("accesses = %d, want 3: %v", tb.Len(), tb.Trace())
	}
	tr := tb.Trace()
	if !tr[2].Write {
		t.Fatal("write access not marked")
	}
}

func TestArrayRanges(t *testing.T) {
	tb := NewTraceBuilder()
	a := tb.Array("a", 3*8192, 8)
	a.ReadRange(0, a.Elems())
	if tb.Len() != 3 {
		t.Fatalf("range read accesses = %d, want 3", tb.Len())
	}
	a.WriteRange(8192, 2*8192)
	tr := tb.Trace()
	if tr[len(tr)-1].Page != a.PageOf(2*8192-1) || !tr[len(tr)-1].Write {
		t.Fatalf("range write wrong: %+v", tr[len(tr)-1])
	}
}

func TestBuilderBarrierResetsCursors(t *testing.T) {
	tb := NewTraceBuilder()
	a := tb.Array("a", 8192, 8)
	a.Read(0)
	tb.Barrier()
	a.Read(1) // same page, but cursors reset across kernel launches
	tr := tb.Trace()
	if len(tr) != 3 || tr[1].Page != -1 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestBuilderWorkloadRuns(t *testing.T) {
	// A stencil written against the array API: grid slightly larger
	// than Tier-1+Tier-2 can hold, iterated with barriers.
	tb := NewTraceBuilder()
	const pages = 1500
	grid := tb.Array("grid", pages*8192, 8)
	for it := 0; it < 4; it++ {
		if it > 0 {
			tb.Barrier()
		}
		for p := int64(0); p < pages; p++ {
			grid.Write(p * 8192)
		}
	}
	cfg := testConfig(Reuse)
	cfg.Tier1Pages = 64
	cfg.Tier2Pages = 512
	res := Run(cfg, tb.Workload("stencil"))
	if res.Accesses != 4*pages {
		t.Fatalf("accesses = %d, want %d", res.Accesses, 4*pages)
	}
	bam := cfg
	bam.Policy = BaM
	if res.WallTime >= Run(bam, tb.Workload("stencil")).WallTime {
		t.Fatal("Reuse not faster than BaM on the built workload")
	}
}

func TestArrayBoundsPanic(t *testing.T) {
	tb := NewTraceBuilder()
	a := tb.Array("a", 10, 8)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	a.Read(10)
}

func TestArrayValidation(t *testing.T) {
	tb := NewTraceBuilder()
	for name, fn := range map[string]func(){
		"zero elems": func() { tb.Array("x", 0, 8) },
		"huge elem":  func() { tb.Array("x", 1, 1<<20) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
