package gmt

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablations of GMT's design choices. Each
// benchmark regenerates its experiment and reports the headline numbers
// as custom metrics (e.g. reuse_speedup_x), so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result set. Benchmarks run at 1/4 of the
// default experiment scale to keep the full sweep to a few minutes; the
// gmtbench command runs the same drivers at any scale.

import (
	"context"
	"runtime"
	"testing"

	"github.com/gmtsim/gmt/internal/core"
	"github.com/gmtsim/gmt/internal/exp"
	"github.com/gmtsim/gmt/internal/gpu"
	"github.com/gmtsim/gmt/internal/invariant"
	"github.com/gmtsim/gmt/internal/raceflag"
	"github.com/gmtsim/gmt/internal/sim"
	"github.com/gmtsim/gmt/internal/tier"
	"github.com/gmtsim/gmt/internal/workload"
	"github.com/gmtsim/gmt/internal/xfer"
)

// BenchmarkEngineEventRetention is the event-closure retention
// regression: eventHeap.Pop used to shrink the heap without zeroing the
// vacated slot, keeping every dispatched closure — and the buffers it
// captured — reachable from the backing array for the engine's
// lifetime. The retained_MB metric measures live heap after a full run
// with the engine still referenced; pre-fix it scales with the total
// event count (~64 MB here), post-fix it stays near zero.
func BenchmarkEngineEventRetention(b *testing.B) {
	const events = 1024
	const payload = 64 * 1024
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		for j := 0; j < events; j++ {
			buf := make([]byte, payload)
			eng.At(sim.Time(j+1), func() { buf[0]++ })
		}
		eng.Run()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.ReportMetric(float64(ms.HeapAlloc)/1e6, "retained_MB")
		runtime.KeepAlive(eng)
	}
}

// BenchmarkParallelPrewarm runs the Figure 8 sweep through the parallel
// prewarmer and reports how many simulations the pool executed; the
// rendered figure afterwards must be served entirely from the memo.
func BenchmarkParallelPrewarm(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rep, err := exp.Prewarm(context.Background(), s, []string{"fig8"}, workers, nil)
		if err != nil {
			b.Fatalf("prewarm failed: %v", err)
		}
		reportFig8(b, s)
		b.ReportMetric(float64(rep.Sims), "prewarm_sims")
		b.ReportMetric(float64(rep.JobsPlanned), "prewarm_jobs")
	}
}

// BenchmarkSingleRun measures one complete Figure 8-scale simulation —
// workload generation excluded, everything else (engine, runtime, GPU,
// devices) included. allocs/op here is the whole-run allocation budget
// the hot-path work keeps bounded: with pooled events and dense
// directories it scales with the footprint (arena chunks, device
// buffers), not with the access count.
func BenchmarkSingleRun(b *testing.B) {
	scale := benchScale()
	trace := workload.NewMultiVectorAdd(scale).Trace()
	cfg := core.DefaultConfig()
	cfg.Policy = core.PolicyReuse
	cfg.Tier1Pages = scale.Tier1Pages
	cfg.Tier2Pages = scale.Tier2Pages
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCore(cfg, trace)
	}
}

// warmResident builds a runtime with every footprint page resident in
// Tier-1 and quiescent — the steady state the hit benchmarks replay
// against — plus a reusable batch of hitting accesses over it.
func warmResident(eng *sim.Engine) (*core.Runtime, core.Config, []gpu.Access) {
	cfg := core.DefaultConfig()
	cfg.Policy = core.PolicyBaM
	cfg.Tier1Pages = 256
	cfg.FootprintPages = 128
	rt := core.NewRuntime(eng, cfg)
	done := func() {}
	for p := 0; p < 128; p++ {
		rt.Access(gpu.Access{Page: tier.PageID(p)}, done)
	}
	eng.Run()
	batch := make([]gpu.Access, 512)
	for i := range batch {
		batch[i] = gpu.Access{Page: tier.PageID(i % 128)}
	}
	return rt, cfg, batch
}

// BenchmarkPerAccessHit measures the steady-state per-access cost of a
// Tier-1 hit the way the GPU now pays it: hitting warps consume whole
// leading hit runs through AccessSyncBatch — one bounds check and
// residency probe per page, counters folded in once per batch — so
// ns/op here is the amortized per-access cost on the batched path.
// Steady state is 0 allocs/op. (BenchmarkAccessBatch measures the same
// path per call; TestPerAccessAllocGate covers the scalar fallback.)
func BenchmarkPerAccessHit(b *testing.B) {
	rt, _, batch := warmResident(sim.NewEngine())
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := rt.AccessSyncBatch(batch, len(batch))
		if n != len(batch) {
			b.Fatalf("batch broke after %d of %d resident accesses", n, len(batch))
		}
		done += n
	}
}

// BenchmarkAccessBatch measures one AccessSyncBatch call over a full
// 512-access resident batch — the per-call cost a hitting warp pays for
// a whole run, including the batch-level counter fold. 0 allocs/op.
func BenchmarkAccessBatch(b *testing.B) {
	rt, _, batch := warmResident(sim.NewEngine())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := rt.AccessSyncBatch(batch, len(batch)); n != len(batch) {
			b.Fatalf("batch broke after %d of %d resident accesses", n, len(batch))
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(batch)), "ns/access")
}

// BenchmarkForkedRun measures the steady-state hit path on a forked
// child: the parent warms the footprint, freezes, and the child —
// holding the page directory copy-on-write and a cloned Tier-1 —
// replays resident hits through AccessSyncBatch. Inherited chunks must
// serve reads without materializing, so this is 0 allocs/op too; any
// allocation here means forking broke the hot path.
func BenchmarkForkedRun(b *testing.B) {
	eng := sim.NewEngine()
	parent, cfg, batch := warmResident(eng)
	child := parent.Fork(sim.NewEngineFrom(eng.Snapshot()), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := child.AccessSyncBatch(batch, len(batch))
		if n != len(batch) {
			b.Fatalf("forked batch broke after %d of %d resident accesses", n, len(batch))
		}
		done += n
	}
}

// warmMissTorture builds a runtime whose footprint (512 pages) is 2.7x
// the combined tier capacity (64 + 128), so a cyclic scan misses on
// every access forever: each miss evicts from Tier-1 into Tier-2, whose
// own eviction spills to the SSD. One full warm lap grows every arena —
// page directory, fetch/placement pools, waiter nodes, NVMe requests,
// transfer moves, event records — to steady capacity.
func warmMissTorture(eng *sim.Engine, policy core.PolicyKind) (*core.Runtime, func()) {
	cfg := core.DefaultConfig()
	cfg.Policy = policy
	cfg.Tier1Pages = 64
	cfg.Tier2Pages = 128
	cfg.FootprintPages = 512
	rt := core.NewRuntime(eng, cfg)
	done := func() {}
	for p := 0; p < 512; p++ {
		rt.Access(gpu.Access{Page: tier.PageID(p), Write: p%3 == 0}, done)
	}
	eng.Run()
	return rt, done
}

// BenchmarkMissPath measures the full miss pipeline in steady state —
// Runtime.Access through Tier-1 eviction, Tier-2 (or SSD) fetch, device
// completion, transfer, and the warp wakeup callback — with every
// access a guaranteed miss. ns/op is the end-to-end simulated-miss cost;
// the hard gate is 0 allocs/op: the typed-callback records, pooled
// waiter nodes, and event arena must fully absorb the per-miss churn.
func BenchmarkMissPath(b *testing.B) {
	eng := sim.NewEngine()
	rt, done := warmMissTorture(eng, core.PolicyReuse)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Access(gpu.Access{Page: tier.PageID(i % 512)}, done)
		eng.Run()
	}
}

// BenchmarkEvictStorm measures the worst-case eviction cascade: every
// access is a write miss, so each one dirties a page that a later miss
// must evict dirty from Tier-1 into Tier-2, spilling a dirty Tier-2
// victim into an SSD write-back. One iteration pushes a 256-access storm
// and drains it. Gate: 0 allocs/op — the write-back chain (tier moves,
// NVMe writes, completion records) runs entirely on pooled objects.
func BenchmarkEvictStorm(b *testing.B) {
	eng := sim.NewEngine()
	rt, done := warmMissTorture(eng, core.PolicyTierOrder)
	const storm = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < storm; j++ {
			rt.Access(gpu.Access{Page: tier.PageID((i*storm + j) % 512), Write: true}, done)
		}
		eng.Run()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*storm), "ns/miss")
}

// TestMissPathAllocGate is the static gate behind BenchmarkMissPath and
// BenchmarkEvictStorm: once warm, neither a clean miss (fetch + evict)
// nor a dirty write miss (fetch + dirty eviction + write-back) may
// allocate — covering both GMT policies' miss pipelines end to end.
func TestMissPathAllocGate(t *testing.T) {
	if raceflag.Enabled || invariant.Enabled {
		t.Skip("allocation gates run on the default build only")
	}
	for _, p := range []core.PolicyKind{core.PolicyReuse, core.PolicyTierOrder} {
		eng := sim.NewEngine()
		rt, done := warmMissTorture(eng, p)
		i := 0
		n := testing.AllocsPerRun(500, func() {
			rt.Access(gpu.Access{Page: tier.PageID(i % 512), Write: i%2 == 0}, done)
			eng.Run()
			i++
		})
		if n != 0 {
			t.Errorf("%v: steady-state miss path = %.1f allocs/op, want 0", p, n)
		}
	}
}

// TestPerAccessAllocGate is the CI gate for the tentpole's acceptance
// bar: the steady-state per-access path — from Runtime.Access through
// tier bookkeeping to the warp's completion callback — performs zero
// allocations once all pages are resident.
func TestPerAccessAllocGate(t *testing.T) {
	if raceflag.Enabled || invariant.Enabled {
		t.Skip("allocation gates run on the default build only")
	}
	eng := sim.NewEngine()
	cfg := core.DefaultConfig()
	cfg.Policy = core.PolicyBaM
	cfg.Tier1Pages = 256
	cfg.FootprintPages = 128
	rt := core.NewRuntime(eng, cfg)
	done := func() {}
	for p := 0; p < 128; p++ {
		rt.Access(gpu.Access{Page: tier.PageID(p)}, done)
	}
	eng.Run()
	i := 0
	n := testing.AllocsPerRun(500, func() {
		rt.Access(gpu.Access{Page: tier.PageID(i % 128), Write: i%7 == 0}, done)
		rt.AccessSync(gpu.Access{Page: tier.PageID(i % 128)}, done)
		i++
	})
	if n != 0 {
		t.Errorf("steady-state per-access path = %.1f allocs/op, want 0", n)
	}
	eng.Run()
}

// runCore executes a trace against a core runtime configuration and
// returns the virtual wall time.
func runCore(cfg core.Config, trace []gpu.Access) sim.Time {
	return runCoreWarps(cfg, trace, gpu.DefaultConfig().Warps)
}

func runCoreWarps(cfg core.Config, trace []gpu.Access, warps int) sim.Time {
	eng := sim.NewEngine()
	rt := core.NewRuntime(eng, cfg)
	gcfg := gpu.DefaultConfig()
	gcfg.Warps = warps
	g := gpu.New(eng, gcfg, &gpu.SliceStream{Trace: trace}, rt)
	g.Launch()
	eng.Run()
	return eng.Now()
}

func benchScale() workload.Scale {
	return workload.Scale{Tier1Pages: 256, Tier2Pages: 1024, Oversubscription: 2}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.Table2(s)
		var maxIO int64
		for _, r := range rows {
			if r.TotalIOBytes > maxIO {
				maxIO = r.TotalIOBytes
			}
		}
		b.ReportMetric(float64(maxIO)/1e9, "max_io_GB")
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.Figure4(s)
		b.ReportMetric(rows[0].Correlation, "mva_vtd_rd_corr")
		b.ReportMetric(rows[1].Correlation, "pagerank_vtd_rd_corr")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, _ := exp.Figure6a(xfer.DefaultConfig())
		cross := 0
		for _, r := range a {
			if r.ZeroCopy32Micros <= r.DMAMicros {
				cross = r.Pages
				break
			}
		}
		rows, _ := exp.Figure6b(xfer.DefaultConfig())
		b.ReportMetric(float64(cross), "crossover_pages")
		b.ReportMetric(rows[0].Hybrid32, "hybrid32_skew0_GBps")
		b.ReportMetric(rows[len(rows)-1].Hybrid32, "hybrid32_skew1_GBps")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.Figure7(s)
		for _, r := range rows {
			if r.App == "Hotspot" {
				b.ReportMetric(r.EvictLong, "hotspot_tier3_bias")
			}
			if r.App == "Srad" {
				b.ReportMetric(r.EvictMedium, "srad_tier2_bias")
			}
		}
	}
}

// reportFig8 runs Figure 8 and reports average speedups; shared by the
// Figure 8 benchmark and the aggregate harness.
func reportFig8(b *testing.B, s *exp.Suite) []exp.Figure8Row {
	rows, _ := exp.Figure8(s)
	avg := func(p string) float64 {
		t := 0.0
		for _, r := range rows {
			t += r.Speedup[p]
		}
		return t / float64(len(rows))
	}
	b.ReportMetric(avg("GMT-Reuse"), "reuse_speedup_x")
	b.ReportMetric(avg("GMT-Random"), "random_speedup_x")
	b.ReportMetric(avg("GMT-TierOrder"), "tierorder_speedup_x")
	return rows
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportFig8(b, exp.NewSuite(benchScale()))
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.Figure9(s)
		t, n := 0.0, 0
		for _, r := range rows {
			if r.Predictions > 0 {
				t += r.Accuracy
				n++
			}
		}
		b.ReportMetric(t/float64(n), "mean_prediction_accuracy")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.Figure10(s)
		var reuseWaste, toWaste float64
		for _, r := range rows {
			reuseWaste += r.WastefulLookups["GMT-Reuse"]
			toWaste += r.WastefulLookups["GMT-TierOrder"]
		}
		n := float64(len(rows))
		b.ReportMetric(reuseWaste/n, "reuse_wasteful_lookup_rate")
		b.ReportMetric(toWaste/n, "tierorder_wasteful_lookup_rate")
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := exp.Figure11(exp.NewSuite(benchScale()))
		t := 0.0
		for _, r := range rows {
			t += r.Speedup["GMT-Reuse"]
		}
		b.ReportMetric(t/float64(len(rows)), "reuse_speedup_osf4_x")
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		byRatio, _ := exp.Figure12(exp.NewSuite(benchScale()))
		for _, ratio := range []int{2, 4, 8} {
			t := 0.0
			rows := byRatio[ratio]
			for _, r := range rows {
				t += r.Speedup["GMT-Reuse"]
			}
			switch ratio {
			case 2:
				b.ReportMetric(t/float64(len(rows)), "reuse_speedup_ratio2_x")
			case 4:
				b.ReportMetric(t/float64(len(rows)), "reuse_speedup_ratio4_x")
			case 8:
				b.ReportMetric(t/float64(len(rows)), "reuse_speedup_ratio8_x")
			}
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := exp.Figure13(exp.NewSuite(benchScale()))
		t := 0.0
		for _, r := range rows {
			t += r.Speedup["GMT-Reuse"]
		}
		b.ReportMetric(t/float64(len(rows)), "reuse_speedup_2xT1_x")
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.Figure14(s)
		var hmm, reuse float64
		for _, r := range rows {
			hmm += r.HMMSpeedup
			reuse += r.ReuseSpeedup
		}
		n := float64(len(rows))
		b.ReportMetric(hmm/n, "hmm_speedup_x")
		b.ReportMetric(reuse/n, "reuse_speedup_x")
		b.ReportMetric((reuse/n)/(hmm/n), "reuse_over_hmm_x")
	}
}

// Oracle study: fraction of the Belady-style offline bound's gain that
// GMT-Reuse's practical prediction attains.
func BenchmarkOracleGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.OracleGap(s)
		var attained, oracle float64
		for _, r := range rows {
			attained += r.Attained
			oracle += r.OracleSpeedup
		}
		n := float64(len(rows))
		b.ReportMetric(attained/n, "mean_gain_attained")
		b.ReportMetric(oracle/n, "oracle_speedup_x")
	}
}

// Extension study: §5 async eviction and §2 sequential prefetch.
func BenchmarkExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.Extensions(s)
		var async, pf float64
		for _, r := range rows {
			async += r.AsyncSpeedup
			pf += r.PrefetchSpeedup
		}
		n := float64(len(rows))
		b.ReportMetric(async/n, "async_eviction_x")
		b.ReportMetric(pf/n, "prefetch4_x")
	}
}

// Ablation: §2.1.3's pipelined regression publication vs waiting for
// the full sample target.
func BenchmarkAblationPipelinedRegression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.RegressionWarmup(s)
		var pipe, end float64
		for _, r := range rows {
			pipe += r.EarlyHitRatePipelined
			end += r.EarlyHitRateUnpipelined
		}
		n := float64(len(rows))
		b.ReportMetric(pipe/n, "early_t2hit_pipelined")
		b.ReportMetric(end/n, "early_t2hit_endonly")
	}
}

// Ablation: the Figure 5 predictor against 1-level and learning-free
// variants.
func BenchmarkAblationPredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.PredictorAblation(s)
		agg := map[string]float64{}
		for _, r := range rows {
			for k, v := range r.Speedup {
				agg[k] += v
			}
		}
		n := float64(len(rows))
		b.ReportMetric(agg["markov"]/n, "markov_speedup_x")
		b.ReportMetric(agg["last-class"]/n, "lastclass_speedup_x")
		b.ReportMetric(agg["static"]/n, "static_speedup_x")
	}
}

// Sensitivity: storage generations (Gen3 -> near-memory) and drive
// arrays erode the host tier's advantage.
func BenchmarkSSDSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(benchScale())
		rows, _ := exp.SSDSensitivity(s)
		byGen := map[string][]float64{}
		for _, r := range rows {
			byGen[r.Gen] = append(byGen[r.Gen], r.Speedup)
		}
		avg := func(g string) float64 {
			t := 0.0
			for _, x := range byGen[g] {
				t += x
			}
			return t / float64(len(byGen[g]))
		}
		b.ReportMetric(avg("Gen3x4 (paper)"), "gen3_reuse_speedup_x")
		b.ReportMetric(avg("near-memory"), "near_memory_reuse_speedup_x")
		counts, _ := exp.SSDCountSweep(s)
		var one, four float64
		var n1, n4 int
		for _, r := range counts {
			if r.Drives == 1 {
				one += r.Speedup
				n1++
			}
			if r.Drives == 4 {
				four += r.Speedup
				n4++
			}
		}
		b.ReportMetric(one/float64(n1), "one_drive_reuse_speedup_x")
		b.ReportMetric(four/float64(n4), "four_drive_reuse_speedup_x")
	}
}

// Ablation: §2's up-path bypass vs staging SSD fills through Tier-2.
func BenchmarkAblationUpPathBypass(b *testing.B) {
	scale := benchScale()
	srad := workload.NewSrad(scale)
	trace := srad.Trace()
	for i := 0; i < b.N; i++ {
		bypass := core.DefaultConfig()
		bypass.Policy = core.PolicyReuse
		bypass.Tier1Pages = scale.Tier1Pages
		bypass.Tier2Pages = scale.Tier2Pages
		staged := bypass
		staged.UpPathThroughTier2 = true
		// Few warps: the extra per-fill hop latency cannot hide behind
		// massive access parallelism.
		tB := runCoreWarps(bypass, trace, 16)
		tS := runCoreWarps(staged, trace, 16)
		b.ReportMetric(float64(tS)/float64(tB), "staging_slowdown_x")
	}
}

// Ablation: §2.2's backfill heuristic on a pure cyclic scan (Hotspot).
func BenchmarkAblationBackfill(b *testing.B) {
	scale := benchScale()
	hotspot := workload.NewHotspot(scale)
	trace := hotspot.Trace()
	pub := make([]Access, len(trace))
	for i, a := range trace {
		pub[i] = Access{Page: int64(a.Page), Write: a.Write}
	}
	cfg := DefaultConfig()
	cfg.Policy = Reuse
	cfg.Tier1Pages = scale.Tier1Pages
	cfg.Tier2Pages = scale.Tier2Pages
	for i := 0; i < b.N; i++ {
		on := RunTrace(cfg, "hotspot", pub)
		off := cfg
		off.BackfillThreshold = 2
		offRes := RunTrace(off, "hotspot", pub)
		b.ReportMetric(float64(offRes.WallTime)/float64(on.WallTime), "backfill_gain_x")
	}
}

// Ablation: forced transfer mechanisms vs Hybrid-32T on a
// Tier-2-friendly app (Srad).
func BenchmarkAblationTransferMode(b *testing.B) {
	scale := benchScale()
	srad := workload.NewSrad(scale)
	trace := srad.Trace()
	run := func(mode xfer.Mode) float64 {
		cfg := core.DefaultConfig()
		cfg.Policy = core.PolicyReuse
		cfg.Tier1Pages = scale.Tier1Pages
		cfg.Tier2Pages = scale.Tier2Pages
		cfg.Transfer.Mode = mode
		return float64(runCore(cfg, trace))
	}
	for i := 0; i < b.N; i++ {
		hybrid := run(xfer.ModeHybrid)
		dma := run(xfer.ModeDMA)
		zc := run(xfer.ModeZeroCopy)
		b.ReportMetric(dma/hybrid, "hybrid_vs_dma_x")
		b.ReportMetric(zc/hybrid, "hybrid_vs_zerocopy_x")
	}
}

// Ablation: sampling budget sensitivity for GMT-Reuse (Backprop).
func BenchmarkAblationSampleTarget(b *testing.B) {
	scale := benchScale()
	bp := workload.NewBackprop(scale)
	trace := bp.Trace()
	for i := 0; i < b.N; i++ {
		var times []float64
		for _, target := range []int{1000, 20_000, 100_000} {
			cfg := core.DefaultConfig()
			cfg.Policy = core.PolicyReuse
			cfg.Tier1Pages = scale.Tier1Pages
			cfg.Tier2Pages = scale.Tier2Pages
			cfg.SampleTarget = target
			times = append(times, float64(runCore(cfg, trace)))
		}
		b.ReportMetric(times[0]/times[1], "tiny_vs_default_sampling_x")
		b.ReportMetric(times[2]/times[1], "huge_vs_default_sampling_x")
	}
}
